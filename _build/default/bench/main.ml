(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as aligned text tables), then runs
   bechamel micro-benchmarks of the core kernels.

   Usage:
     dune exec bench/main.exe               # everything, laptop-scale
     dune exec bench/main.exe -- table2     # one section
     dune exec bench/main.exe -- --full     # paper-scale fig2/fig6 sweeps
   Sections: table1 fig2 fig4 fig5 fig6 table2 table3 ablations nodal micro *)

module E = Rdca_flow.Experiments
module T = Rdca_flow.Tablefmt

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)

let run_table1 () =
  let rows = timed "table1" E.table1 in
  T.print ~title:"Table 1: benchmark properties (measured vs paper)"
    ~header:
      [ "name"; "in"; "out"; "%DC"; "E[Cf]"; "E[Cf] paper"; "Cf"; "Cf paper" ]
    (List.map
       (fun r ->
         [
           r.E.t1_name;
           string_of_int r.E.t1_ni;
           string_of_int r.E.t1_no;
           T.pct r.E.t1_dc_pct;
           T.f3 r.E.t1_ecf;
           T.f3 r.E.t1_paper_ecf;
           T.f3 r.E.t1_cf;
           T.f3 r.E.t1_paper_cf;
         ])
       rows)

let run_fig2 ~full () =
  let rng = Random.State.make [| 2011 |] in
  let per_target = if full then 10 else 3 in
  let rows = timed "fig2" (fun () -> E.fig2 ~per_target ~rng ()) in
  T.print
    ~title:
      "Figure 2: minimised SOP size vs complexity factor (10-in/1-out \
       synthetics)"
    ~header:[ "target Cf"; "measured Cf"; "SOP implicants" ]
    (List.map
       (fun p ->
         [ T.f2 p.E.f2_target; T.f3 p.E.f2_measured_cf; string_of_int p.E.f2_sop ])
       rows)

let sweep_cache = ref None

let get_sweep () =
  match !sweep_cache with
  | Some s -> s
  | None ->
      let s = timed "fraction sweep (figs 4+5)" (fun () -> E.sweep ()) in
      sweep_cache := Some s;
      s

let run_fig4 () =
  let rows = E.fig4_of_sweep (get_sweep ()) in
  let fractions = [| 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 |] in
  T.print
    ~title:
      "Figure 4: normalised error rate vs fraction of DCs ranking-assigned"
    ~header:
      ("name"
      :: Array.to_list (Array.map (fun f -> Printf.sprintf "f=%.1f" f) fractions)
      )
    (List.map
       (fun (name, norms) -> name :: Array.to_list (Array.map T.f3 norms))
       rows)

let run_fig5 () =
  let stats = E.fig5_of_sweep (get_sweep ()) in
  T.print
    ~title:
      "Figure 5: normalised min/mean/max area, delay, power vs fraction (per \
       optimisation mode)"
    ~header:
      [
        "mode"; "frac"; "area min"; "area mean"; "area max"; "delay min";
        "delay mean"; "delay max"; "power min"; "power mean"; "power max";
      ]
    (List.map
       (fun s ->
         let amin, dmin, pmin = s.E.f5_min in
         let amean, dmean, pmean = s.E.f5_mean in
         let amax, dmax, pmax = s.E.f5_max in
         [
           Techmap.Mapper.mode_name s.E.f5_mode;
           T.f2 s.E.f5_fraction;
           T.f2 amin; T.f2 amean; T.f2 amax;
           T.f2 dmin; T.f2 dmean; T.f2 dmax;
           T.f2 pmin; T.f2 pmean; T.f2 pmax;
         ])
       stats)

let run_fig6 ~full () =
  let rng = Random.State.make [| 66 |] in
  let funcs = if full then 10 else 2 in
  let families =
    timed "fig6" (fun () -> E.fig6 ~funcs_per_family:funcs ~rng ())
  in
  T.print
    ~title:
      "Figure 6: normalised area vs normalised error rate, by Cf family \
       (11-in/11-out, 60% DC; fraction sweep 0..1)"
    ~header:[ "Cf family"; "fraction"; "norm area"; "norm error" ]
    (List.concat_map
       (fun fam ->
         List.map
           (fun p ->
             [
               T.f2 fam.E.f6_cf;
               T.f2 p.E.f6_fraction;
               T.f3 p.E.f6_area;
               T.f3 p.E.f6_error;
             ])
           fam.E.f6_points)
       families)

let run_table2 () =
  let rows = timed "table2" (fun () -> E.table2 ()) in
  T.print
    ~title:
      "Table 2: complexity-factor-based assignment results (improvement %, \
       negative = overhead)"
    ~header:
      [
        "name"; "Cf"; "LCf area"; "LCf E.R."; "Rank area"; "Rank E.R.";
        "Compl area"; "Compl E.R.";
      ]
    (List.map
       (fun r ->
         [
           r.E.t2_name;
           T.f3 r.E.t2_cf;
           T.pct r.E.t2_lcf_area;
           T.pct r.E.t2_lcf_er;
           T.pct r.E.t2_rank_area;
           T.pct r.E.t2_rank_er;
           T.pct r.E.t2_comp_area;
           T.pct r.E.t2_comp_er;
         ])
       rows)

let run_table3 () =
  let rows = timed "table3" (fun () -> E.table3 ()) in
  T.print ~title:"Table 3: min-max reliability estimates"
    ~header:
      [
        "name"; "gates"; "exact lo"; "exact hi"; "signal lo"; "signal hi";
        "border lo"; "border hi"; "conv rate"; "conv %diff"; "LCf rate";
        "LCf %diff";
      ]
    (List.map
       (fun r ->
         let xl, xh = r.E.t3_exact in
         let sl, sh = r.E.t3_signal in
         let bl, bh = r.E.t3_border in
         [
           r.E.t3_name;
           string_of_int r.E.t3_gates;
           T.f3 xl; T.f3 xh; T.f3 sl; T.f3 sh; T.f3 bl; T.f3 bh;
           T.f3 r.E.t3_conv_rate; T.pct r.E.t3_conv_diff;
           T.f3 r.E.t3_lcf_rate; T.pct r.E.t3_lcf_diff;
         ])
       rows)

let run_ablations () =
  let thr =
    timed "ablation: threshold sweep" (fun () ->
        E.ablation_threshold ~name:"ex1010" ())
  in
  T.print ~title:"Ablation: LCf threshold sweep on ex1010 (improvement %)"
    ~header:[ "threshold"; "area"; "error rate" ]
    (List.map (fun (t, a, e) -> [ T.f2 t; T.pct a; T.pct e ]) thr);
  let nm =
    timed "ablation: neighbour model" (fun () -> E.ablation_neighbour_model ())
  in
  T.print
    ~title:
      "Ablation: Poisson vs binomial neighbour model (border-based bounds)"
    ~header:
      [
        "name"; "poisson lo"; "poisson hi"; "binom lo"; "binom hi";
        "exact lo"; "exact hi";
      ]
    (List.map
       (fun (name, (pl, ph), (bl, bh), (xl, xh)) ->
         [ name; T.f3 pl; T.f3 ph; T.f3 bl; T.f3 bh; T.f3 xl; T.f3 xh ])
       nm);
  let bal = timed "ablation: balance" (fun () -> E.ablation_balance ()) in
  T.print ~title:"Ablation: AIG balancing effect on critical path (ns)"
    ~header:[ "name"; "with balance"; "without" ]
    (List.map (fun (name, w, wo) -> [ name; T.f3 w; T.f3 wo ]) bal);
  let sh =
    timed "ablation: output sharing" (fun () ->
        E.ablation_sharing
          ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010"; "exam" ]
          ())
  in
  T.print
    ~title:
      "Ablation: per-output vs shared-cube (multi-output espresso) \
       minimisation"
    ~header:[ "name"; "area single"; "area shared"; "cubes single"; "cubes shared" ]
    (List.map
       (fun (name, a1, a2, c1, c2) ->
         [ name; T.f2 a1; T.f2 a2; string_of_int c1; string_of_int c2 ])
       sh);
  let fc =
    timed "ablation: factoring" (fun () ->
        E.ablation_factoring
          ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010"; "exam" ]
          ())
  in
  T.print
    ~title:"Ablation: flat SOP vs algebraically factored AIG construction"
    ~header:
      [ "name"; "area flat"; "area factored"; "nodes flat"; "nodes factored" ]
    (List.map
       (fun (name, a1, a2, n1, n2) ->
         [ name; T.f2 a1; T.f2 a2; string_of_int n1; string_of_int n2 ])
       fc);
  let mb =
    timed "ablation: multi-bit errors" (fun () ->
        E.ablation_multibit ~names:[ "bench"; "test4"; "ex1010" ] ())
  in
  T.print
    ~title:
      "Ablation: single-bit-tuned assignment under k-bit input errors"
    ~header:[ "name"; "k"; "conv rate"; "complete rate"; "improvement %" ]
    (List.map
       (fun (name, k, rc, rr, impr) ->
         [ name; string_of_int k; T.f3 rc; T.f3 rr; T.pct impr ])
       mb)

let run_nodal () =
  let rows =
    timed "nodal decomposition" (fun () ->
        E.nodal_decomposition
          ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010" ]
          ())
  in
  T.print
    ~title:
      "Section 4 extension: internal error rate before/after nodal LCf \
       reassignment"
    ~header:[ "name"; "before"; "after"; "improvement %" ]
    (List.map
       (fun (name, before, after) ->
         [
           name;
           T.f3 before;
           T.f3 after;
           T.pct
             (if before = 0.0 then 0.0
              else 100.0 *. (before -. after) /. before);
         ])
       rows);
  let rrows =
    timed "nodal decomposition (renode / 4-LUT)" (fun () ->
        E.nodal_renode ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010" ] ())
  in
  T.print
    ~title:
      "Section 4 extension at renode (4-LUT) granularity: coarser local \
       DC spaces"
    ~header:[ "name"; "LUTs"; "with DCs"; "before"; "after"; "improvement %" ]
    (List.map
       (fun (name, luts, dcs, before, after) ->
         [
           name;
           string_of_int luts;
           string_of_int dcs;
           T.f3 before;
           T.f3 after;
           T.pct
             (if before = 0.0 then 0.0
              else 100.0 *. (before -. after) /. before);
         ])
       rrows);
  let orows =
    timed "nodal decomposition (ODC-aware)" (fun () ->
        E.nodal_odc ~names:[ "bench"; "fout"; "p3"; "test4" ] ())
  in
  T.print
    ~title:
      "Section 4 extension: satisfiability-only vs observability-aware \
       reassignment (internal error rate)"
    ~header:[ "name"; "baseline"; "SDC only"; "with ODC"; "ODC improvement %" ]
    (List.map
       (fun (name, base, sdc, odc) ->
         [
           name;
           T.f3 base;
           T.f3 sdc;
           T.f3 odc;
           T.pct
             (if base = 0.0 then 0.0 else 100.0 *. (base -. odc) /. base);
         ])
       orows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core kernels. *)

let micro () =
  let open Bechamel in
  let spec = Synthetic.Suite.load_by_name "ex1010" in
  let on = Pla.Spec.on_bv spec ~o:0 and dc = Pla.Spec.dc_bv spec ~o:0 in
  let cover = Espresso.Dense.minimize ~n:10 ~on ~dc in
  let covers =
    List.init (Pla.Spec.no spec) (fun o ->
        Espresso.Dense.minimize ~n:10 ~on:(Pla.Spec.on_bv spec ~o)
          ~dc:(Pla.Spec.dc_bv spec ~o))
  in
  let aig = Aig.Opt.balance (Aig.of_covers ~ni:10 covers) in
  let lib = Techmap.Stdcell.default_library () in
  let tests =
    Test.make_grouped ~name:"rdca"
      [
        Test.make ~name:"espresso-dense ex1010/o0"
          (Staged.stage (fun () -> Espresso.Dense.minimize ~n:10 ~on ~dc));
        Test.make ~name:"ranking assignment ex1010"
          (Staged.stage (fun () -> Rdca_core.Assign.ranking ~fraction:0.5 spec));
        Test.make ~name:"lcf assignment ex1010"
          (Staged.stage (fun () ->
               Rdca_core.Assign.by_complexity ~threshold:0.55 spec));
        Test.make ~name:"exact bounds ex1010"
          (Staged.stage (fun () -> Reliability.Error_rate.mean_bounds spec));
        Test.make ~name:"border estimate ex1010"
          (Staged.stage (fun () -> Reliability.Estimate.mean_border_based spec));
        Test.make ~name:"bdd of cover (o0)"
          (Staged.stage (fun () ->
               let man = Bdd.make_man ~nvars:10 in
               Bdd.of_cover man cover));
        Test.make ~name:"cut enumeration (ex1010 aig)"
          (Staged.stage (fun () -> Aig.Cut.enumerate aig ~k:4 ~max_cuts:8));
        Test.make ~name:"techmap delay (ex1010 aig)"
          (Staged.stage (fun () ->
               Techmap.Mapper.map ~mode:Techmap.Mapper.Delay ~lib aig));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  T.print ~title:"Micro-benchmarks (monotonic clock, per call)"
    ~header:[ "kernel"; "time" ]
    (List.map
       (fun (name, ns) ->
         let h =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; h ])
       rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let sections = List.filter (fun a -> a <> "--full") args in
  let want s = sections = [] || List.mem s sections in
  let t0 = Unix.gettimeofday () in
  if want "table1" then run_table1 ();
  if want "fig2" then run_fig2 ~full ();
  if want "fig4" then run_fig4 ();
  if want "fig5" then run_fig5 ();
  if want "fig6" then run_fig6 ~full ();
  if want "table2" then run_table2 ();
  if want "table3" then run_table3 ();
  if want "ablations" then run_ablations ();
  if want "nodal" then run_nodal ();
  if want "micro" then micro ();
  Printf.printf "\n[total %.1fs]\n" (Unix.gettimeofday () -. t0)
