examples/border_counts.ml: List Pla Printf Reliability
