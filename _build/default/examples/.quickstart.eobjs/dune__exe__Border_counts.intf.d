examples/border_counts.mli:
