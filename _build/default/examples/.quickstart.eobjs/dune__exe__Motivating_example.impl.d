examples/motivating_example.ml: List Pla Printf Rdca_core Reliability
