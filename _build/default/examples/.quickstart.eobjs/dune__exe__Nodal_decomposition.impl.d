examples/nodal_decomposition.ml: Aig Array Bitvec Netlist Pla Printf Rdca_core Rdca_flow Synthetic Techmap
