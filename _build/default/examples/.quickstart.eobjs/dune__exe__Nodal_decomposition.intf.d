examples/nodal_decomposition.mli:
