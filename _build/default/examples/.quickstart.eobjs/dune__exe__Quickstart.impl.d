examples/quickstart.ml: Pla Printf Rdca_flow Reliability Synthetic Techmap
