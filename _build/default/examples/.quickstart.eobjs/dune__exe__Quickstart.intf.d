examples/quickstart.mli:
