examples/symbolic_analysis.ml: Bdd Printf Reliability String Twolevel
