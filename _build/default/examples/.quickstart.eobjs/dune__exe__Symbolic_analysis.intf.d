examples/symbolic_analysis.mli:
