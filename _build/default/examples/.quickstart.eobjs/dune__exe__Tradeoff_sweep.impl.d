examples/tradeoff_sweep.ml: Array List Printf Rdca_flow Synthetic Sys Techmap
