(* The paper's Figure 8: two functions with IDENTICAL signal
   probabilities but different border counts, hence different
   achievable error-rate ranges — the information the border-based
   estimate exploits and the signal-probability estimate cannot see.

   Run with:  dune exec examples/border_counts.exe *)

module Spec = Pla.Spec
module Borders = Reliability.Borders
module ER = Reliability.Error_rate
module Est = Reliability.Estimate

(* 4-variable K-maps with 4 on, 8 off, 4 dc minterms each.
   "clustered": the on-set and DC-set are sub-cubes (few borders).
   "scattered": same counts, spread out (many borders). *)
let clustered () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  (* on: the x0x1 = 11 column (a 2x2 block) *)
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 3; 7; 11; 15 ];
  (* dc: the x0x1 = 00 / x2 = 0 pairs *)
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.Dc) [ 0; 8; 1; 9 ];
  s

let scattered () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 0; 6; 9; 15 ];
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.Dc) [ 3; 5; 10; 12 ];
  s

let describe name s =
  let f1, f0, fdc = Spec.signal_probs s ~o:0 in
  let { Borders.b0; b1; bdc } = Borders.border_counts s ~o:0 in
  let b = ER.bounds s ~o:0 in
  let sig_est = Est.signal_based s ~o:0 in
  let bor_est = Est.border_based s ~o:0 in
  Printf.printf "%s:\n" name;
  Printf.printf "  signal probs: f1=%.2f f0=%.2f fdc=%.2f\n" f1 f0 fdc;
  Printf.printf "  borders: b0=%d b1=%d bDC=%d\n" b0 b1 bdc;
  Printf.printf "  exact bounds:  [%.4f, %.4f]\n" (ER.min_rate b)
    (ER.max_rate b);
  Printf.printf "  signal-based:  [%.4f, %.4f]   <- identical for both\n"
    sig_est.Est.lo sig_est.Est.hi;
  Printf.printf "  border-based:  [%.4f, %.4f]   <- tracks the structure\n\n"
    bor_est.Est.lo bor_est.Est.hi

let () =
  describe "clustered (few borders)" (clustered ());
  describe "scattered (many borders)" (scattered ())
