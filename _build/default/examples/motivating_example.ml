(* The paper's Figure 1 motivating example, replayed step by step:
   three DC minterms whose reliability-driven assignments agree with,
   conflict with, or stay ambiguous versus conventional assignment.

   Run with:  dune exec examples/motivating_example.exe *)

module Spec = Pla.Spec
module Metrics = Rdca_core.Metrics
module Assign = Rdca_core.Assign
module ER = Reliability.Error_rate

let phase_name = function
  | Spec.On -> "1"
  | Spec.Off -> "0"
  | Spec.Dc -> "-"

let () =
  (* A 4-input single-output function with three DCs shaped like the
     paper's example: x1 has two on-, one off-neighbour (assign 1);
     x2 has two off-, one on-neighbour (assign 0); x3 is balanced
     (left unassigned). *)
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 1; 2; 12; 7 ];
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.Dc) [ 0; 8; 5 ];

  print_endline "minterm  phase  on-nbrs off-nbrs dc-nbrs  weight  decision";
  List.iter
    (fun m ->
      let on, off, dc = Spec.neighbour_counts s ~o:0 ~m in
      let decision =
        match Metrics.majority_phase s ~o:0 ~m with
        | Some true -> "assign 1 (masks more errors)"
        | Some false -> "assign 0 (masks more errors)"
        | None -> "leave DC (ambiguous, kept for optimisation)"
      in
      Printf.printf "  %2d       %s      %d       %d        %d       %d     %s\n"
        m
        (phase_name (Spec.get s ~o:0 ~m))
        on off dc
        (Metrics.weight s ~o:0 ~m)
        decision)
    [ 0; 8; 5 ];

  (* Reliability consequences of the two extreme assignments. *)
  let b = ER.bounds s ~o:0 in
  Printf.printf "\nexact error-rate bounds: base=%.4f  min=%.4f  max=%.4f\n"
    b.ER.base (ER.min_rate b) (ER.max_rate b);

  let reliability = Assign.ranking ~fraction:1.0 s in
  let rel_full, _ = Assign.conventional reliability in
  let conv_full, _ = Assign.conventional s in
  let rate assigned =
    ER.of_table s ~o:0 ~impl:(ER.impl_table assigned ~o:0)
  in
  Printf.printf "reliability-driven assignment error rate: %.4f\n"
    (rate rel_full);
  Printf.printf "conventional assignment error rate:       %.4f\n"
    (rate conv_full)
