(* Section 4's nodal-decomposition extension: apply the LC^f rule to
   the satisfiability don't-cares of each mapped cell, improving the
   masking of INTERNAL single-flip errors without touching the I/O
   behaviour.

   Run with:  dune exec examples/nodal_decomposition.exe *)

module Decompose = Rdca_core.Decompose

let () =
  let spec = Synthetic.Suite.load_by_name "test4" in
  let _, covers = Rdca_flow.Flow.implement (Pla.Spec.copy spec) in
  let aig = Aig.Opt.balance (Aig.of_covers ~ni:(Pla.Spec.ni spec) covers) in
  let lib = Techmap.Stdcell.default_library () in
  let nl = Techmap.Mapper.map ~mode:Techmap.Mapper.Area ~lib aig in
  Printf.printf "test4 mapped: %d cells\n" (Netlist.gate_count nl);

  (* How many cells have unreachable local input patterns? *)
  let masks = Decompose.local_patterns nl in
  let with_dc = ref 0 and cells = ref 0 in
  Netlist.iter_nodes nl (fun id g _ ->
      match g with
      | Netlist.Gate.Cell c ->
          incr cells;
          let full = (1 lsl (1 lsl c.Netlist.Gate.arity)) - 1 in
          if masks.(id) <> full then incr with_dc
      | _ -> ());
  Printf.printf "cells with satisfiability DCs: %d of %d\n" !with_dc !cells;

  let before = Decompose.internal_error_rate nl in
  let nl' = Decompose.reassign ~threshold:0.65 nl in
  let after = Decompose.internal_error_rate nl' in

  (* The rewrite must be invisible at the outputs. *)
  let t = Netlist.output_tables nl and t' = Netlist.output_tables nl' in
  assert (Array.for_all2 Bitvec.Bv.equal t t');
  Printf.printf "I/O behaviour unchanged: verified exhaustively\n";

  Printf.printf "internal single-flip error rate: %.4f -> %.4f (%.1f%%)\n"
    before after
    (100.0 *. (before -. after) /. before)
