(* Quickstart: make an incompletely specified function more resilient
   to single-bit input errors before synthesis.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Get a function with an explicit DC space.  Any .pla file works
     via [Pla.parse_file]; here we use the ex1010 stand-in from the
     built-in suite. *)
  let spec = Synthetic.Suite.load_by_name "ex1010" in
  Printf.printf "ex1010: %d inputs, %d outputs, %.1f%% DC\n"
    (Pla.Spec.ni spec) (Pla.Spec.no spec)
    (100.0 *. Pla.Spec.dc_fraction spec);

  (* 2. What is achievable?  Exact min-max error-rate bounds over all
     possible DC assignments. *)
  let module ER = Reliability.Error_rate in
  let b = ER.mean_bounds spec in
  Printf.printf "error-rate bounds over all DC assignments: [%.4f, %.4f]\n"
    (ER.min_rate b) (ER.max_rate b);

  (* 3. Synthesise conventionally (all DCs used for area), then with
     the paper's complexity-factor-based reliability assignment.  Both
     runs verify the mapped netlist against the spec exhaustively. *)
  let synth strategy =
    Rdca_flow.Flow.verified_synthesize ~mode:Techmap.Mapper.Power ~strategy
      spec
  in
  let conv = synth Rdca_flow.Flow.Conventional in
  let lcf = synth (Rdca_flow.Flow.Lcf 0.55) in

  let show name (r : Rdca_flow.Flow.result) =
    Printf.printf "%-14s error=%.4f  area=%.0f  delay=%.3fns  power=%.0f\n"
      name r.Rdca_flow.Flow.error_rate r.Rdca_flow.Flow.report.Techmap.Report.area
      r.Rdca_flow.Flow.report.Techmap.Report.delay
      r.Rdca_flow.Flow.report.Techmap.Report.power
  in
  show "conventional:" conv;
  show "lcf(0.55):" lcf;
  Printf.printf "error-rate improvement: %.1f%%\n"
    (100.0
    *. (conv.Rdca_flow.Flow.error_rate -. lcf.Rdca_flow.Flow.error_rate)
    /. conv.Rdca_flow.Flow.error_rate)
