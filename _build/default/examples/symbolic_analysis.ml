(* The scalable (BDD) path: Section 5's reliability estimates and
   ISOP-based cover extraction on a 30-input function — far beyond the
   dense representation's reach — using the CUDD-substitute package.

   Run with:  dune exec examples/symbolic_analysis.exe *)

module Sym = Reliability.Sym
module Est = Reliability.Estimate

let () =
  let n = 30 in
  let man = Bdd.make_man ~nvars:n in
  (* An incompletely specified 30-input function given as covers:
     on-set = x0 x1 + x5 !x20 x29, DC-set = !x0 !x1 !x5. *)
  let cube s = Twolevel.Cube.of_string s in
  let pad s = s ^ String.make (n - String.length s) '-' in
  let on =
    Twolevel.Cover.make ~n
      [
        cube (pad "11");
        cube
          (String.init n (fun j ->
               if j = 5 then '1' else if j = 20 then '0' else if j = 29 then '1'
               else '-'));
      ]
  in
  let dc =
    Twolevel.Cover.make ~n
      [ cube (String.init n (fun j -> if j = 0 || j = 1 || j = 5 then '0' else '-')) ]
  in
  let sets = Sym.of_covers man ~on ~dc in
  (match Sym.validate man sets with
  | None -> print_endline "sets partition the 2^30 space: verified symbolically"
  | Some msg -> failwith msg);

  let st = Sym.stats man sets in
  Printf.printf "signal probabilities: f1=%.4f f0=%.4f fdc=%.4f\n" st.Sym.f1
    st.Sym.f0 st.Sym.fdc;
  Printf.printf "complexity factor:    %.4f\n" st.Sym.cf;
  Printf.printf "exact base error:     %.6f\n" st.Sym.base_rate;

  let si = Sym.signal_interval man sets in
  let bi = Sym.border_interval man sets in
  Printf.printf "signal-based bounds:  [%.4f, %.4f]\n" si.Est.lo si.Est.hi;
  Printf.printf "border-based bounds:  [%.4f, %.4f]\n" bi.Est.lo bi.Est.hi;

  (* Symbolic cover extraction: an irredundant SOP within [on, on+dc]. *)
  let upper = Bdd.bor man sets.Sym.on sets.Sym.dc in
  let cover, fbdd = Bdd.isop man ~lower:sets.Sym.on ~upper in
  Printf.printf "ISOP cover: %d cubes (BDD %d nodes)\n"
    (Twolevel.Cover.size cover) (Bdd.size man fbdd);
  Printf.printf "interval respected: %b\n"
    (Bdd.is_zero man (Bdd.band man sets.Sym.on (Bdd.bnot man fbdd))
    && Bdd.is_zero man (Bdd.band man fbdd (Bdd.bnot man upper)))
