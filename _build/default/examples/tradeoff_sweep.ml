(* Sweep the ranking-based assignment fraction on one benchmark and
   watch the reliability/overhead tradeoff of the paper's Figures 4-5.

   Run with:  dune exec examples/tradeoff_sweep.exe [-- BENCHMARK]  *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "bench" in
  let spec = Synthetic.Suite.load_by_name name in
  Printf.printf
    "%s: sweeping the fraction of DCs assigned for reliability\n\n" name;
  print_endline
    "fraction  assigned%  error    norm.err  area     norm.area  delay(ns)";
  let base = ref None in
  List.iter
    (fun fraction ->
      let r =
        Rdca_flow.Flow.synthesize ~mode:Techmap.Mapper.Delay
          ~strategy:(Rdca_flow.Flow.Ranking fraction) spec
      in
      let base_err, base_area =
        match !base with
        | Some b -> b
        | None ->
            let b =
              ( r.Rdca_flow.Flow.error_rate,
                r.Rdca_flow.Flow.report.Techmap.Report.area )
            in
            base := Some b;
            b
      in
      Printf.printf "  %.2f      %5.1f     %.4f   %.3f     %7.1f  %.3f      %.3f\n"
        fraction
        (100.0 *. r.Rdca_flow.Flow.assigned_fraction)
        r.Rdca_flow.Flow.error_rate
        (r.Rdca_flow.Flow.error_rate /. base_err)
        r.Rdca_flow.Flow.report.Techmap.Report.area
        (r.Rdca_flow.Flow.report.Techmap.Report.area /. base_area)
        r.Rdca_flow.Flow.report.Techmap.Report.delay)
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ];
  print_endline
    "\nError falls monotonically; overhead grows — choose the knee, or use\n\
     the complexity-factor-based method (rdca synth -m lcf) to find it\n\
     automatically."
