lib/aig/aig.ml: Aig_core Cut Opt
