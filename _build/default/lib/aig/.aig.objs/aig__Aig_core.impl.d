lib/aig/aig_core.ml: Array Bitvec Hashtbl Lazy List Netlist Twolevel
