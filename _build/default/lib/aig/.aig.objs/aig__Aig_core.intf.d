lib/aig/aig_core.mli: Netlist Twolevel
