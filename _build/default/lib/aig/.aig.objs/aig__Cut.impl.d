lib/aig/cut.ml: Aig_core Array List Logic
