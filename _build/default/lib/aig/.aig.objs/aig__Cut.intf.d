lib/aig/cut.mli: Aig_core Logic
