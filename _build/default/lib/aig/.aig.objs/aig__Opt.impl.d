lib/aig/opt.ml: Aig_core Array Bdd Hashtbl List
