lib/aig/opt.mli: Aig_core
