include Aig_core
module Cut = Cut
module Opt = Opt
