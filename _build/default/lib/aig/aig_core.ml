type lit = int

type t = {
  ni : int;
  mutable f0 : int array; (* fanin literals of AND nodes, by id *)
  mutable f1 : int array;
  mutable next : int;
  strash : (int * int, int) Hashtbl.t;
  mutable outs : lit array;
}

let const0 : lit = 0
let const1 : lit = 1
let lnot (l : lit) = l lxor 1
let is_complemented (l : lit) = l land 1 = 1
let node_of (l : lit) = l lsr 1

let create ~ni =
  if ni < 0 then invalid_arg "Aig.create";
  let cap = max 16 (2 * (ni + 1)) in
  {
    ni;
    f0 = Array.make cap (-1);
    f1 = Array.make cap (-1);
    next = ni + 1;
    strash = Hashtbl.create 256;
    outs = [||];
  }

let ni t = t.ni

let input t i =
  if i < 0 || i >= t.ni then invalid_arg "Aig.input: out of range";
  2 * (i + 1)

let is_input t id = id >= 1 && id <= t.ni
let is_and t id = id > t.ni && id < t.next

let grow t =
  if t.next >= Array.length t.f0 then begin
    let cap = Array.length t.f0 in
    let ext a = Array.append a (Array.make cap (-1)) in
    t.f0 <- ext t.f0;
    t.f1 <- ext t.f1
  end

let land_ t a b =
  (* Constant folding and trivial cases. *)
  if a = const0 || b = const0 then const0
  else if a = const1 then b
  else if b = const1 then a
  else if a = b then a
  else if a = lnot b then const0
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> 2 * id
    | None ->
        grow t;
        let id = t.next in
        t.next <- id + 1;
        t.f0.(id) <- a;
        t.f1.(id) <- b;
        Hashtbl.add t.strash (a, b) id;
        2 * id
  end

let lor_ t a b = lnot (land_ t (lnot a) (lnot b))

let lxor_ t a b =
  (* a xor b = (a & !b) | (!a & b) *)
  lor_ t (land_ t a (lnot b)) (land_ t (lnot a) b)

let lmux t ~sel ~th ~el = lor_ t (land_ t sel th) (land_ t (lnot sel) el)

let set_outputs t lits =
  Array.iter
    (fun l ->
      let id = node_of l in
      if id < 0 || id >= t.next then invalid_arg "Aig.set_outputs: bad literal")
    lits;
  t.outs <- Array.copy lits

let outputs t = Array.copy t.outs
let no t = Array.length t.outs

let fanins t id =
  if not (is_and t id) then invalid_arg "Aig.fanins: not an AND node";
  (t.f0.(id), t.f1.(id))

let num_ands t = t.next - t.ni - 1
let num_nodes t = t.next

let levels t =
  let lv = Array.make t.next 0 in
  for id = t.ni + 1 to t.next - 1 do
    lv.(id) <- 1 + max lv.(node_of t.f0.(id)) lv.(node_of t.f1.(id))
  done;
  lv

let level t id =
  if id < 0 || id >= t.next then invalid_arg "Aig.level";
  (levels t).(id)

let depth t =
  let lv = levels t in
  Array.fold_left (fun acc l -> max acc lv.(node_of l)) 0 t.outs

let iter_ands t f =
  for id = t.ni + 1 to t.next - 1 do
    f id t.f0.(id) t.f1.(id)
  done

let eval_lit values l =
  let v = values.(node_of l) in
  if is_complemented l then not v else v

let eval_minterm_values t m =
  let values = Array.make t.next false in
  values.(0) <- false;
  for i = 0 to t.ni - 1 do
    values.(i + 1) <- m land (1 lsl i) <> 0
  done;
  for id = t.ni + 1 to t.next - 1 do
    values.(id) <- eval_lit values t.f0.(id) && eval_lit values t.f1.(id)
  done;
  values

let eval_minterm t m =
  let values = eval_minterm_values t m in
  Array.map (eval_lit values) t.outs

let node_probs t =
  if t.ni > 20 then invalid_arg "Aig.node_probs: ni too large";
  let total = 1 lsl t.ni in
  let ones = Array.make t.next 0 in
  let words = Array.make t.next 0 in
  let wlit l = if is_complemented l then lnot words.(node_of l) else words.(node_of l) in
  let base = ref 0 in
  while !base < total do
    let chunk = min 63 (total - !base) in
    words.(0) <- 0;
    for i = 0 to t.ni - 1 do
      let w = ref 0 in
      for p = 0 to chunk - 1 do
        if (!base + p) land (1 lsl i) <> 0 then w := !w lor (1 lsl p)
      done;
      words.(i + 1) <- !w
    done;
    for id = t.ni + 1 to t.next - 1 do
      words.(id) <- wlit t.f0.(id) land wlit t.f1.(id)
    done;
    let mask = (1 lsl chunk) - 1 in
    for id = 0 to t.next - 1 do
      ones.(id) <- ones.(id) + Bitvec.Minterm.popcount (words.(id) land mask)
    done;
    base := !base + chunk
  done;
  Array.map (fun c -> float_of_int c /. float_of_int total) ones

let to_netlist t =
  let nl = Netlist.create ~ni:t.ni in
  (* positive polarity node id in the netlist, per AIG node *)
  let pos = Array.make t.next (-1) in
  (* memoised inverter per AIG node *)
  let neg = Array.make t.next (-1) in
  let const0_id = lazy (Netlist.add nl (Netlist.Gate.Const false) [||]) in
  let const1_id = lazy (Netlist.add nl (Netlist.Gate.Const true) [||]) in
  for i = 0 to t.ni - 1 do
    pos.(i + 1) <- i
  done;
  let net_of_lit l =
    let id = node_of l in
    if id = 0 then
      if is_complemented l then Lazy.force const1_id else Lazy.force const0_id
    else if is_complemented l then begin
      if neg.(id) < 0 then
        neg.(id) <- Netlist.add nl Netlist.Gate.Not [| pos.(id) |];
      neg.(id)
    end
    else pos.(id)
  in
  iter_ands t (fun id a b ->
      let na = net_of_lit a in
      let nb = net_of_lit b in
      pos.(id) <- Netlist.add nl Netlist.Gate.And [| na; nb |]);
  let outs = Array.map net_of_lit t.outs in
  Netlist.set_outputs nl outs;
  nl

(* Balanced combination of a literal list under a binary operation. *)
let rec balanced_combine op neutral = function
  | [] -> neutral
  | [ l ] -> l
  | lits ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest -> op x y :: pair rest
      in
      balanced_combine op neutral (pair lits)

let of_covers ~ni covers =
  let t = create ~ni in
  let lit_of_cube c =
    let lits = ref [] in
    for j = 0 to ni - 1 do
      match Twolevel.Cube.get c j with
      | Twolevel.Cube.Zero -> lits := lnot (input t j) :: !lits
      | Twolevel.Cube.One -> lits := input t j :: !lits
      | Twolevel.Cube.Free -> ()
    done;
    balanced_combine (land_ t) const1 (List.rev !lits)
  in
  let outs =
    List.map
      (fun cover ->
        if Twolevel.Cover.n cover <> ni then
          invalid_arg "Aig.of_covers: arity mismatch";
        let cube_lits = List.map lit_of_cube (Twolevel.Cover.cubes cover) in
        balanced_combine (lor_ t) const0 cube_lits)
      covers
  in
  set_outputs t (Array.of_list outs);
  t

let of_factored ~ni exprs =
  let t = create ~ni in
  let rec lower = function
    | Twolevel.Factor.Const b -> if b then const1 else const0
    | Twolevel.Factor.Lit (j, neg) ->
        let l = input t j in
        if neg then lnot l else l
    | Twolevel.Factor.And es ->
        balanced_combine (land_ t) const1 (List.map lower es)
    | Twolevel.Factor.Or es ->
        balanced_combine (lor_ t) const0 (List.map lower es)
  in
  set_outputs t (Array.of_list (List.map lower exprs));
  t
