(** And-inverter graphs with structural hashing.

    The multi-level synthesis substrate (the role ABC plays for the
    paper).  Nodes are 2-input ANDs; edges carry an optional
    complement.  A {e literal} packs (node id, complement) as
    [2*id + c].  Node 0 is the constant-0 function, so literal 0 is
    constant 0 and literal 1 constant 1.  Inputs occupy ids
    [1 .. ni].  Structural hashing with constant folding and
    commutative normalisation runs on every {!land_}. *)

type t

type lit = int

(** [create ~ni] makes an AIG with [ni] primary inputs. *)
val create : ni:int -> t

val ni : t -> int

(** [const0] and [const1] literals. *)
val const0 : lit

val const1 : lit

(** [input t i] is the literal of input [i] (0-based). *)
val input : t -> int -> lit

(** [lnot l] complements a literal (no node is created). *)
val lnot : lit -> lit

(** [is_complemented l] and [node_of l] destructure a literal. *)
val is_complemented : lit -> bool

val node_of : lit -> int

(** [land_ t a b] is the AND of two literals (hash-consed).
    [lor_], [lxor_], [lmux t ~sel ~th ~el] derive from it. *)
val land_ : t -> lit -> lit -> lit

val lor_ : t -> lit -> lit -> lit

val lxor_ : t -> lit -> lit -> lit

val lmux : t -> sel:lit -> th:lit -> el:lit -> lit

(** [set_outputs t lits] / [outputs t] manage primary outputs. *)
val set_outputs : t -> lit array -> unit

val outputs : t -> lit array

val no : t -> int

(** [fanins t id] is the literal pair of AND node [id].
    @raise Invalid_argument for constants or inputs. *)
val fanins : t -> int -> lit * lit

(** [is_and t id], [is_input t id] classify a node id. *)
val is_and : t -> int -> bool

val is_input : t -> int -> bool

(** [num_ands t] counts AND nodes; [num_nodes t] includes const and
    inputs. *)
val num_ands : t -> int

val num_nodes : t -> int

(** [level t id] is the AND-depth of node [id]; [depth t] the maximum
    over output cones. *)
val level : t -> int -> int

val depth : t -> int

(** [iter_ands t f] visits AND nodes in topological (id) order. *)
val iter_ands : t -> (int -> lit -> lit -> unit) -> unit

(** [eval_lit t values l] evaluates literal [l] given per-node boolean
    values (as filled by {!eval_minterm_values}). *)
val eval_lit : bool array -> lit -> bool

(** [eval_minterm_values t m] computes every node's value on input
    minterm [m]. *)
val eval_minterm_values : t -> int -> bool array

(** [eval_minterm t m] is the output vector on minterm [m]. *)
val eval_minterm : t -> int -> bool array

(** [node_probs t] is the exact signal probability of each node under
    uniform inputs, by exhaustive word-parallel simulation
    ([ni <= 20]). *)
val node_probs : t -> float array

(** [to_netlist t] lowers to a {!Netlist.t} of AND2/NOT/BUF/CONST
    gates, memoising inverters per driver. *)
val to_netlist : t -> Netlist.t

(** [of_covers ~ni covers] builds an AIG computing one output per
    cover (balanced AND trees per cube, balanced OR tree per output).
    Sharing happens through structural hashing. *)
val of_covers : ni:int -> Twolevel.Cover.t list -> t

(** [of_factored ~ni exprs] builds an AIG from factored expressions
    (one output per expression); sharing again comes from structural
    hashing.  Compare with {!of_covers} on flat forms. *)
val of_factored : ni:int -> Twolevel.Factor.expr list -> t
