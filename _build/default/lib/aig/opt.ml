module A = Aig_core

(* Collect the maximal conjunction rooted at literal [l] in the old
   graph: descend through non-complemented AND fanins.  Complemented
   edges and non-AND nodes stop the descent. *)
let rec collect_conj t l acc =
  let id = A.node_of l in
  if (not (A.is_complemented l)) && A.is_and t id then begin
    let a, b = A.fanins t id in
    collect_conj t a (collect_conj t b acc)
  end
  else l :: acc

let balance t =
  let t' = A.create ~ni:(A.ni t) in
  (* new literal for each old node's positive polarity *)
  let map = Array.make (A.num_nodes t) (-1) in
  map.(0) <- A.const0;
  for i = 0 to A.ni t - 1 do
    map.(i + 1) <- A.input t' i
  done;
  (* levels of new nodes, grown alongside t' *)
  let lvl = Hashtbl.create 256 in
  let level_of l =
    match Hashtbl.find_opt lvl (A.node_of l) with Some v -> v | None -> 0
  in
  let aand a b =
    let r = A.land_ t' a b in
    let rid = A.node_of r in
    if not (Hashtbl.mem lvl rid) then
      Hashtbl.replace lvl rid (1 + max (level_of a) (level_of b));
    r
  in
  let translate l =
    let nl = map.(A.node_of l) in
    if A.is_complemented l then A.lnot nl else nl
  in
  (* Huffman-combine literals by ascending level. *)
  let combine lits =
    match lits with
    | [] -> A.const1
    | _ ->
        let sorted = List.sort (fun a b -> compare (level_of a) (level_of b)) lits in
        let rec go = function
          | [] -> A.const1
          | [ l ] -> l
          | a :: b :: rest ->
              let c = aand a b in
              (* insert c keeping the list sorted by level *)
              let rec insert = function
                | [] -> [ c ]
                | x :: xs when level_of x < level_of c -> x :: insert xs
                | xs -> c :: xs
              in
              go (insert rest)
        in
        go sorted
  in
  A.iter_ands t (fun id _ _ ->
      let leaves = collect_conj t (2 * id) [] in
      let translated = List.map translate leaves in
      map.(id) <- combine translated);
  A.set_outputs t' (Array.map translate (A.outputs t));
  t'

let cleanup t =
  let reachable = Array.make (A.num_nodes t) false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if A.is_and t id then begin
        let a, b = A.fanins t id in
        mark (A.node_of a);
        mark (A.node_of b)
      end
    end
  in
  Array.iter (fun l -> mark (A.node_of l)) (A.outputs t);
  let t' = A.create ~ni:(A.ni t) in
  let map = Array.make (A.num_nodes t) (-1) in
  map.(0) <- A.const0;
  for i = 0 to A.ni t - 1 do
    map.(i + 1) <- A.input t' i
  done;
  let translate l =
    let nl = map.(A.node_of l) in
    if A.is_complemented l then A.lnot nl else nl
  in
  A.iter_ands t (fun id a b ->
      if reachable.(id) then map.(id) <- A.land_ t' (translate a) (translate b));
  A.set_outputs t' (Array.map translate (A.outputs t));
  t'

let refactor_global t =
  let n = A.ni t in
  let man = Bdd.make_man ~nvars:n in
  (* Per-node BDDs by forward traversal (positive polarity). *)
  let node_bdd = Array.make (A.num_nodes t) (Bdd.zero man) in
  for i = 0 to n - 1 do
    node_bdd.(i + 1) <- Bdd.var man i
  done;
  let lit_bdd l =
    let b = node_bdd.(A.node_of l) in
    if A.is_complemented l then Bdd.bnot man b else b
  in
  A.iter_ands t (fun id a b ->
      node_bdd.(id) <- Bdd.band man (lit_bdd a) (lit_bdd b));
  let covers =
    Array.to_list
      (Array.map
         (fun l ->
           let f = lit_bdd l in
           let cover, _ = Bdd.isop man ~lower:f ~upper:f in
           cover)
         (A.outputs t))
  in
  let rebuilt = cleanup (A.of_covers ~ni:n covers) in
  if A.num_ands rebuilt < A.num_ands (cleanup t) then rebuilt else t
