(** AIG optimisation passes.

    [balance] is the depth-reduction pass ABC's [balance] performs:
    maximal AND trees are re-associated into delay-balanced trees
    (Huffman combination on node levels).  [cleanup] rebuilds the
    graph keeping only the cones of the outputs.  Both preserve the
    functions computed at the outputs. *)

(** [balance t] is a functionally equivalent AIG with re-associated
    AND trees; its depth never exceeds [depth t] on tree-structured
    logic and usually shrinks. *)
val balance : Aig_core.t -> Aig_core.t

(** [cleanup t] drops AND nodes not reachable from any output. *)
val cleanup : Aig_core.t -> Aig_core.t

(** [refactor_global t] re-synthesises every output through a BDD →
    ISOP → AIG round trip (fully symbolic, so no input-count limit
    beyond BDD size) and returns the rebuilt AIG when it has fewer
    AND nodes, the original otherwise.  The ABC "collapse + refactor"
    move, globally. *)
val refactor_global : Aig_core.t -> Aig_core.t
