lib/bitvec/bv.ml: Array Format List Random
