lib/bitvec/bv.mli: Format Random
