lib/bitvec/minterm.ml: List String
