lib/bitvec/minterm.mli:
