type t = { len : int; words : int array }

let bits_per_word = 63
let word_of i = i / bits_per_word
let bit_of i = i mod bits_per_word

let nwords len = if len = 0 then 0 else word_of (len - 1) + 1

let create len =
  if len < 0 then invalid_arg "Bv.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bv: index out of range"

let get t i =
  check t i;
  t.words.(word_of i) land (1 lsl bit_of i) <> 0

let set t i =
  check t i;
  t.words.(word_of i) <- t.words.(word_of i) lor (1 lsl bit_of i)

let clear t i =
  check t i;
  t.words.(word_of i) <- t.words.(word_of i) land lnot (1 lsl bit_of i)

let assign t i b = if b then set t i else clear t i

let copy t = { len = t.len; words = Array.copy t.words }

(* Mask of valid bits in the last word, so that [complement] and [fill]
   never set padding bits (cardinal and equality depend on them being 0). *)
let last_mask t =
  let r = t.len mod bits_per_word in
  if r = 0 then -1 (* OCaml ints are exactly 63 bits wide: all bits valid *)
  else (1 lsl r) - 1

let fill t b =
  let v = if b then -1 else 0 in
  Array.fill t.words 0 (Array.length t.words) v;
  if b && Array.length t.words > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land last_mask t
  end

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.len = b.len && a.words = b.words

let check_len a b =
  if a.len <> b.len then invalid_arg "Bv: length mismatch"

let map2 op a b =
  check_len a b;
  { len = a.len; words = Array.map2 op a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement a =
  let t = { len = a.len; words = Array.map lnot a.words } in
  if Array.length t.words > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land last_mask t
  end;
  t

let in_place op a b =
  check_len a b;
  Array.iteri (fun i w -> a.words.(i) <- op w b.words.(i)) a.words

let union_in_place a b = in_place ( lor ) a b
let inter_in_place a b = in_place ( land ) a b
let diff_in_place a b = in_place (fun x y -> x land lnot y) a b

let subset a b =
  check_len a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let disjoint a b =
  check_len a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let iter_set f t =
  Array.iteri
    (fun wi w ->
      let rec go w =
        if w <> 0 then begin
          let b = w land -w in
          let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
          f ((wi * bits_per_word) + log2 b 0);
          go (w land (w - 1))
        end
      in
      go w)
    t.words

let fold_set f t init =
  let acc = ref init in
  iter_set (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold_set (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let random ~rng n ~density =
  let t = create n in
  for i = 0 to n - 1 do
    if Random.State.float rng 1.0 < density then set t i
  done;
  t

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
