(** Packed, fixed-length bit vectors.

    A [Bv.t] is a mutable vector of [length t] booleans stored 63 per
    [int].  It is the workhorse set representation for on-, off- and
    DC-sets of dense function specifications: index [i] stands for the
    minterm with binary encoding [i]. *)

type t

(** [create n] is a vector of [n] bits, all cleared.
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [length t] is the number of bits in [t]. *)
val length : t -> int

(** [get t i] is bit [i]. @raise Invalid_argument if out of range. *)
val get : t -> int -> bool

(** [set t i] sets bit [i] to one. *)
val set : t -> int -> unit

(** [clear t i] sets bit [i] to zero. *)
val clear : t -> int -> unit

(** [assign t i b] sets bit [i] to [b]. *)
val assign : t -> int -> bool -> unit

(** [copy t] is a fresh vector equal to [t]. *)
val copy : t -> t

(** [fill t b] sets every bit of [t] to [b]. *)
val fill : t -> bool -> unit

(** [cardinal t] is the number of set bits. *)
val cardinal : t -> int

(** [is_empty t] is [cardinal t = 0], computed without a full count. *)
val is_empty : t -> bool

(** [equal a b] tests equality of lengths and contents. *)
val equal : t -> t -> bool

(** Bitwise operations; all return fresh vectors.
    @raise Invalid_argument on length mismatch. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

(** In-place variants storing the result in the first argument. *)

val union_in_place : t -> t -> unit
val inter_in_place : t -> t -> unit
val diff_in_place : t -> t -> unit

(** [subset a b] is [true] when every set bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] is [true] when [a] and [b] share no set bit. *)
val disjoint : t -> t -> bool

(** [iter_set f t] applies [f] to the index of every set bit, in
    increasing order. *)
val iter_set : (int -> unit) -> t -> unit

(** [fold_set f t init] folds [f] over indices of set bits, increasing. *)
val fold_set : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list t] is the increasing list of set-bit indices. *)
val to_list : t -> int list

(** [of_list n l] is a vector of length [n] with exactly the indices of
    [l] set. @raise Invalid_argument if an index is out of range. *)
val of_list : int -> int list -> t

(** [random ~rng n ~density] is a vector of [n] bits where each bit is
    set independently with probability [density]. *)
val random : rng:Random.State.t -> int -> density:float -> t

(** [pp] prints as a 0/1 string, bit 0 leftmost. *)
val pp : Format.formatter -> t -> unit
