let space_size n =
  if n < 0 || n > 61 then invalid_arg "Minterm.space_size";
  1 lsl n

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let hamming a b = popcount (a lxor b)

let neighbour m j = m lxor (1 lsl j)

let neighbours ~n m = List.init n (fun j -> neighbour m j)

let iter_neighbours ~n f m =
  for j = 0 to n - 1 do
    f j (neighbour m j)
  done

let bit m j = m land (1 lsl j) <> 0

let of_bits bits =
  let rec go i acc = function
    | [] -> acc
    | b :: rest -> go (i + 1) (if b then acc lor (1 lsl i) else acc) rest
  in
  go 0 0 bits

let to_string ~n m =
  String.init n (fun j -> if bit m j then '1' else '0')

let of_string s =
  let acc = ref 0 in
  String.iteri
    (fun j c ->
      match c with
      | '1' -> acc := !acc lor (1 lsl j)
      | '0' -> ()
      | _ -> invalid_arg "Minterm.of_string: expected 0/1")
    s;
  !acc

let iter_space ~n f =
  for m = 0 to space_size n - 1 do
    f m
  done

let fold_space ~n f init =
  let acc = ref init in
  iter_space ~n (fun m -> acc := f m !acc);
  !acc
