(** Minterms as integer encodings of input vectors.

    A minterm over [n] inputs is an [int] in [0, 2^n); bit [j] of the
    integer is the value of input [x_j].  All of the paper's Hamming
    distance machinery (neighbour enumeration, distance-1 tests) lives
    here. *)

(** [space_size n] is [2^n].  @raise Invalid_argument if [n < 0] or
    [n] exceeds the representable range (61). *)
val space_size : int -> int

(** [popcount m] is the number of set bits of [m] ([m >= 0]). *)
val popcount : int -> int

(** [hamming a b] is the Hamming distance between the encodings. *)
val hamming : int -> int -> int

(** [neighbour m j] is [m] with input [j] flipped. *)
val neighbour : int -> int -> int

(** [neighbours ~n m] is the list of the [n] minterms at Hamming
    distance 1 from [m], in increasing flipped-input order. *)
val neighbours : n:int -> int -> int list

(** [iter_neighbours ~n f m] applies [f j m'] for each input [j] and
    distance-1 neighbour [m' = neighbour m j]. *)
val iter_neighbours : n:int -> (int -> int -> unit) -> int -> unit

(** [bit m j] is the value of input [j] in minterm [m]. *)
val bit : int -> int -> bool

(** [of_bits bits] encodes a vector given LSB-first as a bool list. *)
val of_bits : bool list -> int

(** [to_string ~n m] renders [m] as an [n]-character 0/1 string in
    .pla column order: the leftmost character is input [x_0]. *)
val to_string : n:int -> int -> string

(** [of_string s] parses a 0/1 string in [to_string] ordering. *)
val of_string : string -> int

(** [iter_space ~n f] applies [f] to every minterm of the [n]-input
    space in increasing order. *)
val iter_space : n:int -> (int -> unit) -> unit

(** [fold_space ~n f init] folds over the space in increasing order. *)
val fold_space : n:int -> (int -> 'a -> 'a) -> 'a -> 'a
