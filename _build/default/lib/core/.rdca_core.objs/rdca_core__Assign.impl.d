lib/core/assign.ml: Espresso Float List Metrics Pla Twolevel
