lib/core/assign.mli: Pla Twolevel
