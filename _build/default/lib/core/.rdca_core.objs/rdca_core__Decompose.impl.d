lib/core/decompose.ml: Array Assign Bitvec Logic Netlist Pla
