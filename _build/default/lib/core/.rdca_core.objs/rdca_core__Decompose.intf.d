lib/core/decompose.mli: Netlist
