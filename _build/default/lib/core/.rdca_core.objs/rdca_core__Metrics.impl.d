lib/core/metrics.ml: List Pla Reliability
