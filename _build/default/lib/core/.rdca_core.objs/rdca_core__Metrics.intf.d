lib/core/metrics.mli: Pla
