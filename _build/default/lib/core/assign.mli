(** The paper's DC assignment algorithms.

    All functions return a fresh spec; the input is never mutated.
    Assignment decisions use the *original* neighbour counts (the
    algorithms in the paper's Figures 3 and 7 rank/filter first, then
    assign, without re-ranking). *)

(** [ranking ~fraction spec] — Figure 3.  Per output: rank the
    non-zero-weight DC minterms by decreasing weight and assign the
    first [fraction] of the list to their majority phase; the rest of
    the DCs stay unassigned for later conventional optimisation.
    @raise Invalid_argument unless [0. <= fraction <= 1.]. *)
val ranking : fraction:float -> Pla.Spec.t -> Pla.Spec.t

(** [by_complexity ~threshold spec] — Figure 7.  Per output: assign
    every DC minterm whose local complexity factor is below
    [threshold] to its majority phase (ties assign to 0, following the
    figure's [else x <- 0] branch); others stay DC.  The paper
    recommends thresholds in [0.45, 0.65]. *)
val by_complexity : threshold:float -> Pla.Spec.t -> Pla.Spec.t

(** [complete spec] assigns {e every} DC for reliability: majority
    phase where one exists, the Figure 3 rule leaving only exact ties
    unassigned ([ranking ~fraction:1.]). *)
val complete : Pla.Spec.t -> Pla.Spec.t

(** [conventional spec] assigns all remaining DCs the way conventional
    synthesis does: each output is minimised by espresso over its
    on/DC sets and a DC becomes the value the minimised cover gives
    it.  The result is fully specified; the minimised covers are
    returned alongside (one per output). *)
val conventional : Pla.Spec.t -> Pla.Spec.t * Twolevel.Cover.t list

(** [assigned_dc_fraction ~before ~after] is the fraction of [before]'s
    DC minterms no longer DC in [after] (for matching assignment
    budgets between algorithms, as Table 2 does). *)
val assigned_dc_fraction : before:Pla.Spec.t -> after:Pla.Spec.t -> float

(** [ranking_matching_budget ~reference spec] runs {!ranking} with the
    fraction chosen so that the number of DCs assigned matches (as
    closely as possible) the number [reference] assigned relative to
    [spec] — the paper's Table 2 comparison protocol. *)
val ranking_matching_budget :
  reference:Pla.Spec.t -> Pla.Spec.t -> Pla.Spec.t
