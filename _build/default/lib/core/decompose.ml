module Gate = Netlist.Gate
module Spec = Pla.Spec

let local_patterns nl =
  let n = Netlist.node_count nl in
  let masks = Array.make n 0 in
  let ni = Netlist.ni nl in
  if ni > 20 then invalid_arg "Decompose.local_patterns: ni too large";
  let size = 1 lsl ni in
  let vals = Array.make n false in
  for m = 0 to size - 1 do
    for i = 0 to ni - 1 do
      vals.(i) <- m land (1 lsl i) <> 0
    done;
    Netlist.iter_nodes nl (fun id g fanins ->
        match g with
        | Gate.Input _ -> ()
        | _ -> vals.(id) <- Gate.eval g (Array.map (Array.get vals) fanins));
    Netlist.iter_nodes nl (fun id g fanins ->
        match g with
        | Gate.Cell _ | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
        | Gate.Xnor | Gate.Not | Gate.Buf ->
            if Array.length fanins <= 5 then begin
              let idx = ref 0 in
              Array.iteri
                (fun i f -> if vals.(f) then idx := !idx lor (1 lsl i))
                fanins;
              masks.(id) <- masks.(id) lor (1 lsl !idx)
            end
        | Gate.Input _ | Gate.Const _ -> ())
  done;
  masks

(* Apply the Figure 7 rule to one cell's local function given its
   reachable-pattern mask; returns the new truth table. *)
let reassign_cell ~threshold ~arity ~tt ~reachable =
  let spec = Spec.create ~ni:arity ~no:1 ~default:Spec.Off in
  for idx = 0 to (1 lsl arity) - 1 do
    let phase =
      if reachable land (1 lsl idx) = 0 then Spec.Dc
      else if Logic.Truth.eval tt idx then Spec.On
      else Spec.Off
    in
    Spec.set spec ~o:0 ~m:idx phase
  done;
  let assigned = Assign.by_complexity ~threshold spec in
  let tt' = ref 0 in
  for idx = 0 to (1 lsl arity) - 1 do
    let v =
      match Spec.get assigned ~o:0 ~m:idx with
      | Spec.On -> true
      | Spec.Off -> false
      | Spec.Dc -> Logic.Truth.eval tt idx (* undecided: keep original *)
    in
    if v then tt' := !tt' lor (1 lsl idx)
  done;
  !tt'

let reassign ~threshold nl =
  let masks = local_patterns nl in
  let out = Netlist.create ~ni:(Netlist.ni nl) in
  let remap = Array.make (Netlist.node_count nl) (-1) in
  for i = 0 to Netlist.ni nl - 1 do
    remap.(i) <- i
  done;
  Netlist.iter_nodes nl (fun id g fanins ->
      let fanins' = Array.map (Array.get remap) fanins in
      let g' =
        match g with
        | Gate.Cell c ->
            let reachable = masks.(id) in
            let full = (1 lsl (1 lsl c.Gate.arity)) - 1 in
            if reachable = full || reachable = 0 then g
            else
              Gate.Cell
                {
                  c with
                  Gate.tt =
                    reassign_cell ~threshold ~arity:c.Gate.arity
                      ~tt:c.Gate.tt ~reachable;
                }
        | other -> other
      in
      remap.(id) <- Netlist.add out g' fanins');
  Netlist.set_outputs out (Array.map (Array.get remap) (Netlist.outputs nl));
  out

let internal_error_rate nl =
  let ni = Netlist.ni nl in
  if ni > 20 then invalid_arg "Decompose.internal_error_rate: ni too large";
  let n = Netlist.node_count nl in
  let size = 1 lsl ni in
  let outs = Netlist.outputs nl in
  let events = ref 0 and propagated = ref 0 in
  (* Word-parallel: for each chunk, compute the fault-free words, then
     for each internal node re-propagate with that node flipped. *)
  let base_words = Array.make n 0 in
  let fault_words = Array.make n 0 in
  let base = ref 0 in
  while !base < size do
    let chunk = min 63 (size - !base) in
    let mask = (1 lsl chunk) - 1 in
    for i = 0 to ni - 1 do
      let w = ref 0 in
      for p = 0 to chunk - 1 do
        if (!base + p) land (1 lsl i) <> 0 then w := !w lor (1 lsl p)
      done;
      base_words.(i) <- !w
    done;
    Netlist.iter_nodes nl (fun id g fanins ->
        base_words.(id) <-
          Gate.eval_words g (Array.map (Array.get base_words) fanins));
    for fault = ni to n - 1 do
      Array.blit base_words 0 fault_words 0 n;
      fault_words.(fault) <- lnot base_words.(fault);
      Netlist.iter_nodes nl (fun id g fanins ->
          if id > fault then
            fault_words.(id) <-
              Gate.eval_words g (Array.map (Array.get fault_words) fanins));
      let diff = ref 0 in
      Array.iter
        (fun o -> diff := !diff lor (base_words.(o) lxor fault_words.(o)))
        outs;
      events := !events + chunk;
      propagated := !propagated + Bitvec.Minterm.popcount (!diff land mask)
    done;
    base := !base + chunk
  done;
  if !events = 0 then 0.0
  else float_of_int !propagated /. float_of_int !events

(* Word-parallel: recompute only nodes downstream of [node] with its
   output flipped; collect the local patterns at which some primary
   output changes. *)
let observability_mask_current nl ~node base_words fault_words chunk_mask =
  let n = Netlist.node_count nl in
  Array.blit base_words 0 fault_words 0 n;
  fault_words.(node) <- lnot base_words.(node);
  Netlist.iter_nodes nl (fun id g fanins ->
      if id > node then
        fault_words.(id) <-
          Gate.eval_words g (Array.map (Array.get fault_words) fanins));
  let diff = ref 0 in
  Array.iter
    (fun o -> diff := !diff lor (base_words.(o) lxor fault_words.(o)))
    (Netlist.outputs nl);
  !diff land chunk_mask

let simulate_chunks nl visit =
  let ni = Netlist.ni nl in
  if ni > 20 then invalid_arg "Decompose: ni too large";
  let n = Netlist.node_count nl in
  let size = 1 lsl ni in
  let words = Array.make n 0 in
  let base = ref 0 in
  while !base < size do
    let chunk = min 63 (size - !base) in
    for i = 0 to ni - 1 do
      let w = ref 0 in
      for p = 0 to chunk - 1 do
        if (!base + p) land (1 lsl i) <> 0 then w := !w lor (1 lsl p)
      done;
      words.(i) <- !w
    done;
    Netlist.iter_nodes nl (fun id g fanins ->
        words.(id) <- Gate.eval_words g (Array.map (Array.get words) fanins));
    visit ~chunk words;
    base := !base + chunk
  done

(* (reachable mask, observable mask) of one node's local patterns. *)
let local_masks nl ~node =
  let n = Netlist.node_count nl in
  let fanins = Netlist.fanins nl node in
  let fault_words = Array.make n 0 in
  let reachable = ref 0 and observable = ref 0 in
  simulate_chunks nl (fun ~chunk words ->
      let chunk_mask = (1 lsl chunk) - 1 in
      let obs =
        observability_mask_current nl ~node words fault_words chunk_mask
      in
      for p = 0 to chunk - 1 do
        let idx = ref 0 in
        Array.iteri
          (fun i f -> if words.(f) land (1 lsl p) <> 0 then idx := !idx lor (1 lsl i))
          fanins;
        reachable := !reachable lor (1 lsl !idx);
        if obs land (1 lsl p) <> 0 then observable := !observable lor (1 lsl !idx)
      done);
  (!reachable, !observable)

let observability_mask nl ~node =
  let _, obs = local_masks nl ~node in
  obs

let reassign_odc ~threshold nl =
  (* Work on a structural copy so the input netlist stays intact. *)
  let out = Netlist.create ~ni:(Netlist.ni nl) in
  Netlist.iter_nodes nl (fun id g fanins ->
      let id' = Netlist.add out g fanins in
      assert (id' = id));
  Netlist.set_outputs out (Netlist.outputs nl);
  Netlist.iter_nodes out (fun id g _ ->
      match g with
      | Gate.Cell c when c.Gate.arity <= 4 ->
          let _, observable = local_masks out ~node:id in
          let full = (1 lsl (1 lsl c.Gate.arity)) - 1 in
          let fixed = observable land full in
          if fixed <> full then begin
            (* assignable = patterns never observable (this includes
               the unreachable ones) *)
            let tt' =
              reassign_cell ~threshold ~arity:c.Gate.arity ~tt:c.Gate.tt
                ~reachable:fixed
            in
            if tt' <> c.Gate.tt then
              Netlist.replace_gate out id (Gate.Cell { c with Gate.tt = tt' })
          end
      | _ -> ());
  out
