(** Nodal decomposition: applying reliability-driven DC assignment to
    the {e internal} nodes of a circuit (Section 4, "Nodal
    decomposition").

    Each mapped cell computes a small local function.  Local input
    patterns that can never occur (satisfiability don't-cares) are the
    internal analogue of the external DC space: reassigning the cell's
    value on those patterns cannot change the circuit's I/O behaviour
    but does change how internal errors propagate.  [reassign] applies
    the complexity-factor rule of Figure 7 to every cell's local DC
    space; [internal_error_rate] measures the resulting masking of
    single internal net-flip errors. *)

(** [local_patterns nl] returns, per node, the bitmask of local fanin
    patterns that actually occur over all [2^ni] circuit inputs
    (indexed as in {!Logic.Truth}); inputs and constants get [0].
    Exhaustive: [Netlist.ni nl <= 20]. *)
val local_patterns : Netlist.t -> int array

(** [reassign ~threshold nl] rewrites each [Cell] instance's truth
    table on its unreachable patterns following the LC^f rule.  The
    returned netlist is I/O-equivalent to [nl] by construction. *)
val reassign : threshold:float -> Netlist.t -> Netlist.t

(** [internal_error_rate nl] is the fraction of (internal node, input
    minterm) single-flip error events that propagate to at least one
    primary output.  Primary inputs are excluded (those are the
    external error model); constants and cells all count. *)
val internal_error_rate : Netlist.t -> float

(** {1 Observability don't cares}

    Section 4 names both satisfiability- and observability-based DCs
    as internal flexibility sources.  A local pattern of a cell is an
    ODC when, for every circuit input producing it, flipping the
    cell's output never reaches a primary output.  [reassign_odc]
    exploits both kinds — unreachable patterns AND reachable-but-
    unobservable ones — processing cells one at a time against the
    current netlist so each rewrite is individually sound. *)

(** [observability_mask nl ~node] is the bitmask of local patterns of
    [node] at which its value is observable at some primary output
    (computed on the netlist as it currently is). *)
val observability_mask : Netlist.t -> node:int -> int

(** [reassign_odc ~threshold nl] rewrites each [Cell]'s truth table on
    its satisfiability *and* observability DCs following the LC^f
    rule.  The returned netlist is I/O-equivalent by construction. *)
val reassign_odc : threshold:float -> Netlist.t -> Netlist.t
