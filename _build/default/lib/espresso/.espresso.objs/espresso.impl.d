lib/espresso/espresso.ml: Dense Essential Expand Irredundant Multi Qm Reduce Twolevel
