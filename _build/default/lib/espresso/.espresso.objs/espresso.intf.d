lib/espresso/espresso.mli: Bitvec Twolevel
