lib/espresso/dense.ml: Array Bitvec List Twolevel
