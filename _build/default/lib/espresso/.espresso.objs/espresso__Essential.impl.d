lib/espresso/essential.ml: List Twolevel
