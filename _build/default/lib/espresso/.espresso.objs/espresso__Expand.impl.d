lib/espresso/expand.ml: List Twolevel
