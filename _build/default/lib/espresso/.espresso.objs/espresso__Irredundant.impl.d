lib/espresso/irredundant.ml: List Twolevel
