lib/espresso/multi.ml: Array Bitvec List Twolevel
