lib/espresso/qm.ml: Array Bitvec Hashtbl List Printf Set Twolevel
