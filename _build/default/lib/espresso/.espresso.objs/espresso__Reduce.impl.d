lib/espresso/reduce.ml: List Twolevel
