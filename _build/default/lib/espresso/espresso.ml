module Cover = Twolevel.Cover

type result = { cover : Cover.t; iterations : int }

let cost c = (Cover.size c, Cover.literal_count c)

let minimize ~on ~dc =
  if Cover.n on <> Cover.n dc then invalid_arg "Espresso.minimize: arity";
  let n = Cover.n on in
  if Cover.cubes on = [] then { cover = Cover.empty ~n; iterations = 0 }
  else begin
    let off = Cover.complement (Cover.union on dc) in
    let f = Expand.run ~on ~off in
    let f = Irredundant.run ~on:f ~dc in
    let ess, f = Essential.extract ~on:f ~dc in
    let dc' = Cover.union dc ess in
    let rec loop f best_cost iters =
      if iters >= 20 then (f, iters)
      else
        let f' = Reduce.run ~on:f ~dc:dc' in
        let f' = Expand.run ~on:f' ~off in
        let f' = Irredundant.run ~on:f' ~dc:dc' in
        let c = cost f' in
        if c < best_cost then loop f' c (iters + 1) else (f, iters + 1)
    in
    let f, iterations = loop f (cost f) 0 in
    let cover = Cover.single_cube_containment (Cover.union f ess) in
    { cover; iterations }
  end

let minimize_cover ~on ~dc = (minimize ~on ~dc).cover

module Expand = Expand
module Irredundant = Irredundant
module Reduce = Reduce
module Essential = Essential
module Dense = Dense
module Qm = Qm
module Multi = Multi
