(** Heuristic two-level (SOP) minimisation in the style of ESPRESSO.

    This is the substitute for Berkeley ESPRESSO used throughout the
    reproduction: it implements the classical
    EXPAND / IRREDUNDANT / ESSENTIAL / REDUCE loop over the
    unate-recursive cover algebra of {!Twolevel}.  Conventional DC
    assignment — "assign each DC minterm to whatever minimises the SOP"
    — is exactly "cover the on-set, allowed to dip into the DC-set",
    which is what {!minimize} computes. *)

(** Result of a minimisation run. *)
type result = {
  cover : Twolevel.Cover.t;  (** minimised cover of the on-set *)
  iterations : int;  (** reduce/expand/irredundant passes executed *)
}

(** [minimize ~on ~dc] heuristically minimises the incompletely
    specified single-output function whose on-set is covered by [on]
    and whose DC-set by [dc].  The result covers every [on] minterm,
    no off-set minterm, and any subset of [dc].
    @raise Invalid_argument if the arities differ. *)
val minimize : on:Twolevel.Cover.t -> dc:Twolevel.Cover.t -> result

(** [minimize_cover ~on ~dc] is [(minimize ~on ~dc).cover]. *)
val minimize_cover :
  on:Twolevel.Cover.t -> dc:Twolevel.Cover.t -> Twolevel.Cover.t

(** [cost c] is espresso's cost pair: (cube count, literal count). *)
val cost : Twolevel.Cover.t -> int * int

(** The individual passes, exposed for testing and ablation. *)

module Expand : sig
  (** [run ~on ~off] raises every cube of [on] to a prime implicant
      against the off-cover [off] and drops covered cubes. *)
  val run :
    on:Twolevel.Cover.t -> off:Twolevel.Cover.t -> Twolevel.Cover.t
end

module Irredundant : sig
  (** [run ~on ~dc] drops cubes covered by the rest of [on] plus [dc]. *)
  val run : on:Twolevel.Cover.t -> dc:Twolevel.Cover.t -> Twolevel.Cover.t
end

module Reduce : sig
  (** [run ~on ~dc] maximally reduces each cube against the rest. *)
  val run : on:Twolevel.Cover.t -> dc:Twolevel.Cover.t -> Twolevel.Cover.t
end

module Essential : sig
  (** [extract ~on ~dc] is [(essential, non_essential)]. *)
  val extract :
    on:Twolevel.Cover.t ->
    dc:Twolevel.Cover.t ->
    Twolevel.Cover.t * Twolevel.Cover.t
end

module Dense : sig
  (** Dense-set espresso over bit-vector on/dc sets: same loop, every
      coverage question answered in O(cube size) against the 2^n
      space.  The workhorse for the paper's n <= 12 benchmarks. *)

  (** [minimize ~n ~on ~dc] minimises the function with on-set [on]
      and DC-set [dc] given as characteristic vectors of length [2^n].
      @raise Invalid_argument on length mismatch or overlapping sets. *)
  val minimize :
    n:int -> on:Bitvec.Bv.t -> dc:Bitvec.Bv.t -> Twolevel.Cover.t
end

module Qm : sig
  (** Exact two-level minimisation: Quine-McCluskey prime generation
      plus branch-and-bound covering.  Exponential — a ground-truth
      oracle for small functions (n <= ~8 in practice). *)

  (** [primes ~n ~on ~dc] is the complete prime-implicant cover of the
      function with care set [on ∪ dc].
      @raise Invalid_argument when [n > 12]. *)
  val primes :
    n:int -> on:Bitvec.Bv.t -> dc:Bitvec.Bv.t -> Twolevel.Cover.t

  (** [minimize ~n ~on ~dc] is a minimum-cube-count cover of [on]
      (possibly dipping into [dc], never into the off-set). *)
  val minimize :
    n:int -> on:Bitvec.Bv.t -> dc:Bitvec.Bv.t -> Twolevel.Cover.t
end

module Multi : sig
  (** Multi-output espresso: product terms carry an output part and
      are shared across outputs, as in espresso's multiple-valued
      formulation — the way the paper's multi-output .pla benchmarks
      were actually minimised. *)

  (** A shared cube: [outputs] bit [o] set means the cube feeds
      output [o]. *)
  type mcube = { input : Twolevel.Cube.t; outputs : int }

  (** [minimize ~n ~ons ~dcs] jointly minimises all outputs; element
      [o] of the result arrays are output [o]'s on/DC sets.
      @raise Invalid_argument on inconsistent arrays. *)
  val minimize :
    n:int -> ons:Bitvec.Bv.t array -> dcs:Bitvec.Bv.t array -> mcube list

  (** [eval ~n cubes ~o ~m] evaluates output [o] on minterm [m]. *)
  val eval : n:int -> mcube list -> o:int -> m:int -> bool

  (** [cost ~n cubes] is (cube count, literal count incl. outputs). *)
  val cost : n:int -> mcube list -> int * int
end
