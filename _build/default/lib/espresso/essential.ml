(* ESSENTIAL: a prime is essential when it covers a minterm that no
   other on-cube and no DC cube covers.  Essentials are frozen during
   the reduce/expand/irredundant iteration. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover

let is_essential ~n c ~others ~dc =
  let context = Cover.make ~n (others @ Cover.cubes dc) in
  not (Cover.contains_cube context c)

(* [extract ~on ~dc] splits [on] into (essential, non_essential). *)
let extract ~on ~dc =
  let n = Cover.n on in
  let cubes = Cover.cubes on in
  let rec go pre post ess rest =
    match post with
    | [] -> (List.rev ess, List.rev rest)
    | c :: tl ->
        let others = List.rev_append pre tl in
        if is_essential ~n c ~others ~dc then go (c :: pre) tl (c :: ess) rest
        else go (c :: pre) tl ess (c :: rest)
  in
  let ess, rest = go [] cubes [] [] in
  (Cover.make ~n ess, Cover.make ~n rest)
