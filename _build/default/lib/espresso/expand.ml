(* EXPAND: raise each cube of the on-cover to a prime implicant against
   the off-set, greedily choosing the literal whose raising covers the
   most remaining on-cubes while staying disjoint from every off-cube.
   Cubes that become covered by an expanded prime are dropped. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover

(* [raisable ~n c j off] tests whether freeing literal [j] of [c] keeps
   the cube disjoint from the off-set. *)
let raisable ~n c j off =
  let c' = Cube.set c j Cube.Free in
  List.for_all (fun r -> Cube.distance ~n c' r > 0) (Cover.cubes off)

let specific_vars ~n c =
  let rec go j acc =
    if j < 0 then acc
    else go (j - 1) (if Cube.get c j = Cube.Free then acc else j :: acc)
  in
  go (n - 1) []

(* Number of cubes from [others] newly covered if [c] is replaced by
   [c'] (they were not covered by [c]). *)
let coverage_gain c' others =
  List.fold_left
    (fun acc d -> if Cube.subsumes c' d then acc + 1 else acc)
    0 others

(* Expand a single cube to a prime. *)
let expand_cube ~n c off others =
  let rec grow c =
    let candidates =
      List.filter (fun j -> raisable ~n c j off) (specific_vars ~n c)
    in
    match candidates with
    | [] -> c
    | _ ->
        let score j =
          let c' = Cube.set c j Cube.Free in
          let gain = coverage_gain c' others in
          (* Secondary criterion: prefer raises that keep the most other
             literals raisable afterwards. *)
          let freedom =
            List.fold_left
              (fun acc k ->
                if k <> j && raisable ~n c' k off then acc + 1 else acc)
              0 candidates
          in
          (gain, freedom)
        in
        let best =
          List.fold_left
            (fun acc j ->
              let s = score j in
              match acc with
              | Some (sb, _) when sb >= s -> acc
              | _ -> Some (s, j))
            None candidates
        in
        (match best with
        | Some (_, j) -> grow (Cube.set c j Cube.Free)
        | None -> c)
  in
  grow c

(* Sort order: expand large cubes first (they are the most likely to
   swallow others), matching espresso's weight heuristic in spirit. *)
let by_decreasing_size ~n cs =
  List.sort
    (fun a b -> compare (Cube.free_count ~n b) (Cube.free_count ~n a))
    cs

let run ~on ~off =
  let n = Cover.n on in
  let rec go pending primes =
    match pending with
    | [] -> List.rev primes
    | c :: rest ->
        if List.exists (fun p -> Cube.subsumes p c) primes then
          (* already covered by an expanded prime *)
          go rest primes
        else
          let others = rest in
          let p = expand_cube ~n c off others in
          let rest = List.filter (fun d -> not (Cube.subsumes p d)) rest in
          go rest (p :: primes)
  in
  let cubes = go (by_decreasing_size ~n (Cover.cubes on)) [] in
  Cover.single_cube_containment (Cover.make ~n cubes)
