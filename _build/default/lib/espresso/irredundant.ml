(* IRREDUNDANT: remove cubes covered by the rest of the cover plus the
   DC-set.  Cubes are dropped smallest-first so the large primes kept by
   EXPAND survive, which mirrors espresso's preference. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover

let run ~on ~dc =
  let n = Cover.n on in
  let by_increasing_size =
    List.sort
      (fun a b -> compare (Cube.free_count ~n a) (Cube.free_count ~n b))
      (Cover.cubes on)
  in
  (* Try to delete each cube in turn, testing coverage against the
     currently retained cover (minus the candidate) plus DC. *)
  let rec go to_try kept =
    match to_try with
    | [] -> kept
    | c :: rest ->
        let context = Cover.make ~n (rest @ kept @ Cover.cubes dc) in
        if Cover.contains_cube context c then go rest kept
        else go rest (c :: kept)
  in
  Cover.make ~n (go by_increasing_size [])
