(* Exact two-level minimisation (Quine-McCluskey prime generation +
   branch-and-bound unate covering).  Exponential; intended for small
   inputs where it serves as a quality oracle for the heuristic
   minimiser and as ground truth for "minimal SOP" claims. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover
module Bv = Bitvec.Bv

(* All prime implicants of the function with care set [on ∪ dc]:
   iterated pairwise merging of cubes with identical free masks that
   differ in exactly one literal. *)
let primes ~n ~on ~dc =
  if n > 12 then invalid_arg "Qm.primes: n too large for exact minimisation";
  let care = Bv.union on dc in
  let module S = Set.Make (struct
    type t = Cube.t

    let compare = Cube.compare
  end) in
  let level0 =
    Bv.fold_set (fun m acc -> S.add (Cube.of_minterm ~n m) acc) care S.empty
  in
  let rec go current primes_acc =
    if S.is_empty current then primes_acc
    else begin
      let merged = ref S.empty in
      let used = Hashtbl.create 64 in
      let items = S.elements current in
      let arr = Array.of_list items in
      let k = Array.length arr in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let a = arr.(i) and b = arr.(j) in
          (* merge iff same free mask and exactly one differing literal *)
          let free_a = Cube.mask0 a land Cube.mask1 a in
          let free_b = Cube.mask0 b land Cube.mask1 b in
          if free_a = free_b then begin
            let diff0 = Cube.mask0 a lxor Cube.mask0 b in
            let diff1 = Cube.mask1 a lxor Cube.mask1 b in
            if diff0 = diff1 && Bitvec.Minterm.popcount diff0 = 1 then begin
              let m0 = Cube.mask0 a lor Cube.mask0 b in
              let m1 = Cube.mask1 a lor Cube.mask1 b in
              merged := S.add (Cube.of_masks ~m0 ~m1) !merged;
              Hashtbl.replace used a ();
              Hashtbl.replace used b ()
            end
          end
        done
      done;
      let unmerged =
        List.filter (fun c -> not (Hashtbl.mem used c)) items
      in
      go !merged (List.rev_append unmerged primes_acc)
    end
  in
  Cover.make ~n (go level0 [])

(* Exact minimum-cube cover of [on] using primes over [on ∪ dc]:
   essential extraction + branch and bound on cube count. *)
let minimize ~n ~on ~dc =
  if not (Bv.disjoint on dc) then invalid_arg "Qm.minimize: on/dc overlap";
  let ps = Array.of_list (Cover.cubes (primes ~n ~on ~dc)) in
  let np = Array.length ps in
  (* per on-minterm, the list of prime indices covering it *)
  let on_list = Bv.to_list on in
  let covers_of =
    List.map
      (fun m ->
        let l = ref [] in
        for i = np - 1 downto 0 do
          if Cube.contains_minterm ps.(i) m then l := i :: !l
        done;
        (m, !l))
      on_list
  in
  List.iter
    (fun (m, l) ->
      if l = [] then
        invalid_arg (Printf.sprintf "Qm.minimize: minterm %d uncoverable" m))
    covers_of;
  (* order by fewest covering primes first: strongest constraints *)
  let ordered =
    List.sort
      (fun (_, a) (_, b) -> compare (List.length a) (List.length b))
      covers_of
  in
  let best = ref None in
  let best_size = ref max_int in
  let chosen = Array.make np false in
  let rec solve remaining count =
    if count >= !best_size then ()
    else
      match remaining with
      | [] ->
          best_size := count;
          let sel = ref [] in
          Array.iteri (fun i c -> if c then sel := ps.(i) :: !sel) chosen;
          best := Some !sel
      | (m, candidates) :: rest ->
          if List.exists (fun i -> chosen.(i)) candidates then
            solve rest count
          else
            List.iter
              (fun i ->
                chosen.(i) <- true;
                solve rest (count + 1);
                chosen.(i) <- false)
              candidates;
          ignore m
  in
  solve ordered 0;
  match !best with
  | Some cubes -> Cover.make ~n cubes
  | None -> Cover.empty ~n (* on-set was empty *)
