(* REDUCE: replace each cube by its maximally reduced version — the
   smallest cube containing the part of the function only it covers.
   Reduction unlocks different expansions on the next EXPAND pass.

   The maximally reduced cube of c against G = (F \ {c}) ∪ D is
   c ∩ supercube(complement(G cofactored by c)). *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover

let supercube_of_cover cover =
  match Cover.cubes cover with
  | [] -> None
  | c :: rest -> Some (List.fold_left Cube.supercube c rest)

let reduce_cube c context =
  let gc = Cover.cofactor context c in
  if Cover.is_tautology gc then None (* c entirely covered elsewhere *)
  else
    match supercube_of_cover (Cover.complement gc) with
    | None -> None
    | Some sc -> Cube.intersect c sc

let run ~on ~dc =
  let n = Cover.n on in
  (* Process cubes largest-first: espresso reduces in decreasing weight
     so early reductions free room for later ones. *)
  let sorted =
    List.sort
      (fun a b -> compare (Cube.free_count ~n b) (Cube.free_count ~n a))
      (Cover.cubes on)
  in
  let rec go pending done_ =
    match pending with
    | [] -> List.rev done_
    | c :: rest ->
        let context = Cover.make ~n (rest @ done_ @ Cover.cubes dc) in
        (match reduce_cube c context with
        | None -> go rest done_ (* fully redundant: drop *)
        | Some c' -> go rest (c' :: done_))
  in
  Cover.make ~n (go sorted [])
