lib/flow/experiments.ml: Aig Array Espresso Flow List Netlist Pla Rdca_core Reliability Synthetic Techmap Twolevel
