lib/flow/experiments.mli: Random Techmap
