lib/flow/flow.ml: Aig Array Bitvec Espresso List Netlist Pla Printf Rdca_core Reliability Techmap Twolevel
