lib/flow/flow.mli: Espresso Pla Techmap Twolevel
