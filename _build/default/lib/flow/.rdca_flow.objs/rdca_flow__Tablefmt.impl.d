lib/flow/tablefmt.ml: Array List Printf String
