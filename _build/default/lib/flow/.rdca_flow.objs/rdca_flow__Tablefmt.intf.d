lib/flow/tablefmt.mli:
