(** The end-to-end synthesis flow of the paper's experiments:

    spec --(reliability-driven partial DC assignment)-->
    spec' --(espresso per output, conventional use of leftover DCs)-->
    covers --(AIG, balance)--> --(technology mapping)--> netlist,

    measured as (input-error rate, area, delay, power).  This is the
    OCaml equivalent of the paper's ".pla -> Design Compiler" pipeline
    with our substrate (see DESIGN.md). *)

(** How the DC space is treated before conventional synthesis. *)
type strategy =
  | Conventional  (** all DCs left to espresso (the 0% baseline) *)
  | Ranking of float  (** Figure 3 with the given fraction *)
  | Lcf of float  (** Figure 7 with the given threshold *)
  | Complete  (** every non-tied DC assigned for reliability *)

val strategy_name : strategy -> string

(** Result of one synthesis run. *)
type result = {
  error_rate : float;
      (** mean input-error rate of the implementation, measured against
          the {e original} specification's care sets *)
  report : Techmap.Report.t;
  sop_cubes : int;  (** total minimised cover cubes across outputs *)
  assigned_fraction : float;
      (** fraction of the DC space the strategy assigned before
          conventional synthesis *)
}

(** [apply_strategy strategy spec] is the partially assigned spec. *)
val apply_strategy : strategy -> Pla.Spec.t -> Pla.Spec.t

(** [implement spec] finishes any spec with conventional assignment
    and returns the fully specified spec plus per-output covers. *)
val implement : Pla.Spec.t -> Pla.Spec.t * Twolevel.Cover.t list

(** [measured_error ~original assigned] is the mean implementation
    error rate of a fully specified [assigned] against [original]. *)
val measured_error : original:Pla.Spec.t -> Pla.Spec.t -> float

(** [synthesize ?lib ?factored ~mode ~strategy spec] runs the full
    pipeline.  [lib] defaults to {!Techmap.Stdcell.default_library};
    [factored] (default false) algebraically factors each minimised
    cover ({!Twolevel.Factor}) before AIG construction. *)
val synthesize :
  ?lib:Techmap.Stdcell.t list ->
  ?factored:bool ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  result

(** [verified_synthesize] additionally checks (exhaustively) that the
    mapped netlist realises the assigned spec, raising [Failure]
    otherwise.  Used by tests and the quickstart example. *)
val verified_synthesize :
  ?lib:Techmap.Stdcell.t list ->
  ?factored:bool ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  result

(** {1 Multi-output (shared-cube) variant}

    Uses {!Espresso.Multi} so product terms are shared across outputs
    (the real espresso behaviour on multi-output .pla files), instead
    of minimising each output independently. *)

(** [implement_shared spec] conventionally assigns remaining DCs via
    the joint minimisation and returns the fully specified spec plus
    the shared cube list. *)
val implement_shared : Pla.Spec.t -> Pla.Spec.t * Espresso.Multi.mcube list

(** [synthesize_shared] is {!synthesize} on the shared-cube path. *)
val synthesize_shared :
  ?lib:Techmap.Stdcell.t list ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  result
