let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f" v

let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  let line r = String.concat "  " (List.mapi pad r) in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Printf.printf "\n== %s ==\n%s\n%s\n" title (line header) sep;
  List.iter (fun r -> print_endline (line r)) rows;
  print_newline ()
