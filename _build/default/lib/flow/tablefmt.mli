(** Minimal fixed-width table printing for the benchmark harness. *)

(** [print ~title ~header rows] renders an aligned ASCII table to
    stdout.  Column widths fit the widest cell. *)
val print : title:string -> header:string list -> string list list -> unit

(** Cell formatting helpers. *)

val f2 : float -> string
(** two decimals *)

val f3 : float -> string
(** three decimals *)

val pct : float -> string
(** one-decimal percentage (already in percent units) *)
