lib/io/blif.ml: Aig Array Buffer Hashtbl List Logic Netlist Printf String Twolevel
