lib/io/blif.mli: Aig Netlist
