lib/io/verilog.ml: Array Buffer List Netlist Printf String
