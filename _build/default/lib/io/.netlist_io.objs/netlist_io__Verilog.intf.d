lib/io/verilog.mli: Netlist
