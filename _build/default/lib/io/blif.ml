module Gate = Netlist.Gate

let net id = Printf.sprintf "n%d" id

let header buf model inputs outputs =
  Printf.bprintf buf ".model %s\n" model;
  Printf.bprintf buf ".inputs %s\n" (String.concat " " inputs);
  Printf.bprintf buf ".outputs %s\n" (String.concat " " outputs)

(* Single-output truth table as .names cover lines (one line per ON
   row; fine for the <= 4-input gates we emit). *)
let names buf ins out rows =
  Printf.bprintf buf ".names %s %s\n" (String.concat " " ins) out;
  List.iter (fun (pattern, v) ->
      if v then Printf.bprintf buf "%s 1\n" pattern)
    rows

let gate_rows g arity =
  let tt idx =
    Gate.eval g (Array.init arity (fun i -> idx land (1 lsl i) <> 0))
  in
  List.init (1 lsl arity) (fun idx ->
      ( String.init arity (fun i -> if idx land (1 lsl i) <> 0 then '1' else '0'),
        tt idx ))

let of_netlist ?(model = "rdca") nl =
  let buf = Buffer.create 4096 in
  let ni = Netlist.ni nl in
  let inputs = List.init ni (fun i -> net i) in
  (* Distinct output names: an output may alias an internal net. *)
  let outs = Netlist.outputs nl in
  let out_names = Array.to_list (Array.mapi (fun o _ -> Printf.sprintf "po%d" o) outs) in
  header buf model inputs out_names;
  Netlist.iter_nodes nl (fun id g fanins ->
      match g with
      | Gate.Const b ->
          Printf.bprintf buf ".names %s\n%s" (net id) (if b then "1\n" else "")
      | Gate.Cell c ->
          Printf.bprintf buf "# cell %s\n" c.Gate.cell_name;
          names buf
            (Array.to_list (Array.map net fanins))
            (net id)
            (List.init (1 lsl c.Gate.arity) (fun idx ->
                 ( String.init c.Gate.arity (fun i ->
                       if idx land (1 lsl i) <> 0 then '1' else '0'),
                   Logic.Truth.eval c.Gate.tt idx )))
      | g ->
          names buf
            (Array.to_list (Array.map net fanins))
            (net id)
            (gate_rows g (Array.length fanins)));
  Array.iteri
    (fun o id ->
      (* buffer tying the output name to its driving net *)
      names buf [ net id ] (Printf.sprintf "po%d" o) [ ("1", true) ])
    outs;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let of_aig ?(model = "rdca_aig") aig =
  let buf = Buffer.create 4096 in
  let ni = Aig.ni aig in
  let inputs = List.init ni (fun i -> Printf.sprintf "x%d" i) in
  let outs = Aig.outputs aig in
  let out_names =
    Array.to_list (Array.mapi (fun o _ -> Printf.sprintf "po%d" o) outs)
  in
  header buf model inputs out_names;
  let node_name id =
    if id = 0 then "const0"
    else if id <= ni then Printf.sprintf "x%d" (id - 1)
    else Printf.sprintf "a%d" id
  in
  Printf.bprintf buf ".names const0\n";
  Aig.iter_ands aig (fun id a b ->
      let pa = if Aig.is_complemented a then "0" else "1" in
      let pb = if Aig.is_complemented b then "0" else "1" in
      Printf.bprintf buf ".names %s %s %s\n%s%s 1\n"
        (node_name (Aig.node_of a))
        (node_name (Aig.node_of b))
        (node_name id) pa pb);
  Array.iteri
    (fun o l ->
      let pol = if Aig.is_complemented l then "0" else "1" in
      Printf.bprintf buf ".names %s po%d\n%s 1\n"
        (node_name (Aig.node_of l))
        o pol)
    outs;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write file s =
  let oc = open_out file in
  output_string oc s;
  close_out oc

let write_netlist ?model path nl = write path (of_netlist ?model nl)
let write_aig ?model path aig = write path (of_aig ?model aig)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           match String.index_opt l '#' with
           | Some i -> String.sub l 0 i
           | None -> l)
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  let tokens l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  (* first pass: group .names blocks *)
  let inputs = ref [] and outputs = ref [] in
  let blocks = ref [] (* (ins, out, rows) in order *) in
  let current = ref None in
  let flush () =
    match !current with
    | Some (ins, out, rows) ->
        blocks := (ins, out, List.rev rows) :: !blocks;
        current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      match tokens line with
      | ".model" :: _ -> ()
      | ".inputs" :: names -> inputs := !inputs @ names
      | ".outputs" :: names -> outputs := !outputs @ names
      | ".names" :: signals -> (
          flush ();
          match List.rev signals with
          | out :: rev_ins -> current := Some (List.rev rev_ins, out, [])
          | [] -> fail ".names without signals")
      | [ ".end" ] -> flush ()
      | d :: _ when String.length d > 0 && d.[0] = '.' ->
          fail "unsupported directive %s" d
      | row -> (
          match (!current, row) with
          | Some (ins, out, rows), [ pattern; "1" ] ->
              current := Some (ins, out, pattern :: rows)
          | Some (ins, out, rows), [ "1" ] when ins = [] ->
              current := Some (ins, out, "1" :: rows)
          | Some _, _ -> fail "unsupported row %S (only ON-set rows)" line
          | None, _ -> fail "row outside .names: %S" line))
    lines;
  flush ();
  let blocks = List.rev !blocks in
  let nl = Netlist.create ~ni:(List.length !inputs) in
  let env = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.replace env name i) !inputs;
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some id -> id
    | None -> fail "signal %s used before definition" name
  in
  List.iter
    (fun (ins, out, rows) ->
      let arity = List.length ins in
      if arity > Logic.Truth.max_vars then
        fail "table %s: too many inputs (%d)" out arity;
      let id =
        if arity = 0 then
          Netlist.add nl (Gate.Const (rows <> [])) [||]
        else begin
          let tt = ref 0 in
          List.iter
            (fun pattern ->
              if String.length pattern <> arity then
                fail "table %s: row width mismatch" out;
              let cube = Twolevel.Cube.of_string pattern in
              Twolevel.Cube.iter_minterms ~n:arity
                (fun idx -> tt := !tt lor (1 lsl idx))
                cube)
            rows;
          let fanins = Array.of_list (List.map lookup ins) in
          Netlist.add nl
            (Gate.Cell
               {
                 Gate.cell_name = "names";
                 tt = !tt;
                 arity;
                 area = 1.0;
                 delay = 1.0;
                 input_cap = 1.0;
               })
            fanins
        end
      in
      Hashtbl.replace env out id)
    blocks;
  Netlist.set_outputs nl
    (Array.of_list (List.map lookup !outputs));
  nl

let parse_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string text
