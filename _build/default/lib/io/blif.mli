(** BLIF (Berkeley Logic Interchange Format) emission.

    Lets mapped or unmapped netlists and AIGs travel to external tools
    (ABC reads this directly), mirroring how the paper moved designs
    between its tools. Gates are written as [.names] tables; mapped
    cells keep their library name in a comment. *)

(** [of_netlist ?model nl] renders a combinational BLIF model. *)
val of_netlist : ?model:string -> Netlist.t -> string

(** [of_aig ?model aig] renders an AIG as 2-input [.names] tables. *)
val of_aig : ?model:string -> Aig.t -> string

(** [write_netlist path nl] / [write_aig path aig] write files. *)
val write_netlist : ?model:string -> string -> Netlist.t -> unit

val write_aig : ?model:string -> string -> Aig.t -> unit

exception Parse_error of string

(** [parse_string text] reads back the combinational BLIF subset this
    module emits (.model/.inputs/.outputs/.names with ON-set rows,
    defined-before-use).  Tables become {!Netlist.Gate.Cell} instances
    with unit physical data.
    @raise Parse_error on unsupported or malformed input. *)
val parse_string : string -> Netlist.t

val parse_file : string -> Netlist.t
