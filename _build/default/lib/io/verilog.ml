module Gate = Netlist.Gate

let net id = Printf.sprintf "n%d" id

let pin_names = [| "A"; "B"; "C"; "D" |]

let op_expr g fanins =
  let f i = net fanins.(i) in
  let join sep =
    String.concat sep (Array.to_list (Array.map net fanins))
  in
  match g with
  | Gate.Const b -> if b then "1'b1" else "1'b0"
  | Gate.Buf -> f 0
  | Gate.Not -> "~" ^ f 0
  | Gate.And -> join " & "
  | Gate.Or -> join " | "
  | Gate.Nand -> "~(" ^ join " & " ^ ")"
  | Gate.Nor -> "~(" ^ join " | " ^ ")"
  | Gate.Xor -> join " ^ "
  | Gate.Xnor -> "~(" ^ join " ^ " ^ ")"
  | Gate.Input _ | Gate.Cell _ -> assert false

let of_netlist ?(name = "rdca") nl =
  let buf = Buffer.create 4096 in
  let ni = Netlist.ni nl in
  let outs = Netlist.outputs nl in
  let inputs = List.init ni (fun i -> net i) in
  let out_ports = Array.to_list (Array.mapi (fun o _ -> Printf.sprintf "po%d" o) outs) in
  Printf.bprintf buf "module %s(%s);\n" name
    (String.concat ", " (inputs @ out_ports));
  List.iter (fun i -> Printf.bprintf buf "  input %s;\n" i) inputs;
  List.iter (fun o -> Printf.bprintf buf "  output %s;\n" o) out_ports;
  Netlist.iter_nodes nl (fun id _ _ ->
      Printf.bprintf buf "  wire %s;\n" (net id));
  let inst_count = ref 0 in
  Netlist.iter_nodes nl (fun id g fanins ->
      match g with
      | Gate.Cell c ->
          incr inst_count;
          let pins =
            Array.to_list
              (Array.mapi
                 (fun i f -> Printf.sprintf ".%s(%s)" pin_names.(i) (net f))
                 fanins)
          in
          Printf.bprintf buf "  %s u%d (%s, .Y(%s));\n" c.Gate.cell_name
            !inst_count (String.concat ", " pins) (net id)
      | Gate.Input _ -> ()
      | g -> Printf.bprintf buf "  assign %s = %s;\n" (net id) (op_expr g fanins));
  Array.iteri
    (fun o id -> Printf.bprintf buf "  assign po%d = %s;\n" o (net id))
    outs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_netlist ?name path nl =
  let oc = open_out path in
  output_string oc (of_netlist ?name nl);
  close_out oc
