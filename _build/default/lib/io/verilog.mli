(** Structural Verilog emission for mapped netlists.

    Mapped cells become instances of their library cell (pin names
    [A], [B], [C], [D] and output [Y], the usual generic-library
    convention); primitive gates become Verilog operators in [assign]
    statements, so both mapped and unmapped netlists emit valid
    modules. *)

(** [of_netlist ?name nl] renders a Verilog module. *)
val of_netlist : ?name:string -> Netlist.t -> string

val write_netlist : ?name:string -> string -> Netlist.t -> unit
