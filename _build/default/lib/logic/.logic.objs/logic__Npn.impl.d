lib/logic/npn.ml: Array Hashtbl List Truth
