lib/logic/npn.mli: Truth
