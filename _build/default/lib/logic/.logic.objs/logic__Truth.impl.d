lib/logic/truth.ml: Array Format String
