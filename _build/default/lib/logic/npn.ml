type transform = { perm : int array; input_neg : int; output_neg : bool }

let identity k = { perm = Array.init k (fun i -> i); input_neg = 0; output_neg = false }

let apply k tt tr =
  (* Negations are expressed in source input numbering, so apply them
     before the permutation. *)
  let tt = ref tt in
  for i = 0 to k - 1 do
    if tr.input_neg land (1 lsl i) <> 0 then tt := Truth.negate_input k !tt i
  done;
  let tt = Truth.permute k !tt tr.perm in
  if tr.output_neg then Truth.tnot k tt else tt

let rec permutations_list = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations_list rest))
        l

let permutations k =
  permutations_list (List.init k (fun i -> i)) |> List.map Array.of_list

let all_transforms k =
  let perms = permutations k in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun output_neg ->
          List.init (1 lsl k) (fun input_neg -> { perm; input_neg; output_neg }))
        [ false; true ])
    perms

let canonical k tt =
  List.fold_left
    (fun (best, best_tr) tr ->
      let v = apply k tt tr in
      if v < best then (v, tr) else (best, best_tr))
    (apply k tt (identity k), identity k)
    (all_transforms k)

let dedup_by_tt l =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (tt, _) ->
      if Hashtbl.mem seen tt then false
      else begin
        Hashtbl.add seen tt ();
        true
      end)
    l

let p_variants k tt =
  permutations k
  |> List.map (fun perm -> (Truth.permute k tt perm, perm))
  |> dedup_by_tt

let np_variants k tt =
  all_transforms k
  |> List.filter (fun tr -> not tr.output_neg)
  |> List.map (fun tr -> (apply k tt tr, tr))
  |> dedup_by_tt
