(** NPN classification of small functions.

    Two functions are NPN-equivalent when one can be obtained from the
    other by Negating inputs, Permuting inputs and/or Negating the
    output.  The technology mapper uses P-variants (permutation only,
    with optional output negation) to index standard cells, and the
    full NPN canonical form to group cut functions in statistics and
    tests.  Everything is exhaustive — intended for [k <= 4]. *)

(** A transform applied to a function's inputs/output. *)
type transform = {
  perm : int array;  (** result input [j] reads source input [perm.(j)] *)
  input_neg : int;  (** bit [j] set: result input [j] is complemented *)
  output_neg : bool;
}

(** [identity k] is the do-nothing transform. *)
val identity : int -> transform

(** [apply k tt tr] applies a transform to a table:
    negate inputs of [tt] per [tr.input_neg] (in source numbering),
    permute per [tr.perm], then negate the output if requested. *)
val apply : int -> Truth.t -> transform -> Truth.t

(** [permutations k] is all [k!] permutations of [0..k-1]. *)
val permutations : int -> int array list

(** [canonical k tt] is the NPN-canonical representative (the smallest
    table over all transforms) with one transform [tr] achieving
    [apply k tt tr = canonical]. *)
val canonical : int -> Truth.t -> Truth.t * transform

(** [p_variants k tt] lists the distinct tables reachable by input
    permutation only, each with a permutation producing it. *)
val p_variants : int -> Truth.t -> (Truth.t * int array) list

(** [np_variants k tt] adds input negations to {!p_variants}: each
    variant is the table with the transform producing it (output
    never negated). *)
val np_variants : int -> Truth.t -> (Truth.t * transform) list
