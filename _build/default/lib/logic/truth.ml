type t = int

let max_vars = 5

let check k =
  if k < 0 || k > max_vars then invalid_arg "Truth: too many variables"

let mask k =
  check k;
  (1 lsl (1 lsl k)) - 1

let of_fun k f =
  check k;
  let acc = ref 0 in
  for idx = (1 lsl k) - 1 downto 0 do
    acc := (!acc lsl 1) lor if f idx then 1 else 0
  done;
  !acc

let eval tt idx = tt land (1 lsl idx) <> 0

let var k i =
  check k;
  if i < 0 || i >= k then invalid_arg "Truth.var: out of range";
  of_fun k (fun idx -> idx land (1 lsl i) <> 0)

let tnot k tt = lnot tt land mask k
let tand a b = a land b
let tor a b = a lor b
let txor a b = a lxor b
let zero = 0
let ones k = mask k

let cofactor k tt ~i ~value =
  check k;
  of_fun k (fun idx ->
      let idx' =
        if value then idx lor (1 lsl i) else idx land lnot (1 lsl i)
      in
      eval tt idx')

let depends_on k tt i =
  cofactor k tt ~i ~value:false <> cofactor k tt ~i ~value:true

let support_size k tt =
  let rec go i acc =
    if i >= k then acc else go (i + 1) (if depends_on k tt i then acc + 1 else acc)
  in
  go 0 0

let is_perm k perm =
  Array.length perm = k
  &&
  let seen = Array.make k false in
  Array.for_all
    (fun p ->
      if p < 0 || p >= k || seen.(p) then false
      else begin
        seen.(p) <- true;
        true
      end)
    perm

let permute k tt perm =
  check k;
  if not (is_perm k perm) then invalid_arg "Truth.permute: not a permutation";
  of_fun k (fun idx ->
      (* bit j of idx drives original input perm.(j) *)
      let idx' = ref 0 in
      for j = 0 to k - 1 do
        if idx land (1 lsl j) <> 0 then idx' := !idx' lor (1 lsl perm.(j))
      done;
      eval tt !idx')

let negate_input k tt i =
  check k;
  of_fun k (fun idx -> eval tt (idx lxor (1 lsl i)))

let expand k tt ~extra =
  check (k + extra);
  of_fun (k + extra) (fun idx -> eval tt (idx land ((1 lsl k) - 1)))

let to_string k tt =
  String.init (1 lsl k) (fun idx -> if eval tt idx then '1' else '0')

let pp k ppf tt = Format.fprintf ppf "%s (0x%x)" (to_string k tt) tt
