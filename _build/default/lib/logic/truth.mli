(** Small truth tables packed into a native [int].

    A table over [k] inputs ([0 <= k <= 5]) occupies the low [2^k]
    bits: bit [idx] is the function value on the input combination
    whose bit [i] is the value of input [x_i].  These are the function
    signatures used for cut matching in the technology mapper. *)

type t = int

(** [max_vars] is 5 (32-bit tables fit a native int comfortably). *)
val max_vars : int

(** [mask k] has the low [2^k] bits set. @raise Invalid_argument if
    [k] is out of range. *)
val mask : int -> t

(** [of_fun k f] tabulates [f] over the [2^k] input combinations. *)
val of_fun : int -> (int -> bool) -> t

(** [eval tt idx] is bit [idx] of the table. *)
val eval : t -> int -> bool

(** [var k i] is the projection table of input [i] over [k] inputs. *)
val var : int -> int -> t

(** Connectives over [k]-input tables. *)

val tnot : int -> t -> t

val tand : t -> t -> t

val tor : t -> t -> t

val txor : t -> t -> t

(** Constants over [k] inputs. *)

val zero : t

val ones : int -> t

(** [cofactor k tt ~i ~value] is the [k]-input table with input [i]
    fixed (the result no longer depends on [i]). *)
val cofactor : int -> t -> i:int -> value:bool -> t

(** [depends_on k tt i] tests real dependence on input [i]. *)
val depends_on : int -> t -> int -> bool

(** [support_size k tt] is the number of inputs [tt] depends on. *)
val support_size : int -> t -> int

(** [permute k tt perm] relabels inputs: the result's input [j] is the
    original's input [perm.(j)], i.e.
    [eval (permute k tt perm) idx = eval tt (apply perm idx)] where
    bit [perm.(j)] of the permuted index is bit [j] of [idx].
    @raise Invalid_argument if [perm] is not a permutation of [0..k-1]. *)
val permute : int -> t -> int array -> t

(** [negate_input k tt i] composes with the flip of input [i]. *)
val negate_input : int -> t -> int -> t

(** [expand k tt ~extra] widens a [k]-input table to [k + extra]
    inputs that it ignores. *)
val expand : int -> t -> extra:int -> t

(** [to_string k tt] is the table as a [2^k]-character 0/1 string,
    index 0 first; [pp] prints it with a [0x] hex form. *)
val to_string : int -> t -> string

val pp : int -> Format.formatter -> t -> unit
