lib/netlist/netlist.ml: Array Bitvec Format Gate Printf String
