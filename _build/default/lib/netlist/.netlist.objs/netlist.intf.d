lib/netlist/netlist.mli: Bitvec Format Gate
