lib/netlist/gate.ml: Array Fun Logic Printf
