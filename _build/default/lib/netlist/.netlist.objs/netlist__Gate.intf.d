lib/netlist/gate.mli: Logic
