type cell_info = {
  cell_name : string;
  tt : Logic.Truth.t;
  arity : int;
  area : float;
  delay : float;
  input_cap : float;
}

type t =
  | Input of int
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Cell of cell_info

let arity = function
  | Input _ | Const _ -> Some 0
  | Buf | Not -> Some 1
  | And | Or | Nand | Nor | Xor | Xnor -> None
  | Cell c -> Some c.arity

let check_arity g inputs =
  match arity g with
  | Some a when Array.length inputs <> a ->
      invalid_arg
        (Printf.sprintf "Gate.eval: %d fanins where %d expected"
           (Array.length inputs) a)
  | Some _ -> ()
  | None ->
      if Array.length inputs < 2 then
        invalid_arg "Gate.eval: variadic gate needs >= 2 fanins"

let eval g inputs =
  check_arity g inputs;
  match g with
  | Input _ -> invalid_arg "Gate.eval: Input has no local function"
  | Const b -> b
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And -> Array.for_all Fun.id inputs
  | Or -> Array.exists Fun.id inputs
  | Nand -> not (Array.for_all Fun.id inputs)
  | Nor -> not (Array.exists Fun.id inputs)
  | Xor -> Array.fold_left (fun acc b -> acc <> b) false inputs
  | Xnor -> not (Array.fold_left (fun acc b -> acc <> b) false inputs)
  | Cell c ->
      let idx = ref 0 in
      Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) inputs;
      Logic.Truth.eval c.tt !idx

(* Word-parallel evaluation: every bit position is an independent
   pattern.  Cell truth tables are evaluated as a sum of minterms over
   the fanin words (at most 2^4 terms for mapped cells). *)
let eval_words g inputs =
  check_arity g inputs;
  let full = -1 in
  match g with
  | Input _ -> invalid_arg "Gate.eval_words: Input has no local function"
  | Const b -> if b then full else 0
  | Buf -> inputs.(0)
  | Not -> lnot inputs.(0)
  | And -> Array.fold_left ( land ) full inputs
  | Or -> Array.fold_left ( lor ) 0 inputs
  | Nand -> lnot (Array.fold_left ( land ) full inputs)
  | Nor -> lnot (Array.fold_left ( lor ) 0 inputs)
  | Xor -> Array.fold_left ( lxor ) 0 inputs
  | Xnor -> lnot (Array.fold_left ( lxor ) 0 inputs)
  | Cell c ->
      let acc = ref 0 in
      for idx = 0 to (1 lsl c.arity) - 1 do
        if Logic.Truth.eval c.tt idx then begin
          let term = ref full in
          for i = 0 to c.arity - 1 do
            let w = inputs.(i) in
            term := !term land (if idx land (1 lsl i) <> 0 then w else lnot w)
          done;
          acc := !acc lor !term
        end
      done;
      !acc

let name = function
  | Input i -> Printf.sprintf "input[%d]" i
  | Const b -> if b then "const1" else "const0"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Cell c -> c.cell_name
