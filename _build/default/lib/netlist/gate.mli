(** Gate kinds for {!Netlist} nodes.

    Primitive gates carry no physical data; [Cell] instances carry the
    standard-cell attributes the technology mapper chose, so mapped
    and unmapped netlists share one representation. *)

(** Attributes of a standard-cell instance. *)
type cell_info = {
  cell_name : string;
  tt : Logic.Truth.t;  (** function over the fanins, pin order = fanin order *)
  arity : int;
  area : float;  (** square microns (library units) *)
  delay : float;  (** pin-to-output delay, ns *)
  input_cap : float;  (** per-pin input capacitance, fF *)
}

type t =
  | Input of int  (** primary input index *)
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Cell of cell_info

(** [arity g] is the expected fanin count, or [None] when variadic
    ([And]/[Or]/[Nand]/[Nor]/[Xor]/[Xnor] accept >= 2). *)
val arity : t -> int option

(** [eval g inputs] evaluates a gate on boolean fanin values.
    @raise Invalid_argument on arity mismatch. *)
val eval : t -> bool array -> bool

(** [eval_words g inputs] evaluates 63 patterns at once, one per bit. *)
val eval_words : t -> int array -> int

(** [name g] is a printable mnemonic. *)
val name : t -> string
