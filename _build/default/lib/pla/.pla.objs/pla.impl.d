lib/pla/pla.ml: Array Bitvec Buffer Format List Printf Spec String Twolevel
