lib/pla/pla.mli: Spec Twolevel
