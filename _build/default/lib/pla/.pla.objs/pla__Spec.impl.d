lib/pla/spec.ml: Array Bitvec Bytes Format List Twolevel
