lib/pla/spec.mli: Bitvec Format Twolevel
