type phase = On | Off | Dc

type t = { ni : int; no : int; tables : Bytes.t array }

let phase_to_char = function Off -> '\000' | On -> '\001' | Dc -> '\002'

let phase_of_char = function
  | '\000' -> Off
  | '\001' -> On
  | '\002' -> Dc
  | _ -> assert false

let create ~ni ~no ~default =
  if ni < 0 || ni > 20 || no <= 0 then invalid_arg "Spec.create";
  let len = 1 lsl ni in
  let tables =
    Array.init no (fun _ -> Bytes.make len (phase_to_char default))
  in
  { ni; no; tables }

let ni t = t.ni
let no t = t.no
let size t = 1 lsl t.ni

let check t ~o ~m =
  if o < 0 || o >= t.no then invalid_arg "Spec: output out of range";
  if m < 0 || m >= size t then invalid_arg "Spec: minterm out of range"

let get t ~o ~m =
  check t ~o ~m;
  phase_of_char (Bytes.get t.tables.(o) m)

let set t ~o ~m p =
  check t ~o ~m;
  Bytes.set t.tables.(o) m (phase_to_char p)

let assign_dc t ~o ~m v =
  if get t ~o ~m <> Dc then invalid_arg "Spec.assign_dc: minterm is not DC";
  set t ~o ~m (if v then On else Off)

let copy t = { t with tables = Array.map Bytes.copy t.tables }

let equal a b =
  a.ni = b.ni && a.no = b.no && Array.for_all2 Bytes.equal a.tables b.tables

let count_phase t ~o p =
  let c = phase_to_char p in
  let table = t.tables.(o) in
  let acc = ref 0 in
  Bytes.iter (fun ch -> if ch = c then incr acc) table;
  !acc

let on_count t ~o = count_phase t ~o On
let off_count t ~o = count_phase t ~o Off
let dc_count t ~o = count_phase t ~o Dc

let signal_probs t ~o =
  let total = float_of_int (size t) in
  ( float_of_int (on_count t ~o) /. total,
    float_of_int (off_count t ~o) /. total,
    float_of_int (dc_count t ~o) /. total )

let dc_fraction t =
  let dcs = ref 0 in
  for o = 0 to t.no - 1 do
    dcs := !dcs + dc_count t ~o
  done;
  float_of_int !dcs /. float_of_int (size t * t.no)

let is_fully_specified t =
  let dc = phase_to_char Dc in
  Array.for_all
    (fun table ->
      let ok = ref true in
      Bytes.iter (fun c -> if c = dc then ok := false) table;
      !ok)
    t.tables

let iter_dc t ~o f =
  let dc = phase_to_char Dc in
  Bytes.iteri (fun m c -> if c = dc then f m) t.tables.(o)

let phase_bv t ~o p =
  let c = phase_to_char p in
  let bv = Bitvec.Bv.create (size t) in
  Bytes.iteri (fun m ch -> if ch = c then Bitvec.Bv.set bv m) t.tables.(o);
  bv

let on_bv t ~o = phase_bv t ~o On
let off_bv t ~o = phase_bv t ~o Off
let dc_bv t ~o = phase_bv t ~o Dc

let phase_cover t ~o p =
  let c = phase_to_char p in
  let cubes = ref [] in
  Bytes.iteri
    (fun m ch ->
      if ch = c then cubes := Twolevel.Cube.of_minterm ~n:t.ni m :: !cubes)
    t.tables.(o);
  Twolevel.Cover.make ~n:t.ni (List.rev !cubes)

let on_cover t ~o = phase_cover t ~o On
let dc_cover t ~o = phase_cover t ~o Dc

let of_covers ~ni covers =
  if covers = [] then invalid_arg "Spec.of_covers: no outputs";
  let no = List.length covers in
  let t = create ~ni ~no ~default:Off in
  List.iteri
    (fun o (on, dc) ->
      if Twolevel.Cover.n on <> ni || Twolevel.Cover.n dc <> ni then
        invalid_arg "Spec.of_covers: arity mismatch";
      List.iter
        (Twolevel.Cube.iter_minterms ~n:ni (fun m -> set t ~o ~m Dc))
        (Twolevel.Cover.cubes dc);
      List.iter
        (Twolevel.Cube.iter_minterms ~n:ni (fun m -> set t ~o ~m On))
        (Twolevel.Cover.cubes on))
    covers;
  t

let neighbour_counts t ~o ~m =
  check t ~o ~m;
  let table = t.tables.(o) in
  let on = ref 0 and off = ref 0 and dc = ref 0 in
  for j = 0 to t.ni - 1 do
    match phase_of_char (Bytes.get table (m lxor (1 lsl j))) with
    | On -> incr on
    | Off -> incr off
    | Dc -> incr dc
  done;
  (!on, !off, !dc)

let on_neighbours t ~o ~m =
  let on, _, _ = neighbour_counts t ~o ~m in
  on

let off_neighbours t ~o ~m =
  let _, off, _ = neighbour_counts t ~o ~m in
  off

let dc_neighbours t ~o ~m =
  let _, _, dc = neighbour_counts t ~o ~m in
  dc

let output_value t ~o ~m =
  match get t ~o ~m with
  | On -> true
  | Off -> false
  | Dc -> invalid_arg "Spec.output_value: unassigned DC"

let pp ppf t =
  Format.fprintf ppf "@[<v>spec: %d inputs, %d outputs@," t.ni t.no;
  for o = 0 to t.no - 1 do
    Format.fprintf ppf "  y%d: |on|=%d |off|=%d |dc|=%d@," o (on_count t ~o)
      (off_count t ~o) (dc_count t ~o)
  done;
  Format.fprintf ppf "@]"
