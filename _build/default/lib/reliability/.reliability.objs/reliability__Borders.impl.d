lib/reliability/borders.ml: Pla
