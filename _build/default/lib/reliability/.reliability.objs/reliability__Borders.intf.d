lib/reliability/borders.mli: Pla
