lib/reliability/error_rate.ml: Array Bitvec Netlist Pla
