lib/reliability/error_rate.mli: Bitvec Netlist Pla
