lib/reliability/estimate.ml: Borders Pla Stats
