lib/reliability/estimate.mli: Pla
