lib/reliability/fault_sim.ml: Array Netlist Pla Random
