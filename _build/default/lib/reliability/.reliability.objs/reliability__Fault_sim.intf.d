lib/reliability/fault_sim.mli: Netlist Pla Random
