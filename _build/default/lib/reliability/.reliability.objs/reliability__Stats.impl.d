lib/reliability/stats.ml:
