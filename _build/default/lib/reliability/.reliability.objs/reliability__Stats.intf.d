lib/reliability/stats.mli:
