lib/reliability/sym.ml: Bdd Estimate Pla
