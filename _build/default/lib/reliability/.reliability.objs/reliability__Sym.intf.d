lib/reliability/sym.mli: Bdd Estimate Pla Twolevel
