module Spec = Pla.Spec

let ordered_pairs spec = Spec.ni spec * Spec.size spec

let same_phase_pairs spec ~o =
  let n = Spec.ni spec in
  let count = ref 0 in
  for m = 0 to Spec.size spec - 1 do
    let p = Spec.get spec ~o ~m in
    for j = 0 to n - 1 do
      if Spec.get spec ~o ~m:(m lxor (1 lsl j)) = p then incr count
    done
  done;
  !count

let complexity_factor spec ~o =
  float_of_int (same_phase_pairs spec ~o) /. float_of_int (ordered_pairs spec)

let mean_over_outputs f spec =
  let no = Spec.no spec in
  let acc = ref 0.0 in
  for o = 0 to no - 1 do
    acc := !acc +. f spec ~o
  done;
  !acc /. float_of_int no

let mean_complexity_factor spec = mean_over_outputs complexity_factor spec

let expected_complexity_factor spec ~o =
  let f1, f0, fdc = Spec.signal_probs spec ~o in
  (f0 *. f0) +. (f1 *. f1) +. (fdc *. fdc)

let mean_expected_complexity_factor spec =
  mean_over_outputs expected_complexity_factor spec

let local_complexity_factor spec ~o ~m =
  let n = Spec.ni spec in
  let count = ref 0 in
  for j = 0 to n - 1 do
    let xj = m lxor (1 lsl j) in
    let pj = Spec.get spec ~o ~m:xj in
    (* x_k ranges over all n neighbours of x_j — including m itself
       (flipping bit j again), which the paper's definition admits. *)
    for k = 0 to n - 1 do
      let xk = xj lxor (1 lsl k) in
      if Spec.get spec ~o ~m:xk = pj then incr count
    done
  done;
  float_of_int !count /. float_of_int (n * n)

type counts = { b0 : int; b1 : int; bdc : int }

let border_counts spec ~o =
  let n = Spec.ni spec in
  let b0 = ref 0 and b1 = ref 0 and bdc = ref 0 in
  for m = 0 to Spec.size spec - 1 do
    let p = Spec.get spec ~o ~m in
    for j = 0 to n - 1 do
      let p' = Spec.get spec ~o ~m:(m lxor (1 lsl j)) in
      if p' <> p then
        match p with
        | Spec.Off -> incr b0
        | Spec.On -> incr b1
        | Spec.Dc -> incr bdc
    done
  done;
  { b0 = !b0; b1 = !b1; bdc = !bdc }
