module Spec = Pla.Spec

type result = { trials : int; propagated : int; rate : float }

let run ~rng ~trials spec nl =
  if Netlist.ni nl <> Spec.ni spec then
    invalid_arg "Fault_sim.run: input count mismatch";
  if trials <= 0 then invalid_arg "Fault_sim.run: trials must be positive";
  let n = Spec.ni spec in
  let size = Spec.size spec in
  let no = Spec.no spec in
  let propagated = ref 0 in
  for _ = 1 to trials do
    let m = Random.State.int rng size in
    let j = Random.State.int rng n in
    let outs = Netlist.eval_minterm nl m in
    let outs' = Netlist.eval_minterm nl (m lxor (1 lsl j)) in
    for o = 0 to no - 1 do
      (* Errors only originate at care vectors of this output. *)
      match Spec.get spec ~o ~m with
      | Spec.Dc -> ()
      | Spec.On | Spec.Off -> if outs.(o) <> outs'.(o) then incr propagated
    done
  done;
  {
    trials;
    propagated = !propagated;
    rate = float_of_int !propagated /. float_of_int (trials * no);
  }
