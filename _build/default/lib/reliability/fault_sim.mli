(** Monte-Carlo single-bit input-error injection on mapped circuits.

    Validates the analytic error-rate computation against actual
    circuit behaviour: a random care vector is applied, a random input
    flipped, the circuit evaluated twice, and the outputs compared.
    With enough trials the estimate converges to
    {!Error_rate.of_netlist}. *)

type result = {
  trials : int;
  propagated : int;  (** per-output propagation events observed *)
  rate : float;  (** propagated / (trials * outputs) *)
}

(** [run ~rng ~trials spec nl] injects [trials] random error events.
    Each event picks a uniform random minterm that is a care vector
    for at least one output and a uniform random input to flip; an
    event counts once per output whose value changes and whose
    correct-vector phase is a care phase.
    @raise Invalid_argument if netlist and spec input counts differ
    or [trials <= 0]. *)
val run : rng:Random.State.t -> trials:int -> Pla.Spec.t -> Netlist.t -> result
