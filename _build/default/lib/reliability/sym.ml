type sets = { on : Bdd.t; off : Bdd.t; dc : Bdd.t }

let of_spec man spec ~o =
  if Bdd.nvars man <> Pla.Spec.ni spec then
    invalid_arg "Sym.of_spec: manager variable count mismatch";
  {
    on = Bdd.of_bv man (Pla.Spec.on_bv spec ~o);
    off = Bdd.of_bv man (Pla.Spec.off_bv spec ~o);
    dc = Bdd.of_bv man (Pla.Spec.dc_bv spec ~o);
  }

let of_covers man ~on ~dc =
  let on_b = Bdd.of_cover man on in
  let dc_raw = Bdd.of_cover man dc in
  (* espresso fd semantics: the on-set wins overlaps *)
  let dc_b = Bdd.band man dc_raw (Bdd.bnot man on_b) in
  let off_b = Bdd.bnot man (Bdd.bor man on_b dc_b) in
  { on = on_b; off = off_b; dc = dc_b }

let validate man s =
  let overlap a b = not (Bdd.is_zero man (Bdd.band man a b)) in
  if overlap s.on s.off then Some "on and off sets overlap"
  else if overlap s.on s.dc then Some "on and dc sets overlap"
  else if overlap s.off s.dc then Some "off and dc sets overlap"
  else if
    not
      (Bdd.is_one man (Bdd.bor man s.on (Bdd.bor man s.off s.dc)))
  then Some "sets do not cover the space"
  else None

type stats = {
  f1 : float;
  f0 : float;
  fdc : float;
  b0 : float;
  b1 : float;
  bdc : float;
  base_rate : float;
  cf : float;
}

let stats man s =
  let n = Bdd.nvars man in
  let size = 2.0 ** float_of_int n in
  let count = Bdd.satcount_float man in
  let f1 = count s.on /. size in
  let f0 = count s.off /. size in
  let fdc = count s.dc /. size in
  (* Per input j, neighbour-membership functions via flip_var. *)
  let b0 = ref 0.0 and b1 = ref 0.0 and bdc = ref 0.0 in
  let base = ref 0.0 and same = ref 0.0 in
  for j = 0 to n - 1 do
    let fon = Bdd.flip_var man s.on j in
    let foff = Bdd.flip_var man s.off j in
    let fdc_ = Bdd.flip_var man s.dc j in
    let inter a b = count (Bdd.band man a b) in
    b1 := !b1 +. inter s.on (Bdd.bnot man fon);
    b0 := !b0 +. inter s.off (Bdd.bnot man foff);
    bdc := !bdc +. inter s.dc (Bdd.bnot man fdc_);
    base := !base +. inter s.on foff +. inter s.off fon;
    same := !same +. inter s.on fon +. inter s.off foff +. inter s.dc fdc_
  done;
  let events = float_of_int n *. size in
  {
    f1;
    f0;
    fdc;
    b0 = !b0;
    b1 = !b1;
    bdc = !bdc;
    base_rate = !base /. events;
    cf = !same /. events;
  }

let signal_interval man s =
  let st = stats man s in
  Estimate.signal_from ~n:(Bdd.nvars man) ~f1:st.f1 ~f0:st.f0 ~fdc:st.fdc

let border_interval man s =
  let st = stats man s in
  Estimate.border_from ~n:(Bdd.nvars man) ~f1:st.f1 ~f0:st.f0 ~fdc:st.fdc
    ~b0:st.b0 ~b1:st.b1 ~bdc:st.bdc
