(** Symbolic (BDD-based) reliability analysis.

    The paper manipulated on-, off- and DC-sets with CUDD; this module
    plays that role.  Everything Section 5 needs without minterm
    enumeration is computed symbolically — signal probabilities,
    border counts, the complexity factor, the exact base-error — so
    the analytical min–max estimates scale to input counts far beyond
    the dense representation's n <= 20 limit.  (The exact min/max
    DC-assignment bounds intrinsically need per-minterm neighbour
    minima and stay on the dense path.)

    The three set arguments must partition the space:
    [validate] checks this. *)

type sets = { on : Bdd.t; off : Bdd.t; dc : Bdd.t }

(** [of_spec man spec ~o] builds the three set BDDs of one output.
    The manager must have [Spec.ni spec] variables. *)
val of_spec : Bdd.man -> Pla.Spec.t -> o:int -> sets

(** [of_covers man ~on ~dc] builds sets from covers (off = complement
    of their union) — the scalable entry point. *)
val of_covers : Bdd.man -> on:Twolevel.Cover.t -> dc:Twolevel.Cover.t -> sets

(** [validate man sets] is [Some msg] when the sets overlap or leak. *)
val validate : Bdd.man -> sets -> string option

(** Aggregate statistics extracted symbolically. *)
type stats = {
  f1 : float;
  f0 : float;
  fdc : float;
  b0 : float;  (** ordered off->elsewhere borders *)
  b1 : float;
  bdc : float;
  base_rate : float;  (** exact base error rate *)
  cf : float;  (** complexity factor *)
}

val stats : Bdd.man -> sets -> stats

(** The Section 5 estimates, computed from {!stats} alone. *)

val signal_interval : Bdd.man -> sets -> Estimate.interval

val border_interval : Bdd.man -> sets -> Estimate.interval
