lib/synthetic/circuits.ml: Aig Array List
