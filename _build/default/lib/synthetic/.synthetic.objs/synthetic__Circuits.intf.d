lib/synthetic/circuits.mli: Aig
