lib/synthetic/suite.ml: Float Hashtbl List Random String Synth_gen
