lib/synthetic/suite.mli: Pla
