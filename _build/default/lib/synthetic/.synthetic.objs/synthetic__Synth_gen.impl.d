lib/synthetic/synth_gen.ml: Array Bitvec Bytes Char Float List Pla Random Reliability
