lib/synthetic/synth_gen.mli: Pla Random
