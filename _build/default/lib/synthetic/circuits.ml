let check_bits bits = if bits < 1 then invalid_arg "Circuits: bits < 1"

let full_adder t a b cin =
  let sum = Aig.lxor_ t (Aig.lxor_ t a b) cin in
  let carry =
    Aig.lor_ t (Aig.land_ t a b)
      (Aig.lor_ t (Aig.land_ t a cin) (Aig.land_ t b cin))
  in
  (sum, carry)

let adder ~bits =
  check_bits bits;
  let t = Aig.create ~ni:(2 * bits) in
  let a i = Aig.input t i and b i = Aig.input t (bits + i) in
  let sums = ref [] and carry = ref Aig.const0 in
  for i = 0 to bits - 1 do
    let s, c = full_adder t (a i) (b i) !carry in
    sums := s :: !sums;
    carry := c
  done;
  Aig.set_outputs t (Array.of_list (List.rev !sums @ [ !carry ]));
  t

let multiplier ~bits =
  check_bits bits;
  let t = Aig.create ~ni:(2 * bits) in
  let a i = Aig.input t i and b i = Aig.input t (bits + i) in
  (* partial-product accumulation, schoolbook style: result has
     2*bits columns of literals to sum with full adders *)
  let columns = Array.make (2 * bits) [] in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      columns.(i + j) <- Aig.land_ t (a i) (b j) :: columns.(i + j)
    done
  done;
  let outs = Array.make (2 * bits) Aig.const0 in
  for col = 0 to (2 * bits) - 1 do
    (* compress the column with full/half adders, pushing carries *)
    let rec compress = function
      | [] -> Aig.const0
      | [ x ] -> x
      | [ x; y ] ->
          let s = Aig.lxor_ t x y in
          let c = Aig.land_ t x y in
          if col + 1 < 2 * bits then
            columns.(col + 1) <- c :: columns.(col + 1);
          s
      | x :: y :: z :: rest ->
          let s, c = full_adder t x y z in
          if col + 1 < 2 * bits then
            columns.(col + 1) <- c :: columns.(col + 1);
          compress (s :: rest)
    in
    outs.(col) <- compress columns.(col)
  done;
  Aig.set_outputs t outs;
  t

let comparator ~bits =
  check_bits bits;
  let t = Aig.create ~ni:(2 * bits) in
  let a i = Aig.input t i and b i = Aig.input t (bits + i) in
  (* scan from MSB: lt/gt latch at the first difference *)
  let lt = ref Aig.const0 and gt = ref Aig.const0 and eq = ref Aig.const1 in
  for i = bits - 1 downto 0 do
    let ai = a i and bi = b i in
    let ai_lt = Aig.land_ t (Aig.lnot ai) bi in
    let ai_gt = Aig.land_ t ai (Aig.lnot bi) in
    lt := Aig.lor_ t !lt (Aig.land_ t !eq ai_lt);
    gt := Aig.lor_ t !gt (Aig.land_ t !eq ai_gt);
    eq := Aig.land_ t !eq (Aig.lnot (Aig.lxor_ t ai bi))
  done;
  Aig.set_outputs t [| !lt; !eq; !gt |];
  t

let alu ~bits =
  check_bits bits;
  let t = Aig.create ~ni:((2 * bits) + 2) in
  let a i = Aig.input t i and b i = Aig.input t (bits + i) in
  let s0 = Aig.input t (2 * bits) and s1 = Aig.input t ((2 * bits) + 1) in
  let carry = ref Aig.const0 in
  let outs =
    Array.init bits (fun i ->
        let ai = a i and bi = b i in
        let and_ = Aig.land_ t ai bi in
        let or_ = Aig.lor_ t ai bi in
        let xor_ = Aig.lxor_ t ai bi in
        let sum, c = full_adder t ai bi !carry in
        carry := c;
        (* 00 AND, 01 OR, 10 XOR, 11 ADD *)
        let low = Aig.lmux t ~sel:s0 ~th:or_ ~el:and_ in
        let high = Aig.lmux t ~sel:s0 ~th:sum ~el:xor_ in
        Aig.lmux t ~sel:s1 ~th:high ~el:low)
  in
  Aig.set_outputs t outs;
  t

let parity ~bits =
  check_bits bits;
  let t = Aig.create ~ni:bits in
  let acc = ref Aig.const0 in
  for i = 0 to bits - 1 do
    acc := Aig.lxor_ t !acc (Aig.input t i)
  done;
  Aig.set_outputs t [| !acc |];
  t

let majority3 () =
  let t = Aig.create ~ni:3 in
  let a = Aig.input t 0 and b = Aig.input t 1 and c = Aig.input t 2 in
  let m =
    Aig.lor_ t (Aig.land_ t a b)
      (Aig.lor_ t (Aig.land_ t a c) (Aig.land_ t b c))
  in
  Aig.set_outputs t [| m |];
  t
