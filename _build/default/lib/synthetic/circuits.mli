(** Parameterised arithmetic circuit generators.

    Realistic structured workloads (the kind the paper's Section 4
    targets with nodal decomposition) built directly as AIGs:
    ripple-carry adders, array multipliers, comparators and a small
    mux-select ALU.  Input packing: operand A occupies inputs
    [0..bits-1] (LSB first), operand B [bits..2*bits-1], extra control
    inputs follow. *)

(** [adder ~bits] — ripple-carry adder; [bits+1] outputs (sum, carry).
    Inputs: 2*bits.  @raise Invalid_argument if [bits < 1]. *)
val adder : bits:int -> Aig.t

(** [multiplier ~bits] — array multiplier; [2*bits] outputs.
    Inputs: 2*bits. *)
val multiplier : bits:int -> Aig.t

(** [comparator ~bits] — outputs [lt; eq; gt] for unsigned A vs B. *)
val comparator : bits:int -> Aig.t

(** [alu ~bits] — outputs A op B where op is selected by two control
    inputs (indices 2*bits and 2*bits+1): 00 AND, 01 OR, 10 XOR,
    11 ADD (sum bits only).  Inputs: 2*bits+2; outputs: bits. *)
val alu : bits:int -> Aig.t

(** [parity ~bits] — single-output parity of [bits] inputs. *)
val parity : bits:int -> Aig.t

(** [majority3] — the 3-input majority voter. *)
val majority3 : unit -> Aig.t
