lib/techmap/lutmap.ml: Aig Array List Logic Netlist Printf String
