lib/techmap/lutmap.mli: Aig Netlist
