lib/techmap/mapper.ml: Aig Array Hashtbl List Logic Netlist Stdcell
