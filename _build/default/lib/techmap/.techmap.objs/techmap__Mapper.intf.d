lib/techmap/mapper.mli: Aig Netlist Stdcell
