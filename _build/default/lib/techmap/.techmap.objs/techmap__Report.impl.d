lib/techmap/report.ml: Format Netlist
