lib/techmap/report.mli: Format Netlist
