lib/techmap/stdcell.ml: List Logic Netlist Printf
