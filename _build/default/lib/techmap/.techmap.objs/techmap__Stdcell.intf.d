lib/techmap/stdcell.mli: Logic Netlist
