module Truth = Logic.Truth

let lut_cell ~k tt =
  Netlist.Gate.Cell
    {
      Netlist.Gate.cell_name = Printf.sprintf "LUT%d" k;
      tt;
      arity = k;
      area = 1.0;
      delay = 1.0;
      input_cap = 1.0;
    }

let inv_cell =
  Netlist.Gate.Cell
    {
      Netlist.Gate.cell_name = "LUT1";
      tt = Truth.tnot 1 (Truth.var 1 0);
      arity = 1;
      area = 1.0;
      delay = 1.0;
      input_cap = 1.0;
    }

let map ~k aig =
  if k < 2 || k > 4 then invalid_arg "Lutmap.map: k must be in [2,4]";
  let cuts = Aig.Cut.enumerate aig ~k ~max_cuts:8 in
  let n = Aig.num_nodes aig in
  (* fanout estimate for area flow *)
  let fanout = Array.make n 1.0 in
  let bump id = fanout.(id) <- fanout.(id) +. 1.0 in
  Aig.iter_ands aig (fun _ a b ->
      bump (Aig.node_of a);
      bump (Aig.node_of b));
  let flow = Array.make n 0.0 in
  let choice = Array.make n None in
  Aig.iter_ands aig (fun id _ _ ->
      let best = ref None in
      List.iter
        (fun cut ->
          let size = Array.length cut.Aig.Cut.leaves in
          if size >= 2 && size <= k then begin
            let cost =
              Array.fold_left
                (fun acc leaf -> acc +. (flow.(leaf) /. fanout.(leaf)))
                1.0 cut.Aig.Cut.leaves
            in
            match !best with
            | Some (bc, _) when bc <= cost -> ()
            | _ -> best := Some (cost, cut)
          end)
        cuts.(id);
      match !best with
      | Some (cost, cut) ->
          flow.(id) <- cost;
          choice.(id) <- Some cut
      | None -> failwith "Lutmap: AND node without a usable cut");
  (* emission *)
  let nl = Netlist.create ~ni:(Aig.ni aig) in
  let pos = Array.make n (-1) in
  let neg = Array.make n (-1) in
  for i = 0 to Aig.ni aig - 1 do
    pos.(i + 1) <- i
  done;
  let rec emit id =
    if pos.(id) >= 0 then pos.(id)
    else
      match choice.(id) with
      | None -> invalid_arg "Lutmap: unreachable node requested"
      | Some cut ->
          let leaf_nets = Array.map emit cut.Aig.Cut.leaves in
          let size = Array.length leaf_nets in
          let net = Netlist.add nl (lut_cell ~k:size cut.Aig.Cut.tt) leaf_nets in
          pos.(id) <- net;
          net
  in
  let emit_lit l =
    let id = Aig.node_of l in
    if id = 0 then
      Netlist.add nl (Netlist.Gate.Const (Aig.is_complemented l)) [||]
    else begin
      let p = emit id in
      if Aig.is_complemented l then begin
        if neg.(id) < 0 then neg.(id) <- Netlist.add nl inv_cell [| p |];
        neg.(id)
      end
      else p
    end
  in
  Netlist.set_outputs nl (Array.map emit_lit (Aig.outputs aig));
  nl

let lut_count nl =
  let acc = ref 0 in
  Netlist.iter_nodes nl (fun _ g _ ->
      match g with
      | Netlist.Gate.Cell c
        when String.length c.Netlist.Gate.cell_name >= 4
             && String.sub c.Netlist.Gate.cell_name 0 3 = "LUT"
             && c.Netlist.Gate.arity >= 2 ->
          incr acc
      | _ -> ());
  !acc
