(** K-LUT covering of AIGs — the "renode" role of Section 4.

    The paper scales nodal decomposition to large circuits by
    re-noding them into coarser nodes (ABC's [renode]) whose local DC
    sets are then analysed.  This mapper covers the AIG with k-input
    nodes (realised as generic [Cell] instances carrying their truth
    table), producing exactly that coarser network: bigger local
    functions, bigger satisfiability-DC spaces for
    {!Rdca_core.Decompose} to exploit. *)

(** [map ~k aig] covers the AIG with k-feasible cuts minimising LUT
    count (area-flow heuristic); every LUT is a [Cell] named
    ["LUT<k>"] with unit area/delay/cap.
    @raise Invalid_argument unless [2 <= k <= 4]. *)
val map : k:int -> Aig.t -> Netlist.t

(** [lut_count nl] counts LUT instances (excludes inverters emitted
    for complemented outputs). *)
val lut_count : Netlist.t -> int
