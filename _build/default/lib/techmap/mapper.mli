(** Cut-based technology mapping of AIGs onto the cell library.

    The mapper enumerates 4-feasible cuts, matches their functions
    against permutation variants of the library cells (output polarity
    handled with inverters), and covers the graph with a dynamic
    program whose cost depends on the optimisation mode:

    - [Delay]: minimise arrival time (cell pin-to-pin delays),
      tie-break on area flow — Design Compiler's
      ["set_max_delay 0"] regime in the paper;
    - [Area]: minimise area flow — ["compile -area_effort high"];
    - [Power]: minimise activity-weighted area flow (switching
      activity from exact signal probabilities) —
      ["set_max_leakage_power 0; set_max_dynamic_power 0"].

    Every AND node also carries a structural AND2(+INV) fallback, so
    mapping always succeeds regardless of cut matching coverage. *)

type mode = Delay | Area | Power

(** [map ~mode ~lib aig] returns the mapped netlist.
    @raise Invalid_argument when [Stdcell.validate lib] reports a
    problem. *)
val map : mode:mode -> lib:Stdcell.t list -> Aig.t -> Netlist.t

(** [mode_name m] is ["delay"], ["area"] or ["power"]. *)
val mode_name : mode -> string
