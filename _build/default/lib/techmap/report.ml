type t = {
  area : float;
  delay : float;
  power : float;
  gates : int;
  depth : int;
}

let of_netlist nl =
  {
    area = Netlist.area nl;
    delay = Netlist.delay nl;
    power = Netlist.dynamic_power nl;
    gates = Netlist.gate_count nl;
    depth = Netlist.depth nl;
  }

let ratio base v = if base = 0.0 then v else v /. base

let normalise ~base r =
  {
    area = ratio base.area r.area;
    delay = ratio base.delay r.delay;
    power = ratio base.power r.power;
    gates = r.gates;
    depth = r.depth;
  }

let pp ppf r =
  Format.fprintf ppf "area=%.2f delay=%.3f power=%.2f gates=%d depth=%d"
    r.area r.delay r.power r.gates r.depth
