(** Area / delay / power reporting for mapped netlists. *)

type t = {
  area : float;  (** sum of instance areas *)
  delay : float;  (** critical path, ns *)
  power : float;  (** dynamic switching-power proxy *)
  gates : int;  (** instance count *)
  depth : int;  (** logic levels *)
}

(** [of_netlist nl] computes the full report (power needs exhaustive
    simulation: [Netlist.ni nl <= 20]). *)
val of_netlist : Netlist.t -> t

(** [normalise ~base r] divides each metric by the corresponding
    metric of [base] (metrics equal to 0 in [base] stay absolute). *)
val normalise : base:t -> t -> t

val pp : Format.formatter -> t -> unit
