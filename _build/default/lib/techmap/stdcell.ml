module Truth = Logic.Truth

type t = {
  name : string;
  arity : int;
  tt : Logic.Truth.t;
  area : float;
  delay : float;
  input_cap : float;
}

let v k i = Truth.var k i
let tnot = Truth.tnot
let ( &: ) = Truth.tand
let ( |: ) = Truth.tor
let ( ^: ) = Truth.txor

let cell name arity tt area delay input_cap =
  { name; arity; tt; area; delay; input_cap }

let default_library () =
  let a1 = v 1 0 in
  let a2 = v 2 0 and b2 = v 2 1 in
  let a3 = v 3 0 and b3 = v 3 1 and c3 = v 3 2 in
  let a4 = v 4 0 and b4 = v 4 1 and c4 = v 4 2 and d4 = v 4 3 in
  [
    cell "INV" 1 (tnot 1 a1) 1.0 0.020 1.0;
    cell "BUF" 1 a1 1.3 0.035 1.0;
    cell "NAND2" 2 (tnot 2 (a2 &: b2)) 1.3 0.030 1.0;
    cell "NOR2" 2 (tnot 2 (a2 |: b2)) 1.3 0.035 1.1;
    cell "AND2" 2 (a2 &: b2) 1.7 0.045 1.0;
    cell "OR2" 2 (a2 |: b2) 1.7 0.050 1.0;
    cell "NAND3" 3 (tnot 3 (a3 &: b3 &: c3)) 1.7 0.040 1.1;
    cell "NOR3" 3 (tnot 3 (a3 |: b3 |: c3)) 1.7 0.050 1.2;
    cell "AND3" 3 (a3 &: b3 &: c3) 2.0 0.055 1.0;
    cell "OR3" 3 (a3 |: b3 |: c3) 2.0 0.060 1.0;
    cell "NAND4" 4 (tnot 4 (a4 &: b4 &: c4 &: d4)) 2.0 0.050 1.2;
    cell "NOR4" 4 (tnot 4 (a4 |: b4 |: c4 |: d4)) 2.0 0.065 1.3;
    cell "AND4" 4 (a4 &: b4 &: c4 &: d4) 2.3 0.065 1.0;
    cell "OR4" 4 (a4 |: b4 |: c4 |: d4) 2.3 0.070 1.0;
    cell "XOR2" 2 (a2 ^: b2) 3.0 0.060 1.4;
    cell "XNOR2" 2 (tnot 2 (a2 ^: b2)) 3.0 0.060 1.4;
    cell "AOI21" 3 (tnot 3 ((a3 &: b3) |: c3)) 1.7 0.040 1.1;
    cell "OAI21" 3 (tnot 3 ((a3 |: b3) &: c3)) 1.7 0.040 1.1;
    cell "AOI22" 4 (tnot 4 ((a4 &: b4) |: (c4 &: d4))) 2.0 0.050 1.2;
    cell "OAI22" 4 (tnot 4 ((a4 |: b4) &: (c4 |: d4))) 2.0 0.050 1.2;
    cell "AOI211" 4 (tnot 4 ((a4 &: b4) |: c4 |: d4)) 2.3 0.055 1.2;
    cell "OAI211" 4 (tnot 4 ((a4 |: b4) &: c4 &: d4)) 2.3 0.055 1.2;
    cell "MUX2" 3 ((a3 &: b3) |: (tnot 3 a3 &: c3)) 3.3 0.060 1.3;
  ]

let find lib name = List.find (fun c -> c.name = name) lib

let to_gate c =
  Netlist.Gate.Cell
    {
      Netlist.Gate.cell_name = c.name;
      tt = c.tt;
      arity = c.arity;
      area = c.area;
      delay = c.delay;
      input_cap = c.input_cap;
    }

let inv lib = find lib "INV"
let buf lib = find lib "BUF"

let validate lib =
  let problem = ref None in
  let report msg = if !problem = None then problem := Some msg in
  List.iter
    (fun c ->
      if c.arity < 1 || c.arity > 4 then
        report (Printf.sprintf "cell %s: arity %d out of [1,4]" c.name c.arity);
      if c.tt land lnot (Truth.mask c.arity) <> 0 then
        report (Printf.sprintf "cell %s: truth table out of range" c.name);
      if c.area <= 0.0 || c.delay <= 0.0 || c.input_cap <= 0.0 then
        report (Printf.sprintf "cell %s: non-positive physical datum" c.name))
    lib;
  (match List.find_opt (fun c -> c.name = "INV") lib with
  | Some c when c.tt = tnot 1 (v 1 0) -> ()
  | Some _ -> report "INV has a wrong truth table"
  | None -> report "library lacks INV");
  (match List.find_opt (fun c -> c.name = "BUF") lib with
  | Some c when c.tt = v 1 0 -> ()
  | Some _ -> report "BUF has a wrong truth table"
  | None -> report "library lacks BUF");
  let and2 = v 2 0 &: v 2 1 in
  let has_and2_class =
    List.exists
      (fun c -> c.arity = 2 && (c.tt = and2 || c.tt = tnot 2 and2))
      lib
  in
  if not has_and2_class then
    report "library lacks an AND2/NAND2 cell for the structural fallback";
  !problem
