(** The standard-cell library.

    A synthetic 70 nm-class library standing in for the commercial
    library the paper mapped to with Synopsys Design Compiler.  Areas
    are in equivalent-NAND2 units scaled to square microns, delays in
    nanoseconds, input capacitances in femtofarads; the *relative*
    values (which drive all of the paper's normalised comparisons)
    follow standard cell-library proportions: inverting gates are
    smaller and faster than their non-inverting forms, XOR-class cells
    are the largest, and area/delay grow with fan-in. *)

type t = {
  name : string;
  arity : int;
  tt : Logic.Truth.t;  (** function over pins 0..arity-1 *)
  area : float;
  delay : float;
  input_cap : float;
}

(** [default_library ()] is the library described above (1- to 4-input
    cells: INV/BUF, (N)AND/(N)OR 2-4, XOR2/XNOR2, AOI/OAI 21/22/211,
    MUX2). *)
val default_library : unit -> t list

(** [find lib name] looks a cell up by name. @raise Not_found. *)
val find : t list -> string -> t

(** [to_gate cell] is the {!Netlist.Gate.t} instance payload. *)
val to_gate : t -> Netlist.Gate.t

(** [inv lib] and [buf lib] are the inverter and buffer cells (every
    usable library must provide both; checked by [validate]). *)
val inv : t list -> t

val buf : t list -> t

(** [validate lib] checks structural sanity: arities in [1,4], truth
    tables within range, INV and BUF present, AND2-class coverage for
    the mapper's structural fallback (some cell NP-matching a 2-input
    AND up to output polarity).  Returns an error description, or
    [None] when the library is usable. *)
val validate : t list -> string option
