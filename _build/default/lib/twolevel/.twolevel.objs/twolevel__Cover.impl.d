lib/twolevel/cover.ml: Array Bitvec Cube Format List Option
