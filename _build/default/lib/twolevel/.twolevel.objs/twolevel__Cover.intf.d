lib/twolevel/cover.mli: Bitvec Cube Format
