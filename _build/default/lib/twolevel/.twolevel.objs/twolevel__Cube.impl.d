lib/twolevel/cube.ml: Bitvec Format Int List String
