lib/twolevel/factor.ml: Array Cover Cube Format Hashtbl List Option String
