lib/twolevel/factor.mli: Cover Cube Format
