type t = { n : int; cubes : Cube.t list }

let make ~n cubes = { n; cubes }
let n t = t.n
let cubes t = t.cubes
let size t = List.length t.cubes

let literal_count t =
  List.fold_left
    (fun acc c -> acc + (t.n - Cube.free_count ~n:t.n c))
    0 t.cubes

let empty ~n = { n; cubes = [] }
let universe ~n = { n; cubes = [ Cube.full ~n ] }

let eval t m = List.exists (fun c -> Cube.contains_minterm c m) t.cubes

let to_bv t =
  if t.n > 24 then invalid_arg "Cover.to_bv: n too large";
  let bv = Bitvec.Bv.create (Bitvec.Minterm.space_size t.n) in
  List.iter (Cube.iter_minterms ~n:t.n (Bitvec.Bv.set bv)) t.cubes;
  bv

let of_bv ~n bv =
  let cubes =
    Bitvec.Bv.fold_set (fun m acc -> Cube.of_minterm ~n m :: acc) bv []
  in
  { n; cubes = List.rev cubes }

let cofactor t c =
  let cubes = List.filter_map (fun d -> Cube.cofactor ~n:t.n d c) t.cubes in
  { n = t.n; cubes }

(* Phase-occurrence counts per variable: (zeros, ones). *)
let phase_counts t =
  let zeros = Array.make t.n 0 and ones = Array.make t.n 0 in
  List.iter
    (fun c ->
      for j = 0 to t.n - 1 do
        match Cube.get c j with
        | Cube.Zero -> zeros.(j) <- zeros.(j) + 1
        | Cube.One -> ones.(j) <- ones.(j) + 1
        | Cube.Free -> ()
      done)
    t.cubes;
  (zeros, ones)

let most_binate_var t =
  let zeros, ones = phase_counts t in
  let best = ref None in
  for j = 0 to t.n - 1 do
    if zeros.(j) > 0 && ones.(j) > 0 then begin
      let total = zeros.(j) + ones.(j) in
      let balance = abs (zeros.(j) - ones.(j)) in
      let key = (total, -balance) in
      match !best with
      | Some (k, _) when k >= key -> ()
      | _ -> best := Some (key, j)
    end
  done;
  Option.map snd !best

let is_unate t = most_binate_var t = None

let has_full_cube t =
  List.exists (fun c -> Cube.free_count ~n:t.n c = t.n) t.cubes

(* Unate-recursive tautology.  A unate cover is a tautology iff it
   contains the full cube. *)
let rec is_tautology t =
  if t.cubes = [] then false
  else if has_full_cube t then true
  else
    (* Quick refutation: some variable appears in only one phase in
       every cube that mentions it -> the opposite phase minterms need
       a free cube in that variable; handled by the unate check. *)
    match most_binate_var t with
    | None -> false (* unate, no full cube *)
    | Some j ->
        let c0 = Cube.set (Cube.full ~n:t.n) j Cube.Zero in
        let c1 = Cube.set (Cube.full ~n:t.n) j Cube.One in
        is_tautology (cofactor t c0) && is_tautology (cofactor t c1)

let contains_cube t c = is_tautology (cofactor t c)

let contains_cover a b = List.for_all (contains_cube a) b.cubes

(* Unate-recursive complementation. *)
let rec complement t =
  if t.cubes = [] then universe ~n:t.n
  else if has_full_cube t then empty ~n:t.n
  else
    match t.cubes with
    | [ c ] -> { n = t.n; cubes = Cube.complement_lits ~n:t.n c }
    | _ -> (
        match most_binate_var t with
        | Some j -> complement_split t j
        | None -> (
            (* Unate cover with more than one cube: split on any
               specific variable to keep recursion simple. *)
            match first_specific_var t with
            | Some j -> complement_split t j
            | None -> empty ~n:t.n (* all cubes full: handled above *)))

and first_specific_var t =
  let rec go = function
    | [] -> None
    | c :: rest ->
        let rec find j =
          if j >= t.n then None
          else if Cube.get c j <> Cube.Free then Some j
          else find (j + 1)
        in
        (match find 0 with Some j -> Some j | None -> go rest)
  in
  go t.cubes

and complement_split t j =
  let c0 = Cube.set (Cube.full ~n:t.n) j Cube.Zero in
  let c1 = Cube.set (Cube.full ~n:t.n) j Cube.One in
  let f0 = complement (cofactor t c0) in
  let f1 = complement (cofactor t c1) in
  let and_lit lit cover =
    List.filter_map (fun c -> Cube.intersect c lit) cover.cubes
  in
  { n = t.n; cubes = and_lit c0 f0 @ and_lit c1 f1 }

let sharp t c =
  let nc = { n = t.n; cubes = Cube.complement_lits ~n:t.n c } in
  let cubes =
    List.concat_map
      (fun d ->
        List.filter_map (fun e -> Cube.intersect d e) nc.cubes)
      t.cubes
  in
  { n = t.n; cubes }

let intersect a b =
  if a.n <> b.n then invalid_arg "Cover.intersect: arity mismatch";
  let cubes =
    List.concat_map
      (fun c -> List.filter_map (fun d -> Cube.intersect c d) b.cubes)
      a.cubes
  in
  { n = a.n; cubes }

let union a b =
  if a.n <> b.n then invalid_arg "Cover.union: arity mismatch";
  { n = a.n; cubes = a.cubes @ b.cubes }

let equivalent a b = contains_cover a b && contains_cover b a

let single_cube_containment t =
  let arr = Array.of_list t.cubes in
  let keep = Array.make (Array.length arr) true in
  Array.iteri
    (fun i ci ->
      if keep.(i) then
        Array.iteri
          (fun k ck ->
            if k <> i && keep.(k) && Cube.subsumes ci ck then
              if Cube.equal ci ck && k < i then () (* keep earliest dup *)
              else keep.(k) <- false)
          arr)
    arr;
  let cubes =
    Array.to_list arr
    |> List.filteri (fun i _ -> keep.(i))
  in
  { n = t.n; cubes }

(* Cofactoring by a literal frees that variable in every surviving
   cube, so the cofactor's minterm count double-counts by exactly 2;
   halving each side gives the two disjoint half-space counts. *)
let rec cardinality t =
  if t.cubes = [] then 0
  else if has_full_cube t then Bitvec.Minterm.space_size t.n
  else if t.n <= 24 then Bitvec.Bv.cardinal (to_bv t)
  else
    let j =
      match most_binate_var t with
      | Some j -> j
      | None -> Option.get (first_specific_var t)
    in
    let c0 = Cube.set (Cube.full ~n:t.n) j Cube.Zero in
    let c1 = Cube.set (Cube.full ~n:t.n) j Cube.One in
    (cardinality (cofactor t c0) / 2) + (cardinality (cofactor t c1) / 2)

let pp ppf t =
  List.iter
    (fun c -> Format.fprintf ppf "%s@\n" (Cube.to_string ~n:t.n c))
    t.cubes
