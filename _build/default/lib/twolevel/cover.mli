(** Covers: sets of cubes representing single-output Boolean functions.

    A cover is the OR of its cubes over a fixed input count [n].  This
    module provides the classical unate-recursive operations (tautology,
    complement, sharp, containment) that the espresso-style minimiser
    and the conventional-DC-assignment path are built on. *)

type t

(** [make ~n cubes] builds a cover over [n] inputs. *)
val make : n:int -> Cube.t list -> t

(** [n t] is the number of input variables. *)
val n : t -> int

(** [cubes t] is the cube list (order unspecified but stable). *)
val cubes : t -> Cube.t list

(** [size t] is the number of cubes. *)
val size : t -> int

(** [literal_count t] is the total number of specific (non-Free)
    literals across cubes — espresso's secondary cost function. *)
val literal_count : t -> int

(** [empty ~n] is the constant-0 cover; [universe ~n] the constant-1. *)
val empty : n:int -> t

val universe : n:int -> t

(** [eval t m] is the value of the cover on minterm [m]. *)
val eval : t -> int -> bool

(** [to_bv t] is the characteristic bit-vector over the [2^n] minterms.
    @raise Invalid_argument when [n > 24] (dense expansion too large). *)
val to_bv : t -> Bitvec.Bv.t

(** [of_bv ~n bv] is the cover with one cube per set minterm. *)
val of_bv : n:int -> Bitvec.Bv.t -> t

(** [cardinality t] is the number of minterms covered (inclusion-
    exclusion-free: computed by dense expansion for [n <= 24], by
    recursive splitting otherwise). *)
val cardinality : t -> int

(** [is_tautology t] decides whether [t] covers the whole space, by
    the unate-recursive paradigm. *)
val is_tautology : t -> bool

(** [contains_cube t c] decides whether cube [c] is covered by [t]
    (tautology of the cofactor [t/c]). *)
val contains_cube : t -> Cube.t -> bool

(** [contains_cover a b] decides whether every minterm of [b] is in [a]. *)
val contains_cover : t -> t -> bool

(** [equivalent a b] decides functional equality. *)
val equivalent : t -> t -> bool

(** [cofactor t c] is the cover cofactor t/c. *)
val cofactor : t -> Cube.t -> t

(** [complement t] is a cover of the complement function, computed by
    unate-recursive complementation. *)
val complement : t -> t

(** [sharp t c] is the cover of [t AND NOT c]. *)
val sharp : t -> Cube.t -> t

(** [intersect a b] covers the AND of the two functions. *)
val intersect : t -> t -> t

(** [union a b] concatenates cube lists. *)
val union : t -> t -> t

(** [single_cube_containment t] removes every cube contained in another
    single cube of [t] (espresso's SCC filter). *)
val single_cube_containment : t -> t

(** [most_binate_var t] is the splitting variable chosen by the unate-
    recursive paradigm: the variable appearing in the most cubes in
    both phases, ties broken toward balanced phase counts; [None] when
    the cover is unate (no variable appears in both phases). *)
val most_binate_var : t -> int option

(** [is_unate t] is [true] when no variable appears in both phases. *)
val is_unate : t -> bool

(** [pp] prints one cube per line in .pla style. *)
val pp : Format.formatter -> t -> unit
