type t = { m0 : int; m1 : int }

type literal = Zero | One | Free

let range_mask n = if n = 0 then 0 else (1 lsl n) - 1

let full ~n = { m0 = range_mask n; m1 = range_mask n }

let of_minterm ~n m =
  let mask = range_mask n in
  { m0 = lnot m land mask; m1 = m land mask }

let lit_masks j = function
  | Zero -> (1 lsl j, 0)
  | One -> (0, 1 lsl j)
  | Free -> (1 lsl j, 1 lsl j)

let make ~n lits =
  if List.length lits <> n then invalid_arg "Cube.make: wrong arity";
  let _, m0, m1 =
    List.fold_left
      (fun (j, m0, m1) lit ->
        let b0, b1 = lit_masks j lit in
        (j + 1, m0 lor b0, m1 lor b1))
      (0, 0, 0) lits
  in
  { m0; m1 }

let get c j =
  match (c.m0 land (1 lsl j) <> 0, c.m1 land (1 lsl j) <> 0) with
  | true, true -> Free
  | true, false -> Zero
  | false, true -> One
  | false, false -> invalid_arg "Cube.get: empty literal"

let set c j lit =
  let b = 1 lsl j in
  let b0, b1 = lit_masks j lit in
  { m0 = (c.m0 land lnot b) lor b0; m1 = (c.m1 land lnot b) lor b1 }

let equal a b = a.m0 = b.m0 && a.m1 = b.m1

let compare a b =
  match Int.compare a.m0 b.m0 with 0 -> Int.compare a.m1 b.m1 | c -> c

let mask0 c = c.m0
let mask1 c = c.m1

let of_masks ~m0 ~m1 =
  let valid = m0 lor m1 in
  (* Every variable up to the highest used bit must be representable;
     callers pass masks already restricted to [0, n). *)
  if valid < 0 then invalid_arg "Cube.of_masks: negative mask";
  { m0; m1 }

let contains_minterm c m =
  let valid = c.m0 lor c.m1 in
  m land valid land lnot c.m1 = 0 && lnot m land valid land lnot c.m0 = 0

(* b <= a iff every value b allows, a allows too. *)
let subsumes a b = b.m0 land lnot a.m0 = 0 && b.m1 land lnot a.m1 = 0

let intersect a b =
  let m0 = a.m0 land b.m0 and m1 = a.m1 land b.m1 in
  (* Empty iff some variable present in the union of supports allows
     neither value.  All variables of the space must stay non-empty: a
     variable outside both masks was never valid in the first place, so
     compare against the original valid range. *)
  let valid = (a.m0 lor a.m1) land (b.m0 lor b.m1) in
  if m0 lor m1 = valid then Some { m0; m1 } else None

let distance ~n a b =
  let m0 = a.m0 land b.m0 and m1 = a.m1 land b.m1 in
  let empty = lnot (m0 lor m1) land range_mask n in
  Bitvec.Minterm.popcount empty

let supercube a b = { m0 = a.m0 lor b.m0; m1 = a.m1 lor b.m1 }

let cofactor ~n a c =
  if distance ~n a c > 0 then None
  else
    let spec = c.m0 lxor c.m1 in
    Some { m0 = a.m0 lor spec; m1 = a.m1 lor spec }

let free_count ~n c = Bitvec.Minterm.popcount (c.m0 land c.m1 land range_mask n)

let minterm_count ~n c = 1 lsl free_count ~n c

let iter_minterms ~n f c =
  let free = c.m0 land c.m1 land range_mask n in
  let base = c.m1 land lnot free in
  (* Enumerate subsets of the free mask with the standard sub-mask walk. *)
  let rec go sub =
    f (base lor sub);
    if sub = 0 then () else go ((sub - 1) land free)
  in
  go free

let complement_lits ~n c =
  let fullc = full ~n in
  let rec go j acc =
    if j >= n then acc
    else
      match get c j with
      | Free -> go (j + 1) acc
      | Zero -> go (j + 1) (set fullc j One :: acc)
      | One -> go (j + 1) (set fullc j Zero :: acc)
  in
  go 0 []

let to_string ~n c =
  String.init n (fun j ->
      match get c j with Zero -> '0' | One -> '1' | Free -> '-')

let of_string s =
  let n = String.length s in
  make ~n
    (List.init n (fun j ->
         match s.[j] with
         | '0' -> Zero
         | '1' -> One
         | '-' | '2' -> Free
         | _ -> invalid_arg "Cube.of_string: expected 0/1/-"))

let pp ~n ppf c = Format.pp_print_string ppf (to_string ~n c)
