(** Cubes in positional (two-bit-per-variable) notation.

    A cube over [n] input variables maps every variable to a literal:
    [Zero], [One] or [Free] ('-').  Internally a cube is a pair of bit
    masks [(m0, m1)]: bit [j] of [m0] means "variable [j] may be 0",
    bit [j] of [m1] means "variable [j] may be 1".  [Free] sets both.
    Variables are limited to [n <= 61], far beyond the paper's n = 12.

    The value of [n] is not stored in the cube; operations that need it
    take it as a labelled argument.  {!Cover} carries [n] for whole
    covers. *)

type t

type literal = Zero | One | Free

(** [full ~n] is the universal cube (every literal [Free]). *)
val full : n:int -> t

(** [of_minterm ~n m] is the cube containing exactly minterm [m]. *)
val of_minterm : n:int -> int -> t

(** [make ~n lits] builds a cube from a literal list, variable 0 first.
    @raise Invalid_argument if [List.length lits <> n]. *)
val make : n:int -> literal list -> t

(** [get c j] is the literal of variable [j]. *)
val get : t -> int -> literal

(** [set c j lit] is [c] with variable [j]'s literal replaced. *)
val set : t -> int -> literal -> t

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** [mask0 c] and [mask1 c] expose the positional masks. *)
val mask0 : t -> int

val mask1 : t -> int

(** [of_masks ~m0 ~m1] rebuilds a cube from masks.
    @raise Invalid_argument if some variable below the highest set bit
    would have the impossible 00 encoding — callers must restrict masks
    to the intended variable range themselves. *)
val of_masks : m0:int -> m1:int -> t

(** [contains_minterm c m] tests membership of minterm [m]. *)
val contains_minterm : t -> int -> bool

(** [subsumes a b] is [true] when cube [b] is contained in cube [a]. *)
val subsumes : t -> t -> bool

(** [intersect a b] is the cube intersection, or [None] if empty. *)
val intersect : t -> t -> t option

(** [distance ~n a b] is the number of variables on which [a] and [b]
    have empty literal intersection (0 means they intersect). *)
val distance : n:int -> t -> t -> int

(** [supercube a b] is the smallest cube containing both. *)
val supercube : t -> t -> t

(** [cofactor ~n a c] is the cofactor a/c of the Shannon-expansion
    style used by the unate-recursive paradigm, or [None] when [a] and
    [c] do not intersect. *)
val cofactor : n:int -> t -> t -> t option

(** [free_count ~n c] is the number of [Free] literals. *)
val free_count : n:int -> t -> int

(** [minterm_count ~n c] is [2^(free_count c)]. *)
val minterm_count : n:int -> t -> int

(** [iter_minterms ~n f c] applies [f] to every minterm of [c]. *)
val iter_minterms : n:int -> (int -> unit) -> t -> unit

(** [complement_lits ~n c] is the list of cubes covering exactly the
    complement of [c] (one cube per specific literal; De Morgan). *)
val complement_lits : n:int -> t -> t list

(** [to_string ~n c] renders in .pla style ('0', '1', '-'), variable 0
    leftmost; [of_string] parses it back. *)
val to_string : n:int -> t -> string

val of_string : string -> t

val pp : n:int -> Format.formatter -> t -> unit
