type expr =
  | Const of bool
  | Lit of int * bool
  | And of expr list
  | Or of expr list

(* ------------------------------------------------------------------ *)
(* Expression basics                                                    *)

let cube_to_expr ~n c =
  let lits = ref [] in
  for j = n - 1 downto 0 do
    match Cube.get c j with
    | Cube.Zero -> lits := Lit (j, true) :: !lits
    | Cube.One -> lits := Lit (j, false) :: !lits
    | Cube.Free -> ()
  done;
  match !lits with [] -> Const true | [ l ] -> l | ls -> And ls

let of_cover cover =
  let n = Cover.n cover in
  match Cover.cubes cover with
  | [] -> Const false
  | [ c ] -> cube_to_expr ~n c
  | cs -> Or (List.map (cube_to_expr ~n) cs)

let rec eval expr m =
  match expr with
  | Const b -> b
  | Lit (j, neg) ->
      let v = m land (1 lsl j) <> 0 in
      if neg then not v else v
  | And es -> List.for_all (fun e -> eval e m) es
  | Or es -> List.exists (fun e -> eval e m) es

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And es | Or es -> List.fold_left (fun acc e -> acc + literal_count e) 0 es

let rec pp ~n ppf = function
  | Const b -> Format.pp_print_string ppf (if b then "1" else "0")
  | Lit (j, neg) ->
      Format.fprintf ppf "%sx%d" (if neg then "!" else "") j
  | And es ->
      Format.pp_print_string ppf "(";
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
        (pp ~n) ppf es;
      Format.pp_print_string ppf ")"
  | Or es ->
      Format.pp_print_string ppf "(";
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        (pp ~n) ppf es;
      Format.pp_print_string ppf ")"

(* ------------------------------------------------------------------ *)
(* Algebraic division                                                   *)

(* c is divisible by d when every specific literal of d appears in c. *)
let cube_divisible c d =
  let spec0_d = Cube.mask0 d land lnot (Cube.mask1 d) in
  let spec1_d = Cube.mask1 d land lnot (Cube.mask0 d) in
  let spec0_c = Cube.mask0 c land lnot (Cube.mask1 c) in
  let spec1_c = Cube.mask1 c land lnot (Cube.mask0 c) in
  spec0_d land lnot spec0_c = 0 && spec1_d land lnot spec1_c = 0

(* c / d frees the literals d provides. *)
let cube_quotient c d =
  let spec_d =
    (Cube.mask0 d land lnot (Cube.mask1 d))
    lor (Cube.mask1 d land lnot (Cube.mask0 d))
  in
  Cube.of_masks ~m0:(Cube.mask0 c lor spec_d) ~m1:(Cube.mask1 c lor spec_d)

let divide ~by cover =
  let n = Cover.n cover in
  let q, r =
    List.partition_map
      (fun c ->
        if cube_divisible c by then Left (cube_quotient c by) else Right c)
      (Cover.cubes cover)
  in
  (Cover.make ~n q, Cover.make ~n r)

(* ------------------------------------------------------------------ *)
(* Literal statistics                                                   *)

(* literal id = 2*var + (1 if complemented) *)
let literal_counts cover =
  let n = Cover.n cover in
  let counts = Array.make (2 * n) 0 in
  List.iter
    (fun c ->
      for j = 0 to n - 1 do
        match Cube.get c j with
        | Cube.One -> counts.(2 * j) <- counts.(2 * j) + 1
        | Cube.Zero -> counts.((2 * j) + 1) <- counts.((2 * j) + 1) + 1
        | Cube.Free -> ()
      done)
    (Cover.cubes cover);
  counts

let best_literal cover =
  let counts = literal_counts cover in
  let best = ref None in
  Array.iteri
    (fun id c ->
      if c >= 2 then
        match !best with
        | Some (_, cb) when cb >= c -> ()
        | _ -> best := Some ((id / 2, id land 1 = 1), c))
    counts;
  Option.map fst !best

let literal_cube ~n (var, neg) =
  Cube.set (Cube.full ~n) var (if neg then Cube.Zero else Cube.One)

(* ------------------------------------------------------------------ *)
(* Kernels                                                              *)

(* Largest cube dividing every cube of a cover: supercube of cubes. *)
let common_cube cover =
  match Cover.cubes cover with
  | [] -> None
  | c :: rest -> Some (List.fold_left Cube.supercube c rest)

let is_cube_free cover =
  match common_cube cover with
  | None -> false
  | Some c -> Cube.free_count ~n:(Cover.n cover) c = Cover.n cover

let kernels cover =
  let n = Cover.n cover in
  let results = ref [] in
  let seen = Hashtbl.create 64 in
  let add cok kern =
    let key =
      List.sort Cube.compare (Cover.cubes kern)
      |> List.map (Cube.to_string ~n)
      |> String.concat "|"
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      results := (cok, kern) :: !results
    end
  in
  (* recurse over literal ids in increasing order *)
  let rec go j g cok =
    for id = j to (2 * n) - 1 do
      let var = id / 2 and neg = id land 1 = 1 in
      let lit = literal_cube ~n (var, neg) in
      let q, _ = divide ~by:lit g in
      if Cover.size q >= 2 then begin
        match common_cube q with
        | None -> ()
        | Some c ->
            (* skip if c contains a literal with smaller id: that
               branch was (or will be) explored from there *)
            let has_smaller =
              let rec chk id' =
                if id' >= id then false
                else
                  let v = id' / 2 and ng = id' land 1 = 1 in
                  let l = if ng then Cube.Zero else Cube.One in
                  if Cube.get c v = l then true else chk (id' + 1)
              in
              chk 0
            in
            if not has_smaller then begin
              let q', _ = divide ~by:c q in
              (* co-kernel accumulates the dividing literal and the
                 common cube; the intersections never clash because
                 each grows along one division path *)
              match Cube.intersect cok lit with
              | None -> ()
              | Some step -> (
                  match Cube.intersect step c with
                  | None -> ()
                  | Some new_cok ->
                      add new_cok q';
                      go (id + 1) q' new_cok)
            end
      end
    done
  in
  go 0 cover (Cube.full ~n);
  (* the cover itself is a kernel when cube-free *)
  if Cover.size cover >= 2 && is_cube_free cover then
    add (Cube.full ~n) cover;
  !results

(* ------------------------------------------------------------------ *)
(* QUICK_FACTOR via best-literal division                               *)

let and2 a b =
  match (a, b) with
  | Const true, x | x, Const true -> x
  | Const false, _ | _, Const false -> Const false
  | And xs, And ys -> And (xs @ ys)
  | And xs, y -> And (xs @ [ y ])
  | x, And ys -> And (x :: ys)
  | x, y -> And [ x; y ]

let or2 a b =
  match (a, b) with
  | Const false, x | x, Const false -> x
  | Const true, _ | _, Const true -> Const true
  | Or xs, Or ys -> Or (xs @ ys)
  | Or xs, y -> Or (xs @ [ y ])
  | x, Or ys -> Or (x :: ys)
  | x, y -> Or [ x; y ]

let rec factor cover =
  let n = Cover.n cover in
  match Cover.cubes cover with
  | [] -> Const false
  | [ c ] -> cube_to_expr ~n c
  | _ -> (
      match best_literal cover with
      | None -> of_cover cover (* no sharing available *)
      | Some (var, neg) ->
          let lit = literal_cube ~n (var, neg) in
          let q, r = divide ~by:lit cover in
          if Cover.size q = 0 then of_cover cover
          else
            let lit_expr = Lit (var, neg) in
            or2 (and2 lit_expr (factor q)) (factor r))
