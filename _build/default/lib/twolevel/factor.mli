(** Algebraic factoring of two-level covers (SIS-style).

    Flat sums of products make poor multi-level netlists; commercial
    flows factor them first.  This module implements the classical
    algebraic machinery: literal counting, algebraic division,
    co-kernel/kernel extraction and QUICK_FACTOR, producing an
    expression tree the AIG builder can lower with far fewer gates
    than the flat form.

    All operations treat covers as {e algebraic} expressions: cubes
    are assumed non-redundant and products are manipulated purely
    syntactically (no Boolean identities beyond x * x = x). *)

(** Factored logic expression. *)
type expr =
  | Const of bool
  | Lit of int * bool  (** variable index, complemented? *)
  | And of expr list
  | Or of expr list

(** [of_cover cover] is the trivial (flat SOP) expression. *)
val of_cover : Cover.t -> expr

(** [factor cover] is QUICK_FACTOR: recursively divide by the best
    literal-level divisor.  The result is algebraically equivalent to
    the cover. *)
val factor : Cover.t -> expr

(** [eval expr m] evaluates on a minterm encoding. *)
val eval : expr -> int -> bool

(** [literal_count expr] counts literal leaves — the classical quality
    measure for factored forms. *)
val literal_count : expr -> int

(** [divide ~by cover] is algebraic division [cover / by]:
    [(quotient, remainder)] with
    [cover = by * quotient + remainder] algebraically.  [by] must be
    a cube (single product). *)
val divide : by:Cube.t -> Cover.t -> Cover.t * Cover.t

(** [kernels cover] is the set of (co-kernel, kernel) pairs of the
    cover (kernels = cube-free primary divisors).  Exponential in the
    worst case; fine at SOP sizes after minimisation. *)
val kernels : Cover.t -> (Cube.t * Cover.t) list

(** [best_literal cover] is the literal occurring in the most cubes
    (at least twice), as [(variable, complemented)], if any. *)
val best_literal : Cover.t -> (int * bool) option

(** [pp ~n] prints an expression with x0..x{n-1} names. *)
val pp : n:int -> Format.formatter -> expr -> unit
