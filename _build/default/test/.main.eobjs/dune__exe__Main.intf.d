test/main.mli:
