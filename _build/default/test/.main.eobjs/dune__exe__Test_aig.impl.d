test/test_aig.ml: Aig Alcotest Array Format List Logic Netlist Printf QCheck QCheck_alcotest Twolevel
