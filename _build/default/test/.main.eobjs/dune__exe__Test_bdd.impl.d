test/test_bdd.ml: Alcotest Bdd Bitvec Espresso Format List Printf QCheck QCheck_alcotest Twolevel
