test/test_bv.ml: Alcotest Bitvec List Printf QCheck QCheck_alcotest
