test/test_circuits.ml: Aig Alcotest Array Bitvec List Netlist Printf Rdca_core Synthetic Techmap
