test/test_core.ml: Aig Alcotest Array Bitvec Format List Netlist Pla Printf QCheck QCheck_alcotest Random Rdca_core Reliability Synthetic Techmap Twolevel
