test/test_cover.ml: Alcotest Bitvec Format List Printf QCheck QCheck_alcotest Twolevel
