test/test_cube.ml: Alcotest Array Bitvec List Printf QCheck QCheck_alcotest Twolevel
