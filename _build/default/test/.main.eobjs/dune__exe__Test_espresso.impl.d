test/test_espresso.ml: Alcotest Array Bitvec Espresso List Printf QCheck QCheck_alcotest Random String Twolevel
