test/test_factor.ml: Aig Alcotest Format List Printf QCheck QCheck_alcotest Twolevel
