test/test_flow.ml: Alcotest Array Espresso List Pla Printf Random Rdca_flow Reliability Synthetic Techmap Twolevel
