test/test_io.ml: Aig Alcotest List Netlist Netlist_io Printf QCheck QCheck_alcotest String Techmap Twolevel
