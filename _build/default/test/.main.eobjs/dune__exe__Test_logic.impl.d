test/test_logic.ml: Alcotest Array List Logic QCheck QCheck_alcotest
