test/test_minterm.ml: Alcotest Bitvec QCheck QCheck_alcotest
