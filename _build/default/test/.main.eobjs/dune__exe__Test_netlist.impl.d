test/test_netlist.ml: Alcotest Array Bitvec Format List Logic Netlist Printf QCheck QCheck_alcotest
