test/test_pla.ml: Alcotest Espresso Filename Format List Pla QCheck QCheck_alcotest String Sys Twolevel
