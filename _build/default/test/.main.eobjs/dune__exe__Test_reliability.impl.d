test/test_reliability.ml: Alcotest Bdd Bitvec List Netlist Pla QCheck QCheck_alcotest Random Reliability String Twolevel
