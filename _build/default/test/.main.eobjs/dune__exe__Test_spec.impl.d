test/test_spec.ml: Alcotest Bitvec Format List Pla QCheck QCheck_alcotest Twolevel
