test/test_synthetic.ml: Alcotest List Pla Printf Random Reliability Synthetic
