test/test_techmap.ml: Aig Alcotest Array Format List Logic Netlist Pla Printf QCheck QCheck_alcotest Rdca_core Rdca_flow Synthetic Techmap Twolevel
