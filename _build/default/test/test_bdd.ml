(* Tests for the ROBDD package: structural invariants, semantics
   against dense enumeration, conversions. *)

module Cover = Twolevel.Cover
module Cube = Twolevel.Cube
module Bv = Bitvec.Bv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_terminals () =
  let m = Bdd.make_man ~nvars:3 in
  check "zero" true (Bdd.is_zero m (Bdd.zero m));
  check "one" true (Bdd.is_one m (Bdd.one m));
  check "distinct" false (Bdd.equal (Bdd.zero m) (Bdd.one m))

let test_var_semantics () =
  let m = Bdd.make_man ~nvars:3 in
  let x1 = Bdd.var m 1 in
  check "x1 on m=2" true (Bdd.eval_minterm m x1 0b010);
  check "x1 off m=5" false (Bdd.eval_minterm m x1 0b101);
  let nx1 = Bdd.nvar m 1 in
  check "nx1 = not x1" true (Bdd.equal nx1 (Bdd.bnot m x1))

let test_hash_consing () =
  let m = Bdd.make_man ~nvars:4 in
  let a = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.band m (Bdd.var m 1) (Bdd.var m 0) in
  check "AND commutes to same node" true (Bdd.equal a b);
  let c = Bdd.bor m (Bdd.bnot m (Bdd.var m 0)) (Bdd.bnot m (Bdd.var m 1)) in
  check "De Morgan to same node" true (Bdd.equal (Bdd.bnot m a) c)

let test_connectives () =
  let m = Bdd.make_man ~nvars:2 in
  let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
  let test_table name f expected =
    List.iteri
      (fun mt e ->
        check
          (Printf.sprintf "%s m=%d" name mt)
          e (Bdd.eval_minterm m f mt))
      expected
  in
  test_table "and" (Bdd.band m x0 x1) [ false; false; false; true ];
  test_table "or" (Bdd.bor m x0 x1) [ false; true; true; true ];
  test_table "xor" (Bdd.bxor m x0 x1) [ false; true; true; false ];
  test_table "not x0" (Bdd.bnot m x0) [ true; false; true; false ]

let test_ite () =
  let m = Bdd.make_man ~nvars:3 in
  let f = Bdd.ite m (Bdd.var m 0) (Bdd.var m 1) (Bdd.var m 2) in
  for mt = 0 to 7 do
    let x0 = mt land 1 <> 0 and x1 = mt land 2 <> 0 and x2 = mt land 4 <> 0 in
    check
      (Printf.sprintf "ite m=%d" mt)
      (if x0 then x1 else x2)
      (Bdd.eval_minterm m f mt)
  done

let test_restrict () =
  let m = Bdd.make_man ~nvars:2 in
  let f = Bdd.bxor m (Bdd.var m 0) (Bdd.var m 1) in
  let f0 = Bdd.restrict m f ~var:0 ~value:false in
  check "xor|x0=0 is x1" true (Bdd.equal f0 (Bdd.var m 1));
  let f1 = Bdd.restrict m f ~var:0 ~value:true in
  check "xor|x0=1 is !x1" true (Bdd.equal f1 (Bdd.bnot m (Bdd.var m 1)))

let test_quantification () =
  let m = Bdd.make_man ~nvars:3 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 2) in
  check "exists x0 (x0&x2) = x2" true
    (Bdd.equal (Bdd.exists m [ 0 ] f) (Bdd.var m 2));
  check "forall x0 (x0&x2) = 0" true (Bdd.is_zero m (Bdd.forall m [ 0 ] f));
  check "exists both = 1" true (Bdd.is_one m (Bdd.exists m [ 0; 2 ] f))

let test_satcount () =
  let m = Bdd.make_man ~nvars:4 in
  check_int "count one" 16 (Bdd.satcount m (Bdd.one m));
  check_int "count zero" 0 (Bdd.satcount m (Bdd.zero m));
  check_int "count var" 8 (Bdd.satcount m (Bdd.var m 2));
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 3) in
  check_int "count and" 4 (Bdd.satcount m f);
  let g = Bdd.bxor m (Bdd.var m 0) (Bdd.var m 1) in
  check_int "count xor" 8 (Bdd.satcount m g)

let test_any_sat () =
  let m = Bdd.make_man ~nvars:3 in
  check "zero has none" true (Bdd.any_sat m (Bdd.zero m) = None);
  let f = Bdd.band m (Bdd.var m 0) (Bdd.bnot m (Bdd.var m 2)) in
  (match Bdd.any_sat m f with
  | Some mt -> check "witness satisfies" true (Bdd.eval_minterm m f mt)
  | None -> Alcotest.fail "expected a witness")

let test_support_size () =
  let m = Bdd.make_man ~nvars:5 in
  let f = Bdd.band m (Bdd.var m 1) (Bdd.bor m (Bdd.var m 3) (Bdd.var m 4)) in
  Alcotest.(check (list int)) "support" [ 1; 3; 4 ] (Bdd.support m f);
  check "size positive" true (Bdd.size m f > 0);
  check_int "size of terminal" 0 (Bdd.size m (Bdd.one m))

let test_cover_conversion () =
  let m = Bdd.make_man ~nvars:3 in
  let cover = Cover.make ~n:3 [ Cube.of_string "1-0"; Cube.of_string "-11" ] in
  let f = Bdd.of_cover m cover in
  for mt = 0 to 7 do
    check
      (Printf.sprintf "of_cover m=%d" mt)
      (Cover.eval cover mt)
      (Bdd.eval_minterm m f mt)
  done;
  let back = Bdd.to_cover m f in
  check "to_cover equivalent" true (Cover.equivalent cover back)

let test_bv_conversion () =
  let m = Bdd.make_man ~nvars:4 in
  let bv = Bv.of_list 16 [ 0; 3; 7; 9; 15 ] in
  let f = Bdd.of_bv m bv in
  check "roundtrip" true (Bv.equal bv (Bdd.to_bv m f));
  check_int "satcount matches" 5 (Bdd.satcount m f)

let test_xor_chain_size () =
  (* XOR of n variables has exactly n internal nodes... for ROBDDs
     without complement edges it is 2n-1 nodes. *)
  let n = 8 in
  let m = Bdd.make_man ~nvars:n in
  let f = ref (Bdd.zero m) in
  for i = 0 to n - 1 do
    f := Bdd.bxor m !f (Bdd.var m i)
  done;
  check_int "xor chain nodes" ((2 * n) - 1) (Bdd.size m !f);
  check_int "xor satcount" 128 (Bdd.satcount m !f)

(* Properties: random covers agree with dense evaluation. *)

let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (frequencyl [ (2, Cube.Zero); (2, Cube.One); (3, Cube.Free) ])
      |> map (Cube.make ~n)
    in
    list_size (int_range 0 6) gen_cube |> map (fun cs -> Cover.make ~n cs))

let arb_cover n =
  QCheck.make ~print:(fun cv -> Format.asprintf "%a" Cover.pp cv) (gen_cover n)

let prop_of_cover_semantics =
  QCheck.Test.make ~name:"of_cover agrees with Cover.eval" ~count:150
    (arb_cover 6) (fun cover ->
      let m = Bdd.make_man ~nvars:6 in
      let f = Bdd.of_cover m cover in
      let ok = ref true in
      for mt = 0 to 63 do
        if Bdd.eval_minterm m f mt <> Cover.eval cover mt then ok := false
      done;
      !ok)

let prop_satcount =
  QCheck.Test.make ~name:"satcount = cover cardinality" ~count:150
    (arb_cover 6) (fun cover ->
      let m = Bdd.make_man ~nvars:6 in
      Bdd.satcount m (Bdd.of_cover m cover) = Cover.cardinality cover)

let prop_complement_cover =
  QCheck.Test.make ~name:"bnot agrees with Cover.complement" ~count:100
    (arb_cover 5) (fun cover ->
      let m = Bdd.make_man ~nvars:5 in
      Bdd.equal
        (Bdd.bnot m (Bdd.of_cover m cover))
        (Bdd.of_cover m (Cover.complement cover)))

let prop_to_cover_roundtrip =
  QCheck.Test.make ~name:"to_cover/of_cover roundtrip" ~count:100
    (arb_cover 5) (fun cover ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      Bdd.equal f (Bdd.of_cover m (Bdd.to_cover m f)))

let suite =
  ( "bdd",
    [
      Alcotest.test_case "terminals" `Quick test_terminals;
      Alcotest.test_case "var semantics" `Quick test_var_semantics;
      Alcotest.test_case "hash consing" `Quick test_hash_consing;
      Alcotest.test_case "connectives" `Quick test_connectives;
      Alcotest.test_case "ite" `Quick test_ite;
      Alcotest.test_case "restrict" `Quick test_restrict;
      Alcotest.test_case "quantification" `Quick test_quantification;
      Alcotest.test_case "satcount" `Quick test_satcount;
      Alcotest.test_case "any_sat" `Quick test_any_sat;
      Alcotest.test_case "support and size" `Quick test_support_size;
      Alcotest.test_case "cover conversion" `Quick test_cover_conversion;
      Alcotest.test_case "bv conversion" `Quick test_bv_conversion;
      Alcotest.test_case "xor chain size" `Quick test_xor_chain_size;
      QCheck_alcotest.to_alcotest prop_of_cover_semantics;
      QCheck_alcotest.to_alcotest prop_satcount;
      QCheck_alcotest.to_alcotest prop_complement_cover;
      QCheck_alcotest.to_alcotest prop_to_cover_roundtrip;
    ] )

(* Variable reordering. *)

let test_convert_identity () =
  let m = Bdd.make_man ~nvars:4 in
  let f = Bdd.bor m (Bdd.band m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 3) in
  let order = [| 0; 1; 2; 3 |] in
  let m', fs = Bdd.convert_with_order m [ f ] ~order in
  let f' = List.hd fs in
  for mt = 0 to 15 do
    check
      (Printf.sprintf "identity m=%d" mt)
      (Bdd.eval_minterm m f mt)
      (Bdd.eval_reordered m' f' ~order mt)
  done

let test_convert_reversal () =
  let m = Bdd.make_man ~nvars:3 in
  let f = Bdd.bxor m (Bdd.var m 0) (Bdd.band m (Bdd.var m 1) (Bdd.var m 2)) in
  let order = [| 2; 1; 0 |] in
  let m', fs = Bdd.convert_with_order m [ f ] ~order in
  let f' = List.hd fs in
  for mt = 0 to 7 do
    check
      (Printf.sprintf "reversed m=%d" mt)
      (Bdd.eval_minterm m f mt)
      (Bdd.eval_reordered m' f' ~order mt)
  done

let test_sift_order_sensitive_function () =
  (* f = x0 x3 + x1 x4 + x2 x5 : interleaved order (x0 x3 x1 x4 x2 x5)
     is exponentially worse than the paired order.  Build it in the
     BAD order (variables as given are the bad interleaving when named
     v0..v5 = x0 x1 x2 x3 x4 x5 with pairs (0,3)(1,4)(2,5)). *)
  let m = Bdd.make_man ~nvars:6 in
  let pair a b = Bdd.band m (Bdd.var m a) (Bdd.var m b) in
  let f = Bdd.bor m (Bdd.bor m (pair 0 3) (pair 1 4)) (pair 2 5) in
  let before = Bdd.size m f in
  let m', fs, order = Bdd.sift m [ f ] in
  let f' = List.hd fs in
  let after = Bdd.size_many m' [ f' ] in
  check "sifting shrinks the disjoint-pairs function" true (after < before);
  (* function preserved under the order mapping *)
  for mt = 0 to 63 do
    check
      (Printf.sprintf "sift m=%d" mt)
      (Bdd.eval_minterm m f mt)
      (Bdd.eval_reordered m' f' ~order mt)
  done

let test_size_many_shares () =
  let m = Bdd.make_man ~nvars:3 in
  let a = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.bor m a (Bdd.var m 2) in
  check "shared counting <= sum" true
    (Bdd.size_many m [ a; b ] <= Bdd.size m a + Bdd.size m b)

let prop_sift_preserves =
  QCheck.Test.make ~name:"sifting preserves functions" ~count:40 (arb_cover 5)
    (fun cover ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      let m', fs, order = Bdd.sift m [ f ] in
      let f' = List.hd fs in
      let ok = ref true in
      for mt = 0 to 31 do
        if Bdd.eval_minterm m f mt <> Bdd.eval_reordered m' f' ~order mt then
          ok := false
      done;
      !ok)

let prop_sift_never_grows =
  QCheck.Test.make ~name:"sifting never grows the node count" ~count:40
    (arb_cover 5) (fun cover ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      let before = Bdd.size_many m [ f ] in
      let m', fs, _ = Bdd.sift m [ f ] in
      Bdd.size_many m' fs <= before)

let reorder_cases =
  [
    Alcotest.test_case "convert identity order" `Quick test_convert_identity;
    Alcotest.test_case "convert reversal" `Quick test_convert_reversal;
    Alcotest.test_case "sifting shrinks pair function" `Quick
      test_sift_order_sensitive_function;
    Alcotest.test_case "size_many shares" `Quick test_size_many_shares;
    QCheck_alcotest.to_alcotest prop_sift_preserves;
    QCheck_alcotest.to_alcotest prop_sift_never_grows;
  ]

let suite = (fst suite, snd suite @ reorder_cases)

(* ISOP extraction. *)

let test_isop_fully_specified () =
  let m = Bdd.make_man ~nvars:3 in
  let f = Bdd.bor m (Bdd.band m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 2) in
  let cover, fbdd = Bdd.isop m ~lower:f ~upper:f in
  check "cover bdd equals f" true (Bdd.equal fbdd f);
  for mt = 0 to 7 do
    check
      (Printf.sprintf "isop m=%d" mt)
      (Bdd.eval_minterm m f mt)
      (Cover.eval cover mt)
  done

let test_isop_with_dc () =
  (* on = {00}, dc = {01,10} over 2 vars: a single-literal cube fits. *)
  let m = Bdd.make_man ~nvars:2 in
  let on = Bdd.band m (Bdd.nvar m 0) (Bdd.nvar m 1) in
  let up =
    Bdd.bor m on
      (Bdd.bor m
         (Bdd.band m (Bdd.var m 0) (Bdd.nvar m 1))
         (Bdd.band m (Bdd.nvar m 0) (Bdd.var m 1)))
  in
  let cover, fbdd = Bdd.isop m ~lower:on ~upper:up in
  check_int "one cube" 1 (Cover.size cover);
  (* interval respected *)
  check "lower <= cover" true
    (Bdd.is_zero m (Bdd.band m on (Bdd.bnot m fbdd)));
  check "cover <= upper" true
    (Bdd.is_zero m (Bdd.band m fbdd (Bdd.bnot m up)))

let test_isop_rejects_bad_interval () =
  let m = Bdd.make_man ~nvars:2 in
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Bdd.isop: lower not contained in upper") (fun () ->
      ignore (Bdd.isop m ~lower:(Bdd.one m) ~upper:(Bdd.var m 0)))

let test_isop_large_n () =
  (* 30-variable sparse function: symbolic synthesis beyond the dense
     limit. *)
  let n = 30 in
  let m = Bdd.make_man ~nvars:n in
  let f =
    Bdd.bor m
      (Bdd.band m (Bdd.var m 0) (Bdd.var m 15))
      (Bdd.band m (Bdd.var m 7) (Bdd.bnot m (Bdd.var m 29)))
  in
  let cover, fbdd = Bdd.isop m ~lower:f ~upper:f in
  check "exact" true (Bdd.equal fbdd f);
  check "two cubes" true (Cover.size cover = 2)

let prop_isop_interval =
  QCheck.Test.make ~name:"isop stays within [on, on+dc]" ~count:100
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (on_c, dc_c) ->
      let m = Bdd.make_man ~nvars:5 in
      let on = Bdd.of_cover m on_c in
      let dc = Bdd.band m (Bdd.of_cover m dc_c) (Bdd.bnot m on) in
      let up = Bdd.bor m on dc in
      let cover, fbdd = Bdd.isop m ~lower:on ~upper:up in
      Bdd.is_zero m (Bdd.band m on (Bdd.bnot m fbdd))
      && Bdd.is_zero m (Bdd.band m fbdd (Bdd.bnot m up))
      && Bdd.equal fbdd (Bdd.of_cover m cover))

let prop_isop_competitive =
  QCheck.Test.make ~name:"isop cover size competitive with dense espresso"
    ~count:60 (arb_cover 5) (fun on_c ->
      let m = Bdd.make_man ~nvars:5 in
      let on = Bdd.of_cover m on_c in
      let cover, _ = Bdd.isop m ~lower:on ~upper:on in
      let on_bv = Bdd.to_bv m on in
      let dc_bv = Bv.create 32 in
      let esp = Espresso.Dense.minimize ~n:5 ~on:on_bv ~dc:dc_bv in
      (* ISOP is irredundant, not minimal: allow slack but catch blowups *)
      Cover.size cover <= (2 * Cover.size esp) + 2)

let isop_cases =
  [
    Alcotest.test_case "isop fully specified" `Quick test_isop_fully_specified;
    Alcotest.test_case "isop exploits dc" `Quick test_isop_with_dc;
    Alcotest.test_case "isop rejects bad interval" `Quick
      test_isop_rejects_bad_interval;
    Alcotest.test_case "isop at n=30" `Quick test_isop_large_n;
    QCheck_alcotest.to_alcotest prop_isop_interval;
    QCheck_alcotest.to_alcotest prop_isop_competitive;
  ]

let suite = (fst suite, snd suite @ isop_cases)

(* More algebraic laws. *)

let prop_exists_forall_duality =
  QCheck.Test.make ~name:"exists/forall De Morgan duality" ~count:80
    QCheck.(pair (arb_cover 5) (int_bound 4))
    (fun (cover, v) ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      Bdd.equal
        (Bdd.bnot m (Bdd.exists m [ v ] f))
        (Bdd.forall m [ v ] (Bdd.bnot m f)))

let prop_flip_var_involution =
  QCheck.Test.make ~name:"flip_var is an involution" ~count:80
    QCheck.(pair (arb_cover 5) (int_bound 4))
    (fun (cover, v) ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      Bdd.equal f (Bdd.flip_var m (Bdd.flip_var m f v) v))

let prop_flip_var_satcount =
  QCheck.Test.make ~name:"flip_var preserves satcount" ~count:80
    QCheck.(pair (arb_cover 5) (int_bound 4))
    (fun (cover, v) ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      Bdd.satcount m f = Bdd.satcount m (Bdd.flip_var m f v))

let prop_restrict_shannon =
  QCheck.Test.make ~name:"Shannon expansion reconstructs" ~count:80
    QCheck.(pair (arb_cover 5) (int_bound 4))
    (fun (cover, v) ->
      let m = Bdd.make_man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      let f0 = Bdd.restrict m f ~var:v ~value:false in
      let f1 = Bdd.restrict m f ~var:v ~value:true in
      Bdd.equal f (Bdd.ite m (Bdd.var m v) f1 f0))

let law_cases =
  [
    QCheck_alcotest.to_alcotest prop_exists_forall_duality;
    QCheck_alcotest.to_alcotest prop_flip_var_involution;
    QCheck_alcotest.to_alcotest prop_flip_var_satcount;
    QCheck_alcotest.to_alcotest prop_restrict_shannon;
  ]

let suite = (fst suite, snd suite @ law_cases)
