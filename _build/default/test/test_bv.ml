(* Unit and property tests for Bitvec.Bv. *)

module Bv = Bitvec.Bv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_empty () =
  let t = Bv.create 100 in
  check_int "length" 100 (Bv.length t);
  check_int "cardinal" 0 (Bv.cardinal t);
  check "is_empty" true (Bv.is_empty t)

let test_set_get_clear () =
  let t = Bv.create 70 in
  Bv.set t 0;
  Bv.set t 62;
  Bv.set t 63;
  Bv.set t 69;
  check "bit 0" true (Bv.get t 0);
  check "bit 62" true (Bv.get t 62);
  check "bit 63 (word boundary)" true (Bv.get t 63);
  check "bit 69" true (Bv.get t 69);
  check "bit 1" false (Bv.get t 1);
  check_int "cardinal" 4 (Bv.cardinal t);
  Bv.clear t 63;
  check "cleared" false (Bv.get t 63);
  check_int "cardinal after clear" 3 (Bv.cardinal t)

let test_assign () =
  let t = Bv.create 8 in
  Bv.assign t 3 true;
  check "assigned true" true (Bv.get t 3);
  Bv.assign t 3 false;
  check "assigned false" false (Bv.get t 3)

let test_out_of_range () =
  let t = Bv.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bv: index out of range")
    (fun () -> ignore (Bv.get t (-1)));
  Alcotest.check_raises "get 10" (Invalid_argument "Bv: index out of range")
    (fun () -> ignore (Bv.get t 10))

let test_fill_complement () =
  let t = Bv.create 65 in
  Bv.fill t true;
  check_int "filled cardinal" 65 (Bv.cardinal t);
  let c = Bv.complement t in
  check_int "complement cardinal" 0 (Bv.cardinal c);
  let c2 = Bv.complement c in
  check "double complement" true (Bv.equal t c2)

let test_setops () =
  let a = Bv.of_list 10 [ 1; 3; 5; 7 ] in
  let b = Bv.of_list 10 [ 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5; 6; 7 ]
    (Bv.to_list (Bv.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bv.to_list (Bv.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 7 ] (Bv.to_list (Bv.diff a b));
  check "subset no" false (Bv.subset a b);
  check "subset yes" true (Bv.subset (Bv.inter a b) a);
  check "disjoint no" false (Bv.disjoint a b);
  check "disjoint yes" true (Bv.disjoint (Bv.diff a b) b)

let test_inplace () =
  let a = Bv.of_list 10 [ 1; 2 ] in
  let b = Bv.of_list 10 [ 2; 3 ] in
  Bv.union_in_place a b;
  Alcotest.(check (list int)) "union_in_place" [ 1; 2; 3 ] (Bv.to_list a);
  Bv.diff_in_place a b;
  Alcotest.(check (list int)) "diff_in_place" [ 1 ] (Bv.to_list a);
  let c = Bv.of_list 10 [ 1; 5 ] in
  Bv.inter_in_place c (Bv.of_list 10 [ 5 ]);
  Alcotest.(check (list int)) "inter_in_place" [ 5 ] (Bv.to_list c)

let test_iter_fold () =
  let t = Bv.of_list 200 [ 0; 63; 64; 126; 199 ] in
  let collected = ref [] in
  Bv.iter_set (fun i -> collected := i :: !collected) t;
  Alcotest.(check (list int)) "iter order" [ 0; 63; 64; 126; 199 ]
    (List.rev !collected);
  check_int "fold sum" (0 + 63 + 64 + 126 + 199)
    (Bv.fold_set (fun i acc -> acc + i) t 0)

let test_copy_independent () =
  let a = Bv.of_list 10 [ 1 ] in
  let b = Bv.copy a in
  Bv.set b 2;
  check "copy independent" false (Bv.get a 2);
  check "copy kept" true (Bv.get b 1)

(* Properties *)

let gen_ops =
  QCheck.(pair (small_nat |> map (fun n -> n + 1)) (list small_nat))

let prop_of_list_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200 gen_ops
    (fun (n, l) ->
      let l = List.filter (fun i -> i < n) l |> List.sort_uniq compare in
      Bv.to_list (Bv.of_list n l) = l)

let prop_demorgan =
  QCheck.Test.make ~name:"De Morgan: not (a|b) = not a & not b" ~count:200
    QCheck.(triple small_nat (list small_nat) (list small_nat))
    (fun (n0, la, lb) ->
      let n = n0 + 1 in
      let mk l = Bv.of_list n (List.filter (fun i -> i < n) l) in
      let a = mk la and b = mk lb in
      Bv.equal
        (Bv.complement (Bv.union a b))
        (Bv.inter (Bv.complement a) (Bv.complement b)))

let prop_cardinal_union =
  QCheck.Test.make ~name:"|a|+|b| = |a∪b|+|a∩b|" ~count:200
    QCheck.(triple small_nat (list small_nat) (list small_nat))
    (fun (n0, la, lb) ->
      let n = n0 + 1 in
      let mk l = Bv.of_list n (List.filter (fun i -> i < n) l) in
      let a = mk la and b = mk lb in
      Bv.cardinal a + Bv.cardinal b
      = Bv.cardinal (Bv.union a b) + Bv.cardinal (Bv.inter a b))

let suite =
  ( "bv",
    [
      Alcotest.test_case "create empty" `Quick test_create_empty;
      Alcotest.test_case "set/get/clear across word boundary" `Quick
        test_set_get_clear;
      Alcotest.test_case "assign" `Quick test_assign;
      Alcotest.test_case "out of range raises" `Quick test_out_of_range;
      Alcotest.test_case "fill and complement respect padding" `Quick
        test_fill_complement;
      Alcotest.test_case "set operations" `Quick test_setops;
      Alcotest.test_case "in-place operations" `Quick test_inplace;
      Alcotest.test_case "iter/fold order" `Quick test_iter_fold;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      QCheck_alcotest.to_alcotest prop_of_list_roundtrip;
      QCheck_alcotest.to_alcotest prop_demorgan;
      QCheck_alcotest.to_alcotest prop_cardinal_union;
    ] )

(* Word-boundary and duplicate edge cases. *)

let test_exact_word_lengths () =
  List.iter
    (fun n ->
      let t = Bv.create n in
      Bv.fill t true;
      Alcotest.(check int) (Printf.sprintf "fill %d" n) n (Bv.cardinal t);
      let c = Bv.complement t in
      Alcotest.(check int) (Printf.sprintf "compl %d" n) 0 (Bv.cardinal c))
    [ 1; 62; 63; 64; 126; 127 ]

let test_of_list_duplicates () =
  let t = Bv.of_list 8 [ 3; 3; 3 ] in
  Alcotest.(check int) "dup sets once" 1 (Bv.cardinal t)

let test_zero_length () =
  let t = Bv.create 0 in
  Alcotest.(check int) "empty" 0 (Bv.cardinal t);
  Alcotest.(check bool) "is_empty" true (Bv.is_empty t);
  Alcotest.(check bool) "equal to self complement" true
    (Bv.equal t (Bv.complement t))

let prop_subset_reflexive_transitive =
  QCheck.Test.make ~name:"subset is reflexive and transitive via inter"
    ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (la, lb) ->
      let n = 40 in
      let mk l = Bv.of_list n (List.filter (fun i -> i < n) l) in
      let a = mk la and b = mk lb in
      let i = Bv.inter a b in
      Bv.subset a a && Bv.subset i a && Bv.subset i b)

let extra_cases =
  [
    Alcotest.test_case "exact word lengths" `Quick test_exact_word_lengths;
    Alcotest.test_case "of_list duplicates" `Quick test_of_list_duplicates;
    Alcotest.test_case "zero length" `Quick test_zero_length;
    QCheck_alcotest.to_alcotest prop_subset_reflexive_transitive;
  ]

let suite = (fst suite, snd suite @ extra_cases)
