(* Tests for the arithmetic circuit generators. *)

module C = Synthetic.Circuits

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let to_int bools base width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    if bools.(base + i) then v := !v lor (1 lsl i)
  done;
  !v

let test_adder () =
  List.iter
    (fun bits ->
      let t = C.adder ~bits in
      check_int "inputs" (2 * bits) (Aig.ni t);
      check_int "outputs" (bits + 1) (Aig.no t);
      for m = 0 to (1 lsl (2 * bits)) - 1 do
        let a = m land ((1 lsl bits) - 1) in
        let b = m lsr bits in
        let outs = Aig.eval_minterm t m in
        let got = to_int outs 0 (bits + 1) in
        if got <> a + b then
          Alcotest.failf "adder %d-bit: %d + %d gave %d" bits a b got
      done)
    [ 1; 2; 3; 4 ]

let test_multiplier () =
  List.iter
    (fun bits ->
      let t = C.multiplier ~bits in
      check_int "outputs" (2 * bits) (Aig.no t);
      for m = 0 to (1 lsl (2 * bits)) - 1 do
        let a = m land ((1 lsl bits) - 1) in
        let b = m lsr bits in
        let outs = Aig.eval_minterm t m in
        let got = to_int outs 0 (2 * bits) in
        if got <> a * b then
          Alcotest.failf "mult %d-bit: %d * %d gave %d" bits a b got
      done)
    [ 1; 2; 3; 4 ]

let test_comparator () =
  let bits = 3 in
  let t = C.comparator ~bits in
  for m = 0 to 63 do
    let a = m land 7 and b = m lsr 3 in
    let outs = Aig.eval_minterm t m in
    check (Printf.sprintf "lt %d %d" a b) (a < b) outs.(0);
    check (Printf.sprintf "eq %d %d" a b) (a = b) outs.(1);
    check (Printf.sprintf "gt %d %d" a b) (a > b) outs.(2)
  done

let test_alu () =
  let bits = 3 in
  let t = C.alu ~bits in
  for m = 0 to (1 lsl ((2 * bits) + 2)) - 1 do
    let a = m land 7 and b = (m lsr 3) land 7 in
    let op = (m lsr 6) land 3 in
    let expected =
      match op with
      | 0 -> a land b
      | 1 -> a lor b
      | 2 -> a lxor b
      | _ -> (a + b) land 7
    in
    let outs = Aig.eval_minterm t m in
    let got = to_int outs 0 bits in
    if got <> expected then
      Alcotest.failf "alu op=%d: %d ? %d gave %d (want %d)" op a b got expected
  done

let test_parity () =
  let t = C.parity ~bits:5 in
  for m = 0 to 31 do
    check
      (Printf.sprintf "parity %d" m)
      (Bitvec.Minterm.popcount m mod 2 = 1)
      (Aig.eval_minterm t m).(0)
  done

let test_majority () =
  let t = C.majority3 () in
  for m = 0 to 7 do
    check
      (Printf.sprintf "maj %d" m)
      (Bitvec.Minterm.popcount m >= 2)
      (Aig.eval_minterm t m).(0)
  done

let test_mapping_the_circuits () =
  (* The full backend applies to generated circuits too. *)
  let lib = Techmap.Stdcell.default_library () in
  List.iter
    (fun t ->
      let nl =
        Techmap.Mapper.map ~mode:Techmap.Mapper.Delay ~lib (Aig.Opt.balance t)
      in
      for m = 0 to (1 lsl Aig.ni t) - 1 do
        if Aig.eval_minterm t m <> Netlist.eval_minterm nl m then
          Alcotest.fail "mapped circuit differs"
      done)
    [ C.adder ~bits:3; C.multiplier ~bits:2; C.comparator ~bits:2 ]

let test_renode_on_adder () =
  (* Section 4 flow on a structured circuit: 4-LUT renode + local DC
     reassignment keeps I/O and improves (or preserves) internal
     masking. *)
  let t = C.adder ~bits:4 in
  let nl = Techmap.Lutmap.map ~k:4 t in
  let nl' = Rdca_core.Decompose.reassign ~threshold:0.65 nl in
  let tb = Netlist.output_tables nl and tb' = Netlist.output_tables nl' in
  check "io preserved" true (Array.for_all2 Bitvec.Bv.equal tb tb');
  let before = Rdca_core.Decompose.internal_error_rate nl in
  let after = Rdca_core.Decompose.internal_error_rate nl' in
  check "not much worse" true (after <= before +. 0.02)

let suite =
  ( "circuits",
    [
      Alcotest.test_case "adders 1-4 bit exhaustive" `Quick test_adder;
      Alcotest.test_case "multipliers 1-4 bit exhaustive" `Quick
        test_multiplier;
      Alcotest.test_case "comparator" `Quick test_comparator;
      Alcotest.test_case "alu" `Quick test_alu;
      Alcotest.test_case "parity" `Quick test_parity;
      Alcotest.test_case "majority3" `Quick test_majority;
      Alcotest.test_case "mapping generated circuits" `Quick
        test_mapping_the_circuits;
      Alcotest.test_case "renode on adder" `Quick test_renode_on_adder;
    ] )
