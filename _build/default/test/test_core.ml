(* Tests for the paper's DC-assignment algorithms (Figures 3 and 7),
   conventional assignment, and the nodal-decomposition extension. *)

module Spec = Pla.Spec
module Cover = Twolevel.Cover
module Metrics = Rdca_core.Metrics
module Assign = Rdca_core.Assign
module Decompose = Rdca_core.Decompose
module ER = Reliability.Error_rate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let phase = Alcotest.testable
    (fun ppf -> function
      | Spec.On -> Format.pp_print_string ppf "On"
      | Spec.Off -> Format.pp_print_string ppf "Off"
      | Spec.Dc -> Format.pp_print_string ppf "Dc")
    ( = )

(* A 4-input instance of the paper's motivating example (Figure 1):
   x1 = minterm 0 with two on-, one off-, one DC-neighbour;
   x2 = minterm 8 with two off-, one on-, one DC-neighbour;
   x3 = minterm 5 with two on- and two off-neighbours. *)
let motivating () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 1; 2; 12; 7 ];
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.Dc) [ 0; 8; 5 ];
  s

let test_motivating_weights () =
  let s = motivating () in
  check_int "w(x1)" 1 (Metrics.weight s ~o:0 ~m:0);
  check_int "w(x2)" 1 (Metrics.weight s ~o:0 ~m:8);
  check_int "w(x3)" 0 (Metrics.weight s ~o:0 ~m:5);
  Alcotest.(check (option bool)) "x1 -> on" (Some true)
    (Metrics.majority_phase s ~o:0 ~m:0);
  Alcotest.(check (option bool)) "x2 -> off" (Some false)
    (Metrics.majority_phase s ~o:0 ~m:8);
  Alcotest.(check (option bool)) "x3 tie" None
    (Metrics.majority_phase s ~o:0 ~m:5)

let test_motivating_ranking () =
  let s = motivating () in
  let r = Assign.ranking ~fraction:1.0 s in
  Alcotest.check phase "x1 assigned on" Spec.On (Spec.get r ~o:0 ~m:0);
  Alcotest.check phase "x2 assigned off" Spec.Off (Spec.get r ~o:0 ~m:8);
  Alcotest.check phase "x3 left dc" Spec.Dc (Spec.get r ~o:0 ~m:5);
  (* original untouched *)
  Alcotest.check phase "input not mutated" Spec.Dc (Spec.get s ~o:0 ~m:0)

let test_ranking_fraction_zero () =
  let s = motivating () in
  let r = Assign.ranking ~fraction:0.0 s in
  check "nothing assigned" true (Spec.equal s r)

let test_ranking_fraction_partial () =
  (* With two rankable DCs, fraction 0.5 assigns exactly one (the
     highest weight; ties broken by minterm index). *)
  let s = motivating () in
  let r = Assign.ranking ~fraction:0.5 s in
  let assigned =
    List.length
      (List.filter
         (fun m -> Spec.get r ~o:0 ~m <> Spec.Dc)
         [ 0; 8; 5 ])
  in
  check_int "one of three" 1 assigned;
  Alcotest.check phase "lowest minterm wins tie" Spec.On (Spec.get r ~o:0 ~m:0)

let test_dc_ranking_order () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  (* m=0: three on-neighbours -> w 3.  m=7: one on neighbour of its
     three -> w 1 (nbrs 6,5,3 all off => w=3 off-majority). *)
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 1; 2; 4 ];
  Spec.set s ~o:0 ~m:0 Spec.Dc;
  Spec.set s ~o:0 ~m:7 Spec.Dc;
  match Metrics.dc_ranking s ~o:0 with
  | [ (m1, w1); (m2, w2) ] ->
      check_int "first minterm" 0 m1;
      check_int "first weight" 3 w1;
      check_int "second minterm" 7 m2;
      check_int "second weight" 3 w2
  | l -> Alcotest.failf "expected 2 ranked DCs, got %d" (List.length l)

let test_by_complexity_thresholds () =
  let s = motivating () in
  let none = Assign.by_complexity ~threshold:0.0 s in
  check "threshold 0 assigns nothing" true (Spec.equal s none);
  let all = Assign.by_complexity ~threshold:1.01 s in
  check "threshold > 1 assigns everything" true (Spec.is_fully_specified all)

let test_by_complexity_tie_to_zero () =
  let s = motivating () in
  let r = Assign.by_complexity ~threshold:1.01 s in
  (* x3 is a tie: Figure 7's else-branch sends it to 0. *)
  Alcotest.check phase "tie to off" Spec.Off (Spec.get r ~o:0 ~m:5)

let test_conventional_fully_specified () =
  let s = motivating () in
  let r, covers = Assign.conventional s in
  check "fully specified" true (Spec.is_fully_specified r);
  check_int "one cover" 1 (List.length covers);
  (* conventional preserves care phases *)
  for m = 0 to 15 do
    match Spec.get s ~o:0 ~m with
    | Spec.Dc -> ()
    | p -> Alcotest.check phase (Printf.sprintf "care m=%d" m) p (Spec.get r ~o:0 ~m)
  done;
  (* the cover agrees with the assigned spec *)
  let cover = List.hd covers in
  for m = 0 to 15 do
    check
      (Printf.sprintf "cover m=%d" m)
      (Spec.output_value r ~o:0 ~m)
      (Cover.eval cover m)
  done

let test_assigned_dc_fraction () =
  let s = motivating () in
  let r = Assign.ranking ~fraction:1.0 s in
  Alcotest.(check (float 1e-9)) "2 of 3" (2.0 /. 3.0)
    (Assign.assigned_dc_fraction ~before:s ~after:r)

let test_matching_budget () =
  let s = motivating () in
  let lcf = Assign.by_complexity ~threshold:0.6 s in
  let matched = Assign.ranking_matching_budget ~reference:lcf s in
  let count spec =
    let c = ref 0 in
    Spec.iter_dc s ~o:0 (fun m ->
        if Spec.get spec ~o:0 ~m <> Spec.Dc then incr c);
    !c
  in
  (* budgets agree up to ties/zero-weight exclusions *)
  check "budget within 1" true (abs (count lcf - count matched) <= 1)

(* Statistical test: on random incompletely specified functions, fully
   reliability-driven assignment (then conventional for leftovers)
   should on average beat pure conventional assignment on error rate. *)
let test_reliability_beats_conventional_on_average () =
  let rng = Random.State.make [| 11 |] in
  let total_conv = ref 0.0 and total_rel = ref 0.0 in
  let runs = 25 in
  for _ = 1 to runs do
    let s = Synthetic.Synth_gen.random_spec ~rng ~ni:6 ~no:1 ~f1:0.2 ~f0:0.2 in
    let conv, _ = Assign.conventional s in
    let rel, _ = Assign.conventional (Assign.complete s) in
    total_conv := !total_conv +. ER.of_spec_assigned conv ~o:0;
    total_rel := !total_rel +. ER.of_spec_assigned rel ~o:0
  done;
  check "reliability-driven lower error on average" true
    (!total_rel < !total_conv)

let test_complete_reaches_min_bound () =
  (* With every non-tied DC at its majority phase and ties resolved
     arbitrarily afterwards, the final error rate equals the exact
     minimum bound when there are no DC-DC adjacencies... in general it
     is close; here use a spec with isolated DCs where it is exact. *)
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 3; 5 ];
  Spec.set s ~o:0 ~m:7 Spec.Dc;
  (* nbrs of 7: 6(off) 5(on) 3(on) -> majority on *)
  let b = ER.bounds s ~o:0 in
  let r, _ = Assign.conventional (Assign.complete s) in
  (* The error rate must be computed against the ORIGINAL spec's care
     set: assigned DCs are care in the implementation but still cannot
     originate errors. *)
  let impl = Bitvec.Bv.create 8 in
  for m = 0 to 7 do
    if Spec.output_value r ~o:0 ~m then Bitvec.Bv.set impl m
  done;
  Alcotest.(check (float 1e-9))
    "reaches min" (ER.min_rate b)
    (ER.of_table s ~o:0 ~impl)

(* Decompose tests *)

let sample_mapped () =
  let lib = Techmap.Stdcell.default_library () in
  let c =
    Cover.make ~n:4
      (List.map Twolevel.Cube.of_string [ "11--"; "--11"; "1-0-" ])
  in
  let aig = Aig.of_covers ~ni:4 [ c ] in
  Techmap.Mapper.map ~mode:Techmap.Mapper.Delay ~lib aig

let test_local_patterns_inverter_pair () =
  (* AND(x, NOT x): the AND can never see pattern 11 or 00. *)
  let nl = Netlist.create ~ni:1 in
  let inv = Netlist.add nl Netlist.Gate.Not [| 0 |] in
  let a = Netlist.add nl Netlist.Gate.And [| 0; inv |] in
  Netlist.set_outputs nl [| a |];
  let masks = Decompose.local_patterns nl in
  (* patterns: bit0 = x, bit1 = not x; reachable: 01 (x=1) and 10 (x=0) *)
  check_int "and sees only 01 and 10" 0b0110 masks.(a)

let test_reassign_preserves_io () =
  let nl = sample_mapped () in
  let nl' = Decompose.reassign ~threshold:0.65 nl in
  for m = 0 to 15 do
    check
      (Printf.sprintf "io m=%d" m)
      ((Netlist.eval_minterm nl m).(0))
      ((Netlist.eval_minterm nl' m).(0))
  done

let test_internal_error_rate_range () =
  let nl = sample_mapped () in
  let r = Decompose.internal_error_rate nl in
  check "rate in [0,1]" true (r >= 0.0 && r <= 1.0);
  check "some propagation" true (r > 0.0)

let test_reassign_not_worse_internal () =
  let nl = sample_mapped () in
  let before = Decompose.internal_error_rate nl in
  let after =
    Decompose.internal_error_rate (Decompose.reassign ~threshold:0.65 nl)
  in
  (* Local DC reassignment targets masking; allow equality and tiny
     regressions from interaction effects. *)
  check "internal rate not much worse" true (after <= before +. 0.05)

let prop_ranking_assigns_subset =
  QCheck.Test.make ~name:"ranking at f1 assigns a superset of f0.5"
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.return 32) (int_bound 2))
    (fun phases ->
      let s = Spec.create ~ni:5 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun m p ->
          Spec.set s ~o:0 ~m
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      let half = Assign.ranking ~fraction:0.5 s in
      let full = Assign.ranking ~fraction:1.0 s in
      let ok = ref true in
      for m = 0 to 31 do
        match (Spec.get half ~o:0 ~m, Spec.get full ~o:0 ~m) with
        | Spec.Dc, _ -> ()
        | p, q -> if p <> q then ok := false
      done;
      !ok)

let prop_assignments_preserve_care =
  QCheck.Test.make ~name:"assignment never touches care minterms" ~count:60
    QCheck.(pair (list_of_size (QCheck.Gen.return 32) (int_bound 2)) (float_range 0.0 1.0))
    (fun (phases, threshold) ->
      let s = Spec.create ~ni:5 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun m p ->
          Spec.set s ~o:0 ~m
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      let variants =
        [
          Assign.ranking ~fraction:0.7 s;
          Assign.by_complexity ~threshold s;
          fst (Assign.conventional s);
        ]
      in
      List.for_all
        (fun v ->
          let ok = ref true in
          for m = 0 to 31 do
            match Spec.get s ~o:0 ~m with
            | Spec.Dc -> ()
            | p -> if Spec.get v ~o:0 ~m <> p then ok := false
          done;
          !ok)
        variants)

let suite =
  ( "core",
    [
      Alcotest.test_case "motivating example weights" `Quick
        test_motivating_weights;
      Alcotest.test_case "motivating example ranking" `Quick
        test_motivating_ranking;
      Alcotest.test_case "ranking fraction 0" `Quick test_ranking_fraction_zero;
      Alcotest.test_case "ranking partial fraction" `Quick
        test_ranking_fraction_partial;
      Alcotest.test_case "dc ranking order" `Quick test_dc_ranking_order;
      Alcotest.test_case "by_complexity thresholds" `Quick
        test_by_complexity_thresholds;
      Alcotest.test_case "by_complexity tie to zero" `Quick
        test_by_complexity_tie_to_zero;
      Alcotest.test_case "conventional fully specifies" `Quick
        test_conventional_fully_specified;
      Alcotest.test_case "assigned dc fraction" `Quick
        test_assigned_dc_fraction;
      Alcotest.test_case "matching budget" `Quick test_matching_budget;
      Alcotest.test_case "reliability beats conventional on average" `Quick
        test_reliability_beats_conventional_on_average;
      Alcotest.test_case "complete reaches min bound (isolated dc)" `Quick
        test_complete_reaches_min_bound;
      Alcotest.test_case "local patterns of inverter pair" `Quick
        test_local_patterns_inverter_pair;
      Alcotest.test_case "reassign preserves io" `Quick
        test_reassign_preserves_io;
      Alcotest.test_case "internal error rate range" `Quick
        test_internal_error_rate_range;
      Alcotest.test_case "reassign not worse internally" `Quick
        test_reassign_not_worse_internal;
      QCheck_alcotest.to_alcotest prop_ranking_assigns_subset;
      QCheck_alcotest.to_alcotest prop_assignments_preserve_care;
    ] )

(* ODC-based reassignment. *)

let test_odc_preserves_io () =
  let nl = sample_mapped () in
  let nl' = Decompose.reassign_odc ~threshold:0.65 nl in
  for m = 0 to 15 do
    check
      (Printf.sprintf "odc io m=%d" m)
      true
      (Netlist.eval_minterm nl m = Netlist.eval_minterm nl' m)
  done

let test_odc_input_untouched () =
  let nl = sample_mapped () in
  let before = Netlist.output_tables nl in
  ignore (Decompose.reassign_odc ~threshold:0.65 nl);
  let after = Netlist.output_tables nl in
  check "input netlist unchanged" true
    (Array.for_all2 Bitvec.Bv.equal before after)

let test_odc_superset_of_sdc () =
  (* Every unreachable pattern is unobservable, so ODC flexibility is
     a superset of satisfiability flexibility. *)
  let nl = sample_mapped () in
  let masks = Decompose.local_patterns nl in
  Netlist.iter_nodes nl (fun id g _ ->
      match g with
      | Netlist.Gate.Cell c when c.Netlist.Gate.arity <= 4 ->
          let obs = Decompose.observability_mask nl ~node:id in
          let full = (1 lsl (1 lsl c.Netlist.Gate.arity)) - 1 in
          (* observable ⊆ reachable *)
          check "observable within reachable" true
            (obs land lnot masks.(id) land full = 0)
      | _ -> ())

let test_odc_dead_gate_fully_free () =
  (* A cell whose output is masked by AND-with-0 downstream is never
     observable: every pattern is assignable. *)
  let lib = Techmap.Stdcell.default_library () in
  let and2 = Techmap.Stdcell.to_gate (Techmap.Stdcell.find lib "AND2") in
  let nl = Netlist.create ~ni:2 in
  let dead = Netlist.add nl and2 [| 0; 1 |] in
  let zero = Netlist.add nl (Netlist.Gate.Const false) [||] in
  let gated = Netlist.add nl and2 [| dead; zero |] in
  Netlist.set_outputs nl [| gated |];
  check_int "dead gate unobservable" 0
    (Decompose.observability_mask nl ~node:dead)

let prop_odc_io_equivalence =
  QCheck.Test.make ~name:"odc reassignment always preserves io" ~count:40
    QCheck.(list_of_size (QCheck.Gen.return 32) (int_bound 2))
    (fun phases ->
      let s = Spec.create ~ni:5 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun m p ->
          Spec.set s ~o:0 ~m
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      let full, covers = Rdca_core.Assign.conventional s in
      ignore full;
      let aig = Aig.of_covers ~ni:5 covers in
      let lib = Techmap.Stdcell.default_library () in
      let nl = Techmap.Mapper.map ~mode:Techmap.Mapper.Area ~lib aig in
      let nl' = Decompose.reassign_odc ~threshold:0.65 nl in
      let ok = ref true in
      for m = 0 to 31 do
        if Netlist.eval_minterm nl m <> Netlist.eval_minterm nl' m then
          ok := false
      done;
      !ok)

let odc_cases =
  [
    Alcotest.test_case "odc preserves io" `Quick test_odc_preserves_io;
    Alcotest.test_case "odc leaves input untouched" `Quick
      test_odc_input_untouched;
    Alcotest.test_case "observable within reachable" `Quick
      test_odc_superset_of_sdc;
    Alcotest.test_case "dead gate fully free" `Quick
      test_odc_dead_gate_fully_free;
    QCheck_alcotest.to_alcotest prop_odc_io_equivalence;
  ]

let suite = (fst suite, snd suite @ odc_cases)

(* Threshold monotonicity of the LC^f rule. *)

let prop_by_complexity_monotone =
  QCheck.Test.make ~name:"lower threshold assigns a subset" ~count:60
    QCheck.(list_of_size (QCheck.Gen.return 32) (int_bound 2))
    (fun phases ->
      let s = Spec.create ~ni:5 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun m p ->
          Spec.set s ~o:0 ~m
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      let low = Assign.by_complexity ~threshold:0.4 s in
      let high = Assign.by_complexity ~threshold:0.8 s in
      let ok = ref true in
      for m = 0 to 31 do
        match (Spec.get low ~o:0 ~m, Spec.get high ~o:0 ~m) with
        | Spec.Dc, _ -> ()
        | p, q -> if p <> q then ok := false
      done;
      !ok)

let mono_cases = [ QCheck_alcotest.to_alcotest prop_by_complexity_monotone ]

let suite = (fst suite, snd suite @ mono_cases)
