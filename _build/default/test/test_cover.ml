(* Unit and property tests for Twolevel.Cover. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover
module Bv = Bitvec.Bv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cov n strs = Cover.make ~n (List.map Cube.of_string strs)

let test_eval () =
  let f = cov 3 [ "1--"; "-11" ] in
  check "m=1 (x0)" true (Cover.eval f 0b001);
  check "m=6 (x1 x2)" true (Cover.eval f 0b110);
  check "m=0" false (Cover.eval f 0b000);
  check "m=2 (x1 only)" false (Cover.eval f 0b010)

let test_to_bv_roundtrip () =
  let f = cov 4 [ "1--0"; "01--" ] in
  let bv = Cover.to_bv f in
  for m = 0 to 15 do
    check (Printf.sprintf "bv m=%d" m) (Cover.eval f m) (Bv.get bv m)
  done;
  let f2 = Cover.of_bv ~n:4 bv in
  check "of_bv equivalent" true (Cover.equivalent f f2)

let test_cardinality () =
  check_int "two disjoint cubes" 5 (Cover.cardinality (cov 3 [ "1--"; "011" ]));
  check_int "overlapping" 4 (Cover.cardinality (cov 3 [ "1--"; "1-0" ]));
  check_int "empty" 0 (Cover.cardinality (Cover.empty ~n:3));
  check_int "universe" 8 (Cover.cardinality (Cover.universe ~n:3))

let test_tautology () =
  check "universe" true (Cover.is_tautology (Cover.universe ~n:4));
  check "empty" false (Cover.is_tautology (Cover.empty ~n:4));
  check "x + x'" true (Cover.is_tautology (cov 2 [ "1-"; "0-" ]));
  check "x + y" false (Cover.is_tautology (cov 2 [ "1-"; "-1" ]));
  check "xor cover of 2" false (Cover.is_tautology (cov 2 [ "10"; "01" ]));
  check "full 2-var disjoint minterms" true
    (Cover.is_tautology (cov 2 [ "00"; "01"; "10"; "11" ]))

let test_contains_cube () =
  let f = cov 3 [ "1--"; "-1-" ] in
  check "covered split across cubes" true (Cover.contains_cube f (Cube.of_string "11-"));
  check "covered by union" true (Cover.contains_cube f (Cube.of_string "1-0"));
  check "not covered" false (Cover.contains_cube f (Cube.of_string "--1"));
  (* the classic case needing real tautology, not single-cube checks *)
  let g = cov 2 [ "1-"; "01" ] in
  check "0-1 branch" false (Cover.contains_cube g (Cube.of_string "--"));
  check "consensus coverage" true (Cover.contains_cube g (Cube.of_string "-1"))

let test_complement () =
  let f = cov 3 [ "1--"; "-11" ] in
  let fc = Cover.complement f in
  for m = 0 to 7 do
    check (Printf.sprintf "complement m=%d" m) (not (Cover.eval f m))
      (Cover.eval fc m)
  done;
  check "complement of empty" true
    (Cover.is_tautology (Cover.complement (Cover.empty ~n:3)));
  check_int "complement of universe" 0
    (Cover.size (Cover.complement (Cover.universe ~n:3)))

let test_sharp () =
  let f = cov 3 [ "---" ] in
  let s = Cover.sharp f (Cube.of_string "1--") in
  for m = 0 to 7 do
    check (Printf.sprintf "sharp m=%d" m) (m land 1 = 0) (Cover.eval s m)
  done

let test_scc () =
  let f = cov 3 [ "1--"; "11-"; "111"; "0--" ] in
  let r = Cover.single_cube_containment f in
  check_int "kept cubes" 2 (Cover.size r);
  check "still equivalent" true (Cover.equivalent f r)

let test_scc_duplicates () =
  let f = cov 2 [ "1-"; "1-"; "1-" ] in
  let r = Cover.single_cube_containment f in
  check_int "dedup" 1 (Cover.size r)

let test_unate () =
  check "unate cover" true (Cover.is_unate (cov 3 [ "1--"; "-1-"; "11-" ]));
  check "binate cover" false (Cover.is_unate (cov 3 [ "1--"; "0-1" ]));
  Alcotest.(check (option int))
    "most binate var" (Some 0)
    (Cover.most_binate_var (cov 3 [ "1--"; "0-1"; "1-0" ]))

let test_literal_count () =
  check_int "literals" 4 (Cover.literal_count (cov 3 [ "1--"; "011" ]))

(* Random cover generator for properties. *)
let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (frequencyl [ (2, Cube.Zero); (2, Cube.One); (3, Cube.Free) ])
      |> map (Cube.make ~n)
    in
    list_size (int_range 0 6) gen_cube |> map (fun cs -> Cover.make ~n cs))

let arb_cover n =
  QCheck.make
    ~print:(fun cv -> Format.asprintf "%a" Cover.pp cv)
    (gen_cover n)

let semantically_equal n a b =
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    if Cover.eval a m <> Cover.eval b m then ok := false
  done;
  !ok

let prop_complement_semantics =
  QCheck.Test.make ~name:"complement flips every minterm" ~count:200
    (arb_cover 5) (fun f ->
      let fc = Cover.complement f in
      let ok = ref true in
      for m = 0 to 31 do
        if Cover.eval fc m = Cover.eval f m then ok := false
      done;
      !ok)

let prop_tautology_semantics =
  QCheck.Test.make ~name:"is_tautology agrees with enumeration" ~count:200
    (arb_cover 5) (fun f ->
      let taut = ref true in
      for m = 0 to 31 do
        if not (Cover.eval f m) then taut := false
      done;
      Cover.is_tautology f = !taut)

let prop_cardinality_semantics =
  QCheck.Test.make ~name:"cardinality agrees with enumeration" ~count:200
    (arb_cover 5) (fun f ->
      let cnt = ref 0 in
      for m = 0 to 31 do
        if Cover.eval f m then incr cnt
      done;
      Cover.cardinality f = !cnt)

let prop_union_intersect =
  QCheck.Test.make ~name:"intersect is pointwise AND" ~count:200
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (a, b) ->
      let i = Cover.intersect a b in
      let ok = ref true in
      for m = 0 to 31 do
        if Cover.eval i m <> (Cover.eval a m && Cover.eval b m) then ok := false
      done;
      !ok)

let prop_scc_preserves =
  QCheck.Test.make ~name:"single_cube_containment preserves function"
    ~count:200 (arb_cover 5) (fun f ->
      semantically_equal 5 f (Cover.single_cube_containment f))

let prop_double_complement =
  QCheck.Test.make ~name:"double complement is identity (semantically)"
    ~count:100 (arb_cover 5) (fun f ->
      semantically_equal 5 f (Cover.complement (Cover.complement f)))

let suite =
  ( "cover",
    [
      Alcotest.test_case "eval" `Quick test_eval;
      Alcotest.test_case "to_bv roundtrip" `Quick test_to_bv_roundtrip;
      Alcotest.test_case "cardinality" `Quick test_cardinality;
      Alcotest.test_case "tautology" `Quick test_tautology;
      Alcotest.test_case "contains_cube" `Quick test_contains_cube;
      Alcotest.test_case "complement" `Quick test_complement;
      Alcotest.test_case "sharp" `Quick test_sharp;
      Alcotest.test_case "single cube containment" `Quick test_scc;
      Alcotest.test_case "scc dedup" `Quick test_scc_duplicates;
      Alcotest.test_case "unate detection" `Quick test_unate;
      Alcotest.test_case "literal count" `Quick test_literal_count;
      QCheck_alcotest.to_alcotest prop_complement_semantics;
      QCheck_alcotest.to_alcotest prop_tautology_semantics;
      QCheck_alcotest.to_alcotest prop_cardinality_semantics;
      QCheck_alcotest.to_alcotest prop_union_intersect;
      QCheck_alcotest.to_alcotest prop_scc_preserves;
      QCheck_alcotest.to_alcotest prop_double_complement;
    ] )
