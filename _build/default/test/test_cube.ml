(* Unit and property tests for Twolevel.Cube. *)

module Cube = Twolevel.Cube
module M = Bitvec.Minterm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let c s = Cube.of_string s

let test_string_roundtrip () =
  check_str "mixed" "01-1" (Cube.to_string ~n:4 (c "01-1"));
  check_str "all free" "----" (Cube.to_string ~n:4 (Cube.full ~n:4));
  check_str "espresso 2 accepted" "0-1" (Cube.to_string ~n:3 (c "021"))

let test_of_minterm () =
  let cb = Cube.of_minterm ~n:4 0b0101 in
  check_str "minterm 5" "1010" (Cube.to_string ~n:4 cb);
  check "contains itself" true (Cube.contains_minterm cb 0b0101);
  check "not neighbour" false (Cube.contains_minterm cb 0b0100)

let test_get_set () =
  let cb = c "0-1" in
  Alcotest.(check bool) "get 0" true (Cube.get cb 0 = Cube.Zero);
  Alcotest.(check bool) "get 1" true (Cube.get cb 1 = Cube.Free);
  Alcotest.(check bool) "get 2" true (Cube.get cb 2 = Cube.One);
  let cb2 = Cube.set cb 1 Cube.One in
  check_str "after set" "011" (Cube.to_string ~n:3 cb2)

let test_contains_minterm () =
  let cb = c "1-0" in
  (* variable 0 = 1, variable 1 free, variable 2 = 0 *)
  check "m=1 (001 as bits)" true (Cube.contains_minterm cb 0b001);
  check "m=3" true (Cube.contains_minterm cb 0b011);
  check "m=0 fails var0" false (Cube.contains_minterm cb 0b000);
  check "m=5 fails var2" false (Cube.contains_minterm cb 0b101)

let test_subsumes () =
  check "wider subsumes narrower" true (Cube.subsumes (c "--1") (c "011"));
  check "narrower not wider" false (Cube.subsumes (c "011") (c "--1"));
  check "reflexive" true (Cube.subsumes (c "01-") (c "01-"));
  check "disjoint" false (Cube.subsumes (c "1--") (c "0--"))

let test_intersect () =
  (match Cube.intersect (c "1--") (c "-0-") with
  | Some x -> check_str "meet" "10-" (Cube.to_string ~n:3 x)
  | None -> Alcotest.fail "expected intersection");
  check "empty" true (Cube.intersect (c "1--") (c "0--") = None)

let test_distance () =
  check_int "distance 0" 0 (Cube.distance ~n:3 (c "1--") (c "-0-"));
  check_int "distance 1" 1 (Cube.distance ~n:3 (c "1--") (c "0--"));
  check_int "distance 3" 3 (Cube.distance ~n:3 (c "111") (c "000"))

let test_supercube () =
  check_str "supercube" "-1-"
    (Cube.to_string ~n:3 (Cube.supercube (c "010") (c "11-")))

let test_cofactor () =
  (* a = 1-0, c = 1-- : cofactor frees variable 0. *)
  (match Cube.cofactor ~n:3 (c "1-0") (c "1--") with
  | Some x -> check_str "cofactor" "--0" (Cube.to_string ~n:3 x)
  | None -> Alcotest.fail "expected cofactor");
  check "distance > 0 -> None" true (Cube.cofactor ~n:3 (c "1--") (c "0--") = None)

let test_counts () =
  check_int "free_count" 2 (Cube.free_count ~n:4 (c "1--0"));
  check_int "minterm_count" 4 (Cube.minterm_count ~n:4 (c "1--0"));
  check_int "minterm full" 16 (Cube.minterm_count ~n:4 (Cube.full ~n:4))

let test_iter_minterms () =
  let seen = ref [] in
  Cube.iter_minterms ~n:3 (fun m -> seen := m :: !seen) (c "1-0");
  let seen = List.sort compare !seen in
  Alcotest.(check (list int)) "minterms of 1-0" [ 0b001; 0b011 ] seen

let test_complement_lits () =
  let parts = Cube.complement_lits ~n:3 (c "10-") in
  check_int "two parts" 2 (List.length parts);
  (* Union of parts plus original = whole space, all disjoint from cube. *)
  let covered = Array.make 8 false in
  List.iter
    (fun p ->
      Cube.iter_minterms ~n:3 (fun m ->
          check "disjoint from cube" false (Cube.contains_minterm (c "10-") m);
          covered.(m) <- true)
        p)
    parts;
  Cube.iter_minterms ~n:3 (fun m -> covered.(m) <- true) (c "10-");
  Array.iteri (fun m v -> check (Printf.sprintf "minterm %d covered" m) true v) covered

let gen_cube n =
  QCheck.Gen.(
    list_repeat n (oneofl [ Cube.Zero; Cube.One; Cube.Free ])
    |> map (fun lits -> Cube.make ~n lits))

let arb_cube n =
  QCheck.make ~print:(Cube.to_string ~n) (gen_cube n)

let prop_subsume_semantics =
  QCheck.Test.make ~name:"subsumes agrees with minterm containment" ~count:300
    QCheck.(pair (arb_cube 6) (arb_cube 6))
    (fun (a, b) ->
      let sub = Cube.subsumes a b in
      let sem = ref true in
      Cube.iter_minterms ~n:6 (fun m ->
          if not (Cube.contains_minterm a m) then sem := false)
        b;
      sub = !sem)

let prop_intersect_semantics =
  QCheck.Test.make ~name:"intersect = minterm set intersection" ~count:300
    QCheck.(pair (arb_cube 6) (arb_cube 6))
    (fun (a, b) ->
      let expected m = Cube.contains_minterm a m && Cube.contains_minterm b m in
      match Cube.intersect a b with
      | None ->
          let any = ref false in
          for m = 0 to 63 do
            if expected m then any := true
          done;
          not !any
      | Some x ->
          let ok = ref true in
          for m = 0 to 63 do
            if Cube.contains_minterm x m <> expected m then ok := false
          done;
          !ok)

let prop_supercube_contains =
  QCheck.Test.make ~name:"supercube contains both operands" ~count:300
    QCheck.(pair (arb_cube 6) (arb_cube 6))
    (fun (a, b) ->
      let s = Cube.supercube a b in
      Cube.subsumes s a && Cube.subsumes s b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"cube string roundtrip" ~count:300 (arb_cube 8)
    (fun cb -> Cube.equal cb (Cube.of_string (Cube.to_string ~n:8 cb)))

let prop_minterm_count =
  QCheck.Test.make ~name:"minterm_count matches enumeration" ~count:300
    (arb_cube 7) (fun cb ->
      let cnt = ref 0 in
      Cube.iter_minterms ~n:7 (fun _ -> incr cnt) cb;
      !cnt = Cube.minterm_count ~n:7 cb)

let suite =
  ( "cube",
    [
      Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
      Alcotest.test_case "of_minterm" `Quick test_of_minterm;
      Alcotest.test_case "get/set" `Quick test_get_set;
      Alcotest.test_case "contains_minterm" `Quick test_contains_minterm;
      Alcotest.test_case "subsumes" `Quick test_subsumes;
      Alcotest.test_case "intersect" `Quick test_intersect;
      Alcotest.test_case "distance" `Quick test_distance;
      Alcotest.test_case "supercube" `Quick test_supercube;
      Alcotest.test_case "cofactor" `Quick test_cofactor;
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "iter_minterms" `Quick test_iter_minterms;
      Alcotest.test_case "complement_lits partitions" `Quick
        test_complement_lits;
      QCheck_alcotest.to_alcotest prop_subsume_semantics;
      QCheck_alcotest.to_alcotest prop_intersect_semantics;
      QCheck_alcotest.to_alcotest prop_supercube_contains;
      QCheck_alcotest.to_alcotest prop_string_roundtrip;
      QCheck_alcotest.to_alcotest prop_minterm_count;
    ] )

(* Additional algebraic properties. *)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance is symmetric" ~count:300
    QCheck.(pair (arb_cube 6) (arb_cube 6))
    (fun (a, b) -> Cube.distance ~n:6 a b = Cube.distance ~n:6 b a)

let prop_supercube_minimal =
  QCheck.Test.make ~name:"supercube is the least upper bound" ~count:300
    QCheck.(triple (arb_cube 5) (arb_cube 5) (arb_cube 5))
    (fun (a, b, c) ->
      (* any cube containing both a and b contains their supercube *)
      if Cube.subsumes c a && Cube.subsumes c b then
        Cube.subsumes c (Cube.supercube a b)
      else true)

let prop_set_get =
  QCheck.Test.make ~name:"set then get" ~count:300
    QCheck.(triple (arb_cube 6) (int_bound 5) (int_bound 2))
    (fun (cb, j, li) ->
      let lit = match li with 0 -> Cube.Zero | 1 -> Cube.One | _ -> Cube.Free in
      Cube.get (Cube.set cb j lit) j = lit)

let prop_cofactor_full_is_identity =
  QCheck.Test.make ~name:"cofactor by full cube is identity" ~count:300
    (arb_cube 6) (fun cb ->
      match Cube.cofactor ~n:6 cb (Cube.full ~n:6) with
      | Some r -> Cube.equal r cb
      | None -> false)

let extra_cases =
  [
    QCheck_alcotest.to_alcotest prop_distance_symmetric;
    QCheck_alcotest.to_alcotest prop_supercube_minimal;
    QCheck_alcotest.to_alcotest prop_set_get;
    QCheck_alcotest.to_alcotest prop_cofactor_full_is_identity;
  ]

let suite = (fst suite, snd suite @ extra_cases)
