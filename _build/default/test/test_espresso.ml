(* Tests for the espresso-style minimiser: correctness invariants on
   random incompletely specified functions, plus canonical examples. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover
module Bv = Bitvec.Bv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cov n strs = Cover.make ~n (List.map Cube.of_string strs)

(* Build an on/dc pair from two disjoint minterm lists. *)
let spec_of_minterms n on_l dc_l =
  let mk l = Cover.make ~n (List.map (Cube.of_minterm ~n) l) in
  (mk on_l, mk dc_l)

let valid_minimization ~n ~on ~dc result =
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let in_on = Cover.eval on m and in_dc = Cover.eval dc m in
    let out = Cover.eval result m in
    if in_on && not out then ok := false;
    (* off-set minterm must not be covered *)
    if (not in_on) && (not in_dc) && out then ok := false
  done;
  !ok

let test_constant_one () =
  let on, dc = spec_of_minterms 3 [ 0; 1; 2; 3; 4; 5; 6; 7 ] [] in
  let r = Espresso.minimize_cover ~on ~dc in
  check_int "single cube" 1 (Cover.size r);
  check "tautology" true (Cover.is_tautology r)

let test_constant_zero () =
  let on, dc = spec_of_minterms 3 [] [ 1; 2 ] in
  let r = Espresso.minimize_cover ~on ~dc in
  check_int "empty" 0 (Cover.size r)

let test_xor_two_cubes () =
  (* XOR of 2 variables needs exactly 2 cubes. *)
  let on, dc = spec_of_minterms 2 [ 1; 2 ] [] in
  let r = Espresso.minimize_cover ~on ~dc in
  check_int "xor cubes" 2 (Cover.size r);
  check "valid" true (valid_minimization ~n:2 ~on ~dc r)

let test_dc_merging () =
  (* on = {00-,11-}? Classic: f on {0,3}, dc {1,2} over 2 vars: with DCs
     assignable, a single full cube covers everything. *)
  let on, dc = spec_of_minterms 2 [ 0; 3 ] [ 1; 2 ] in
  let r = Espresso.minimize_cover ~on ~dc in
  check_int "collapses to one cube" 1 (Cover.size r);
  check "valid" true (valid_minimization ~n:2 ~on ~dc r)

let test_dc_not_required () =
  (* DCs must only be used when they help: off-set must stay uncovered. *)
  let on, dc = spec_of_minterms 3 [ 0; 1 ] [ 7 ] in
  let r = Espresso.minimize_cover ~on ~dc in
  check "valid" true (valid_minimization ~n:3 ~on ~dc r);
  check_int "one cube 00-" 1 (Cover.size r)

let test_classic_example () =
  (* f = x0'x1' + x0 x1 over 3 vars with x2 free, from minterms. *)
  let on = cov 3 [ "00-"; "11-" ] in
  let dc = Cover.empty ~n:3 in
  let r = Espresso.minimize_cover ~on ~dc in
  check_int "already minimal" 2 (Cover.size r);
  check "same function" true (Cover.equivalent r on)

let test_expand_produces_primes () =
  let on, dc = spec_of_minterms 3 [ 0; 1; 2; 3 ] [] in
  (* on = x2' as minterms; off = x2 *)
  let off = Cover.complement (Cover.union on dc) in
  let e = Espresso.Expand.run ~on ~off in
  check_int "one prime" 1 (Cover.size e);
  check "is 0 on x2 side" true (Cover.equivalent e (cov 3 [ "--0" ]))

let test_irredundant_removes () =
  let on = cov 3 [ "1--"; "11-"; "-1-" ] in
  let r = Espresso.Irredundant.run ~on ~dc:(Cover.empty ~n:3) in
  check_int "redundant middle cube dropped" 2 (Cover.size r);
  check "function preserved" true (Cover.equivalent r on)

let test_essential_extraction () =
  (* x0' x1' is essential for covering minterm 00; over 2 vars with
     cover {0-, -1}: minterm 0 only in 0-, minterm 3 only in -1. *)
  let on = cov 2 [ "0-"; "-1" ] in
  let ess, rest = Espresso.Essential.extract ~on ~dc:(Cover.empty ~n:2) in
  check_int "both essential" 2 (Cover.size ess);
  check_int "none left" 0 (Cover.size rest)

let test_reduce_shrinks () =
  (* Overlapping cubes: reduce must keep overall coverage with dc. *)
  let on = cov 3 [ "1--"; "-1-" ] in
  let r = Espresso.Reduce.run ~on ~dc:(Cover.empty ~n:3) in
  check "coverage preserved" true (Cover.equivalent (Cover.make ~n:3 (Cover.cubes r)) on)

let test_cost () =
  let c = cov 3 [ "1--"; "011" ] in
  Alcotest.(check (pair int int)) "cost" (2, 4) (Espresso.cost c)

(* Random specifications: partition the 2^n space into on/off/dc with a
   three-sided coin, minimise, and check the functional invariants. *)
let gen_spec n =
  QCheck.Gen.(
    list_repeat (1 lsl n) (int_bound 2)
    |> map (fun phases ->
           let on = ref [] and dc = ref [] in
           List.iteri
             (fun m p ->
               if p = 1 then on := m :: !on else if p = 2 then dc := m :: !dc)
             phases;
           (!on, !dc)))

let arb_spec n =
  QCheck.make
    ~print:(fun (on, dc) ->
      Printf.sprintf "on=%s dc=%s"
        (String.concat "," (List.map string_of_int on))
        (String.concat "," (List.map string_of_int dc)))
    (gen_spec n)

let prop_minimize_valid =
  QCheck.Test.make ~name:"minimize respects on/off sets" ~count:120
    (arb_spec 5) (fun (on_l, dc_l) ->
      let on, dc = spec_of_minterms 5 on_l dc_l in
      let r = Espresso.minimize_cover ~on ~dc in
      valid_minimization ~n:5 ~on ~dc r)

let prop_minimize_no_worse =
  QCheck.Test.make ~name:"minimize never beats the on-set lower bound"
    ~count:80 (arb_spec 4) (fun (on_l, dc_l) ->
      let on, dc = spec_of_minterms 4 on_l dc_l in
      let r = Espresso.minimize_cover ~on ~dc in
      (* trivially, cube count cannot exceed the number of on minterms,
         and must be >= 1 when the on-set is non-empty *)
      (on_l = [] && Cover.size r = 0)
      || (Cover.size r >= 1 && Cover.size r <= List.length on_l))

let prop_expand_valid =
  QCheck.Test.make ~name:"expand output disjoint from off, covers on"
    ~count:80 (arb_spec 4) (fun (on_l, dc_l) ->
      QCheck.assume (on_l <> []);
      let on, dc = spec_of_minterms 4 on_l dc_l in
      let off = Cover.complement (Cover.union on dc) in
      let e = Espresso.Expand.run ~on ~off in
      valid_minimization ~n:4 ~on ~dc e)

let prop_irredundant_valid =
  QCheck.Test.make ~name:"irredundant preserves coverage wrt dc" ~count:80
    (arb_spec 4) (fun (on_l, dc_l) ->
      let on, dc = spec_of_minterms 4 on_l dc_l in
      let r = Espresso.Irredundant.run ~on ~dc in
      (* every on minterm still covered by result + dc *)
      let ok = ref true in
      List.iter
        (fun m -> if not (Cover.eval r m || Cover.eval dc m) then ok := false)
        on_l;
      !ok)

let suite =
  ( "espresso",
    [
      Alcotest.test_case "constant one" `Quick test_constant_one;
      Alcotest.test_case "constant zero" `Quick test_constant_zero;
      Alcotest.test_case "xor needs two cubes" `Quick test_xor_two_cubes;
      Alcotest.test_case "dc merging" `Quick test_dc_merging;
      Alcotest.test_case "dc not forced into cover" `Quick test_dc_not_required;
      Alcotest.test_case "classic two-cube function" `Quick test_classic_example;
      Alcotest.test_case "expand produces primes" `Quick
        test_expand_produces_primes;
      Alcotest.test_case "irredundant removes covered cube" `Quick
        test_irredundant_removes;
      Alcotest.test_case "essential extraction" `Quick test_essential_extraction;
      Alcotest.test_case "reduce keeps coverage" `Quick test_reduce_shrinks;
      Alcotest.test_case "cost pair" `Quick test_cost;
      QCheck_alcotest.to_alcotest prop_minimize_valid;
      QCheck_alcotest.to_alcotest prop_minimize_no_worse;
      QCheck_alcotest.to_alcotest prop_expand_valid;
      QCheck_alcotest.to_alcotest prop_irredundant_valid;
    ] )

(* Dense espresso: validity and agreement with the cover-algebra
   implementation. *)

let bv_of_minterms n l =
  let bv = Bv.create (1 lsl n) in
  List.iter (Bv.set bv) l;
  bv

let prop_dense_valid =
  QCheck.Test.make ~name:"dense minimize respects on/off sets" ~count:150
    (arb_spec 5) (fun (on_l, dc_l) ->
      let on = bv_of_minterms 5 on_l and dc = bv_of_minterms 5 dc_l in
      let r = Espresso.Dense.minimize ~n:5 ~on ~dc in
      let ok = ref true in
      for m = 0 to 31 do
        let out = Cover.eval r m in
        if Bv.get on m && not out then ok := false;
        if (not (Bv.get on m)) && (not (Bv.get dc m)) && out then ok := false
      done;
      !ok)

let prop_dense_matches_cover_quality =
  QCheck.Test.make ~name:"dense cost within 2x of cover espresso" ~count:60
    (arb_spec 5) (fun (on_l, dc_l) ->
      QCheck.assume (on_l <> []);
      let on_c, dc_c = spec_of_minterms 5 on_l dc_l in
      let r_cover = Espresso.minimize_cover ~on:on_c ~dc:dc_c in
      let on = bv_of_minterms 5 on_l and dc = bv_of_minterms 5 dc_l in
      let r_dense = Espresso.Dense.minimize ~n:5 ~on ~dc in
      (* Both are heuristics; sizes should be close.  Allow slack but
         catch gross regressions. *)
      Cover.size r_dense <= (2 * Cover.size r_cover) + 1)

let test_dense_full_space () =
  let on = bv_of_minterms 3 [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let dc = bv_of_minterms 3 [] in
  let r = Espresso.Dense.minimize ~n:3 ~on ~dc in
  check_int "single full cube" 1 (Cover.size r)

let test_dense_with_dc () =
  let on = bv_of_minterms 2 [ 0; 3 ] in
  let dc = bv_of_minterms 2 [ 1; 2 ] in
  let r = Espresso.Dense.minimize ~n:2 ~on ~dc in
  check_int "collapses via dc" 1 (Cover.size r)

let test_dense_overlap_rejected () =
  let on = bv_of_minterms 2 [ 0 ] in
  let dc = bv_of_minterms 2 [ 0 ] in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Dense.minimize: on and dc overlap") (fun () ->
      ignore (Espresso.Dense.minimize ~n:2 ~on ~dc))

let test_dense_large_smoke () =
  (* 10-input random function: must terminate quickly and be valid. *)
  let rng = Random.State.make [| 42 |] in
  let on = Bv.create 1024 and dc = Bv.create 1024 in
  for m = 0 to 1023 do
    match Random.State.int rng 3 with
    | 0 -> ()
    | 1 -> Bv.set on m
    | _ -> Bv.set dc m
  done;
  let r = Espresso.Dense.minimize ~n:10 ~on ~dc in
  let ok = ref true in
  for m = 0 to 1023 do
    let out = Cover.eval r m in
    if Bv.get on m && not out then ok := false;
    if (not (Bv.get on m)) && (not (Bv.get dc m)) && out then ok := false
  done;
  check "valid on 10 inputs" true !ok;
  check "nontrivial compression" true (Cover.size r < Bv.cardinal on)

let dense_cases =
  [
    Alcotest.test_case "dense: full space" `Quick test_dense_full_space;
    Alcotest.test_case "dense: dc merging" `Quick test_dense_with_dc;
    Alcotest.test_case "dense: overlap rejected" `Quick
      test_dense_overlap_rejected;
    Alcotest.test_case "dense: 10-input smoke" `Quick test_dense_large_smoke;
    QCheck_alcotest.to_alcotest prop_dense_valid;
    QCheck_alcotest.to_alcotest prop_dense_matches_cover_quality;
  ]

let suite = (fst suite, snd suite @ dense_cases)

(* Exact Quine-McCluskey as oracle for the heuristics. *)

let test_qm_primes_of_and () =
  (* f = x0 & x1 over 2 vars: only prime is 11. *)
  let on = bv_of_minterms 2 [ 3 ] and dc = bv_of_minterms 2 [] in
  let p = Espresso.Qm.primes ~n:2 ~on ~dc in
  check_int "one prime" 1 (Cover.size p);
  check "is the minterm" true
    (Cube.equal (List.hd (Cover.cubes p)) (Cube.of_string "11"))

let test_qm_primes_with_merging () =
  (* f = x2' over 3 vars as minterms: single prime --0. *)
  let on = bv_of_minterms 3 [ 0; 1; 2; 3 ] and dc = bv_of_minterms 3 [] in
  let p = Espresso.Qm.primes ~n:3 ~on ~dc in
  check_int "one prime" 1 (Cover.size p);
  check "is --0" true (Cube.equal (List.hd (Cover.cubes p)) (Cube.of_string "--0"))

let test_qm_classic_primes () =
  (* The classic f = Σm(0,1,2,5,6,7) over 3 vars has 6 primes... the
     textbook example: primes are x0'x1', x0'x2', x1x2', x0x2, x1'x2,
     x0x1.  Wait — check count only. *)
  let on = bv_of_minterms 3 [ 0; 1; 2; 5; 6; 7 ] and dc = bv_of_minterms 3 [] in
  let p = Espresso.Qm.primes ~n:3 ~on ~dc in
  check_int "six primes" 6 (Cover.size p);
  (* exact minimum is 3 cubes *)
  let r = Espresso.Qm.minimize ~n:3 ~on ~dc in
  check_int "minimum 3" 3 (Cover.size r)

let test_qm_min_xor3 () =
  (* 3-input parity needs 4 cubes exactly. *)
  let on =
    bv_of_minterms 3
      (List.filter (fun m -> Bitvec.Minterm.popcount m mod 2 = 1)
         [ 0; 1; 2; 3; 4; 5; 6; 7 ])
  in
  let r = Espresso.Qm.minimize ~n:3 ~on ~dc:(bv_of_minterms 3 []) in
  check_int "parity cubes" 4 (Cover.size r)

let test_qm_uses_dc () =
  let on = bv_of_minterms 2 [ 0; 3 ] and dc = bv_of_minterms 2 [ 1; 2 ] in
  let r = Espresso.Qm.minimize ~n:2 ~on ~dc in
  check_int "single cube with dc" 1 (Cover.size r)

let prop_qm_valid =
  QCheck.Test.make ~name:"qm minimize respects on/off sets" ~count:100
    (arb_spec 4) (fun (on_l, dc_l) ->
      let on = bv_of_minterms 4 on_l and dc = bv_of_minterms 4 dc_l in
      let r = Espresso.Qm.minimize ~n:4 ~on ~dc in
      let ok = ref true in
      for m = 0 to 15 do
        let out = Cover.eval r m in
        if Bv.get on m && not out then ok := false;
        if (not (Bv.get on m)) && (not (Bv.get dc m)) && out then ok := false
      done;
      !ok)

let prop_heuristic_never_beats_exact =
  QCheck.Test.make ~name:"dense espresso never beats the exact minimum"
    ~count:100 (arb_spec 4) (fun (on_l, dc_l) ->
      let on = bv_of_minterms 4 on_l and dc = bv_of_minterms 4 dc_l in
      let exact = Espresso.Qm.minimize ~n:4 ~on ~dc in
      let heur = Espresso.Dense.minimize ~n:4 ~on ~dc in
      Cover.size heur >= Cover.size exact)

let prop_heuristic_close_to_exact =
  QCheck.Test.make ~name:"dense espresso within 1.5x of exact + 1" ~count:100
    (arb_spec 4) (fun (on_l, dc_l) ->
      let on = bv_of_minterms 4 on_l and dc = bv_of_minterms 4 dc_l in
      let exact = Espresso.Qm.minimize ~n:4 ~on ~dc in
      let heur = Espresso.Dense.minimize ~n:4 ~on ~dc in
      float_of_int (Cover.size heur)
      <= (1.5 *. float_of_int (Cover.size exact)) +. 1.0)

let prop_primes_are_prime =
  QCheck.Test.make ~name:"every QM prime is maximal" ~count:60 (arb_spec 4)
    (fun (on_l, dc_l) ->
      let on = bv_of_minterms 4 on_l and dc = bv_of_minterms 4 dc_l in
      QCheck.assume (on_l <> [] || dc_l <> []);
      let care = Bv.union on dc in
      let ps = Espresso.Qm.primes ~n:4 ~on ~dc in
      List.for_all
        (fun c ->
          (* contained in care ... *)
          let inside = ref true in
          Cube.iter_minterms ~n:4
            (fun m -> if not (Bv.get care m) then inside := false)
            c;
          (* ... and no single-literal raise stays inside *)
          let maximal = ref true in
          for j = 0 to 3 do
            if Cube.get c j <> Cube.Free then begin
              let c' = Cube.set c j Cube.Free in
              let fits = ref true in
              Cube.iter_minterms ~n:4
                (fun m -> if not (Bv.get care m) then fits := false)
                c';
              if !fits then maximal := false
            end
          done;
          !inside && !maximal)
        (Cover.cubes ps))

let qm_cases =
  [
    Alcotest.test_case "qm: primes of and2" `Quick test_qm_primes_of_and;
    Alcotest.test_case "qm: merging to one prime" `Quick
      test_qm_primes_with_merging;
    Alcotest.test_case "qm: classic 6-prime example" `Quick
      test_qm_classic_primes;
    Alcotest.test_case "qm: parity minimum" `Quick test_qm_min_xor3;
    Alcotest.test_case "qm: exploits dc" `Quick test_qm_uses_dc;
    QCheck_alcotest.to_alcotest prop_qm_valid;
    QCheck_alcotest.to_alcotest prop_heuristic_never_beats_exact;
    QCheck_alcotest.to_alcotest prop_heuristic_close_to_exact;
    QCheck_alcotest.to_alcotest prop_primes_are_prime;
  ]

let suite = (fst suite, snd suite @ qm_cases)

(* Multi-output espresso: validity, sharing, agreement. *)

let multi_valid ~n ~ons ~dcs cubes =
  let no = Array.length ons in
  let ok = ref true in
  for o = 0 to no - 1 do
    for m = 0 to (1 lsl n) - 1 do
      let v = Espresso.Multi.eval ~n cubes ~o ~m in
      if Bv.get ons.(o) m && not v then ok := false;
      if (not (Bv.get ons.(o) m)) && (not (Bv.get dcs.(o) m)) && v then
        ok := false
    done
  done;
  !ok

let test_multi_shares_identical_outputs () =
  (* Two identical outputs must share every cube: cube count equals the
     single-output cover size. *)
  let on = bv_of_minterms 4 [ 3; 7; 11; 15; 1 ] in
  let dc = bv_of_minterms 4 [] in
  let single = Espresso.Dense.minimize ~n:4 ~on ~dc in
  let cubes =
    Espresso.Multi.minimize ~n:4 ~ons:[| Bv.copy on; Bv.copy on |]
      ~dcs:[| Bv.copy dc; Bv.copy dc |]
  in
  check "valid" true
    (multi_valid ~n:4 ~ons:[| on; on |] ~dcs:[| dc; dc |] cubes);
  check "no duplication" true (List.length cubes <= Cover.size single);
  List.iter
    (fun c -> check_int "both outputs" 0b11 c.Espresso.Multi.outputs)
    cubes

let test_multi_disjoint_outputs () =
  let on0 = bv_of_minterms 3 [ 1; 3 ] and on1 = bv_of_minterms 3 [ 4; 6 ] in
  let dc = bv_of_minterms 3 [] in
  let cubes =
    Espresso.Multi.minimize ~n:3 ~ons:[| on0; on1 |]
      ~dcs:[| Bv.copy dc; Bv.copy dc |]
  in
  check "valid" true
    (multi_valid ~n:3 ~ons:[| on0; on1 |] ~dcs:[| dc; dc |] cubes)

let test_multi_output_raise_shares () =
  (* o0 = x0&x1 on-set; o1 has the same minterms as DC: expansion may
     raise the output part, sharing the term; validity must hold. *)
  let on0 = bv_of_minterms 2 [ 3 ] and on1 = bv_of_minterms 2 [] in
  let dc0 = bv_of_minterms 2 [] and dc1 = bv_of_minterms 2 [ 3 ] in
  let cubes =
    Espresso.Multi.minimize ~n:2 ~ons:[| on0; on1 |] ~dcs:[| dc0; dc1 |]
  in
  check "valid" true (multi_valid ~n:2 ~ons:[| on0; on1 |] ~dcs:[| dc0; dc1 |] cubes)

let gen_multi_spec n no =
  QCheck.Gen.(
    list_repeat (no * (1 lsl n)) (int_bound 2)
    |> map (fun phases ->
           let ons = Array.init no (fun _ -> Bv.create (1 lsl n)) in
           let dcs = Array.init no (fun _ -> Bv.create (1 lsl n)) in
           List.iteri
             (fun i p ->
               let o = i / (1 lsl n) and m = i mod (1 lsl n) in
               if p = 1 then Bv.set ons.(o) m
               else if p = 2 then Bv.set dcs.(o) m)
             phases;
           (ons, dcs)))

let prop_multi_valid =
  QCheck.Test.make ~name:"multi minimize respects all on/off sets" ~count:80
    (QCheck.make (gen_multi_spec 4 3))
    (fun (ons, dcs) ->
      let cubes = Espresso.Multi.minimize ~n:4 ~ons ~dcs in
      multi_valid ~n:4 ~ons ~dcs cubes)

let prop_multi_no_worse_than_sum =
  QCheck.Test.make
    ~name:"multi cube count <= sum of single-output counts (+slack)"
    ~count:50
    (QCheck.make (gen_multi_spec 4 3))
    (fun (ons, dcs) ->
      let cubes = Espresso.Multi.minimize ~n:4 ~ons ~dcs in
      let singles =
        Array.to_list
          (Array.mapi
             (fun o on ->
               Cover.size (Espresso.Dense.minimize ~n:4 ~on ~dc:dcs.(o)))
             ons)
      in
      List.length cubes <= List.fold_left ( + ) 0 singles + 2)

let multi_cases =
  [
    Alcotest.test_case "multi: identical outputs share" `Quick
      test_multi_shares_identical_outputs;
    Alcotest.test_case "multi: disjoint outputs" `Quick
      test_multi_disjoint_outputs;
    Alcotest.test_case "multi: output raising" `Quick
      test_multi_output_raise_shares;
    QCheck_alcotest.to_alcotest prop_multi_valid;
    QCheck_alcotest.to_alcotest prop_multi_no_worse_than_sum;
  ]

let suite = (fst suite, snd suite @ multi_cases)
