(* Tests for algebraic factoring: division, kernels, QUICK_FACTOR. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover
module Factor = Twolevel.Factor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cov n strs = Cover.make ~n (List.map Cube.of_string strs)

let semantically_equal n cover expr =
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    if Cover.eval cover m <> Factor.eval expr m then ok := false
  done;
  !ok

let test_of_cover_eval () =
  let f = cov 3 [ "1-0"; "-11" ] in
  check "flat expr equals cover" true (semantically_equal 3 f (Factor.of_cover f));
  check "empty is false" true (Factor.of_cover (Cover.empty ~n:2) = Factor.Const false)

let test_divide_by_literal () =
  (* F = a b + a c + d  divided by a: Q = b + c, R = d
     (vars: a=x0, b=x1, c=x2, d=x3) *)
  let f = cov 4 [ "11--"; "1-1-"; "---1" ] in
  let by = Cube.set (Cube.full ~n:4) 0 Cube.One in
  let q, r = Factor.divide ~by f in
  check_int "quotient cubes" 2 (Cover.size q);
  check_int "remainder cubes" 1 (Cover.size r);
  check "q contains b" true
    (List.exists (fun c -> Cube.equal c (Cube.of_string "-1--")) (Cover.cubes q));
  check "q contains c" true
    (List.exists (fun c -> Cube.equal c (Cube.of_string "--1-")) (Cover.cubes q))

let test_divide_by_cube () =
  (* F = a b c + a b d  divided by ab: Q = c + d *)
  let f = cov 4 [ "111-"; "11-1" ] in
  let by = Cube.of_string "11--" in
  let q, r = Factor.divide ~by f in
  check_int "q size" 2 (Cover.size q);
  check_int "r empty" 0 (Cover.size r)

let test_best_literal () =
  let f = cov 3 [ "1--"; "1-1"; "-10" ] in
  Alcotest.(check (option (pair int bool)))
    "x0 positive occurs twice" (Some (0, false)) (Factor.best_literal f);
  check "no repeated literal" true
    (Factor.best_literal (cov 2 [ "1-"; "-1" ]) = None)

let test_factor_textbook () =
  (* F = a b + a c = a (b + c): 3 literals factored vs 4 flat. *)
  let f = cov 3 [ "11-"; "1-1" ] in
  let e = Factor.factor f in
  check "equivalent" true (semantically_equal 3 f e);
  check_int "3 literals" 3 (Factor.literal_count e);
  check_int "flat has 4" 4 (Factor.literal_count (Factor.of_cover f))

let test_factor_bigger () =
  (* F = ad + bd + cd + e -> d(a+b+c) + e : 5 literals vs 7. *)
  let f = cov 5 [ "1--1-"; "-1-1-"; "--11-"; "----1" ] in
  let e = Factor.factor f in
  check "equivalent" true (semantically_equal 5 f e);
  check_int "5 literals" 5 (Factor.literal_count e)

let test_kernels_textbook () =
  (* F = ace + bce + de + g (SIS example): kernels include (a+b)
     with co-kernel ce, (ace+bce+de) / e = ac+bc+d with co-kernel e,
     and F itself (cube-free). *)
  (* vars: a=0 b=1 c=2 d=3 e=4 g=5 *)
  let f = cov 6 [ "1-1-1-"; "-11-1-"; "---11-"; "-----1" ] in
  let ks = Factor.kernels f in
  check "has a+b kernel" true
    (List.exists
       (fun (_, k) ->
         Cover.size k = 2
         && Cover.equivalent k (cov 6 [ "1-----"; "-1----" ]))
       ks);
  check "has ac+bc+d kernel" true
    (List.exists
       (fun (_, k) ->
         Cover.size k = 3
         && Cover.equivalent k (cov 6 [ "1-1---"; "-11---"; "---1--" ]))
       ks);
  check "F itself is a kernel" true
    (List.exists (fun (ck, k) ->
         Cube.free_count ~n:6 ck = 6 && Cover.size k = 4)
       ks)

let test_kernel_property () =
  (* every kernel is cube-free and co-kernel * kernel ⊆ F algebraically *)
  let f = cov 5 [ "11---"; "1-1--"; "-11-1"; "---1-"; "1---1" ] in
  let ks = Factor.kernels f in
  check "at least one kernel" true (ks <> []);
  List.iter
    (fun (ck, k) ->
      (* cube-freeness: no literal common to all kernel cubes *)
      match Cover.cubes k with
      | [] -> Alcotest.fail "empty kernel"
      | c :: rest ->
          let sup = List.fold_left Cube.supercube c rest in
          check "kernel cube-free" true (Cube.free_count ~n:5 sup = 5);
          (* each co-kernel*kernel-cube is a cube of F *)
          List.iter
            (fun kc ->
              match Cube.intersect ck kc with
              | None -> Alcotest.fail "cokernel incompatible with kernel cube"
              | Some prod ->
                  check "product is a cube of F" true
                    (List.exists (Cube.equal prod) (Cover.cubes f)))
            (Cover.cubes k))
    ks

let test_aig_of_factored () =
  let f = cov 4 [ "11--"; "1-1-"; "1--1" ] in
  let e = Factor.factor f in
  let flat = Aig.of_covers ~ni:4 [ f ] in
  let fac = Aig.of_factored ~ni:4 [ e ] in
  for m = 0 to 15 do
    check
      (Printf.sprintf "m=%d" m)
      true
      (Aig.eval_minterm flat m = Aig.eval_minterm fac m)
  done;
  check "factored not larger" true (Aig.num_ands fac <= Aig.num_ands flat)

let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (frequencyl [ (2, Cube.Zero); (2, Cube.One); (3, Cube.Free) ])
      |> map (Cube.make ~n)
    in
    list_size (int_range 0 8) gen_cube |> map (fun cs -> Cover.make ~n cs))

let arb_cover n =
  QCheck.make ~print:(fun cv -> Format.asprintf "%a" Cover.pp cv) (gen_cover n)

let prop_factor_equivalent =
  QCheck.Test.make ~name:"factor preserves the function" ~count:200
    (arb_cover 5) (fun f ->
      semantically_equal 5 f (Factor.factor f))

let prop_factor_never_more_literals =
  QCheck.Test.make ~name:"factored literals <= flat literals" ~count:200
    (arb_cover 5) (fun f ->
      Factor.literal_count (Factor.factor f)
      <= Factor.literal_count (Factor.of_cover f))

let prop_divide_reconstructs =
  QCheck.Test.make ~name:"F = by*Q + R semantically when dividing"
    ~count:200
    QCheck.(pair (arb_cover 5) (int_bound 9))
    (fun (f, litid) ->
      let var = litid / 2 and neg = litid land 1 = 1 in
      let by =
        Cube.set (Cube.full ~n:5) var (if neg then Cube.Zero else Cube.One)
      in
      let q, r = Factor.divide ~by f in
      let reconstructed =
        Cover.union
          (Cover.make ~n:5
             (List.filter_map (fun c -> Cube.intersect by c) (Cover.cubes q)))
          r
      in
      Cover.equivalent f reconstructed)

let suite =
  ( "factor",
    [
      Alcotest.test_case "of_cover eval" `Quick test_of_cover_eval;
      Alcotest.test_case "divide by literal" `Quick test_divide_by_literal;
      Alcotest.test_case "divide by cube" `Quick test_divide_by_cube;
      Alcotest.test_case "best literal" `Quick test_best_literal;
      Alcotest.test_case "factor textbook" `Quick test_factor_textbook;
      Alcotest.test_case "factor bigger" `Quick test_factor_bigger;
      Alcotest.test_case "kernels textbook" `Quick test_kernels_textbook;
      Alcotest.test_case "kernel properties" `Quick test_kernel_property;
      Alcotest.test_case "aig of factored" `Quick test_aig_of_factored;
      QCheck_alcotest.to_alcotest prop_factor_equivalent;
      QCheck_alcotest.to_alcotest prop_factor_never_more_literals;
      QCheck_alcotest.to_alcotest prop_divide_reconstructs;
    ] )
