(* Tests for BLIF and Verilog emission, including semantic BLIF
   roundtrips. *)

module Blif = Netlist_io.Blif
module Verilog = Netlist_io.Verilog
module Cover = Twolevel.Cover
module Cube = Twolevel.Cube

let check = Alcotest.(check bool)

let sample_netlist () =
  let nl = Netlist.create ~ni:3 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  let x = Netlist.add nl Netlist.Gate.Xor [| a; 2 |] in
  let n = Netlist.add nl Netlist.Gate.Not [| x |] in
  Netlist.set_outputs nl [| x; n |];
  nl

let test_blif_netlist_roundtrip () =
  let nl = sample_netlist () in
  let text = Blif.of_netlist nl in
  let nl' = Blif.parse_string text in
  for m = 0 to 7 do
    check
      (Printf.sprintf "m=%d" m)
      true
      (Netlist.eval_minterm nl m = Netlist.eval_minterm nl' m)
  done

let test_blif_aig_roundtrip () =
  let cover =
    Cover.make ~n:4 (List.map Cube.of_string [ "11--"; "--00"; "1--1" ])
  in
  let aig = Aig.of_covers ~ni:4 [ cover ] in
  let nl' = Blif.parse_string (Blif.of_aig aig) in
  for m = 0 to 15 do
    check
      (Printf.sprintf "aig m=%d" m)
      true
      (Aig.eval_minterm aig m = Netlist.eval_minterm nl' m)
  done

let test_blif_mapped_roundtrip () =
  let cover =
    Cover.make ~n:4 (List.map Cube.of_string [ "1-0-"; "-11-"; "0--1" ])
  in
  let aig = Aig.of_covers ~ni:4 [ cover ] in
  let lib = Techmap.Stdcell.default_library () in
  let nl = Techmap.Mapper.map ~mode:Techmap.Mapper.Delay ~lib aig in
  let nl' = Blif.parse_string (Blif.of_netlist nl) in
  for m = 0 to 15 do
    check
      (Printf.sprintf "mapped m=%d" m)
      true
      (Netlist.eval_minterm nl m = Netlist.eval_minterm nl' m)
  done

let test_blif_constants () =
  let nl = Netlist.create ~ni:1 in
  let c0 = Netlist.add nl (Netlist.Gate.Const false) [||] in
  let c1 = Netlist.add nl (Netlist.Gate.Const true) [||] in
  Netlist.set_outputs nl [| c0; c1; 0 |];
  let nl' = Blif.parse_string (Blif.of_netlist nl) in
  check "const roundtrip" true
    (Netlist.eval_minterm nl 0 = Netlist.eval_minterm nl' 0
    && Netlist.eval_minterm nl 1 = Netlist.eval_minterm nl' 1)

let test_blif_parse_errors () =
  let expect text =
    match Blif.parse_string text with
    | exception Blif.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect ".model m\n.inputs a\n.outputs z\n.names a missing z\n11 1\n.end\n";
  expect ".model m\n.inputs a\n.outputs z\n.latch a z\n.end\n";
  expect ".model m\n.inputs a\n.outputs z\n.names a z\n0 0\n.end\n"

let test_verilog_structure () =
  let nl = sample_netlist () in
  let v = Verilog.of_netlist ~name:"adder" nl in
  check "module header" true
    (String.length v > 0
    && String.sub v 0 13 = "module adder(");
  let contains needle haystack =
    let nl_ = String.length needle and hl = String.length haystack in
    let rec go i = i + nl_ <= hl && (String.sub haystack i nl_ = needle || go (i + 1)) in
    go 0
  in
  check "has assign" true (contains "assign" v);
  check "has endmodule" true (contains "endmodule" v);
  check "xor operator" true (contains "^" v)

let test_verilog_mapped_instances () =
  let cover = Cover.make ~n:3 (List.map Cube.of_string [ "11-"; "--1" ]) in
  let aig = Aig.of_covers ~ni:3 [ cover ] in
  let lib = Techmap.Stdcell.default_library () in
  let nl = Techmap.Mapper.map ~mode:Techmap.Mapper.Area ~lib aig in
  let v = Verilog.of_netlist nl in
  let contains needle haystack =
    let nl_ = String.length needle and hl = String.length haystack in
    let rec go i = i + nl_ <= hl && (String.sub haystack i nl_ = needle || go (i + 1)) in
    go 0
  in
  check "instantiates cells" true (contains ".Y(" v)

let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (frequencyl [ (2, Cube.Zero); (2, Cube.One); (3, Cube.Free) ])
      |> map (Cube.make ~n)
    in
    list_size (int_range 0 5) gen_cube |> map (fun cs -> Cover.make ~n cs))

let prop_blif_roundtrip =
  QCheck.Test.make ~name:"blif aig roundtrip preserves function" ~count:80
    (QCheck.make (gen_cover 5))
    (fun cover ->
      let aig = Aig.of_covers ~ni:5 [ cover ] in
      let nl = Blif.parse_string (Blif.of_aig aig) in
      let ok = ref true in
      for m = 0 to 31 do
        if Aig.eval_minterm aig m <> Netlist.eval_minterm nl m then ok := false
      done;
      !ok)

let suite =
  ( "io",
    [
      Alcotest.test_case "blif netlist roundtrip" `Quick
        test_blif_netlist_roundtrip;
      Alcotest.test_case "blif aig roundtrip" `Quick test_blif_aig_roundtrip;
      Alcotest.test_case "blif mapped roundtrip" `Quick
        test_blif_mapped_roundtrip;
      Alcotest.test_case "blif constants" `Quick test_blif_constants;
      Alcotest.test_case "blif parse errors" `Quick test_blif_parse_errors;
      Alcotest.test_case "verilog structure" `Quick test_verilog_structure;
      Alcotest.test_case "verilog mapped instances" `Quick
        test_verilog_mapped_instances;
      QCheck_alcotest.to_alcotest prop_blif_roundtrip;
    ] )
