(* Tests for truth tables and NPN machinery. *)

module Truth = Logic.Truth
module Npn = Logic.Npn

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_of_fun_eval () =
  let tt = Truth.of_fun 2 (fun idx -> idx = 3) in
  check_int "and2 table" 0b1000 tt;
  check "eval 3" true (Truth.eval tt 3);
  check "eval 1" false (Truth.eval tt 1)

let test_var () =
  check_int "x0 over 2" 0b1010 (Truth.var 2 0);
  check_int "x1 over 2" 0b1100 (Truth.var 2 1)

let test_connectives () =
  let x0 = Truth.var 2 0 and x1 = Truth.var 2 1 in
  check_int "and" 0b1000 (Truth.tand x0 x1);
  check_int "or" 0b1110 (Truth.tor x0 x1);
  check_int "xor" 0b0110 (Truth.txor x0 x1);
  check_int "not x0" 0b0101 (Truth.tnot 2 x0);
  check_int "ones" 0b1111 (Truth.ones 2)

let test_cofactor_depends () =
  let x0 = Truth.var 2 0 and x1 = Truth.var 2 1 in
  let f = Truth.tand x0 x1 in
  check_int "f|x0=1 = x1" x1 (Truth.cofactor 2 f ~i:0 ~value:true);
  check_int "f|x0=0 = 0" 0 (Truth.cofactor 2 f ~i:0 ~value:false);
  check "depends x0" true (Truth.depends_on 2 f 0);
  check "const doesn't depend" false (Truth.depends_on 2 (Truth.ones 2) 0);
  check_int "support of and2" 2 (Truth.support_size 2 f);
  check_int "support of x1" 1 (Truth.support_size 2 x1)

let test_permute () =
  (* f = x0 & !x1; swapping inputs gives !x0 & x1. *)
  let f = Truth.tand (Truth.var 2 0) (Truth.tnot 2 (Truth.var 2 1)) in
  let g = Truth.permute 2 f [| 1; 0 |] in
  let expected = Truth.tand (Truth.tnot 2 (Truth.var 2 0)) (Truth.var 2 1) in
  check_int "swapped" expected g;
  check_int "identity" f (Truth.permute 2 f [| 0; 1 |]);
  Alcotest.check_raises "bad perm"
    (Invalid_argument "Truth.permute: not a permutation") (fun () ->
      ignore (Truth.permute 2 f [| 0; 0 |]))

let test_negate_input () =
  let x0 = Truth.var 2 0 in
  check_int "negate x0" (Truth.tnot 2 x0) (Truth.negate_input 2 x0 0);
  check_int "negate other input unchanged" x0 (Truth.negate_input 2 x0 1)

let test_expand () =
  let x0 = Truth.var 1 0 in
  let e = Truth.expand 1 x0 ~extra:1 in
  check_int "expanded projection" (Truth.var 2 0) e

let test_to_string () =
  Alcotest.(check string) "and2" "0001" (Truth.to_string 2 0b1000)

let test_permutations () =
  check_int "3! perms" 6 (List.length (Npn.permutations 3));
  check_int "0! perms" 1 (List.length (Npn.permutations 0));
  let all = Npn.permutations 4 in
  check_int "4! perms" 24 (List.length all);
  check "all distinct" true
    (List.length (List.sort_uniq compare all) = 24)

let test_npn_canonical_classes () =
  (* AND2 and NOR2 are NPN-equivalent: nor(a,b) = and(!a,!b). *)
  let and2 = Truth.tand (Truth.var 2 0) (Truth.var 2 1) in
  let nor2 = Truth.tnot 2 (Truth.tor (Truth.var 2 0) (Truth.var 2 1)) in
  let c1, _ = Npn.canonical 2 and2 in
  let c2, _ = Npn.canonical 2 nor2 in
  check_int "same NPN class" c1 c2;
  (* XOR2 is in a different class from AND2. *)
  let xor2 = Truth.txor (Truth.var 2 0) (Truth.var 2 1) in
  let c3, _ = Npn.canonical 2 xor2 in
  check "different class" true (c1 <> c3)

let test_npn_transform_witness () =
  let and2 = Truth.tand (Truth.var 2 0) (Truth.var 2 1) in
  let canon, tr = Npn.canonical 2 and2 in
  check_int "witness applies" canon (Npn.apply 2 and2 tr)

let test_p_variants () =
  (* AND2 is symmetric: only one P-variant. *)
  let and2 = Truth.tand (Truth.var 2 0) (Truth.var 2 1) in
  check_int "symmetric" 1 (List.length (Npn.p_variants 2 and2));
  (* x0 & !x1 has two. *)
  let f = Truth.tand (Truth.var 2 0) (Truth.tnot 2 (Truth.var 2 1)) in
  check_int "asymmetric" 2 (List.length (Npn.p_variants 2 f))

let test_np_variants () =
  let and2 = Truth.tand (Truth.var 2 0) (Truth.var 2 1) in
  (* and / and-not (x2 ways) / nor: 4 distinct NP variants of AND2. *)
  check_int "np variants of and2" 4 (List.length (Npn.np_variants 2 and2))

let prop_npn_canonical_invariant =
  QCheck.Test.make ~name:"canonical is invariant under random transforms"
    ~count:200
    QCheck.(pair (int_bound 0xffff) (int_bound 23))
    (fun (tt, pidx) ->
      let perms = Array.of_list (Npn.permutations 4) in
      let tr =
        { Npn.perm = perms.(pidx); input_neg = tt land 0xf; output_neg = tt land 1 = 1 }
      in
      let tt = tt land Truth.mask 4 in
      let transformed = Npn.apply 4 tt tr in
      fst (Npn.canonical 4 tt) = fst (Npn.canonical 4 transformed))

let prop_permute_compose =
  QCheck.Test.make ~name:"permute by inverse undoes permute" ~count:200
    QCheck.(pair (int_bound 0xffff) (int_bound 23))
    (fun (tt, pidx) ->
      let tt = tt land Truth.mask 4 in
      let perms = Array.of_list (Npn.permutations 4) in
      let p = perms.(pidx) in
      let inv = Array.make 4 0 in
      Array.iteri (fun j pj -> inv.(pj) <- j) p;
      Truth.permute 4 (Truth.permute 4 tt p) inv = tt)

let prop_negate_involution =
  QCheck.Test.make ~name:"input negation is an involution" ~count:200
    QCheck.(pair (int_bound 0xffff) (int_bound 3))
    (fun (tt, i) ->
      let tt = tt land Truth.mask 4 in
      Truth.negate_input 4 (Truth.negate_input 4 tt i) i = tt)

let suite =
  ( "logic",
    [
      Alcotest.test_case "of_fun/eval" `Quick test_of_fun_eval;
      Alcotest.test_case "var tables" `Quick test_var;
      Alcotest.test_case "connectives" `Quick test_connectives;
      Alcotest.test_case "cofactor/depends" `Quick test_cofactor_depends;
      Alcotest.test_case "permute" `Quick test_permute;
      Alcotest.test_case "negate input" `Quick test_negate_input;
      Alcotest.test_case "expand" `Quick test_expand;
      Alcotest.test_case "to_string" `Quick test_to_string;
      Alcotest.test_case "permutations" `Quick test_permutations;
      Alcotest.test_case "npn classes" `Quick test_npn_canonical_classes;
      Alcotest.test_case "npn transform witness" `Quick
        test_npn_transform_witness;
      Alcotest.test_case "p variants" `Quick test_p_variants;
      Alcotest.test_case "np variants" `Quick test_np_variants;
      QCheck_alcotest.to_alcotest prop_npn_canonical_invariant;
      QCheck_alcotest.to_alcotest prop_permute_compose;
      QCheck_alcotest.to_alcotest prop_negate_involution;
    ] )
