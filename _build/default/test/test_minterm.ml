(* Unit and property tests for Bitvec.Minterm. *)

module M = Bitvec.Minterm

let check_int = Alcotest.(check int)

let test_space_size () =
  check_int "2^0" 1 (M.space_size 0);
  check_int "2^10" 1024 (M.space_size 10);
  Alcotest.check_raises "negative" (Invalid_argument "Minterm.space_size")
    (fun () -> ignore (M.space_size (-1)))

let test_popcount () =
  check_int "0" 0 (M.popcount 0);
  check_int "0b1011" 3 (M.popcount 0b1011);
  check_int "max block" 10 (M.popcount 0b1111111111)

let test_hamming () =
  check_int "same" 0 (M.hamming 42 42);
  check_int "one bit" 1 (M.hamming 0b100 0b110);
  check_int "all of 4" 4 (M.hamming 0b0000 0b1111)

let test_neighbours () =
  Alcotest.(check (list int))
    "neighbours of 0 over 3 inputs" [ 1; 2; 4 ]
    (M.neighbours ~n:3 0);
  Alcotest.(check (list int))
    "neighbours of 5 over 3 inputs" [ 4; 7; 1 ]
    (M.neighbours ~n:3 5)

let test_neighbour_involution () =
  check_int "flip twice" 13 (M.neighbour (M.neighbour 13 2) 2)

let test_string_roundtrip () =
  (* Leftmost char is x0: minterm 1 (x0=1) renders as "100" for n=3. *)
  Alcotest.(check string) "x0 leftmost" "100" (M.to_string ~n:3 1);
  Alcotest.(check string) "x2 only" "001" (M.to_string ~n:3 4);
  check_int "parse back" 5 (M.of_string (M.to_string ~n:4 5))

let test_of_bits () =
  check_int "of_bits LSB first" 0b101 (M.of_bits [ true; false; true ])

let test_iter_space () =
  let count = ref 0 in
  M.iter_space ~n:4 (fun _ -> incr count);
  check_int "space visits" 16 !count;
  check_int "fold sum" 120 (M.fold_space ~n:4 (fun m acc -> acc + m) 0)

let prop_neighbour_distance =
  QCheck.Test.make ~name:"neighbours are at Hamming distance 1" ~count:200
    QCheck.(pair (int_bound 4095) (int_bound 11))
    (fun (m, j) -> M.hamming m (M.neighbour m j) = 1)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:200
    QCheck.(int_bound 4095)
    (fun m -> M.of_string (M.to_string ~n:12 m) = m)

let prop_popcount_additive =
  QCheck.Test.make ~name:"popcount of disjoint or is additive" ~count:200
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (a, b) ->
      let b = b land lnot a in
      M.popcount (a lor b) = M.popcount a + M.popcount b)

let suite =
  ( "minterm",
    [
      Alcotest.test_case "space_size" `Quick test_space_size;
      Alcotest.test_case "popcount" `Quick test_popcount;
      Alcotest.test_case "hamming" `Quick test_hamming;
      Alcotest.test_case "neighbours" `Quick test_neighbours;
      Alcotest.test_case "neighbour involution" `Quick
        test_neighbour_involution;
      Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
      Alcotest.test_case "of_bits" `Quick test_of_bits;
      Alcotest.test_case "iter_space" `Quick test_iter_space;
      QCheck_alcotest.to_alcotest prop_neighbour_distance;
      QCheck_alcotest.to_alcotest prop_string_roundtrip;
      QCheck_alcotest.to_alcotest prop_popcount_additive;
    ] )
