(* Tests for the gate-level netlist and its simulators. *)

module N = Netlist
module Gate = Netlist.Gate
module Truth = Logic.Truth

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_f = Alcotest.(check (float 1e-9))

(* A full adder as primitive gates: sum = a^b^cin, cout = maj. *)
let full_adder () =
  let t = N.create ~ni:3 in
  let sum = N.add t Gate.Xor [| 0; 1; 2 |] in
  let ab = N.add t Gate.And [| 0; 1 |] in
  let ac = N.add t Gate.And [| 0; 2 |] in
  let bc = N.add t Gate.And [| 1; 2 |] in
  let cout = N.add t Gate.Or [| ab; ac; bc |] in
  N.set_outputs t [| sum; cout |];
  t

let test_full_adder_eval () =
  let t = full_adder () in
  for m = 0 to 7 do
    let a = m land 1 and b = (m lsr 1) land 1 and c = (m lsr 2) land 1 in
    let total = a + b + c in
    let outs = N.eval_minterm t m in
    check (Printf.sprintf "sum m=%d" m) (total land 1 = 1) outs.(0);
    check (Printf.sprintf "cout m=%d" m) (total >= 2) outs.(1)
  done

let test_output_tables_match_eval () =
  let t = full_adder () in
  let tables = N.output_tables t in
  for m = 0 to 7 do
    let outs = N.eval_minterm t m in
    check "table sum" outs.(0) (Bitvec.Bv.get tables.(0) m);
    check "table cout" outs.(1) (Bitvec.Bv.get tables.(1) m)
  done

let test_structure () =
  let t = full_adder () in
  check_int "ni" 3 (N.ni t);
  check_int "no" 2 (N.no t);
  check_int "nodes" 8 (N.node_count t);
  check_int "gates" 5 (N.gate_count t);
  check_int "depth" 2 (N.depth t)

let test_add_validation () =
  let t = N.create ~ni:2 in
  Alcotest.check_raises "forward fanin"
    (Invalid_argument "Netlist.add: fanin id out of range (must be < node id)")
    (fun () -> ignore (N.add t Gate.Not [| 5 |]));
  Alcotest.check_raises "arity" (Invalid_argument "Netlist.add: arity")
    (fun () -> ignore (N.add t Gate.Not [| 0; 1 |]))

let test_const_gates () =
  let t = N.create ~ni:1 in
  let c1 = N.add t (Gate.Const true) [||] in
  let a = N.add t Gate.And [| 0; c1 |] in
  N.set_outputs t [| a |];
  check "and with const1 is id" true (N.eval t [| true |]).(0);
  check "and with const1 is id (false)" false (N.eval t [| false |]).(0)

let test_cell_eval () =
  (* A cell implementing XOR2 via its truth table. *)
  let xor_tt = Truth.txor (Truth.var 2 0) (Truth.var 2 1) in
  let cell =
    Gate.Cell
      {
        Gate.cell_name = "XOR2";
        tt = xor_tt;
        arity = 2;
        area = 3.0;
        delay = 0.09;
        input_cap = 1.5;
      }
  in
  let t = N.create ~ni:2 in
  let x = N.add t cell [| 0; 1 |] in
  N.set_outputs t [| x |];
  for m = 0 to 3 do
    let expect = (m land 1) lxor ((m lsr 1) land 1) = 1 in
    check (Printf.sprintf "cell xor m=%d" m) expect (N.eval_minterm t m).(0)
  done;
  (* word-parallel agrees *)
  let tables = N.output_tables t in
  Alcotest.(check (list int)) "table" [ 1; 2 ] (Bitvec.Bv.to_list tables.(0));
  check_f "area from cell" 3.0 (N.area t);
  check_f "delay from cell" 0.09 (N.delay t)

let test_signal_probs () =
  let t = full_adder () in
  let probs = N.signal_probs t in
  (* inputs are uniform *)
  check_f "input prob" 0.5 probs.(0);
  (* sum (3-input xor) is 1 for 4 of 8 patterns *)
  let outs = N.outputs t in
  check_f "sum prob" 0.5 probs.(outs.(0));
  (* majority is 1 for 4 of 8 *)
  check_f "cout prob" 0.5 probs.(outs.(1))

let test_power_positive () =
  let t = full_adder () in
  check "power positive" true (N.dynamic_power t > 0.0)

let test_delay_depth_relation () =
  let t = full_adder () in
  check_f "unmapped delay = depth" (float_of_int (N.depth t)) (N.delay t)

(* Property: a random DAG of primitive gates — word-parallel tables
   agree with scalar evaluation everywhere. *)
let gen_netlist =
  QCheck.Gen.(
    let gate_gen =
      oneofl [ Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor ]
    in
    list_size (int_range 1 12) (pair gate_gen (pair nat nat))
    |> map (fun specs ->
           let t = N.create ~ni:4 in
           List.iter
             (fun (g, (a, b)) ->
               let n = N.node_count t in
               let a = a mod n and b = b mod n in
               let b = if a = b then (b + 1) mod n else b in
               if a <> b then ignore (N.add t g [| a; b |]))
             specs;
           N.set_outputs t [| N.node_count t - 1 |];
           t))

let arb_netlist = QCheck.make ~print:(Format.asprintf "%a" N.pp) gen_netlist

let prop_tables_match_scalar =
  QCheck.Test.make ~name:"word-parallel sim agrees with scalar eval"
    ~count:150 arb_netlist (fun t ->
      let tables = N.output_tables t in
      let ok = ref true in
      for m = 0 to 15 do
        let outs = N.eval_minterm t m in
        Array.iteri
          (fun o v -> if Bitvec.Bv.get tables.(o) m <> v then ok := false)
          outs
      done;
      !ok)

let prop_signal_probs_match_tables =
  QCheck.Test.make ~name:"signal probs agree with output tables" ~count:100
    arb_netlist (fun t ->
      let probs = N.signal_probs t in
      let tables = N.output_tables t in
      let outs = N.outputs t in
      let ok = ref true in
      Array.iteri
        (fun o id ->
          let p = float_of_int (Bitvec.Bv.cardinal tables.(o)) /. 16.0 in
          if abs_float (p -. probs.(id)) > 1e-9 then ok := false)
        outs;
      !ok)

let suite =
  ( "netlist",
    [
      Alcotest.test_case "full adder eval" `Quick test_full_adder_eval;
      Alcotest.test_case "output tables match eval" `Quick
        test_output_tables_match_eval;
      Alcotest.test_case "structure stats" `Quick test_structure;
      Alcotest.test_case "add validation" `Quick test_add_validation;
      Alcotest.test_case "const gates" `Quick test_const_gates;
      Alcotest.test_case "cell eval via truth table" `Quick test_cell_eval;
      Alcotest.test_case "signal probabilities" `Quick test_signal_probs;
      Alcotest.test_case "dynamic power positive" `Quick test_power_positive;
      Alcotest.test_case "delay/depth relation" `Quick
        test_delay_depth_relation;
      QCheck_alcotest.to_alcotest prop_tables_match_scalar;
      QCheck_alcotest.to_alcotest prop_signal_probs_match_tables;
    ] )

(* replace_gate. *)

let test_replace_gate () =
  let t = N.create ~ni:2 in
  let a = N.add t Gate.And [| 0; 1 |] in
  N.set_outputs t [| a |];
  N.replace_gate t a Gate.Or;
  check "now or" true (N.eval t [| true; false |]).(0);
  Alcotest.check_raises "input protected"
    (Invalid_argument "Netlist.replace_gate: cannot replace an input")
    (fun () -> N.replace_gate t 0 Gate.Not);
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Netlist.replace_gate: arity mismatch") (fun () ->
      N.replace_gate t a Gate.Not)

let extra_cases = [ Alcotest.test_case "replace_gate" `Quick test_replace_gate ]

let suite = (fst suite, snd suite @ extra_cases)
