(* Tests for synthetic benchmark generation and the Table 1 suite. *)

module Spec = Pla.Spec
module SG = Synthetic.Synth_gen
module Suite = Synthetic.Suite
module Borders = Reliability.Borders

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_f tol = Alcotest.(check (float tol))

let test_random_codes_counts () =
  let rng = Random.State.make [| 1 |] in
  let p =
    { (SG.default_params ~ni:6 ~dc_frac:0.5 ~target_cf:None) with
      SG.on_count = 20; off_count = 12 }
  in
  let s = SG.output ~rng p in
  check_int "on count exact" 20 (Spec.on_count s ~o:0);
  check_int "off count exact" 12 (Spec.off_count s ~o:0);
  check_int "dc is remainder" (64 - 32) (Spec.dc_count s ~o:0)

let test_target_cf_reached_low () =
  let rng = Random.State.make [| 2 |] in
  let p = SG.default_params ~ni:8 ~dc_frac:0.6 ~target_cf:(Some 0.45) in
  let s = SG.output ~rng p in
  check_f 0.02 "low target reached" 0.45 (Borders.complexity_factor s ~o:0)

let test_target_cf_reached_high () =
  let rng = Random.State.make [| 3 |] in
  let p = SG.default_params ~ni:8 ~dc_frac:0.8 ~target_cf:(Some 0.80) in
  let s = SG.output ~rng p in
  check_f 0.02 "high target reached" 0.80 (Borders.complexity_factor s ~o:0)

let test_counts_preserved_by_annealing () =
  let rng = Random.State.make [| 4 |] in
  let p = SG.default_params ~ni:7 ~dc_frac:0.5 ~target_cf:(Some 0.7) in
  let s = SG.output ~rng p in
  check_int "on preserved" p.SG.on_count (Spec.on_count s ~o:0);
  check_int "off preserved" p.SG.off_count (Spec.off_count s ~o:0)

let test_coin_lands_near_expected_cf () =
  (* Without a target, measured cf should be near E[C^f]. *)
  let rng = Random.State.make [| 5 |] in
  let p = SG.default_params ~ni:10 ~dc_frac:0.6 ~target_cf:None in
  let s = SG.output ~rng p in
  let expected = Borders.expected_complexity_factor s ~o:0 in
  check_f 0.03 "coin at expectation" expected
    (Borders.complexity_factor s ~o:0)

let test_multi_output () =
  let rng = Random.State.make [| 6 |] in
  let p = SG.default_params ~ni:6 ~dc_frac:0.5 ~target_cf:(Some 0.6) in
  let s = SG.spec ~rng ~no:4 p in
  check_int "outputs" 4 (Spec.no s);
  for o = 0 to 3 do
    check
      (Printf.sprintf "output %d near target" o)
      true
      (abs_float (Borders.complexity_factor s ~o -. 0.6) < 0.05)
  done

let test_random_spec_probs () =
  let rng = Random.State.make [| 7 |] in
  let s = SG.random_spec ~rng ~ni:10 ~no:2 ~f1:0.2 ~f0:0.3 in
  let f1, f0, fdc = Spec.signal_probs s ~o:0 in
  check_f 0.05 "f1" 0.2 f1;
  check_f 0.05 "f0" 0.3 f0;
  check_f 0.05 "fdc" 0.5 fdc

let test_suite_entries () =
  check_int "twelve benchmarks" 12 (List.length Suite.entries);
  let ex = Suite.find "ex1010" in
  check_int "ex1010 inputs" 10 ex.Suite.ni;
  check_int "ex1010 outputs" 10 ex.Suite.no;
  check "unknown raises" true
    (match Suite.find "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_suite_deterministic () =
  let s1 = Suite.load_by_name "bench" in
  let s2 = Suite.load_by_name "bench" in
  check "deterministic generation" true (Spec.equal s1 s2)

let test_suite_matches_table1 () =
  (* Spot-check three benchmarks spanning the C^f range. *)
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let s = Suite.load entry in
      check_int "ni" entry.Suite.ni (Spec.ni s);
      check_int "no" entry.Suite.no (Spec.no s);
      check_f 2.0
        (Printf.sprintf "%s dc%%" name)
        entry.Suite.dc_percent
        (100.0 *. Spec.dc_fraction s);
      check_f 0.04
        (Printf.sprintf "%s cf" name)
        entry.Suite.cf
        (Borders.mean_complexity_factor s))
    [ "bench"; "fout"; "exam" ]

let suite =
  ( "synthetic",
    [
      Alcotest.test_case "exact phase counts" `Quick test_random_codes_counts;
      Alcotest.test_case "low cf target" `Quick test_target_cf_reached_low;
      Alcotest.test_case "high cf target" `Quick test_target_cf_reached_high;
      Alcotest.test_case "annealing preserves counts" `Quick
        test_counts_preserved_by_annealing;
      Alcotest.test_case "coin lands at expected cf" `Quick
        test_coin_lands_near_expected_cf;
      Alcotest.test_case "multi output" `Quick test_multi_output;
      Alcotest.test_case "random_spec probabilities" `Quick
        test_random_spec_probs;
      Alcotest.test_case "suite entries" `Quick test_suite_entries;
      Alcotest.test_case "suite deterministic" `Quick test_suite_deterministic;
      Alcotest.test_case "suite matches table 1 stats" `Quick
        test_suite_matches_table1;
    ] )

let test_target_cf_reached_very_low () =
  (* Fully specified, near-parity target: reachable thanks to the
     checkerboard seed. *)
  let rng = Random.State.make [| 8 |] in
  let p = SG.default_params ~ni:8 ~dc_frac:0.0 ~target_cf:(Some 0.10) in
  let s = SG.output ~rng p in
  check_f 0.02 "very low target" 0.10 (Borders.complexity_factor s ~o:0)

let test_zero_dc_counts () =
  let rng = Random.State.make [| 9 |] in
  let p = SG.default_params ~ni:6 ~dc_frac:0.0 ~target_cf:None in
  let s = SG.output ~rng p in
  check_int "no dc" 0 (Spec.dc_count s ~o:0)

let extra_cases =
  [
    Alcotest.test_case "very low cf target" `Quick
      test_target_cf_reached_very_low;
    Alcotest.test_case "zero dc fraction" `Quick test_zero_dc_counts;
  ]

let suite = (fst suite, snd suite @ extra_cases)
