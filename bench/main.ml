(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as aligned text tables), then runs
   bechamel micro-benchmarks of the core kernels.  Each section runs
   three times — scalar engine, word-parallel kernel engine at one
   job, kernel at N jobs — and the harness asserts all three produce
   bit-identical results.  Alongside the text output it writes
   BENCH_results.json: per-section wall-clock for each leg, the
   engine and parallel speedups, the identical-results verdicts, and
   a few key result scalars — a machine-checkable regression record
   for CI.

   Usage:
     dune exec bench/main.exe                  # everything, laptop-scale
     dune exec bench/main.exe -- table2        # one section
     dune exec bench/main.exe -- --full        # paper-scale sweeps
     dune exec bench/main.exe -- --jobs 4      # worker domains (also RDCA_JOBS)
     dune exec bench/main.exe -- --workers 2   # worker processes (sweep-distrib)
     dune exec bench/main.exe -- --profile     # span timing on (also RDCA_PROF)
     dune exec bench/main.exe -- --json out.json
   Sections: table1 fig2 fig4 fig5 fig6 table2 table3 ablations nodal
   check-ex1010 sweep-distrib backends dc-extract testability micro

   The sweep-distrib section (run when requested by name or when
   --workers > 0) re-evaluates a small sweep through the supervised
   multi-process layer and checks it merges bit-identically with the
   in-process result.  SIGINT/SIGTERM flushes the JSON with the
   sections finished so far and "interrupted": true.

   Exits non-zero if any section's kernel results differ from the
   scalar oracle, or its parallel results differ from sequential. *)

module E = Rdca_flow.Experiments
module T = Rdca_flow.Tablefmt
module J = Rdca_json.Jsonout
module Profjson = Rdca_json.Profjson
module Pool = Parallel.Pool
module K = Bitvec.Bv.Kernel
module Distrib = Rdca_flow.Distrib
module Sup = Resilient.Supervisor
module Interrupt = Resilient.Interrupt

type table = { title : string; header : string list; rows : string list list }

type outcome = { tables : table list; scalars : (string * float) list }

(* Everything that reaches the user, rendered to a canonical string:
   two runs are "identical" iff their signatures match. *)
let signature o =
  String.concat "\n"
    (List.map (fun t -> String.concat "|" (List.concat t.rows)) o.tables)
  ^ String.concat ";"
      (List.map (fun (k, v) -> Printf.sprintf "%s=%.17g" k v) o.scalars)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* ------------------------------------------------------------------ *)

let run_table1 ~full:_ () =
  let rows = E.table1 () in
  {
    tables =
      [
        {
          title = "Table 1: benchmark properties (measured vs paper)";
          header =
            [
              "name"; "in"; "out"; "%DC"; "E[Cf]"; "E[Cf] paper"; "Cf";
              "Cf paper";
            ];
          rows =
            List.map
              (fun r ->
                [
                  r.E.t1_name;
                  string_of_int r.E.t1_ni;
                  string_of_int r.E.t1_no;
                  T.pct r.E.t1_dc_pct;
                  T.f3 r.E.t1_ecf;
                  T.f3 r.E.t1_paper_ecf;
                  T.f3 r.E.t1_cf;
                  T.f3 r.E.t1_paper_cf;
                ])
              rows;
        };
      ];
    scalars =
      [
        ("benchmarks", float_of_int (List.length rows));
        ("mean_cf", mean (List.map (fun r -> r.E.t1_cf) rows));
      ];
  }

let run_fig2 ~full () =
  (* Per-task splittable streams are keyed off this seed, so every
     engine/job-count leg reproduces the same functions. *)
  let per_target = if full then 10 else 3 in
  let rows = E.fig2 ~per_target ~seed:2011 () in
  {
    tables =
      [
        {
          title =
            "Figure 2: minimised SOP size vs complexity factor (10-in/1-out \
             synthetics)";
          header = [ "target Cf"; "measured Cf"; "SOP implicants" ];
          rows =
            List.map
              (fun p ->
                [
                  T.f2 p.E.f2_target;
                  T.f3 p.E.f2_measured_cf;
                  string_of_int p.E.f2_sop;
                ])
              rows;
        };
      ];
    scalars =
      [
        ("points", float_of_int (List.length rows));
        ("mean_sop", mean (List.map (fun p -> float_of_int p.E.f2_sop) rows));
      ];
  }

(* The fraction sweep feeds both fig4 and fig5; cache it per
   (full, jobs, engine) key — the laptop and --full grids differ, and
   the harness deliberately re-runs each section per engine and job
   count, so any ingredient changing must invalidate the cache. *)
let sweep_fractions ~full =
  if full then Array.init 11 (fun i -> float_of_int i /. 10.0)
  else [| 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 |]

let sweep_cache : ((bool * int * bool) * E.sweep_row list) list ref = ref []

let get_sweep ~full () =
  let key = (full, Pool.jobs (Pool.shared ()), K.use ()) in
  match List.assoc_opt key !sweep_cache with
  | Some s -> s
  | None ->
      let s = E.sweep ~fractions:(sweep_fractions ~full) () in
      sweep_cache := (key, s) :: !sweep_cache;
      s

let run_fig4 ~full () =
  let sweep = get_sweep ~full () in
  let rows = E.fig4_of_sweep sweep in
  let fractions =
    match sweep with r :: _ -> r.E.sw_fractions | [] -> sweep_fractions ~full
  in
  {
    tables =
      [
        {
          title =
            "Figure 4: normalised error rate vs fraction of DCs \
             ranking-assigned";
          header =
            ("name"
            :: Array.to_list
                 (Array.map (fun f -> Printf.sprintf "f=%.1f" f) fractions));
          rows =
            List.map
              (fun (name, norms) ->
                name :: Array.to_list (Array.map T.f3 norms))
              rows;
        };
      ];
    scalars =
      [
        ("benchmarks", float_of_int (List.length rows));
        ( "mean_norm_error_full_assign",
          mean (List.map (fun (_, n) -> n.(Array.length n - 1)) rows) );
      ];
  }

let run_fig5 ~full () =
  let stats = E.fig5_of_sweep (get_sweep ~full ()) in
  let last_delay_area =
    List.fold_left
      (fun acc s ->
        match s.E.f5_mode with
        | Techmap.Mapper.Delay -> (fun (a, _, _) -> a) s.E.f5_mean
        | _ -> acc)
      1.0 stats
  in
  {
    tables =
      [
        {
          title =
            "Figure 5: normalised min/mean/max area, delay, power vs fraction \
             (per optimisation mode)";
          header =
            [
              "mode"; "frac"; "area min"; "area mean"; "area max"; "delay min";
              "delay mean"; "delay max"; "power min"; "power mean"; "power max";
            ];
          rows =
            List.map
              (fun s ->
                let amin, dmin, pmin = s.E.f5_min in
                let amean, dmean, pmean = s.E.f5_mean in
                let amax, dmax, pmax = s.E.f5_max in
                [
                  Techmap.Mapper.mode_name s.E.f5_mode;
                  T.f2 s.E.f5_fraction;
                  T.f2 amin; T.f2 amean; T.f2 amax;
                  T.f2 dmin; T.f2 dmean; T.f2 dmax;
                  T.f2 pmin; T.f2 pmean; T.f2 pmax;
                ])
              stats;
        };
      ];
    scalars = [ ("mean_area_ratio_delay_mode_last", last_delay_area) ];
  }

let run_fig6 ~full () =
  let funcs = if full then 10 else 2 in
  let families = E.fig6 ~funcs_per_family:funcs ~seed:66 () in
  {
    tables =
      [
        {
          title =
            "Figure 6: normalised area vs normalised error rate, by Cf family \
             (11-in/11-out, 60% DC; fraction sweep 0..1)";
          header = [ "Cf family"; "fraction"; "norm area"; "norm error" ];
          rows =
            List.concat_map
              (fun fam ->
                List.map
                  (fun p ->
                    [
                      T.f2 fam.E.f6_cf;
                      T.f2 p.E.f6_fraction;
                      T.f3 p.E.f6_area;
                      T.f3 p.E.f6_error;
                    ])
                  fam.E.f6_points)
              families;
        };
      ];
    scalars = [ ("families", float_of_int (List.length families)) ];
  }

let run_table2 ~full:_ () =
  let rows = E.table2 () in
  {
    tables =
      [
        {
          title =
            "Table 2: complexity-factor-based assignment results \
             (improvement %, negative = overhead)";
          header =
            [
              "name"; "Cf"; "LCf area"; "LCf E.R."; "Rank area"; "Rank E.R.";
              "Compl area"; "Compl E.R.";
            ];
          rows =
            List.map
              (fun r ->
                [
                  r.E.t2_name;
                  T.f3 r.E.t2_cf;
                  T.pct r.E.t2_lcf_area;
                  T.pct r.E.t2_lcf_er;
                  T.pct r.E.t2_rank_area;
                  T.pct r.E.t2_rank_er;
                  T.pct r.E.t2_comp_area;
                  T.pct r.E.t2_comp_er;
                ])
              rows;
        };
      ];
    scalars =
      [
        ("mean_lcf_er_impr", mean (List.map (fun r -> r.E.t2_lcf_er) rows));
        ("mean_rank_er_impr", mean (List.map (fun r -> r.E.t2_rank_er) rows));
        ("mean_comp_er_impr", mean (List.map (fun r -> r.E.t2_comp_er) rows));
      ];
  }

let run_table3 ~full:_ () =
  let rows = E.table3 () in
  {
    tables =
      [
        {
          title = "Table 3: min-max reliability estimates";
          header =
            [
              "name"; "gates"; "exact lo"; "exact hi"; "signal lo"; "signal hi";
              "border lo"; "border hi"; "conv rate"; "conv %diff"; "LCf rate";
              "LCf %diff";
            ];
          rows =
            List.map
              (fun r ->
                let xl, xh = r.E.t3_exact in
                let sl, sh = r.E.t3_signal in
                let bl, bh = r.E.t3_border in
                [
                  r.E.t3_name;
                  string_of_int r.E.t3_gates;
                  T.f3 xl; T.f3 xh; T.f3 sl; T.f3 sh; T.f3 bl; T.f3 bh;
                  T.f3 r.E.t3_conv_rate; T.pct r.E.t3_conv_diff;
                  T.f3 r.E.t3_lcf_rate; T.pct r.E.t3_lcf_diff;
                ])
              rows;
        };
      ];
    scalars =
      [
        ( "mean_exact_lo",
          mean (List.map (fun r -> fst r.E.t3_exact) rows) );
        ("mean_conv_rate", mean (List.map (fun r -> r.E.t3_conv_rate) rows));
      ];
  }

let run_ablations ~full:_ () =
  let thr = E.ablation_threshold ~name:"ex1010" () in
  let nm = E.ablation_neighbour_model () in
  let bal = E.ablation_balance () in
  let sh =
    E.ablation_sharing
      ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010"; "exam" ]
      ()
  in
  let fc =
    E.ablation_factoring
      ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010"; "exam" ]
      ()
  in
  let mb = E.ablation_multibit ~names:[ "bench"; "test4"; "ex1010" ] () in
  {
    tables =
      [
        {
          title = "Ablation: LCf threshold sweep on ex1010 (improvement %)";
          header = [ "threshold"; "area"; "error rate" ];
          rows = List.map (fun (t, a, e) -> [ T.f2 t; T.pct a; T.pct e ]) thr;
        };
        {
          title =
            "Ablation: Poisson vs binomial neighbour model (border-based \
             bounds)";
          header =
            [
              "name"; "poisson lo"; "poisson hi"; "binom lo"; "binom hi";
              "exact lo"; "exact hi";
            ];
          rows =
            List.map
              (fun (name, (pl, ph), (bl, bh), (xl, xh)) ->
                [ name; T.f3 pl; T.f3 ph; T.f3 bl; T.f3 bh; T.f3 xl; T.f3 xh ])
              nm;
        };
        {
          title = "Ablation: AIG balancing effect on critical path (ns)";
          header = [ "name"; "with balance"; "without" ];
          rows = List.map (fun (name, w, wo) -> [ name; T.f3 w; T.f3 wo ]) bal;
        };
        {
          title =
            "Ablation: per-output vs shared-cube (multi-output espresso) \
             minimisation";
          header =
            [
              "name"; "area single"; "area shared"; "cubes single";
              "cubes shared";
            ];
          rows =
            List.map
              (fun (name, a1, a2, c1, c2) ->
                [ name; T.f2 a1; T.f2 a2; string_of_int c1; string_of_int c2 ])
              sh;
        };
        {
          title =
            "Ablation: flat SOP vs algebraically factored AIG construction";
          header =
            [ "name"; "area flat"; "area factored"; "nodes flat";
              "nodes factored" ];
          rows =
            List.map
              (fun (name, a1, a2, n1, n2) ->
                [ name; T.f2 a1; T.f2 a2; string_of_int n1; string_of_int n2 ])
              fc;
        };
        {
          title = "Ablation: single-bit-tuned assignment under k-bit input errors";
          header = [ "name"; "k"; "conv rate"; "complete rate"; "improvement %" ];
          rows =
            List.map
              (fun (name, k, rc, rr, impr) ->
                [ name; string_of_int k; T.f3 rc; T.f3 rr; T.pct impr ])
              mb;
        };
      ];
    scalars = [ ("mean_multibit_impr", mean (List.map (fun (_, _, _, _, i) -> i) mb)) ];
  }

let run_nodal ~full:_ () =
  let impr before after =
    if before = 0.0 then 0.0 else 100.0 *. (before -. after) /. before
  in
  let rows =
    E.nodal_decomposition ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010" ] ()
  in
  let rrows =
    E.nodal_renode ~names:[ "bench"; "fout"; "p3"; "test4"; "ex1010" ] ()
  in
  let orows = E.nodal_odc ~names:[ "bench"; "fout"; "p3"; "test4" ] () in
  {
    tables =
      [
        {
          title =
            "Section 4 extension: internal error rate before/after nodal LCf \
             reassignment";
          header = [ "name"; "before"; "after"; "improvement %" ];
          rows =
            List.map
              (fun (name, before, after) ->
                [ name; T.f3 before; T.f3 after; T.pct (impr before after) ])
              rows;
        };
        {
          title =
            "Section 4 extension at renode (4-LUT) granularity: coarser local \
             DC spaces";
          header =
            [ "name"; "LUTs"; "with DCs"; "before"; "after"; "improvement %" ];
          rows =
            List.map
              (fun (name, luts, dcs, before, after) ->
                [
                  name;
                  string_of_int luts;
                  string_of_int dcs;
                  T.f3 before;
                  T.f3 after;
                  T.pct (impr before after);
                ])
              rrows;
        };
        {
          title =
            "Section 4 extension: satisfiability-only vs observability-aware \
             reassignment (internal error rate)";
          header =
            [ "name"; "baseline"; "SDC only"; "with ODC"; "ODC improvement %" ];
          rows =
            List.map
              (fun (name, base, sdc, odc) ->
                [ name; T.f3 base; T.f3 sdc; T.f3 odc; T.pct (impr base odc) ])
              orows;
        };
      ];
    scalars =
      [
        ( "mean_nodal_impr",
          mean (List.map (fun (_, b, a) -> impr b a) rows) );
      ];
  }

(* ------------------------------------------------------------------ *)
(* Static-check audit of the largest suite benchmark: synthesize
   ex1010, then run the full lib/check pipeline (spec lint, cover
   check, netlist structure, care-set equivalence with both the
   exhaustive and the BDD engine).  The diagnostics land in the
   outcome table, so the harness's signature comparison doubles as the
   differential guard that the kernel and scalar checker engines — and
   the two equivalence engines — report identically. *)

let run_check_ex1010 ~full:_ () =
  let module Flow = Rdca_flow.Flow in
  let module Diag = Check.Diag in
  let spec = Synthetic.Suite.load_by_name "ex1010" in
  let r =
    Flow.synthesize ~mode:Techmap.Mapper.Area ~strategy:Flow.Conventional spec
  in
  let diags =
    Diag.sort
      (Check.implementation ~equiv:Check.Netlist_check.Exhaustive
         ~include_redundancy:true ~spec ~covers:r.Flow.covers
         ~netlist:r.Flow.netlist ())
  in
  let bdd_diags =
    Check.Netlist_check.equiv_spec ~engine:Check.Netlist_check.Bdd_backed ~spec
      r.Flow.netlist
  in
  {
    tables =
      [
        {
          title = "check-ex1010: post-synthesis static audit (conventional/area)";
          header = [ "severity"; "code"; "location"; "message" ];
          rows =
            List.map
              (fun d ->
                [
                  Diag.severity_name d.Diag.severity;
                  d.Diag.code;
                  Diag.location_to_string d.Diag.loc;
                  d.Diag.message;
                ])
              diags;
        };
      ];
    scalars =
      [
        ("diag_errors", float_of_int (Diag.count Diag.Error diags));
        ("diag_warnings", float_of_int (Diag.count Diag.Warn diags));
        ("diag_infos", float_of_int (Diag.count Diag.Info diags));
        ("equiv_bdd_errors", float_of_int (List.length bdd_diags));
        ("sop_cubes", float_of_int r.Flow.sop_cubes);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core kernels.  Timing is noisy by
   nature, so this section runs once and is excluded from the
   identical-results check. *)

let run_micro ~full:_ () =
  let open Bechamel in
  let spec = Synthetic.Suite.load_by_name "ex1010" in
  let on = Pla.Spec.on_bv spec ~o:0 and dc = Pla.Spec.dc_bv spec ~o:0 in
  let cover = Espresso.Dense.minimize ~n:10 ~on ~dc in
  let covers =
    List.init (Pla.Spec.no spec) (fun o ->
        Espresso.Dense.minimize ~n:10 ~on:(Pla.Spec.on_bv spec ~o)
          ~dc:(Pla.Spec.dc_bv spec ~o))
  in
  let aig = Aig.Opt.balance (Aig.of_covers ~ni:10 covers) in
  let lib = Techmap.Stdcell.default_library () in
  let tests =
    Test.make_grouped ~name:"rdca"
      [
        Test.make ~name:"espresso-dense ex1010/o0"
          (Staged.stage (fun () -> Espresso.Dense.minimize ~n:10 ~on ~dc));
        Test.make ~name:"ranking assignment ex1010"
          (Staged.stage (fun () -> Rdca_core.Assign.ranking ~fraction:0.5 spec));
        Test.make ~name:"lcf assignment ex1010"
          (Staged.stage (fun () ->
               Rdca_core.Assign.by_complexity ~threshold:0.55 spec));
        Test.make ~name:"exact bounds ex1010"
          (Staged.stage (fun () -> Reliability.Error_rate.mean_bounds spec));
        Test.make ~name:"border estimate ex1010"
          (Staged.stage (fun () -> Reliability.Estimate.mean_border_based spec));
        Test.make ~name:"bdd of cover (o0)"
          (Staged.stage (fun () ->
               let man = Bdd.make_man ~nvars:10 in
               Bdd.of_cover man cover));
        Test.make ~name:"cut enumeration (ex1010 aig)"
          (Staged.stage (fun () -> Aig.Cut.enumerate aig ~k:4 ~max_cuts:8));
        Test.make ~name:"cut enumeration memoised (ex1010 aig)"
          (Staged.stage (fun () -> Aig.Cut.enumerate_memo aig ~k:4 ~max_cuts:8));
        Test.make ~name:"techmap delay (ex1010 aig)"
          (Staged.stage (fun () ->
               Techmap.Mapper.map ~mode:Techmap.Mapper.Delay ~lib aig));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  {
    tables =
      [
        {
          title = "Micro-benchmarks (monotonic clock, per call)";
          header = [ "kernel"; "time" ];
          rows =
            List.map
              (fun (name, ns) ->
                let h =
                  if Float.is_nan ns then "n/a"
                  else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                  else Printf.sprintf "%.0f ns" ns
                in
                [ name; h ])
              rows;
        };
      ];
    scalars = List.map (fun (name, ns) -> (name ^ "_ns", ns)) rows;
  }

(* ------------------------------------------------------------------ *)
(* Supervised multi-process sweep: the same (benchmark, fraction)
   cells evaluated in-process and through Distrib/Supervisor worker
   processes must merge to structurally identical rows.  This is a
   correctness section, not a timing one, so it runs once and feeds
   any divergence straight into the harness's mismatch list. *)

let mismatches = ref []
let distrib_workers = ref 0

let run_sweep_distrib ~full:_ () =
  let names = [ "bench"; "fout"; "p3" ] in
  let fractions = [| 0.0; 0.5; 1.0 |] in
  let seq = E.sweep ~fractions ~names () in
  (* Exec-spawn this very binary back into its hidden worker mode (see
     the driver below): unlike Fork, that works even after earlier
     sections have spawned pool domains, which makes Unix.fork
     unavailable for the rest of the process on OCaml 5. *)
  let sup =
    {
      Sup.default with
      Sup.workers = max 2 !distrib_workers;
      Sup.spawn = Sup.Exec [| Sys.executable_name; "--bench-worker" |];
    }
  in
  let identical, events, mode =
    match Distrib.sweep_distributed ~fractions ~names sup with
    | Error e ->
        mismatches := ("sweep-distrib [error: " ^ e ^ "]") :: !mismatches;
        (false, 0, "error")
    | Ok d ->
        let same = d.Distrib.value = seq in
        if not same then mismatches := "sweep-distrib [merge]" :: !mismatches;
        ( same,
          List.length d.Distrib.events,
          match d.Distrib.exec_mode with
          | Sup.Processes n -> Printf.sprintf "processes(%d)" n
          | Sup.Pool n -> Printf.sprintf "pool(%d)" n
          | Sup.Sequential -> "sequential" )
  in
  {
    tables =
      [
        {
          title =
            "sweep-distrib: supervised worker processes vs in-process sweep";
          header = [ "benchmark"; "cells"; "identical" ];
          rows =
            List.map
              (fun r ->
                [
                  r.E.sw_name;
                  string_of_int (Array.length r.E.sw_fractions);
                  (if identical then "yes" else "NO");
                ])
              seq;
        };
      ];
    scalars =
      [
        ("benchmarks", float_of_int (List.length seq));
        ("identical", if identical then 1.0 else 0.0);
        ("supervision_events", float_of_int events);
        ("mode_is_processes",
         if String.length mode >= 9 && String.sub mode 0 9 = "processes"
         then 1.0 else 0.0);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Cross-backend agreement: on the small suite benchmarks the
   symbolic (BDD) backend must reproduce the exhaustive engines
   bit-identically and the sampled backend's Wilson intervals must
   bracket the exact values; beyond the dense ceiling (generated
   cube-level specs) the symbolic and sampled backends check each
   other.  Any disagreement feeds the harness mismatch list, so the
   cross-backend contract gates the exit code like the
   kernel-vs-scalar one. *)

let run_backends ~full () =
  let module A = Reliability.Analysis in
  let params = { A.default_params with A.samples = 20_000; seed = 2011 } in
  let inside v x = A.value_lo v <= x && x <= A.value_hi v in
  let bounds_triple b = A.[ value_est b.base; value_est b.min_dc; value_est b.max_dc ] in
  let small = [ "bench"; "fout"; "p3" ] in
  let small_rows =
    List.map
      (fun name ->
        let t = A.of_spec (Synthetic.Suite.load_by_name name) in
        let be = A.mean_bounds ~backend:A.Exhaustive t in
        let bb = A.mean_bounds ~backend:A.Bdd_exact t in
        let ident =
          List.for_all2 Float.equal (bounds_triple be) (bounds_triple bb)
        in
        if not ident then
          mismatches := ("backends [" ^ name ^ " bdd/exhaustive]") :: !mismatches;
        let bs = A.mean_bounds ~params ~backend:A.Sampled t in
        let ci_ok =
          List.for_all2 inside
            A.[ bs.base; bs.min_dc; bs.max_dc ]
            (bounds_triple be)
        in
        if not ci_ok then
          mismatches := ("backends [" ^ name ^ " sampled-ci]") :: !mismatches;
        (name, be, bs, ident, ci_ok))
      small
  in
  let wide_nis = if full then [ 24; 28; 32 ] else [ 24; 28 ] in
  let wide_rows =
    List.map
      (fun ni ->
        let rng = Random.State.make [| 2011; ni |] in
        let sets =
          Synthetic.Synth_gen.random_cover_sets ~rng ~ni ~no:2 ~on_cubes:6
            ~dc_cubes:4 ~lit_prob:0.35
        in
        let t = A.of_cover_sets ~ni sets in
        let bb = A.mean_bounds ~backend:A.Bdd_exact t in
        let bs = A.mean_bounds ~params ~backend:A.Sampled t in
        let ci_ok =
          List.for_all2 inside
            A.[ bs.base; bs.min_dc; bs.max_dc ]
            (bounds_triple bb)
        in
        if not ci_ok then
          mismatches :=
            (Printf.sprintf "backends [n=%d sampled-ci]" ni) :: !mismatches;
        (ni, bb, bs, ci_ok))
      wide_nis
  in
  {
    tables =
      [
        {
          title = "backends: exhaustive vs BDD-exact vs sampled (suite)";
          header =
            [ "name"; "base"; "min"; "max"; "bdd==exh"; "CI(sample) ∋ exact" ];
          rows =
            List.map
              (fun (name, be, _, ident, ci_ok) ->
                [
                  name;
                  T.f3 (A.value_est be.A.base);
                  T.f3 (A.value_est (A.min_rate be));
                  T.f3 (A.value_est (A.max_rate be));
                  (if ident then "yes" else "NO");
                  (if ci_ok then "yes" else "NO");
                ])
              small_rows;
        };
        {
          title = "backends: BDD-exact vs sampled beyond the dense ceiling";
          header = [ "n"; "base(bdd)"; "max(bdd)"; "base(sample)"; "CI ∋ bdd" ];
          rows =
            List.map
              (fun (ni, bb, bs, ci_ok) ->
                [
                  string_of_int ni;
                  T.f3 (A.value_est bb.A.base);
                  T.f3 (A.value_est (A.max_rate bb));
                  T.f3 (A.value_est bs.A.base);
                  (if ci_ok then "yes" else "NO");
                ])
              wide_rows;
        };
      ];
    scalars =
      List.map
        (fun (name, be, _, ident, ci_ok) ->
          [
            (name ^ "_base", A.value_est be.A.base);
            (name ^ "_bdd_identical", if ident then 1.0 else 0.0);
            (name ^ "_sampled_ci_ok", if ci_ok then 1.0 else 0.0);
          ])
        small_rows
      |> List.concat
      |> fun l ->
      l
      @ (List.map
           (fun (ni, bb, _, ci_ok) ->
             [
               (Printf.sprintf "wide%d_base" ni, A.value_est bb.A.base);
               (Printf.sprintf "wide%d_ci_ok" ni, if ci_ok then 1.0 else 0.0);
             ])
           wide_rows
        |> List.concat)
  }

(* ------------------------------------------------------------------ *)
(* Windowed don't-care extraction: synthesize each suite benchmark,
   sweep the Differential engine (SAT and BDD answer every window and
   are compared bit-identically), rewrite the DC patterns and prove
   the result still realises the care set.  Any window disagreement or
   equivalence failure feeds the mismatch list, so the cross-engine
   contract gates the exit code.  Timing (µs per analyzed node) makes
   this a run-once section. *)

let run_dc_extract ~full () =
  let module Dc = Rdca_dc.Dc in
  let names = [ "bench"; "fout"; "p3" ] in
  let depth = if full then 3 else 2 in
  let config =
    { Dc.default_config with Dc.depth; backend = Dc.Differential }
  in
  let rows =
    List.map
      (fun name ->
        let spec = Synthetic.Suite.load_by_name name in
        let r =
          Rdca_flow.Flow.synthesize ~mode:Techmap.Mapper.Area
            ~strategy:Rdca_flow.Flow.Conventional spec
        in
        let t0 = Unix.gettimeofday () in
        let opt = Dc.optimize ~config ~strategy:Dc.Complete r.Rdca_flow.Flow.netlist in
        let dt = Unix.gettimeofday () -. t0 in
        let rep = opt.Dc.opt_report in
        if rep.Dc.disagreements > 0 then
          mismatches :=
            (Printf.sprintf "dc-extract [%s sat/bdd: %d window(s)]" name
               rep.Dc.disagreements)
            :: !mismatches;
        let equiv_diags =
          Check.Netlist_check.equiv_spec ~spec opt.Dc.netlist
        in
        if Check.Diag.has_errors equiv_diags then
          mismatches := (Printf.sprintf "dc-extract [%s equiv]" name) :: !mismatches;
        let us_per_node =
          if rep.Dc.analyzed = 0 then 0.0
          else 1e6 *. dt /. float_of_int rep.Dc.analyzed
        in
        ( name,
          rep,
          List.length opt.Dc.rewritten,
          not (Check.Diag.has_errors equiv_diags),
          us_per_node ))
      names
  in
  {
    tables =
      [
        {
          title =
            Printf.sprintf
              "dc-extract: windowed SDC/ODC recovery, SAT vs BDD (depth %d)"
              depth;
          header =
            [
              "name"; "analyzed"; "SDC"; "ODC"; "agree"; "rewritten"; "equiv";
              "us/node";
            ];
          rows =
            List.map
              (fun (name, rep, rewritten, equiv_ok, us) ->
                [
                  name;
                  string_of_int rep.Dc.analyzed;
                  string_of_int rep.Dc.sdc_patterns;
                  string_of_int rep.Dc.odc_patterns;
                  (if rep.Dc.disagreements = 0 then "yes" else "NO");
                  string_of_int rewritten;
                  (if equiv_ok then "yes" else "NO");
                  T.f3 us;
                ])
              rows;
        };
      ];
    scalars =
      List.concat_map
        (fun (name, rep, rewritten, equiv_ok, us) ->
          [
            (name ^ "_sdc", float_of_int rep.Dc.sdc_patterns);
            (name ^ "_odc", float_of_int rep.Dc.odc_patterns);
            (name ^ "_agree", if rep.Dc.disagreements = 0 then 1.0 else 0.0);
            (name ^ "_rewritten", float_of_int rewritten);
            (name ^ "_equiv_ok", if equiv_ok then 1.0 else 0.0);
            (name ^ "_us_per_node", us);
          ])
        rows;
  }

(* ------------------------------------------------------------------ *)
(* SAT-based stuck-at testability: synthesize each suite benchmark,
   analyze the full collapsed fault universe with the SAT engine and
   again with the exhaustive word-parallel simulator, and compare the
   two verdict vectors bit-identically.  Any divergence feeds the
   mismatch list so the cross-engine contract gates the exit code;
   faults/s and the collapse ratio are the headline scalars.  Timing
   makes this a run-once section. *)

let run_testability ~full:_ () =
  let module A = Atpg.Engine in
  let names = [ "bench"; "fout"; "p3" ] in
  let rows =
    List.map
      (fun name ->
        let spec = Synthetic.Suite.load_by_name name in
        let r =
          Rdca_flow.Flow.synthesize ~mode:Techmap.Mapper.Area
            ~strategy:Rdca_flow.Flow.Conventional spec
        in
        let nl = r.Rdca_flow.Flow.netlist in
        let analyze backend =
          A.analyze ~config:{ A.default_config with A.backend } nl
        in
        let t0 = Unix.gettimeofday () in
        let sat = analyze A.Sat_engine in
        let dt = Unix.gettimeofday () -. t0 in
        let exh = analyze A.Exhaustive in
        let identical =
          List.length sat.A.results = List.length exh.A.results
          && List.for_all2
               (fun (a : A.fault_result) (b : A.fault_result) ->
                 Atpg.Fault.compare a.A.rep b.A.rep = 0
                 && a.A.verdict = b.A.verdict)
               sat.A.results exh.A.results
        in
        if not identical then
          mismatches :=
            Printf.sprintf "testability [%s sat/exhaustive]" name
            :: !mismatches;
        let faults_per_s =
          if dt <= 0.0 then 0.0 else float_of_int sat.A.classes /. dt
        in
        (name, sat, identical, faults_per_s))
      names
  in
  let all_identical = List.for_all (fun (_, _, ok, _) -> ok) rows in
  {
    tables =
      [
        {
          title = "testability: SAT vs exhaustive stuck-at verdicts";
          header =
            [
              "name"; "faults"; "classes"; "collapse"; "untestable";
              "identical"; "faults/s";
            ];
          rows =
            List.map
              (fun (name, (rep : A.report), ok, fps) ->
                [
                  name;
                  string_of_int rep.A.total_faults;
                  string_of_int rep.A.classes;
                  T.f2 rep.A.collapse_ratio;
                  string_of_int rep.A.untestable;
                  (if ok then "yes" else "NO");
                  Printf.sprintf "%.0f" fps;
                ])
              rows;
        };
      ];
    scalars =
      List.concat_map
        (fun (name, (rep : A.report), ok, fps) ->
          [
            (name ^ "_faults", float_of_int rep.A.total_faults);
            (name ^ "_classes", float_of_int rep.A.classes);
            (name ^ "_collapse_ratio", rep.A.collapse_ratio);
            (name ^ "_untestable", float_of_int rep.A.untestable);
            (name ^ "_faults_per_s", fps);
            (name ^ "_identical", if ok then 1.0 else 0.0);
          ])
        rows
      @ [ ("sat_exhaustive_identical", if all_identical then 1.0 else 0.0) ];
  }

(* ------------------------------------------------------------------ *)
(* Driver: run each requested section three times — scalar engine at
   one job, kernel engine at one job, and (when --jobs > 1) kernel at
   N jobs — check all runs produce identical results, and record the
   engine and parallel speedups. *)

type section = {
  sec_name : string;
  dual : bool;  (** false: timing-noise sections run once *)
  build : full:bool -> unit -> outcome;
}

let sections =
  [
    { sec_name = "table1"; dual = true; build = run_table1 };
    { sec_name = "fig2"; dual = true; build = run_fig2 };
    { sec_name = "fig4"; dual = true; build = run_fig4 };
    { sec_name = "fig5"; dual = true; build = run_fig5 };
    { sec_name = "fig6"; dual = true; build = run_fig6 };
    { sec_name = "table2"; dual = true; build = run_table2 };
    { sec_name = "table3"; dual = true; build = run_table3 };
    { sec_name = "ablations"; dual = true; build = run_ablations };
    { sec_name = "nodal"; dual = true; build = run_nodal };
    { sec_name = "check-ex1010"; dual = true; build = run_check_ex1010 };
    { sec_name = "sweep-distrib"; dual = false; build = run_sweep_distrib };
    { sec_name = "backends"; dual = true; build = run_backends };
    { sec_name = "dc-extract"; dual = false; build = run_dc_extract };
    { sec_name = "testability"; dual = false; build = run_testability };
    { sec_name = "micro"; dual = false; build = run_micro };
  ]

let print_outcome o =
  List.iter
    (fun t -> T.print ~title:t.title ~header:t.header t.rows)
    o.tables

let exec_section ~jobs ~full s =
  (* Each leg also diffs the profiling instruments around itself, so
     the schema-v4 JSON can attribute that leg's wall clock to named
     spans (empty unless --profile / RDCA_PROF; the always-on event
     counters appear regardless). *)
  let run ~kernel ~jobs:j =
    let before = Prof.snapshot () in
    let t0 = Unix.gettimeofday () in
    let r = Pool.with_jobs j (fun () -> K.with_mode kernel (s.build ~full)) in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Prof.diff ~before ~after:(Prof.snapshot ()), r)
  in
  let pool_before = Pool.stats () in
  (* Leg 1: scalar oracle (timing-noise sections skip it). *)
  let ts, os =
    if s.dual then
      let ts, _, os = run ~kernel:false ~jobs:1 in
      (ts, Some os)
    else (0.0, None)
  in
  (* Leg 2: word-parallel kernel, single-threaded. *)
  let t1, d1, o1 = run ~kernel:true ~jobs:1 in
  let identical_engine =
    match os with Some os -> signature os = signature o1 | None -> true
  in
  (* Leg 3: kernel at N worker domains. *)
  let tn, dn, on, identical_jobs =
    if s.dual && jobs > 1 then begin
      let tn, dn, on = run ~kernel:true ~jobs in
      (tn, dn, on, signature o1 = signature on)
    end
    else (t1, d1, o1, true)
  in
  print_outcome on;
  let speedup_kernel = if s.dual && t1 > 0.0 then ts /. t1 else 1.0 in
  let speedup_jobs = if tn > 0.0 then t1 /. tn else 1.0 in
  if s.dual then
    Printf.printf
      "[%s: scalar %.2fs, kernel %.2fs (%.2fx)%s%s]\n%!" s.sec_name ts t1
      speedup_kernel
      (if jobs > 1 then
         Printf.sprintf ", %.2fs at %d jobs (%.2fx)" tn jobs speedup_jobs
       else "")
      (if identical_engine && identical_jobs then ""
       else "; RESULTS DIFFER")
  else Printf.printf "[%s finished in %.2fs]\n%!" s.sec_name t1;
  if not identical_engine then mismatches := (s.sec_name ^ " [engine]") :: !mismatches;
  if not identical_jobs then mismatches := (s.sec_name ^ " [jobs]") :: !mismatches;
  let profile_fields =
    if not (Prof.enabled ()) then []
    else
      ("profile_jobs1", Profjson.profile ~wall:t1 d1)
      ::
      (if s.dual && jobs > 1 then
         [ ("profile_jobsN", Profjson.profile ~wall:tn dn) ]
       else [])
  in
  J.Obj
    ([
       ("name", J.String s.sec_name);
       ("seconds_scalar", J.Float ts);
       ("seconds_jobs1", J.Float t1);
       ("seconds_jobsN", J.Float tn);
       ("speedup_kernel", J.Float speedup_kernel);
       ("speedup", J.Float speedup_jobs);
       ("scalar_run", J.Bool s.dual);
       ("dual_run", J.Bool (s.dual && jobs > 1));
       ("identical_engine", J.Bool identical_engine);
       ("identical", J.Bool identical_jobs);
       ("pool", Profjson.pool_delta ~before:pool_before ~after:(Pool.stats ()));
     ]
    @ profile_fields
    @ [ ("scalars", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) on.scalars)) ]
    )

let usage () =
  prerr_endline
    "usage: bench [--full] [--jobs N] [--workers N] [--profile] [--json FILE] \
     [SECTION...]\n\
     sections: table1 fig2 fig4 fig5 fig6 table2 table3 ablations nodal \
     check-ex1010 sweep-distrib backends dc-extract testability micro";
  exit 2

(* Hidden worker mode: sweep-distrib Exec-spawns this binary as its
   worker processes. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--bench-worker" then begin
    Pool.set_default_jobs 1;
    Resilient.Worker.serve ~handler:Distrib.dispatch ~input:Unix.stdin
      ~output:Unix.stdout ();
    exit 0
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = ref false
  and jobs = ref (Pool.default_jobs ())
  and json_path = ref "BENCH_results.json"
  and wanted = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ -> usage ())
    | "--workers" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            distrib_workers := n;
            parse rest
        | _ -> usage ())
    | "--json" :: path :: rest ->
        json_path := path;
        parse rest
    | "--profile" :: rest ->
        Prof.set_enabled true;
        parse rest
    | ("--help" | "-h") :: _ | ("--jobs" | "--workers" | "--json") :: [] ->
        usage ()
    | s :: rest when List.exists (fun x -> x.sec_name = s) sections ->
        wanted := s :: !wanted;
        parse rest
    | s :: _ ->
        Printf.eprintf "bench: unknown section or flag %S\n" s;
        usage ()
  in
  parse args;
  (* sweep-distrib spawns worker processes, so it is opt-in: run it
     only when named explicitly or when --workers asks for processes. *)
  let want s =
    if s.sec_name = "sweep-distrib" then
      List.mem s.sec_name !wanted || !distrib_workers > 0
    else !wanted = [] || List.mem s.sec_name !wanted
  in
  Interrupt.install ();
  let t0 = Unix.gettimeofday () in
  let entries = ref [] in
  let write_json ~interrupted =
    let total = Unix.gettimeofday () -. t0 in
    J.write_file !json_path
      (J.Obj
         [
           ("schema_version", J.Int 4);
           ("jobs", J.Int !jobs);
           ("cores_detected", J.Int (Domain.recommended_domain_count ()));
           ("profile", J.Bool (Prof.enabled ()));
           ("full", J.Bool !full);
           ("interrupted", J.Bool interrupted);
           ( "warm_cache_calls",
             J.Int (Prof.value (Prof.counter "spec.warm_calls")) );
           ("pool", Profjson.pool_totals (Pool.stats ()));
           ("sections", J.List (List.rev !entries));
           ("total_seconds", J.Float total);
         ])
  in
  let unhook =
    Interrupt.on_interrupt (fun () ->
        write_json ~interrupted:true;
        Printf.eprintf "bench: interrupted, partial results in %s\n%!"
          !json_path)
  in
  List.iter
    (fun s ->
      if want s then entries := exec_section ~jobs:!jobs ~full:!full s :: !entries)
    sections;
  unhook ();
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\n[total %.1fs]\n" total;
  write_json ~interrupted:false;
  Printf.printf "[wrote %s]\n" !json_path;
  match !mismatches with
  | [] -> ()
  | ms ->
      Printf.eprintf "bench: scalar/kernel/parallel results differ in: %s\n"
        (String.concat ", " (List.rev ms));
      exit 1
