(* rdca — command-line driver for reliability-driven DC assignment.

   Subcommands:
     stats      function statistics (Table-1 style) + reliability bounds
     assign     apply a DC assignment strategy to a .pla, write .pla
     synth      full flow: assignment, espresso, AIG, techmap; print report
     faultsim   gate-level fault-injection campaign vs input-error rates
     campaign   supervised multi-process fault campaign (checkpoint/resume)
     gen        generate a synthetic benchmark (.pla)
     estimate   analytical min-max reliability estimates vs exact bounds
     check      static lints + cover/netlist audits (text or JSON report)
     optimize   windowed ODC/SDC recovery + checked node rewriting
     testability SAT-based stuck-at testability + checked redundancy removal
     suite      list the built-in Table 1 benchmark suite
     bench      parallel-determinism smoke benchmark (JSON output, for CI)
     worker     serve supervised tasks over stdin/stdout (internal) *)

open Cmdliner
module Flow = Rdca_flow.Flow
module Distrib = Rdca_flow.Distrib
module Sup = Resilient.Supervisor
module Interrupt = Resilient.Interrupt

(* Resolve SPEC and run [f], turning every structured failure into a
   one-line stderr message and exit code 1 — no backtraces on bad
   input. *)
let with_spec input f =
  match Flow.load_spec input with
  | Ok spec -> f spec
  | Error e ->
      Fmt.epr "rdca: %s@." (Flow.error_to_string e);
      1

let jobs_arg =
  let doc =
    "Worker domains for parallel sections (overrides $(b,RDCA_JOBS); default: \
     the machine's recommended domain count)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Validate and install --jobs before running [k]. *)
let with_jobs_opt jobs k =
  match jobs with
  | Some n when n < 1 ->
      Fmt.epr "rdca: --jobs must be at least 1@.";
      1
  | _ ->
      Option.iter Parallel.Pool.set_default_jobs jobs;
      k ()

let input_arg =
  let doc =
    "Input function: a .pla file path, or the name of a built-in suite \
     benchmark (see $(b,rdca suite))."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)

let output_arg =
  let doc = "Output .pla path (defaults to stdout)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let emit_spec out spec =
  match out with
  | None -> print_string (Pla.to_string spec)
  | Some path -> Pla.write_file path spec

let emit_text out text =
  match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc

(* ------------------------------------------------------------------ *)
(* Backend-dispatched reliability analysis: stats and estimate take
   the full engine/sampling argument set; the synthesis-based commands
   take the engine alone (their --seed belongs to the campaign). *)

module Analysis = Reliability.Analysis

let analysis_backend_arg =
  let doc =
    "Error-rate analysis engine: $(b,auto) picks from the input count, \
     $(b,exhaustive) enumerates the dense table, $(b,bdd) is exact via \
     symbolic satcounts (no 2^n enumeration), $(b,sample) is seeded \
     Monte-Carlo with Wilson confidence intervals."
  in
  Arg.(
    value
    & opt (enum
             [ ("auto", Analysis.Auto); ("exhaustive", Analysis.Exhaustive);
               ("bdd", Analysis.Bdd_exact); ("sample", Analysis.Sampled) ])
        Analysis.Auto
    & info [ "analysis" ] ~docv:"ENGINE" ~doc)

let analysis_args =
  let samples =
    let doc = "Monte-Carlo draws per analysed output (sample engine)." in
    Arg.(
      value
      & opt int Analysis.default_params.Analysis.samples
      & info [ "samples" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Sampling seed (sample engine)." in
    Arg.(
      value
      & opt int Analysis.default_params.Analysis.seed
      & info [ "seed" ] ~docv:"S" ~doc)
  in
  let confidence =
    let doc = "Wilson interval confidence (sample engine)." in
    Arg.(
      value
      & opt float Analysis.default_params.Analysis.confidence
      & info [ "confidence" ] ~docv:"C" ~doc)
  in
  let combine backend samples seed confidence =
    ( backend,
      { Analysis.default_params with Analysis.samples; seed; confidence } )
  in
  Term.(const combine $ analysis_backend_arg $ samples $ seed $ confidence)

let analysis_arg_error params =
  if params.Analysis.samples <= 0 then Some "--samples must be positive"
  else if not (params.Analysis.confidence > 0.0 && params.Analysis.confidence < 1.0)
  then Some "--confidence must be strictly between 0 and 1"
  else None

(* Resolve SPEC into an analysis problem (dense when it fits, cube-level
   up to 61 inputs otherwise) and run [f]. *)
let with_problem input f =
  match Flow.load_problem input with
  | Ok t -> f t
  | Error e ->
      Fmt.epr "rdca: %s@." (Flow.error_to_string e);
      1

let stats_cmd =
  let run input (backend, params) jobs =
    with_jobs_opt jobs @@ fun () ->
    match analysis_arg_error params with
    | Some msg ->
        Fmt.epr "rdca: %s@." msg;
        1
    | None ->
        with_problem input @@ fun t ->
        let module A = Analysis in
        let resolved = A.resolve ~params t backend in
        Fmt.pr "inputs:   %d@." (A.ni t);
        Fmt.pr "outputs:  %d@." (A.no t);
        Fmt.pr "analysis: %s%s@."
          (A.backend_name resolved)
          (if backend = A.Auto then " (auto)" else "");
        let no = A.no t in
        let fdc_sum = ref 0.0 and ecf_sum = ref 0.0 and cf_sum = ref 0.0 in
        let rows =
          List.init no (fun o ->
              let f1, f0, fdc = A.signal_probs ~params ~backend t ~o in
              let cf = A.complexity_factor ~params ~backend t ~o in
              let e1 = A.value_est f1
              and e0 = A.value_est f0
              and edc = A.value_est fdc in
              fdc_sum := !fdc_sum +. edc;
              ecf_sum := !ecf_sum +. (e1 *. e1) +. (e0 *. e0) +. (edc *. edc);
              cf_sum := !cf_sum +. A.value_est cf;
              (o, e1, e0, edc, A.value_est cf))
        in
        Fmt.pr "%%DC:      %.1f@." (100.0 *. !fdc_sum /. float_of_int no);
        Fmt.pr "E[C^f]:   %.3f@." (!ecf_sum /. float_of_int no);
        Fmt.pr "C^f:      %.3f@." (!cf_sum /. float_of_int no);
        let b = A.mean_bounds ~params ~backend t in
        Fmt.pr "error-rate bounds: base=%a  min=%a  max=%a@." A.pp_value
          b.A.base A.pp_value (A.min_rate b) A.pp_value (A.max_rate b);
        List.iter
          (fun (o, f1, f0, fdc, cf) ->
            Fmt.pr "  y%d: f1=%.3f f0=%.3f fdc=%.3f C^f=%.3f@." o f1 f0 fdc cf)
          rows;
        0
  in
  let doc = "Print function statistics and reliability bounds" in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ input_arg $ analysis_args $ jobs_arg)

let strategy_args =
  let method_ =
    let doc = "Assignment method: ranking | lcf | complete | conventional." in
    Arg.(
      value
      & opt (enum
               [ ("ranking", `Ranking); ("lcf", `Lcf); ("complete", `Complete);
                 ("conventional", `Conventional) ])
          `Ranking
      & info [ "m"; "method" ] ~docv:"METHOD" ~doc)
  in
  let fraction =
    let doc = "Fraction of ranked DCs to assign (ranking method)." in
    Arg.(value & opt float 1.0 & info [ "f"; "fraction" ] ~docv:"F" ~doc)
  in
  let threshold =
    let doc = "Local-complexity-factor threshold (lcf method)." in
    Arg.(value & opt float 0.55 & info [ "t"; "threshold" ] ~docv:"T" ~doc)
  in
  let combine m f t =
    match m with
    | `Ranking -> Rdca_flow.Flow.Ranking f
    | `Lcf -> Rdca_flow.Flow.Lcf t
    | `Complete -> Rdca_flow.Flow.Complete
    | `Conventional -> Rdca_flow.Flow.Conventional
  in
  Term.(const combine $ method_ $ fraction $ threshold)

let assign_cmd =
  let run input out strategy finish =
    with_spec input @@ fun spec ->
    let partial = Flow.apply_strategy strategy spec in
    let result = if finish then fst (Flow.implement partial) else partial in
    emit_spec out result;
    0
  in
  let finish =
    let doc =
      "Also assign the remaining DCs conventionally (espresso), producing a \
       fully specified function."
    in
    Arg.(value & flag & info [ "finish" ] ~doc)
  in
  let doc = "Apply a reliability-driven DC assignment and write the .pla" in
  Cmd.v (Cmd.info "assign" ~doc)
    Term.(const run $ input_arg $ output_arg $ strategy_args $ finish)

let mode_arg =
  let doc = "Optimisation mode: delay | area | power." in
  Arg.(
    value
    & opt (enum
             [ ("delay", Techmap.Mapper.Delay); ("area", Techmap.Mapper.Area);
               ("power", Techmap.Mapper.Power) ])
        Techmap.Mapper.Delay
    & info [ "mode" ] ~docv:"MODE" ~doc)

let cube_budget_arg =
  let doc =
    "Espresso cube budget: outputs whose raw cover exceeds $(docv) cubes \
     keep the unminimized cover (graceful degradation)."
  in
  Arg.(
    value & opt (some int) None & info [ "cube-budget" ] ~docv:"N" ~doc)

let espresso_seconds_arg =
  let doc =
    "Espresso wall-clock budget in seconds; outputs reached after it keep \
     the unminimized cover."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "espresso-seconds" ] ~docv:"SECS" ~doc)

let report_degradations r =
  List.iter
    (fun d -> Fmt.pr "degraded:        %s@." (Flow.degradation_to_string d))
    r.Flow.degradations

let synth_cmd =
  let run input strategy mode verify factored shared blif_out verilog_out
      max_cubes max_seconds analysis jobs =
    with_jobs_opt jobs @@ fun () ->
    with_spec input @@ fun spec ->
    let budget = { Flow.max_cubes; max_seconds } in
    let result =
      try
        Ok
          (if shared then Flow.synthesize_shared ~mode ~strategy spec
           else if verify then
             Flow.verified_synthesize ~analysis ~factored ~budget ~mode
               ~strategy spec
           else Flow.synthesize ~analysis ~factored ~budget ~mode ~strategy spec)
      with
      | Invalid_argument msg | Failure msg ->
          Error (Flow.Synthesis_failure msg)
    in
    match result with
    | Error e ->
        Fmt.epr "rdca: %s@." (Flow.error_to_string e);
        1
    | Ok r ->
        Fmt.pr "strategy:        %s@." (Flow.strategy_name strategy);
        Fmt.pr "mode:            %s%s%s@."
          (Techmap.Mapper.mode_name mode)
          (if factored then " +factored" else "")
          (if shared then " +shared" else "");
        Fmt.pr "assigned DCs:    %.1f%%@." (100.0 *. r.Flow.assigned_fraction);
        Fmt.pr "SOP cubes:       %d@." r.Flow.sop_cubes;
        Fmt.pr "error rate:      %.4f@." r.Flow.error_rate;
        Fmt.pr "report:          %a@." Techmap.Report.pp r.Flow.report;
        report_degradations r;
        (* The mapped netlist rides along in the result record; export
           is a plain write, not a rebuild. *)
        Option.iter
          (fun p -> Netlist_io.Blif.write_netlist p r.Flow.netlist)
          blif_out;
        Option.iter
          (fun p -> Netlist_io.Verilog.write_netlist p r.Flow.netlist)
          verilog_out;
        0
  in
  let verify =
    let doc = "Exhaustively verify the mapped netlist against the spec." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let factored =
    let doc = "Algebraically factor covers before AIG construction." in
    Arg.(value & flag & info [ "factored" ] ~doc)
  in
  let shared =
    let doc = "Use multi-output (shared-cube) espresso." in
    Arg.(value & flag & info [ "shared" ] ~doc)
  in
  let blif_out =
    let doc = "Also write the mapped netlist as BLIF." in
    Arg.(value & opt (some string) None & info [ "blif" ] ~docv:"FILE" ~doc)
  in
  let verilog_out =
    let doc = "Also write the mapped netlist as structural Verilog." in
    Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"FILE" ~doc)
  in
  let doc = "Run the full synthesis flow and print metrics" in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const run $ input_arg $ strategy_args $ mode_arg $ verify $ factored
      $ shared $ blif_out $ verilog_out $ cube_budget_arg
      $ espresso_seconds_arg $ analysis_backend_arg $ jobs_arg)

(* Shared by faultsim and campaign: positive/float flag validation and
   supervised-campaign argument bundles. *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let trials_arg =
  let doc = "Monte-Carlo trials per fault site (and per kind)." in
  Arg.(value & opt int 1000 & info [ "trials" ] ~docv:"N" ~doc)

let max_sites_arg =
  let doc = "Evaluate at most $(docv) fault sites (seeded subsample)." in
  Arg.(value & opt (some int) None & info [ "max-sites" ] ~docv:"N" ~doc)

let confidence_arg =
  let doc = "Confidence level for the Wilson intervals." in
  Arg.(value & opt float 0.95 & info [ "confidence" ] ~docv:"C" ~doc)

let checkpoint_arg =
  let doc =
    "Write a JSON checkpoint of completed site shards to $(docv) after every \
     shard (and on SIGINT/SIGTERM, marked interrupted)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Load the $(b,--checkpoint) file and skip shards it already contains \
     (ignored unless its fingerprint matches this exact run)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let campaign_arg_error ~trials ~confidence ~max_sites =
  if trials <= 0 then Some "--trials must be positive"
  else if not (confidence > 0.0 && confidence < 1.0) then
    Some "--confidence must be strictly between 0 and 1"
  else
    match max_sites with
    | Some n when n <= 0 -> Some "--max-sites must be positive"
    | _ -> None

let skip_untestable_arg =
  let doc =
    "Statically analyse testability first ($(b,rdca testability)) and \
     exclude sites whose every swept fault kind is untestable: their \
     faults cannot reach an output, so they contribute exactly zero \
     propagated events and only dilute the site budget."
  in
  Arg.(value & flag & info [ "skip-untestable" ] ~doc)

(* Sites where every configured kind is statically dead: a stuck-at is
   dead when its stem fault is untestable, a transient when both
   polarities are (flipping the node is pinning it to one of them on
   every trial input). *)
let dead_sites_for nl kinds =
  let report = Atpg.Engine.analyze nl in
  let tbl = Atpg.Engine.verdict_table report in
  let untestable node stuck =
    match
      Hashtbl.find_opt tbl { Atpg.Fault.node; pin = Atpg.Fault.Stem; stuck }
    with
    | Some r -> r.Atpg.Engine.verdict = Atpg.Engine.Untestable
    | None -> false
  in
  List.filter
    (fun s ->
      List.for_all
        (function
          | Reliability.Inject.Stuck_at_0 -> untestable s false
          | Reliability.Inject.Stuck_at_1 -> untestable s true
          | Reliability.Inject.Transient ->
              untestable s false && untestable s true)
        kinds)
    (Reliability.Inject.sites nl)

(* One file per (run, strategy): the checkpoint fingerprint would
   reject cross-strategy reuse anyway, but distinct paths keep both
   strategies of a faultsim resumable. *)
let checkpoint_path_for base strategy =
  let tag =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '-')
      (Flow.strategy_name strategy)
  in
  base ^ "." ^ tag

let print_events events =
  List.iter (fun e -> Fmt.pr "supervision:     %a@." Resilient.Event.pp e) events

let exec_mode_name = function
  | Sup.Processes n -> Printf.sprintf "%d worker process(es)" n
  | Sup.Pool n -> Printf.sprintf "in-process pool (%d jobs)" n
  | Sup.Sequential -> "sequential"

let faultsim_cmd =
  let module Campaign = Reliability.Campaign in
  let module Fault_sim = Reliability.Fault_sim in
  let module J = Rdca_json.Jsonout in
  let run input strategy mode seed trials max_sites time_budget confidence
      max_cubes max_seconds no_baseline skip_untestable workers checkpoint
      resume json_out analysis jobs =
    with_jobs_opt jobs @@ fun () ->
    with_spec input @@ fun spec ->
    let bad_arg =
      match campaign_arg_error ~trials ~confidence ~max_sites with
      | Some m -> Some m
      | None ->
          if resume && checkpoint = None then
            Some "--resume needs --checkpoint (nothing to resume from)"
          else None
    in
    match bad_arg with
    | Some msg ->
        Fmt.epr "rdca: %s@." msg;
        1
    | None ->
    Interrupt.install ();
    let budget = { Flow.max_cubes; max_seconds } in
    let strategies =
      if no_baseline || strategy = Flow.Conventional then [ strategy ]
      else [ Flow.Conventional; strategy ]
    in
    (* Per-strategy campaign JSON documents accumulate here; a signal
       mid-run flushes what exists, marked interrupted. *)
    let docs = ref [] in
    let write_json ~interrupted =
      Option.iter
        (fun path ->
          J.write_file path
            (J.Obj
               [
                 ("schema_version", J.Int 1);
                 ("benchmark", J.String input);
                 ("interrupted", J.Bool interrupted);
                 ( "strategies",
                   J.List
                     (List.rev_map
                        (fun (name, doc) ->
                          J.Obj [ ("strategy", J.String name); ("campaign", doc) ])
                        !docs) );
               ]))
        json_out
    in
    let unhook = Interrupt.on_interrupt (fun () -> write_json ~interrupted:true) in
    Fmt.pr "benchmark:       %s  (%d in, %d out, %.1f%% DC)@." input
      (Pla.Spec.ni spec) (Pla.Spec.no spec)
      (100.0 *. Pla.Spec.dc_fraction spec);
    Fmt.pr "campaign:        seed %d, %d trials/site, %.0f%% confidence%s%s%s@."
      seed trials (100.0 *. confidence)
      (match max_sites with
      | None -> ""
      | Some n -> Printf.sprintf ", <= %d sites" n)
      (match time_budget with
      | None -> ""
      | Some s -> Printf.sprintf ", %.2fs budget" s)
      (match workers with
      | None -> ""
      | Some w -> Printf.sprintf ", %d worker process(es)" w);
    let failed = ref false in
    List.iter
      (fun strategy ->
        Fmt.pr "@.=== strategy: %s ===@." (Flow.strategy_name strategy);
        match Flow.synthesize_result ~analysis ~budget ~mode ~strategy spec with
        | Error e ->
            failed := true;
            Fmt.epr "rdca: %s@." (Flow.error_to_string e)
        | Ok r -> (
            report_degradations r;
            let nl = r.Flow.netlist in
            Fmt.pr "gates:           %d  (area %.0f, delay %.3f)@."
              (Netlist.gate_count nl) (Netlist.area nl) (Netlist.delay nl);
            let rng = Random.State.make [| seed |] in
            let mc = Fault_sim.run ~rng ~trials spec nl in
            Fmt.pr "input-error:     exact %.4f   monte-carlo %.4f@."
              r.Flow.error_rate mc.Fault_sim.rate;
            let config =
              {
                Campaign.default_config with
                Campaign.seed;
                trials_per_site = trials;
                confidence;
                max_sites;
                time_budget;
              }
            in
            let config =
              if not skip_untestable then config
              else begin
                let dead = dead_sites_for nl config.Campaign.kinds in
                Fmt.pr "skip-untestable: %d statically-dead site(s) excluded@."
                  (List.length dead);
                { config with Campaign.dead_sites = dead }
              end
            in
            match workers with
            | None -> (
                match Campaign.run config spec nl with
                | report ->
                    Fmt.pr "%a@." Campaign.pp_report report;
                    docs :=
                      ( Flow.strategy_name strategy,
                        Distrib.campaign_report_to_json report ~events:[]
                          ~interrupted:false )
                      :: !docs;
                    write_json ~interrupted:false
                | exception Invalid_argument msg ->
                    failed := true;
                    Fmt.epr "rdca: %s@." msg)
            | Some w -> (
                let opts =
                  {
                    Distrib.default_campaign_opts with
                    Distrib.sup =
                      {
                        Sup.default with
                        Sup.workers = w;
                        (* Exec spawning survives earlier parallel
                           regions; OCaml 5 forbids fork once any
                           domain has been spawned. *)
                        spawn = Sup.Exec [| Sys.executable_name; "worker" |];
                      };
                    checkpoint =
                      Option.map
                        (fun base -> checkpoint_path_for base strategy)
                        checkpoint;
                    resume;
                  }
                in
                (* The supervised path ignores --time-budget: deadlines
                   and checkpoints are its budgeting mechanism. *)
                let config = { config with Campaign.time_budget = None } in
                match
                  Distrib.campaign_run opts ~input ~strategy ~mode config spec
                    nl
                with
                | Error msg ->
                    failed := true;
                    Fmt.epr "rdca: %s@." msg
                | Ok d ->
                    print_events d.Distrib.events;
                    Fmt.pr "execution:       %s@."
                      (exec_mode_name d.Distrib.exec_mode);
                    Fmt.pr "%a@." Campaign.pp_report d.Distrib.value;
                    if d.Distrib.interrupted then failed := true;
                    docs :=
                      ( Flow.strategy_name strategy,
                        Distrib.campaign_report_to_json d.Distrib.value
                          ~events:d.Distrib.events
                          ~interrupted:d.Distrib.interrupted )
                      :: !docs;
                    write_json ~interrupted:false)))
      strategies;
    unhook ();
    if !failed then 1 else 0
  in
  let time_budget =
    let doc =
      "Wall-clock budget for the campaign in seconds; exceeding it yields a \
       partial report instead of an error (in-process campaigns only)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECS" ~doc)
  in
  let no_baseline =
    let doc = "Skip the conventional-strategy baseline comparison." in
    Arg.(value & flag & info [ "no-baseline" ] ~doc)
  in
  let workers =
    let doc =
      "Run the campaign as $(docv) supervised worker processes (see \
       $(b,rdca campaign) for the full set of supervision knobs)."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"K" ~doc)
  in
  let json_out =
    let doc = "Write the campaign reports as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Gate-level fault-injection campaign: stuck-at-0/1 and transient faults \
     at every internal node, compared against the paper's input-error rate, \
     per assignment strategy"
  in
  Cmd.v (Cmd.info "faultsim" ~doc)
    Term.(
      const run $ input_arg $ strategy_args $ mode_arg $ seed_arg $ trials_arg
      $ max_sites_arg $ time_budget $ confidence_arg $ cube_budget_arg
      $ espresso_seconds_arg $ no_baseline $ skip_untestable_arg $ workers
      $ checkpoint_arg $ resume_arg $ json_out $ analysis_backend_arg
      $ jobs_arg)

(* The supervised campaign subcommand: one strategy, full control over
   the supervisor (workers, deadlines, retries, chaos), shard
   checkpointing and resume.  Exit codes: 0 complete, 3 partial
   (interrupted or permanently failed shards), 1 errors. *)
let campaign_cmd =
  let module Campaign = Reliability.Campaign in
  let module J = Rdca_json.Jsonout in
  let run input strategy mode seed trials max_sites confidence skip_untestable
      workers shard_size deadline retries backoff spawn_fork checkpoint resume
      stop_after chaos chaos_seed json_out analysis jobs =
    with_jobs_opt jobs @@ fun () ->
    with_spec input @@ fun spec ->
    let bad_arg =
      match campaign_arg_error ~trials ~confidence ~max_sites with
      | Some m -> Some m
      | None ->
          if shard_size < 1 then Some "--shard-size must be at least 1"
          else if retries < 0 then Some "--retries must be non-negative"
          else if not (chaos >= 0.0 && chaos <= 1.0) then
            Some "--chaos must be between 0 and 1"
          else if chaos > 0.0 && deadline <= 0.0 then
            Some "--chaos needs a positive --deadline (stalled workers are \
                  only recovered by the per-task deadline)"
          else if resume && checkpoint = None then
            Some "--resume needs --checkpoint (nothing to resume from)"
          else None
    in
    match bad_arg with
    | Some msg ->
        Fmt.epr "rdca: %s@." msg;
        1
    | None -> (
        Interrupt.install ();
        match Flow.synthesize_result ~analysis ~mode ~strategy spec with
        | Error e ->
            Fmt.epr "rdca: %s@." (Flow.error_to_string e);
            1
        | Ok r -> (
            let nl = r.Flow.netlist in
            let config =
              {
                Campaign.default_config with
                Campaign.seed;
                trials_per_site = trials;
                confidence;
                max_sites;
                time_budget = None;
              }
            in
            let config =
              if not skip_untestable then config
              else begin
                let dead = dead_sites_for nl config.Campaign.kinds in
                Fmt.pr "skip-untestable: %d statically-dead site(s) excluded@."
                  (List.length dead);
                { config with Campaign.dead_sites = dead }
              end
            in
            let sup =
              {
                Sup.default with
                Sup.workers;
                spawn =
                  (* Exec is the robust default: OCaml 5 forbids fork
                     once any domain has been spawned (e.g. by the
                     synthesis step's pool at --jobs > 1). *)
                  (if spawn_fork then Sup.Fork
                   else Sup.Exec [| Sys.executable_name; "worker" |]);
                deadline;
                retries;
                backoff;
                chaos =
                  (if chaos > 0.0 then
                     Some
                       {
                         Sup.kill_fraction = chaos /. 2.0;
                         stall_fraction = chaos /. 2.0;
                         chaos_seed;
                       }
                   else None);
              }
            in
            let opts =
              { Distrib.sup; shard_size; checkpoint; resume; stop_after }
            in
            Fmt.pr "benchmark:       %s  (%d in, %d out)@." input
              (Pla.Spec.ni spec) (Pla.Spec.no spec);
            Fmt.pr "strategy:        %s, %s mode@."
              (Flow.strategy_name strategy)
              (Techmap.Mapper.mode_name mode);
            Fmt.pr
              "supervision:     %d worker(s), shard %d, deadline %.1fs, %d \
               retries%s@."
              workers shard_size deadline retries
              (if chaos > 0.0 then Printf.sprintf ", chaos %.2f" chaos else "");
            match
              Distrib.campaign_run opts ~input ~strategy ~mode config spec nl
            with
            | Error msg ->
                Fmt.epr "rdca: %s@." msg;
                1
            | Ok d ->
                print_events d.Distrib.events;
                Fmt.pr "execution:       %s@."
                  (exec_mode_name d.Distrib.exec_mode);
                Fmt.pr "%a@." Campaign.pp_report d.Distrib.value;
                Option.iter
                  (fun path ->
                    J.write_file path
                      (Distrib.campaign_report_to_json d.Distrib.value
                         ~events:d.Distrib.events
                         ~interrupted:d.Distrib.interrupted))
                  json_out;
                if d.Distrib.interrupted then 3 else 0))
  in
  let workers =
    let doc =
      "Supervised worker processes; 0 runs the shards in-process on the \
       domain pool."
    in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"K" ~doc)
  in
  let shard_size =
    let doc = "Fault sites per shard (the unit of distribution and retry)." in
    Arg.(value & opt int 4 & info [ "shard-size" ] ~docv:"N" ~doc)
  in
  let deadline =
    let doc =
      "Per-shard wall-clock deadline in seconds; 0 disables.  A worker \
       exceeding it is killed and the shard retried."
    in
    Arg.(value & opt float 60.0 & info [ "deadline" ] ~docv:"SECS" ~doc)
  in
  let retries =
    let doc = "Extra attempts per shard after the first." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff =
    let doc =
      "Base retry backoff in seconds (doubled per attempt, with jitter)."
    in
    Arg.(value & opt float 0.25 & info [ "backoff" ] ~docv:"SECS" ~doc)
  in
  let spawn_fork =
    let doc =
      "Fork workers from the current process instead of spawning fresh \
       $(b,rdca worker) images (the default).  Forked workers inherit the \
       synthesized netlist instead of re-synthesizing it, but OCaml 5 \
       forbids forking after any parallel region has run — the run then \
       degrades to in-process execution."
    in
    Arg.(value & flag & info [ "spawn-fork" ] ~doc)
  in
  let stop_after =
    let doc =
      "Stop after $(docv) new shards and write an interrupted checkpoint — \
       for exercising $(b,--resume)."
    in
    Arg.(value & opt (some int) None & info [ "stop-after" ] ~docv:"N" ~doc)
  in
  let chaos =
    let doc =
      "Chaos test mode: sabotage this fraction of first shard attempts \
       (half killed mid-task, half stalled past the deadline).  Results \
       must still be bit-identical to an undisturbed run."
    in
    Arg.(value & opt float 0.0 & info [ "chaos" ] ~docv:"F" ~doc)
  in
  let chaos_seed =
    let doc = "Seed for the chaos-injection hash." in
    Arg.(value & opt int 7 & info [ "chaos-seed" ] ~docv:"S" ~doc)
  in
  let json_out =
    let doc = "Write the campaign report (with supervision log) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Supervised multi-process fault-injection campaign with deadlines, \
     retry/backoff, checkpoint/resume and chaos testing"
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ input_arg $ strategy_args $ mode_arg $ seed_arg $ trials_arg
      $ max_sites_arg $ confidence_arg $ skip_untestable_arg $ workers
      $ shard_size $ deadline $ retries $ backoff $ spawn_fork
      $ checkpoint_arg $ resume_arg $ stop_after $ chaos $ chaos_seed
      $ json_out $ analysis_backend_arg $ jobs_arg)

(* Worker side of the supervision protocol: a frame loop on
   stdin/stdout executing Distrib.dispatch.  Spawned by the campaign
   and faultsim supervisors; of no use interactively. *)
let worker_cmd =
  let run () =
    (* Tasks are the unit of parallelism; each worker computes
       sequentially. *)
    Parallel.Pool.set_default_jobs 1;
    Resilient.Worker.serve ~handler:Distrib.dispatch ~input:Unix.stdin
      ~output:Unix.stdout ();
    0
  in
  let doc = "Serve supervised campaign/sweep tasks over stdin/stdout (internal)" in
  Cmd.v (Cmd.info "worker" ~doc) Term.(const run $ const ())

let gen_cmd =
  let run ni no dc cf seed on_cubes dc_cubes lit_prob out =
    let rng = Random.State.make [| seed |] in
    if ni > 20 then
      (* Beyond the dense table: generate at the cube level, the input
         format of the symbolic and sampled analysis backends. *)
      if ni > 61 then begin
        Fmt.epr "rdca: --ni must be at most 61@.";
        1
      end
      else begin
        let sets =
          Synthetic.Synth_gen.random_cover_sets ~rng ~ni ~no ~on_cubes
            ~dc_cubes ~lit_prob
        in
        let pairs =
          List.map
            (function
              | Pla.Fd_sets { on; dc } -> (on, dc)
              | Pla.Fr_sets _ -> assert false)
            sets
        in
        emit_text out (Pla.to_string_covers ~ni pairs);
        0
      end
    else begin
      let params =
        Synthetic.Synth_gen.default_params ~ni ~dc_frac:dc ~target_cf:cf
      in
      let spec = Synthetic.Synth_gen.spec ~rng ~no params in
      emit_spec out spec;
      0
    end
  in
  let ni = Arg.(value & opt int 8 & info [ "ni" ] ~docv:"N" ~doc:"Inputs.") in
  let no = Arg.(value & opt int 4 & info [ "no" ] ~docv:"N" ~doc:"Outputs.") in
  let dc =
    Arg.(
      value
      & opt float 0.6
      & info [ "dc" ] ~docv:"F" ~doc:"DC fraction (dense mode, ni <= 20).")
  in
  let cf =
    Arg.(
      value
      & opt (some float) None
      & info [ "cf" ] ~docv:"C"
          ~doc:"Target complexity factor (dense mode, optional).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")
  in
  let on_cubes =
    Arg.(
      value
      & opt int 6
      & info [ "on-cubes" ] ~docv:"N"
          ~doc:"On-set cubes per output (cube mode, ni > 20).")
  in
  let dc_cubes =
    Arg.(
      value
      & opt int 4
      & info [ "dc-cubes" ] ~docv:"N"
          ~doc:"DC-set cubes per output (cube mode, ni > 20).")
  in
  let lit_prob =
    Arg.(
      value
      & opt float 0.55
      & info [ "lit-prob" ] ~docv:"P"
          ~doc:"Probability a cube fixes each variable (cube mode).")
  in
  let doc =
    "Generate a synthetic benchmark (.pla; cube-level beyond 20 inputs)"
  in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(
      const run $ ni $ no $ dc $ cf $ seed $ on_cubes $ dc_cubes $ lit_prob
      $ output_arg)

let estimate_cmd =
  let run input (backend, params) jobs =
    with_jobs_opt jobs @@ fun () ->
    match analysis_arg_error params with
    | Some msg ->
        Fmt.epr "rdca: %s@." msg;
        1
    | None ->
        with_problem input @@ fun t ->
        let module A = Analysis in
        let module Est = Reliability.Estimate in
        let resolved = A.resolve ~params t backend in
        Fmt.pr "analysis:       %s@." (A.backend_name resolved);
        let b = A.mean_bounds ~params ~backend t in
        Fmt.pr "%s bounds:   [%a, %a]@."
          (match resolved with A.Sampled -> "sampled" | _ -> "exact  ")
          A.pp_value (A.min_rate b) A.pp_value (A.max_rate b);
        let s = A.mean_signal_interval ~params ~backend t in
        let bo = A.mean_border_interval ~params ~backend t in
        Fmt.pr "signal-based:   [%.4f, %.4f]@." s.Est.lo s.Est.hi;
        Fmt.pr "border-based:   [%.4f, %.4f]@." bo.Est.lo bo.Est.hi;
        0
  in
  let doc = "Analytical min-max reliability estimates vs exact bounds" in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(const run $ input_arg $ analysis_args $ jobs_arg)

(* Static checking: spec lints, then (unless --lint-only) a synthesis
   run whose covers and netlist are audited against the *original*
   care set.  Prints a compiler-style report; optionally writes the
   same report as JSON for CI consumption.  Exit 1 iff any
   error-severity diagnostic. *)
let equiv_engine_arg =
  let doc = "Care-set equivalence engine: auto | exhaustive | bdd." in
  Arg.(
    value
    & opt (enum
             [ ("auto", Check.Netlist_check.Auto);
               ("exhaustive", Check.Netlist_check.Exhaustive);
               ("bdd", Check.Netlist_check.Bdd_backed) ])
        Check.Netlist_check.Auto
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let check_cutoff_arg =
  let doc =
    "Input count up to which the $(b,auto) equivalence engine simulates \
     exhaustively; beyond it the BDD engine takes over."
  in
  Arg.(
    value
    & opt int Check.Netlist_check.default_auto_cutoff
    & info [ "check-cutoff" ] ~docv:"N" ~doc)

let max_diags_arg =
  let doc =
    "Flood-control cap: keep at most $(docv) diagnostics per analyzer (plus \
     one summary line counting the rest), overriding the built-in \
     per-analyzer defaults."
  in
  Arg.(value & opt (some int) None & info [ "max-diags" ] ~docv:"N" ~doc)

let check_cmd =
  let module Diag = Check.Diag in
  let module J = Rdca_json.Jsonout in
  let json_arg =
    let doc = "Write the diagnostic report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let lint_only_arg =
    let doc = "Stop after the spec lints (no synthesis)." in
    Arg.(value & flag & info [ "lint-only" ] ~doc)
  in
  let emit input json diags =
    let diags = Diag.sort diags in
    Fmt.pr "%a@." Diag.pp_report diags;
    Option.iter
      (fun path ->
        J.write_file path
          (Diag.report_to_json ~meta:[ ("subject", J.String input) ] diags))
      json;
    if Diag.has_errors diags then 1 else 0
  in
  let run input strategy mode engine cutoff max_diags lint_only json jobs =
    with_jobs_opt jobs @@ fun () ->
    if cutoff < 0 then begin
      Fmt.epr "rdca: --check-cutoff must be non-negative@.";
      1
    end
    else if (match max_diags with Some n -> n < 0 | None -> false) then begin
      Fmt.epr "rdca: --max-diags must be non-negative@.";
      1
    end
    else begin
    Diag.set_max_diags max_diags;
    match Flow.load_source input with
    | Error (Flow.Check_failed { diags; _ }) ->
        (* The load itself was refused (on/off overlap): that IS the
           check result, so report it through the normal channel. *)
        emit input json diags
    | Error e ->
        Fmt.epr "rdca: %s@." (Flow.error_to_string e);
        1
    | Ok src ->
        let lint = Flow.lint_source src in
        if lint_only || Diag.has_errors lint then emit input json lint
        else begin
          match Flow.synthesize_result ~mode ~strategy src.Flow.spec with
          | Error e ->
              Fmt.epr "rdca: %s@." (Flow.error_to_string e);
              1
          | Ok r ->
              let spec = src.Flow.spec in
              let cover_diags =
                Check.Cover_check.check_covers ~include_redundancy:true ~spec
                  r.Flow.covers
              in
              let structure = Check.Netlist_check.check r.Flow.netlist in
              let equiv_diags =
                Check.Netlist_check.equiv_spec ~engine ~auto_cutoff:cutoff
                  ~spec r.Flow.netlist
              in
              emit input json (lint @ cover_diags @ structure @ equiv_diags)
        end
    end
  in
  let doc = "Statically check a spec and its synthesized implementation" in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ input_arg $ strategy_args $ mode_arg $ equiv_engine_arg
      $ check_cutoff_arg $ max_diags_arg $ lint_only_arg $ json_arg $ jobs_arg)

(* Post-mapping don't-care recovery: synthesize, sweep the windowed
   ODC/SDC analysis over the mapped netlist, rewrite node functions on
   their DC patterns, and prove the rewrite preserved the care set.
   Exit 1 on any structured failure — including a SAT/BDD engine
   disagreement under --dc-backend differential. *)
let optimize_cmd =
  let module Dc = Rdca_dc.Dc in
  let module Diag = Check.Diag in
  let module J = Rdca_json.Jsonout in
  let dc_window_arg =
    let doc = "Window TFI/TFO depth for don't-care extraction." in
    Arg.(
      value
      & opt int Dc.default_config.Dc.depth
      & info [ "dc-window" ] ~docv:"K" ~doc)
  in
  let dc_backend_arg =
    let doc =
      "Window engine: auto | sat | bdd | differential (run both, fail on any \
       mismatch)."
    in
    Arg.(
      value
      & opt (enum
               [ ("auto", Dc.Auto); ("sat", Dc.Sat_engine);
                 ("bdd", Dc.Bdd_engine); ("differential", Dc.Differential) ])
          Dc.Auto
      & info [ "dc-backend" ] ~docv:"ENGINE" ~doc)
  in
  let dc_strategy_args =
    let method_ =
      let doc = "DC re-assignment method: ranking | lcf | complete." in
      Arg.(
        value
        & opt (enum
                 [ ("ranking", `Ranking); ("lcf", `Lcf);
                   ("complete", `Complete) ])
            `Complete
        & info [ "dc-strategy" ] ~docv:"METHOD" ~doc)
    in
    let fraction =
      let doc = "Fraction of ranked DC patterns to assign (ranking)." in
      Arg.(value & opt float 1.0 & info [ "dc-fraction" ] ~docv:"F" ~doc)
    in
    let threshold =
      let doc = "Local-complexity-factor threshold (lcf)." in
      Arg.(value & opt float 0.55 & info [ "dc-threshold" ] ~docv:"T" ~doc)
    in
    let combine m f t =
      match m with
      | `Ranking -> Dc.Ranking f
      | `Lcf -> Dc.Lcf t
      | `Complete -> Dc.Complete
    in
    Term.(const combine $ method_ $ fraction $ threshold)
  in
  let json_arg =
    let doc = "Write the DC-extraction report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run input strategy mode depth backend dc_strategy engine cutoff json jobs
      =
    with_jobs_opt jobs @@ fun () ->
    if depth < 1 then begin
      Fmt.epr "rdca: --dc-window must be at least 1@.";
      1
    end
    else if cutoff < 0 then begin
      Fmt.epr "rdca: --check-cutoff must be non-negative@.";
      1
    end
    else
      with_spec input @@ fun spec ->
      match Flow.synthesize_result ~mode ~strategy spec with
      | Error e ->
          Fmt.epr "rdca: %s@." (Flow.error_to_string e);
          1
      | Ok r -> (
          let config = { Dc.default_config with Dc.depth; backend } in
          match
            Flow.optimize_checked ~config ~dc_strategy ~equiv:engine
              ~auto_cutoff:cutoff ~spec r.Flow.netlist
          with
          | Error (Flow.Check_failed { diags; _ }) ->
              Fmt.pr "%a@." Diag.pp_report diags;
              1
          | Error e ->
              Fmt.epr "rdca: %s@." (Flow.error_to_string e);
              1
          | Ok (opt, equiv_diags) ->
              let rep = opt.Dc.opt_report in
              Fmt.pr "backend:         %s, window depth %d@."
                (Dc.backend_name backend) depth;
              Fmt.pr "dc strategy:     %s@." (Dc.strategy_name dc_strategy);
              Fmt.pr "nodes analyzed:  %d (%d skipped over-arity)@."
                rep.Dc.analyzed rep.Dc.skipped;
              Fmt.pr "nodes with DC:   %d@." rep.Dc.nodes_with_dc;
              Fmt.pr "SDC patterns:    %d@." rep.Dc.sdc_patterns;
              Fmt.pr "ODC patterns:    %d@." rep.Dc.odc_patterns;
              if backend = Dc.Differential then
                Fmt.pr "backends agree:  yes (%d window(s))@." rep.Dc.analyzed;
              Fmt.pr "rewritten:       %d node(s)@."
                (List.length opt.Dc.rewritten);
              Fmt.pr "check:           care-set equivalence OK (%d warning(s))@."
                (Diag.count Diag.Warn equiv_diags);
              Option.iter
                (fun path -> J.write_file path (Dc.opt_result_to_json opt))
                json;
              0)
  in
  let doc = "Recover windowed network don't cares and rewrite node functions" in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const run $ input_arg $ strategy_args $ mode_arg $ dc_window_arg
      $ dc_backend_arg $ dc_strategy_args $ equiv_engine_arg
      $ check_cutoff_arg $ json_arg $ jobs_arg)

(* Static stuck-at testability analysis: synthesize, enumerate and
   collapse the fault universe, decide every class with the selected
   backend, report untestable faults / inadmissible outputs / SCOAP
   summaries, and optionally remove the redundant lines behind
   untestable faults under the same care-set equivalence gate as
   optimize.  Exit 1 on any error diagnostic (inadmissible output,
   backend mismatch) or failed removal check. *)
let testability_cmd =
  let module Diag = Check.Diag in
  let module J = Rdca_json.Jsonout in
  let module Engine = Atpg.Engine in
  let backend_arg =
    let doc =
      "Test-generation engine: auto | sat | exhaustive | bdd | differential \
       (SAT plus a reference engine on every fault, fail on any verdict \
       mismatch)."
    in
    Arg.(
      value
      & opt (enum
               [ ("auto", Engine.Auto); ("sat", Engine.Sat_engine);
                 ("exhaustive", Engine.Exhaustive); ("bdd", Engine.Bdd_engine);
                 ("differential", Engine.Differential) ])
          Engine.Auto
      & info [ "backend" ] ~docv:"ENGINE" ~doc)
  in
  let collapse_arg =
    let doc =
      "Structural fault collapsing: none | equivalence | dominance."
    in
    Arg.(
      value
      & opt (enum
               [ ("none", Atpg.Fault.No_collapse);
                 ("equivalence", Atpg.Fault.Equivalence);
                 ("dominance", Atpg.Fault.Dominance) ])
          Atpg.Fault.Equivalence
      & info [ "collapse" ] ~docv:"MODE" ~doc)
  in
  let remove_arg =
    let doc =
      "Remove the redundant line behind each untestable fault \
       (constant-propagation rewrite, one fault per pass, re-analysed to a \
       fixpoint) and prove care-set equivalence of the result."
    in
    Arg.(value & flag & info [ "remove-redundant" ] ~doc)
  in
  let json_arg =
    let doc = "Write the testability report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let removal_to_json (rem : Atpg.Redundancy.result) =
    J.Obj
      [
        ("removed", J.Int (List.length rem.Atpg.Redundancy.removed));
        ("iterations", J.Int rem.Atpg.Redundancy.iterations);
        ("gates_before", J.Int rem.Atpg.Redundancy.gates_before);
        ("gates_after", J.Int rem.Atpg.Redundancy.gates_after);
        ("final", Engine.report_to_json rem.Atpg.Redundancy.final_report);
      ]
  in
  let run input strategy mode backend collapse remove engine cutoff max_diags
      json jobs =
    with_jobs_opt jobs @@ fun () ->
    if cutoff < 0 then begin
      Fmt.epr "rdca: --check-cutoff must be non-negative@.";
      1
    end
    else if (match max_diags with Some n -> n < 0 | None -> false) then begin
      Fmt.epr "rdca: --max-diags must be non-negative@.";
      1
    end
    else begin
      Diag.set_max_diags max_diags;
      with_spec input @@ fun spec ->
      match Flow.synthesize_result ~mode ~strategy spec with
      | Error e ->
          Fmt.epr "rdca: %s@." (Flow.error_to_string e);
          1
      | Ok r -> (
          let nl = r.Flow.netlist in
          let config = { Engine.default_config with Engine.backend; collapse } in
          match Engine.analyze ~config nl with
          | exception Invalid_argument msg ->
              Fmt.epr "rdca: %s@." msg;
              1
          | report ->
              let scoap = Atpg.Scoap.compute nl in
              let sc = Atpg.Scoap.summarize scoap in
              let diags = Atpg.Testability_check.diagnostics nl report in
              Fmt.pr "backend:         %s, %s collapsing@."
                (Engine.backend_name backend)
                (Atpg.Fault.mode_name collapse);
              Fmt.pr "faults:          %d in %d class(es) (%.2fx collapse)@."
                report.Engine.total_faults report.Engine.classes
                report.Engine.collapse_ratio;
              Fmt.pr "coverage:        %.1f%%  (%d testable, %d untestable)@."
                (100.0 *. report.Engine.coverage)
                report.Engine.testable report.Engine.untestable;
              if backend = Engine.Differential then
                Fmt.pr "backends agree:  %s (%d class(es))@."
                  (if report.Engine.disagreements = 0 then "yes" else "NO")
                  report.Engine.classes;
              Fmt.pr
                "scoap:           mean CC0 %.1f, CC1 %.1f, CO %.1f; %d \
                 unobservable node(s)@."
                sc.Atpg.Scoap.mean_cc0 sc.Atpg.Scoap.mean_cc1
                sc.Atpg.Scoap.mean_co sc.Atpg.Scoap.unobservable;
              let removal =
                if not remove then Ok None
                else
                  match
                    Flow.remove_redundant_checked ~config ~equiv:engine
                      ~auto_cutoff:cutoff ~spec nl
                  with
                  | Error (Flow.Check_failed { diags = d; _ }) ->
                      Fmt.pr "%a@." Diag.pp_report d;
                      Error ()
                  | Error e ->
                      Fmt.epr "rdca: %s@." (Flow.error_to_string e);
                      Error ()
                  | Ok (rem, equiv_diags) ->
                      Fmt.pr "removed:         %d redundant line(s) in %d \
                              pass(es), %d -> %d gates@."
                        (List.length rem.Atpg.Redundancy.removed)
                        rem.Atpg.Redundancy.iterations
                        rem.Atpg.Redundancy.gates_before
                        rem.Atpg.Redundancy.gates_after;
                      Fmt.pr
                        "check:           care-set equivalence OK (%d \
                         warning(s))@."
                        (Diag.count Diag.Warn equiv_diags);
                      Ok (Some rem)
              in
              Fmt.pr "%a@." Diag.pp_report (Diag.sort diags);
              Option.iter
                (fun path ->
                  J.write_file path
                    (J.Obj
                       ([
                          ("schema_version", J.Int 1);
                          ("subject", J.String input);
                          ("testability", Engine.report_to_json report);
                          ("scoap", Atpg.Scoap.summary_to_json scoap);
                          ( "diagnostics",
                            Diag.report_to_json
                              ~meta:[ ("subject", J.String input) ]
                              diags );
                        ]
                       @
                       match removal with
                       | Ok (Some rem) -> [ ("removal", removal_to_json rem) ]
                       | _ -> [])))
                json;
              if Result.is_error removal || Diag.has_errors diags then 1
              else 0)
    end
  in
  let doc =
    "SAT-based stuck-at testability analysis: fault collapsing, \
     untestable-fault detection and checked redundancy removal"
  in
  Cmd.v (Cmd.info "testability" ~doc)
    Term.(
      const run $ input_arg $ strategy_args $ mode_arg $ backend_arg
      $ collapse_arg $ remove_arg $ equiv_engine_arg $ check_cutoff_arg
      $ max_diags_arg $ json_arg $ jobs_arg)

let suite_cmd =
  let run () =
    List.iter
      (fun e ->
        Fmt.pr "%-8s  %2d in  %2d out  %%DC %.1f  C^f %.3f@."
          e.Synthetic.Suite.name e.Synthetic.Suite.ni e.Synthetic.Suite.no
          e.Synthetic.Suite.dc_percent e.Synthetic.Suite.cf)
      Synthetic.Suite.entries;
    0
  in
  let doc = "List the built-in Table 1 benchmark suite" in
  Cmd.v (Cmd.info "suite" ~doc) Term.(const run $ const ())

(* A CI-sized smoke benchmark.  Two sections:

   - smoke-table3: Table 3 over three small suite benchmarks, run with
     the scalar engine, the word-parallel kernel engine at one job,
     and the kernel at N jobs — the end-to-end guard for both the
     determinism contract of the parallel layer and the bit-identical
     contract of the kernel engine.

   - errbounds-ex1010: the error-rate/bounds inner loop on the largest
     suite benchmark, repeated for stable timing, reporting the
     single-threaded kernel-vs-scalar speedup (the headline number of
     the word-parallel engine).

   Writes the same BENCH_results.json schema as bench/main.exe and
   fails (exit 1) if any pair of runs disagrees. *)
let bench_cmd =
  let module Pool = Parallel.Pool in
  let module E = Rdca_flow.Experiments in
  let module J = Rdca_json.Jsonout in
  let module Profjson = Rdca_json.Profjson in
  let module K = Bitvec.Bv.Kernel in
  let run jobs profile json_path =
    with_jobs_opt jobs @@ fun () ->
    if profile then Prof.set_enabled true;
    Interrupt.install ();
    let n_jobs = Pool.default_jobs () in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (Unix.gettimeofday () -. t0, r)
    in
    let t_start = Unix.gettimeofday () in
    (* Sections land here as they complete, so an interrupt can flush
       the ones that finished. *)
    let entries = ref [] in
    let write_json ~interrupted =
      J.write_file json_path
        (J.Obj
           [
             ("schema_version", J.Int 4);
             ("jobs", J.Int n_jobs);
             ("cores_detected", J.Int (Domain.recommended_domain_count ()));
             ("profile", J.Bool (Prof.enabled ()));
             ("full", J.Bool false);
             ("interrupted", J.Bool interrupted);
             ( "warm_cache_calls",
               J.Int (Prof.value (Prof.counter "spec.warm_calls")) );
             ("pool", Profjson.pool_totals (Pool.stats ()));
             ("sections", J.List (List.rev !entries));
             ("total_seconds", J.Float (Unix.gettimeofday () -. t_start));
           ])
    in
    let unhook = Interrupt.on_interrupt (fun () -> write_json ~interrupted:true) in
    let mismatches = ref [] in
    (* Triple-run a section body and render its JSON entry (each leg
       diffs the profiling instruments around itself; span timings are
       empty unless --profile / RDCA_PROF). *)
    let triple ~name ~scalars work =
      let leg ~kernel ~jobs:j =
        let before = Prof.snapshot () in
        let t, r =
          time (fun () -> Pool.with_jobs j (fun () -> K.with_mode kernel work))
        in
        (t, Prof.diff ~before ~after:(Prof.snapshot ()), r)
      in
      let pool_before = Pool.stats () in
      let ts, _, rs = leg ~kernel:false ~jobs:1 in
      let t1, d1, r1 = leg ~kernel:true ~jobs:1 in
      let tn, dn, rn =
        if n_jobs > 1 then leg ~kernel:true ~jobs:n_jobs else (t1, d1, r1)
      in
      let identical_engine = rs = r1 and identical_jobs = r1 = rn in
      if not identical_engine then
        mismatches := (name ^ " [engine]") :: !mismatches;
      if not identical_jobs then mismatches := (name ^ " [jobs]") :: !mismatches;
      let speedup_kernel = if t1 > 0.0 then ts /. t1 else 1.0 in
      let speedup_jobs = if tn > 0.0 then t1 /. tn else 1.0 in
      Fmt.pr
        "%s: scalar %.2fs, kernel %.2fs (speedup %.2fx), %.2fs at %d jobs \
         (speedup %.2fx)@."
        name ts t1 speedup_kernel tn n_jobs speedup_jobs;
      let profile_fields =
        if not (Prof.enabled ()) then []
        else
          ("profile_jobs1", Profjson.profile ~wall:t1 d1)
          ::
          (if n_jobs > 1 then
             [ ("profile_jobsN", Profjson.profile ~wall:tn dn) ]
           else [])
      in
      let entry =
        J.Obj
          ([
             ("name", J.String name);
             ("seconds_scalar", J.Float ts);
             ("seconds_jobs1", J.Float t1);
             ("seconds_jobsN", J.Float tn);
             ("speedup_kernel", J.Float speedup_kernel);
             ("speedup", J.Float speedup_jobs);
             ("scalar_run", J.Bool true);
             ("dual_run", J.Bool (n_jobs > 1));
             ("identical_engine", J.Bool identical_engine);
             ("identical", J.Bool identical_jobs);
             ( "pool",
               Profjson.pool_delta ~before:pool_before ~after:(Pool.stats ())
             );
           ]
          @ profile_fields
          @ [ ("scalars", J.Obj (scalars rn)) ])
      in
      (entry, ts +. t1 +. tn, rn)
    in
    let names = [ "bench"; "fout"; "p3" ] in
    let table3_entry, _table3_time, table3_rows =
      triple ~name:"smoke-table3"
        ~scalars:(fun rn ->
          List.map
            (fun r -> (r.E.t3_name ^ "_conv_rate", J.Float r.E.t3_conv_rate))
            rn)
        (fun () -> E.table3 ~names ())
    in
    entries := table3_entry :: !entries;
    List.iter
      (fun r ->
        Fmt.pr "%-8s gates %4d  conv rate %.4f  exact lo %.4f@." r.E.t3_name
          r.E.t3_gates r.E.t3_conv_rate (fst r.E.t3_exact))
      table3_rows;
    (* Error-rate/bounds inner loop on the largest suite benchmark;
       repeated so the scalar leg is long enough to time reliably. *)
    let spec = Synthetic.Suite.load_by_name "ex1010" in
    let impls =
      Array.init (Pla.Spec.no spec) (fun o -> Pla.Spec.on_bv spec ~o)
    in
    let repeats = 100 in
    let errbounds_entry, _errbounds_time, (eb_bounds, eb_rate) =
      triple ~name:"errbounds-ex1010"
        ~scalars:(fun (b, r) ->
          [
            ("min_rate", J.Float (Reliability.Error_rate.min_rate b));
            ("max_rate", J.Float (Reliability.Error_rate.max_rate b));
            ("mean_rate", J.Float r);
          ])
        (fun () ->
          let b = ref Reliability.Error_rate.(mean_bounds spec) in
          let r = ref 0.0 in
          for _ = 2 to repeats do
            b := Reliability.Error_rate.mean_bounds spec;
            r := Reliability.Error_rate.of_tables spec impls
          done;
          (!b, !r))
    in
    Fmt.pr "errbounds-ex1010: mean bounds [%.4f, %.4f], mean rate %.4f@."
      (Reliability.Error_rate.min_rate eb_bounds)
      (Reliability.Error_rate.max_rate eb_bounds)
      eb_rate;
    entries := errbounds_entry :: !entries;
    write_json ~interrupted:false;
    unhook ();
    Fmt.pr "wrote %s@." json_path;
    match !mismatches with
    | [] -> 0
    | ms ->
        Fmt.epr "rdca: scalar/kernel/parallel results differ in: %s@."
          (String.concat ", " (List.rev ms));
        1
  in
  let json_path =
    let doc = "Where to write the JSON results." in
    Arg.(
      value
      & opt string "BENCH_results.json"
      & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "Enable the profiling spans and embed per-section span/counter \
       breakdowns in the JSON (same switch as the RDCA_PROF environment \
       variable)."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let doc = "Parallel-determinism smoke benchmark (JSON output, for CI)" in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ jobs_arg $ profile_arg $ json_path)

let main =
  let doc = "Reliability-driven don't care assignment for logic synthesis" in
  let info = Cmd.info "rdca" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      stats_cmd; assign_cmd; synth_cmd; faultsim_cmd; campaign_cmd; gen_cmd;
      estimate_cmd; check_cmd; optimize_cmd; testability_cmd; suite_cmd;
      bench_cmd; worker_cmd;
    ]

let () = exit (Cmd.eval' main)
