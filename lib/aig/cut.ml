module Truth = Logic.Truth

type cut = { leaves : int array; tt : Logic.Truth.t }

(* Merge two sorted id arrays; None if the union exceeds k. *)
let merge_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (la + lb) 0 in
  let rec go i j n =
    if n > k then None
    else if i >= la && j >= lb then Some (Array.sub buf 0 n)
    else if i >= la then begin
      buf.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
    else if j >= lb then begin
      buf.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else if a.(i) = b.(j) then begin
      buf.(n) <- a.(i);
      go (i + 1) (j + 1) (n + 1)
    end
    else if a.(i) < b.(j) then begin
      buf.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else begin
      buf.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
  in
  go 0 0 0

(* Re-express [tt] over [sub] leaves as a table over [merged] leaves. *)
let lift tt sub merged =
  let k = Array.length merged in
  let pos_of id =
    let rec find i = if merged.(i) = id then i else find (i + 1) in
    find 0
  in
  let positions = Array.map pos_of sub in
  Truth.of_fun k (fun idx ->
      let sub_idx = ref 0 in
      Array.iteri
        (fun si p -> if idx land (1 lsl p) <> 0 then sub_idx := !sub_idx lor (1 lsl si))
        positions;
      Truth.eval tt !sub_idx)

let trivial id = { leaves = [| id |]; tt = Truth.var 1 0 }

let same_leaves a b = a.leaves = b.leaves

let enumerate t ~k ~max_cuts =
  if k < 2 || k > 4 then invalid_arg "Cut.enumerate: k must be in [2,4]";
  let n = Aig_core.num_nodes t in
  let cuts = Array.make n [] in
  for i = 1 to Aig_core.ni t do
    cuts.(i) <- [ trivial i ]
  done;
  Aig_core.iter_ands t (fun id a b ->
      let na = Aig_core.node_of a and nb = Aig_core.node_of b in
      let ca = Aig_core.is_complemented a and cb = Aig_core.is_complemented b in
      let merged =
        List.concat_map
          (fun cut_a ->
            List.filter_map
              (fun cut_b ->
                match merge_leaves k cut_a.leaves cut_b.leaves with
                | None -> None
                | Some leaves ->
                    let ta = lift cut_a.tt cut_a.leaves leaves in
                    let tb = lift cut_b.tt cut_b.leaves leaves in
                    let kk = Array.length leaves in
                    let ta = if ca then Truth.tnot kk ta else ta in
                    let tb = if cb then Truth.tnot kk tb else tb in
                    Some { leaves; tt = Truth.tand ta tb })
              cuts.(nb))
          cuts.(na)
      in
      (* Dedup by leaf set, prefer small cuts, cap the list, and always
         keep the trivial cut available for the mapper's fallback. *)
      let dedup =
        List.fold_left
          (fun acc c -> if List.exists (same_leaves c) acc then acc else c :: acc)
          [] merged
        |> List.rev
      in
      let sorted =
        List.sort
          (fun c1 c2 -> compare (Array.length c1.leaves) (Array.length c2.leaves))
          dedup
      in
      let rec take i = function
        | [] -> []
        | _ when i >= max_cuts -> []
        | c :: rest -> c :: take (i + 1) rest
      in
      cuts.(id) <- take 0 sorted @ [ trivial id ]);
  cuts

(* Memoised enumeration.  The technology mapper re-enumerates cuts of
   the same AIG on every call (the sweep sections map each benchmark
   under two or three modes), so cache the result under the AIG's full
   structural key — input count, node count, parameters, and every
   AND's fanin literals — which makes a false hit impossible.  Cached
   arrays are shared between callers and must be treated as
   read-only; the mapper only reads them. *)
let c_hits = Prof.counter "cut.memo_hits"
let c_misses = Prof.counter "cut.memo_misses"
let sp_enum = Prof.span "cut.enumerate"
let memo : (int array, cut list array) Hashtbl.t = Hashtbl.create 16
let memo_lock = Mutex.create ()
let memo_cap = 64

let structural_key t ~k ~max_cuts =
  let key = Array.make (4 + (2 * Aig_core.num_ands t)) 0 in
  key.(0) <- Aig_core.ni t;
  key.(1) <- Aig_core.num_nodes t;
  key.(2) <- k;
  key.(3) <- max_cuts;
  let pos = ref 4 in
  let enc l =
    (2 * Aig_core.node_of l) + if Aig_core.is_complemented l then 1 else 0
  in
  Aig_core.iter_ands t (fun _ a b ->
      key.(!pos) <- enc a;
      key.(!pos + 1) <- enc b;
      pos := !pos + 2);
  key

let enumerate_memo t ~k ~max_cuts =
  let key = structural_key t ~k ~max_cuts in
  Mutex.lock memo_lock;
  let cached = Hashtbl.find_opt memo key in
  Mutex.unlock memo_lock;
  match cached with
  | Some cuts ->
      Prof.incr c_hits;
      cuts
  | None ->
      Prof.incr c_misses;
      (* Enumerate outside the lock: concurrent misses on the same AIG
         duplicate the work once rather than serialising all callers. *)
      let cuts = Prof.time sp_enum (fun () -> enumerate t ~k ~max_cuts) in
      Mutex.lock memo_lock;
      if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
      if not (Hashtbl.mem memo key) then Hashtbl.add memo key cuts;
      Mutex.unlock memo_lock;
      cuts

let clear_memo () =
  Mutex.lock memo_lock;
  Hashtbl.reset memo;
  Mutex.unlock memo_lock

let consistent_on t ~node cut ~minterm =
  let values = Aig_core.eval_minterm_values t minterm in
  let idx = ref 0 in
  Array.iteri
    (fun p leaf -> if values.(leaf) then idx := !idx lor (1 lsl p))
    cut.leaves;
  Truth.eval cut.tt !idx = values.(node)
