(** K-feasible cut enumeration with cut functions.

    A cut of node [n] is a set of nodes ("leaves") such that every
    path from the inputs to [n] passes through a leaf; the cut
    function expresses [n] in terms of its leaves.  The technology
    mapper matches cut functions against the cell library. *)

type cut = {
  leaves : int array;  (** sorted AIG node ids *)
  tt : Logic.Truth.t;  (** function of the node over the leaves *)
}

(** [enumerate t ~k ~max_cuts] computes up to [max_cuts] cuts of at
    most [k] leaves for every node (indexed by node id).  Every
    AND node's list contains at least its structural 2-cut and its
    trivial cut; input nodes have just the trivial cut.
    @raise Invalid_argument if [k < 2 || k > 4]. *)
val enumerate : Aig_core.t -> k:int -> max_cuts:int -> cut list array

(** [enumerate_memo] is {!enumerate} memoised on the AIG's full
    structural key (inputs, node count, every AND's fanin literals)
    plus [(k, max_cuts)], so repeated mapping of the same network —
    e.g. the delay/area/power modes of one sweep cell — enumerates
    once.  A false hit is impossible: equal keys mean structurally
    identical AIGs.  The returned array is shared with other callers
    and must be treated as read-only.  Thread-safe; bounded (the
    table resets after 64 distinct networks). *)
val enumerate_memo : Aig_core.t -> k:int -> max_cuts:int -> cut list array

(** Drop every memoised enumeration (for tests and benchmarks that
    want to measure the cold path). *)
val clear_memo : unit -> unit

(** [consistent_on t ~node cut ~minterm] checks the property mapping
    relies on: on the leaf values produced by input [minterm], the cut
    function evaluates to the node's value.  (On *inconsistent* leaf
    combinations — possible when merged cuts share logic — the table
    is unconstrained.) *)
val consistent_on : Aig_core.t -> node:int -> cut -> minterm:int -> bool
