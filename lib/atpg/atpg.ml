(** Static stuck-at testability analysis: fault universe and
    structural collapsing ({!Fault}), SAT/exhaustive/BDD test
    generation ({!Engine}), redundancy removal from untestable faults
    ({!Redundancy}), SCOAP heuristics ({!Scoap}) and diagnostic
    reporting ({!Testability_check}). *)

module Fault = Fault
module Engine = Engine
module Scoap = Scoap
module Redundancy = Redundancy
module Testability_check = Testability_check
