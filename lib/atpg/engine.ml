module Gate = Netlist.Gate
module Solver = Sat.Solver
module Cnf = Sat.Cnf
module J = Rdca_json.Jsonout

type backend = Auto | Sat_engine | Exhaustive | Bdd_engine | Differential

let backend_name = function
  | Auto -> "auto"
  | Sat_engine -> "sat"
  | Exhaustive -> "exhaustive"
  | Bdd_engine -> "bdd"
  | Differential -> "differential"

let backend_of_name = function
  | "auto" -> Some Auto
  | "sat" -> Some Sat_engine
  | "exhaustive" -> Some Exhaustive
  | "bdd" -> Some Bdd_engine
  | "differential" -> Some Differential
  | _ -> None

type config = { backend : backend; collapse : Fault.mode; auto_cutoff : int }

let default_config =
  { backend = Auto; collapse = Fault.Equivalence; auto_cutoff = 12 }

type verdict = Testable | Untestable

let verdict_name = function Testable -> "testable" | Untestable -> "untestable"

type fault_result = {
  rep : Fault.t;
  members : Fault.t list;
  class_size : int;
  verdict : verdict;
  witness : int option;
  via_dominance : bool;
  agree : bool option;
}

type report = {
  ni : int;
  backend : backend;
  collapse : Fault.mode;
  total_faults : int;
  classes : int;
  results : fault_result list;
  testable : int;
  untestable : int;
  coverage : float;
  collapse_ratio : float;
  disagreements : int;
}

let span_analyze = Prof.span "atpg.analyze"
let faults_counter = Prof.counter "atpg.classes"

(* The nodes whose value can change under the fault: the fault node
   and its transitive fanout. *)
let affected_set nl (f : Fault.t) =
  let n = Netlist.node_count nl in
  let affected = Array.make n false in
  affected.(f.Fault.node) <- true;
  Netlist.iter_nodes nl (fun v _ fis ->
      if v <> f.Fault.node && Array.exists (fun i -> affected.(i)) fis then
        affected.(v) <- true);
  affected

let any_affected_output nl affected =
  Array.exists (fun o -> affected.(o)) (Netlist.outputs nl)

(* SAT backend: good circuit in full, faulty copy only over the
   affected cone, miter = OR of XORs over reachable outputs. *)
let sat_decide nl (f : Fault.t) =
  let affected = affected_set nl f in
  if not (any_affected_output nl affected) then (Untestable, None)
  else begin
    let ni = Netlist.ni nl in
    let s = Solver.create () in
    let b = Cnf.create s in
    let n = Netlist.node_count nl in
    let good = Array.make n 0 in
    let invars = Array.make ni 0 in
    for i = 0 to ni - 1 do
      let l = Cnf.fresh b in
      good.(i) <- l;
      invars.(i) <- Solver.var_of l
    done;
    Netlist.iter_nodes nl (fun v g fis ->
        good.(v) <- Cnf.gate b g (Array.map (fun i -> good.(i)) fis));
    let bad = Array.copy good in
    (match f.Fault.pin with
    | Fault.Stem -> bad.(f.Fault.node) <- Cnf.const b f.Fault.stuck
    | Fault.Branch j ->
        let fis = Netlist.fanins nl f.Fault.node in
        let lits =
          Array.mapi
            (fun k i -> if k = j then Cnf.const b f.Fault.stuck else good.(i))
            fis
        in
        bad.(f.Fault.node) <- Cnf.gate b (Netlist.gate nl f.Fault.node) lits);
    Netlist.iter_nodes nl (fun v g fis ->
        if v <> f.Fault.node && affected.(v) then
          bad.(v) <- Cnf.gate b g (Array.map (fun i -> bad.(i)) fis));
    let diffs =
      Array.to_list (Netlist.outputs nl)
      |> List.filter (fun o -> affected.(o))
      |> List.map (fun o -> Cnf.xor_ b good.(o) bad.(o))
    in
    Solver.add_clause s [ Cnf.or_ b (Array.of_list diffs) ];
    match Solver.solve s with
    | Solver.Unsat -> (Untestable, None)
    | Solver.Sat ->
        let witness =
          if ni > 62 then None
          else begin
            let m = ref 0 in
            for i = 0 to ni - 1 do
              if Solver.value s invars.(i) then m := !m lor (1 lsl i)
            done;
            Some !m
          end
        in
        (Testable, witness)
  end

(* Exhaustive backend: word-parallel good/faulty simulation, 63 input
   patterns per machine word, faulty words only over the affected
   cone.  Exact for ni <= 20. *)
let exhaustive_decide nl (f : Fault.t) =
  let ni = Netlist.ni nl in
  if ni > 20 then
    invalid_arg "Atpg.Engine: exhaustive backend requires ni <= 20";
  let affected = affected_set nl f in
  if not (any_affected_output nl affected) then (Untestable, None)
  else begin
    let n = Netlist.node_count nl in
    let size = 1 lsl ni in
    let good = Array.make n 0 and bad = Array.make n 0 in
    let outs = Netlist.outputs nl in
    let witness = ref None in
    let base = ref 0 in
    while !witness = None && !base < size do
      let chunk = min 63 (size - !base) in
      for i = 0 to ni - 1 do
        let w = ref 0 in
        for t = 0 to chunk - 1 do
          if (!base + t) land (1 lsl i) <> 0 then w := !w lor (1 lsl t)
        done;
        good.(i) <- !w;
        bad.(i) <- !w
      done;
      Netlist.iter_nodes nl (fun v g fis ->
          good.(v) <- Gate.eval_words g (Array.map (fun i -> good.(i)) fis);
          bad.(v) <-
            (if not affected.(v) then good.(v)
             else if v = f.Fault.node then
               match f.Fault.pin with
               | Fault.Stem -> if f.Fault.stuck then -1 else 0
               | Fault.Branch j ->
                   let ws =
                     Array.mapi
                       (fun k i ->
                         if k = j then (if f.Fault.stuck then -1 else 0)
                         else bad.(i))
                       fis
                   in
                   Gate.eval_words g ws
             else Gate.eval_words g (Array.map (fun i -> bad.(i)) fis)));
      let mask = if chunk = 63 then -1 else (1 lsl chunk) - 1 in
      let diff = ref 0 in
      Array.iter
        (fun o ->
          if affected.(o) then
            diff := !diff lor (good.(o) lxor bad.(o) land mask))
        outs;
      diff := !diff land mask;
      if !diff <> 0 then begin
        let t = ref 0 in
        while !diff land (1 lsl !t) = 0 do
          incr t
        done;
        witness := Some (!base + !t)
      end;
      base := !base + chunk
    done;
    match !witness with
    | Some m -> (Testable, Some m)
    | None -> (Untestable, None)
  end

let bdd_of_gate man g fb =
  let fold op =
    let acc = ref fb.(0) in
    for i = 1 to Array.length fb - 1 do
      acc := op man !acc fb.(i)
    done;
    !acc
  in
  match g with
  | Gate.Input _ -> invalid_arg "Atpg.Engine.bdd_of_gate: Input"
  | Gate.Const v -> if v then Bdd.one man else Bdd.zero man
  | Gate.Buf -> fb.(0)
  | Gate.Not -> Bdd.bnot man fb.(0)
  | Gate.And -> fold Bdd.band
  | Gate.Or -> fold Bdd.bor
  | Gate.Nand -> Bdd.bnot man (fold Bdd.band)
  | Gate.Nor -> Bdd.bnot man (fold Bdd.bor)
  | Gate.Xor -> fold Bdd.bxor
  | Gate.Xnor -> Bdd.bnot man (fold Bdd.bxor)
  | Gate.Cell c ->
      let acc = ref (Bdd.zero man) in
      for idx = 0 to (1 lsl c.Gate.arity) - 1 do
        if Logic.Truth.eval c.Gate.tt idx then begin
          let cube = ref (Bdd.one man) in
          for i = 0 to c.Gate.arity - 1 do
            let f =
              if idx land (1 lsl i) <> 0 then fb.(i) else Bdd.bnot man fb.(i)
            in
            cube := Bdd.band man !cube f
          done;
          acc := Bdd.bor man !acc !cube
        end
      done;
      !acc

(* BDD backend: good and faulty cones as BDDs over the inputs, the
   miter checked for constant zero. *)
let bdd_decide nl (f : Fault.t) =
  let affected = affected_set nl f in
  if not (any_affected_output nl affected) then (Untestable, None)
  else begin
    let ni = Netlist.ni nl in
    let man = Bdd.make_man ~nvars:(max 1 ni) in
    let n = Netlist.node_count nl in
    let good = Array.make n (Bdd.zero man) in
    for i = 0 to ni - 1 do
      good.(i) <- Bdd.var man i
    done;
    Netlist.iter_nodes nl (fun v g fis ->
        good.(v) <- bdd_of_gate man g (Array.map (fun i -> good.(i)) fis));
    let bad = Array.copy good in
    let const b = if b then Bdd.one man else Bdd.zero man in
    (match f.Fault.pin with
    | Fault.Stem -> bad.(f.Fault.node) <- const f.Fault.stuck
    | Fault.Branch j ->
        let fis = Netlist.fanins nl f.Fault.node in
        let fb =
          Array.mapi
            (fun k i -> if k = j then const f.Fault.stuck else good.(i))
            fis
        in
        bad.(f.Fault.node) <- bdd_of_gate man (Netlist.gate nl f.Fault.node) fb);
    Netlist.iter_nodes nl (fun v g fis ->
        if v <> f.Fault.node && affected.(v) then
          bad.(v) <- bdd_of_gate man g (Array.map (fun i -> bad.(i)) fis));
    let miter = ref (Bdd.zero man) in
    Array.iter
      (fun o ->
        if affected.(o) then
          miter := Bdd.bor man !miter (Bdd.bxor man good.(o) bad.(o)))
      (Netlist.outputs nl);
    if Bdd.is_zero man !miter then (Untestable, None)
    else (Testable, Bdd.any_sat man !miter)
  end

type decision = {
  d_verdict : verdict;
  d_witness : int option;
  d_agree : bool option;
}

let resolve_backend (config : config) ni =
  match config.backend with
  | Auto -> if ni <= config.auto_cutoff && ni <= 20 then `Exhaustive else `Sat
  | Sat_engine -> `Sat
  | Exhaustive -> `Exhaustive
  | Bdd_engine -> `Bdd
  | Differential -> `Differential

let decide nl config f =
  let ni = Netlist.ni nl in
  match resolve_backend config ni with
  | `Sat ->
      let v, w = sat_decide nl f in
      { d_verdict = v; d_witness = w; d_agree = None }
  | `Exhaustive ->
      let v, w = exhaustive_decide nl f in
      { d_verdict = v; d_witness = w; d_agree = None }
  | `Bdd ->
      let v, w = bdd_decide nl f in
      { d_verdict = v; d_witness = w; d_agree = None }
  | `Differential ->
      let v, w = sat_decide nl f in
      let v', _ =
        if ni <= 20 then exhaustive_decide nl f else bdd_decide nl f
      in
      { d_verdict = v; d_witness = w; d_agree = Some (v = v') }

let analyze ?pool ?(config = default_config) nl =
  Prof.time span_analyze @@ fun () ->
  let ni = Netlist.ni nl in
  let collapsed = Fault.collapse ~mode:config.collapse nl in
  let classes = collapsed.Fault.classes in
  let k = Array.length classes in
  Prof.add faults_counter k;
  let results : fault_result option array = Array.make k None in
  let decide_indices idxs =
    let idxs = Array.of_list idxs in
    let out =
      Parallel.Pool.map ?pool ~chunk:1
        (fun i -> decide nl config classes.(i).Fault.rep)
        idxs
    in
    Array.iteri
      (fun p i ->
        let d = out.(p) in
        let c = classes.(i) in
        results.(i) <-
          Some
            {
              rep = c.Fault.rep;
              members = c.Fault.members;
              class_size = List.length c.Fault.members;
              verdict = d.d_verdict;
              witness = d.d_witness;
              via_dominance = false;
              agree = d.d_agree;
            })
      idxs
  in
  let all = List.init k Fun.id in
  decide_indices
    (List.filter (fun i -> classes.(i).Fault.implied_by = None) all);
  (* Dominated classes: a testable dominator-source hands over its
     witness; an untestable one proves nothing, so those classes (and
     any implied_by cycles) fall back to direct analysis. *)
  let pending =
    ref (List.filter (fun i -> classes.(i).Fault.implied_by <> None) all)
  in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let direct = ref [] and still = ref [] in
    List.iter
      (fun i ->
        match classes.(i).Fault.implied_by with
        | None -> assert false
        | Some src -> (
            match results.(src) with
            | Some r when r.verdict = Testable ->
                let c = classes.(i) in
                results.(i) <-
                  Some
                    {
                      rep = c.Fault.rep;
                      members = c.Fault.members;
                      class_size = List.length c.Fault.members;
                      verdict = Testable;
                      witness = r.witness;
                      via_dominance = true;
                      agree = None;
                    };
                progress := true
            | Some _ ->
                direct := i :: !direct;
                progress := true
            | None -> still := i :: !still))
      !pending;
    decide_indices (List.rev !direct);
    pending := List.rev !still
  done;
  (* Cycles among implied_by hints (possible only through degenerate
     merges) are broken by analysing them directly. *)
  decide_indices !pending;
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false)
         results)
  in
  let testable, untestable =
    List.fold_left
      (fun (t, u) r ->
        match r.verdict with
        | Testable -> (t + r.class_size, u)
        | Untestable -> (t, u + r.class_size))
      (0, 0) results
  in
  let disagreements =
    List.length (List.filter (fun r -> r.agree = Some false) results)
  in
  {
    ni;
    backend = config.backend;
    collapse = config.collapse;
    total_faults = collapsed.Fault.total;
    classes = k;
    results;
    testable;
    untestable;
    coverage =
      (if collapsed.Fault.total = 0 then 1.0
       else float_of_int testable /. float_of_int collapsed.Fault.total);
    collapse_ratio =
      (if k = 0 then 1.0
       else float_of_int collapsed.Fault.total /. float_of_int k);
    disagreements;
  }

let untestable_classes report =
  List.filter (fun r -> r.verdict = Untestable) report.results

let verdict_table report =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun r -> List.iter (fun f -> Hashtbl.replace tbl f r) r.members)
    report.results;
  tbl

let pin_to_json = function
  | Fault.Stem -> J.String "stem"
  | Fault.Branch j -> J.Int j

let fault_to_json (f : Fault.t) =
  J.Obj
    [
      ("node", J.Int f.Fault.node);
      ("pin", pin_to_json f.Fault.pin);
      ("stuck", J.Int (if f.Fault.stuck then 1 else 0));
    ]

let fault_result_to_json r =
  J.Obj
    ([
       ("fault", fault_to_json r.rep);
       ("class_size", J.Int r.class_size);
       ("verdict", J.String (verdict_name r.verdict));
     ]
    @ (match r.witness with Some m -> [ ("witness", J.Int m) ] | None -> [])
    @ (if r.via_dominance then [ ("via_dominance", J.Bool true) ] else [])
    @
    match r.agree with Some a -> [ ("agree", J.Bool a) ] | None -> [])

let report_to_json r =
  J.Obj
    [
      ("backend", J.String (backend_name r.backend));
      ("collapse", J.String (Fault.mode_name r.collapse));
      ("ni", J.Int r.ni);
      ("total_faults", J.Int r.total_faults);
      ("classes", J.Int r.classes);
      ("collapse_ratio", J.Float r.collapse_ratio);
      ("testable", J.Int r.testable);
      ("untestable", J.Int r.untestable);
      ("coverage", J.Float r.coverage);
      ("disagreements", J.Int r.disagreements);
      ("faults", J.List (List.map fault_result_to_json r.results));
    ]
