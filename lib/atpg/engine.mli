(** SAT-based stuck-at test generation over collapsed fault classes.

    Each class representative gets a good-vs-faulty {e miter}: the
    healthy circuit and a copy with the fault's line pinned to its
    stuck value share the primary inputs, and the miter output ORs the
    XOR of every output pair the fault can reach.  The fault is
    {e testable} iff the miter is satisfiable, and the satisfying
    assignment is a test vector; an UNSAT answer certifies the fault
    {e untestable} — the line is redundant, since the faulty circuit
    computes the same function.

    Backends: [Sat_engine] builds the miter in CNF and asks
    {!Sat.Solver}; [Exhaustive] simulates all [2^ni] patterns
    word-parallel (63 per word) and is exact for [ni <= 20];
    [Bdd_engine] builds both cones as BDDs and checks the miter for
    constant zero; [Auto] picks [Exhaustive] below the cutoff and
    [Sat_engine] above; [Differential] runs SAT {e and} a reference
    backend on every class and records verdict disagreements, the
    same audit shape as [Dc.analyze].  Classes are analysed through
    [Parallel.Pool] with one fresh solver per fault, so results are
    bit-identical at every job count. *)

type backend = Auto | Sat_engine | Exhaustive | Bdd_engine | Differential

val backend_name : backend -> string

val backend_of_name : string -> backend option

type config = {
  backend : backend;
  collapse : Fault.mode;
  auto_cutoff : int;
      (** [Auto] uses [Exhaustive] when [ni <= auto_cutoff] *)
}

val default_config : config
(** [Auto] backend, [Equivalence] collapsing, cutoff 12. *)

type verdict = Testable | Untestable

val verdict_name : verdict -> string

type fault_result = {
  rep : Fault.t;  (** class representative that was analysed *)
  members : Fault.t list;  (** the whole collapsed class *)
  class_size : int;
  verdict : verdict;
  witness : int option;
      (** a detecting input minterm when testable and [ni <= 62] *)
  via_dominance : bool;
      (** verdict inherited from a dominated class, not analysed
          directly *)
  agree : bool option;
      (** [Differential] only: both backends returned this verdict *)
}

type report = {
  ni : int;
  backend : backend;  (** the configured backend *)
  collapse : Fault.mode;
  total_faults : int;  (** uncollapsed universe size *)
  classes : int;
  results : fault_result list;  (** canonical class order *)
  testable : int;  (** faults (not classes) with a test *)
  untestable : int;
  coverage : float;  (** testable / total, 1.0 for an empty universe *)
  collapse_ratio : float;  (** total_faults / classes *)
  disagreements : int;  (** [Differential] verdict mismatches *)
}

val analyze : ?pool:Parallel.Pool.t -> ?config:config -> Netlist.t -> report
(** Collapse the universe and decide every class.
    @raise Invalid_argument if [Exhaustive] is forced with [ni > 20]. *)

val untestable_classes : report -> fault_result list

val verdict_table : report -> (Fault.t, fault_result) Hashtbl.t
(** Every member fault of every class, mapped to its class result. *)

val fault_result_to_json : fault_result -> Rdca_json.Jsonout.t

val report_to_json : report -> Rdca_json.Jsonout.t
