module Gate = Netlist.Gate

type pin = Stem | Branch of int

type t = { node : int; pin : pin; stuck : bool }

let pin_rank = function Stem -> 0 | Branch j -> 1 + j

let compare a b =
  let c = Stdlib.compare a.node b.node in
  if c <> 0 then c
  else
    let c = Stdlib.compare (pin_rank a.pin) (pin_rank b.pin) in
    if c <> 0 then c else Stdlib.compare a.stuck b.stuck

let pin_to_string = function
  | Stem -> "stem"
  | Branch j -> Printf.sprintf "pin %d" j

let to_string f =
  Printf.sprintf "node %d %s s-a-%d" f.node (pin_to_string f.pin)
    (if f.stuck then 1 else 0)

(* A node carries faults iff it is a real gate: inputs have no gate,
   and a constant's stem stuck at its own value is the circuit itself
   (the opposite polarity is a branch fault of each reader). *)
let is_gate_node nl v =
  match Netlist.gate nl v with
  | Gate.Input _ | Gate.Const _ -> false
  | _ -> true

(* Dense fault-id layout: per gate node, [stem s-a-0; stem s-a-1;
   branch 0 s-a-0; branch 0 s-a-1; ...] — the canonical {!compare}
   order, so ids are monotone in it. *)
let id_layout nl =
  let n = Netlist.node_count nl in
  let base = Array.make n (-1) in
  let total = ref 0 in
  Netlist.iter_nodes nl (fun v _ fis ->
      if is_gate_node nl v then begin
        base.(v) <- !total;
        total := !total + (2 * (1 + Array.length fis))
      end);
  (base, !total)

let universe nl =
  let base, total = id_layout nl in
  let faults =
    Array.make total { node = 0; pin = Stem; stuck = false }
  in
  Netlist.iter_nodes nl (fun v _ fis ->
      if base.(v) >= 0 then begin
        let b = base.(v) in
        faults.(b) <- { node = v; pin = Stem; stuck = false };
        faults.(b + 1) <- { node = v; pin = Stem; stuck = true };
        Array.iteri
          (fun j _ ->
            faults.(b + 2 + (2 * j)) <- { node = v; pin = Branch j; stuck = false };
            faults.(b + 3 + (2 * j)) <- { node = v; pin = Branch j; stuck = true })
          fis
      end);
  faults

type mode = No_collapse | Equivalence | Dominance

let mode_name = function
  | No_collapse -> "none"
  | Equivalence -> "equivalence"
  | Dominance -> "dominance"

let mode_of_name = function
  | "none" -> Some No_collapse
  | "equivalence" -> Some Equivalence
  | "dominance" -> Some Dominance
  | _ -> None

type cls = { rep : t; members : t list; implied_by : int option }

type collapsed = { classes : cls array; total : int }

(* Union-find keeping the smallest id as root, so the class
   representative is the canonically smallest member. *)
let rec find parent i =
  if parent.(i) = i then i
  else begin
    let r = find parent parent.(i) in
    parent.(i) <- r;
    r
  end

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then
    if ri < rj then parent.(rj) <- ri else parent.(ri) <- rj

let collapse ?(mode = Equivalence) nl =
  let base, total = id_layout nl in
  let faults = universe nl in
  let id f =
    base.(f.node) + (2 * pin_rank f.pin) + if f.stuck then 1 else 0
  in
  let parent = Array.init total (fun i -> i) in
  let n = Netlist.node_count nl in
  let outputs = Netlist.outputs nl in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) outputs;
  (* Single reader pin of each driver, when unique: fanout.(d) is
     [None] before any reader, [Some (m, j)] after one, and
     [Some (-1, -1)] once a second reader appears. *)
  let fanout = Array.make n None in
  if mode <> No_collapse then begin
    Netlist.iter_nodes nl (fun m _ fis ->
        Array.iteri
          (fun j d ->
            fanout.(d) <-
              (match fanout.(d) with
              | None -> Some (m, j)
              | Some _ -> Some (-1, -1)))
          fis);
    (* Gate-local input/output equivalences. *)
    Netlist.iter_nodes nl (fun v g fis ->
        if base.(v) >= 0 then
          let stem stuck = id { node = v; pin = Stem; stuck } in
          let branch j stuck = id { node = v; pin = Branch j; stuck } in
          match g with
          | Gate.Buf ->
              union parent (branch 0 false) (stem false);
              union parent (branch 0 true) (stem true)
          | Gate.Not ->
              union parent (branch 0 false) (stem true);
              union parent (branch 0 true) (stem false)
          | Gate.And ->
              Array.iteri (fun j _ -> union parent (branch j false) (stem false)) fis
          | Gate.Nand ->
              Array.iteri (fun j _ -> union parent (branch j false) (stem true)) fis
          | Gate.Or ->
              Array.iteri (fun j _ -> union parent (branch j true) (stem true)) fis
          | Gate.Nor ->
              Array.iteri (fun j _ -> union parent (branch j true) (stem false)) fis
          | Gate.Xor | Gate.Xnor | Gate.Cell _ -> ()
          | Gate.Input _ | Gate.Const _ -> ());
    (* A fanout-free stem is the same line as its only branch (unless
       the stem is also a primary output, which the branch fault does
       not reach). *)
    for d = 0 to n - 1 do
      if base.(d) >= 0 && not is_output.(d) then
        match fanout.(d) with
        | Some (m, j) when m >= 0 ->
            union parent (id { node = d; pin = Stem; stuck = false })
              (id { node = m; pin = Branch j; stuck = false });
            union parent (id { node = d; pin = Stem; stuck = true })
              (id { node = m; pin = Branch j; stuck = true })
        | _ -> ()
    done
  end;
  (* Gather classes in ascending root order = canonical rep order. *)
  let members = Hashtbl.create 64 in
  for i = total - 1 downto 0 do
    let r = find parent i in
    let tail = try Hashtbl.find members r with Not_found -> [] in
    Hashtbl.replace members r (faults.(i) :: tail)
  done;
  let roots = ref [] in
  for i = total - 1 downto 0 do
    if find parent i = i then roots := i :: !roots
  done;
  let roots = Array.of_list !roots in
  let class_of_root = Hashtbl.create 64 in
  Array.iteri (fun k r -> Hashtbl.replace class_of_root r k) roots;
  let implied = Array.make (Array.length roots) None in
  if mode = Dominance then
    (* Any test for the first branch fault below also sensitises and
       propagates the stem fault: the stem class inherits
       testability (and the witness) from the branch class.  The
       reverse is not sound, so untestable branch classes leave the
       stem to direct analysis. *)
    Netlist.iter_nodes nl (fun v g fis ->
        if base.(v) >= 0 && Array.length fis >= 2 then
          let pair =
            match g with
            | Gate.And -> Some (true, true)
            | Gate.Nand -> Some (false, true)
            | Gate.Or -> Some (false, false)
            | Gate.Nor -> Some (true, false)
            | _ -> None
          in
          match pair with
          | None -> ()
          | Some (stem_stuck, branch_stuck) ->
              let rs = find parent (id { node = v; pin = Stem; stuck = stem_stuck }) in
              let rb =
                find parent (id { node = v; pin = Branch 0; stuck = branch_stuck })
              in
              if rs <> rb then begin
                let ks = Hashtbl.find class_of_root rs in
                let kb = Hashtbl.find class_of_root rb in
                if implied.(ks) = None then implied.(ks) <- Some kb
              end);
  let classes =
    Array.mapi
      (fun k r ->
        let ms = Hashtbl.find members r in
        { rep = List.hd ms; members = ms; implied_by = implied.(k) })
      roots
  in
  { classes; total }
