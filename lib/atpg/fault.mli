(** Stuck-at fault universe and structural collapsing.

    A single stuck-at fault pins one {e line} of the netlist to a
    constant: either the {e stem} (the output of a gate, as seen by
    every reader) or one {e branch} (a single fanin pin of a single
    gate, leaving the other readers of the same driver healthy).  The
    universe enumerates both polarities on every pin of every gate
    node; primary inputs and constant gates contribute no stem faults
    (a constant's stem fault of the same polarity is the circuit
    itself), but branch pins fed by them are included.

    Structural collapsing shrinks the universe before any test
    generation runs.  {e Equivalence} rules merge faults with
    provably identical faulty functions (e.g. any AND input stuck-at-0
    is indistinguishable from the AND output stuck-at-0);
    {e dominance} rules additionally record one-directional
    implications (any test for an AND branch stuck-at-1 also detects
    the stem stuck-at-1).  Dominance is only sound for {e testable}
    verdicts — an untestable dominated fault says nothing about the
    dominator — so dominated classes carry an [implied_by] hint that
    the engine may use to inherit a witness, falling back to direct
    analysis when the hint does not resolve. *)

(** Which line of the node the fault sits on. *)
type pin = Stem  (** the gate output, affecting every reader *)
         | Branch of int  (** fanin pin [j] of this gate only *)

type t = { node : int; pin : pin; stuck : bool }
(** The fault: [pin] of gate [node] stuck at [stuck]. *)

val compare : t -> t -> int
(** Total order: by node, then stem before branches, then polarity. *)

val pin_to_string : pin -> string

val to_string : t -> string
(** E.g. ["node 7 stem s-a-1"] or ["node 7 pin 2 s-a-0"]. *)

val universe : Netlist.t -> t array
(** All faults of the netlist in canonical (node, pin, polarity)
    order.  Stems of [Input]/[Const] nodes are excluded; branch pins
    are enumerated on every gate node regardless of what drives
    them. *)

(** Collapsing strength. *)
type mode =
  | No_collapse  (** every fault is its own class *)
  | Equivalence  (** merge structurally equivalent faults *)
  | Dominance
      (** [Equivalence] plus [implied_by] dominance hints on stem
          classes *)

val mode_name : mode -> string

val mode_of_name : string -> mode option

type cls = {
  rep : t;  (** representative (smallest fault in canonical order) *)
  members : t list;  (** every fault of the class, in canonical order *)
  implied_by : int option;
      (** index of a class whose testability implies this one's (with
          the same witness); [None] for independent classes *)
}

type collapsed = { classes : cls array; total : int }
(** [classes] in canonical order of their representatives; [total] is
    the size of the uncollapsed universe. *)

val collapse : ?mode:mode -> Netlist.t -> collapsed
(** Partition {!universe} into collapsing classes.  Default mode is
    [Equivalence]. *)
