module Gate = Netlist.Gate

type result = {
  netlist : Netlist.t;
  removed : Fault.t list;
  iterations : int;
  gates_before : int;
  gates_after : int;
  final_report : Engine.report;
}

(* What an old node becomes in the rewritten netlist. *)
type desc =
  | D_input
  | D_const of bool
  | D_gate of Gate.t * int array  (* old fanin ids, consts removed *)

(* Constant-propagate one gate whose fanins are either constants
   ([`C]) or live references ([`R old_id]). *)
let simplify g vals =
  let refs () =
    Array.of_list
      (List.filter_map
         (function `R i -> Some i | `C _ -> None)
         (Array.to_list vals))
  in
  let has b = Array.exists (function `C c -> c = b | `R _ -> false) vals in
  let const_parity () =
    Array.fold_left
      (fun p v -> match v with `C true -> not p | _ -> p)
      false vals
  in
  match g with
  | Gate.Input _ -> D_input
  | Gate.Const b -> D_const b
  | Gate.Buf -> (
      match vals.(0) with `C b -> D_const b | `R i -> D_gate (Gate.Buf, [| i |]))
  | Gate.Not -> (
      match vals.(0) with
      | `C b -> D_const (not b)
      | `R i -> D_gate (Gate.Not, [| i |]))
  | Gate.And ->
      if has false then D_const false
      else
        let rs = refs () in
        if Array.length rs = 0 then D_const true
        else if Array.length rs = 1 then D_gate (Gate.Buf, rs)
        else D_gate (Gate.And, rs)
  | Gate.Nand ->
      if has false then D_const true
      else
        let rs = refs () in
        if Array.length rs = 0 then D_const false
        else if Array.length rs = 1 then D_gate (Gate.Not, rs)
        else D_gate (Gate.Nand, rs)
  | Gate.Or ->
      if has true then D_const true
      else
        let rs = refs () in
        if Array.length rs = 0 then D_const false
        else if Array.length rs = 1 then D_gate (Gate.Buf, rs)
        else D_gate (Gate.Or, rs)
  | Gate.Nor ->
      if has true then D_const false
      else
        let rs = refs () in
        if Array.length rs = 0 then D_const true
        else if Array.length rs = 1 then D_gate (Gate.Not, rs)
        else D_gate (Gate.Nor, rs)
  | Gate.Xor ->
      let p = const_parity () in
      let rs = refs () in
      if Array.length rs = 0 then D_const p
      else if Array.length rs = 1 then
        D_gate ((if p then Gate.Not else Gate.Buf), rs)
      else D_gate ((if p then Gate.Xnor else Gate.Xor), rs)
  | Gate.Xnor ->
      let p = const_parity () in
      let rs = refs () in
      if Array.length rs = 0 then D_const (not p)
      else if Array.length rs = 1 then
        D_gate ((if p then Gate.Buf else Gate.Not), rs)
      else D_gate ((if p then Gate.Xor else Gate.Xnor), rs)
  | Gate.Cell c ->
      if Array.for_all (function `R _ -> true | `C _ -> false) vals then
        D_gate (Gate.Cell c, refs ())
      else begin
        (* Cofactor the truth table on the constant pins. *)
        let keep = ref [] in
        Array.iteri
          (fun j v -> match v with `R _ -> keep := j :: !keep | `C _ -> ())
          vals;
        let keep = Array.of_list (List.rev !keep) in
        let k' = Array.length keep in
        let expand m =
          (* Cell input index from the surviving-pin minterm [m] plus
             the fixed constant pins. *)
          let idx = ref 0 in
          Array.iteri
            (fun j v -> match v with `C true -> idx := !idx lor (1 lsl j) | _ -> ())
            vals;
          Array.iteri
            (fun pos j -> if m land (1 lsl pos) <> 0 then idx := !idx lor (1 lsl j))
            keep;
          !idx
        in
        if k' = 0 then D_const (Logic.Truth.eval c.Gate.tt (expand 0))
        else
          let tt' =
            Logic.Truth.of_fun k' (fun m -> Logic.Truth.eval c.Gate.tt (expand m))
          in
          D_gate (Gate.Cell { c with Gate.tt = tt'; Gate.arity = k' }, refs ())
      end

let apply nl (fault : Fault.t) =
  let n = Netlist.node_count nl in
  let ni = Netlist.ni nl in
  let desc = Array.make n D_input in
  Netlist.iter_nodes nl (fun v g fis ->
      if fault.Fault.pin = Fault.Stem && v = fault.Fault.node then
        desc.(v) <- D_const fault.Fault.stuck
      else
        match g with
        | Gate.Input _ -> ()
        | Gate.Const b -> desc.(v) <- D_const b
        | g ->
            let vals =
              Array.mapi
                (fun j i ->
                  if v = fault.Fault.node && fault.Fault.pin = Fault.Branch j
                  then `C fault.Fault.stuck
                  else
                    match desc.(i) with D_const b -> `C b | _ -> `R i)
                fis
            in
            desc.(v) <- simplify g vals);
  (* Only the cone of the outputs survives the rebuild. *)
  let needed = Array.make n false in
  let stack = ref [] in
  let push v =
    if not needed.(v) then begin
      needed.(v) <- true;
      stack := v :: !stack
    end
  in
  Array.iter push (Netlist.outputs nl);
  let rec drain () =
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        (match desc.(v) with
        | D_gate (_, fis) -> Array.iter push fis
        | D_input | D_const _ -> ());
        drain ()
  in
  drain ();
  let out = Netlist.create ~ni in
  let map = Array.make n (-1) in
  for i = 0 to ni - 1 do
    map.(i) <- i
  done;
  let consts = [| -1; -1 |] in
  let const_node b =
    let k = if b then 1 else 0 in
    if consts.(k) < 0 then consts.(k) <- Netlist.add out (Gate.Const b) [||];
    consts.(k)
  in
  for v = ni to n - 1 do
    if needed.(v) then
      match desc.(v) with
      | D_input -> ()
      | D_const b -> map.(v) <- const_node b
      | D_gate (g, fis) ->
          map.(v) <- Netlist.add out g (Array.map (fun i -> map.(i)) fis)
  done;
  Netlist.set_outputs out (Array.map (fun o -> map.(o)) (Netlist.outputs nl));
  out

(* Substituting the stuck value on a branch already driven by the
   same constant rewrites nothing; skip it so every applied removal
   strictly shrinks the pin count (termination). *)
let is_noop nl (f : Fault.t) =
  match f.Fault.pin with
  | Fault.Stem -> false
  | Fault.Branch j -> (
      match Netlist.gate nl (Netlist.fanins nl f.Fault.node).(j) with
      | Gate.Const b -> b = f.Fault.stuck
      | _ -> false)

let remove ?pool ?(config = Engine.default_config) ?(max_iterations = 64) nl =
  let gates_before = Netlist.gate_count nl in
  let current = ref (Netlist.copy nl) in
  let removed = ref [] in
  let iterations = ref 0 in
  let rec loop () =
    incr iterations;
    let report = Engine.analyze ?pool ~config !current in
    let pick =
      List.find_map
        (fun r ->
          if r.Engine.verdict = Engine.Untestable then
            List.find_opt (fun f -> not (is_noop !current f)) r.Engine.members
          else None)
        report.Engine.results
    in
    match pick with
    | Some f when !iterations < max_iterations ->
        current := apply !current f;
        removed := f :: !removed;
        loop ()
    | _ -> report
  in
  let final_report = loop () in
  {
    netlist = !current;
    removed = List.rev !removed;
    iterations = !iterations;
    gates_before;
    gates_after = Netlist.gate_count !current;
    final_report;
  }
