(** Redundancy removal from untestable stuck-at faults.

    An untestable fault is an equivalence proof: no input vector
    distinguishes the faulty circuit from the healthy one, so pinning
    that line to its stuck value preserves every output function —
    care set and don't-care set alike.  Removal therefore substitutes
    the constant on the faulty line and constant-propagates: gates
    absorb or drop constant fanins ([And] with a 0 becomes the
    constant, with a 1 drops the pin; [Xor] folds parity; [Cell]
    tables cofactor down), and the netlist is rebuilt over the cone of
    the outputs so dead logic disappears.

    Soundness requires one fault at a time: two individually
    untestable faults need not be {e simultaneously} redundant (the
    second proof is relative to the unmodified circuit).  The loop
    applies the first untestable class in canonical order, re-analyses
    the rewritten netlist, and repeats to a fixpoint.  Each applied
    rewrite removes at least one pin, so termination is structural.
    Callers wanting an end-to-end guarantee re-check the result with
    [Netlist_check.equiv_spec] (see [Flow.remove_redundant_checked]). *)

type result = {
  netlist : Netlist.t;
      (** the rewritten netlist (a fresh copy even when nothing was
          removed) *)
  removed : Fault.t list;
      (** applied redundancies in application order; each is relative
          to the netlist of its own iteration, ids shift as gates
          vanish *)
  iterations : int;  (** analysis passes, including the final clean one *)
  gates_before : int;
  gates_after : int;
  final_report : Engine.report;  (** the fixpoint analysis *)
}

val apply : Netlist.t -> Fault.t -> Netlist.t
(** [apply nl f] rebuilds [nl] with the faulty line of [f] pinned to
    its stuck value and constants propagated.  Only sound when [f] is
    untestable. *)

val remove :
  ?pool:Parallel.Pool.t ->
  ?config:Engine.config ->
  ?max_iterations:int ->
  Netlist.t ->
  result
(** Iterate analyse-and-apply to a fixpoint (or [max_iterations],
    default 64). *)
