module Gate = Netlist.Gate
module J = Rdca_json.Jsonout

let infinite = max_int / 4

let ( ++ ) a b = if a >= infinite || b >= infinite then infinite else a + b

type t = { cc0 : int array; cc1 : int array; co : int array }

(* Minimum cost of driving fanins to a combination with gate value v,
   by brute force over the (<= 2^5) cell input space. *)
let cell_cc c cc0 cc1 (fis : int array) v =
  let best = ref infinite in
  for idx = 0 to (1 lsl c.Gate.arity) - 1 do
    if Logic.Truth.eval c.Gate.tt idx = v then begin
      let cost = ref 0 in
      for i = 0 to c.Gate.arity - 1 do
        cost :=
          !cost ++ if idx land (1 lsl i) <> 0 then cc1.(fis.(i)) else cc0.(fis.(i))
      done;
      if !cost < !best then best := !cost
    end
  done;
  !best

let controllability nl =
  let n = Netlist.node_count nl in
  let cc0 = Array.make n infinite and cc1 = Array.make n infinite in
  for i = 0 to Netlist.ni nl - 1 do
    cc0.(i) <- 1;
    cc1.(i) <- 1
  done;
  Netlist.iter_nodes nl (fun v g fis ->
      let sum sel = Array.fold_left (fun acc i -> acc ++ sel.(i)) 0 fis in
      let minv sel =
        Array.fold_left (fun acc i -> min acc sel.(i)) infinite fis
      in
      (* Parity DP: cheapest way to make the XOR of the fanins 0/1. *)
      let parity () =
        let b0 = ref 0 and b1 = ref infinite in
        Array.iter
          (fun i ->
            let n0 = min (!b0 ++ cc0.(i)) (!b1 ++ cc1.(i)) in
            let n1 = min (!b0 ++ cc1.(i)) (!b1 ++ cc0.(i)) in
            b0 := n0;
            b1 := n1)
          fis;
        (!b0, !b1)
      in
      let c0, c1 =
        match g with
        | Gate.Input _ -> (1, 1)
        | Gate.Const b -> if b then (infinite, 0) else (0, infinite)
        | Gate.Buf -> (cc0.(fis.(0)) ++ 1, cc1.(fis.(0)) ++ 1)
        | Gate.Not -> (cc1.(fis.(0)) ++ 1, cc0.(fis.(0)) ++ 1)
        | Gate.And -> (minv cc0 ++ 1, sum cc1 ++ 1)
        | Gate.Nand -> (sum cc1 ++ 1, minv cc0 ++ 1)
        | Gate.Or -> (sum cc0 ++ 1, minv cc1 ++ 1)
        | Gate.Nor -> (minv cc1 ++ 1, sum cc0 ++ 1)
        | Gate.Xor ->
            let p0, p1 = parity () in
            (p0 ++ 1, p1 ++ 1)
        | Gate.Xnor ->
            let p0, p1 = parity () in
            (p1 ++ 1, p0 ++ 1)
        | Gate.Cell c ->
            (cell_cc c cc0 cc1 fis false ++ 1, cell_cc c cc0 cc1 fis true ++ 1)
      in
      cc0.(v) <- c0;
      cc1.(v) <- c1);
  (cc0, cc1)

(* Cost of sensitising pin [j] of gate [g]: set the other fanins to
   non-controlling values so the pin's value reaches the gate output. *)
let sensitize_cost g fis j cc0 cc1 =
  let others sel =
    let acc = ref 0 in
    Array.iteri (fun k i -> if k <> j then acc := !acc ++ sel.(i)) fis;
    !acc
  in
  match g with
  | Gate.Buf | Gate.Not -> 0
  | Gate.And | Gate.Nand -> others cc1
  | Gate.Or | Gate.Nor -> others cc0
  | Gate.Xor | Gate.Xnor ->
      let acc = ref 0 in
      Array.iteri
        (fun k i -> if k <> j then acc := !acc ++ min cc0.(i) cc1.(i))
        fis;
      !acc
  | Gate.Cell c ->
      (* Cheapest assignment of the other pins under which the cell
         output depends on pin j. *)
      let best = ref infinite in
      for idx = 0 to (1 lsl c.Gate.arity) - 1 do
        if idx land (1 lsl j) = 0 then begin
          let v0 = Logic.Truth.eval c.Gate.tt idx in
          let v1 = Logic.Truth.eval c.Gate.tt (idx lor (1 lsl j)) in
          if v0 <> v1 then begin
            let cost = ref 0 in
            for i = 0 to c.Gate.arity - 1 do
              if i <> j then
                cost :=
                  !cost
                  ++
                  if idx land (1 lsl i) <> 0 then cc1.(fis.(i))
                  else cc0.(fis.(i))
            done;
            if !cost < !best then best := !cost
          end
        end
      done;
      !best
  | Gate.Input _ | Gate.Const _ -> infinite

let compute nl =
  let cc0, cc1 = controllability nl in
  let n = Netlist.node_count nl in
  let co = Array.make n infinite in
  Array.iter (fun o -> co.(o) <- 0) (Netlist.outputs nl);
  (* Consumers have larger ids (topological order), so one descending
     sweep sees final CO values for every reader. *)
  for v = n - 1 downto 0 do
    match Netlist.gate nl v with
    | Gate.Input _ | Gate.Const _ -> ()
    | g ->
        let fis = Netlist.fanins nl v in
        Array.iteri
          (fun j d ->
            let c = co.(v) ++ sensitize_cost g fis j cc0 cc1 ++ 1 in
            if c < co.(d) then co.(d) <- c)
          fis
  done;
  { cc0; cc1; co }

type summary = {
  max_cc0 : int;
  max_cc1 : int;
  max_co : int;
  mean_cc0 : float;
  mean_cc1 : float;
  mean_co : float;
  uncontrollable : int;
  unobservable : int;
}

let finite_stats a =
  let mx = ref 0 and sum = ref 0 and cnt = ref 0 in
  Array.iter
    (fun x ->
      if x < infinite then begin
        if x > !mx then mx := x;
        sum := !sum + x;
        incr cnt
      end)
    a;
  (!mx, (if !cnt = 0 then 0.0 else float_of_int !sum /. float_of_int !cnt))

let summarize t =
  let max_cc0, mean_cc0 = finite_stats t.cc0 in
  let max_cc1, mean_cc1 = finite_stats t.cc1 in
  let max_co, mean_co = finite_stats t.co in
  let uncontrollable = ref 0 and unobservable = ref 0 in
  Array.iteri
    (fun i c0 -> if c0 >= infinite || t.cc1.(i) >= infinite then incr uncontrollable)
    t.cc0;
  Array.iter (fun c -> if c >= infinite then incr unobservable) t.co;
  {
    max_cc0;
    max_cc1;
    max_co;
    mean_cc0;
    mean_cc1;
    mean_co;
    uncontrollable = !uncontrollable;
    unobservable = !unobservable;
  }

let summary_to_json t =
  let s = summarize t in
  J.Obj
    [
      ("max_cc0", J.Int s.max_cc0);
      ("max_cc1", J.Int s.max_cc1);
      ("max_co", J.Int s.max_co);
      ("mean_cc0", J.Float s.mean_cc0);
      ("mean_cc1", J.Float s.mean_cc1);
      ("mean_co", J.Float s.mean_co);
      ("uncontrollable", J.Int s.uncontrollable);
      ("unobservable", J.Int s.unobservable);
    ]
