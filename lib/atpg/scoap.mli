(** SCOAP-style testability measures (Goldstein's controllability /
    observability program heuristics).

    [CC0]/[CC1] count, per node, the minimum number of gate
    assignments needed to drive the node to 0/1 (primary inputs cost
    1); [CO] counts the assignments needed to propagate the node's
    value to some primary output (outputs cost 0).  Unreachable goals
    (e.g. forcing a constant to its opposite value, or observing a
    dangling node) are {!infinite}.  These are heuristics — cheap
    upper-structure estimates, not exact — and are reported as
    summary statistics alongside the exact SAT verdicts. *)

val infinite : int
(** Sentinel for "no assignment achieves it"; additions saturate. *)

type t = { cc0 : int array; cc1 : int array; co : int array }
(** Per-node measures, indexed by node id (inputs included). *)

val compute : Netlist.t -> t

type summary = {
  max_cc0 : int;
  max_cc1 : int;
  max_co : int;  (** maxima over finite entries; 0 when none *)
  mean_cc0 : float;
  mean_cc1 : float;
  mean_co : float;  (** means over finite entries *)
  uncontrollable : int;  (** nodes with an infinite CC0 or CC1 *)
  unobservable : int;  (** nodes with infinite CO *)
}

val summarize : t -> summary

val summary_to_json : t -> Rdca_json.Jsonout.t
