module Diag = Check.Diag
module Gate = Netlist.Gate

let untestable_warnings report =
  List.filter_map
    (fun (r : Engine.fault_result) ->
      if r.Engine.verdict = Engine.Untestable then
        let f = r.Engine.rep in
        Some
          (Diag.warn ~code:"untestable-fault" ~loc:(Diag.Node f.Fault.node)
             "%s admits no test (%d collapsed fault%s); the line is redundant"
             (Fault.to_string f) r.Engine.class_size
             (if r.Engine.class_size = 1 then "" else "s"))
      else None)
    report.Engine.results

(* An output whose stem stuck-at-v fault is untestable computes the
   constant v: no defect on it is ever observable, so the circuit is
   inadmissible under the stuck-at model. *)
let inadmissible_errors nl report =
  let tbl = Engine.verdict_table report in
  let stem_untestable node stuck =
    match Hashtbl.find_opt tbl { Fault.node; pin = Fault.Stem; stuck } with
    | Some r -> r.Engine.verdict = Engine.Untestable
    | None -> false
  in
  let errs = ref [] in
  Array.iteri
    (fun oi o ->
      let const_err v =
        errs :=
          Diag.error ~code:"inadmissible-output" ~loc:(Diag.Output oi)
            "output computes the constant %d (stuck-at-%d is untestable): \
             inadmissible under stuck-at defects"
            (if v then 1 else 0)
            (if v then 1 else 0)
          :: !errs
      in
      match Netlist.gate nl o with
      | Gate.Const b -> const_err b
      | Gate.Input _ -> ()
      | _ ->
          if stem_untestable o false then const_err false
          else if stem_untestable o true then const_err true)
    (Netlist.outputs nl);
  List.rev !errs

let diagnostics nl report =
  let warnings = Diag.cap ~limit:20 (untestable_warnings report) in
  let errors = inadmissible_errors nl report in
  let mismatch =
    if report.Engine.disagreements > 0 then
      [
        Diag.error ~code:"atpg-backend-mismatch" ~loc:Diag.Global
          "SAT and reference backends disagree on %d fault class(es)"
          report.Engine.disagreements;
      ]
    else []
  in
  let summary =
    Diag.info ~code:"fault-coverage" ~loc:Diag.Global
      "fault coverage %.1f%% (%d/%d faults testable), %d class(es) from %d \
       fault(s) (%.2fx collapse)"
      (100.0 *. report.Engine.coverage)
      report.Engine.testable report.Engine.total_faults report.Engine.classes
      report.Engine.total_faults report.Engine.collapse_ratio
  in
  mismatch @ errors @ warnings @ [ summary ]
