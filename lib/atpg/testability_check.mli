(** Testability verdicts as {!Check.Diag} diagnostics.

    Severity contract, extending the [rdca check] catalog:
    - [untestable-fault] ({e warning}, node location): the class
      representative admits no test; the line is redundant logic.
      Flood-controlled through {!Check.Diag.cap} (default 20,
      overridable via [Check.Diag.set_max_diags]).
    - [inadmissible-output] ({e error}, output location): an output
      stem stuck-at fault is untestable — the output function is
      constant, so the circuit cannot be distinguished from a failed
      one and is inadmissible under stuck-at defects (exit 1 in the
      CLI).
    - [atpg-backend-mismatch] ({e error}, global): the
      [Differential] backend saw SAT and the reference engine
      disagree on at least one verdict.
    - [fault-coverage] ({e info}, global): summary line. *)

val diagnostics : Netlist.t -> Engine.report -> Check.Diag.t list
