type t = int
(* Node handles index into the manager's node arrays.  Handle 0 is the
   0-terminal, handle 1 the 1-terminal. *)

type man = {
  nvars : int;
  mutable var_of : int array; (* variable index per node; terminals: nvars *)
  mutable low_of : int array;
  mutable high_of : int array;
  mutable next : int; (* next free slot *)
  unique : (int * int * int, int) Hashtbl.t; (* (var,low,high) -> node *)
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let make_man ~nvars =
  if nvars < 0 then invalid_arg "Bdd.make_man";
  let cap = 1024 in
  let m =
    {
      nvars;
      var_of = Array.make cap 0;
      low_of = Array.make cap 0;
      high_of = Array.make cap 0;
      next = 2;
      unique = Hashtbl.create 1024;
      ite_cache = Hashtbl.create 1024;
    }
  in
  (* Terminals sit below every variable: give them variable index
     [nvars] so the "top variable" comparisons are uniform. *)
  m.var_of.(0) <- nvars;
  m.var_of.(1) <- nvars;
  m.low_of.(0) <- 0;
  m.high_of.(0) <- 0;
  m.low_of.(1) <- 1;
  m.high_of.(1) <- 1;
  m

let nvars m = m.nvars
let zero _ = 0
let one _ = 1
let is_zero _ f = f = 0
let is_one _ f = f = 1
let equal (a : t) (b : t) = a = b

let grow m =
  let cap = Array.length m.var_of in
  if m.next >= cap then begin
    let ncap = cap * 2 in
    let extend a = Array.append a (Array.make cap 0) in
    m.var_of <- extend m.var_of;
    m.low_of <- extend m.low_of;
    m.high_of <- extend m.high_of;
    ignore ncap
  end

let mk m v low high =
  if low = high then low
  else
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        grow m;
        let n = m.next in
        m.next <- n + 1;
        m.var_of.(n) <- v;
        m.low_of.(n) <- low;
        m.high_of.(n) <- high;
        Hashtbl.add m.unique key n;
        n

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var: out of range";
  mk m i 0 1

let nvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.nvar: out of range";
  mk m i 1 0

(* Top variable of up to three nodes. *)
let top2 m a b = min m.var_of.(a) m.var_of.(b)
let top3 m a b c = min m.var_of.(a) (top2 m b c)

let cof m f v ~value =
  if m.var_of.(f) = v then if value then m.high_of.(f) else m.low_of.(f)
  else f

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let v = top3 m f g h in
        let r0 =
          ite m (cof m f v ~value:false) (cof m g v ~value:false)
            (cof m h v ~value:false)
        in
        let r1 =
          ite m (cof m f v ~value:true) (cof m g v ~value:true)
            (cof m h v ~value:true)
        in
        let r = mk m v r0 r1 in
        Hashtbl.add m.ite_cache key r;
        r

let bnot m f = ite m f 0 1
let band m a b = ite m a b 0
let bor m a b = ite m a 1 b
let bxor m a b = ite m a (ite m b 0 1) b

let rec restrict m f ~var:v ~value =
  if m.var_of.(f) > v then f
  else if m.var_of.(f) = v then if value then m.high_of.(f) else m.low_of.(f)
  else
    let fv = m.var_of.(f) in
    mk m fv
      (restrict m m.low_of.(f) ~var:v ~value)
      (restrict m m.high_of.(f) ~var:v ~value)

let exists m vars f =
  List.fold_left
    (fun f v ->
      bor m (restrict m f ~var:v ~value:false) (restrict m f ~var:v ~value:true))
    f vars

let forall m vars f =
  List.fold_left
    (fun f v ->
      band m
        (restrict m f ~var:v ~value:false)
        (restrict m f ~var:v ~value:true))
    f vars

let rec eval m f assignment =
  if f <= 1 then f = 1
  else
    let v = m.var_of.(f) in
    eval m
      (if assignment v then m.high_of.(f) else m.low_of.(f))
      assignment

let eval_minterm m f mt = eval m f (fun i -> mt land (1 lsl i) <> 0)

let satcount_float m f =
  let memo = Hashtbl.create 64 in
  (* Count over the variables below (>=) a node's level; scale at top. *)
  let rec go f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt memo f with
      | Some c -> c
      | None ->
          let v = m.var_of.(f) in
          let weight child =
            let cv = m.var_of.(child) in
            go child *. (2.0 ** float_of_int (cv - v - 1))
          in
          let c = weight m.low_of.(f) +. weight m.high_of.(f) in
          Hashtbl.add memo f c;
          c
  in
  let v = m.var_of.(f) in
  (2.0 ** float_of_int v) *. go f

(* 2^62 is the first count [int] cannot hold (max_int = 2^62 - 1);
   the float comparison is conservative at the boundary because
   2^62 - 1 rounds up to 2^62 in double precision. *)
let max_exact_int_count = 4611686018427387904.0 (* 2^62 *)

let satcount m f =
  let c = satcount_float m f +. 0.5 in
  if c >= max_exact_int_count then
    invalid_arg
      "Bdd.satcount: count exceeds the integer range; use satcount_float"
  else int_of_float c

let iter_minterms m f g =
  if m.nvars > 24 then invalid_arg "Bdd.iter_minterms: nvars too large";
  for mt = 0 to (1 lsl m.nvars) - 1 do
    if eval_minterm m f mt then g mt
  done

let any_sat m f =
  if f = 0 then None
  else
    let rec go f acc =
      if f = 1 then acc
      else
        let v = m.var_of.(f) in
        if m.high_of.(f) <> 0 then go m.high_of.(f) (acc lor (1 lsl v))
        else go m.low_of.(f) acc
    in
    Some (go f 0)

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      go m.low_of.(f);
      go m.high_of.(f)
    end
  in
  go f;
  Hashtbl.length seen

let support m f =
  let vars = Hashtbl.create 16 in
  let seen = Hashtbl.create 64 in
  let rec go f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars m.var_of.(f) ();
      go m.low_of.(f);
      go m.high_of.(f)
    end
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let of_cube m cube =
  let rec go i acc =
    if i >= m.nvars then acc
    else
      let lit =
        match Twolevel.Cube.get cube i with
        | Twolevel.Cube.Zero -> nvar m i
        | Twolevel.Cube.One -> var m i
        | Twolevel.Cube.Free -> 1
      in
      go (i + 1) (band m acc lit)
  in
  go 0 1

let of_cover m cover =
  if Twolevel.Cover.n cover <> m.nvars then
    invalid_arg "Bdd.of_cover: arity mismatch";
  List.fold_left
    (fun acc c -> bor m acc (of_cube m c))
    0
    (Twolevel.Cover.cubes cover)

let of_bv m bv =
  if Bitvec.Bv.length bv <> 1 lsl m.nvars then
    invalid_arg "Bdd.of_bv: length mismatch";
  (* Variable 0 (the root of our order) is bit 0 of the minterm index,
     so the 0/1 branches of variable v are index strides of 2^v. *)
  let rec go v stride base =
    if v = m.nvars then if Bitvec.Bv.get bv base then 1 else 0
    else
      let f0 = go (v + 1) (stride * 2) base in
      let f1 = go (v + 1) (stride * 2) (base + stride) in
      mk m v f0 f1
  in
  go 0 1 0

let to_bv m f =
  if m.nvars > 24 then invalid_arg "Bdd.to_bv: nvars too large";
  let bv = Bitvec.Bv.create (1 lsl m.nvars) in
  iter_minterms m f (Bitvec.Bv.set bv);
  bv

let to_cover m f =
  let cubes = ref [] in
  let rec go f cube =
    if f = 1 then cubes := cube :: !cubes
    else if f = 0 then ()
    else begin
      let v = m.var_of.(f) in
      go m.low_of.(f) (Twolevel.Cube.set cube v Twolevel.Cube.Zero);
      go m.high_of.(f) (Twolevel.Cube.set cube v Twolevel.Cube.One)
    end
  in
  go f (Twolevel.Cube.full ~n:m.nvars);
  Twolevel.Cover.make ~n:m.nvars (List.rev !cubes)

let node_count m = m.next - 2

let clear_caches m = Hashtbl.reset m.ite_cache

let flip_var m f i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.flip_var: out of range";
  let memo = Hashtbl.create 64 in
  let rec go f =
    let v = m.var_of.(f) in
    if v > i then f (* below variable i in the order: independent *)
    else if v = i then mk m i m.high_of.(f) m.low_of.(f)
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let r = mk m v (go m.low_of.(f)) (go m.high_of.(f)) in
          Hashtbl.add memo f r;
          r
  in
  go f

let size_many m roots =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      go m.low_of.(f);
      go m.high_of.(f)
    end
  in
  List.iter go roots;
  Hashtbl.length seen

let is_permutation n order =
  Array.length order = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    order

let convert_with_order m roots ~order =
  if not (is_permutation m.nvars order) then
    invalid_arg "Bdd.convert_with_order: not a permutation";
  let dst = make_man ~nvars:m.nvars in
  (* new level of an original variable *)
  let level_of = Array.make m.nvars 0 in
  Array.iteri (fun p v -> level_of.(v) <- p) order;
  let memo = Hashtbl.create 256 in
  let rec conv f =
    if f <= 1 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let v = m.var_of.(f) in
          let lo = conv m.low_of.(f) in
          let hi = conv m.high_of.(f) in
          let r = ite dst (var dst level_of.(v)) hi lo in
          Hashtbl.add memo f r;
          r
  in
  let roots' = List.map conv roots in
  (dst, roots')

let eval_reordered m root ~order mt =
  eval m root (fun level -> mt land (1 lsl order.(level)) <> 0)

let sift m roots =
  let n = m.nvars in
  let try_order order =
    let dst, roots' = convert_with_order m roots ~order in
    (size_many dst roots', dst, roots')
  in
  let current = ref (Array.init n (fun i -> i)) in
  let best_size = ref (size_many m roots) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 3 do
    improved := false;
    incr passes;
    for v = 0 to n - 1 do
      (* try variable v at every position, keep the best *)
      let base = Array.copy !current in
      let pos_of_v =
        let p = ref 0 in
        Array.iteri (fun i x -> if x = v then p := i) base;
        !p
      in
      let without = Array.of_list (List.filter (( <> ) v) (Array.to_list base)) in
      for p = 0 to n - 1 do
        if p <> pos_of_v then begin
          let cand = Array.make n 0 in
          for i = 0 to n - 2 do
            cand.(if i < p then i else i + 1) <- without.(i)
          done;
          cand.(p) <- v;
          let sz, _, _ = try_order cand in
          if sz < !best_size then begin
            best_size := sz;
            current := cand;
            improved := true
          end
        end
      done
    done
  done;
  let dst, roots' = convert_with_order m roots ~order:!current in
  (dst, roots', !current)

let isop m ~lower ~upper =
  if band m lower (bnot m upper) <> 0 then
    invalid_arg "Bdd.isop: lower not contained in upper";
  let memo = Hashtbl.create 256 in
  (* returns (cubes, bdd of the cover); cubes as Twolevel cubes *)
  let rec go l u =
    if l = 0 then ([], 0)
    else if u = 1 then ([ Twolevel.Cube.full ~n:m.nvars ], 1)
    else
      match Hashtbl.find_opt memo (l, u) with
      | Some r -> r
      | None ->
          let v = top2 m l u in
          let l0 = cof m l v ~value:false and l1 = cof m l v ~value:true in
          let u0 = cof m u v ~value:false and u1 = cof m u v ~value:true in
          (* cubes that must contain the literal !v / v *)
          let c0, f0 = go (band m l0 (bnot m u1)) u0 in
          let c1, f1 = go (band m l1 (bnot m u0)) u1 in
          (* what remains to cover, variable v free *)
          let ld =
            bor m (band m l0 (bnot m f0)) (band m l1 (bnot m f1))
          in
          let cd, fd = go ld (band m u0 u1) in
          let xv = var m v and nxv = nvar m v in
          let cover_bdd =
            bor m fd (bor m (band m nxv f0) (band m xv f1))
          in
          let set_lit lit cube = Twolevel.Cube.set cube v lit in
          let cubes =
            List.map (set_lit Twolevel.Cube.Zero) c0
            @ List.map (set_lit Twolevel.Cube.One) c1
            @ cd
          in
          let r = (cubes, cover_bdd) in
          Hashtbl.add memo (l, u) r;
          r
  in
  let cubes, f = go lower upper in
  (Twolevel.Cover.make ~n:m.nvars cubes, f)
