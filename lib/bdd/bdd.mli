(** Reduced ordered binary decision diagrams.

    A from-scratch substitute for the CUDD package the paper used to
    maintain and manipulate on-, off- and DC-sets.  Nodes are
    hash-consed into a manager's unique table, so semantic equality of
    functions built in the same manager is physical equality of
    handles ({!equal}).  The variable order is fixed (index order);
    dynamic reordering is not needed at the paper's problem sizes.

    Handles are only meaningful with the manager that created them;
    mixing managers raises [Invalid_argument] where detectable. *)

type man
(** A BDD manager: unique table, operation caches, variable count. *)

type t
(** A BDD handle (a function over the manager's variables). *)

(** [make_man ~nvars] creates a manager for variables [0 .. nvars-1].
    @raise Invalid_argument if [nvars < 0]. *)
val make_man : nvars:int -> man

(** [nvars man] is the number of variables. *)
val nvars : man -> int

(** Constants and variables. *)

val zero : man -> t

val one : man -> t

(** [var man i] is the function "variable [i]".
    @raise Invalid_argument if [i] is out of range. *)
val var : man -> int -> t

(** [nvar man i] is the complement of variable [i]. *)
val nvar : man -> int -> t

(** Connectives. *)

val bnot : man -> t -> t

val band : man -> t -> t -> t

val bor : man -> t -> t -> t

val bxor : man -> t -> t -> t

val ite : man -> t -> t -> t -> t

(** [equal a b] — semantic equality (hash-consing makes it O(1)). *)
val equal : t -> t -> bool

val is_zero : man -> t -> bool

val is_one : man -> t -> bool

(** [restrict man f ~var ~value] is the cofactor of [f]. *)
val restrict : man -> t -> var:int -> value:bool -> t

(** [exists man vars f] existentially quantifies the listed variables. *)
val exists : man -> int list -> t -> t

(** [forall man vars f] universally quantifies the listed variables. *)
val forall : man -> int list -> t -> t

(** [eval man f assignment] evaluates [f]; [assignment i] gives the
    value of variable [i]. *)
val eval : man -> t -> (int -> bool) -> bool

(** [eval_minterm man f m] evaluates on the minterm encoding [m]
    (bit [i] of [m] = variable [i]). *)
val eval_minterm : man -> t -> int -> bool

(** [satcount man f] is the number of satisfying assignments over all
    [nvars] variables.
    @raise Invalid_argument when the count reaches [2^62] and can no
    longer be represented as an [int] — wide supports should use
    {!satcount_float} instead. *)
val satcount : man -> t -> int

(** [iter_minterms man f g] applies [g] to every satisfying minterm
    encoding, in increasing order.  Exponential in [nvars]; intended
    for the dense regime the paper works in. *)
val iter_minterms : man -> t -> (int -> unit) -> unit

(** [any_sat man f] is a satisfying minterm, or [None] for [zero]. *)
val any_sat : man -> t -> int option

(** [size man f] is the number of distinct internal nodes of [f]
    (terminals excluded). *)
val size : man -> t -> int

(** [support man f] is the ascending list of variables [f] depends on. *)
val support : man -> t -> int list

(** Conversions. *)

(** [of_cover man cover] builds the BDD of a two-level cover. *)
val of_cover : man -> Twolevel.Cover.t -> t

(** [of_cube man cube] builds the BDD of a single cube. *)
val of_cube : man -> Twolevel.Cube.t -> t

(** [of_bv man bv] builds the BDD of a dense characteristic vector
    (length must be [2^nvars]). *)
val of_bv : man -> Bitvec.Bv.t -> t

(** [to_bv man f] densely expands [f] (requires [nvars <= 24]). *)
val to_bv : man -> t -> Bitvec.Bv.t

(** [to_cover man f] extracts an (unminimised) cube cover of [f] by
    enumerating BDD paths to the 1-terminal. *)
val to_cover : man -> t -> Twolevel.Cover.t

(** [node_count man] is the total number of live nodes in the manager,
    a health metric for tests and benchmarks. *)
val node_count : man -> int

(** [clear_caches man] drops operation caches (unique table is kept). *)
val clear_caches : man -> unit

(** [flip_var man f i] is the function [x -> f (x with variable i
    flipped)] — the symbolic form of the paper's 1-Hamming-distance
    neighbour shift. *)
val flip_var : man -> t -> int -> t

(** [satcount_float man f] is {!satcount} without the integer
    conversion, exact while counts fit the float mantissa (the
    internal computation is float-based either way). *)
val satcount_float : man -> t -> float

(** {1 Variable reordering}

    The manager's order is fixed (variable index = level), so
    reordering rebuilds roots into a fresh manager with relabelled
    variables.  [order.(p)] is the ORIGINAL variable sitting at level
    [p] of the new manager: to evaluate a converted root on an
    original minterm, route original variable [order.(p)] to new
    variable [p] (see [eval_reordered]). *)

(** [size_many man roots] counts distinct internal nodes across all
    roots (shared nodes counted once). *)
val size_many : man -> t list -> int

(** [convert_with_order src roots ~order] rebuilds the roots in a new
    manager where level [p] carries original variable [order.(p)].
    @raise Invalid_argument if [order] is not a permutation. *)
val convert_with_order : man -> t list -> order:int array -> man * t list

(** [eval_reordered man' root ~order m] evaluates a converted root on
    an original-variable minterm. *)
val eval_reordered : man -> t -> order:int array -> int -> bool

(** [sift man roots] greedily searches variable orders (each variable
    tried at every position, best kept; repeated while improving,
    bounded passes) to reduce {!size_many}.  Returns the new manager,
    converted roots and the order found.  Worst-case
    O(passes * nvars^2) rebuilds — a demonstration-grade reimplementation
    of CUDD's sifting. *)
val sift : man -> t list -> man * t list * int array

(** {1 ISOP — irredundant sum-of-products extraction}

    The Minato-Morreale algorithm: given an incompletely specified
    function as the interval [lower, upper] (lower = on-set,
    upper = on-set ∪ DC-set), produce an irredundant cube cover [c]
    with [lower <= c <= upper], entirely symbolically.  Together with
    {!module:Bdd} set manipulation this is the n > 20 synthesis path
    (the dense espresso stays the workhorse below that). *)

(** [isop man ~lower ~upper] is [(cover, cover_bdd)].
    @raise Invalid_argument if [lower] is not contained in [upper]. *)
val isop : man -> lower:t -> upper:t -> Twolevel.Cover.t * t
