type t = { len : int; words : int array }

let bits_per_word = 63
let word_of i = i / bits_per_word
let bit_of i = i mod bits_per_word

let nwords len = if len = 0 then 0 else word_of (len - 1) + 1

let create len =
  if len < 0 then invalid_arg "Bv.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bv: index out of range"

let get t i =
  check t i;
  t.words.(word_of i) land (1 lsl bit_of i) <> 0

let set t i =
  check t i;
  t.words.(word_of i) <- t.words.(word_of i) lor (1 lsl bit_of i)

let clear t i =
  check t i;
  t.words.(word_of i) <- t.words.(word_of i) land lnot (1 lsl bit_of i)

let assign t i b = if b then set t i else clear t i

(* The unsafe variants skip both the length check and the array bounds
   check; callers do a single range check at loop entry. *)
let unsafe_get t i =
  Array.unsafe_get t.words (word_of i) land (1 lsl bit_of i) <> 0

let unsafe_set t i =
  let w = word_of i in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl bit_of i))

let copy t = { len = t.len; words = Array.copy t.words }

(* Mask of valid bits in the last word, so that [complement] and [fill]
   never set padding bits (cardinal and equality depend on them being 0). *)
let last_mask t =
  let r = t.len mod bits_per_word in
  if r = 0 then -1 (* OCaml ints are exactly 63 bits wide: all bits valid *)
  else (1 lsl r) - 1

let fill t b =
  let v = if b then -1 else 0 in
  Array.fill t.words 0 (Array.length t.words) v;
  if b && Array.length t.words > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land last_mask t
  end

(* SWAR popcount.  The masks are built at module init because hex
   literals above [max_int] are rejected: OCaml ints are 63-bit. *)
let swar_mask ~step ~width =
  let rec go acc i =
    if i >= bits_per_word then acc
    else go (acc lor (((1 lsl width) - 1) lsl i)) (i + step)
  in
  go 0 0

let m1 = swar_mask ~step:2 ~width:1 (* 0b...010101 *)
let m2 = swar_mask ~step:4 ~width:2 (* 0b...001100110011 *)
let m4 = swar_mask ~step:8 ~width:4
let h01 = swar_mask ~step:8 ~width:1 (* one per byte *)

let popcount_word w =
  let w = w - ((w lsr 1) land m1) in
  let w = (w land m2) + ((w lsr 2) land m2) in
  let w = (w + (w lsr 4)) land m4 in
  (* Byte sums fit in 7 bits (<= 63 set bits total), so the classic
     multiply-accumulate into the top byte cannot carry out. *)
  (w * h01) lsr 56

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.len = b.len && a.words = b.words

let check_len a b =
  if a.len <> b.len then invalid_arg "Bv: length mismatch"

let map2 op a b =
  check_len a b;
  { len = a.len; words = Array.map2 op a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b
let logxor a b = map2 ( lxor ) a b

let complement a =
  let t = { len = a.len; words = Array.map lnot a.words } in
  if Array.length t.words > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land last_mask t
  end;
  t

let in_place op a b =
  check_len a b;
  Array.iteri (fun i w -> a.words.(i) <- op w b.words.(i)) a.words

let union_in_place a b = in_place ( lor ) a b
let inter_in_place a b = in_place ( land ) a b
let diff_in_place a b = in_place (fun x y -> x land lnot y) a b
let logxor_in_place a b = in_place ( lxor ) a b

let subset a b =
  check_len a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let disjoint a b =
  check_len a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let iter_set f t =
  Array.iteri
    (fun wi w ->
      let rec go w =
        if w <> 0 then begin
          let b = w land -w in
          let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
          f ((wi * bits_per_word) + log2 b 0);
          go (w land (w - 1))
        end
      in
      go w)
    t.words

let fold_set f t init =
  let acc = ref init in
  iter_set (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold_set (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let random ~rng n ~density =
  let t = create n in
  for i = 0 to n - 1 do
    if Random.State.float rng 1.0 < density then set t i
  done;
  t

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done

(* ------------------------------------------------------------------ *)

module Kernel = struct
  (* The word-parallel engine is on unless RDCA_KERNEL=off|0|false asks
     for the scalar oracle — the hook CI's engine matrix flips. *)
  let enabled =
    ref
      (match Sys.getenv_opt "RDCA_KERNEL" with
      | Some ("off" | "0" | "false" | "scalar") -> false
      | _ -> true)

  let use () = !enabled

  let with_mode mode f =
    let prev = !enabled in
    enabled := mode;
    Fun.protect ~finally:(fun () -> enabled := prev) f

  (* [index_mask ~len ~j] has bit m set iff bit [j] of the index [m] is
     zero — the periodic selector the neighbour shift needs.  Built
     word-parallel: for 2^j < 63 each word is a window into a 126-bit
     unrolled period; for 2^j >= 63 each word is constant or has one
     run boundary. *)
  let build_index_mask ~len ~j =
    let s = 1 lsl j in
    let t = create len in
    let w = Array.length t.words in
    if s < bits_per_word then begin
      (* Unroll the infinite pattern to 126 bits; word wi is the 63-bit
         window starting at (wi * 63) mod 2s. *)
      let p_lo = ref 0 and p_hi = ref 0 in
      for idx = 0 to (2 * bits_per_word) - 1 do
        if (idx lsr j) land 1 = 0 then
          if idx < bits_per_word then p_lo := !p_lo lor (1 lsl idx)
          else p_hi := !p_hi lor (1 lsl (idx - bits_per_word))
      done;
      let p_lo = !p_lo and p_hi = !p_hi in
      let period = 2 * s in
      for wi = 0 to w - 1 do
        let off = wi * bits_per_word land (period - 1) in
        let word =
          if off = 0 then p_lo
          else (p_lo lsr off) lor (p_hi lsl (bits_per_word - off))
        in
        Array.unsafe_set t.words wi word
      done
    end
    else
      for wi = 0 to w - 1 do
        let start = wi * bits_per_word in
        let q0 = start lsr j and q1 = (start + bits_per_word - 1) lsr j in
        let word =
          if q0 = q1 then if q0 land 1 = 0 then -1 else 0
          else begin
            (* one parity boundary inside this word *)
            let k = ((q0 + 1) lsl j) - start in
            let low = (1 lsl k) - 1 in
            if q0 land 1 = 0 then low else -1 lxor low
          end
        in
        Array.unsafe_set t.words wi word
      done;
    if w > 0 then t.words.(w - 1) <- t.words.(w - 1) land last_mask t;
    t

  (* A mask is a pure function of (len, j) and the kernels request the
     same few over and over, so memoise.  Stored masks stay internal
     to this module and are only ever read; the lock makes the memo
     safe from parallel worker domains. *)
  let mask_memo : (int * int, t) Hashtbl.t = Hashtbl.create 64
  let mask_lock = Mutex.create ()

  let index_mask ~len ~j =
    Mutex.lock mask_lock;
    let m =
      match Hashtbl.find_opt mask_memo (len, j) with
      | Some m -> m
      | None ->
          let m = build_index_mask ~len ~j in
          Hashtbl.add mask_memo (len, j) m;
          m
    in
    Mutex.unlock mask_lock;
    m

  let check_neighbor name ~j t =
    let s = 1 lsl j in
    if j < 0 || j > 40 || t.len = 0 || t.len mod (2 * s) <> 0 then
      invalid_arg (name ^ ": length must be a multiple of 2^(j+1)")

  (* d[m] = t[m] xor t[m xor 2^j], for all 63 minterms of a word at
     once.  With e[m] = t[m] xor t[m+s], the positions with bit j = 0
     of [e] are exactly the wanted values; their mirror at bit j = 1
     is the same value shifted up by s.  The funnel shifts are fused
     into the xor/mask (downward) and or (upward) passes, so the whole
     computation is two passes and two allocations. *)
  let neighbor_diff ~j t =
    check_neighbor "Bv.Kernel.neighbor_diff" ~j t;
    let s = 1 lsl j in
    let mask = index_mask ~len:t.len ~j in
    let w = Array.length t.words in
    let ws = s / bits_per_word and bs = s mod bits_per_word in
    let e = create t.len in
    for i = 0 to w - 1 do
      let sh =
        if i + ws >= w then 0
        else
          let lo = Array.unsafe_get t.words (i + ws) lsr bs in
          if bs = 0 || i + ws + 1 >= w then lo
          else
            lo lor (Array.unsafe_get t.words (i + ws + 1)
                    lsl (bits_per_word - bs))
      in
      Array.unsafe_set e.words i
        ((sh lxor Array.unsafe_get t.words i)
        land Array.unsafe_get mask.words i)
    done;
    let d = create t.len in
    for i = 0 to w - 1 do
      let sh =
        if i - ws < 0 then 0
        else
          let lo = Array.unsafe_get e.words (i - ws) lsl bs in
          if bs = 0 || i - ws - 1 < 0 then lo
          else
            lo lor (Array.unsafe_get e.words (i - ws - 1)
                    lsr (bits_per_word - bs))
      in
      Array.unsafe_set d.words i (Array.unsafe_get e.words i lor sh)
    done;
    if w > 0 then d.words.(w - 1) <- d.words.(w - 1) land last_mask d;
    d

  let neighbor ~j t =
    let d = neighbor_diff ~j t in
    logxor_in_place d t;
    d

  let popcount_and a b =
    check_len a b;
    let acc = ref 0 in
    for i = 0 to Array.length a.words - 1 do
      acc :=
        !acc
        + popcount_word
            (Array.unsafe_get a.words i land Array.unsafe_get b.words i)
    done;
    !acc

  let popcount_and3 a b c =
    check_len a b;
    check_len a c;
    let acc = ref 0 in
    for i = 0 to Array.length a.words - 1 do
      acc :=
        !acc
        + popcount_word
            (Array.unsafe_get a.words i
            land Array.unsafe_get b.words i
            land Array.unsafe_get c.words i)
    done;
    !acc

  let popcount_or a b =
    check_len a b;
    let acc = ref 0 in
    for i = 0 to Array.length a.words - 1 do
      acc :=
        !acc
        + popcount_word
            (Array.unsafe_get a.words i lor Array.unsafe_get b.words i)
    done;
    !acc

  let popcount_xor a b =
    check_len a b;
    let acc = ref 0 in
    for i = 0 to Array.length a.words - 1 do
      acc :=
        !acc
        + popcount_word
            (Array.unsafe_get a.words i lxor Array.unsafe_get b.words i)
    done;
    !acc

  let popcount_and_masked a b ~mask = popcount_and3 a b mask

  (* Bit-sliced per-index counters: plane k holds bit k of every
     index's count, so adding a 0/1 plane to 2^n counters is a ripple-
     carry over O(bits) whole-vector AND/XOR passes. *)
  type counter = { c_len : int; planes : t array }

  let counter_create ~len ~bits =
    if bits <= 0 then invalid_arg "Bv.Kernel.counter_create";
    { c_len = len; planes = Array.init bits (fun _ -> create len) }

  let counter_length c = c.c_len
  let counter_bits c = Array.length c.planes

  (* The ripple carries run word-column-wise: one pass over the words,
     a short (usually 1-2 level) carry chain per word, no temporary
     vectors.  The incoming plane is only ever read. *)
  let counter_add_bit c plane =
    if length plane <> c.c_len then invalid_arg "Bv.Kernel.counter_add_bit";
    let bits = Array.length c.planes in
    let w = Array.length plane.words in
    for i = 0 to w - 1 do
      let carry = ref (Array.unsafe_get plane.words i) in
      let k = ref 0 in
      while !carry <> 0 do
        if !k >= bits then invalid_arg "Bv.Kernel.counter_add_bit: overflow";
        let p = (Array.unsafe_get c.planes !k).words in
        let pv = Array.unsafe_get p i in
        Array.unsafe_set p i (pv lxor !carry);
        carry := pv land !carry;
        incr k
      done
    done

  let counter_add c src =
    if src.c_len <> c.c_len then invalid_arg "Bv.Kernel.counter_add";
    let bits = Array.length c.planes in
    let sbits = Array.length src.planes in
    let w = Array.length c.planes.(0).words in
    for i = 0 to w - 1 do
      let carry = ref 0 in
      for k = 0 to bits - 1 do
        let p = (Array.unsafe_get c.planes k).words in
        let av = Array.unsafe_get p i
        and bv =
          if k < sbits then Array.unsafe_get src.planes.(k).words i else 0
        in
        Array.unsafe_set p i (av lxor bv lxor !carry);
        carry := (av land bv) lor (!carry land (av lor bv))
      done;
      if !carry <> 0 then invalid_arg "Bv.Kernel.counter_add: overflow"
    done

  (* ---------------------------------------------------------------- *)
  (* Cache-blocked neighbour sweep.                                    *)

  type sweep_op = {
    sw_src : t;
    sw_diff : bool;
    sw_counter : counter option;
    sw_cross : t option;
  }

  (* 256 words = 2 KiB per operand plane: a handful of planes (sources,
     counters, masks, cross sets) stay L1/L2-resident per tile. *)
  let default_tile = 256

  (* One fused pass instead of [nj * ops] full-vector traversals: for
     each tile of words, for each flip bit [j], the neighbour (or
     neighbour-difference) words of every operand are computed on the
     fly — the e/d funnel-shift algebra is exactly the one in
     [neighbor_diff], evaluated per word — and consumed immediately by
     the popcount accumulator and/or the ripple-carry counter column.
     No intermediate 2^n-bit vector is ever materialised, and each
     plane's tile slice is touched once per [j] while hot in cache.
     Per word-column the counter additions happen in the same j-
     ascending order as the word-at-a-time kernels, so results (and
     overflow behaviour) are bit-identical. *)
  let neighbour_sweep ?(tile = default_tile) ~nj ops =
    if tile < 1 then invalid_arg "Bv.Kernel.neighbour_sweep: tile must be >= 1";
    let nops = Array.length ops in
    let accs = Array.make nops 0 in
    if nops > 0 && nj > 0 then begin
      let src0 = ops.(0).sw_src in
      let len = src0.len in
      Array.iter
        (fun op ->
          if op.sw_src.len <> len then
            invalid_arg "Bv.Kernel.neighbour_sweep: length mismatch";
          (match op.sw_counter with
          | Some c when c.c_len <> len ->
              invalid_arg "Bv.Kernel.neighbour_sweep: counter length mismatch"
          | _ -> ());
          match op.sw_cross with
          | Some x when x.len <> len ->
              invalid_arg "Bv.Kernel.neighbour_sweep: cross length mismatch"
          | _ -> ())
        ops;
      for j = 0 to nj - 1 do
        check_neighbor "Bv.Kernel.neighbour_sweep" ~j src0
      done;
      let masks = Array.init nj (fun j -> (index_mask ~len ~j).words) in
      let w = Array.length src0.words in
      let lm = last_mask src0 in
      let lo = ref 0 in
      while !lo < w do
        let hi = min w (!lo + tile) in
        for j = 0 to nj - 1 do
          let s = 1 lsl j in
          let ws = s / bits_per_word and bs = s mod bits_per_word in
          let mask = masks.(j) in
          for oi = 0 to nops - 1 do
            let op = Array.unsafe_get ops oi in
            let tw = op.sw_src.words in
            let e_at x =
              if x < 0 then 0
              else
                let sh =
                  if x + ws >= w then 0
                  else
                    let l = Array.unsafe_get tw (x + ws) lsr bs in
                    if bs = 0 || x + ws + 1 >= w then l
                    else
                      l
                      lor (Array.unsafe_get tw (x + ws + 1)
                          lsl (bits_per_word - bs))
                in
                (sh lxor Array.unsafe_get tw x) land Array.unsafe_get mask x
            in
            for i = !lo to hi - 1 do
              let sh =
                if i - ws < 0 then 0
                else
                  let l = e_at (i - ws) lsl bs in
                  if bs = 0 || i - ws - 1 < 0 then l
                  else l lor (e_at (i - ws - 1) lsr (bits_per_word - bs))
              in
              let d = e_at i lor sh in
              let d = if i = w - 1 then d land lm else d in
              let v = if op.sw_diff then d else d lxor Array.unsafe_get tw i in
              (match op.sw_cross with
              | Some x ->
                  Array.unsafe_set accs oi
                    (Array.unsafe_get accs oi
                    + popcount_word (v land Array.unsafe_get x.words i))
              | None -> ());
              match op.sw_counter with
              | Some c ->
                  let bits = Array.length c.planes in
                  let carry = ref v and k = ref 0 in
                  while !carry <> 0 do
                    if !k >= bits then
                      invalid_arg "Bv.Kernel.counter_add_bit: overflow";
                    let p = (Array.unsafe_get c.planes !k).words in
                    let pv = Array.unsafe_get p i in
                    Array.unsafe_set p i (pv lxor !carry);
                    carry := pv land !carry;
                    incr k
                  done
              | None -> ()
            done
          done
        done;
        lo := hi
      done
    end;
    accs

  let counter_neighbor ~j c =
    { c_len = c.c_len; planes = Array.map (fun p -> neighbor ~j p) c.planes }

  let counter_get c m =
    if m < 0 || m >= c.c_len then invalid_arg "Bv.Kernel.counter_get";
    let v = ref 0 in
    Array.iteri (fun k p -> if unsafe_get p m then v := !v lor (1 lsl k))
      c.planes;
    !v

  let counter_extract c =
    let r = Array.make c.c_len 0 in
    Array.iteri
      (fun k p ->
        let bit = 1 lsl k in
        iter_set (fun i -> Array.unsafe_set r i (Array.unsafe_get r i lor bit)) p)
      c.planes;
    r

  let counter_weighted_sum c ~mask =
    if length mask <> c.c_len then
      invalid_arg "Bv.Kernel.counter_weighted_sum";
    let acc = ref 0 in
    Array.iteri (fun k p -> acc := !acc + (popcount_and p mask lsl k)) c.planes;
    !acc

  (* |a - b| per index plus the sign plane (bit set where b > a), via
     a bit-sliced two's-complement subtract (a + lnot b + 1, initial
     carry all-ones) and conditional negate ((d xor s) + s).  Both
     ripples run word-column-wise in one pass; the padding columns
     compute garbage that the final mask clears.  Requires equal
     widths; the result reuses that width. *)
  let counter_abs_diff a b =
    if a.c_len <> b.c_len || Array.length a.planes <> Array.length b.planes
    then invalid_arg "Bv.Kernel.counter_abs_diff";
    let bits = Array.length a.planes in
    let len = a.c_len in
    let abs = counter_create ~len ~bits in
    let sign = create len in
    let w = Array.length sign.words in
    let tmp = Array.make bits 0 in
    for i = 0 to w - 1 do
      let carry = ref (-1) in
      for k = 0 to bits - 1 do
        let av = Array.unsafe_get a.planes.(k).words i
        and bv = lnot (Array.unsafe_get b.planes.(k).words i) in
        Array.unsafe_set tmp k (av lxor bv lxor !carry);
        carry := (av land bv) lor (!carry land (av lor bv))
      done;
      (* the extra slice (a = 0, lnot b = all-ones) reduces to this *)
      let s = lnot !carry in
      Array.unsafe_set sign.words i s;
      let c2 = ref s in
      for k = 0 to bits - 1 do
        let v = Array.unsafe_get tmp k lxor s in
        Array.unsafe_set (Array.unsafe_get abs.planes k).words i (v lxor !c2);
        c2 := v land !c2
      done
    done;
    if w > 0 then begin
      let lm = last_mask sign in
      sign.words.(w - 1) <- sign.words.(w - 1) land lm;
      Array.iter
        (fun p -> p.words.(w - 1) <- p.words.(w - 1) land lm)
        abs.planes
    end;
    (abs, sign)
end
