(** Packed, fixed-length bit vectors.

    A [Bv.t] is a mutable vector of [length t] booleans stored 63 per
    [int].  It is the workhorse set representation for on-, off- and
    DC-sets of dense function specifications: index [i] stands for the
    minterm with binary encoding [i]. *)

type t

(** [create n] is a vector of [n] bits, all cleared.
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [length t] is the number of bits in [t]. *)
val length : t -> int

(** [get t i] is bit [i]. @raise Invalid_argument if out of range. *)
val get : t -> int -> bool

(** [set t i] sets bit [i] to one. *)
val set : t -> int -> unit

(** [clear t i] sets bit [i] to zero. *)
val clear : t -> int -> unit

(** [assign t i b] sets bit [i] to [b]. *)
val assign : t -> int -> bool -> unit

(** Unchecked accessors for hot scalar loops: the caller performs a
    single range check at loop entry instead of one per bit.  Reading
    or writing out of range is undefined behaviour. *)

val unsafe_get : t -> int -> bool

val unsafe_set : t -> int -> unit

(** [copy t] is a fresh vector equal to [t]. *)
val copy : t -> t

(** [fill t b] sets every bit of [t] to [b]. *)
val fill : t -> bool -> unit

(** [cardinal t] is the number of set bits. *)
val cardinal : t -> int

(** [is_empty t] is [cardinal t = 0], computed without a full count. *)
val is_empty : t -> bool

(** [equal a b] tests equality of lengths and contents. *)
val equal : t -> t -> bool

(** Bitwise operations; all return fresh vectors.
    @raise Invalid_argument on length mismatch. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val logxor : t -> t -> t
val complement : t -> t

(** In-place variants storing the result in the first argument. *)

val union_in_place : t -> t -> unit
val inter_in_place : t -> t -> unit
val diff_in_place : t -> t -> unit
val logxor_in_place : t -> t -> unit

(** [subset a b] is [true] when every set bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] is [true] when [a] and [b] share no set bit. *)
val disjoint : t -> t -> bool

(** [iter_set f t] applies [f] to the index of every set bit, in
    increasing order. *)
val iter_set : (int -> unit) -> t -> unit

(** [fold_set f t init] folds [f] over indices of set bits, increasing. *)
val fold_set : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list t] is the increasing list of set-bit indices. *)
val to_list : t -> int list

(** [of_list n l] is a vector of length [n] with exactly the indices of
    [l] set. @raise Invalid_argument if an index is out of range. *)
val of_list : int -> int list -> t

(** [random ~rng n ~density] is a vector of [n] bits where each bit is
    set independently with probability [density]. *)
val random : rng:Random.State.t -> int -> density:float -> t

(** [pp] prints as a 0/1 string, bit 0 leftmost. *)
val pp : Format.formatter -> t -> unit

(** Word-parallel bit kernels over minterm-indexed vectors.

    A vector of length [2^n] indexed by minterm encoding supports
    1-Hamming-neighbour queries 63 minterms per word operation: the
    permutation [m -> m xor 2^j] decomposes into two funnel shifts by
    [2^j] plus a periodic index mask, and per-minterm neighbour counts
    are kept {e bit-sliced} (one vector per binary digit of the count)
    so n-way counting costs O(n log n) vector passes instead of
    O(n 2^n) scalar probes.

    Every consumer of these kernels keeps its scalar implementation as
    a reference oracle; {!enabled} switches between the two engines and
    the differential tests assert bit-identical results. *)
module Kernel : sig
  (** Engine toggle, [true] by default; starting value honours the
      [RDCA_KERNEL] environment variable ([off]/[0]/[false]/[scalar]
      select the scalar oracle).  Flip only around sequential sections
      (the bench harness' scalar runs); readers do not synchronise. *)
  val enabled : bool ref

  (** [use ()] is [!enabled]. *)
  val use : unit -> bool

  (** [with_mode m f] runs [f] with [enabled := m], restoring the
      previous engine afterwards (also on exceptions). *)
  val with_mode : bool -> (unit -> 'a) -> 'a

  (** [neighbor ~j t] is [r] with [r.(m) = t.(m lxor 2^j)].
      @raise Invalid_argument unless [length t] is a positive multiple
      of [2^(j+1)]. *)
  val neighbor : j:int -> t -> t

  (** [neighbor_diff ~j t] is [r] with
      [r.(m) = t.(m) <> t.(m lxor 2^j)] — "does flipping input j
      change the value" for every minterm at once. *)
  val neighbor_diff : j:int -> t -> t

  (** Fused popcounts of word-wise combinations, without
      materialising the combined vector. *)

  val popcount_and : t -> t -> int

  val popcount_and3 : t -> t -> t -> int

  val popcount_or : t -> t -> int

  val popcount_xor : t -> t -> int

  (** [popcount_and_masked a b ~mask] is
      [cardinal (inter (inter a b) mask)] — one pass, no allocation. *)
  val popcount_and_masked : t -> t -> mask:t -> int

  (** {1 Bit-sliced per-index counters} *)

  type counter

  (** [counter_create ~len ~bits] is [len] zeroed counters, each able
      to hold values below [2^bits]. *)
  val counter_create : len:int -> bits:int -> counter

  val counter_length : counter -> int

  val counter_bits : counter -> int

  (** [counter_add_bit c plane] adds the 0/1 [plane] to every counter.
      @raise Invalid_argument on length mismatch or overflow. *)
  val counter_add_bit : counter -> t -> unit

  (** [counter_add c src] adds [src] into [c] index-wise.
      @raise Invalid_argument on mismatch or overflow. *)
  val counter_add : counter -> counter -> unit

  (** [counter_neighbor ~j c] is the counter [m -> c.(m lxor 2^j)]. *)
  val counter_neighbor : j:int -> counter -> counter

  (** [counter_get c m] is the count at index [m]. *)
  val counter_get : counter -> int -> int

  (** [counter_extract c] is every count as a flat array. *)
  val counter_extract : counter -> int array

  (** [counter_weighted_sum c ~mask] is the exact integer
      [sum over set bits m of mask of c.(m)]. *)
  val counter_weighted_sum : counter -> mask:t -> int

  (** [counter_abs_diff a b] is [(|a - b|, sign)] index-wise, where
      [sign] has bit [m] set iff [b.(m) > a.(m)].  Widths must match. *)
  val counter_abs_diff : counter -> counter -> counter * t

  (** {1 Cache-blocked neighbour sweep}

      The fused form of the [for j] loops the reliability kernels all
      share: for every flip bit [j < nj] and every operand, compute
      the neighbour plane [N_j(src) = m -> src.(m lxor 2^j)] (or the
      difference plane [D_j(src) = src xor N_j(src)] when [sw_diff])
      and consume it immediately — accumulating
      [popcount (plane land sw_cross)] and/or adding the plane into
      the bit-sliced [sw_counter].  The work is tiled: each block of
      [tile] words of all operand planes is processed across all [j]
      and all operands before advancing, so every plane slice is
      touched while cache-hot and no intermediate 2^n-bit vector is
      allocated.  Results are bit-identical to composing {!neighbor} /
      {!neighbor_diff} with {!popcount_and} / {!counter_add_bit}
      (per word-column the counter additions run in the same
      j-ascending order, so overflow behaviour matches too). *)

  type sweep_op = {
    sw_src : t;  (** plane whose neighbours are taken *)
    sw_diff : bool;  (** consume [D_j(src)] instead of [N_j(src)] *)
    sw_counter : counter option;  (** add each j-plane into this *)
    sw_cross : t option;  (** accumulate [popcount (plane land cross)] *)
  }

  val default_tile : int

  (** [neighbour_sweep ~nj ops] returns the per-op popcount
      accumulators (0 where [sw_cross] is [None]).  All operands must
      share one length, a multiple of [2^nj].
      @raise Invalid_argument on length mismatch or counter
      overflow. *)
  val neighbour_sweep : ?tile:int -> nj:int -> sweep_op array -> int array
end
