module Diag = Diag
module Spec_lint = Spec_lint
module Cover_check = Cover_check
module Netlist_check = Netlist_check

let implementation ?equiv ?include_redundancy ~spec ?covers ?netlist () =
  let lint = Spec_lint.lint spec in
  let covers_diags =
    match covers with
    | None -> []
    | Some cs -> Cover_check.check_covers ?include_redundancy ~spec cs
  in
  let netlist_diags =
    match netlist with
    | None -> []
    | Some nl ->
        Netlist_check.check nl @ Netlist_check.equiv_spec ?engine:equiv ~spec nl
  in
  lint @ covers_diags @ netlist_diags
