(** Static verification and lint for specs, covers and netlists.

    The reproduction's premise is that don't-care assignment changes
    the implemented function {e without} changing the cared-about
    behaviour.  This subsystem proves that statically at every stage:
    {!Spec_lint} validates the incompletely specified function itself,
    {!Cover_check} that a synthesized SOP covers the on-set and misses
    the off-set, and {!Netlist_check} that the mapped netlist is
    structurally sound and agrees with the spec on its care set.
    Everything reports through the {!Diag} diagnostic framework
    (severities, structured locations, text and JSON emitters).

    See DESIGN.md section 10 for the taxonomy and the kernel-vs-BDD
    equivalence strategy. *)

module Diag = Diag
module Spec_lint = Spec_lint
module Cover_check = Cover_check
module Netlist_check = Netlist_check

(** [implementation ~spec ?covers ?netlist ()] is the full
    post-synthesis check: {!Spec_lint.lint} on [spec], then — when
    given — {!Cover_check.check_covers} of the synthesized covers and
    {!Netlist_check.check} + {!Netlist_check.equiv_spec} of the mapped
    netlist, all against [spec]'s care sets.  [spec] should be the
    {e original} specification: DC assignment may legally move DC
    minterms either way, so checking against the original proves the
    cared-about behaviour survived the whole flow. *)
val implementation :
  ?equiv:Netlist_check.equiv_engine ->
  ?include_redundancy:bool ->
  spec:Pla.Spec.t ->
  ?covers:Twolevel.Cover.t list ->
  ?netlist:Netlist.t ->
  unit ->
  Diag.t list
