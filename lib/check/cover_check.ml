module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bitvec.Bv.Kernel
module Cover = Twolevel.Cover
module Cube = Twolevel.Cube

let coverage_counts_kernel ~spec ~o cover =
  let on, off, _ = Spec.phase_planes spec ~o in
  let cbv = Cover.to_bv cover in
  let missing = K.popcount_and on (Bv.complement cbv) in
  let hits = K.popcount_and off cbv in
  (missing, hits)

let coverage_counts_scalar ~spec ~o cover =
  let size = Spec.size spec in
  let missing = ref 0 and hits = ref 0 in
  for m = 0 to size - 1 do
    let v = Cover.eval cover m in
    match Spec.get spec ~o ~m with
    | Spec.On -> if not v then incr missing
    | Spec.Off -> if v then incr hits
    | Spec.Dc -> ()
  done;
  (!missing, !hits)

let coverage_counts ~spec ~o cover =
  if K.use () then coverage_counts_kernel ~spec ~o cover
  else coverage_counts_scalar ~spec ~o cover

(* First set bit of [bv] not covered/covered evidence for messages. *)
let first_set bv =
  let exception Found of int in
  try
    Bv.iter_set (fun i -> raise (Found i)) bv;
    None
  with Found i -> Some i

let check_cover ?(include_redundancy = true) ~spec ~o cover =
  let ni = Spec.ni spec in
  if Cover.n cover <> ni then
    [
      Diag.error ~code:"cover-arity" ~loc:(Diag.Output o)
        "cover for output y%d is over %d inputs, spec has %d" o (Cover.n cover)
        ni;
    ]
  else begin
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let missing, hits = coverage_counts ~spec ~o cover in
    let on, off, _ = Spec.phase_planes spec ~o in
    let cbv = Cover.to_bv cover in
    if missing > 0 then begin
      let example =
        match first_set (Bv.diff on cbv) with Some m -> m | None -> -1
      in
      add
        (Diag.error ~code:"uncovered-onset" ~loc:(Diag.Output o)
           "cover for output y%d misses %d on-set minterm(s), e.g. minterm %d"
           o missing example)
    end;
    if hits > 0 then begin
      (* Name the cubes that dip into the off-set. *)
      List.iteri
        (fun i cube ->
          let overlap = ref 0 in
          Bv.iter_set
            (fun m -> if Cube.contains_minterm cube m then incr overlap)
            off;
          if !overlap > 0 then
            add
              (Diag.error ~code:"offset-hit"
                 ~loc:(Diag.Cube { output = o; index = i })
                 "cube %d (%s) of output y%d contains %d off-set minterm(s)" i
                 (Cube.to_string ~n:ni cube)
                 o !overlap))
        (Cover.cubes cover)
    end;
    if include_redundancy then begin
      let cubes = Array.of_list (Cover.cubes cover) in
      let ncubes = Array.length cubes in
      (* Single-cube containment: cube i inside cube k (i <> k). *)
      for i = 0 to ncubes - 1 do
        let rec contained k =
          if k >= ncubes then None
          else if k <> i && Cube.subsumes cubes.(k) cubes.(i) then Some k
          else contained (k + 1)
        in
        match contained 0 with
        | Some k ->
            add
              (Diag.warn ~code:"contained-cube"
                 ~loc:(Diag.Cube { output = o; index = i })
                 "cube %d (%s) of output y%d is contained in cube %d" i
                 (Cube.to_string ~n:ni cubes.(i))
                 o k)
        | None ->
            (* Irredundancy: cube i covered by the rest of the cover
               plus the DC-set.  Dense: cube_bv subset (cover \ cube_i)
               union dc. *)
            let _, _, dc = Spec.phase_planes spec ~o in
            let cube_bv =
              Cover.to_bv (Cover.make ~n:ni [ cubes.(i) ])
            in
            let rest =
              Cover.make ~n:ni
                (List.filteri (fun k _ -> k <> i) (Array.to_list cubes))
            in
            let rest_bv = Cover.to_bv rest in
            Bv.union_in_place rest_bv dc;
            if Bv.subset cube_bv rest_bv then
              add
                (Diag.warn ~code:"redundant-cube"
                   ~loc:(Diag.Cube { output = o; index = i })
                   "cube %d (%s) of output y%d is covered by the rest of the \
                    cover and the DC-set"
                   i
                   (Cube.to_string ~n:ni cubes.(i))
                   o)
      done
    end;
    List.rev !diags
  end

let check_covers ?include_redundancy ~spec covers =
  let no = Spec.no spec in
  if List.length covers <> no then
    invalid_arg
      (Printf.sprintf "Cover_check.check_covers: %d covers for %d outputs"
         (List.length covers) no);
  let covers = Array.of_list covers in
  (* Phase planes are built lazily under a mutex on first access;
     touch them before fanning out so workers only read. *)
  for o = 0 to no - 1 do
    ignore (Spec.phase_planes spec ~o)
  done;
  let per_output =
    Parallel.Pool.init no (fun o ->
        check_cover ?include_redundancy ~spec ~o covers.(o))
  in
  List.concat (Array.to_list per_output)
