(** Static verification of synthesized SOP covers against their spec.

    A cover produced for output [o] of a spec is correct when it
    contains every on-set minterm and no off-set minterm (DC minterms
    may fall either way).  {!check_cover} proves both properties by
    dense bit-set algebra over the spec's cached phase planes — fused
    {!Bitvec.Bv.Kernel} popcounts under the kernel engine, a scalar
    [Cover.eval] sweep otherwise — and additionally flags redundant
    structure: cubes contained in a single other cube, and cubes
    covered by the rest of the cover plus the DC-set.

    The two engines are differentially tested: {!coverage_counts_kernel}
    and {!coverage_counts_scalar} must agree exactly on every input. *)

(** [(uncovered_on, off_hits)]: on-set minterms the cover misses, and
    off-set minterms it wrongly contains. *)
val coverage_counts :
  spec:Pla.Spec.t -> o:int -> Twolevel.Cover.t -> int * int

val coverage_counts_kernel :
  spec:Pla.Spec.t -> o:int -> Twolevel.Cover.t -> int * int

val coverage_counts_scalar :
  spec:Pla.Spec.t -> o:int -> Twolevel.Cover.t -> int * int

(** [check_cover ~spec ~o cover] is the diagnostics for one output's
    cover: [uncovered-onset] / [offset-hit] errors (with example
    minterms and the offending cube indices), [contained-cube] and
    [redundant-cube] warnings, plus an arity-mismatch error when the
    cover's input count differs from the spec's.
    [include_redundancy] (default true) controls the warning passes —
    the error passes are cheap, the redundancy passes cost one cover
    expansion per cube. *)
val check_cover :
  ?include_redundancy:bool ->
  spec:Pla.Spec.t ->
  o:int ->
  Twolevel.Cover.t ->
  Diag.t list

(** [check_covers ~spec covers] runs {!check_cover} for every output
    (covers listed in output order) as a parallel map over the worker
    pool, diagnostics concatenated in output order.
    @raise Invalid_argument when the list length differs from the
    spec's output count. *)
val check_covers :
  ?include_redundancy:bool ->
  spec:Pla.Spec.t ->
  Twolevel.Cover.t list ->
  Diag.t list
