type severity = Info | Warn | Error

type location =
  | Global
  | Output of int
  | Input_var of int
  | Minterm of { output : int; minterm : int }
  | Term of { line : int; col : int }
  | Cube of { output : int; index : int }
  | Node of int

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

let make severity ~code ~loc fmt =
  Format.kasprintf (fun message -> { severity; code; loc; message }) fmt

let error ~code ~loc fmt = make Error ~code ~loc fmt

let warn ~code ~loc fmt = make Warn ~code ~loc fmt

let info ~code ~loc fmt = make Info ~code ~loc fmt

let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2

let severity_compare a b = compare (severity_rank a) (severity_rank b)

let severity_name = function
  | Info -> "info"
  | Warn -> "warning"
  | Error -> "error"

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let errors diags = List.filter (fun d -> d.severity = Error) diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let max_severity = function
  | [] -> None
  | d :: rest ->
      Some
        (List.fold_left
           (fun acc x ->
             if severity_compare x.severity acc > 0 then x.severity else acc)
           d.severity rest)

let location_rank = function
  | Global -> (0, 0, 0)
  | Output o -> (1, o, 0)
  | Input_var i -> (2, i, 0)
  | Minterm { output; minterm } -> (3, output, minterm)
  | Term { line; col } -> (4, line, col)
  | Cube { output; index } -> (5, output, index)
  | Node id -> (6, id, 0)

let sort diags =
  List.stable_sort
    (fun a b ->
      let c = severity_compare b.severity a.severity in
      if c <> 0 then c
      else
        let c = compare a.code b.code in
        if c <> 0 then c else compare (location_rank a.loc) (location_rank b.loc))
    diags

let location_to_string = function
  | Global -> "global"
  | Output o -> Printf.sprintf "y%d" o
  | Input_var i -> Printf.sprintf "x%d" i
  | Minterm { output; minterm } -> Printf.sprintf "y%d/m%d" output minterm
  | Term { line; col } ->
      if col > 0 then Printf.sprintf "term:%d:%d" line col
      else Printf.sprintf "term:%d" line
  | Cube { output; index } -> Printf.sprintf "y%d/cube%d" output index
  | Node id -> Printf.sprintf "node:%d" id

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name d.severity) d.code
    (location_to_string d.loc) d.message

let pp_report ppf diags =
  let diags = sort diags in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) diags;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@." (count Error diags)
    (count Warn diags) (count Info diags)

(* Global flood-control override (--max-diags): when set, it replaces
   every analyzer's built-in cap.  Written once at CLI startup, read
   by the analyzers — not synchronised. *)
let max_diags_override = ref None

let set_max_diags = function
  | Some n when n < 0 -> invalid_arg "Diag.set_max_diags: negative limit"
  | v -> max_diags_override := v

let max_diags () = !max_diags_override

let cap ~limit diags =
  let limit =
    match !max_diags_override with Some n -> n | None -> limit
  in
  if List.length diags <= limit then diags
  else
    match diags with
    | [] -> []
    | first :: _ ->
        let shown = List.filteri (fun i _ -> i < limit) diags in
        let extra = List.length diags - limit in
        shown
        @ [
            {
              severity = first.severity;
              code = first.code;
              loc = Global;
              message =
                Printf.sprintf "%d additional %s diagnostic(s) not shown" extra
                  first.code;
            };
          ]

module J = Rdca_json.Jsonout

let location_to_json = function
  | Global -> J.Obj [ ("kind", J.String "global") ]
  | Output o -> J.Obj [ ("kind", J.String "output"); ("output", J.Int o) ]
  | Input_var i -> J.Obj [ ("kind", J.String "input"); ("input", J.Int i) ]
  | Minterm { output; minterm } ->
      J.Obj
        [
          ("kind", J.String "minterm");
          ("output", J.Int output);
          ("minterm", J.Int minterm);
        ]
  | Term { line; col } ->
      J.Obj [ ("kind", J.String "term"); ("line", J.Int line); ("col", J.Int col) ]
  | Cube { output; index } ->
      J.Obj
        [
          ("kind", J.String "cube");
          ("output", J.Int output);
          ("index", J.Int index);
        ]
  | Node id -> J.Obj [ ("kind", J.String "node"); ("node", J.Int id) ]

let to_json d =
  J.Obj
    [
      ("severity", J.String (severity_name d.severity));
      ("code", J.String d.code);
      ("location", location_to_json d.loc);
      ("message", J.String d.message);
    ]

let report_to_json ?(meta = []) diags =
  let diags = sort diags in
  J.Obj
    (meta
    @ [
        ("errors", J.Int (count Error diags));
        ("warnings", J.Int (count Warn diags));
        ("infos", J.Int (count Info diags));
        ("diagnostics", J.List (List.map to_json diags));
      ])
