(** Structured diagnostics for the static verification subsystem.

    Every analyzer in {!Check} reports its findings as a list of
    diagnostics: a severity, a stable machine-readable code, a
    structured location and a human message.  Reports render either as
    text (one line per diagnostic, compiler style) or as JSON through
    {!Rdca_json.Jsonout} for CI consumption. *)

type severity = Info | Warn | Error

(** Where a diagnostic points.  [Term] carries the 1-based source line
    of a .pla product term plus the 1-based column of the offending
    field (the input cube or one output character; [col = 0] when
    unknown) so editors can jump to it; [Cube] indexes into a
    synthesized cover; [Node] is a netlist/AIG node id. *)
type location =
  | Global
  | Output of int
  | Input_var of int
  | Minterm of { output : int; minterm : int }
  | Term of { line : int; col : int }
  | Cube of { output : int; index : int }
  | Node of int

type t = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. ["on-off-overlap"] *)
  loc : location;
  message : string;
}

(** Constructors ([kasprintf]-style format interface). *)

val error : code:string -> loc:location -> ('a, Format.formatter, unit, t) format4 -> 'a

val warn : code:string -> loc:location -> ('a, Format.formatter, unit, t) format4 -> 'a

val info : code:string -> loc:location -> ('a, Format.formatter, unit, t) format4 -> 'a

(** Severity order: [Info < Warn < Error]. *)
val severity_compare : severity -> severity -> int

val severity_name : severity -> string

(** [count sev diags] counts diagnostics at exactly [sev]. *)
val count : severity -> t list -> int

(** [errors diags] keeps only error-severity diagnostics. *)
val errors : t list -> t list

(** [has_errors diags] is [errors diags <> []]. *)
val has_errors : t list -> bool

(** [max_severity diags] is the highest severity present, or [None]
    for an empty report. *)
val max_severity : t list -> severity option

(** [sort diags] orders by severity (errors first), then by code, then
    location — a stable presentation order independent of analyzer
    scheduling. *)
val sort : t list -> t list

(** [cap ~limit diags] truncates a homogeneous diagnostic list (all
    sharing one code/severity) to [limit] entries plus one summary
    diagnostic counting the rest — flood control for pathological
    inputs, deterministic either way.  [limit] is the analyzer's
    built-in default; a {!set_max_diags} override replaces it
    globally. *)
val cap : limit:int -> t list -> t list

(** [set_max_diags (Some n)] overrides every analyzer's built-in
    {!cap} limit with [n] ([--max-diags] in the CLI); [None] restores
    the per-analyzer defaults.  Set once at startup — the override is
    a plain global, not synchronised.
    @raise Invalid_argument on a negative limit. *)
val set_max_diags : int option -> unit

val max_diags : unit -> int option

val location_to_string : location -> string

(** [pp] renders one diagnostic compiler-style:
    ["error[on-off-overlap] term:12: ..."]. *)
val pp : Format.formatter -> t -> unit

(** [pp_report] renders every diagnostic plus a one-line summary. *)
val pp_report : Format.formatter -> t list -> unit

(** JSON forms.  [report_to_json] wraps the diagnostics with summary
    counts; [~meta] key/value pairs land in the report header. *)

val to_json : t -> Rdca_json.Jsonout.t

val report_to_json :
  ?meta:(string * Rdca_json.Jsonout.t) list -> t list -> Rdca_json.Jsonout.t
