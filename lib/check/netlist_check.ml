module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bitvec.Bv.Kernel

type graph = {
  node_count : int;
  inputs : int array;
  fanins : int array array;
  outputs : int array;
}

let graph_of_netlist nl =
  let n = Netlist.node_count nl and ni = Netlist.ni nl in
  let fanins = Array.make n [||] in
  Netlist.iter_nodes nl (fun id _gate fi -> fanins.(id) <- Array.copy fi);
  {
    node_count = n;
    inputs = Array.init ni Fun.id;
    fanins;
    outputs = Array.copy (Netlist.outputs nl);
  }

let graph_of_aig aig =
  let n = Aig.num_nodes aig and ni = Aig.ni aig in
  let fanins = Array.make n [||] in
  Aig.iter_ands aig (fun id f0 f1 ->
      fanins.(id) <- [| Aig.node_of f0; Aig.node_of f1 |]);
  {
    node_count = n;
    inputs = Array.init ni (fun i -> i + 1);
    fanins;
    outputs = Array.map Aig.node_of (Aig.outputs aig);
  }

(* Strongly connected components, iterative Tarjan (explicit DFS
   frames: no recursion depth limit on deep netlists).  Out-of-range
   fanins are skipped here and reported separately. *)
let sccs g =
  let n = g.node_count in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let frames = Stack.create () in
  let counter = ref 0 in
  let result = ref [] in
  let visit v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, 0) frames
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      visit root;
      while not (Stack.is_empty frames) do
        let v, i = Stack.pop frames in
        if i < Array.length g.fanins.(v) then begin
          Stack.push (v, i + 1) frames;
          let w = g.fanins.(v).(i) in
          if w >= 0 && w < n then
            if index.(w) < 0 then visit w
            else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          (match Stack.top frames with
          | p, _ -> low.(p) <- min low.(p) low.(v)
          | exception Stack.Empty -> ());
          if low.(v) = index.(v) then begin
            let scc = ref [] in
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              scc := w :: !scc;
              if w = v then continue := false
            done;
            result := !scc :: !result
          end
        end
      done
    end
  done;
  !result

(* Nodes reachable from the outputs along fanin edges. *)
let output_cone g =
  let reach = Array.make g.node_count false in
  let stack = Stack.create () in
  Array.iter
    (fun o ->
      if o >= 0 && o < g.node_count && not reach.(o) then begin
        reach.(o) <- true;
        Stack.push o stack
      end)
    g.outputs;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    Array.iter
      (fun w ->
        if w >= 0 && w < g.node_count && not reach.(w) then begin
          reach.(w) <- true;
          Stack.push w stack
        end)
      g.fanins.(v)
  done;
  reach

let structure g =
  let n = g.node_count in
  let is_input = Array.make n false in
  Array.iter
    (fun i -> if i >= 0 && i < n then is_input.(i) <- true)
    g.inputs;
  (* Out-of-range fanins. *)
  let bad_fanin = ref [] in
  Array.iteri
    (fun v fi ->
      Array.iter
        (fun w ->
          if w < 0 || w >= n then
            bad_fanin :=
              Diag.error ~code:"bad-fanin" ~loc:(Diag.Node v)
                "node %d has out-of-range fanin id %d" v w
              :: !bad_fanin)
        fi)
    g.fanins;
  (* Combinational cycles: non-trivial SCCs plus self-loops. *)
  let cyclic =
    List.filter
      (fun scc ->
        match scc with
        | [ v ] -> Array.exists (fun w -> w = v) g.fanins.(v)
        | _ -> List.length scc > 1)
      (sccs g)
  in
  let cyclic =
    List.sort compare (List.map (fun scc -> List.sort compare scc) cyclic)
  in
  let cycle_diags =
    List.map
      (fun scc ->
        let head = List.filteri (fun i _ -> i < 8) scc in
        Diag.error ~code:"combinational-cycle"
          ~loc:(Diag.Node (List.hd scc))
          "combinational cycle through %d node(s): %s%s" (List.length scc)
          (String.concat ", " (List.map string_of_int head))
          (if List.length scc > 8 then ", ..." else ""))
      cyclic
  in
  (* Fanout counts. *)
  let fanout = Array.make n 0 in
  Array.iter
    (Array.iter (fun w -> if w >= 0 && w < n then fanout.(w) <- fanout.(w) + 1))
    g.fanins;
  (* Dangling non-input nodes outside every output cone. *)
  let reach = output_cone g in
  let dangling = ref [] in
  for v = n - 1 downto 0 do
    if (not reach.(v)) && not is_input.(v) then
      dangling :=
        Diag.warn ~code:"dangling-node" ~loc:(Diag.Node v)
          "node %d feeds no primary output" v
        :: !dangling
  done;
  (* Floating primary inputs. *)
  let floating = ref [] in
  Array.iter
    (fun i ->
      if i >= 0 && i < n && fanout.(i) = 0 then
        floating :=
          Diag.warn ~code:"floating-input" ~loc:(Diag.Node i)
            "primary input node %d drives nothing" i
          :: !floating)
    g.inputs;
  let floating = List.rev !floating in
  (* Fanout statistics. *)
  let max_fanout = ref 0 and max_node = ref (-1) and edges = ref 0 in
  Array.iteri
    (fun v f ->
      edges := !edges + f;
      if f > !max_fanout then begin
        max_fanout := f;
        max_node := v
      end)
    fanout;
  let stats =
    Diag.info ~code:"fanout-stats" ~loc:Diag.Global
      "%d nodes, %d edges, mean fanout %.2f, max fanout %d%s" n !edges
      (if n = 0 then 0.0 else float_of_int !edges /. float_of_int n)
      !max_fanout
      (if !max_node >= 0 then Printf.sprintf " at node %d" !max_node else "")
  in
  List.rev !bad_fanin @ cycle_diags
  @ Diag.cap ~limit:20 (List.rev !dangling)
  @ Diag.cap ~limit:20 floating
  @ [ stats ]

let check nl = structure (graph_of_netlist nl)

let check_aig aig = structure (graph_of_aig aig)

(* ------------------------------------------------------------------ *)
(* Care-set equivalence of a mapped netlist against its spec. *)

type equiv_engine = Auto | Exhaustive | Bdd_backed

(* Build one BDD per primary output by structural traversal. *)
let bdds_of_netlist man nl =
  let n = Netlist.node_count nl and ni = Netlist.ni nl in
  let values = Array.make n (Bdd.zero man) in
  for i = 0 to ni - 1 do
    values.(i) <- Bdd.var man i
  done;
  Netlist.iter_nodes nl (fun id gate fi ->
      let f k = values.(fi.(k)) in
      let fold op init =
        let acc = ref init in
        for k = 0 to Array.length fi - 1 do
          acc := op !acc (f k)
        done;
        !acc
      in
      let v =
        match gate with
        | Netlist.Gate.Input i -> Bdd.var man i
        | Netlist.Gate.Const b -> if b then Bdd.one man else Bdd.zero man
        | Netlist.Gate.Buf -> f 0
        | Netlist.Gate.Not -> Bdd.bnot man (f 0)
        | Netlist.Gate.And -> fold (Bdd.band man) (Bdd.one man)
        | Netlist.Gate.Nand -> Bdd.bnot man (fold (Bdd.band man) (Bdd.one man))
        | Netlist.Gate.Or -> fold (Bdd.bor man) (Bdd.zero man)
        | Netlist.Gate.Nor -> Bdd.bnot man (fold (Bdd.bor man) (Bdd.zero man))
        | Netlist.Gate.Xor -> fold (Bdd.bxor man) (Bdd.zero man)
        | Netlist.Gate.Xnor -> Bdd.bnot man (fold (Bdd.bxor man) (Bdd.zero man))
        | Netlist.Gate.Cell { tt; arity; _ } ->
            (* OR over the minterms of the cell's truth table. *)
            let acc = ref (Bdd.zero man) in
            for idx = 0 to (1 lsl arity) - 1 do
              if Logic.Truth.eval tt idx then begin
                let term = ref (Bdd.one man) in
                for k = 0 to arity - 1 do
                  let pin = f k in
                  let lit =
                    if idx land (1 lsl k) <> 0 then pin else Bdd.bnot man pin
                  in
                  term := Bdd.band man !term lit
                done;
                acc := Bdd.bor man !acc !term
              end
            done;
            !acc
      in
      values.(id) <- v);
  Array.map (fun o -> values.(o)) (Netlist.outputs nl)

(* First set bit, or -1. *)
let first_set bv =
  let exception Found of int in
  try
    Bv.iter_set (fun i -> raise (Found i)) bv;
    -1
  with Found i -> i

let mismatch_diag ~o ~on_errors ~off_errors ~example =
  Diag.error ~code:"care-set-mismatch" ~loc:(Diag.Output o)
    "netlist output y%d disagrees with the spec on %d on-set and %d off-set \
     minterm(s), e.g. minterm %d"
    o on_errors off_errors example

let equiv_exhaustive ~spec nl =
  let tables = Netlist.output_tables nl in
  let diags = ref [] in
  Array.iteri
    (fun o table ->
      let on, off, _ = Spec.phase_planes spec ~o in
      let not_table = Bv.complement table in
      let on_errors = K.popcount_and on not_table in
      let off_errors = K.popcount_and off table in
      if on_errors > 0 || off_errors > 0 then begin
        let example =
          if on_errors > 0 then first_set (Bv.inter on not_table)
          else first_set (Bv.inter off table)
        in
        diags := mismatch_diag ~o ~on_errors ~off_errors ~example :: !diags
      end)
    tables;
  List.rev !diags

let equiv_bdd ~spec nl =
  let ni = Spec.ni spec in
  let man = Bdd.make_man ~nvars:ni in
  let outs = bdds_of_netlist man nl in
  let diags = ref [] in
  Array.iteri
    (fun o f ->
      let on, off, _ = Spec.phase_planes spec ~o in
      let on_b = Bdd.of_bv man on and off_b = Bdd.of_bv man off in
      let bad_on = Bdd.band man on_b (Bdd.bnot man f) in
      let bad_off = Bdd.band man off_b f in
      let on_errors = Bdd.satcount man bad_on in
      let off_errors = Bdd.satcount man bad_off in
      if on_errors > 0 || off_errors > 0 then begin
        (* Dense expansion only on the (error) path, so the witness is
           the same smallest minterm the exhaustive engine reports. *)
        let bad = if on_errors > 0 then bad_on else bad_off in
        let example = first_set (Bdd.to_bv man bad) in
        diags := mismatch_diag ~o ~on_errors ~off_errors ~example :: !diags
      end)
    outs;
  List.rev !diags

let default_auto_cutoff = 12

let equiv_spec ?(engine = Auto) ?(auto_cutoff = default_auto_cutoff) ~spec nl =
  if Netlist.ni nl <> Spec.ni spec then
    [
      Diag.error ~code:"arity-mismatch" ~loc:Diag.Global
        "netlist has %d inputs, spec has %d" (Netlist.ni nl) (Spec.ni spec);
    ]
  else if Netlist.no nl <> Spec.no spec then
    [
      Diag.error ~code:"arity-mismatch" ~loc:Diag.Global
        "netlist has %d outputs, spec has %d" (Netlist.no nl) (Spec.no spec);
    ]
  else
    match engine with
    | Exhaustive -> equiv_exhaustive ~spec nl
    | Bdd_backed -> equiv_bdd ~spec nl
    | Auto ->
        if Spec.ni spec <= auto_cutoff then equiv_exhaustive ~spec nl
        else equiv_bdd ~spec nl
