(** Structural and functional analysis of gate-level netlists and AIGs.

    Structural checks run over an explicit fanin {!graph} so they also
    apply to representations that — unlike {!Netlist.t}, which enforces
    topological construction — can actually contain defects:
    combinational cycles (strongly connected components via an
    iterative Tarjan), dangling gates outside every output cone,
    primary inputs driving nothing, and fanout statistics.

    Functional checking proves the netlist agrees with a spec on its
    care set.  Two exact engines: [Exhaustive] simulates all [2^ni]
    patterns word-parallel ({!Netlist.output_tables}) and counts
    care-set mismatches with fused kernel popcounts; [Bdd_backed]
    builds one BDD per output by structural traversal and counts
    mismatches symbolically ([satcount]) — the path that scales past
    dense simulation.  [Auto] picks by input count.  Both engines
    return identical diagnostics (differentially tested). *)

(** A combinational fanin graph: node ids [0 .. node_count-1],
    [inputs] the primary-input ids, [fanins.(id)] the driver ids of
    node [id], [outputs] the primary-output ids.  No topological
    assumption — cycles are representable (and detected). *)
type graph = {
  node_count : int;
  inputs : int array;
  fanins : int array array;
  outputs : int array;
}

val graph_of_netlist : Netlist.t -> graph

val graph_of_aig : Aig.t -> graph

(** [structure g] is the structural diagnostics of [g]:
    [combinational-cycle] errors (one per non-trivial SCC or
    self-loop), [dangling-node] warnings for non-input nodes outside
    every output cone, [floating-input] warnings for inputs with no
    fanout, [bad-fanin] errors for out-of-range fanin ids, and one
    [fanout-stats] info. *)
val structure : graph -> Diag.t list

(** [check nl] is [structure (graph_of_netlist nl)]. *)
val check : Netlist.t -> Diag.t list

(** [check_aig aig] is [structure (graph_of_aig aig)]. *)
val check_aig : Aig.t -> Diag.t list

(** Engine for the care-set equivalence proof. *)
type equiv_engine = Auto | Exhaustive | Bdd_backed

(** The input count up to which [Auto] picks [Exhaustive] (12). *)
val default_auto_cutoff : int

(** [equiv_spec ~engine ~spec nl] proves the mapped netlist agrees
    with [spec] on every care minterm of every output:
    [arity-mismatch] errors when input/output counts differ, otherwise
    one [care-set-mismatch] error per disagreeing output (with mismatch
    count and an example minterm).  [Auto] (the default) uses
    [Exhaustive] up to [auto_cutoff] inputs (default
    {!default_auto_cutoff}; the CLI's [--check-cutoff]) and
    [Bdd_backed] beyond. *)
val equiv_spec :
  ?engine:equiv_engine ->
  ?auto_cutoff:int ->
  spec:Pla.Spec.t ->
  Netlist.t ->
  Diag.t list
