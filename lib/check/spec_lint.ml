module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bitvec.Bv.Kernel

(* Does any output's phase depend on input [j]?  Kernel: the phase
   planes must be invariant under the neighbour permutation m -> m xor
   2^j.  Scalar: probe the byte table. *)
let input_used_kernel spec j =
  let no = Spec.no spec in
  let rec loop o =
    if o >= no then false
    else
      let on, off, _ = Spec.phase_planes spec ~o in
      if
        (not (Bv.equal (K.neighbor ~j on) on))
        || not (Bv.equal (K.neighbor ~j off) off)
      then true
      else loop (o + 1)
  in
  loop 0

let input_used_scalar spec j =
  let size = Spec.size spec and no = Spec.no spec in
  let bit = 1 lsl j in
  let rec outputs o =
    if o >= no then false
    else
      let rec minterms m =
        if m >= size then false
        else if
          m land bit = 0 && Spec.get spec ~o ~m <> Spec.get spec ~o ~m:(m lxor bit)
        then true
        else minterms (m + 1)
      in
      if minterms 0 then true else outputs (o + 1)
  in
  outputs 0

let input_used spec j =
  if K.use () then input_used_kernel spec j else input_used_scalar spec j

let unused_inputs spec =
  List.filter
    (fun j -> not (input_used spec j))
    (List.init (Spec.ni spec) Fun.id)

let outputs_equal spec o1 o2 =
  if K.use () then begin
    let on1, off1, _ = Spec.phase_planes spec ~o:o1 in
    let on2, off2, _ = Spec.phase_planes spec ~o:o2 in
    Bv.equal on1 on2 && Bv.equal off1 off2
  end
  else begin
    let size = Spec.size spec in
    let rec loop m =
      if m >= size then true
      else if Spec.get spec ~o:o1 ~m <> Spec.get spec ~o:o2 ~m then false
      else loop (m + 1)
    in
    loop 0
  end

let lint spec =
  let ni = Spec.ni spec and no = Spec.no spec in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Unused inputs. *)
  List.iter
    (fun j ->
      add
        (Diag.warn ~code:"unused-input" ~loc:(Diag.Input_var j)
           "no output depends on input x%d" j))
    (unused_inputs spec);
  (* Constant / free outputs. *)
  for o = 0 to no - 1 do
    let on = Spec.on_count spec ~o
    and off = Spec.off_count spec ~o
    and dc = Spec.dc_count spec ~o in
    if on = 0 && off = 0 then
      add
        (Diag.warn ~code:"free-output" ~loc:(Diag.Output o)
           "output y%d is entirely don't-care" o)
    else if off = 0 then
      add
        (Diag.warn ~code:"constant-output" ~loc:(Diag.Output o)
           "output y%d is never required off (constant 1 realises it%s)" o
           (if dc > 0 then Printf.sprintf "; %d DC minterm(s)" dc else ""))
    else if on = 0 then
      add
        (Diag.warn ~code:"constant-output" ~loc:(Diag.Output o)
           "output y%d is never required on (constant 0 realises it%s)" o
           (if dc > 0 then Printf.sprintf "; %d DC minterm(s)" dc else ""))
  done;
  (* Duplicate outputs (identical phase tables). *)
  for o2 = 1 to no - 1 do
    let rec first o1 =
      if o1 >= o2 then ()
      else if outputs_equal spec o1 o2 then
        add
          (Diag.warn ~code:"duplicate-output" ~loc:(Diag.Output o2)
             "output y%d has the same phase table as y%d" o2 o1)
      else first (o1 + 1)
    in
    first 0
  done;
  (* DC-density statistics. *)
  let size = Spec.size spec in
  let total = size * no in
  let ons = ref 0 and dcs = ref 0 in
  for o = 0 to no - 1 do
    ons := !ons + Spec.on_count spec ~o;
    dcs := !dcs + Spec.dc_count spec ~o
  done;
  let pct x = 100.0 *. float_of_int x /. float_of_int total in
  add
    (Diag.info ~code:"dc-density" ~loc:Diag.Global
       "%d inputs, %d outputs: on %.1f%%, off %.1f%%, DC %.1f%%" ni no
       (pct !ons)
       (pct (total - !ons - !dcs))
       (pct !dcs));
  List.rev !diags

let phase_name = function
  | Spec.On -> "on"
  | Spec.Off -> "off"
  | Spec.Dc -> "dc"

let split_conflicts (pla : Pla.t) =
  List.partition
    (fun (c : Pla.conflict) ->
      match (c.Pla.c_first, c.Pla.c_second) with
      | Spec.On, Spec.Off | Spec.Off, Spec.On -> true
      | _ -> false)
    pla.Pla.conflicts

let overlap_errors pla =
  List.map
    (fun (c : Pla.conflict) ->
      Diag.error ~code:"on-off-overlap"
        ~loc:(Diag.Term { line = c.Pla.c_line; col = c.Pla.c_col })
        "minterm %d of output y%d is asserted both on and off (term at line \
         %d drives it %s over %s)"
        c.Pla.c_minterm c.Pla.c_output c.Pla.c_line
        (phase_name c.Pla.c_second)
        (phase_name c.Pla.c_first))
    (fst (split_conflicts pla))

let lint_pla (pla : Pla.t) =
  let _, contradictory = split_conflicts pla in
  let overlap_diags = overlap_errors pla in
  let contradictory_diags =
    List.map
      (fun (c : Pla.conflict) ->
        Diag.warn ~code:"contradictory-term"
          ~loc:(Diag.Term { line = c.Pla.c_line; col = c.Pla.c_col })
          "minterm %d of output y%d is redeclared %s after %s (term at line %d)"
          c.Pla.c_minterm c.Pla.c_output
          (phase_name c.Pla.c_second)
          (phase_name c.Pla.c_first)
          c.Pla.c_line)
      contradictory
  in
  (* Duplicate term lines: identical input cube and output column. *)
  let seen = Hashtbl.create 64 in
  let dup_diags =
    List.filter_map
      (fun (t : Pla.term) ->
        let key =
          ( Twolevel.Cube.mask0 t.Pla.input,
            Twolevel.Cube.mask1 t.Pla.input,
            t.Pla.output_chars )
        in
        match Hashtbl.find_opt seen key with
        | Some first_line ->
            Some
              (Diag.warn ~code:"duplicate-term"
                 ~loc:(Diag.Term { line = t.Pla.line; col = t.Pla.col })
                 "product term duplicates line %d" first_line)
        | None ->
            Hashtbl.add seen key t.Pla.line;
            None)
      pla.Pla.terms
  in
  Diag.cap ~limit:50 overlap_diags
  @ Diag.cap ~limit:50 contradictory_diags
  @ Diag.cap ~limit:50 dup_diags
  @ lint pla.Pla.spec
