(** Static linting of incompletely specified functions.

    Two entry points: {!lint} performs the semantic checks any
    {!Pla.Spec.t} supports (unused inputs, constant / free / duplicate
    outputs, DC-density statistics); {!lint_pla} additionally sees the
    raw product terms of a parsed .pla file and so can report what the
    dense spec has already resolved away — on/off-set overlap between
    terms (an error: the function is inconsistent), contradictory
    care/DC assertions, and duplicate term lines.

    Engine: the input-dependence and duplicate-output scans run on the
    cached {!Pla.Spec.phase_planes} through {!Bitvec.Bv.Kernel} when
    the kernel engine is enabled, and as scalar byte-table sweeps
    otherwise; both produce identical diagnostics (differentially
    tested). *)

(** [unused_inputs spec] is the ascending list of input variables no
    output depends on (phases included: an input that only reshuffles
    DC minterms still counts as used). *)
val unused_inputs : Pla.Spec.t -> int list

(** [lint spec] is the semantic diagnostics of [spec]. *)
val lint : Pla.Spec.t -> Diag.t list

(** [overlap_errors pla] is just the on/off-set overlap errors of
    [pla] — the cheap consistency gate {!Rdca_flow.Flow} runs before
    accepting a specification, without the full lint cost. *)
val overlap_errors : Pla.t -> Diag.t list

(** [lint_pla pla] is [lint pla.spec] plus the term-level checks. *)
val lint_pla : Pla.t -> Diag.t list
