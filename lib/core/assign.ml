module Spec = Pla.Spec
module Cover = Twolevel.Cover

let ranking ~fraction spec =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Assign.ranking: fraction must be in [0,1]";
  let out = Spec.copy spec in
  for o = 0 to Spec.no spec - 1 do
    (* One batched neighbour count serves both the ranking weights and
       the majority phases of every minterm assigned below. *)
    let on, off, _ = Spec.neighbour_counts_batch spec ~o in
    let ranked = ref [] in
    Spec.iter_dc spec ~o (fun m ->
        let w = abs (on.(m) - off.(m)) in
        if w <> 0 then ranked := (m, w) :: !ranked);
    let ranked =
      List.sort
        (fun (m1, w1) (m2, w2) ->
          match compare w2 w1 with 0 -> compare m1 m2 | c -> c)
        !ranked
    in
    let take =
      int_of_float (Float.round (fraction *. float_of_int (List.length ranked)))
    in
    List.iteri
      (fun i (m, _w) ->
        (* non-zero weight means one phase strictly dominates *)
        if i < take then Spec.assign_dc out ~o ~m (on.(m) > off.(m)))
      ranked
  done;
  out

let by_complexity ~threshold spec =
  let out = Spec.copy spec in
  for o = 0 to Spec.no spec - 1 do
    let lcf = Metrics.local_complexity_factors spec ~o in
    let on, off, _ = Spec.neighbour_counts_batch spec ~o in
    Spec.iter_dc spec ~o (fun m ->
        if lcf.(m) < threshold then
          (* majority phase; ties assign to 0 (Figure 7: else x <- 0) *)
          Spec.assign_dc out ~o ~m (on.(m) > off.(m)))
  done;
  out

let complete spec = ranking ~fraction:1.0 spec

let conventional spec =
  let out = Spec.copy spec in
  let ni = Spec.ni spec in
  let covers =
    List.init (Spec.no spec) (fun o ->
        let on = Spec.on_bv spec ~o and dc = Spec.dc_bv spec ~o in
        let cover = Espresso.Dense.minimize ~n:ni ~on ~dc in
        Spec.iter_dc spec ~o (fun m ->
            Spec.assign_dc out ~o ~m (Cover.eval cover m));
        cover)
  in
  (out, covers)

let assigned_dc_fraction ~before ~after =
  let dcs = ref 0 and assigned = ref 0 in
  for o = 0 to Spec.no before - 1 do
    Spec.iter_dc before ~o (fun m ->
        incr dcs;
        if Spec.get after ~o ~m <> Spec.Dc then incr assigned)
  done;
  if !dcs = 0 then 0.0 else float_of_int !assigned /. float_of_int !dcs

let ranking_matching_budget ~reference spec =
  (* Count how many DCs the reference assigned, then pick the ranking
     fraction that assigns the same number of list entries. *)
  let target = ref 0 and listed = ref 0 in
  for o = 0 to Spec.no spec - 1 do
    Spec.iter_dc spec ~o (fun m ->
        if Spec.get reference ~o ~m <> Spec.Dc then incr target);
    listed := !listed + List.length (Metrics.dc_ranking spec ~o)
  done;
  let fraction =
    if !listed = 0 then 0.0
    else min 1.0 (float_of_int !target /. float_of_int !listed)
  in
  ranking ~fraction spec
