module Spec = Pla.Spec

let weight spec ~o ~m =
  let on, off, _ = Spec.neighbour_counts spec ~o ~m in
  abs (on - off)

let majority_phase spec ~o ~m =
  let on, off, _ = Spec.neighbour_counts spec ~o ~m in
  if on > off then Some true else if off > on then Some false else None

let complexity_factor = Reliability.Borders.complexity_factor
let mean_complexity_factor = Reliability.Borders.mean_complexity_factor
let expected_complexity_factor = Reliability.Borders.expected_complexity_factor
let local_complexity_factor = Reliability.Borders.local_complexity_factor
let local_complexity_factors = Reliability.Borders.local_complexity_factors

(* The weights come from one batched neighbour count over the whole
   minterm space ([Spec.neighbour_counts_batch] dispatches to the
   word-parallel kernel or the scalar sweep); {!weight} remains the
   per-minterm oracle. *)
let dc_ranking spec ~o =
  let on, off, _ = Spec.neighbour_counts_batch spec ~o in
  let ranked = ref [] in
  Spec.iter_dc spec ~o (fun m ->
      let w = abs (on.(m) - off.(m)) in
      if w <> 0 then ranked := (m, w) :: !ranked);
  List.sort
    (fun (m1, w1) (m2, w2) ->
      match compare w2 w1 with 0 -> compare m1 m2 | c -> c)
    !ranked
