(** The Hamming-distance metrics driving reliability-driven DC
    assignment (Sections 2-4 of the paper). *)

(** [weight spec ~o ~m] is the ranking weight
    w = |#on-neighbours - #off-neighbours| of a minterm: how much its
    assignment to the majority phase reduces single-bit-error
    propagation relative to the minority phase. *)
val weight : Pla.Spec.t -> o:int -> m:int -> int

(** [majority_phase spec ~o ~m] is [Some true] when the on-neighbours
    dominate, [Some false] when the off-neighbours dominate, [None] on
    a tie (the paper leaves such minterms unassigned). *)
val majority_phase : Pla.Spec.t -> o:int -> m:int -> bool option

(** Re-exports of the complexity-factor family (defined in
    {!Reliability.Borders}) so the core API is self-contained. *)

val complexity_factor : Pla.Spec.t -> o:int -> float

val mean_complexity_factor : Pla.Spec.t -> float

val expected_complexity_factor : Pla.Spec.t -> o:int -> float

val local_complexity_factor : Pla.Spec.t -> o:int -> m:int -> float

val local_complexity_factors : Pla.Spec.t -> o:int -> float array

(** [dc_ranking spec ~o] is the output's non-zero-weight DC minterms
    sorted by decreasing weight (ties by increasing minterm), exactly
    the DC_List of the paper's Figure 3.  Weights come from one
    batched neighbour count ({!Pla.Spec.neighbour_counts_batch});
    {!weight} is the per-minterm oracle. *)
val dc_ranking : Pla.Spec.t -> o:int -> (int * int) list
(** Each element is [(minterm, weight)]. *)
