module Solver = Sat.Solver
module Cnf = Sat.Cnf
module Gate = Netlist.Gate
module Spec = Pla.Spec
module J = Rdca_json.Jsonout

type backend = Auto | Sat_engine | Bdd_engine | Differential

let backend_name = function
  | Auto -> "auto"
  | Sat_engine -> "sat"
  | Bdd_engine -> "bdd"
  | Differential -> "differential"

type config = {
  depth : int;
  backend : backend;
  auto_cutoff : int;
  max_arity : int;
}

let default_config =
  { depth = 2; backend = Auto; auto_cutoff = 12; max_arity = Logic.Truth.max_vars }

type node_report = {
  node : int;
  gate_name : string;
  arity : int;
  n_leaves : int;
  n_members : int;
  n_roots : int;
  sdc : int;
  odc : int;
  agree : bool option;
}

type report = {
  nodes : node_report list;
  analyzed : int;
  skipped : int;
  nodes_with_dc : int;
  sdc_patterns : int;
  odc_patterns : int;
  disagreements : int;
}

(* ------------------------------------------------------------------ *)
(* SAT engine: one incremental solver per window.  The clause database
   holds the window logic, the duplicated fanout side and the root
   miter; each local pattern is a pair of assumption queries. *)

let sat_masks nl (w : Window.t) =
  let s = Solver.create () in
  let b = Cnf.create s in
  let lit = Hashtbl.create 64 in
  Array.iter (fun l -> Hashtbl.replace lit l (Cnf.fresh b)) w.Window.leaves;
  Array.iter
    (fun n ->
      let fl = Array.map (Hashtbl.find lit) (Netlist.fanins nl n) in
      Hashtbl.replace lit n (Cnf.gate b (Netlist.gate nl n) fl))
    w.Window.members;
  let in_tfo = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace in_tfo n ()) w.Window.tfo;
  let lit2 = Hashtbl.create 16 in
  Hashtbl.replace lit2 w.Window.center
    (Solver.lnot (Hashtbl.find lit w.Window.center));
  Array.iter
    (fun n ->
      if n <> w.Window.center then begin
        let fl =
          Array.map
            (fun f ->
              if Hashtbl.mem in_tfo f then Hashtbl.find lit2 f
              else Hashtbl.find lit f)
            (Netlist.fanins nl n)
        in
        Hashtbl.replace lit2 n (Cnf.gate b (Netlist.gate nl n) fl)
      end)
    w.Window.tfo;
  let diff =
    Cnf.or_ b
      (Array.map
         (fun r -> Cnf.xor_ b (Hashtbl.find lit r) (Hashtbl.find lit2 r))
         w.Window.roots)
  in
  let fis = Netlist.fanins nl w.Window.center in
  let k = Array.length fis in
  let sdc = ref 0 and odc = ref 0 in
  for m = 0 to (1 lsl k) - 1 do
    let assumptions =
      List.init k (fun i ->
          let l = Hashtbl.find lit fis.(i) in
          if m land (1 lsl i) <> 0 then l else Solver.lnot l)
    in
    match Solver.solve ~assumptions s with
    | Solver.Unsat -> sdc := !sdc lor (1 lsl m)
    | Solver.Sat -> (
        match Solver.solve ~assumptions:(diff :: assumptions) s with
        | Solver.Unsat -> odc := !odc lor (1 lsl m)
        | Solver.Sat -> ())
  done;
  (!sdc, !odc)

(* ------------------------------------------------------------------ *)
(* BDD engine: window functions over the leaf variables, exact. *)

let bdd_of_gate man g fb =
  let fold op =
    let acc = ref fb.(0) in
    for i = 1 to Array.length fb - 1 do
      acc := op man !acc fb.(i)
    done;
    !acc
  in
  match g with
  | Gate.Input _ -> invalid_arg "Dc.bdd_of_gate: Input"
  | Gate.Const v -> if v then Bdd.one man else Bdd.zero man
  | Gate.Buf -> fb.(0)
  | Gate.Not -> Bdd.bnot man fb.(0)
  | Gate.And -> fold Bdd.band
  | Gate.Or -> fold Bdd.bor
  | Gate.Nand -> Bdd.bnot man (fold Bdd.band)
  | Gate.Nor -> Bdd.bnot man (fold Bdd.bor)
  | Gate.Xor -> fold Bdd.bxor
  | Gate.Xnor -> Bdd.bnot man (fold Bdd.bxor)
  | Gate.Cell c ->
      let acc = ref (Bdd.zero man) in
      for idx = 0 to (1 lsl c.Gate.arity) - 1 do
        if Logic.Truth.eval c.Gate.tt idx then begin
          let cube = ref (Bdd.one man) in
          for i = 0 to c.Gate.arity - 1 do
            let f =
              if idx land (1 lsl i) <> 0 then fb.(i) else Bdd.bnot man fb.(i)
            in
            cube := Bdd.band man !cube f
          done;
          acc := Bdd.bor man !acc !cube
        end
      done;
      !acc

let bdd_masks nl (w : Window.t) =
  let nv = Array.length w.Window.leaves in
  let man = Bdd.make_man ~nvars:(max 1 nv) in
  let bdd = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace bdd l (Bdd.var man i)) w.Window.leaves;
  Array.iter
    (fun n ->
      let fb = Array.map (Hashtbl.find bdd) (Netlist.fanins nl n) in
      Hashtbl.replace bdd n (bdd_of_gate man (Netlist.gate nl n) fb))
    w.Window.members;
  let in_tfo = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace in_tfo n ()) w.Window.tfo;
  let bdd2 = Hashtbl.create 16 in
  Hashtbl.replace bdd2 w.Window.center
    (Bdd.bnot man (Hashtbl.find bdd w.Window.center));
  Array.iter
    (fun n ->
      if n <> w.Window.center then begin
        let fb =
          Array.map
            (fun f ->
              if Hashtbl.mem in_tfo f then Hashtbl.find bdd2 f
              else Hashtbl.find bdd f)
            (Netlist.fanins nl n)
        in
        Hashtbl.replace bdd2 n (bdd_of_gate man (Netlist.gate nl n) fb)
      end)
    w.Window.tfo;
  let miter =
    Array.fold_left
      (fun acc r ->
        Bdd.bor man acc
          (Bdd.bxor man (Hashtbl.find bdd r) (Hashtbl.find bdd2 r)))
      (Bdd.zero man) w.Window.roots
  in
  let fis = Netlist.fanins nl w.Window.center in
  let k = Array.length fis in
  let sdc = ref 0 and odc = ref 0 in
  for m = 0 to (1 lsl k) - 1 do
    let fb = ref (Bdd.one man) in
    for i = 0 to k - 1 do
      let f = Hashtbl.find bdd fis.(i) in
      let f = if m land (1 lsl i) <> 0 then f else Bdd.bnot man f in
      fb := Bdd.band man !fb f
    done;
    if Bdd.is_zero man !fb then sdc := !sdc lor (1 lsl m)
    else if Bdd.is_zero man (Bdd.band man !fb miter) then
      odc := !odc lor (1 lsl m)
  done;
  (!sdc, !odc)

(* ------------------------------------------------------------------ *)
(* Per-node dispatch. *)

let is_candidate nl v =
  v >= Netlist.ni nl
  &&
  match Netlist.gate nl v with
  | Gate.Input _ | Gate.Const _ -> false
  | _ -> Array.length (Netlist.fanins nl v) >= 1

let node_masks nl ~config w =
  let engine =
    match config.backend with
    | Sat_engine -> `Sat
    | Bdd_engine -> `Bdd
    | Differential -> `Both
    | Auto ->
        if Array.length w.Window.leaves <= config.auto_cutoff then `Bdd
        else `Sat
  in
  match engine with
  | `Sat ->
      let s, o = sat_masks nl w in
      (s, o, None)
  | `Bdd ->
      let s, o = bdd_masks nl w in
      (s, o, None)
  | `Both ->
      let s1, o1 = sat_masks nl w in
      let s2, o2 = bdd_masks nl w in
      if s1 = s2 && o1 = o2 then (s1, o1, Some true)
      else (s1 land s2, o1 land o2, Some false)

let analyze_node nl fanouts ~config v =
  let w = Window.extract nl ~fanouts ~depth:config.depth v in
  let sdc, odc, agree = node_masks nl ~config w in
  {
    node = v;
    gate_name = Gate.name (Netlist.gate nl v);
    arity = Array.length (Netlist.fanins nl v);
    n_leaves = Array.length w.Window.leaves;
    n_members = Array.length w.Window.members;
    n_roots = Array.length w.Window.roots;
    sdc;
    odc;
    agree;
  }

let masks_of nl ~config v =
  let fanouts = Window.fanouts nl in
  let w = Window.extract nl ~fanouts ~depth:config.depth v in
  let sdc, odc, _ = node_masks nl ~config w in
  (sdc, odc)

let popcount = Bitvec.Minterm.popcount

let build_report ~skipped nodes =
  let analyzed = List.length nodes in
  let with_dc = ref 0 and sdcs = ref 0 and odcs = ref 0 and dis = ref 0 in
  List.iter
    (fun r ->
      if r.sdc lor r.odc <> 0 then incr with_dc;
      sdcs := !sdcs + popcount r.sdc;
      odcs := !odcs + popcount r.odc;
      if r.agree = Some false then incr dis)
    nodes;
  {
    nodes;
    analyzed;
    skipped;
    nodes_with_dc = !with_dc;
    sdc_patterns = !sdcs;
    odc_patterns = !odcs;
    disagreements = !dis;
  }

let candidates nl ~config =
  let cands = ref [] and skipped = ref 0 in
  Netlist.iter_nodes nl (fun v _ fis ->
      if is_candidate nl v then
        if Array.length fis <= config.max_arity then cands := v :: !cands
        else incr skipped);
  (Array.of_list (List.rev !cands), !skipped)

let analyze ?pool ?(config = default_config) nl =
  let fanouts = Window.fanouts nl in
  let cands, skipped = candidates nl ~config in
  let nodes =
    Parallel.Pool.map ?pool ~chunk:1
      (fun v -> analyze_node nl fanouts ~config v)
      cands
  in
  build_report ~skipped (Array.to_list nodes)

(* ------------------------------------------------------------------ *)
(* Reliability-driven re-assignment of the recovered DC patterns. *)

type strategy = Ranking of float | Lcf of float | Complete

let strategy_name = function
  | Ranking f -> Printf.sprintf "ranking(%g)" f
  | Lcf t -> Printf.sprintf "lcf(%g)" t
  | Complete -> "complete"

let apply_strategy = function
  | Ranking fraction -> Rdca_core.Assign.ranking ~fraction
  | Lcf threshold -> Rdca_core.Assign.by_complexity ~threshold
  | Complete -> Rdca_core.Assign.complete

(* The node's local function as a 1-output spec with the recovered DC
   set, re-assigned by the paper's machinery; unassigned DCs keep the
   current implementation value. *)
let rewrite_tt g ~arity ~dc strategy =
  let eval m =
    Gate.eval g (Array.init arity (fun i -> m land (1 lsl i) <> 0))
  in
  let spec = Spec.create ~ni:arity ~no:1 ~default:Spec.Off in
  for m = 0 to (1 lsl arity) - 1 do
    let phase =
      if dc land (1 lsl m) <> 0 then Spec.Dc
      else if eval m then Spec.On
      else Spec.Off
    in
    Spec.set spec ~o:0 ~m phase
  done;
  let assigned = apply_strategy strategy spec in
  Logic.Truth.of_fun arity (fun m ->
      match Spec.get assigned ~o:0 ~m with
      | Spec.On -> true
      | Spec.Off -> false
      | Spec.Dc -> eval m)

let current_tt g ~arity =
  Logic.Truth.of_fun arity (fun m ->
      Gate.eval g (Array.init arity (fun i -> m land (1 lsl i) <> 0)))

type opt_result = {
  netlist : Netlist.t;
  opt_report : report;
  rewritten : int list;
}

let optimize ?(config = default_config) ?(strategy = Complete) nl =
  let out = Netlist.copy nl in
  (* Fanouts depend only on structure, which rewrites preserve. *)
  let fanouts = Window.fanouts out in
  let nodes = ref [] and skipped = ref 0 and rewritten = ref [] in
  Netlist.iter_nodes out (fun v _ _ ->
      if is_candidate out v then begin
        let fis = Netlist.fanins out v in
        let arity = Array.length fis in
        if arity > config.max_arity then incr skipped
        else begin
          (* Analyze against the current netlist: each rewrite is
             individually sound, so the sweep composes. *)
          let r = analyze_node out fanouts ~config v in
          nodes := r :: !nodes;
          let dc = r.sdc lor r.odc in
          if dc <> 0 then begin
            let g = Netlist.gate out v in
            let tt = current_tt g ~arity in
            let tt' = rewrite_tt g ~arity ~dc strategy in
            if tt' <> tt then begin
              let cell =
                match g with
                | Gate.Cell c -> Gate.Cell { c with Gate.tt = tt' }
                | _ ->
                    Gate.Cell
                      {
                        Gate.cell_name =
                          "dc-" ^ String.lowercase_ascii (Gate.name g);
                        tt = tt';
                        arity;
                        area = 1.0;
                        delay = 1.0;
                        input_cap = 1.0;
                      }
              in
              Netlist.replace_gate out v cell;
              rewritten := v :: !rewritten
            end
          end
        end
      end);
  {
    netlist = out;
    opt_report = build_report ~skipped:!skipped (List.rev !nodes);
    rewritten = List.rev !rewritten;
  }

(* ------------------------------------------------------------------ *)
(* JSON forms. *)

let node_to_json r =
  J.Obj
    [
      ("node", J.Int r.node);
      ("gate", J.String r.gate_name);
      ("arity", J.Int r.arity);
      ("leaves", J.Int r.n_leaves);
      ("members", J.Int r.n_members);
      ("roots", J.Int r.n_roots);
      ("sdc_mask", J.Int r.sdc);
      ("odc_mask", J.Int r.odc);
      ("sdc_patterns", J.Int (popcount r.sdc));
      ("odc_patterns", J.Int (popcount r.odc));
      ( "backends_agree",
        match r.agree with None -> J.Null | Some v -> J.Bool v );
    ]

let report_to_json r =
  J.Obj
    [
      ("analyzed", J.Int r.analyzed);
      ("skipped", J.Int r.skipped);
      ("nodes_with_dc", J.Int r.nodes_with_dc);
      ("sdc_patterns", J.Int r.sdc_patterns);
      ("odc_patterns", J.Int r.odc_patterns);
      ("disagreements", J.Int r.disagreements);
      ("nodes", J.List (List.map node_to_json r.nodes));
    ]

let opt_result_to_json r =
  J.Obj
    [
      ("rewritten_nodes", J.Int (List.length r.rewritten));
      ("rewritten", J.List (List.map (fun v -> J.Int v) r.rewritten));
      ("analysis", report_to_json r.opt_report);
    ]
