(** Network don't-care static analysis: windowed SDC/ODC extraction.

    For each internal node [v], the analysis extracts a {!Window}
    around [v], builds the window miter (the fanout side duplicated
    with [v] complemented) and computes, over the [2^arity] local
    fanin patterns of [v]:

    - {e satisfiability don't cares} (SDC): patterns no assignment of
      the window leaves can produce;
    - {e observability don't cares} (ODC): producible patterns at
      which complementing [v] never changes any window root.

    Two exact engines answer the window queries — a CDCL SAT sweep
    over the miter CNF ({!Sat}) and a BDD evaluation over the window
    leaves ({!Bdd}) — mirroring {!Check.Netlist_check}'s
    Exhaustive/BDD split; [Differential] runs both and flags any
    disagreement.  Windowing makes both conservative: every reported
    pattern is a true network don't care (DESIGN.md §13), unlike
    {!Rdca_core.Decompose} which needs the full [2^ni] simulation.

    {!optimize} feeds the recovered DCs to the paper's assignment
    machinery: each node's local function becomes a 1-output
    {!Pla.Spec} whose DC set is the recovered mask, an {!Rdca_core.Assign}
    strategy re-assigns it, and the node is rewritten in place
    ([Gate.Cell]).  Nodes are processed one at a time against the
    current netlist, so every rewrite is individually
    function-preserving and the sweep composes soundly. *)

(** Engine selection. [Auto] uses the BDD engine when the window has
    at most [auto_cutoff] leaves and SAT beyond; [Differential] runs
    both and compares bit-identically. *)
type backend = Auto | Sat_engine | Bdd_engine | Differential

val backend_name : backend -> string

type config = {
  depth : int;  (** window TFI/TFO depth (default 2) *)
  backend : backend;  (** default [Auto] *)
  auto_cutoff : int;  (** [Auto] leaf-count switchover (default 12) *)
  max_arity : int;
      (** skip nodes with more fanins (default {!Logic.Truth.max_vars}) *)
}

val default_config : config

(** Per-node analysis result.  [sdc]/[odc] are disjoint bitmasks over
    the [2^arity] local patterns, indexed as in {!Logic.Truth}. *)
type node_report = {
  node : int;
  gate_name : string;
  arity : int;
  n_leaves : int;
  n_members : int;
  n_roots : int;
  sdc : int;
  odc : int;
  agree : bool option;
      (** [Differential] only: did the engines match?  On a mismatch
          the masks are intersected (still flagged as a failure). *)
}

type report = {
  nodes : node_report list;  (** analyzed nodes, ascending id *)
  analyzed : int;
  skipped : int;  (** candidates over [max_arity] *)
  nodes_with_dc : int;
  sdc_patterns : int;  (** total SDC patterns over all nodes *)
  odc_patterns : int;
  disagreements : int;  (** nonzero only under [Differential] *)
}

(** [analyze ?pool ?config nl] computes the window don't cares of
    every internal node (windows are independent, so the sweep is
    pool-parallel and bit-identical at any job count). *)
val analyze : ?pool:Parallel.Pool.t -> ?config:config -> Netlist.t -> report

(** [masks_of nl ~config v] is [(sdc, odc)] for one node — the unit
    the engines are differentially tested on.
    @raise Invalid_argument if [v] is a primary input. *)
val masks_of : Netlist.t -> config:config -> int -> int * int

(** How {!optimize} assigns the recovered DC patterns: the paper's
    Figure 3 ranking, Figure 7 complexity filter, or complete
    assignment (every non-tied DC to its majority phase).  Patterns
    left unassigned keep the node's current value. *)
type strategy = Ranking of float | Lcf of float | Complete

val strategy_name : strategy -> string

type opt_result = {
  netlist : Netlist.t;  (** rewritten copy; the input is not mutated *)
  opt_report : report;  (** the analysis observed during the sweep *)
  rewritten : int list;  (** ids whose truth table actually changed *)
}

(** [optimize ?config ?strategy nl] sweeps the nodes in topological
    order, recomputing each window on the current netlist and
    rewriting the node's function on its DC patterns.  The result
    computes exactly the same primary-output functions as [nl]. *)
val optimize : ?config:config -> ?strategy:strategy -> Netlist.t -> opt_result

(** JSON forms of the reports (for [--json] and the CI artifact). *)

val report_to_json : report -> Rdca_json.Jsonout.t

val opt_result_to_json : opt_result -> Rdca_json.Jsonout.t
