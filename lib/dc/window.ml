type t = {
  center : int;
  leaves : int array;
  members : int array;
  tfo : int array;
  roots : int array;
}

let fanouts nl =
  let n = Netlist.node_count nl in
  let deg = Array.make n 0 in
  Netlist.iter_nodes nl (fun _ _ fis ->
      Array.iter (fun f -> deg.(f) <- deg.(f) + 1) fis);
  let out = Array.init n (fun id -> Array.make deg.(id) 0) in
  let fill = Array.make n 0 in
  Netlist.iter_nodes nl (fun id _ fis ->
      Array.iter
        (fun f ->
          out.(f).(fill.(f)) <- id;
          fill.(f) <- fill.(f) + 1)
        fis);
  out

let sorted_keys tbl =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  Array.of_list (List.sort compare keys)

let extract nl ~fanouts ~depth v =
  if depth < 1 then invalid_arg "Window.extract: depth must be >= 1";
  if v < Netlist.ni nl then
    invalid_arg "Window.extract: primary inputs have no window";
  (* Forward BFS: the depth-limited TFO seed. *)
  let tfo0 = Hashtbl.create 64 in
  Hashtbl.replace tfo0 v ();
  let frontier = ref [ v ] in
  for _ = 1 to depth do
    let next = ref [] in
    List.iter
      (fun n ->
        Array.iter
          (fun f ->
            if not (Hashtbl.mem tfo0 f) then begin
              Hashtbl.replace tfo0 f ();
              next := f :: !next
            end)
          fanouts.(n))
      !frontier;
    frontier := !next
  done;
  (* Backward BFS from every TFO node: the full window node set. *)
  let sset = Hashtbl.create 64 in
  Hashtbl.iter (fun n () -> Hashtbl.replace sset n ()) tfo0;
  let frontier = ref (Hashtbl.fold (fun n () acc -> n :: acc) tfo0 []) in
  for _ = 1 to depth do
    let next = ref [] in
    List.iter
      (fun n ->
        Array.iter
          (fun f ->
            if not (Hashtbl.mem sset f) then begin
              Hashtbl.replace sset f ();
              next := f :: !next
            end)
          (Netlist.fanins nl n))
      !frontier;
    frontier := !next
  done;
  let snodes = sorted_keys sset in
  (* The true fanout side: forward closure of [v] within the window
     (ascending id = topological order).  This can exceed the BFS seed
     under reconvergence — a deep descendant pulled in as someone's
     fanin must still be duplicated in the miter. *)
  let tfo_set = Hashtbl.create 64 in
  Hashtbl.replace tfo_set v ();
  Array.iter
    (fun n ->
      if n > v && not (Hashtbl.mem tfo_set n) then
        if
          Array.exists
            (fun f -> Hashtbl.mem tfo_set f)
            (Netlist.fanins nl n)
        then Hashtbl.replace tfo_set n ())
    snodes;
  (* Leaves: primary inputs inside the window, plus out-of-window
     drivers of window members. *)
  let ni = Netlist.ni nl in
  let leaf_set = Hashtbl.create 16 in
  let members = ref [] in
  Array.iter
    (fun n ->
      if n < ni then Hashtbl.replace leaf_set n ()
      else begin
        members := n :: !members;
        Array.iter
          (fun f -> if not (Hashtbl.mem sset f) then Hashtbl.replace leaf_set f ())
          (Netlist.fanins nl n)
      end)
    snodes;
  let members = Array.of_list (List.rev !members) in
  (* Roots: TFO nodes observable outside the duplicated side. *)
  let is_output = Hashtbl.create 16 in
  Array.iter (fun o -> Hashtbl.replace is_output o ()) (Netlist.outputs nl);
  let tfo = sorted_keys tfo_set in
  let roots =
    Array.of_list
      (List.filter
         (fun n ->
           Hashtbl.mem is_output n
           || Array.exists (fun f -> not (Hashtbl.mem tfo_set f)) fanouts.(n))
         (Array.to_list tfo))
  in
  { center = v; leaves = sorted_keys leaf_set; members; tfo; roots }
