(** TFI/TFO window extraction around a netlist node.

    A window is the node neighbourhood the don't-care engines reason
    about: the transitive fanout of the centre node up to [depth]
    levels, plus the transitive fanin (again [depth] levels) of every
    node so collected.  Everything outside is abstracted away —
    boundary drivers become free {e leaf} variables, and observability
    is judged at the {e roots}, the window nodes whose value escapes
    the duplicated fanout side.  Both approximations are conservative:
    don't cares computed on the window are genuine don't cares of the
    full network (see DESIGN.md §13). *)

type t = {
  center : int;  (** the node under analysis *)
  leaves : int array;
      (** free boundary variables, ascending id: primary inputs inside
          the window plus out-of-window drivers of window nodes *)
  members : int array;
      (** non-leaf window nodes in topological (ascending id) order;
          every fanin of a member is a member or a leaf *)
  tfo : int array;
      (** the members whose value can change when [center] flips: the
          forward closure of [center] {e within} the window, ascending;
          always contains [center] *)
  roots : int array;
      (** observability points: [tfo] nodes that are primary outputs
          or have a fanout escaping [tfo] *)
}

(** [fanouts nl] is the fanout adjacency of every node (one entry per
    fanin occurrence, so duplicated fanins appear twice).  Computed
    once per netlist and shared across window extractions. *)
val fanouts : Netlist.t -> int array array

(** [extract nl ~fanouts ~depth v] is the window of depth [depth]
    around node [v].
    @raise Invalid_argument if [depth < 1] or [v] is a primary
    input. *)
val extract : Netlist.t -> fanouts:int array array -> depth:int -> int -> t
