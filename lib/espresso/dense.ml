(* Dense-set espresso: the same EXPAND / IRREDUNDANT / ESSENTIAL /
   REDUCE loop as the cover-algebra implementation, but with every
   coverage question answered against bit-vectors over the 2^n minterm
   space and a per-minterm cover-count array.  Exact for n <= 20 and
   fast enough to minimise every output of every benchmark inside the
   paper's parameter sweeps.

   Key correspondences with classical espresso:
   - raisable(c, j)   <=>  the newly added half-cube avoids the off-set;
   - redundant(c)     <=>  every on-minterm of c is covered >= 2 times;
   - essential(c)     <=>  some on-minterm of c is covered exactly once;
   - reduce(c)        =    supercube of c's uniquely covered on-minterms. *)

module Cube = Twolevel.Cube
module Cover = Twolevel.Cover
module Bv = Bitvec.Bv

type ctx = {
  n : int;
  on : Bv.t; (* on-set minterms *)
  off : Bv.t; (* off-set minterms *)
  counts : int array; (* how many cover cubes contain each minterm *)
}

let iter_cube_minterms ~n f c = Cube.iter_minterms ~n f c

let add_cube ctx c =
  iter_cube_minterms ~n:ctx.n
    (fun m -> ctx.counts.(m) <- ctx.counts.(m) + 1)
    c

let remove_cube ctx c =
  iter_cube_minterms ~n:ctx.n
    (fun m -> ctx.counts.(m) <- ctx.counts.(m) - 1)
    c

(* The half of [Cube.set c j Free] that is new relative to [c]. *)
let flipped_half c j =
  match Cube.get c j with
  | Cube.Free -> invalid_arg "flipped_half: literal already free"
  | Cube.Zero -> Cube.set c j Cube.One
  | Cube.One -> Cube.set c j Cube.Zero

let half_avoids_off ctx half =
  let ok = ref true in
  iter_cube_minterms ~n:ctx.n
    (fun m -> if Bv.get ctx.off m then ok := false)
    half;
  !ok

(* Count of on-minterms in [half] not covered by any cube yet. *)
let half_gain ctx half =
  let gain = ref 0 in
  iter_cube_minterms ~n:ctx.n
    (fun m -> if Bv.get ctx.on m && ctx.counts.(m) = 0 then incr gain)
    half;
  !gain

let specific_vars ~n c =
  let rec go j acc =
    if j < 0 then acc
    else go (j - 1) (if Cube.get c j = Cube.Free then acc else j :: acc)
  in
  go (n - 1) []

(* Expand one cube to a prime against the dense off-set. *)
let expand_cube ctx c =
  let rec grow c =
    let candidates =
      List.filter_map
        (fun j ->
          let half = flipped_half c j in
          if half_avoids_off ctx half then Some (j, half) else None)
        (specific_vars ~n:ctx.n c)
    in
    match candidates with
    | [] -> c
    | _ ->
        let best =
          List.fold_left
            (fun acc (j, half) ->
              let g = half_gain ctx half in
              match acc with
              | Some (gb, _) when gb >= g -> acc
              | _ -> Some (g, j))
            None candidates
        in
        (match best with
        | Some (_, j) -> grow (Cube.set c j Cube.Free)
        | None -> c)
  in
  grow c

(* EXPAND pass: cubes whose on-minterms are already fully covered
   elsewhere are dropped; the rest are raised to primes. *)
let expand ctx cubes =
  let covered_elsewhere c =
    let ok = ref true in
    iter_cube_minterms ~n:ctx.n
      (fun m -> if Bv.get ctx.on m && ctx.counts.(m) <= 1 then ok := false)
      c;
    !ok
  in
  let rec go pending primes =
    match pending with
    | [] -> List.rev primes
    | c :: rest ->
        if covered_elsewhere c then begin
          remove_cube ctx c;
          go rest primes
        end
        else begin
          remove_cube ctx c;
          let p = expand_cube ctx c in
          add_cube ctx p;
          go rest (p :: primes)
        end
  in
  go cubes []

(* IRREDUNDANT: drop cubes (smallest first) whose on-minterms are all
   covered at least twice. *)
let irredundant ctx cubes =
  let sorted =
    List.sort
      (fun a b ->
        compare (Cube.free_count ~n:ctx.n a) (Cube.free_count ~n:ctx.n b))
      cubes
  in
  List.filter
    (fun c ->
      let removable = ref true in
      iter_cube_minterms ~n:ctx.n
        (fun m -> if Bv.get ctx.on m && ctx.counts.(m) <= 1 then removable := false)
        c;
      if !removable then begin
        remove_cube ctx c;
        false
      end
      else true)
    sorted

let is_essential ctx c =
  let ess = ref false in
  iter_cube_minterms ~n:ctx.n
    (fun m -> if Bv.get ctx.on m && ctx.counts.(m) = 1 then ess := true)
    c;
  !ess

(* Smallest cube containing a set of minterms. *)
let supercube_of_minterms ~n ms =
  match ms with
  | [] -> None
  | m0 :: rest ->
      let c0 = Cube.of_minterm ~n m0 in
      Some
        (List.fold_left
           (fun acc m -> Cube.supercube acc (Cube.of_minterm ~n m))
           c0 rest)

(* REDUCE: shrink each cube to the supercube of its uniquely covered
   on-minterms; drop cubes with none. *)
let reduce ctx cubes =
  let sorted =
    List.sort
      (fun a b ->
        compare (Cube.free_count ~n:ctx.n b) (Cube.free_count ~n:ctx.n a))
      cubes
  in
  List.filter_map
    (fun c ->
      let unique = ref [] in
      iter_cube_minterms ~n:ctx.n
        (fun m ->
          if Bv.get ctx.on m && ctx.counts.(m) = 1 then unique := m :: !unique)
        c;
      remove_cube ctx c;
      match supercube_of_minterms ~n:ctx.n !unique with
      | None -> None
      | Some c' ->
          add_cube ctx c';
          Some c')
    sorted

let cost ~n cubes =
  ( List.length cubes,
    List.fold_left (fun acc c -> acc + (n - Cube.free_count ~n c)) 0 cubes )

let sp_minimize = Prof.span "espresso.minimize"

(* [minimize ~n ~on ~dc] returns a minimised cover of the on-set that
   may dip into [dc] and never touches the off-set. *)
let minimize ~n ~on ~dc =
  Prof.time sp_minimize @@ fun () ->
  let space = 1 lsl n in
  if Bv.length on <> space || Bv.length dc <> space then
    invalid_arg "Dense.minimize: bit-vector length mismatch";
  if not (Bv.disjoint on dc) then
    invalid_arg "Dense.minimize: on and dc overlap";
  let off = Bv.complement (Bv.union on dc) in
  let ctx = { n; on; off; counts = Array.make space 0 } in
  let initial = Bv.fold_set (fun m acc -> Cube.of_minterm ~n m :: acc) on [] in
  List.iter (add_cube ctx) initial;
  let f = expand ctx initial in
  let f = irredundant ctx f in
  let rec loop f best iters =
    if iters >= 20 then (f, iters)
    else
      let f' = reduce ctx f in
      let f' = expand ctx f' in
      let f' = irredundant ctx f' in
      let c = cost ~n f' in
      if c < best then loop f' c (iters + 1) else (f, iters + 1)
  in
  let f, _iters = loop f (cost ~n f) 0 in
  Cover.single_cube_containment (Cover.make ~n f)
