(* Multi-output espresso over dense sets: cubes carry an output part
   (a bit mask of the outputs they drive), so product terms are shared
   across outputs exactly as in espresso's multiple-valued formulation.
   This matches how the paper's benchmarks (multi-output .pla files)
   were actually minimised.

   The passes generalise Dense:
   - EXPAND may raise input literals (the flipped half-cube must avoid
     the off-set of EVERY driven output) and may raise the output part
     (adding an output whose off-set the whole cube avoids);
   - IRREDUNDANT drops cubes whose (output, on-minterm) pairs are all
     covered at least twice;
   - REDUCE shrinks the input part to the supercube of uniquely covered
     minterms and the output part to outputs that still own one;
   - MAKE_SPARSE finally strips redundant outputs from each cube. *)

module Cube = Twolevel.Cube
module Bv = Bitvec.Bv

type mcube = { input : Cube.t; outputs : int }

type ctx = {
  n : int;
  no : int;
  size : int;
  ons : Bv.t array;
  offs : Bv.t array;
  counts : int array; (* coverage count, indexed o * size + m *)
}

let iter_outputs omask no f =
  for o = 0 to no - 1 do
    if omask land (1 lsl o) <> 0 then f o
  done

let add_cube ctx c =
  iter_outputs c.outputs ctx.no (fun o ->
      Cube.iter_minterms ~n:ctx.n
        (fun m ->
          let i = (o * ctx.size) + m in
          ctx.counts.(i) <- ctx.counts.(i) + 1)
        c.input)

let remove_cube ctx c =
  iter_outputs c.outputs ctx.no (fun o ->
      Cube.iter_minterms ~n:ctx.n
        (fun m ->
          let i = (o * ctx.size) + m in
          ctx.counts.(i) <- ctx.counts.(i) - 1)
        c.input)

let cube_avoids_off ctx cube o =
  let ok = ref true in
  Cube.iter_minterms ~n:ctx.n
    (fun m -> if Bv.get ctx.offs.(o) m then ok := false)
    cube;
  !ok

let flipped_half c j =
  match Cube.get c j with
  | Cube.Free -> invalid_arg "Multi.flipped_half"
  | Cube.Zero -> Cube.set c j Cube.One
  | Cube.One -> Cube.set c j Cube.Zero

let specific_vars ~n c =
  let rec go j acc =
    if j < 0 then acc
    else go (j - 1) (if Cube.get c j = Cube.Free then acc else j :: acc)
  in
  go (n - 1) []

(* Gain of covering [cube] for output [o]: on-minterms not covered yet. *)
let gain_for ctx cube o =
  let g = ref 0 in
  Cube.iter_minterms ~n:ctx.n
    (fun m ->
      if Bv.get ctx.ons.(o) m && ctx.counts.((o * ctx.size) + m) = 0 then
        incr g)
    cube;
  !g

type raise_candidate = Input_raise of int | Output_raise of int

let expand_cube ctx c =
  let rec grow c =
    let input_candidates =
      List.filter_map
        (fun j ->
          let half = flipped_half c.input j in
          let ok = ref true in
          iter_outputs c.outputs ctx.no (fun o ->
              if not (cube_avoids_off ctx half o) then ok := false);
          if !ok then
            let g = ref 0 in
            iter_outputs c.outputs ctx.no (fun o ->
                g := !g + gain_for ctx half o);
            Some (Input_raise j, !g)
          else None)
        (specific_vars ~n:ctx.n c.input)
    in
    let output_candidates =
      let rec go o acc =
        if o >= ctx.no then acc
        else if c.outputs land (1 lsl o) <> 0 then go (o + 1) acc
        else if cube_avoids_off ctx c.input o then
          go (o + 1) ((Output_raise o, gain_for ctx c.input o) :: acc)
        else go (o + 1) acc
      in
      go 0 []
    in
    match input_candidates @ output_candidates with
    | [] -> c
    | candidates ->
        let best, _ =
          List.fold_left
            (fun (bc, bg) (cand, g) -> if g > bg then (cand, g) else (bc, bg))
            (fst (List.hd candidates), -1)
            candidates
        in
        (match best with
        | Input_raise j -> grow { c with input = Cube.set c.input j Cube.Free }
        | Output_raise o -> grow { c with outputs = c.outputs lor (1 lsl o) })
  in
  grow c

let covered_elsewhere ctx c =
  let ok = ref true in
  iter_outputs c.outputs ctx.no (fun o ->
      Cube.iter_minterms ~n:ctx.n
        (fun m ->
          if Bv.get ctx.ons.(o) m && ctx.counts.((o * ctx.size) + m) <= 1 then
            ok := false)
        c.input);
  !ok

let expand ctx cubes =
  let rec go pending done_ =
    match pending with
    | [] -> List.rev done_
    | c :: rest ->
        if covered_elsewhere ctx c then begin
          remove_cube ctx c;
          go rest done_
        end
        else begin
          remove_cube ctx c;
          let p = expand_cube ctx c in
          add_cube ctx p;
          go rest (p :: done_)
        end
  in
  go cubes []

let irredundant ctx cubes =
  let weight c =
    Cube.free_count ~n:ctx.n c.input + Bitvec.Minterm.popcount c.outputs
  in
  let sorted = List.sort (fun a b -> compare (weight a) (weight b)) cubes in
  List.filter
    (fun c ->
      if covered_elsewhere ctx c then begin
        remove_cube ctx c;
        false
      end
      else true)
    sorted

(* Strip individually redundant outputs from each cube. *)
let make_sparse ctx cubes =
  List.filter_map
    (fun c ->
      let omask = ref c.outputs in
      iter_outputs c.outputs ctx.no (fun o ->
          let removable = ref true in
          Cube.iter_minterms ~n:ctx.n
            (fun m ->
              if Bv.get ctx.ons.(o) m && ctx.counts.((o * ctx.size) + m) <= 1
              then removable := false)
            c.input;
          if !removable then begin
            Cube.iter_minterms ~n:ctx.n
              (fun m ->
                let i = (o * ctx.size) + m in
                ctx.counts.(i) <- ctx.counts.(i) - 1)
              c.input;
            omask := !omask land lnot (1 lsl o)
          end);
      if !omask = 0 then None else Some { c with outputs = !omask })
    cubes

let supercube_of_minterms ~n = function
  | [] -> None
  | m0 :: rest ->
      Some
        (List.fold_left
           (fun acc m -> Cube.supercube acc (Cube.of_minterm ~n m))
           (Cube.of_minterm ~n m0) rest)

let reduce ctx cubes =
  let weight c = Cube.free_count ~n:ctx.n c.input in
  let sorted = List.sort (fun a b -> compare (weight b) (weight a)) cubes in
  List.filter_map
    (fun c ->
      let unique_ms = ref [] and unique_os = ref 0 in
      iter_outputs c.outputs ctx.no (fun o ->
          Cube.iter_minterms ~n:ctx.n
            (fun m ->
              if Bv.get ctx.ons.(o) m && ctx.counts.((o * ctx.size) + m) = 1
              then begin
                unique_ms := m :: !unique_ms;
                unique_os := !unique_os lor (1 lsl o)
              end)
            c.input);
      remove_cube ctx c;
      match supercube_of_minterms ~n:ctx.n !unique_ms with
      | None -> None
      | Some input ->
          let c' = { input; outputs = !unique_os } in
          add_cube ctx c';
          Some c')
    sorted

let cost ~n cubes =
  ( List.length cubes,
    List.fold_left
      (fun acc c ->
        acc + (n - Cube.free_count ~n c.input)
        + Bitvec.Minterm.popcount c.outputs)
      0 cubes )

let minimize ~n ~ons ~dcs =
  let no = Array.length ons in
  if no = 0 || Array.length dcs <> no then invalid_arg "Multi.minimize";
  let size = 1 lsl n in
  Array.iteri
    (fun o on ->
      if Bv.length on <> size || Bv.length dcs.(o) <> size then
        invalid_arg "Multi.minimize: length";
      if not (Bv.disjoint on dcs.(o)) then
        invalid_arg "Multi.minimize: on/dc overlap")
    ons;
  (* Per-output preprocessing is independent across outputs: off-sets
     are built by a parallel map, and the coverage counts of the
     initial cover are seeded output-by-output (each output owns the
     disjoint [o * size, (o + 1) * size) segment of [counts]). *)
  let offs =
    Parallel.Pool.mapi (fun o on -> Bv.complement (Bv.union on dcs.(o))) ons
  in
  let ctx = { n; no; size; ons; offs; counts = Array.make (no * size) 0 } in
  (* Initial cover: one cube per minterm that is ON somewhere, driving
     exactly the outputs where it is ON. *)
  let initial = ref [] in
  for m = 0 to size - 1 do
    let omask = ref 0 in
    for o = 0 to no - 1 do
      if Bv.get ons.(o) m then omask := !omask lor (1 lsl o)
    done;
    if !omask <> 0 then
      initial := { input = Cube.of_minterm ~n m; outputs = !omask } :: !initial
  done;
  let initial = !initial in
  Parallel.Pool.for_ no (fun o ->
      List.iter
        (fun c ->
          if c.outputs land (1 lsl o) <> 0 then
            Cube.iter_minterms ~n
              (fun m ->
                let i = (o * size) + m in
                ctx.counts.(i) <- ctx.counts.(i) + 1)
              c.input)
        initial);
  let f = expand ctx initial in
  let f = irredundant ctx f in
  let rec loop f best iters =
    if iters >= 20 then f
    else
      let f' = reduce ctx f in
      let f' = expand ctx f' in
      let f' = irredundant ctx f' in
      let c = cost ~n f' in
      if c < best then loop f' c (iters + 1)
      else begin
        (* Roll the coverage counts back to [f]: MAKE_SPARSE below
           depends on them matching the returned cover. *)
        List.iter (remove_cube ctx) f';
        List.iter (add_cube ctx) f;
        f
      end
  in
  let f = loop f (cost ~n f) 0 in
  make_sparse ctx f

(* Evaluation helper for tests and downstream builders. *)
let eval ~n cubes ~o ~m =
  ignore n;
  List.exists
    (fun c -> c.outputs land (1 lsl o) <> 0 && Cube.contains_minterm c.input m)
    cubes
