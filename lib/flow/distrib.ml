module J = Rdca_json.Jsonout
module Jin = Rdca_json.Jsonin
module Campaign = Reliability.Campaign
module Mapper = Techmap.Mapper
module Report = Techmap.Report
module Sup = Resilient.Supervisor
module Event = Resilient.Event
module Checkpoint = Resilient.Checkpoint
module Interrupt = Resilient.Interrupt
module Suite = Synthetic.Suite

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)

let strategy_to_json = function
  | Flow.Conventional -> J.Obj [ ("method", J.String "conventional") ]
  | Flow.Ranking f ->
      J.Obj [ ("method", J.String "ranking"); ("param", J.Float f) ]
  | Flow.Lcf t -> J.Obj [ ("method", J.String "lcf"); ("param", J.Float t) ]
  | Flow.Complete -> J.Obj [ ("method", J.String "complete") ]

let strategy_of_json v =
  let param () =
    match Option.bind (Jin.member "param" v) Jin.to_float with
    | Some f -> Ok f
    | None -> Error "strategy: missing or bad \"param\" field"
  in
  match Option.bind (Jin.member "method" v) Jin.to_string with
  | Some "conventional" -> Ok Flow.Conventional
  | Some "ranking" -> Result.map (fun f -> Flow.Ranking f) (param ())
  | Some "lcf" -> Result.map (fun t -> Flow.Lcf t) (param ())
  | Some "complete" -> Ok Flow.Complete
  | Some m -> Error (Printf.sprintf "strategy: unknown method %S" m)
  | None -> Error "strategy: missing \"method\" field"

let mode_of_name = function
  | "delay" -> Some Mapper.Delay
  | "area" -> Some Mapper.Area
  | "power" -> Some Mapper.Power
  | _ -> None

let field name conv v =
  match Option.bind (Jin.member name v) conv with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing or bad %S field" name)

let ( let* ) = Result.bind

let report_to_json (r : Report.t) =
  J.Obj
    [
      ("area", J.Float r.Report.area);
      ("delay", J.Float r.Report.delay);
      ("power", J.Float r.Report.power);
      ("gates", J.Int r.Report.gates);
      ("depth", J.Int r.Report.depth);
    ]

let report_of_json v =
  let* area = field "area" Jin.to_float v in
  let* delay = field "delay" Jin.to_float v in
  let* power = field "power" Jin.to_float v in
  let* gates = field "gates" Jin.to_int v in
  let* depth = field "depth" Jin.to_int v in
  Ok { Report.area; delay; power; gates; depth }

let sweep_cell_to_json (c : Experiments.sweep_cell) =
  J.Obj
    [
      ("error", J.Float c.Experiments.sw_error);
      ("delay_mode", report_to_json c.Experiments.sw_delay_mode);
      ("power_mode", report_to_json c.Experiments.sw_power_mode);
    ]

let sweep_cell_of_json v =
  let* sw_error = field "error" Jin.to_float v in
  let* sw_delay_mode =
    match Jin.member "delay_mode" v with
    | Some r -> report_of_json r
    | None -> Error "missing \"delay_mode\" field"
  in
  let* sw_power_mode =
    match Jin.member "power_mode" v with
    | Some r -> report_of_json r
    | None -> Error "missing \"power_mode\" field"
  in
  Ok { Experiments.sw_error; sw_delay_mode; sw_power_mode }

(* ------------------------------------------------------------------ *)
(* Worker-side dispatch                                                *)

let fail fmt = Printf.ksprintf failwith fmt
let ok_or_fail = function Ok x -> x | Error e -> fail "%s" e

let decode_sites v =
  match Option.bind (Jin.member "sites" v) Jin.to_list with
  | None -> fail "campaign shard: missing \"sites\" field"
  | Some l ->
      List.map
        (fun s ->
          match Jin.to_int s with
          | Some i -> i
          | None -> fail "campaign shard: non-integer site")
        l

let decode_campaign_config v =
  match Jin.member "config" v with
  | None -> fail "campaign shard: missing \"config\" field"
  | Some c ->
      let int name = ok_or_fail (field name Jin.to_int c) in
      let kinds =
        match Option.bind (Jin.member "kinds" c) Jin.to_list with
        | None -> fail "campaign config: missing \"kinds\" field"
        | Some ks ->
            List.map
              (fun k ->
                match Option.bind (Jin.to_string k) Reliability.Inject.kind_of_name with
                | Some kind -> kind
                | None -> fail "campaign config: bad fault kind")
              ks
      in
      {
        Campaign.seed = int "seed";
        trials_per_site = int "trials_per_site";
        confidence = ok_or_fail (field "confidence" Jin.to_float c);
        kinds;
        max_sites =
          Option.bind (Jin.member "max_sites" c) Jin.to_int;
        time_budget = None;
        dead_sites =
          (match Option.bind (Jin.member "dead_sites" c) Jin.to_list with
          | None -> []
          | Some l ->
              List.map
                (fun s ->
                  match Jin.to_int s with
                  | Some i -> i
                  | None -> fail "campaign config: non-integer dead site")
                l);
      }

(* Out-of-process workers rebuild the netlist from the task's
   (input, strategy, mode) description; one synthesis per distinct
   triple per worker process. *)
let synth_cache : (string, Pla.Spec.t * Netlist.t) Hashtbl.t =
  Hashtbl.create 4

let synthesized ~input ~strategy ~mode =
  let key =
    Printf.sprintf "%s|%s|%s" input
      (J.to_string (strategy_to_json strategy))
      (Mapper.mode_name mode)
  in
  match Hashtbl.find_opt synth_cache key with
  | Some v -> v
  | None ->
      let spec =
        match Flow.load_spec input with
        | Ok s -> s
        | Error e -> fail "%s" (Flow.error_to_string e)
      in
      let r = Flow.synthesize ~mode ~strategy spec in
      let v = (spec, r.Flow.netlist) in
      Hashtbl.replace synth_cache key v;
      v

let run_campaign_shard config spec nl sites =
  J.List
    (List.map Campaign.site_result_to_json
       (Campaign.run_sites config spec nl sites))

let dispatch payload =
  match Option.bind (Jin.member "kind" payload) Jin.to_string with
  | Some "campaign-shard" ->
      let input = ok_or_fail (field "input" Jin.to_string payload) in
      let strategy =
        match Jin.member "strategy" payload with
        | Some s -> ok_or_fail (strategy_of_json s)
        | None -> fail "campaign shard: missing \"strategy\" field"
      in
      let mode =
        match
          Option.bind
            (Option.bind (Jin.member "mode" payload) Jin.to_string)
            mode_of_name
        with
        | Some m -> m
        | None -> fail "campaign shard: missing or bad \"mode\" field"
      in
      let config = decode_campaign_config payload in
      let spec, nl = synthesized ~input ~strategy ~mode in
      run_campaign_shard config spec nl (decode_sites payload)
  | Some "sweep-cell" ->
      let name = ok_or_fail (field "name" Jin.to_string payload) in
      let fraction = ok_or_fail (field "fraction" Jin.to_float payload) in
      sweep_cell_to_json (Experiments.sweep_cell_by_name ~name ~fraction)
  | Some k -> fail "unknown task kind %S" k
  | None -> fail "task payload has no \"kind\" field"

(* ------------------------------------------------------------------ *)
(* Distributed campaign                                                *)

type 'a distributed = {
  value : 'a;
  events : Event.t list;
  exec_mode : Sup.mode;
  interrupted : bool;
}

type campaign_opts = {
  sup : Sup.config;
  shard_size : int;
  checkpoint : string option;
  resume : bool;
  stop_after : int option;
}

let default_campaign_opts =
  {
    sup = Sup.default;
    shard_size = 4;
    checkpoint = None;
    resume = false;
    stop_after = None;
  }

let chunk k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = k then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let take k xs =
  let rec go n = function
    | x :: rest when n < k -> x :: go (n + 1) rest
    | _ -> []
  in
  go 0 xs

let campaign_run opts ~input ~strategy ~mode config spec nl =
  let shard_size = max 1 opts.shard_size in
  match Campaign.selected_sites config nl with
  | exception Invalid_argument m -> Error m
  | sites -> (
      let sites_total = List.length sites in
      let t0 = Unix.gettimeofday () in
      let shards = chunk shard_size sites in
      let total = List.length shards in
      let task_of_shard shard_sites =
        J.Obj
          [
            ("kind", J.String "campaign-shard");
            ("input", J.String input);
            ("strategy", strategy_to_json strategy);
            ("mode", J.String (Mapper.mode_name mode));
            ("config", Campaign.config_to_json config);
            ("sites", J.List (List.map (fun s -> J.Int s) shard_sites));
          ]
      in
      let tasks = Array.of_list (List.map task_of_shard shards) in
      let key =
        J.Obj
          [
            ("input", J.String input);
            ("strategy", strategy_to_json strategy);
            ("mode", J.String (Mapper.mode_name mode));
            ("config", Campaign.config_to_json config);
            ("shard_size", J.Int shard_size);
            ( "spec_digest",
              J.String (Digest.to_hex (Digest.string (Pla.to_string spec))) );
          ]
      in
      let done_tbl : (int, J.t) Hashtbl.t = Hashtbl.create 64 in
      let pre_events = ref [] in
      let pre_event severity code fmt =
        Format.kasprintf
          (fun message ->
            pre_events :=
              { Event.severity; code; time = 0.0; message } :: !pre_events)
          fmt
      in
      (match (opts.checkpoint, opts.resume) with
      | Some path, true ->
          let done_shards, rejected =
            Checkpoint.resume ~path ~kind:"campaign" ~key ~total
          in
          Option.iter
            (fun reason ->
              pre_event Check.Diag.Warn "checkpoint-rejected"
                "ignoring checkpoint %s: %s" path reason)
            rejected;
          if done_shards <> [] then
            pre_event Check.Diag.Info "checkpoint-resumed"
              "resuming from %s: %d/%d shard(s) already complete" path
              (List.length done_shards) total;
          List.iter (fun (id, v) -> Hashtbl.replace done_tbl id v) done_shards
      | _ -> ());
      let save_checkpoint ~interrupted =
        match opts.checkpoint with
        | None -> ()
        | Some path ->
            let entries =
              Hashtbl.fold (fun id v acc -> (id, v) :: acc) done_tbl []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            Checkpoint.save path
              { Checkpoint.kind = "campaign"; key; total; interrupted;
                shards = entries }
      in
      let missing = ref [] in
      for id = total - 1 downto 0 do
        if not (Hashtbl.mem done_tbl id) then missing := id :: !missing
      done;
      let to_run =
        match opts.stop_after with
        | None -> !missing
        | Some k -> take (max 0 k) !missing
      in
      let skip =
        List.filter (fun id -> not (List.mem id to_run))
          (List.init total Fun.id)
      in
      (* Fork workers and the in-process fallback use the already
         synthesized netlist; only Exec workers pay a re-synthesis. *)
      let local_handler payload =
        run_campaign_shard config spec nl (decode_sites payload)
      in
      let on_result id v =
        Hashtbl.replace done_tbl id v;
        save_checkpoint ~interrupted:false
      in
      let unhook =
        match opts.checkpoint with
        | Some _ -> Some (Interrupt.on_interrupt (fun () ->
            save_checkpoint ~interrupted:true))
        | None -> None
      in
      let out =
        Fun.protect
          ~finally:(fun () -> Option.iter (fun f -> f ()) unhook)
          (fun () ->
            Sup.run ~on_result ~skip opts.sup ~handler:local_handler ~tasks)
      in
      let all_done = Hashtbl.length done_tbl = total in
      if opts.checkpoint <> None then
        save_checkpoint ~interrupted:(not all_done);
      (* Merge in shard order; absent shards (stop_after, permanent
         failures) just shorten the report, they never corrupt it. *)
      let decoded = ref (Ok []) in
      for id = total - 1 downto 0 do
        match (!decoded, Hashtbl.find_opt done_tbl id) with
        | Error _, _ | _, None -> ()
        | Ok acc, Some v -> (
            match Jin.to_list v with
            | None -> decoded := Error (Printf.sprintf "shard %d: not a list" id)
            | Some items ->
                let rec fold rs = function
                  | [] -> decoded := Ok (rs @ acc)
                  | x :: rest -> (
                      match Campaign.site_result_of_json x with
                      | Ok r -> fold (rs @ [ r ]) rest
                      | Error e ->
                          decoded :=
                            Error (Printf.sprintf "shard %d: %s" id e))
                in
                fold [] items)
      done;
      match !decoded with
      | Error e -> Error e
      | Ok results ->
          let report =
            Campaign.of_results config ~sites_total ~complete:all_done
              ~elapsed:(Unix.gettimeofday () -. t0)
              results
          in
          Ok
            {
              value = report;
              events = List.rev !pre_events @ out.Sup.events;
              exec_mode = out.Sup.mode;
              interrupted = not all_done;
            })

let campaign_report_to_json report ~events ~interrupted =
  let module C = Campaign in
  let pooled =
    List.map
      (fun p ->
        let lo, hi = p.C.p_ci in
        J.Obj
          [
            ("kind", J.String (Reliability.Inject.kind_name p.C.p_kind));
            ("sites", J.Int p.C.p_sites);
            ("events", J.Int p.C.p_events);
            ("propagated", J.Int p.C.p_propagated);
            ("rate", J.Float p.C.p_rate);
            ("ci_lo", J.Float lo);
            ("ci_hi", J.Float hi);
          ])
      (C.pooled report)
  in
  J.Obj
    [
      ("schema_version", J.Int 1);
      ("config", C.config_to_json report.C.config);
      ("sites_total", J.Int report.C.sites_total);
      ("sites_done", J.Int report.C.sites_done);
      ("complete", J.Bool report.C.complete);
      ("interrupted", J.Bool interrupted);
      ("elapsed", J.Float report.C.elapsed);
      ("results", J.List (List.map C.site_result_to_json report.C.results));
      ("pooled", J.List pooled);
      ("supervision", J.List (List.map Event.to_json events));
    ]

(* ------------------------------------------------------------------ *)
(* Distributed sweep                                                   *)

let sweep_distributed ?(fractions = Experiments.default_fractions) ?names sup =
  let entries =
    let all = Suite.entries in
    match names with
    | None -> List.map (fun e -> e.Suite.name) all
    | Some names ->
        List.filter_map
          (fun e -> if List.mem e.Suite.name names then Some e.Suite.name else None)
          all
  in
  let specs = List.map (fun n -> (n, Suite.load_by_name n)) entries in
  let nfr = Array.length fractions in
  let tasks =
    Array.init
      (List.length specs * nfr)
      (fun idx ->
        let name, _ = List.nth specs (idx / nfr) in
        J.Obj
          [
            ("kind", J.String "sweep-cell");
            ("name", J.String name);
            ("fraction", J.Float fractions.(idx mod nfr));
          ])
  in
  let local_handler payload =
    let name = ok_or_fail (field "name" Jin.to_string payload) in
    let fraction = ok_or_fail (field "fraction" Jin.to_float payload) in
    let spec =
      match List.assoc_opt name specs with
      | Some s -> s
      | None -> fail "unknown suite benchmark %S" name
    in
    sweep_cell_to_json (Experiments.sweep_cell_of_spec spec fraction)
  in
  let out = Sup.run sup ~handler:local_handler ~tasks in
  match out.Sup.failures with
  | (id, why) :: _ ->
      Error (Printf.sprintf "sweep cell %d failed: %s" id why)
  | [] -> (
      let cells = Array.make (Array.length tasks) None in
      List.iter
        (fun (id, v) ->
          match sweep_cell_of_json v with
          | Ok c -> cells.(id) <- Some c
          | Error _ -> ())
        out.Sup.results;
      let bad = ref None in
      Array.iteri
        (fun i c -> if c = None && !bad = None then bad := Some i)
        cells;
      match !bad with
      | Some i -> Error (Printf.sprintf "sweep cell %d missing or undecodable" i)
      | None ->
          let rows =
            List.mapi
              (fun si (name, _) ->
                {
                  Experiments.sw_name = name;
                  sw_fractions = fractions;
                  sw_cells =
                    Array.init nfr (fun fi ->
                        Option.get cells.((si * nfr) + fi));
                })
              specs
          in
          Ok
            {
              value = rows;
              events = out.Sup.events;
              exec_mode = out.Sup.mode;
              interrupted = false;
            })
