(** Distribution layer: fault campaigns and experiment sweeps as
    supervised multi-process runs.

    This is the glue between the domain layers and
    {!Resilient.Supervisor}: it cuts a {!Reliability.Campaign} into
    site shards (and the Figure 4/5 sweep into benchmark x fraction
    cells), encodes each shard as a self-contained JSON task a worker
    process can execute from scratch, and reassembles the worker
    results into the exact report the sequential code would have
    produced — bit-identically, because shard values round-trip
    through {!Rdca_json} exactly and every (site, kind) RNG derives
    from the master seed alone.

    Long campaigns checkpoint completed shards to a JSON file
    ({!Resilient.Checkpoint}); [~resume:true] skips them on restart,
    and a SIGINT/SIGTERM mid-run flushes a final checkpoint marked
    interrupted (via {!Resilient.Interrupt}). *)

module J := Rdca_json.Jsonout

(** {1 Worker side} *)

val dispatch : J.t -> J.t
(** Task dispatcher for out-of-process ([Exec]) workers — what
    [rdca worker] serves.  Understands:
    - [{"kind": "campaign-shard", input, strategy, mode, config,
       sites}] — re-synthesizes the benchmark (cached per process per
      (input, strategy, mode)) and evaluates the listed fault sites;
      returns the list of encoded site results.  Assumes an unbudgeted
      espresso run, like the in-process campaign path.
    - [{"kind": "sweep-cell", name, fraction}] — one
      {!Experiments.sweep_cell_by_name} evaluation.
    @raise Failure on unknown kinds or malformed payloads (the worker
    loop turns this into an error frame). *)

(** {1 Codecs} *)

val strategy_to_json : Flow.strategy -> J.t
val strategy_of_json : J.t -> (Flow.strategy, string) result
val mode_of_name : string -> Techmap.Mapper.mode option
val report_to_json : Techmap.Report.t -> J.t
val report_of_json : J.t -> (Techmap.Report.t, string) result
val sweep_cell_to_json : Experiments.sweep_cell -> J.t
val sweep_cell_of_json : J.t -> (Experiments.sweep_cell, string) result

(** {1 Distributed runs} *)

(** A value computed under supervision, with the run's provenance. *)
type 'a distributed = {
  value : 'a;
  events : Resilient.Event.t list;  (** chronological supervision log *)
  exec_mode : Resilient.Supervisor.mode;  (** what actually ran it *)
  interrupted : bool;
      (** some shards were not computed ([--stop-after], permanent
          task failures); for campaigns the report is also marked
          incomplete *)
}

type campaign_opts = {
  sup : Resilient.Supervisor.config;
  shard_size : int;  (** sites per task (clamped to >= 1) *)
  checkpoint : string option;  (** checkpoint file path *)
  resume : bool;  (** load the checkpoint and skip completed shards *)
  stop_after : int option;
      (** run at most this many {e new} shards, then checkpoint and
          return an interrupted partial report — the resume test's
          lever, and a crude form of budgeted execution *)
}

val default_campaign_opts : campaign_opts
(** {!Resilient.Supervisor.default}, 4 sites per shard, no checkpoint,
    no resume, no stop-after. *)

val campaign_run :
  campaign_opts ->
  input:string ->
  strategy:Flow.strategy ->
  mode:Techmap.Mapper.mode ->
  Reliability.Campaign.config ->
  Pla.Spec.t ->
  Netlist.t ->
  (Reliability.Campaign.report distributed, string) result
(** [campaign_run opts ~input ~strategy ~mode config spec nl] is
    {!Reliability.Campaign.run} as a supervised run over site shards.
    [input]/[strategy]/[mode] describe how [nl] was synthesized from
    [input] so out-of-process workers can rebuild it; [Fork] workers
    and the in-process degradation path use the captured [spec]/[nl]
    directly.  The merged report is bit-identical to a sequential
    {!Reliability.Campaign.run} with the same [config] (modulo
    [elapsed]).  [Error] on undecodable shard values or an invalid
    configuration. *)

val campaign_report_to_json :
  Reliability.Campaign.report ->
  events:Resilient.Event.t list ->
  interrupted:bool ->
  J.t
(** The JSON document [rdca campaign --json] writes: config, per-site
    results, pooled per-kind aggregates, supervision events, and the
    interrupted flag. *)

val sweep_distributed :
  ?fractions:float array ->
  ?names:string list ->
  Resilient.Supervisor.config ->
  (Experiments.sweep_row list distributed, string) result
(** [sweep_distributed sup] is {!Experiments.sweep} with each
    (benchmark, fraction) cell evaluated as a supervised task.
    [Error] if any cell permanently failed or failed to decode —
    unlike campaigns, the sweep has no meaningful partial result. *)
