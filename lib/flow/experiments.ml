module Spec = Pla.Spec
module Suite = Synthetic.Suite
module Borders = Reliability.Borders
module ER = Reliability.Error_rate
module Estimate = Reliability.Estimate
module Report = Techmap.Report
module Mapper = Techmap.Mapper

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)

type t1_row = {
  t1_name : string;
  t1_ni : int;
  t1_no : int;
  t1_dc_pct : float;
  t1_ecf : float;
  t1_cf : float;
  t1_paper_ecf : float;
  t1_paper_cf : float;
}

let table1 () =
  List.map
    (fun (e, s) ->
      {
        t1_name = e.Suite.name;
        t1_ni = e.Suite.ni;
        t1_no = e.Suite.no;
        t1_dc_pct = 100.0 *. Spec.dc_fraction s;
        t1_ecf = Borders.mean_expected_complexity_factor s;
        t1_cf = Borders.mean_complexity_factor s;
        t1_paper_ecf = e.Suite.ecf;
        t1_paper_cf = e.Suite.cf;
      })
    (Suite.load_all ())

(* ------------------------------------------------------------------ *)
(* Figure 2                                                             *)

type fig2_point = { f2_target : float; f2_measured_cf : float; f2_sop : int }

let default_fig2_targets =
  [ 0.05; 0.15; 0.25; 0.35; 0.45; 0.55; 0.65; 0.75; 0.85; 0.95 ]

let fig2 ?(targets = default_fig2_targets) ?(per_target = 3) ~seed () =
  (* Each task derives its own splittable stream from (seed, task
     index) and generates its spec *inside* the parallel region, so
     there is no sequential pre-generation pass and the results are
     identical at every job count by construction. *)
  let targets = Array.of_list targets in
  let n = Array.length targets * per_target in
  let points =
    Parallel.Pool.init ~chunk:1 n (fun i ->
        let target = targets.(i / per_target) in
        let rng =
          Synthetic.Splittable.to_random_state
            (Synthetic.Splittable.stream ~seed ~index:i)
        in
        let params =
          Synthetic.Synth_gen.default_params ~ni:10 ~dc_frac:0.0
            ~target_cf:(Some target)
        in
        let s = Synthetic.Synth_gen.output ~rng params in
        let cover =
          Espresso.Dense.minimize ~n:10 ~on:(Spec.on_bv s ~o:0)
            ~dc:(Spec.dc_bv s ~o:0)
        in
        {
          f2_target = target;
          f2_measured_cf = Borders.complexity_factor s ~o:0;
          f2_sop = Twolevel.Cover.size cover;
        })
  in
  Array.to_list points

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: the ranking-fraction sweep                          *)

type sweep_cell = {
  sw_error : float;
  sw_delay_mode : Report.t;
  sw_power_mode : Report.t;
}

type sweep_row = {
  sw_name : string;
  sw_fractions : float array;
  sw_cells : sweep_cell array;
}

let default_fractions = [| 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 |]

let suite_specs ?names () =
  let all = Suite.load_all () in
  match names with
  | None -> all
  | Some names ->
      List.filter (fun (e, _) -> List.mem e.Suite.name names) all

(* The four stages of a sweep cell as disjoint profiling spans: their
   sum accounts for (essentially all of) a cell's wall time, which is
   what the bench harness uses to attribute the fig4/fig5 sections. *)
let sp_assign = Prof.span "sweep.assign"
let sp_implement = Prof.span "sweep.implement"
let sp_error = Prof.span "sweep.error"
let sp_build = Prof.span "sweep.build"

(* One sweep cell is a pure function of (spec, fraction): the unit of
   work for both the in-process fan-out below and the multi-process
   distribution layer (Distrib). *)
let sweep_cell_of_spec spec fraction =
  let lib = Techmap.Stdcell.default_library () in
  let partial =
    Prof.time sp_assign (fun () ->
        Flow.apply_strategy (Flow.Ranking fraction) spec)
  in
  let full, covers = Prof.time sp_implement (fun () -> Flow.implement partial) in
  let error =
    Prof.time sp_error (fun () -> Flow.measured_error ~original:spec full)
  in
  let build mode =
    Prof.time sp_build @@ fun () ->
    let aig = Aig.of_covers ~ni:(Spec.ni spec) covers in
    let aig = Aig.Opt.balance aig in
    Report.of_netlist (Mapper.map ~mode ~lib aig)
  in
  {
    sw_error = error;
    sw_delay_mode = build Mapper.Delay;
    sw_power_mode = build Mapper.Power;
  }

let sweep_cell_by_name ~name ~fraction =
  sweep_cell_of_spec (Suite.load_by_name name) fraction

let sweep ?(fractions = default_fractions) ?names () =
  let specs = Array.of_list (suite_specs ?names ()) in
  (* The cells of one benchmark share its spec: publish every phase
     plane before the fan-out so the parallel region reads a warm,
     read-only cache instead of racing on first-use rebuilds. *)
  Array.iter (fun (_, spec) -> Spec.warm_cache spec) specs;
  let nfr = Array.length fractions in
  (* Flatten to (benchmark, fraction) cells: a finer grain than
     per-benchmark fan-out, so a single slow benchmark doesn't leave
     the other domains idle. *)
  let cells =
    Parallel.Pool.init ~chunk:1
      (Array.length specs * nfr)
      (fun idx ->
        let _, spec = specs.(idx / nfr) in
        let fraction = fractions.(idx mod nfr) in
        sweep_cell_of_spec spec fraction)
  in
  List.mapi
    (fun si (e, _) ->
      {
        sw_name = e.Suite.name;
        sw_fractions = fractions;
        sw_cells = Array.init nfr (fun fi -> cells.((si * nfr) + fi));
      })
    (Array.to_list specs)

let fig4_of_sweep rows =
  List.map
    (fun row ->
      let base = row.sw_cells.(0).sw_error in
      let norm =
        Array.map
          (fun c -> if base = 0.0 then 1.0 else c.sw_error /. base)
          row.sw_cells
      in
      (row.sw_name, norm))
    rows

type fig5_stat = {
  f5_fraction : float;
  f5_mode : Mapper.mode;
  f5_min : float * float * float;
  f5_mean : float * float * float;
  f5_max : float * float * float;
}

let fig5_of_sweep rows =
  match rows with
  | [] -> []
  | first :: _ ->
      let nfr = Array.length first.sw_fractions in
      let modes = [ Mapper.Delay; Mapper.Power ] in
      List.concat_map
        (fun mode ->
          List.init nfr (fun fi ->
              let pick cell =
                match mode with
                | Mapper.Delay -> cell.sw_delay_mode
                | Mapper.Power | Mapper.Area -> cell.sw_power_mode
              in
              let ratios =
                List.map
                  (fun row ->
                    let base = pick row.sw_cells.(0) in
                    let r = Report.normalise ~base (pick row.sw_cells.(fi)) in
                    (r.Report.area, r.Report.delay, r.Report.power))
                  rows
              in
              let agg f =
                let a = List.map (fun (x, _, _) -> x) ratios in
                let d = List.map (fun (_, x, _) -> x) ratios in
                let p = List.map (fun (_, _, x) -> x) ratios in
                (f a, f d, f p)
              in
              let fmin l = List.fold_left min infinity l in
              let fmax l = List.fold_left max neg_infinity l in
              let fmean l =
                List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
              in
              {
                f5_fraction = first.sw_fractions.(fi);
                f5_mode = mode;
                f5_min = agg fmin;
                f5_mean = agg fmean;
                f5_max = agg fmax;
              }))
        modes

(* ------------------------------------------------------------------ *)
(* Figure 6                                                             *)

type fig6_point = { f6_fraction : float; f6_area : float; f6_error : float }

type fig6_family = { f6_cf : float; f6_points : fig6_point list }

let fig6 ?(families = [ 0.5; 0.6; 0.7; 0.8; 0.9 ]) ?(funcs_per_family = 2)
    ?(fractions = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]) ?(ni = 11) ?(no = 11) ~seed ()
    =
  let lib = Techmap.Stdcell.default_library () in
  (* Each per-function trajectory task generates its own spec from the
     splittable stream keyed by (seed, function index), inside the
     parallel region — no sequential pre-generation, and the family
     layout (function i belongs to family i / funcs_per_family) is
     fixed up front, so results are identical at every job count. *)
  let fams = Array.of_list families in
  let nfuncs = Array.length fams * funcs_per_family in
  (* Per function, per fraction: (area, error); normalise per
     function by its own fraction-0 corner; average at the end. *)
  let traj_of_func i =
    let cf = fams.(i / funcs_per_family) in
    let rng =
      Synthetic.Splittable.to_random_state
        (Synthetic.Splittable.stream ~seed ~index:i)
    in
    let params =
      Synthetic.Synth_gen.default_params ~ni ~dc_frac:0.6 ~target_cf:(Some cf)
    in
    let spec = Synthetic.Synth_gen.spec ~rng ~no params in
    List.map
      (fun fraction ->
        let partial = Flow.apply_strategy (Flow.Ranking fraction) spec in
        let full, covers = Flow.implement partial in
        let error = Flow.measured_error ~original:spec full in
        let aig = Aig.of_covers ~ni:(Spec.ni spec) covers in
        let aig = Aig.Opt.balance aig in
        let rep = Report.of_netlist (Mapper.map ~mode:Mapper.Area ~lib aig) in
        (rep.Report.area, error))
      fractions
  in
  let all_trajs = Parallel.Pool.init ~chunk:1 nfuncs traj_of_func in
  List.mapi
    (fun fi cf ->
      let trajs =
        List.init funcs_per_family (fun j ->
            all_trajs.((fi * funcs_per_family) + j))
      in
      let normed =
        List.map
          (fun traj ->
            match traj with
            | [] -> []
            | (a0, e0) :: _ ->
                List.map
                  (fun (a, e) ->
                    ( (if a0 = 0.0 then 1.0 else a /. a0),
                      if e0 = 0.0 then 1.0 else e /. e0 ))
                  traj)
          trajs
      in
      let k = float_of_int (List.length normed) in
      let points =
        List.mapi
          (fun i fraction ->
            let sum_a, sum_e =
              List.fold_left
                (fun (sa, se) traj ->
                  let a, e = List.nth traj i in
                  (sa +. a, se +. e))
                (0.0, 0.0) normed
            in
            { f6_fraction = fraction; f6_area = sum_a /. k; f6_error = sum_e /. k })
          fractions
      in
      { f6_cf = cf; f6_points = points })
    families

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)

type t2_row = {
  t2_name : string;
  t2_cf : float;
  t2_lcf_area : float;
  t2_lcf_er : float;
  t2_rank_area : float;
  t2_rank_er : float;
  t2_comp_area : float;
  t2_comp_er : float;
}

let improvement base v = if base = 0.0 then 0.0 else 100.0 *. (base -. v) /. base

let table2 ?(threshold = 0.55) ?names () =
  let lib = Techmap.Stdcell.default_library () in
  let mode = Mapper.Area in
  (* Rows are independent benchmarks: fan out one row per task. *)
  Parallel.Pool.map_list ~chunk:1
    (fun (e, spec) ->
      let run strategy = Flow.synthesize ~lib ~mode ~strategy spec in
      let conv = run Flow.Conventional in
      let lcf_spec = Rdca_core.Assign.by_complexity ~threshold spec in
      let rank_spec =
        Rdca_core.Assign.ranking_matching_budget ~reference:lcf_spec spec
      in
      let finish partial =
        let full, covers = Flow.implement partial in
        let error = Flow.measured_error ~original:spec full in
        let aig = Aig.of_covers ~ni:(Spec.ni spec) covers in
        let aig = Aig.Opt.balance aig in
        let rep = Report.of_netlist (Mapper.map ~mode ~lib aig) in
        (error, rep.Report.area)
      in
      let lcf_er, lcf_area = finish lcf_spec in
      let rank_er, rank_area = finish rank_spec in
      let comp = run Flow.Complete in
      {
        t2_name = e.Suite.name;
        t2_cf = Borders.mean_complexity_factor spec;
        t2_lcf_area = improvement conv.Flow.report.Report.area lcf_area;
        t2_lcf_er = improvement conv.Flow.error_rate lcf_er;
        t2_rank_area = improvement conv.Flow.report.Report.area rank_area;
        t2_rank_er = improvement conv.Flow.error_rate rank_er;
        t2_comp_area =
          improvement conv.Flow.report.Report.area comp.Flow.report.Report.area;
        t2_comp_er = improvement conv.Flow.error_rate comp.Flow.error_rate;
      })
    (suite_specs ?names ())

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)

type t3_row = {
  t3_name : string;
  t3_gates : int;
  t3_exact : float * float;
  t3_signal : float * float;
  t3_border : float * float;
  t3_conv_rate : float;
  t3_conv_diff : float;
  t3_lcf_rate : float;
  t3_lcf_diff : float;
}

let table3 ?(threshold = 0.55) ?names () =
  let lib = Techmap.Stdcell.default_library () in
  (* Rows are independent benchmarks: fan out one row per task. *)
  Parallel.Pool.map_list ~chunk:1
    (fun (e, spec) ->
      let b = ER.mean_bounds spec in
      let exact_lo = ER.min_rate b and exact_hi = ER.max_rate b in
      let siv = Estimate.mean_signal_based spec in
      let biv = Estimate.mean_border_based spec in
      let conv = Flow.synthesize ~lib ~mode:Mapper.Delay
          ~strategy:Flow.Conventional spec
      in
      let lcf_full, _ =
        Flow.implement (Rdca_core.Assign.by_complexity ~threshold spec)
      in
      let lcf_rate = Flow.measured_error ~original:spec lcf_full in
      let diff rate =
        if exact_lo = 0.0 then 0.0
        else 100.0 *. (rate -. exact_lo) /. exact_lo
      in
      {
        t3_name = e.Suite.name;
        t3_gates = conv.Flow.report.Report.gates;
        t3_exact = (exact_lo, exact_hi);
        t3_signal = (siv.Estimate.lo, siv.Estimate.hi);
        t3_border = (biv.Estimate.lo, biv.Estimate.hi);
        t3_conv_rate = conv.Flow.error_rate;
        t3_conv_diff = diff conv.Flow.error_rate;
        t3_lcf_rate = lcf_rate;
        t3_lcf_diff = diff lcf_rate;
      })
    (suite_specs ?names ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let ablation_threshold ?(thresholds = [ 0.35; 0.45; 0.55; 0.65; 0.75 ]) ~name
    () =
  let lib = Techmap.Stdcell.default_library () in
  let spec = Suite.load_by_name name in
  let conv =
    Flow.synthesize ~lib ~mode:Mapper.Area ~strategy:Flow.Conventional spec
  in
  List.map
    (fun threshold ->
      let r =
        Flow.synthesize ~lib ~mode:Mapper.Area ~strategy:(Flow.Lcf threshold)
          spec
      in
      ( threshold,
        improvement conv.Flow.report.Report.area r.Flow.report.Report.area,
        improvement conv.Flow.error_rate r.Flow.error_rate ))
    thresholds

let ablation_neighbour_model ?names () =
  List.map
    (fun (e, spec) ->
      let no = Spec.no spec in
      let mean f =
        let lo = ref 0.0 and hi = ref 0.0 in
        for o = 0 to no - 1 do
          let iv : Estimate.interval = f spec ~o in
          lo := !lo +. iv.Estimate.lo;
          hi := !hi +. iv.Estimate.hi
        done;
        (!lo /. float_of_int no, !hi /. float_of_int no)
      in
      let b = ER.mean_bounds spec in
      ( e.Suite.name,
        mean Estimate.border_based,
        mean Estimate.binomial_border_based,
        (ER.min_rate b, ER.max_rate b) ))
    (suite_specs ?names ())

let ablation_balance ?names () =
  let lib = Techmap.Stdcell.default_library () in
  List.map
    (fun (e, spec) ->
      let _, covers = Flow.implement (Spec.copy spec) in
      let aig = Aig.of_covers ~ni:(Spec.ni spec) covers in
      let with_balance =
        Report.of_netlist
          (Mapper.map ~mode:Mapper.Delay ~lib (Aig.Opt.balance aig))
      in
      let without =
        Report.of_netlist (Mapper.map ~mode:Mapper.Delay ~lib aig)
      in
      (e.Suite.name, with_balance.Report.delay, without.Report.delay))
    (suite_specs ?names ())

let nodal_decomposition ?(threshold = 0.55) ?names () =
  let lib = Techmap.Stdcell.default_library () in
  List.map
    (fun (e, spec) ->
      let _, covers = Flow.implement (Spec.copy spec) in
      let aig = Aig.Opt.balance (Aig.of_covers ~ni:(Spec.ni spec) covers) in
      let nl = Mapper.map ~mode:Mapper.Area ~lib aig in
      let before = Rdca_core.Decompose.internal_error_rate nl in
      let nl' = Rdca_core.Decompose.reassign ~threshold nl in
      let after = Rdca_core.Decompose.internal_error_rate nl' in
      (e.Suite.name, before, after))
    (suite_specs ?names ())

let ablation_sharing ?names () =
  let lib = Techmap.Stdcell.default_library () in
  let mode = Mapper.Area in
  List.map
    (fun (e, spec) ->
      let single = Flow.synthesize ~lib ~mode ~strategy:Flow.Conventional spec in
      let shared =
        Flow.synthesize_shared ~lib ~mode ~strategy:Flow.Conventional spec
      in
      ( e.Suite.name,
        single.Flow.report.Report.area,
        shared.Flow.report.Report.area,
        single.Flow.sop_cubes,
        shared.Flow.sop_cubes ))
    (suite_specs ?names ())

let ablation_multibit ?(ks = [ 1; 2 ]) ?names () =
  List.concat_map
    (fun (e, spec) ->
      let impl strategy =
        let full, _ = Flow.implement (Flow.apply_strategy strategy spec) in
        Array.init (Spec.no spec) (fun o -> ER.impl_table full ~o)
      in
      let conv = impl Flow.Conventional in
      let comp = impl Flow.Complete in
      List.map
        (fun k ->
          let rc = ER.of_tables_kbit spec conv ~k in
          let rr = ER.of_tables_kbit spec comp ~k in
          let impr = if rc = 0.0 then 0.0 else 100.0 *. (rc -. rr) /. rc in
          (e.Suite.name, k, rc, rr, impr))
        ks)
    (suite_specs ?names ())

let ablation_factoring ?names () =
  let lib = Techmap.Stdcell.default_library () in
  List.map
    (fun (e, spec) ->
      let _, covers = Flow.implement (Spec.copy spec) in
      let ni = Spec.ni spec in
      let flat = Aig.of_covers ~ni covers in
      let fac =
        Aig.of_factored ~ni (List.map Twolevel.Factor.factor covers)
      in
      let area aig =
        (Report.of_netlist
           (Mapper.map ~mode:Mapper.Area ~lib (Aig.Opt.balance aig)))
          .Report.area
      in
      (e.Suite.name, area flat, area fac, Aig.num_ands flat, Aig.num_ands fac))
    (suite_specs ?names ())

let nodal_renode ?(threshold = 0.65) ?(k = 4) ?names () =
  List.map
    (fun (e, spec) ->
      let _, covers = Flow.implement (Spec.copy spec) in
      let aig = Aig.Opt.balance (Aig.of_covers ~ni:(Spec.ni spec) covers) in
      let nl = Techmap.Lutmap.map ~k aig in
      let masks = Rdca_core.Decompose.local_patterns nl in
      let luts = ref 0 and with_dc = ref 0 in
      Netlist.iter_nodes nl (fun id g _ ->
          match g with
          | Netlist.Gate.Cell c when c.Netlist.Gate.arity >= 2 ->
              incr luts;
              let full = (1 lsl (1 lsl c.Netlist.Gate.arity)) - 1 in
              if masks.(id) <> full then incr with_dc
          | _ -> ());
      let before = Rdca_core.Decompose.internal_error_rate nl in
      let after =
        Rdca_core.Decompose.internal_error_rate
          (Rdca_core.Decompose.reassign ~threshold nl)
      in
      (e.Suite.name, !luts, !with_dc, before, after))
    (suite_specs ?names ())

let nodal_odc ?(threshold = 0.65) ?names () =
  let lib = Techmap.Stdcell.default_library () in
  List.map
    (fun (e, spec) ->
      let _, covers = Flow.implement (Spec.copy spec) in
      let aig = Aig.Opt.balance (Aig.of_covers ~ni:(Spec.ni spec) covers) in
      let nl = Mapper.map ~mode:Mapper.Area ~lib aig in
      let base = Rdca_core.Decompose.internal_error_rate nl in
      let sdc =
        Rdca_core.Decompose.internal_error_rate
          (Rdca_core.Decompose.reassign ~threshold nl)
      in
      let odc =
        Rdca_core.Decompose.internal_error_rate
          (Rdca_core.Decompose.reassign_odc ~threshold nl)
      in
      (e.Suite.name, base, sdc, odc))
    (suite_specs ?names ())
