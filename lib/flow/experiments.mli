(** Drivers regenerating every table and figure of the paper's
    evaluation.  Each function returns structured rows; printers live
    in the benchmark harness.  Defaults are sized to finish in minutes
    on a laptop; pass the labelled parameters to reach the paper's
    full configurations (see DESIGN.md's experiment index). *)

(** {1 Table 1 — benchmark properties} *)

type t1_row = {
  t1_name : string;
  t1_ni : int;
  t1_no : int;
  t1_dc_pct : float;
  t1_ecf : float;  (** measured E[C^f] *)
  t1_cf : float;  (** measured C^f *)
  t1_paper_ecf : float;
  t1_paper_cf : float;
}

val table1 : unit -> t1_row list

(** {1 Figure 2 — SOP size vs complexity factor} *)

type fig2_point = {
  f2_target : float;
  f2_measured_cf : float;
  f2_sop : int;  (** minimised implicant count *)
}

(** Ten-input single-output fully specified functions across the
    complexity range, minimised by the espresso substrate.  Task [i]
    generates its function from the splittable stream keyed by
    [(seed, i)] {e inside} the parallel region, so the output is a
    pure function of [seed] at every job count. *)
val fig2 :
  ?targets:float list -> ?per_target:int -> seed:int -> unit ->
  fig2_point list

(** {1 The ranking-fraction sweep behind Figures 4 and 5} *)

type sweep_cell = {
  sw_error : float;
  sw_delay_mode : Techmap.Report.t;
  sw_power_mode : Techmap.Report.t;
}

type sweep_row = {
  sw_name : string;
  sw_fractions : float array;
  sw_cells : sweep_cell array;  (** one per fraction *)
}

(** The fraction grid {!sweep} uses by default:
    [[| 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 |]]. *)
val default_fractions : float array

(** [sweep_cell_of_spec spec fraction] computes one sweep cell — a
    pure function of its arguments, the distributable unit of the
    sweep. *)
val sweep_cell_of_spec : Pla.Spec.t -> float -> sweep_cell

(** [sweep_cell_by_name ~name ~fraction] is {!sweep_cell_of_spec} on a
    suite benchmark — the self-contained form worker processes run
    (they reload the benchmark from the name rather than shipping the
    spec).  Raises as {!Synthetic.Suite.load_by_name} on unknown
    names. *)
val sweep_cell_by_name : name:string -> fraction:float -> sweep_cell

(** [sweep ()] synthesises every suite benchmark at each ranking
    fraction under both optimisation modes.  The heaviest call here;
    share its result between the Figure 4 and Figure 5 printers. *)
val sweep : ?fractions:float array -> ?names:string list -> unit -> sweep_row list

(** Figure 4 rows: per benchmark, error rate normalised by the
    fraction-0 (conventional) value. *)
val fig4_of_sweep : sweep_row list -> (string * float array) list

type fig5_stat = {
  f5_fraction : float;
  f5_mode : Techmap.Mapper.mode;
  f5_min : float * float * float;  (** (area, delay, power) minima *)
  f5_mean : float * float * float;
  f5_max : float * float * float;
}

(** Figure 5 rows: min/mean/max normalised area, delay, power across
    benchmarks, per fraction and mode. *)
val fig5_of_sweep : sweep_row list -> fig5_stat list

(** {1 Figure 6 — area vs error trajectories by C^f family} *)

type fig6_point = { f6_fraction : float; f6_area : float; f6_error : float }

type fig6_family = { f6_cf : float; f6_points : fig6_point list }

(** Synthetic 11-input/11-output functions, 60% DC, one trajectory per
    complexity-factor family (normalised to the fraction-0 corner,
    averaged over [funcs_per_family] functions).  Function [i] is
    generated from the splittable stream keyed by [(seed, i)] inside
    its own parallel task, so the output is a pure function of [seed]
    at every job count. *)
val fig6 :
  ?families:float list ->
  ?funcs_per_family:int ->
  ?fractions:float list ->
  ?ni:int ->
  ?no:int ->
  seed:int ->
  unit ->
  fig6_family list

(** {1 Table 2 — LC^f-based vs ranking-based vs complete} *)

type t2_row = {
  t2_name : string;
  t2_cf : float;
  t2_lcf_area : float;  (** area improvement %, negative = overhead *)
  t2_lcf_er : float;  (** error-rate improvement % *)
  t2_rank_area : float;
  t2_rank_er : float;
  t2_comp_area : float;
  t2_comp_er : float;
}

(** [table2 ()] compares the three reliability strategies against the
    conventional baseline under area-oriented mapping, with the
    ranking fraction budget-matched to the LC^f assignment (the
    paper's protocol). *)
val table2 : ?threshold:float -> ?names:string list -> unit -> t2_row list

(** {1 Table 3 — min-max reliability estimates} *)

type t3_row = {
  t3_name : string;
  t3_gates : int;
  t3_exact : float * float;
  t3_signal : float * float;
  t3_border : float * float;
  t3_conv_rate : float;
  t3_conv_diff : float;  (** % above the exact minimum *)
  t3_lcf_rate : float;
  t3_lcf_diff : float;
}

val table3 : ?threshold:float -> ?names:string list -> unit -> t3_row list

(** {1 Ablations beyond the paper} *)

(** LC^f threshold sweep on one benchmark: (threshold, area
    improvement %, error improvement %). *)
val ablation_threshold :
  ?thresholds:float list -> name:string -> unit -> (float * float * float) list

(** Poisson vs binomial neighbour model across the suite:
    (name, poisson interval, binomial interval, exact bounds). *)
val ablation_neighbour_model :
  ?names:string list -> unit ->
  (string * (float * float) * (float * float) * (float * float)) list

(** Effect of AIG balancing on delay: (name, delay with balance,
    delay without), delay-mode mapping of the conventional baseline. *)
val ablation_balance : ?names:string list -> unit -> (string * float * float) list

(** Internal-node masking from nodal decomposition (Section 4):
    (name, internal error rate before, after LC^f reassignment). *)
val nodal_decomposition :
  ?threshold:float -> ?names:string list -> unit -> (string * float * float) list

(** Shared-cube (multi-output espresso) vs per-output minimisation:
    (name, single-output area, shared area, single cube total, shared
    cube total), conventional strategy, area-mode mapping. *)
val ablation_sharing :
  ?names:string list -> unit -> (string * float * float * int * int) list

(** Multi-bit error ablation: does single-bit-tuned assignment still
    help under k-bit errors?  Rows: (name, k, conventional rate,
    complete-reliability rate, improvement %). *)
val ablation_multibit :
  ?ks:int list -> ?names:string list -> unit ->
  (string * int * float * float * float) list

(** Flat-SOP vs algebraically factored AIG construction:
    (name, flat area, factored area, flat AIG nodes, factored nodes),
    conventional strategy, area-mode mapping. *)
val ablation_factoring :
  ?names:string list -> unit -> (string * float * float * int * int) list

(** Nodal decomposition at LUT ("renode") granularity: coarser nodes
    expose larger local DC spaces than mapped cells.  Rows:
    (name, luts, luts with local DCs, internal rate before, after). *)
val nodal_renode :
  ?threshold:float -> ?k:int -> ?names:string list -> unit ->
  (string * int * int * float * float) list

(** Satisfiability-only vs observability-aware nodal reassignment:
    (name, internal rate baseline, after SDC-only, after ODC). *)
val nodal_odc :
  ?threshold:float -> ?names:string list -> unit ->
  (string * float * float * float) list
