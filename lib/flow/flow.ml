module Spec = Pla.Spec
module Assign = Rdca_core.Assign
module ER = Reliability.Error_rate

type strategy =
  | Conventional
  | Ranking of float
  | Lcf of float
  | Complete

let strategy_name = function
  | Conventional -> "conventional"
  | Ranking f -> Printf.sprintf "ranking(%.2f)" f
  | Lcf t -> Printf.sprintf "lcf(%.2f)" t
  | Complete -> "complete"

type budget = { max_cubes : int option; max_seconds : float option }

let no_budget = { max_cubes = None; max_seconds = None }

type degradation = Espresso_skipped of { output : int; cubes : int }

let degradation_to_string = function
  | Espresso_skipped { output; cubes } ->
      Printf.sprintf
        "output %d: espresso skipped (budget exceeded), unminimized cover of \
         %d cubes used"
        output cubes

type result = {
  error_rate : float;
  report : Techmap.Report.t;
  sop_cubes : int;
  assigned_fraction : float;
  netlist : Netlist.t;
  covers : Twolevel.Cover.t list;
  degradations : degradation list;
}

type error =
  | Io_error of { path : string; message : string }
  | Parse_error of { path : string; message : string }
  | Unknown_benchmark of { name : string; suggestions : string list }
  | Synthesis_failure of string
  | Check_failed of { subject : string; diags : Check.Diag.t list }

let error_to_string = function
  | Io_error { path; message } -> Printf.sprintf "%s: %s" path message
  | Parse_error { path; message } ->
      Printf.sprintf "%s: parse error: %s" path message
  | Unknown_benchmark { name; suggestions } ->
      let hint =
        match suggestions with
        | [] -> ""
        | s -> Printf.sprintf " (did you mean %s?)" (String.concat ", " s)
      in
      Printf.sprintf "%s: not a file nor a suite benchmark name%s" name hint
  | Synthesis_failure message -> Printf.sprintf "synthesis failed: %s" message
  | Check_failed { subject; diags } ->
      let errs = Check.Diag.count Check.Diag.Error diags in
      Printf.sprintf "%s: static checks failed with %d error(s), e.g. %s"
        subject errs
        (match List.find_opt (fun d -> d.Check.Diag.severity = Check.Diag.Error) diags with
        | Some d -> Format.asprintf "%a" Check.Diag.pp d
        | None -> "(none)")

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type source = { spec : Pla.Spec.t; pla : Pla.t option; origin : string }

let load_source name =
  if Sys.file_exists name && not (Sys.is_directory name) then
    match Pla.parse_file_res name with
    | Ok pla -> (
        (* An overlapping on/off assertion is unrepresentable in the
           dense spec (the parser resolved it last-write-wins), so the
           only honest outcome is refusal. *)
        match Check.Spec_lint.overlap_errors pla with
        | [] -> Ok { spec = pla.Pla.spec; pla = Some pla; origin = name }
        | diags -> Error (Check_failed { subject = name; diags }))
    | Error message -> Error (Parse_error { path = name; message })
  else if String.contains name '/' || Filename.check_suffix name ".pla" then
    Error (Io_error { path = name; message = "no such file" })
  else
    match Synthetic.Suite.find_opt name with
    | Some entry ->
        Ok { spec = Synthetic.Suite.load entry; pla = None; origin = name }
    | None ->
        Error
          (Unknown_benchmark
             { name; suggestions = Synthetic.Suite.suggestions name })

let load_spec name = Stdlib.Result.map (fun s -> s.spec) (load_source name)

(* The scalable loader: dense while the table fits (ni <= 20), so the
   full backend matrix stays available, cover-level beyond — then the
   symbolic and sampled engines are the only options and the dense
   lints do not apply. *)
let load_problem name =
  let dense () = Stdlib.Result.map Reliability.Analysis.of_spec (load_spec name) in
  if Sys.file_exists name && not (Sys.is_directory name) then
    match Pla.parse_file_covers_res name with
    | Error message -> Error (Parse_error { path = name; message })
    | Ok cf ->
        if cf.Pla.cf_ni <= 20 then dense ()
        else
          Ok
            (Reliability.Analysis.of_cover_sets ~ni:cf.Pla.cf_ni
               cf.Pla.cf_outputs)
  else dense ()

let lint_source src =
  match src.pla with
  | Some pla -> Check.Spec_lint.lint_pla pla
  | None -> Check.Spec_lint.lint src.spec

let apply_strategy strategy spec =
  match strategy with
  | Conventional -> Spec.copy spec
  | Ranking fraction -> Assign.ranking ~fraction spec
  | Lcf threshold -> Assign.by_complexity ~threshold spec
  | Complete -> Assign.complete spec

let implement spec = Assign.conventional spec

let implement_checked ?pla spec =
  let lint =
    match pla with
    | Some p -> Check.Spec_lint.lint_pla p
    | None -> Check.Spec_lint.lint spec
  in
  if Check.Diag.has_errors lint then
    Error (Check_failed { subject = "spec"; diags = lint })
  else
    let full, covers = implement spec in
    let cover_diags = Check.Cover_check.check_covers ~spec covers in
    if Check.Diag.has_errors cover_diags then
      Error (Check_failed { subject = "covers"; diags = cover_diags })
    else Ok (full, covers)

(* [implement] under a cube/time budget: an output whose raw on-cover
   already exceeds [max_cubes], or that comes up after [max_seconds]
   of minimisation time has been spent, keeps its unminimized
   minterm-level on-cover (every DC assigned off) and the degradation
   is reported instead of raised. *)
let implement_budgeted ~budget spec =
  let ni = Spec.ni spec in
  let no = Spec.no spec in
  let t0 = Unix.gettimeofday () in
  let minimise o =
    let raw = Spec.on_cover spec ~o in
    let over_cubes =
      match budget.max_cubes with
      | Some c -> Twolevel.Cover.size raw > c
      | None -> false
    in
    let over_time =
      match budget.max_seconds with
      | Some s -> Unix.gettimeofday () -. t0 > s
      | None -> false
    in
    if over_cubes || over_time then (raw, true)
    else
      let on = Spec.on_bv spec ~o and dc = Spec.dc_bv spec ~o in
      (Espresso.Dense.minimize ~n:ni ~on ~dc, false)
  in
  (* Outputs minimise independently, so espresso runs as a parallel
     map — except under a wall-clock budget, where the sequential scan
     is kept so "outputs reached after the deadline" stays a
     deterministic, order-defined notion. *)
  let cells =
    match budget.max_seconds with
    | None -> Array.to_list (Parallel.Pool.init ~chunk:1 no minimise)
    | Some _ -> List.init no minimise
  in
  (* DC assignment mutates the spec copy; done sequentially in output
     order. *)
  let out = Spec.copy spec in
  let degradations = ref [] in
  let covers =
    List.mapi
      (fun o (cover, degraded) ->
        if degraded then
          degradations :=
            Espresso_skipped { output = o; cubes = Twolevel.Cover.size cover }
            :: !degradations;
        Spec.iter_dc spec ~o (fun m ->
            Spec.assign_dc out ~o ~m (Twolevel.Cover.eval cover m));
        cover)
      cells
  in
  (out, covers, List.rev !degradations)

let measured_error ?(analysis = Reliability.Analysis.Exhaustive)
    ?analysis_params ~original assigned =
  let no = Spec.no original in
  let exhaustive () =
    let rates =
      Parallel.Pool.init no (fun o ->
          let impl = ER.impl_table assigned ~o in
          ER.of_table original ~o ~impl)
    in
    Array.fold_left ( +. ) 0.0 rates /. float_of_int no
  in
  let problem = Reliability.Analysis.of_spec original in
  match Reliability.Analysis.resolve ?params:analysis_params problem analysis with
  | Reliability.Analysis.Exhaustive | Reliability.Analysis.Auto ->
      (* The historical dense path, kept verbatim (and bit-identical). *)
      exhaustive ()
  | backend ->
      let impl = Parallel.Pool.init no (fun o -> ER.impl_table assigned ~o) in
      Reliability.Analysis.value_est
        (Reliability.Analysis.rate_of_tables ?params:analysis_params ~backend
           problem ~impl)

let build ?lib ?(factored = false) ~mode spec_assigned covers =
  let lib =
    match lib with Some l -> l | None -> Techmap.Stdcell.default_library ()
  in
  let ni = Spec.ni spec_assigned in
  let aig =
    if factored then
      Aig.of_factored ~ni (List.map Twolevel.Factor.factor covers)
    else Aig.of_covers ~ni covers
  in
  let aig = Aig.Opt.balance aig in
  Techmap.Mapper.map ~mode ~lib aig

let synthesize_common ?lib ?factored ?(budget = no_budget) ?analysis
    ?analysis_params ~mode ~strategy ~verify spec =
  let partial = apply_strategy strategy spec in
  let assigned_fraction =
    Assign.assigned_dc_fraction ~before:spec ~after:partial
  in
  let full, covers, degradations = implement_budgeted ~budget partial in
  let error_rate =
    measured_error ?analysis ?analysis_params ~original:spec full
  in
  let nl = build ?lib ?factored ~mode full covers in
  if verify then begin
    let tables = Netlist.output_tables nl in
    Array.iteri
      (fun o table ->
        for m = 0 to Spec.size spec - 1 do
          if Bitvec.Bv.get table m <> Spec.output_value full ~o ~m then
            failwith
              (Printf.sprintf
                 "Flow: mapped netlist differs from spec at output %d minterm %d"
                 o m)
        done)
      tables
  end;
  let report = Techmap.Report.of_netlist nl in
  let sop_cubes =
    List.fold_left (fun acc c -> acc + Twolevel.Cover.size c) 0 covers
  in
  {
    error_rate;
    report;
    sop_cubes;
    assigned_fraction;
    netlist = nl;
    covers;
    degradations;
  }

let synthesize ?lib ?factored ?budget ?analysis ?analysis_params ~mode
    ~strategy spec =
  synthesize_common ?lib ?factored ?budget ?analysis ?analysis_params ~mode
    ~strategy ~verify:false spec

let verified_synthesize ?lib ?factored ?budget ?analysis ?analysis_params ~mode
    ~strategy spec =
  synthesize_common ?lib ?factored ?budget ?analysis ?analysis_params ~mode
    ~strategy ~verify:true spec

let synthesize_result ?lib ?factored ?budget ?analysis ?analysis_params ~mode
    ~strategy spec =
  match
    synthesize ?lib ?factored ?budget ?analysis ?analysis_params ~mode
      ~strategy spec
  with
  | r -> Ok r
  | exception Invalid_argument msg -> Error (Synthesis_failure msg)
  | exception Failure msg -> Error (Synthesis_failure msg)

let synthesize_checked ?lib ?factored ?budget ?analysis ?analysis_params ?equiv
    ~mode ~strategy spec =
  match
    synthesize_result ?lib ?factored ?budget ?analysis ?analysis_params ~mode
      ~strategy spec
  with
  | Error e -> Error e
  | Ok r ->
      (* Check against the original spec: DC assignment may move DC
         minterms either way, but the cared-about behaviour must
         survive the whole flow. *)
      let diags =
        Check.implementation ?equiv ~include_redundancy:true ~spec
          ~covers:r.covers ~netlist:r.netlist ()
      in
      if Check.Diag.has_errors diags then
        Error (Check_failed { subject = "implementation"; diags })
      else Ok (r, diags)

let optimize_checked ?config ?dc_strategy ?equiv ?auto_cutoff ~spec nl =
  match Rdca_dc.Dc.optimize ?config ?strategy:dc_strategy nl with
  | exception Invalid_argument msg -> Error (Synthesis_failure msg)
  | exception Failure msg -> Error (Synthesis_failure msg)
  | opt ->
      if opt.Rdca_dc.Dc.opt_report.Rdca_dc.Dc.disagreements > 0 then
        let diags =
          [
            Check.Diag.error ~code:"dc-backend-mismatch" ~loc:Check.Diag.Global
              "SAT and BDD don't-care engines disagree on %d window(s)"
              opt.Rdca_dc.Dc.opt_report.Rdca_dc.Dc.disagreements;
          ]
        in
        Error (Check_failed { subject = "dc-optimize"; diags })
      else
        let diags =
          Check.Netlist_check.equiv_spec ?engine:equiv ?auto_cutoff ~spec
            opt.Rdca_dc.Dc.netlist
        in
        if Check.Diag.has_errors diags then
          Error (Check_failed { subject = "dc-optimize"; diags })
        else Ok (opt, diags)

let remove_redundant_checked ?config ?max_iterations ?equiv ?auto_cutoff ~spec
    nl =
  match Atpg.Redundancy.remove ?config ?max_iterations nl with
  | exception Invalid_argument msg -> Error (Synthesis_failure msg)
  | exception Failure msg -> Error (Synthesis_failure msg)
  | rem ->
      if rem.Atpg.Redundancy.final_report.Atpg.Engine.disagreements > 0 then
        let diags =
          [
            Check.Diag.error ~code:"atpg-backend-mismatch"
              ~loc:Check.Diag.Global
              "SAT and reference testability backends disagree on %d fault \
               class(es)"
              rem.Atpg.Redundancy.final_report.Atpg.Engine.disagreements;
          ]
        in
        Error (Check_failed { subject = "redundancy-removal"; diags })
      else
        let diags =
          Check.Netlist_check.equiv_spec ?engine:equiv ?auto_cutoff ~spec
            rem.Atpg.Redundancy.netlist
        in
        if Check.Diag.has_errors diags then
          Error (Check_failed { subject = "redundancy-removal"; diags })
        else Ok (rem, diags)

let implement_shared spec =
  let ni = Spec.ni spec and no = Spec.no spec in
  let ons = Parallel.Pool.init no (fun o -> Spec.on_bv spec ~o) in
  let dcs = Parallel.Pool.init no (fun o -> Spec.dc_bv spec ~o) in
  let mcubes = Espresso.Multi.minimize ~n:ni ~ons ~dcs in
  let out = Spec.copy spec in
  for o = 0 to no - 1 do
    Spec.iter_dc spec ~o (fun m ->
        Spec.assign_dc out ~o ~m (Espresso.Multi.eval ~n:ni mcubes ~o ~m))
  done;
  (out, mcubes)

let aig_of_mcubes ~ni ~no mcubes =
  let aig = Aig.create ~ni in
  let cube_lits =
    List.map
      (fun mc ->
        let lits = ref [] in
        for j = ni - 1 downto 0 do
          match Twolevel.Cube.get mc.Espresso.Multi.input j with
          | Twolevel.Cube.Zero -> lits := Aig.lnot (Aig.input aig j) :: !lits
          | Twolevel.Cube.One -> lits := Aig.input aig j :: !lits
          | Twolevel.Cube.Free -> ()
        done;
        let rec combine = function
          | [] -> Aig.const1
          | [ l ] -> l
          | lits ->
              let rec pair = function
                | [] -> []
                | [ x ] -> [ x ]
                | x :: y :: rest -> Aig.land_ aig x y :: pair rest
              in
              combine (pair lits)
        in
        (combine !lits, mc.Espresso.Multi.outputs))
      mcubes
  in
  let outs =
    Array.init no (fun o ->
        let terms =
          List.filter_map
            (fun (l, omask) ->
              if omask land (1 lsl o) <> 0 then Some l else None)
            cube_lits
        in
        let rec combine = function
          | [] -> Aig.const0
          | [ l ] -> l
          | lits ->
              let rec pair = function
                | [] -> []
                | [ x ] -> [ x ]
                | x :: y :: rest -> Aig.lor_ aig x y :: pair rest
              in
              combine (pair lits)
        in
        combine terms)
  in
  Aig.set_outputs aig outs;
  aig

let synthesize_shared ?lib ~mode ~strategy spec =
  let lib =
    match lib with Some l -> l | None -> Techmap.Stdcell.default_library ()
  in
  let partial = apply_strategy strategy spec in
  let assigned_fraction =
    Assign.assigned_dc_fraction ~before:spec ~after:partial
  in
  let full, mcubes = implement_shared partial in
  let error_rate = measured_error ~original:spec full in
  let aig = aig_of_mcubes ~ni:(Spec.ni spec) ~no:(Spec.no spec) mcubes in
  let aig = Aig.Opt.balance aig in
  let nl = Techmap.Mapper.map ~mode ~lib aig in
  let report = Techmap.Report.of_netlist nl in
  (* Per-output view of the shared cube list, for the cover checker. *)
  let covers =
    List.init (Spec.no spec) (fun o ->
        Twolevel.Cover.make ~n:(Spec.ni spec)
          (List.filter_map
             (fun mc ->
               if mc.Espresso.Multi.outputs land (1 lsl o) <> 0 then
                 Some mc.Espresso.Multi.input
               else None)
             mcubes))
  in
  {
    error_rate;
    report;
    sop_cubes = List.length mcubes;
    assigned_fraction;
    netlist = nl;
    covers;
    degradations = [];
  }
