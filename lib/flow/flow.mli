(** The end-to-end synthesis flow of the paper's experiments:

    spec --(reliability-driven partial DC assignment)-->
    spec' --(espresso per output, conventional use of leftover DCs)-->
    covers --(AIG, balance)--> --(technology mapping)--> netlist,

    measured as (input-error rate, area, delay, power).  This is the
    OCaml equivalent of the paper's ".pla -> Design Compiler" pipeline
    with our substrate (see DESIGN.md). *)

(** How the DC space is treated before conventional synthesis. *)
type strategy =
  | Conventional  (** all DCs left to espresso (the 0% baseline) *)
  | Ranking of float  (** Figure 3 with the given fraction *)
  | Lcf of float  (** Figure 7 with the given threshold *)
  | Complete  (** every non-tied DC assigned for reliability *)

val strategy_name : strategy -> string

(** {1 Graceful degradation}

    Espresso on a pathological benchmark can dominate the whole flow;
    a budget caps it.  When exceeded, the flow falls back to the
    unminimized minterm-level cover for the remaining outputs instead
    of dying — and says so in the result record. *)

(** Per-run espresso budget.  [max_cubes] skips minimisation for any
    output whose raw on-cover already exceeds the bound; [max_seconds]
    is a wall-clock cap on total minimisation time (outputs starting
    after it fall back).  [None] means unlimited. *)
type budget = { max_cubes : int option; max_seconds : float option }

(** [no_budget] — both caps disabled; the default. *)
val no_budget : budget

(** A quality degradation the flow accepted instead of failing. *)
type degradation = Espresso_skipped of { output : int; cubes : int }

val degradation_to_string : degradation -> string

(** Result of one synthesis run. *)
type result = {
  error_rate : float;
      (** mean input-error rate of the implementation, measured against
          the {e original} specification's care sets *)
  report : Techmap.Report.t;
  sop_cubes : int;  (** total minimised cover cubes across outputs *)
  assigned_fraction : float;
      (** fraction of the DC space the strategy assigned before
          conventional synthesis *)
  netlist : Netlist.t;
      (** the mapped netlist itself — for export and for gate-level
          fault-injection campaigns *)
  covers : Twolevel.Cover.t list;
      (** the per-output minimised SOP covers the netlist was built
          from (derived from the shared cube list on the
          {!synthesize_shared} path) — what {!Check.Cover_check}
          audits *)
  degradations : degradation list;
      (** empty when the run was full-quality; see {!budget} *)
}

(** {1 Structured errors}

    Library-level failure paths (file I/O, .pla parsing, suite lookup,
    synthesis itself) surface as values of this type through
    {!load_spec} and {!synthesize_result}, so drivers can report
    cleanly instead of crashing with a backtrace. *)

type error =
  | Io_error of { path : string; message : string }
  | Parse_error of { path : string; message : string }
  | Unknown_benchmark of { name : string; suggestions : string list }
      (** [suggestions] — near-miss suite names for diagnostics *)
  | Synthesis_failure of string
  | Check_failed of { subject : string; diags : Check.Diag.t list }
      (** static checks found error-severity diagnostics on [subject]
          (a file path, benchmark name or pipeline stage); the full
          list is carried so drivers can print or emit it as JSON *)

val error_to_string : error -> string

val pp_error : Format.formatter -> error -> unit

(** [load_spec name] resolves [name] the way the CLI does: an existing
    file parses as .pla; otherwise, a name that does not look like a
    path is looked up in the built-in benchmark suite.  A .pla file
    whose product terms drive some minterm both on and off is refused
    with [Check_failed] (code [on-off-overlap]): the dense spec cannot
    represent the inconsistency, so accepting it would silently
    last-write-wins it away.  All failures are structured [Error]s —
    this function does not raise. *)
val load_spec : string -> (Pla.Spec.t, error) Stdlib.result

(** A loaded specification that remembers where it came from: for .pla
    files the parsed {!Pla.t} is kept so term-level lints
    ({!Check.Spec_lint.lint_pla}) can run; suite benchmarks only have
    the dense spec. *)
type source = { spec : Pla.Spec.t; pla : Pla.t option; origin : string }

(** [load_source name] is {!load_spec} keeping the provenance. *)
val load_source : string -> (source, error) Stdlib.result

(** [load_problem name] resolves [name] into an analysis problem for
    the backend-dispatched reliability engines: files with [.i <= 20]
    (and suite benchmarks) load densely, so every backend including
    [Exhaustive] is available; wider files (up to the cube limit of
    61 inputs) load at the cover level for the symbolic and sampled
    backends.  Failures are structured like {!load_spec}. *)
val load_problem : string -> (Reliability.Analysis.t, error) Stdlib.result

(** [lint_source src] is the spec linter appropriate to the source:
    term-level when the raw .pla is available, dense otherwise. *)
val lint_source : source -> Check.Diag.t list

(** [apply_strategy strategy spec] is the partially assigned spec. *)
val apply_strategy : strategy -> Pla.Spec.t -> Pla.Spec.t

(** [implement spec] finishes any spec with conventional assignment
    and returns the fully specified spec plus per-output covers. *)
val implement : Pla.Spec.t -> Pla.Spec.t * Twolevel.Cover.t list

(** [implement_checked ?pla spec] is {!implement} gated by the static
    checkers: the spec linter runs first (term-level when [pla] is
    given) and error-severity diagnostics refuse the spec with
    [Check_failed] before synthesis; afterwards
    {!Check.Cover_check.check_covers} proves the produced covers
    realise the care set, refusing likewise if they do not. *)
val implement_checked :
  ?pla:Pla.t ->
  Pla.Spec.t ->
  (Pla.Spec.t * Twolevel.Cover.t list, error) Stdlib.result

(** [measured_error ?analysis ?analysis_params ~original assigned] is
    the mean implementation error rate of a fully specified [assigned]
    against [original].  [analysis] (default [Exhaustive], which this
    flow always can use since it holds a dense spec) selects the
    {!Reliability.Analysis} backend; sampled backends report the point
    estimate of their confidence interval. *)
val measured_error :
  ?analysis:Reliability.Analysis.backend ->
  ?analysis_params:Reliability.Analysis.params ->
  original:Pla.Spec.t ->
  Pla.Spec.t ->
  float

(** [synthesize ?lib ?factored ?budget ~mode ~strategy spec] runs the
    full pipeline.  [lib] defaults to
    {!Techmap.Stdcell.default_library}; [factored] (default false)
    algebraically factors each minimised cover ({!Twolevel.Factor})
    before AIG construction; [budget] (default {!no_budget}) caps
    espresso with unminimized-cover fallback; [analysis] and
    [analysis_params] select the error-rate backend as in
    {!measured_error}. *)
val synthesize :
  ?lib:Techmap.Stdcell.t list ->
  ?factored:bool ->
  ?budget:budget ->
  ?analysis:Reliability.Analysis.backend ->
  ?analysis_params:Reliability.Analysis.params ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  result

(** [verified_synthesize] additionally checks (exhaustively) that the
    mapped netlist realises the assigned spec, raising [Failure]
    otherwise.  Used by tests and the quickstart example. *)
val verified_synthesize :
  ?lib:Techmap.Stdcell.t list ->
  ?factored:bool ->
  ?budget:budget ->
  ?analysis:Reliability.Analysis.backend ->
  ?analysis_params:Reliability.Analysis.params ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  result

(** [synthesize_result] is {!synthesize} with library-level exceptions
    ([Invalid_argument], [Failure]) mapped to
    [Error (Synthesis_failure _)]. *)
val synthesize_result :
  ?lib:Techmap.Stdcell.t list ->
  ?factored:bool ->
  ?budget:budget ->
  ?analysis:Reliability.Analysis.backend ->
  ?analysis_params:Reliability.Analysis.params ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  (result, error) Stdlib.result

(** [synthesize_checked] is {!synthesize_result} followed by the full
    {!Check.implementation} audit of the produced covers and netlist
    against the {e original} spec (redundancy lints included).  On
    success the non-error diagnostics (warnings, statistics) are
    returned alongside the result; any error-severity diagnostic turns
    the whole run into [Error (Check_failed _)].  [equiv] selects the
    care-set equivalence engine (default [Auto]). *)
val synthesize_checked :
  ?lib:Techmap.Stdcell.t list ->
  ?factored:bool ->
  ?budget:budget ->
  ?analysis:Reliability.Analysis.backend ->
  ?analysis_params:Reliability.Analysis.params ->
  ?equiv:Check.Netlist_check.equiv_engine ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  (result * Check.Diag.t list, error) Stdlib.result

(** {1 Network don't-care optimization}

    Post-mapping ODC/SDC recovery: {!Rdca_dc.Dc.optimize} rewrites node
    functions on their windowed don't cares, gated here by the same
    care-set equivalence proof the synthesis audit uses. *)

(** [optimize_checked ?config ?dc_strategy ?equiv ?auto_cutoff ~spec nl]
    runs the windowed DC optimizer on [nl] and proves the rewritten
    netlist still realises [spec] on its care set
    ({!Check.Netlist_check.equiv_spec} with the given engine and
    [Auto] cutoff).  Failure paths are structured: a [Differential]
    backend disagreement refuses with [Check_failed] (code
    [dc-backend-mismatch]), as does any care-set mismatch — the
    optimizer's rewrites are function-preserving by construction, so a
    mismatch means an engine bug, never a quality trade-off.  On
    success the equivalence diagnostics (all non-error) ride along. *)
val optimize_checked :
  ?config:Rdca_dc.Dc.config ->
  ?dc_strategy:Rdca_dc.Dc.strategy ->
  ?equiv:Check.Netlist_check.equiv_engine ->
  ?auto_cutoff:int ->
  spec:Pla.Spec.t ->
  Netlist.t ->
  (Rdca_dc.Dc.opt_result * Check.Diag.t list, error) Stdlib.result

(** [remove_redundant_checked ?config ?max_iterations ?equiv
    ?auto_cutoff ~spec nl] runs untestable-fault redundancy removal
    ({!Atpg.Redundancy.remove}) and proves the rewritten netlist still
    realises [spec] on its care set, the same gate as
    {!optimize_checked}: a [Differential] verdict disagreement refuses
    with [Check_failed] (code [atpg-backend-mismatch]), as does any
    care-set mismatch — an untestable fault is an equivalence proof,
    so a mismatch means an engine bug.  On success the equivalence
    diagnostics (all non-error) ride along. *)
val remove_redundant_checked :
  ?config:Atpg.Engine.config ->
  ?max_iterations:int ->
  ?equiv:Check.Netlist_check.equiv_engine ->
  ?auto_cutoff:int ->
  spec:Pla.Spec.t ->
  Netlist.t ->
  (Atpg.Redundancy.result * Check.Diag.t list, error) Stdlib.result

(** {1 Multi-output (shared-cube) variant}

    Uses {!Espresso.Multi} so product terms are shared across outputs
    (the real espresso behaviour on multi-output .pla files), instead
    of minimising each output independently. *)

(** [implement_shared spec] conventionally assigns remaining DCs via
    the joint minimisation and returns the fully specified spec plus
    the shared cube list. *)
val implement_shared : Pla.Spec.t -> Pla.Spec.t * Espresso.Multi.mcube list

(** [synthesize_shared] is {!synthesize} on the shared-cube path. *)
val synthesize_shared :
  ?lib:Techmap.Stdcell.t list ->
  mode:Techmap.Mapper.mode ->
  strategy:strategy ->
  Pla.Spec.t ->
  result
