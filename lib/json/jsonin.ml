module J = Jsonout

exception Fail of int * string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

(* [lit st "rue" v] matches the tail of a keyword whose head character
   was already consumed. *)
let lit st tail v =
  String.iter (fun c -> expect st c) tail;
  v

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek st with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad \\u escape"
    in
    advance st;
    v := (!v * 16) + d
  done;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char b '/'; go ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
        | Some 'u' ->
            advance st;
            let code = hex4 st in
            let code =
              (* surrogate pair *)
              if code >= 0xD800 && code <= 0xDBFF then begin
                expect st '\\';
                expect st 'u';
                let lo = hex4 st in
                if lo < 0xDC00 || lo > 0xDFFF then fail st "bad surrogate pair";
                0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else code
            in
            utf8_of_code b code;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_digits () =
    let got = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
          got := true;
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    if not !got then fail st "expected digit"
  in
  if peek st = Some '-' then advance st;
  consume_digits ();
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    consume_digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_digits ()
  | _ -> ());
  let tok = String.sub st.s start (st.pos - start) in
  if !is_float then J.Float (float_of_string tok)
  else
    match int_of_string_opt tok with
    | Some i -> J.Int i
    | None -> J.Float (float_of_string tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> advance st; lit st "ull" J.Null
  | Some 't' -> advance st; lit st "rue" (J.Bool true)
  | Some 'f' -> advance st; lit st "alse" (J.Bool false)
  | Some '"' -> J.String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        J.List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        J.List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        J.Obj []
      end
      else begin
        let pair () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let items = ref [ pair () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := pair () :: !items;
          skip_ws st
        done;
        expect st '}';
        J.Obj (List.rev !items)
      end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated read")

let member k = function
  | J.Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function J.Int i -> Some i | _ -> None

let to_float = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

let to_string = function J.String s -> Some s | _ -> None
let to_bool = function J.Bool b -> Some b | _ -> None
let to_list = function J.List l -> Some l | _ -> None
