(** Minimal JSON parser, the read half of {!Jsonout}.

    Accepts standard JSON (RFC 8259) and produces {!Jsonout.t} values.
    Numbers without a fraction or exponent parse as [Int] (falling back
    to [Float] on overflow), everything else as [Float] — the exact
    inverse of {!Jsonout}'s emitter, so values round-trip bit-identically:
    [parse (Jsonout.to_string v) = Ok v] for every [v] the emitter can
    produce (floats print with 17 significant digits and re-read to the
    same double).  Needed by the resilient execution layer, whose
    supervisor/worker frames and checkpoint files are JSON. *)

val parse : string -> (Jsonout.t, string) result
(** [parse s] parses one JSON value (surrounding whitespace allowed).
    Trailing garbage after the value is an error.  Error strings carry
    a byte offset. *)

val parse_file : string -> (Jsonout.t, string) result
(** [parse_file path] reads and parses [path]; I/O failures are
    reported as [Error] too. *)

(** {1 Accessors}

    Small total helpers for picking structures apart; all return
    [option] rather than raising. *)

val member : string -> Jsonout.t -> Jsonout.t option
(** [member k v] is the value bound to key [k] if [v] is an object. *)

val to_int : Jsonout.t -> int option
val to_float : Jsonout.t -> float option
(** [to_float] accepts [Int] too (exact conversion). *)

val to_string : Jsonout.t -> string option
val to_bool : Jsonout.t -> bool option
val to_list : Jsonout.t -> Jsonout.t list option
