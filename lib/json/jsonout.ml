type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* "1" is a valid JSON number but keeps the field an integer for
       strict readers; force a float-looking token. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
    else s ^ ".0"

let rec emit b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | String s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          emit b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          escape b k;
          Buffer.add_string b ": ";
          emit b (indent + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))
