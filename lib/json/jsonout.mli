(** Minimal JSON emitter for machine-readable benchmark results.

    Only what the bench harness needs: construction and serialisation,
    no parsing.  Floats print with 17 significant digits so values
    round-trip exactly; NaN and infinities (not representable in JSON)
    become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Serialise with two-space indentation and a trailing newline. *)

val write_file : string -> t -> unit
