module J = Jsonout
module Pool = Parallel.Pool

let attribution_roots =
  [ "sweep.assign"; "sweep.implement"; "sweep.error"; "sweep.build" ]

let profile ~wall (d : Prof.snapshot) =
  let attributed =
    List.fold_left
      (fun acc (name, s, _) ->
        if List.mem name attribution_roots then acc +. s else acc)
      0.0 d.Prof.spans
  in
  J.Obj
    [
      ("attributed_seconds", J.Float attributed);
      ( "attributed_fraction",
        J.Float (if wall > 0.0 then attributed /. wall else 0.0) );
      ( "spans",
        J.Obj
          (List.map
             (fun (name, s, calls) ->
               (name, J.Obj [ ("seconds", J.Float s); ("calls", J.Int calls) ]))
             d.Prof.spans) );
      ( "counters",
        J.Obj (List.map (fun (n, v) -> (n, J.Int v)) d.Prof.counters) );
    ]

let pool_delta ~(before : Pool.stats) ~(after : Pool.stats) =
  J.Obj
    [
      ("batches", J.Int (after.Pool.batches - before.Pool.batches));
      ("tiny_skips", J.Int (after.Pool.tiny_skips - before.Pool.tiny_skips));
      ("sequential", J.Int (after.Pool.sequential - before.Pool.sequential));
      ("probe_items", J.Int (after.Pool.probe_items - before.Pool.probe_items));
      ("last_chunk", J.Int after.Pool.last_chunk);
      ("min_chunk_seen", J.Int after.Pool.min_chunk_seen);
      ("max_chunk_seen", J.Int after.Pool.max_chunk_seen);
    ]

let pool_totals (s : Pool.stats) =
  J.Obj
    [
      ("batches", J.Int s.Pool.batches);
      ("tiny_skips", J.Int s.Pool.tiny_skips);
      ("sequential", J.Int s.Pool.sequential);
      ("probe_items", J.Int s.Pool.probe_items);
      ("domains_spawned", J.Int s.Pool.domains_spawned);
      ("pool_instantiated", J.Bool s.Pool.pool_instantiated);
      ("last_chunk", J.Int s.Pool.last_chunk);
      ("min_chunk_seen", J.Int s.Pool.min_chunk_seen);
      ("max_chunk_seen", J.Int s.Pool.max_chunk_seen);
    ]
