(** Rendering of profiling snapshots and pool scheduling statistics
    into the schema-v4 [BENCH_results.json] fields, shared by
    [bench/main.exe] and [rdca bench] so the two harnesses emit the
    same shapes. *)

val attribution_roots : string list
(** The disjoint top-level spans whose summed time is a section's
    "attributed" wall clock: the four sweep-cell stages
    ([sweep.assign], [sweep.implement], [sweep.error], [sweep.build]).
    Leaf spans ([espresso.minimize], [techmap.map], ...) nest inside
    these and are reported but never double-counted. *)

val profile : wall:float -> Prof.snapshot -> Jsonout.t
(** [profile ~wall d] renders a snapshot diff [d] of one bench leg:
    [attributed_seconds] / [attributed_fraction] (vs the leg's [wall]
    seconds, over {!attribution_roots} only), a [spans] object of
    [{seconds; calls}] per span, and a [counters] object.  At N jobs
    span times accumulate across domains, so the sum of spans — and
    the attributed fraction — can legitimately exceed the wall
    clock there; the ≥90%-attribution contract is stated for the
    single-job leg. *)

val pool_delta :
  before:Parallel.Pool.stats -> after:Parallel.Pool.stats -> Jsonout.t
(** Per-section scheduling record: how many batches were published /
    regions kept sequential / items consumed by cost probes between
    the two readings, plus the (process-lifetime) chunk-size gauges. *)

val pool_totals : Parallel.Pool.stats -> Jsonout.t
(** Process-lifetime scheduling totals for the top-level record,
    including domains spawned and whether the shared pool was ever
    instantiated. *)
