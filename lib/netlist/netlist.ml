module Gate = Gate

type node = { gate : Gate.t; fanins : int array }

type t = {
  ni : int;
  mutable nodes : node array;
  mutable next : int;
  mutable outputs : int array;
}

let create ~ni =
  if ni < 0 then invalid_arg "Netlist.create";
  let cap = max 16 (2 * ni) in
  let dummy = { gate = Gate.Const false; fanins = [||] } in
  let t = { ni; nodes = Array.make cap dummy; next = ni; outputs = [||] } in
  for i = 0 to ni - 1 do
    t.nodes.(i) <- { gate = Gate.Input i; fanins = [||] }
  done;
  t

let ni t = t.ni
let node_count t = t.next

let grow t =
  if t.next >= Array.length t.nodes then begin
    let dummy = { gate = Gate.Const false; fanins = [||] } in
    let bigger = Array.make (2 * Array.length t.nodes) dummy in
    Array.blit t.nodes 0 bigger 0 t.next;
    t.nodes <- bigger
  end

let add t gate fanins =
  let id = t.next in
  Array.iter
    (fun f ->
      if f < 0 || f >= id then
        invalid_arg "Netlist.add: fanin id out of range (must be < node id)")
    fanins;
  (match Gate.arity gate with
  | Some a when Array.length fanins <> a -> invalid_arg "Netlist.add: arity"
  | Some _ -> ()
  | None ->
      if Array.length fanins < 2 then
        invalid_arg "Netlist.add: variadic gate needs >= 2 fanins");
  (match gate with
  | Gate.Input _ -> invalid_arg "Netlist.add: inputs are created by create"
  | _ -> ());
  grow t;
  t.nodes.(id) <- { gate; fanins };
  t.next <- id + 1;
  id

let set_outputs t ids =
  Array.iter
    (fun o ->
      if o < 0 || o >= t.next then invalid_arg "Netlist.set_outputs: bad id")
    ids;
  t.outputs <- Array.copy ids

let outputs t = Array.copy t.outputs
let no t = Array.length t.outputs

let copy t =
  {
    ni = t.ni;
    nodes = Array.copy t.nodes;
    next = t.next;
    outputs = Array.copy t.outputs;
  }

let check_id t id =
  if id < 0 || id >= t.next then invalid_arg "Netlist: node id out of range"

let gate t id =
  check_id t id;
  t.nodes.(id).gate

let fanins t id =
  check_id t id;
  Array.copy t.nodes.(id).fanins

let iter_nodes t f =
  for id = t.ni to t.next - 1 do
    let n = t.nodes.(id) in
    f id n.gate n.fanins
  done

let eval t inputs =
  if Array.length inputs <> t.ni then invalid_arg "Netlist.eval: input count";
  let values = Array.make t.next false in
  Array.blit inputs 0 values 0 t.ni;
  for id = t.ni to t.next - 1 do
    let n = t.nodes.(id) in
    values.(id) <- Gate.eval n.gate (Array.map (Array.get values) n.fanins)
  done;
  Array.map (Array.get values) t.outputs

let eval_minterm t m =
  eval t (Array.init t.ni (fun i -> m land (1 lsl i) <> 0))

let eval_with_override t ~override inputs =
  if Array.length inputs <> t.ni then
    invalid_arg "Netlist.eval_with_override: input count";
  let values = Array.make t.next false in
  for i = 0 to t.ni - 1 do
    values.(i) <- override i inputs.(i)
  done;
  for id = t.ni to t.next - 1 do
    let n = t.nodes.(id) in
    values.(id) <-
      override id (Gate.eval n.gate (Array.map (Array.get values) n.fanins))
  done;
  Array.map (Array.get values) t.outputs

let eval_minterm_with_override t ~override m =
  eval_with_override t ~override
    (Array.init t.ni (fun i -> m land (1 lsl i) <> 0))

(* Word-parallel simulation over all 2^ni patterns, 63 at a time.
   [override id word] transforms each node's word after evaluation
   (identity by default) — the gate-fault-injection hook. *)
let simulate_all ?(override = fun _ w -> w) t visit =
  if t.ni > 20 then invalid_arg "Netlist: ni too large for exhaustive sim";
  let total = 1 lsl t.ni in
  let words = Array.make t.next 0 in
  let base = ref 0 in
  while !base < total do
    let chunk = min 63 (total - !base) in
    (* Pattern p in this chunk is minterm (base + p). *)
    for i = 0 to t.ni - 1 do
      let w = ref 0 in
      for p = 0 to chunk - 1 do
        if (!base + p) land (1 lsl i) <> 0 then w := !w lor (1 lsl p)
      done;
      words.(i) <- override i !w
    done;
    for id = t.ni to t.next - 1 do
      let n = t.nodes.(id) in
      words.(id) <-
        override id
          (Gate.eval_words n.gate (Array.map (Array.get words) n.fanins))
    done;
    visit ~base:!base ~chunk words;
    base := !base + chunk
  done

let output_tables_gen ?override t =
  let total = 1 lsl t.ni in
  let tables =
    Array.init (Array.length t.outputs) (fun _ -> Bitvec.Bv.create total)
  in
  simulate_all ?override t (fun ~base ~chunk words ->
      Array.iteri
        (fun o out_id ->
          let w = words.(out_id) in
          for p = 0 to chunk - 1 do
            if w land (1 lsl p) <> 0 then Bitvec.Bv.set tables.(o) (base + p)
          done)
        t.outputs);
  tables

let output_tables_with_override t ~override = output_tables_gen ~override t

let output_tables t = output_tables_gen t

let signal_probs t =
  let total = 1 lsl t.ni in
  let ones = Array.make t.next 0 in
  simulate_all t (fun ~base ~chunk words ->
      ignore base;
      Array.iteri
        (fun id w ->
          let masked = w land ((1 lsl chunk) - 1) in
          ones.(id) <- ones.(id) + Bitvec.Minterm.popcount masked)
        words);
  Array.map (fun c -> float_of_int c /. float_of_int total) ones

let gate_count t =
  let acc = ref 0 in
  iter_nodes t (fun _ g _ ->
      match g with Gate.Const _ -> () | _ -> incr acc);
  !acc

let area ?(primitive_area = 1.0) t =
  let acc = ref 0.0 in
  iter_nodes t (fun _ g _ ->
      match g with
      | Gate.Cell c -> acc := !acc +. c.Gate.area
      | Gate.Const _ -> ()
      | _ -> acc := !acc +. primitive_area);
  !acc

let depth t =
  let levels = Array.make t.next 0 in
  iter_nodes t (fun id g fanins ->
      levels.(id) <-
        (match g with
        | Gate.Const _ -> 0
        | _ ->
            1 + Array.fold_left (fun acc f -> max acc levels.(f)) (-1) fanins));
  Array.fold_left (fun acc o -> max acc levels.(o)) 0 t.outputs

let delay ?(primitive_delay = 1.0) t =
  let arrival = Array.make t.next 0.0 in
  iter_nodes t (fun id g fanins ->
      let d =
        match g with
        | Gate.Cell c -> c.Gate.delay
        | Gate.Const _ -> 0.0
        | _ -> primitive_delay
      in
      let worst = Array.fold_left (fun acc f -> max acc arrival.(f)) 0.0 fanins in
      arrival.(id) <- worst +. d);
  Array.fold_left (fun acc o -> max acc arrival.(o)) 0.0 t.outputs

let dynamic_power ?(primitive_cap = 1.0) t =
  let probs = signal_probs t in
  (* Capacitance driven by each net: sum of input caps of its fanouts. *)
  let cap = Array.make t.next 0.0 in
  iter_nodes t (fun _ g fanins ->
      let pin_cap =
        match g with Gate.Cell c -> c.Gate.input_cap | _ -> primitive_cap
      in
      Array.iter (fun f -> cap.(f) <- cap.(f) +. pin_cap) fanins);
  (* Output nets drive the environment: one unit load each. *)
  Array.iter (fun o -> cap.(o) <- cap.(o) +. primitive_cap) t.outputs;
  let acc = ref 0.0 in
  for id = 0 to t.next - 1 do
    let p = probs.(id) in
    acc := !acc +. (2.0 *. p *. (1.0 -. p) *. cap.(id))
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>netlist: %d inputs, %d nodes, %d outputs@," t.ni
    (node_count t) (no t);
  iter_nodes t (fun id g fanins ->
      Format.fprintf ppf "  n%d = %s(%s)@," id (Gate.name g)
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "n%d") fanins))));
  Format.fprintf ppf "  outputs: %s@]"
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "n%d") t.outputs)))

let replace_gate t id g =
  check_id t id;
  let n = t.nodes.(id) in
  (match n.gate with
  | Gate.Input _ -> invalid_arg "Netlist.replace_gate: cannot replace an input"
  | _ -> ());
  (match g with
  | Gate.Input _ -> invalid_arg "Netlist.replace_gate: Input not allowed"
  | _ -> ());
  (match Gate.arity g with
  | Some a when Array.length n.fanins <> a ->
      invalid_arg "Netlist.replace_gate: arity mismatch"
  | Some _ -> ()
  | None ->
      if Array.length n.fanins < 2 then
        invalid_arg "Netlist.replace_gate: variadic gate needs >= 2 fanins");
  t.nodes.(id) <- { n with gate = g }
