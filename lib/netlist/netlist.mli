(** Combinational gate-level netlists.

    Nodes are appended in topological order (every fanin id is smaller
    than the node's id — enforced at construction), which makes
    simulation and timing single linear passes.  The same type holds
    technology-independent netlists (primitive gates) and mapped
    netlists ([Gate.Cell] instances). *)

module Gate = Gate

type t

(** [create ~ni] starts a netlist with [ni] primary inputs, which
    occupy node ids [0 .. ni-1]. *)
val create : ni:int -> t

(** [ni t] is the primary input count; [node_count t] the total number
    of nodes (inputs included). *)
val ni : t -> int

val node_count : t -> int

(** [add t gate fanins] appends a node and returns its id.
    @raise Invalid_argument if a fanin id is out of range (>= the new
    node's id) or the gate/fanin arity mismatch. *)
val add : t -> Gate.t -> int array -> int

(** [set_outputs t ids] declares the primary outputs.
    @raise Invalid_argument on a bad id. *)
val set_outputs : t -> int array -> unit

val outputs : t -> int array

val no : t -> int

(** [copy t] is an independent netlist: further {!add} /
    {!replace_gate} / {!set_outputs} on either side do not affect the
    other.  Node records are immutable, so this is a shallow (cheap)
    copy. *)
val copy : t -> t

(** [gate t id] and [fanins t id] inspect a node. *)
val gate : t -> int -> Gate.t

val fanins : t -> int -> int array

(** [iter_nodes t f] visits non-input nodes in topological order. *)
val iter_nodes : t -> (int -> Gate.t -> int array -> unit) -> unit

(** [eval t inputs] evaluates all outputs on one input vector. *)
val eval : t -> bool array -> bool array

(** [eval_minterm t m] evaluates on the minterm encoding of the
    inputs (bit [i] = input [i]). *)
val eval_minterm : t -> int -> bool array

(** [eval_with_override t ~override inputs] is {!eval} except that
    every node's value — primary inputs included — is passed through
    [override id value] before being stored, so downstream nodes see
    the overridden value.  The identity function reproduces {!eval};
    forcing or flipping one node's value injects a gate-level fault
    (see [Reliability.Inject]). *)
val eval_with_override :
  t -> override:(int -> bool -> bool) -> bool array -> bool array

(** [eval_minterm_with_override t ~override m] is
    {!eval_with_override} on the minterm encoding of the inputs. *)
val eval_minterm_with_override :
  t -> override:(int -> bool -> bool) -> int -> bool array

(** [output_tables t] simulates all [2^ni] patterns word-parallel and
    returns one characteristic bit-vector per output.
    @raise Invalid_argument when [ni > 20]. *)
val output_tables : t -> Bitvec.Bv.t array

(** [output_tables_with_override t ~override] is {!output_tables} with
    [override id word] applied to each node's simulation word (63
    patterns per bit) — the word-parallel form of
    {!eval_with_override}.  Only the low bits covering the current
    chunk are read back, so overrides may set garbage above them. *)
val output_tables_with_override :
  t -> override:(int -> int -> int) -> Bitvec.Bv.t array

(** [signal_probs t] is the exact probability of each *node* being 1
    under uniform random inputs (exhaustive; [ni <= 20]). *)
val signal_probs : t -> float array

(** Statistics. *)

(** [gate_count t] counts non-input, non-constant nodes. *)
val gate_count : t -> int

(** [area t] sums [Cell] areas; primitive gates count via
    [~primitive_area] (default 1.0 per gate, inputs/consts 0). *)
val area : ?primitive_area:float -> t -> float

(** [depth t] is the maximum logic depth in gate levels. *)
val depth : t -> int

(** [delay t] is the critical-path delay using cell delays
    ([~primitive_delay], default 1.0, for unmapped gates). *)
val delay : ?primitive_delay:float -> t -> float

(** [dynamic_power t] is  sum over nets of
    (switching activity x driven capacitance), with activity
    [2 p (1-p)] from exact signal probabilities and capacitance the
    sum of driven [Cell] pin caps ([~primitive_cap] default 1.0 per
    driven primitive pin).  A technology-independent dynamic power
    proxy in library units. *)
val dynamic_power : ?primitive_cap:float -> t -> float

(** [pp] prints a readable listing. *)
val pp : Format.formatter -> t -> unit

(** [replace_gate t id gate] swaps a node's gate in place; the fanins
    are kept, so the new gate must accept the same arity.
    @raise Invalid_argument on inputs, arity mismatch or bad id. *)
val replace_gate : t -> int -> Gate.t -> unit
