(* Work pool: [jobs - 1] worker domains block on a condition variable
   until a batch of chunks is published; workers and the submitting
   domain claim chunk indices under the mutex and run them unlocked.
   The chunk -> index-range mapping is fixed up front, so scheduling
   order never influences results — only the wall clock. *)

type batch = {
  run_chunk : int -> unit;
  total : int;
  mutable next : int; (* next unclaimed chunk *)
  mutable live : int; (* chunks claimed but not yet finished *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* a batch arrived, or shutdown *)
  finished : Condition.t; (* the batch in flight drained *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* True inside a pool task: nested parallel operations fall back to
   sequential execution instead of deadlocking on the shared pool. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let jobs t = t.jobs

(* Claim the next chunk of the batch in flight.  Caller holds the
   mutex. *)
let claim t =
  match t.batch with
  | Some b when b.next < b.total ->
      let k = b.next in
      b.next <- b.next + 1;
      b.live <- b.live + 1;
      Some (b, k)
  | _ -> None

(* Run a claimed chunk outside the lock; re-acquires the mutex before
   returning.  On exception the first failure is recorded and the
   unclaimed remainder of the batch is cancelled. *)
let run_claimed t (b, k) =
  Mutex.unlock t.mutex;
  let failure =
    match b.run_chunk k with
    | () -> None
    | exception e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.mutex;
  (match failure with
  | None -> ()
  | Some f ->
      if b.failed = None then b.failed <- Some f;
      b.next <- b.total);
  b.live <- b.live - 1;
  if b.live = 0 && b.next >= b.total then Condition.broadcast t.finished

let worker t () =
  Domain.DLS.set in_task true;
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match claim t with
      | Some c ->
          run_claimed t c;
          loop ()
      | None ->
          Condition.wait t.work t.mutex;
          loop ()
  in
  loop ()

(* OCaml 5 refuses [Unix.fork] in any process that has *ever* spawned
   a second domain, even one long since joined — record the fact so
   fork-based facilities (Resilient.Supervisor) can degrade up front
   instead of failing per attempt. *)
let spawned_domains = ref false
let fork_safe () = not !spawned_domains

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stop = false;
      domains = [];
    }
  in
  if jobs > 1 then spawned_domains := true;
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Publish a batch, help run it, wait for it to drain, and re-raise
   the first task failure. *)
let run_batch t ~chunks run_chunk =
  if chunks > 0 then begin
    Mutex.lock t.mutex;
    (* A second submitting domain queues here until the batch in
       flight drains (single-region-at-a-time pool). *)
    while t.batch <> None do
      Condition.wait t.finished t.mutex
    done;
    let b = { run_chunk; total = chunks; next = 0; live = 0; failed = None } in
    t.batch <- Some b;
    Condition.broadcast t.work;
    let was_in_task = Domain.DLS.get in_task in
    Domain.DLS.set in_task true;
    let rec help () =
      match claim t with
      | Some c ->
          run_claimed t c;
          help ()
      | None -> ()
    in
    help ();
    Domain.DLS.set in_task was_in_task;
    while b.live > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Condition.broadcast t.finished;
    Mutex.unlock t.mutex;
    match b.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Default (shared) pool.                                              *)

let env_jobs () =
  match Sys.getenv_opt "RDCA_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default = ref None

let default_jobs () =
  match !default with
  | Some n -> n
  | None ->
      let n =
        match env_jobs () with
        | Some n -> n
        | None -> max 1 (Domain.recommended_domain_count ())
      in
      default := Some n;
      n

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := Some n

let shared_pool = ref None
let exit_hook_installed = ref false

let shared () =
  let jobs = default_jobs () in
  match !shared_pool with
  | Some t when t.jobs = jobs -> t
  | prev ->
      Option.iter shutdown prev;
      let t = create ~jobs in
      shared_pool := Some t;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        (* Workers parked in Condition.wait must be joined before the
           runtime shuts down. *)
        at_exit (fun () ->
            Option.iter shutdown !shared_pool;
            shared_pool := None)
      end;
      t

let with_jobs j f =
  if j < 1 then invalid_arg "Pool.with_jobs: jobs must be >= 1";
  let saved = default_jobs () in
  set_default_jobs j;
  Fun.protect ~finally:(fun () -> set_default_jobs saved) f

let quiesce () =
  Option.iter shutdown !shared_pool;
  shared_pool := None

let fork_reset () =
  (* In a forked child the parent's worker domains do not exist; drop
     the handle without joining them and run sequentially from now
     on.  The at_exit hook then finds no pool to shut down. *)
  shared_pool := None;
  spawned_domains := false;
  default := Some 1

(* ------------------------------------------------------------------ *)
(* Chunked operations.                                                 *)

let resolve = function Some t -> t | None -> shared ()

(* Default chunk size: enough chunks for dynamic load balancing
   (roughly eight claims per domain on large inputs) without paying
   one mutex handoff per item on fine-grained loops.  The floor of
   [min_chunk] items means inputs at or under it run sequentially —
   and, below, without even instantiating the shared pool.  Callers
   whose items are individually expensive (whole-benchmark synthesis
   runs, fault-site blocks) pass [~chunk:1] explicitly to keep
   per-item balancing. *)
let min_chunk = 4
let default_chunk ~jobs n = max min_chunk (n / (8 * jobs))

let for_ ?pool ?chunk n f =
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.for_: chunk must be >= 1"
  | _ -> ());
  if n > 0 then begin
    (* Job count resolved without touching the shared pool: sub-chunk
       inputs must not pay domain spin-up. *)
    let jobs =
      match pool with Some t -> t.jobs | None -> default_jobs ()
    in
    let chunk =
      match chunk with Some c -> c | None -> default_chunk ~jobs n
    in
    if jobs = 1 || n <= chunk || Domain.DLS.get in_task then
      for i = 0 to n - 1 do
        f i
      done
    else
      let t = resolve pool in
      let chunks = ((n - 1) / chunk) + 1 in
      run_batch t ~chunks (fun k ->
          let lo = k * chunk and hi = min n ((k + 1) * chunk) - 1 in
          for i = lo to hi do
            f i
          done)
  end

let init ?pool ?chunk n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    (* Option slots: each index is written exactly once, by whichever
       domain owns its chunk. *)
    let out = Array.make n None in
    for_ ?pool ?chunk n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let mapi ?pool ?chunk f a =
  init ?pool ?chunk (Array.length a) (fun i -> f i a.(i))

let map ?pool ?chunk f a = init ?pool ?chunk (Array.length a) (fun i -> f a.(i))

let map_list ?pool ?chunk f l =
  Array.to_list (map ?pool ?chunk f (Array.of_list l))
