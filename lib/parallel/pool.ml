(* Work pool: [jobs - 1] worker domains park on a condition variable
   until a batch is published, then drain it lock-free.  Chunk indices
   are claimed with [Atomic.fetch_and_add] and each domain keeps a
   private completion count that it merges into the batch's shared
   counter only when its claims run out, so the mutex is touched per
   *batch* (publish, park/wake, failure recording) and never per
   chunk.  The chunk -> index-range mapping is fixed when the batch is
   published, so scheduling order never influences results — only the
   wall clock. *)

type batch = {
  run_chunk : int -> unit;
  total : int;
  next : int Atomic.t; (* next unclaimed chunk *)
  completed : int Atomic.t; (* chunks accounted for (ran or skipped) *)
  cancelled : bool Atomic.t; (* a task failed: skip remaining chunks *)
  mutable failed : (exn * Printexc.raw_backtrace) option; (* under mutex *)
}

type t = {
  jobs : int;
  mutex : Mutex.t; (* publish/park/wake + failure recording only *)
  work : Condition.t; (* a batch arrived, or shutdown *)
  finished : Condition.t; (* the batch in flight drained *)
  mutable batch : batch option;
  mutable epoch : int; (* bumped per published batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* True inside a pool task: nested parallel operations fall back to
   sequential execution instead of deadlocking on the shared pool. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let jobs t = t.jobs

(* Scheduling observability (see {!stats} and the schema-v4 bench
   output).  The counters are monotone and also visible through
   [Prof.snapshot]; the chunk gauges are plain atomics read directly. *)
let c_batches = Prof.counter "pool.batches"
let c_tiny = Prof.counter "pool.tiny_skips"
let c_seq = Prof.counter "pool.seq_regions"
let c_probe_items = Prof.counter "pool.probe_items"
let c_spawned = Prof.counter "pool.domains_spawned"
let sp_drain = Prof.span "pool.drain"
let g_last_chunk = Atomic.make 0
let g_min_chunk = Atomic.make 0
let g_max_chunk = Atomic.make 0

let note_chunk c =
  Atomic.set g_last_chunk c;
  let rec upd g better =
    let cur = Atomic.get g in
    if (cur = 0 || better c cur) && not (Atomic.compare_and_set g cur c) then
      upd g better
  in
  upd g_min_chunk ( < );
  upd g_max_chunk ( > )

(* Drain the batch: claim chunks lock-free until none remain, then
   merge this domain's completion count.  The last domain to leave
   (the one whose merge reaches [total]) wakes the submitter.  After a
   failure the remaining chunks are still claimed — each is a pair of
   atomic operations — so the completion count always reaches [total]
   and the finish condition stays a single comparison. *)
let drain t b =
  let local = ref 0 in
  let rec loop () =
    let k = Atomic.fetch_and_add b.next 1 in
    if k < b.total then begin
      (if not (Atomic.get b.cancelled) then
         try b.run_chunk k
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Atomic.set b.cancelled true;
           Mutex.lock t.mutex;
           if b.failed = None then b.failed <- Some (e, bt);
           Mutex.unlock t.mutex);
      incr local;
      loop ()
    end
  in
  Prof.time sp_drain loop;
  if !local > 0 then
    let c = !local + Atomic.fetch_and_add b.completed !local in
    if c = b.total then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end

let worker t () =
  Domain.DLS.set in_task true;
  let seen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.epoch <> !seen then begin
      seen := t.epoch;
      match t.batch with
      | Some b ->
          Mutex.unlock t.mutex;
          drain t b;
          Mutex.lock t.mutex;
          loop ()
      | None -> loop ()
    end
    else begin
      Condition.wait t.work t.mutex;
      loop ()
    end
  in
  loop ()

(* OCaml 5 refuses [Unix.fork] in any process that has *ever* spawned
   a second domain, even one long since joined — record the fact so
   fork-based facilities (Resilient.Supervisor) can degrade up front
   instead of failing per attempt. *)
let spawned_domains = ref false
let fork_safe () = not !spawned_domains

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      epoch = 0;
      stop = false;
      domains = [];
    }
  in
  if jobs > 1 then begin
    spawned_domains := true;
    Prof.add c_spawned (jobs - 1)
  end;
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Publish a batch, help drain it, wait for the stragglers, and
   re-raise the first task failure. *)
let run_batch t ~chunks run_chunk =
  if chunks > 0 then begin
    Mutex.lock t.mutex;
    (* A second submitting domain queues here until the batch in
       flight drains (single-region-at-a-time pool). *)
    while t.batch <> None do
      Condition.wait t.finished t.mutex
    done;
    let b =
      {
        run_chunk;
        total = chunks;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        cancelled = Atomic.make false;
        failed = None;
      }
    in
    t.batch <- Some b;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Prof.incr c_batches;
    let was_in_task = Domain.DLS.get in_task in
    Domain.DLS.set in_task true;
    drain t b;
    Domain.DLS.set in_task was_in_task;
    Mutex.lock t.mutex;
    (* No lost wakeup: the waker broadcasts while holding the mutex,
       so it cannot fire between this check and the wait. *)
    while Atomic.get b.completed < b.total do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Condition.broadcast t.finished;
    Mutex.unlock t.mutex;
    match b.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Default (shared) pool.                                              *)

let env_jobs () =
  match Sys.getenv_opt "RDCA_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default = ref None

let default_jobs () =
  match !default with
  | Some n -> n
  | None ->
      let n =
        match env_jobs () with
        | Some n -> n
        | None -> max 1 (Domain.recommended_domain_count ())
      in
      default := Some n;
      n

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := Some n

let shared_pool = ref None
let exit_hook_installed = ref false

let shared () =
  let jobs = default_jobs () in
  match !shared_pool with
  | Some t when t.jobs = jobs -> t
  | prev ->
      Option.iter shutdown prev;
      let t = create ~jobs in
      shared_pool := Some t;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        (* Workers parked in Condition.wait must be joined before the
           runtime shuts down. *)
        at_exit (fun () ->
            Option.iter shutdown !shared_pool;
            shared_pool := None)
      end;
      t

let with_jobs j f =
  if j < 1 then invalid_arg "Pool.with_jobs: jobs must be >= 1";
  let saved = default_jobs () in
  set_default_jobs j;
  Fun.protect ~finally:(fun () -> set_default_jobs saved) f

let quiesce () =
  Option.iter shutdown !shared_pool;
  shared_pool := None

let fork_reset () =
  (* In a forked child the parent's worker domains do not exist; drop
     the handle without joining them and run sequentially from now
     on.  The at_exit hook then finds no pool to shut down. *)
  shared_pool := None;
  spawned_domains := false;
  default := Some 1

(* ------------------------------------------------------------------ *)
(* Chunked operations.                                                 *)

let resolve = function Some t -> t | None -> shared ()

(* Inputs of at most [min_chunk] items always run sequentially —
   without even instantiating the shared pool.  Callers whose items
   are individually expensive (whole-benchmark synthesis runs,
   fault-site blocks) pass [~chunk:1] explicitly to keep per-item
   balancing; the cost probe below only governs the default path. *)
let min_chunk = 4

(* Adaptive sizing for the default path.  A few items are run
   sequentially under the wall clock until [probe_min_s] has elapsed
   (so nanosecond-scale items are probed in bulk rather than trusting
   one noisy sample); the measured per-item cost then decides whether
   the region is worth domains at all and, if so, how many items make
   a [target_chunk_s] chunk.  Probing runs real items in index order,
   so the region's per-index results are unaffected. *)
let tiny_batch_s = 100e-6 (* est. total below this: stay sequential *)
let probe_min_s = 20e-6 (* keep probing until this much is measured *)
let target_chunk_s = 200e-6 (* aim each chunk at roughly this span *)

let seq_for n f =
  for i = 0 to n - 1 do
    f i
  done

let publish ?pool ~lo ~n ~chunk f =
  let t = resolve pool in
  let span = n - lo in
  let chunks = ((span - 1) / chunk) + 1 in
  note_chunk chunk;
  run_batch t ~chunks (fun k ->
      let first = lo + (k * chunk) and last = min n (lo + ((k + 1) * chunk)) - 1 in
      for i = first to last do
        f i
      done)

(* Probe then dispatch: returns after all [n] items have run. *)
let adaptive_for ?pool ~jobs n f =
  let t0 = Prof.now () in
  let probed = ref 0 in
  let elapsed = ref 0. in
  while !probed < n && !elapsed < probe_min_s do
    f !probed;
    incr probed;
    elapsed := Prof.now () -. t0
  done;
  Prof.add c_probe_items !probed;
  if !probed >= n then Prof.incr c_seq
  else
    let per_item = !elapsed /. float_of_int !probed in
    let est_total = per_item *. float_of_int n in
    if est_total < tiny_batch_s then begin
      (* Tiny batch: finishing in place is cheaper than one wake-up. *)
      Prof.incr c_tiny;
      Prof.incr c_seq;
      for i = !probed to n - 1 do
        f i
      done
    end
    else
      let by_cost =
        if per_item <= 0. then max_int
        else int_of_float (ceil (target_chunk_s /. per_item))
      in
      (* Even when chunks of [target_chunk_s] would be huge, keep a few
         claims per domain for load balancing. *)
      let by_balance = max 1 ((n - !probed) / (4 * jobs)) in
      let chunk = max 1 (min by_cost by_balance) in
      publish ?pool ~lo:!probed ~n ~chunk f

let for_ ?pool ?chunk n f =
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.for_: chunk must be >= 1"
  | _ -> ());
  if n > 0 then begin
    (* Job count resolved without touching the shared pool: sequential
       paths must not pay domain spin-up. *)
    let jobs = match pool with Some t -> t.jobs | None -> default_jobs () in
    if jobs = 1 || Domain.DLS.get in_task then begin
      Prof.incr c_seq;
      seq_for n f
    end
    else
      match chunk with
      | Some chunk ->
          if n <= chunk then begin
            Prof.incr c_seq;
            seq_for n f
          end
          else publish ?pool ~lo:0 ~n ~chunk f
      | None ->
          if n <= min_chunk then begin
            Prof.incr c_tiny;
            Prof.incr c_seq;
            seq_for n f
          end
          else adaptive_for ?pool ~jobs n f
  end

let init ?pool ?chunk n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  if n = 0 then [||]
  else begin
    (* Option slots: each index is written exactly once, by whichever
       domain owns its chunk. *)
    let out = Array.make n None in
    for_ ?pool ?chunk n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let mapi ?pool ?chunk f a =
  init ?pool ?chunk (Array.length a) (fun i -> f i a.(i))

let map ?pool ?chunk f a = init ?pool ?chunk (Array.length a) (fun i -> f a.(i))

let map_list ?pool ?chunk f l =
  Array.to_list (map ?pool ?chunk f (Array.of_list l))

(* ------------------------------------------------------------------ *)
(* Stats.                                                              *)

type stats = {
  batches : int;
  tiny_skips : int;
  sequential : int;
  probe_items : int;
  domains_spawned : int;
  pool_instantiated : bool;
  last_chunk : int;
  min_chunk_seen : int;
  max_chunk_seen : int;
}

let stats () =
  {
    batches = Prof.value c_batches;
    tiny_skips = Prof.value c_tiny;
    sequential = Prof.value c_seq;
    probe_items = Prof.value c_probe_items;
    domains_spawned = Prof.value c_spawned;
    pool_instantiated = Option.is_some !shared_pool;
    last_chunk = Atomic.get g_last_chunk;
    min_chunk_seen = Atomic.get g_min_chunk;
    max_chunk_seen = Atomic.get g_max_chunk;
  }
