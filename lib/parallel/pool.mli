(** A small work pool over [Domain] / [Mutex] / [Condition] with a
    lock-free dispatch core.

    The pool executes {e chunked} parallel regions: a region is split
    into chunks with a fixed chunk -> index-range mapping, idle worker
    domains (plus the submitting domain) claim chunk indices with an
    atomic counter and run them without any lock, and every result is
    written to the slot of its own index.  Each domain keeps a private
    completion count that is merged into the batch's shared counter
    only when its claims run out, so the pool mutex is taken per
    {e batch} (publish, park/wake, failure recording), never per
    chunk.  Which domain runs which chunk therefore never affects
    {e what} is computed, only {e when} — callers that are pure per
    index get bit-identical results at every job count.  Reductions
    (sums, folds) are deliberately left to the caller so they can be
    done sequentially in index order.

    With [jobs = 1] no domains are spawned and every operation runs
    sequentially in the calling domain, so single-job results are
    identical to the pre-parallel code {e by construction}.  Parallel
    operations invoked from inside a pool task (nested parallelism)
    also run sequentially instead of deadlocking on the shared pool.

    The default job count comes from the [RDCA_JOBS] environment
    variable when set to a positive integer, otherwise from
    [Domain.recommended_domain_count ()]; command-line [--jobs]
    overrides both via {!set_default_jobs}. *)

type t
(** A pool of [jobs - 1] worker domains (the submitting domain is the
    remaining worker).  A pool may only have one parallel region in
    flight at a time; concurrent submitters queue. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Must not be
    called while a region is in flight. *)

val jobs : t -> int

(** {1 Default (shared) pool} *)

val default_jobs : unit -> int
(** Current default job count: the last {!set_default_jobs} value,
    else [RDCA_JOBS], else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the default job count ([--jobs]).  The shared pool is
    re-created lazily on the next parallel operation.
    @raise Invalid_argument if the argument is [< 1]. *)

val shared : unit -> t
(** The process-wide pool at {!default_jobs} (re-created when the
    default changes; shut down automatically at exit). *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs j f] runs [f] with the default job count set to [j],
    restoring the previous default afterwards (also on exceptions).
    Used by the differential tests and the bench harness to compare
    job counts within one process. *)

val quiesce : unit -> unit
(** Shut down (and join) the shared pool if it exists; it is lazily
    re-created by the next parallel operation.  Call before forking
    worker processes so the child is created from a single-domain
    parent. *)

val fork_reset : unit -> unit
(** To be called first thing in a forked child: abandons the parent's
    shared pool handle without joining (the parent's domains do not
    exist in the child) and pins the default job count to 1, so the
    child runs all parallel operations sequentially. *)

val fork_safe : unit -> bool
(** Whether [Unix.fork] is still available in this process.  OCaml 5
    forbids forking in any process that has {e ever} spawned a second
    domain — even one already joined — so this latches to [false] the
    first time a multi-job pool spins up (and resets in a forked
    child via {!fork_reset}). *)

(** {1 Chunked parallel operations}

    All operations take the work from index [0] to [n - 1], cut it
    into chunks of [chunk] consecutive indices and run the chunks on
    [pool] (default {!shared}).  When [chunk] is omitted, the chunk
    size is {e adaptive}: a short probe runs the first items
    sequentially under the wall clock, and the measured per-item cost
    decides the dispatch — regions whose estimated total work is under
    ~100µs finish sequentially without instantiating the pool or
    waking any domain (the tiny-batch fast path), while larger
    regions get chunks sized to roughly 200µs of work each, capped so
    every domain still sees several claims for load balancing.
    Probing runs real items in index order, so per-index results are
    unaffected.  Callers whose items are individually expensive
    (seconds-scale synthesis tasks) pass [~chunk:1] to keep per-item
    dynamic balancing and skip the probe; the chunk -> index mapping
    never affects results either way.  If a task raises, the first
    exception (in completion order) is re-raised in the caller after
    the region drains; remaining unclaimed chunks are cancelled. *)

val for_ : ?pool:t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [for_ n f] runs [f 0 .. f (n-1)].  [f] must only write state
    owned by its own index (e.g. disjoint array segments). *)

val init : ?pool:t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; result order matches input order. *)

val mapi : ?pool:t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.mapi]. *)

val map_list : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; result order matches input order. *)

(** {1 Scheduling statistics}

    Process-wide monotone counters (also published as [pool.*]
    through [Prof]) plus chunk-size gauges, read by the bench
    harness's schema-v4 output and by the tiny-batch unit tests. *)

type stats = {
  batches : int;  (** parallel batches published (domains woken) *)
  tiny_skips : int;
      (** default-chunk regions kept sequential by the cost probe (or
          by the [min_chunk] floor) *)
  sequential : int;  (** regions run sequentially for any reason *)
  probe_items : int;  (** items consumed by adaptive cost probes *)
  domains_spawned : int;  (** worker domains ever spawned *)
  pool_instantiated : bool;  (** the shared pool currently exists *)
  last_chunk : int;  (** chunk size of the last published batch; 0 if none *)
  min_chunk_seen : int;  (** smallest chunk ever published; 0 if none *)
  max_chunk_seen : int;  (** largest chunk ever published; 0 if none *)
}

val stats : unit -> stats
