module Spec = Spec

type pla_type = F | Fd | Fr | Fdr

type term = {
  input : Twolevel.Cube.t;
  output_chars : string;
  line : int;
  col : int;
  out_col : int;
}

type conflict = {
  c_output : int;
  c_minterm : int;
  c_first : Spec.phase;
  c_second : Spec.phase;
  c_line : int;
  c_col : int;
}

type t = {
  spec : Spec.t;
  input_names : string array;
  output_names : string array;
  ty : pla_type;
  terms : term list;
  conflicts : conflict list;
}

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let default_names ~ni ~no =
  ( Array.init ni (fun i -> Printf.sprintf "x%d" i),
    Array.init no (fun o -> Printf.sprintf "y%d" o) )

type line =
  | Directive of string * string list
  | Term of { ins : string; outs : string; col_in : int; col_out : int }
  | Blank

(* Tokens with their 1-based starting columns in the raw line (tabs
   count as one column, like most editors' default). *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    if line.[!i] = ' ' then incr i
    else begin
      let start = !i in
      while !i < n && line.[!i] <> ' ' do
        incr i
      done;
      toks := (String.sub line start (!i - start), start + 1) :: !toks
    end
  done;
  List.rev !toks

let classify_line raw =
  let line =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let line = String.map (function '\t' | '\r' -> ' ' | c -> c) line in
  if String.trim line = "" then Blank
  else if (String.trim line).[0] = '.' then
    match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
    | d :: args -> Directive (d, args)
    | [] -> Blank
  else
    match tokenize line with
    | [ (ins, col_in); (outs, col_out) ] -> Term { ins; outs; col_in; col_out }
    | [ (single, col_in) ] ->
        (* Single-output PLAs sometimes omit the space; split on width
           later — here treat as error since we can't know .i yet. *)
        Term { ins = single; outs = ""; col_in; col_out = 0 }
    | _ -> fail "malformed product term: %S" (String.trim line)

let pla_type_of_string = function
  | "f" -> F
  | "fd" -> Fd
  | "fr" -> Fr
  | "fdr" -> Fdr
  | s -> fail "unknown .type %S" s

(* A header directive that takes exactly one integer argument; a
   truncated or non-numeric form is a structured parse error, never an
   escaping [Failure]. *)
let int_directive d = function
  | [ v ] -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail "%s: not an integer: %S" d v)
  | [] -> fail "%s: missing argument" d
  | _ -> fail "%s: expected exactly one argument" d

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let ni = ref (-1) and no = ref (-1) in
  let ilb = ref None and ob = ref None in
  let ty = ref Fd in
  let terms = ref [] in
  let ended = ref false in
  List.iteri
    (fun i raw ->
      if not !ended then
        match classify_line raw with
        | Blank -> ()
        | Directive (".i", args) -> ni := int_directive ".i" args
        | Directive (".o", args) -> no := int_directive ".o" args
        | Directive (".p", _) -> () (* informational *)
        | Directive (".ilb", names) -> ilb := Some (Array.of_list names)
        | Directive (".ob", names) -> ob := Some (Array.of_list names)
        | Directive (".type", [ v ]) -> ty := pla_type_of_string v
        | Directive (".type", _) -> fail ".type: expected exactly one argument"
        | Directive ((".e" | ".end"), _) -> ended := true
        | Directive (d, _) -> fail "unsupported directive %S" d
        | Term { ins; outs; col_in; col_out } ->
            terms := (i + 1, col_in, col_out, ins, outs) :: !terms)
    lines;
  if !ni < 0 then fail "missing or negative .i";
  if !no < 0 then fail "missing or negative .o";
  let ni = !ni and no = !no in
  if no = 0 then fail ".o 0: at least one output required";
  if ni > 20 then fail ".i %d exceeds dense representation limit (20)" ni;
  let default = match !ty with Fr -> Spec.Dc | F | Fd | Fdr -> Spec.Off in
  let spec = Spec.create ~ni ~no ~default in
  (* Last explicit phase per (output, minterm): 0 = never explicitly
     driven, else 1 + phase code; bit 3 marks "conflict already
     recorded" so each pair reports at most once. *)
  let size = 1 lsl ni in
  let explicit = Bytes.make (no * size) '\000' in
  let phase_code = function Spec.On -> 1 | Spec.Off -> 2 | Spec.Dc -> 3 in
  let phase_of_code = function
    | 1 -> Spec.On
    | 2 -> Spec.Off
    | _ -> Spec.Dc
  in
  let conflicts = ref [] in
  let drive ~line ~col ~o ~m p =
    let idx = (o * size) + m in
    let prev = Char.code (Bytes.get explicit idx) in
    let prev_code = prev land 0x7 and reported = prev land 0x8 <> 0 in
    (if prev_code <> 0 && prev_code <> phase_code p && not reported then
       conflicts :=
         {
           c_output = o;
           c_minterm = m;
           c_first = phase_of_code prev_code;
           c_second = p;
           c_line = line;
           c_col = col;
         }
         :: !conflicts);
    let report_bit =
      if reported || (prev_code <> 0 && prev_code <> phase_code p) then 0x8
      else 0
    in
    Bytes.set explicit idx (Char.chr (phase_code p lor report_bit));
    Spec.set spec ~o ~m p
  in
  let parsed_terms = ref [] in
  let apply_term (line, col_in, col_out, ins, outs) =
    if String.length ins <> ni then fail "term %S: expected %d inputs" ins ni;
    if String.length outs <> no then
      fail "term %S %S: expected %d outputs" ins outs no;
    let cube =
      try Twolevel.Cube.of_string ins
      with Invalid_argument _ -> fail "term %S: bad input character" ins
    in
    Twolevel.Cube.iter_minterms ~n:ni
      (fun m ->
        String.iteri
          (fun o c ->
            (* Column of this output character in the source line. *)
            let col = if col_out > 0 then col_out + o else 0 in
            match (c, !ty) with
            | '1', _ | '4', _ -> drive ~line ~col ~o ~m Spec.On
            | ('-' | '~' | '2'), (Fd | Fdr) -> drive ~line ~col ~o ~m Spec.Dc
            | ('-' | '~' | '2'), (F | Fr) -> () (* no information *)
            | '0', (Fr | Fdr) -> drive ~line ~col ~o ~m Spec.Off
            | '0', (F | Fd) -> () (* no information *)
            | c, _ -> fail "bad output character %C" c)
          outs)
      cube;
    parsed_terms :=
      { input = cube; output_chars = outs; line; col = col_in; out_col = col_out }
      :: !parsed_terms
  in
  List.iter apply_term (List.rev !terms);
  let input_names, output_names =
    let di, dd = default_names ~ni ~no in
    ( (match !ilb with Some a when Array.length a = ni -> a | _ -> di),
      match !ob with Some a when Array.length a = no -> a | _ -> dd )
  in
  {
    spec;
    input_names;
    output_names;
    ty = !ty;
    terms = List.rev !parsed_terms;
    conflicts = List.rev !conflicts;
  }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

(* ------------------------------------------------------------------ *)
(* Cover-level parsing: the scalable loader.  Product terms are kept
   as cubes instead of being expanded into a dense table, so the only
   arity limit is the cube representation's n <= 61.  Phase precedence
   on overlapping cubes is espresso's set view (on wins over dc, off
   is the complement) rather than the dense parser's textual
   last-write-wins — callers needing exact line-order resolution stay
   on [parse_string]. *)

type cover_sets =
  | Fd_sets of { on : Twolevel.Cover.t; dc : Twolevel.Cover.t }
  | Fr_sets of { on : Twolevel.Cover.t; off : Twolevel.Cover.t }

type cover_file = {
  cf_ni : int;
  cf_outputs : cover_sets list;
  cf_input_names : string array;
  cf_output_names : string array;
  cf_ty : pla_type;
}

let cover_max_inputs = 61 (* Twolevel.Cube's mask width *)

let parse_string_covers text =
  let lines = String.split_on_char '\n' text in
  let ni = ref (-1) and no = ref (-1) in
  let ilb = ref None and ob = ref None in
  let ty = ref Fd in
  let terms = ref [] in
  let ended = ref false in
  List.iteri
    (fun i raw ->
      if not !ended then
        match classify_line raw with
        | Blank -> ()
        | Directive (".i", args) -> ni := int_directive ".i" args
        | Directive (".o", args) -> no := int_directive ".o" args
        | Directive (".p", _) -> ()
        | Directive (".ilb", names) -> ilb := Some (Array.of_list names)
        | Directive (".ob", names) -> ob := Some (Array.of_list names)
        | Directive (".type", [ v ]) -> ty := pla_type_of_string v
        | Directive (".type", _) -> fail ".type: expected exactly one argument"
        | Directive ((".e" | ".end"), _) -> ended := true
        | Directive (d, _) -> fail "unsupported directive %S" d
        | Term { ins; outs; col_in = _; col_out = _ } ->
            terms := (i + 1, ins, outs) :: !terms)
    lines;
  if !ni < 0 then fail "missing or negative .i";
  if !no < 0 then fail "missing or negative .o";
  let ni = !ni and no = !no in
  if no = 0 then fail ".o 0: at least one output required";
  if ni > cover_max_inputs then
    fail ".i %d exceeds cube representation limit (%d)" ni cover_max_inputs;
  let ty = !ty in
  (* Per output: cube lists for the phases the type makes explicit. *)
  let on_cubes = Array.make no [] and aux_cubes = Array.make no [] in
  let apply_term (line, ins, outs) =
    ignore line;
    if String.length ins <> ni then fail "term %S: expected %d inputs" ins ni;
    if String.length outs <> no then
      fail "term %S %S: expected %d outputs" ins outs no;
    let cube =
      try Twolevel.Cube.of_string ins
      with Invalid_argument _ -> fail "term %S: bad input character" ins
    in
    String.iteri
      (fun o c ->
        match (c, ty) with
        | '1', _ | '4', _ -> on_cubes.(o) <- cube :: on_cubes.(o)
        | ('-' | '~' | '2'), (Fd | Fdr) -> aux_cubes.(o) <- cube :: aux_cubes.(o)
        | ('-' | '~' | '2'), (F | Fr) -> ()
        | '0', Fr -> aux_cubes.(o) <- cube :: aux_cubes.(o)
        | '0', Fdr -> () (* off is the default phase anyway *)
        | '0', (F | Fd) -> ()
        | c, _ -> fail "bad output character %C" c)
      outs
  in
  List.iter apply_term (List.rev !terms);
  let cover cubes = Twolevel.Cover.make ~n:ni (List.rev cubes) in
  let outputs =
    List.init no (fun o ->
        let on = cover on_cubes.(o) and aux = cover aux_cubes.(o) in
        match ty with
        | F | Fd | Fdr -> Fd_sets { on; dc = aux }
        | Fr -> Fr_sets { on; off = aux })
  in
  let input_names, output_names =
    let di, dd = default_names ~ni ~no in
    ( (match !ilb with Some a when Array.length a = ni -> a | _ -> di),
      match !ob with Some a when Array.length a = no -> a | _ -> dd )
  in
  {
    cf_ni = ni;
    cf_outputs = outputs;
    cf_input_names = input_names;
    cf_output_names = output_names;
    cf_ty = ty;
  }

let parse_file_covers path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string_covers text

let parse_string_covers_res text =
  match parse_string_covers text with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let parse_file_covers_res path =
  match parse_file_covers path with
  | t -> Ok t
  | exception Parse_error msg -> Error msg
  | exception Sys_error msg -> Error msg

let parse_string_res text =
  match parse_string text with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let parse_file_res path =
  match parse_file path with
  | t -> Ok t
  | exception Parse_error msg -> Error msg
  | exception Sys_error msg -> Error msg

let type_to_string = function F -> "f" | Fd -> "fd" | Fr -> "fr" | Fdr -> "fdr"

let to_string ?(ty = Fdr) spec =
  let ni = Spec.ni spec and no = Spec.no spec in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf ".i %d\n.o %d\n.type %s\n" ni no (type_to_string ty);
  (* One line per minterm that carries information for some output. *)
  let nterms = ref 0 in
  let body = Buffer.create 1024 in
  for m = 0 to (1 lsl ni) - 1 do
    let outs =
      String.init no (fun o ->
          match (Spec.get spec ~o ~m, ty) with
          | Spec.On, _ -> '1'
          | Spec.Dc, (Fd | Fdr | Fr) -> '-'
          | Spec.Dc, F -> invalid_arg "Pla.to_string: type f cannot hold DCs"
          | Spec.Off, _ -> '0')
    in
    (* Characters that merely restate the type's default carry no
       information and a line of only those is omitted. *)
    let informative =
      String.exists
        (fun c ->
          match (c, ty) with
          | '1', _ -> true
          | '-', (Fd | Fdr) -> true (* default is off *)
          | '-', (F | Fr) -> false
          | '0', (Fr | Fdr) -> true
          | '0', (F | Fd) -> false
          | _, _ -> false)
        outs
    in
    if informative then begin
      incr nterms;
      Printf.bprintf body "%s %s\n" (Bitvec.Minterm.to_string ~n:ni m) outs
    end
  done;
  Printf.bprintf buf ".p %d\n" !nterms;
  Buffer.add_buffer buf body;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let write_file path spec =
  let oc = open_out path in
  output_string oc (to_string spec);
  close_out oc

let to_string_covers ~ni covers =
  if covers = [] then invalid_arg "Pla.to_string_covers: no outputs";
  let no = List.length covers in
  List.iteri
    (fun o (on, dc) ->
      if Twolevel.Cover.n on <> ni || Twolevel.Cover.n dc <> ni then
        invalid_arg
          (Printf.sprintf "Pla.to_string_covers: output %d arity mismatch" o))
    covers;
  let buf = Buffer.create 1024 in
  (* collect (input cube, output chars) lines: one line per cube, with
     '1'/'-' in this output's column and '0' (no info under fd)
     elsewhere *)
  let lines = ref [] in
  List.iteri
    (fun o (on, dc) ->
      let emit ch cube =
        let outs = String.init no (fun i -> if i = o then ch else '0') in
        lines := (Twolevel.Cube.to_string ~n:ni cube, outs) :: !lines
      in
      List.iter (emit '1') (Twolevel.Cover.cubes on);
      List.iter (emit '-') (Twolevel.Cover.cubes dc))
    covers;
  let lines = List.rev !lines in
  Printf.bprintf buf ".i %d\n.o %d\n.type fd\n.p %d\n" ni no
    (List.length lines);
  List.iter (fun (ins, outs) -> Printf.bprintf buf "%s %s\n" ins outs) lines;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let to_string_minimized spec =
  let ni = Spec.ni spec in
  to_string_covers ~ni
    (List.init (Spec.no spec) (fun o -> (Spec.on_cover spec ~o, Spec.dc_cover spec ~o)))
