(** Berkeley .pla format reading and writing.

    Supports the espresso dialect the MCNC benchmarks use: [.i], [.o],
    [.p], [.ilb], [.ob], [.type fd|fr|fdr|f], product-term lines with
    input characters [0 1 - 2] and output characters [0 1 - ~ 2 4], and
    [.e]/[.end].  Semantics follow espresso:

    - type [fd] (default): output '1' adds to the on-set, '-' to the
      DC-set, '0' means "no information" (off by default);
    - type [fr]: '1' on-set, '0' off-set, '-' no information;
    - type [fdr]: '1' on, '0' off, '-' DC — fully explicit;
    - type [f]: '1' on, everything else off.

    Anything not mentioned by any product term defaults to the off-set
    ([fd], [f]), to the DC-set ([fr] — unspecified minterms are free),
    or is an error to leave unmentioned for [fdr] (we default to off). *)

module Spec = Spec

type pla_type = F | Fd | Fr | Fdr

(** A raw product term as it appeared in the source text: the input
    cube, the verbatim output-character column and the 1-based source
    position — the unit the {!Check} spec linter reasons about (the
    dense {!Spec.t} has already resolved every term, so duplicate or
    contradictory lines are invisible there).  [col] is the 1-based
    column of the input cube, [out_col] of the output field (0 when the
    term had no separate output token). *)
type term = {
  input : Twolevel.Cube.t;
  output_chars : string;
  line : int;
  col : int;
  out_col : int;
}

(** A minterm that two product terms drive to contradictory phases.
    [first] is the phase already recorded, [second] the later one; the
    parser keeps espresso's last-write-wins resolution and records the
    contradiction here (at most one per (output, minterm) pair). *)
type conflict = {
  c_output : int;
  c_minterm : int;
  c_first : Spec.phase;
  c_second : Spec.phase;
  c_line : int;  (** source line of the second, conflicting term *)
  c_col : int;
      (** 1-based column of the conflicting output character on that
          line (0 when unknown) *)
}

type t = {
  spec : Spec.t;
  input_names : string array;
  output_names : string array;
  ty : pla_type;
  terms : term list;  (** raw product terms in source order *)
  conflicts : conflict list;  (** contradictory explicit phases, source order *)
}

exception Parse_error of string

(** [parse_string s] parses .pla text. @raise Parse_error on bad input. *)
val parse_string : string -> t

(** [parse_file path] reads and parses a file.
    @raise Parse_error on bad input, [Sys_error] on I/O failure. *)
val parse_file : string -> t

(** Exception-free variants: [Error msg] instead of {!Parse_error} /
    [Sys_error].  The entry points hardened flows should use. *)
val parse_string_res : string -> (t, string) result

val parse_file_res : string -> (t, string) result

(** {1 Cover-level parsing — the scalable loader}

    Product terms kept as cubes, never expanded into a dense table, so
    files up to the cube representation's [n <= 61] load in memory
    proportional to their text.  Phase precedence on overlapping cubes
    follows espresso's set view (the on-set wins overlaps, the type's
    default phase is the complement) instead of the dense parser's
    textual last-write-wins. *)

(** One output's explicit phase covers; the third phase is the
    complement of their union. *)
type cover_sets =
  | Fd_sets of { on : Twolevel.Cover.t; dc : Twolevel.Cover.t }
      (** types [f]/[fd]/[fdr]: off is everything else ([f] has an
          empty DC cover; [fdr]'s explicit off cubes are dropped as
          restating the default) *)
  | Fr_sets of { on : Twolevel.Cover.t; off : Twolevel.Cover.t }
      (** type [fr]: DC is everything else *)

type cover_file = {
  cf_ni : int;
  cf_outputs : cover_sets list;
  cf_input_names : string array;
  cf_output_names : string array;
  cf_ty : pla_type;
}

(** [parse_string_covers s] parses .pla text at the cube level.
    @raise Parse_error on bad input or [.i > 61]. *)
val parse_string_covers : string -> cover_file

(** [parse_file_covers path] reads and parses a file at the cube
    level.  @raise Parse_error on bad input, [Sys_error] on I/O. *)
val parse_file_covers : string -> cover_file

val parse_string_covers_res : string -> (cover_file, string) result

val parse_file_covers_res : string -> (cover_file, string) result

(** [to_string ?ty t] renders a spec; by default type [fdr], writing
    one product line per care/DC minterm group using per-output covers
    compressed with single-cube containment only (exact, not
    minimised). *)
val to_string : ?ty:pla_type -> Spec.t -> string

(** [write_file path spec] writes [to_string spec] to [path]. *)
val write_file : string -> Spec.t -> unit

(** [default_names ~ni ~no] are names [x0..] / [y0..]. *)
val default_names : ni:int -> no:int -> string array * string array

(** [to_string_covers ~ni covers] renders per-output (on, dc) cover
    pairs as a compact cube-level [.type fd] PLA — the natural format
    after minimisation (one line per cube instead of one per minterm).
    @raise Invalid_argument on arity mismatch or empty list. *)
val to_string_covers :
  ni:int -> (Twolevel.Cover.t * Twolevel.Cover.t) list -> string

(** [to_string_minimized spec] is {!to_string_covers} applied to the
    spec's raw per-output minterm covers — a convenience when no
    minimised covers are at hand (minimisation itself lives in
    {!Espresso}). *)
val to_string_minimized : Spec.t -> string
