module Bv = Bitvec.Bv

type phase = On | Off | Dc

type planes = { p_on : Bv.t; p_off : Bv.t; p_dc : Bv.t }

type t = {
  ni : int;
  no : int;
  tables : Bytes.t array;
  cache : planes option Atomic.t array;
      (** packed phase planes, per output, published by CAS *)
}

let c_plane_builds = Prof.counter "spec.plane_builds"
let c_cas_losses = Prof.counter "spec.plane_cas_losses"
let c_warm = Prof.counter "spec.warm_calls"
let sp_build = Prof.span "spec.plane_build"

let phase_to_char = function Off -> '\000' | On -> '\001' | Dc -> '\002'

let phase_of_char = function
  | '\000' -> Off
  | '\001' -> On
  | '\002' -> Dc
  | _ -> assert false

let create ~ni ~no ~default =
  if ni < 0 || ni > 20 || no <= 0 then invalid_arg "Spec.create";
  let len = 1 lsl ni in
  let tables =
    Array.init no (fun _ -> Bytes.make len (phase_to_char default))
  in
  { ni; no; tables; cache = Array.init no (fun _ -> Atomic.make None) }

let ni t = t.ni
let no t = t.no
let size t = 1 lsl t.ni

let check t ~o ~m =
  if o < 0 || o >= t.no then invalid_arg "Spec: output out of range";
  if m < 0 || m >= size t then invalid_arg "Spec: minterm out of range"

let get t ~o ~m =
  check t ~o ~m;
  phase_of_char (Bytes.get t.tables.(o) m)

let set t ~o ~m p =
  check t ~o ~m;
  Bytes.set t.tables.(o) m (phase_to_char p);
  Atomic.set t.cache.(o) None

let assign_dc t ~o ~m v =
  if get t ~o ~m <> Dc then invalid_arg "Spec.assign_dc: minterm is not DC";
  set t ~o ~m (if v then On else Off)

let copy t =
  {
    ni = t.ni;
    no = t.no;
    tables = Array.map Bytes.copy t.tables;
    cache = Array.init t.no (fun _ -> Atomic.make None);
  }

let equal a b =
  a.ni = b.ni && a.no = b.no && Array.for_all2 Bytes.equal a.tables b.tables

(* Packed phase planes.  Built lazily from the byte table, one pass
   per output, and invalidated by [set].  Publication is lock-free:
   concurrent readers (the parallel evaluation layer maps over outputs
   of a shared spec) each compute the planes outside any lock and race
   to install theirs with a single compare-and-set — the planes are
   immutable once published, so losers simply adopt the winner's copy
   and drop their own.  Mutation during a parallel region is already
   outside the contract. *)
let build_planes t ~o =
  let len = size t in
  let p_on = Bv.create len
  and p_off = Bv.create len
  and p_dc = Bv.create len in
  let table = t.tables.(o) in
  for m = 0 to len - 1 do
    match Bytes.unsafe_get table m with
    | '\001' -> Bv.unsafe_set p_on m
    | '\000' -> Bv.unsafe_set p_off m
    | _ -> Bv.unsafe_set p_dc m
  done;
  { p_on; p_off; p_dc }

let planes t ~o =
  if o < 0 || o >= t.no then invalid_arg "Spec: output out of range";
  let slot = t.cache.(o) in
  match Atomic.get slot with
  | Some p -> p
  | None -> (
      let p = Prof.time sp_build (fun () -> build_planes t ~o) in
      Prof.incr c_plane_builds;
      if Atomic.compare_and_set slot None (Some p) then p
      else begin
        Prof.incr c_cas_losses;
        (* A concurrent reader published first; adopt its (identical)
           copy.  If a mutation slipped in and re-invalidated the slot,
           our freshly built copy is the best answer available. *)
        match Atomic.get slot with Some q -> q | None -> p
      end)

let warm_cache t =
  Prof.incr c_warm;
  for o = 0 to t.no - 1 do
    ignore (planes t ~o)
  done

let phase_planes t ~o =
  let p = planes t ~o in
  (p.p_on, p.p_off, p.p_dc)

let count_phase_scalar t ~o p =
  let c = phase_to_char p in
  let table = t.tables.(o) in
  let acc = ref 0 in
  Bytes.iter (fun ch -> if ch = c then incr acc) table;
  !acc

let count_phase t ~o p =
  if o < 0 || o >= t.no then invalid_arg "Spec: output out of range";
  if Bv.Kernel.use () then
    let pl = planes t ~o in
    Bv.cardinal
      (match p with On -> pl.p_on | Off -> pl.p_off | Dc -> pl.p_dc)
  else count_phase_scalar t ~o p

let on_count t ~o = count_phase t ~o On
let off_count t ~o = count_phase t ~o Off
let dc_count t ~o = count_phase t ~o Dc

let signal_probs t ~o =
  let total = float_of_int (size t) in
  ( float_of_int (on_count t ~o) /. total,
    float_of_int (off_count t ~o) /. total,
    float_of_int (dc_count t ~o) /. total )

let dc_fraction t =
  let dcs = ref 0 in
  for o = 0 to t.no - 1 do
    dcs := !dcs + dc_count t ~o
  done;
  float_of_int !dcs /. float_of_int (size t * t.no)

let is_fully_specified t =
  let dc = phase_to_char Dc in
  Array.for_all
    (fun table ->
      let ok = ref true in
      Bytes.iter (fun c -> if c = dc then ok := false) table;
      !ok)
    t.tables

let iter_dc t ~o f =
  let dc = phase_to_char Dc in
  Bytes.iteri (fun m c -> if c = dc then f m) t.tables.(o)

let phase_bv t ~o p =
  if Bv.Kernel.use () then
    let pl = planes t ~o in
    Bv.copy (match p with On -> pl.p_on | Off -> pl.p_off | Dc -> pl.p_dc)
  else begin
    let c = phase_to_char p in
    let bv = Bv.create (size t) in
    Bytes.iteri (fun m ch -> if ch = c then Bv.set bv m) t.tables.(o);
    bv
  end

let on_bv t ~o = phase_bv t ~o On
let off_bv t ~o = phase_bv t ~o Off
let dc_bv t ~o = phase_bv t ~o Dc

let phase_cover t ~o p =
  let c = phase_to_char p in
  let cubes = ref [] in
  Bytes.iteri
    (fun m ch ->
      if ch = c then cubes := Twolevel.Cube.of_minterm ~n:t.ni m :: !cubes)
    t.tables.(o);
  Twolevel.Cover.make ~n:t.ni (List.rev !cubes)

let on_cover t ~o = phase_cover t ~o On
let dc_cover t ~o = phase_cover t ~o Dc

let of_covers ~ni covers =
  if covers = [] then invalid_arg "Spec.of_covers: no outputs";
  let no = List.length covers in
  let t = create ~ni ~no ~default:Off in
  List.iteri
    (fun o (on, dc) ->
      if Twolevel.Cover.n on <> ni || Twolevel.Cover.n dc <> ni then
        invalid_arg "Spec.of_covers: arity mismatch";
      List.iter
        (Twolevel.Cube.iter_minterms ~n:ni (fun m -> set t ~o ~m Dc))
        (Twolevel.Cover.cubes dc);
      List.iter
        (Twolevel.Cube.iter_minterms ~n:ni (fun m -> set t ~o ~m On))
        (Twolevel.Cover.cubes on))
    covers;
  t

let neighbour_counts t ~o ~m =
  check t ~o ~m;
  let table = t.tables.(o) in
  let on = ref 0 and off = ref 0 and dc = ref 0 in
  for j = 0 to t.ni - 1 do
    match phase_of_char (Bytes.get table (m lxor (1 lsl j))) with
    | On -> incr on
    | Off -> incr off
    | Dc -> incr dc
  done;
  (!on, !off, !dc)

(* Per-minterm neighbour counts for the whole 2^n space at once.
   Kernel engine: n bit-sliced additions of permuted phase planes —
   O(n log n) vector passes instead of O(n 2^n) byte probes.  DC
   counts follow from on + off + dc = n. *)
let neighbour_counts_batch t ~o =
  if o < 0 || o >= t.no then invalid_arg "Spec: output out of range";
  let len = size t in
  if Bv.Kernel.use () && t.ni > 0 then begin
    let module K = Bv.Kernel in
    let pl = planes t ~o in
    let bits = 5 (* counts <= ni <= 20 < 32 *) in
    let on_c = K.counter_create ~len ~bits
    and off_c = K.counter_create ~len ~bits in
    ignore
      (K.neighbour_sweep ~nj:t.ni
         [|
           {
             K.sw_src = pl.p_on;
             sw_diff = false;
             sw_counter = Some on_c;
             sw_cross = None;
           };
           {
             K.sw_src = pl.p_off;
             sw_diff = false;
             sw_counter = Some off_c;
             sw_cross = None;
           };
         |]);
    let on = K.counter_extract on_c and off = K.counter_extract off_c in
    let dc = Array.init len (fun m -> t.ni - on.(m) - off.(m)) in
    (on, off, dc)
  end
  else begin
    let on = Array.make len 0
    and off = Array.make len 0
    and dc = Array.make len 0 in
    for m = 0 to len - 1 do
      let o_, f_, d_ = neighbour_counts t ~o ~m in
      on.(m) <- o_;
      off.(m) <- f_;
      dc.(m) <- d_
    done;
    (on, off, dc)
  end

let on_neighbours t ~o ~m =
  let on, _, _ = neighbour_counts t ~o ~m in
  on

let off_neighbours t ~o ~m =
  let _, off, _ = neighbour_counts t ~o ~m in
  off

let dc_neighbours t ~o ~m =
  let _, _, dc = neighbour_counts t ~o ~m in
  dc

let output_value t ~o ~m =
  match get t ~o ~m with
  | On -> true
  | Off -> false
  | Dc -> invalid_arg "Spec.output_value: unassigned DC"

let pp ppf t =
  Format.fprintf ppf "@[<v>spec: %d inputs, %d outputs@," t.ni t.no;
  for o = 0 to t.no - 1 do
    Format.fprintf ppf "  y%d: |on|=%d |off|=%d |dc|=%d@," o (on_count t ~o)
      (off_count t ~o) (dc_count t ~o)
  done;
  Format.fprintf ppf "@]"
