(** Incompletely specified multi-output Boolean functions.

    A [Spec.t] maps every (output, minterm) pair to a phase — [On],
    [Off] or [Dc] — exactly the on-set / off-set / DC-set partition the
    paper's algorithms manipulate.  The representation is dense (one
    byte per minterm per output), which is exact and fast for the
    paper's benchmark sizes (n <= 12; supported up to n = 20).

    Mutation is explicit: {!set} and {!assign_dc} modify in place; use
    {!copy} to preserve an original. *)

type phase = On | Off | Dc

type t

(** [create ~ni ~no ~default] is a spec with [ni] inputs and [no]
    outputs, every minterm in phase [default].
    @raise Invalid_argument if [ni < 0 || ni > 20 || no <= 0]. *)
val create : ni:int -> no:int -> default:phase -> t

(** [ni t] and [no t] are the input/output counts. *)
val ni : t -> int

val no : t -> int

(** [size t] is [2^ni], the number of minterms per output. *)
val size : t -> int

(** [get t ~o ~m] is the phase of minterm [m] for output [o]. *)
val get : t -> o:int -> m:int -> phase

(** [set t ~o ~m p] updates the phase in place. *)
val set : t -> o:int -> m:int -> phase -> unit

(** [assign_dc t ~o ~m v] turns a DC minterm into [On] (if [v]) or
    [Off].  @raise Invalid_argument if the minterm is not DC. *)
val assign_dc : t -> o:int -> m:int -> bool -> unit

(** [copy t] is an independent copy. *)
val copy : t -> t

(** [equal a b] is structural equality of dimensions and phases. *)
val equal : t -> t -> bool

(** Phase counts for output [o].  With the kernel engine enabled these
    are popcounts of the cached phase planes; the scalar engine scans
    the byte table (the original behaviour, kept as oracle). *)

val count_phase : t -> o:int -> phase -> int

val on_count : t -> o:int -> int

val off_count : t -> o:int -> int

val dc_count : t -> o:int -> int

(** Signal probabilities [f1], [f0], [fdc] for output [o] (fractions of
    the [2^ni] minterm space; they sum to 1). *)
val signal_probs : t -> o:int -> float * float * float

(** [dc_fraction t] is the fraction of (output, minterm) pairs in the
    DC phase — the "%DC" column of the paper's Table 1. *)
val dc_fraction : t -> float

(** [is_fully_specified t] is [true] when no DC phase remains. *)
val is_fully_specified : t -> bool

(** [iter_dc t ~o f] applies [f] to every DC minterm of output [o]. *)
val iter_dc : t -> o:int -> (int -> unit) -> unit

(** Per-output set extraction.  Each call returns a fresh vector the
    caller may mutate freely. *)

val on_bv : t -> o:int -> Bitvec.Bv.t

val off_bv : t -> o:int -> Bitvec.Bv.t

val dc_bv : t -> o:int -> Bitvec.Bv.t

(** [phase_planes t ~o] is the cached packed [(on, off, dc)] planes of
    output [o], built on first use and invalidated by {!set} /
    {!assign_dc}.  The vectors are {e borrowed}: treat them as
    read-only — they are shared with every other caller and with the
    word-parallel kernels. *)
val phase_planes : t -> o:int -> Bitvec.Bv.t * Bitvec.Bv.t * Bitvec.Bv.t

(** [warm_cache t] builds the phase planes of every output up front,
    so a subsequent parallel region fans out against a read-only
    cache instead of racing on first-use rebuilds.  Plane publication
    is lock-free either way (compute outside any lock, compare-and-set
    to install); warming just moves the builds before the fan-out. *)
val warm_cache : t -> unit

(** [on_cover t ~o] ([dc_cover t ~o]) is the minterm-level cover of the
    on-set (DC-set) of output [o]; a starting point for minimisation. *)
val on_cover : t -> o:int -> Twolevel.Cover.t

val dc_cover : t -> o:int -> Twolevel.Cover.t

(** [of_covers ~ni covers] builds a spec from per-output (on, dc) cover
    pairs; everything not covered is [Off].  Overlaps resolve in favour
    of [On] (on-set wins over DC, matching espresso's fd semantics).
    @raise Invalid_argument on arity mismatch or empty list. *)
val of_covers : ni:int -> (Twolevel.Cover.t * Twolevel.Cover.t) list -> t

(** Neighbour phase counts of minterm [m] for output [o]: the number of
    1-Hamming-distance neighbours in the on-set / off-set / DC-set.
    These are the paper's core quantities. *)

val on_neighbours : t -> o:int -> m:int -> int

val off_neighbours : t -> o:int -> m:int -> int

val dc_neighbours : t -> o:int -> m:int -> int

(** [neighbour_counts t ~o ~m] is [(on, off, dc)] in one pass. *)
val neighbour_counts : t -> o:int -> m:int -> int * int * int

(** [neighbour_counts_batch t ~o] is the per-minterm [(on, off, dc)]
    neighbour counts for the whole [2^ni] space at once — bit-sliced
    word-parallel counting under the kernel engine, a scalar
    {!neighbour_counts} sweep otherwise (the oracle). *)
val neighbour_counts_batch : t -> o:int -> int array * int array * int array

(** [output_value t ~o ~m] is the implementation value of a *fully
    specified* output: [On] -> true, [Off] -> false.
    @raise Invalid_argument if the phase is [Dc]. *)
val output_value : t -> o:int -> m:int -> bool

(** [pp] prints a compact per-output phase summary. *)
val pp : Format.formatter -> t -> unit
