type span = {
  s_name : string;
  ns : int Atomic.t;  (* accumulated nanoseconds *)
  calls : int Atomic.t;
}

type counter = { c_name : string; v : int Atomic.t }

let env_enabled () =
  match Sys.getenv_opt "RDCA_PROF" with
  | Some ("1" | "true" | "on" | "TRUE" | "ON") -> true
  | _ -> false

let enabled_flag = Atomic.make (env_enabled ())
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let now () = Unix.gettimeofday ()

(* Registration is rare (one mutex hit per distinct name); accumulation
   is lock-free. *)
let registry_lock = Mutex.create ()
let spans : (string, span) Hashtbl.t = Hashtbl.create 32
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let span name =
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt spans name with
    | Some s -> s
    | None ->
        let s = { s_name = name; ns = Atomic.make 0; calls = Atomic.make 0 } in
        Hashtbl.add spans name s;
        s
  in
  Mutex.unlock registry_lock;
  s

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; v = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock registry_lock;
  c

let charge s dt =
  let dns = int_of_float (dt *. 1e9) in
  ignore (Atomic.fetch_and_add s.ns (max 0 dns));
  ignore (Atomic.fetch_and_add s.calls 1)

let add_elapsed s dt = if Atomic.get enabled_flag then charge s dt

let time s f =
  if not (Atomic.get enabled_flag) then f ()
  else
    let t0 = now () in
    match f () with
    | v ->
        charge s (now () -. t0);
        v
    | exception e ->
        charge s (now () -. t0);
        raise e

let incr c = ignore (Atomic.fetch_and_add c.v 1)
let add c n = ignore (Atomic.fetch_and_add c.v n)
let value c = Atomic.get c.v

type snapshot = {
  spans : (string * float * int) list;
  counters : (string * int) list;
}

let snapshot () =
  Mutex.lock registry_lock;
  let ss =
    Hashtbl.fold
      (fun name s acc ->
        (name, float_of_int (Atomic.get s.ns) *. 1e-9, Atomic.get s.calls)
        :: acc)
      spans []
  and cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.v) :: acc) counters []
  in
  Mutex.unlock registry_lock;
  {
    spans = List.sort (fun (a, _, _) (b, _, _) -> compare a b) ss;
    counters = List.sort compare cs;
  }

let diff ~before ~after =
  let span_before =
    List.fold_left
      (fun m (n, s, c) -> (n, (s, c)) :: m)
      [] before.spans
  and ctr_before = before.counters in
  let spans =
    List.filter_map
      (fun (n, s, c) ->
        let s0, c0 =
          match List.assoc_opt n span_before with
          | Some (s0, c0) -> (s0, c0)
          | None -> (0., 0)
        in
        let ds = s -. s0 and dc = c - c0 in
        if dc = 0 && ds < 1e-12 then None else Some (n, ds, dc))
      after.spans
  and counters =
    List.filter_map
      (fun (n, v) ->
        let v0 = Option.value ~default:0 (List.assoc_opt n ctr_before) in
        if v - v0 = 0 then None else Some (n, v - v0))
      after.counters
  in
  { spans; counters }

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.ns 0;
      Atomic.set s.calls 0)
    spans;
  Hashtbl.iter (fun _ c -> Atomic.set c.v 0) counters;
  Mutex.unlock registry_lock

(* Silence unused-field warnings: names are carried for debuggability. *)
let _ = fun (s : span) -> s.s_name
let _ = fun (c : counter) -> c.c_name
