(** Near-zero-overhead profiling primitives shared by every layer.

    Two kinds of instruments live here:

    - {b spans} — named wall-clock accumulators wrapped around a region
      of code.  Timing is gated: unless profiling has been switched on
      (via {!set_enabled} or the [RDCA_PROF] environment variable) a
      span costs one atomic load and a branch.  When enabled, each
      {!time} call adds the elapsed wall time (monotonic enough for
      aggregation: [Unix.gettimeofday]) and a call count to the span's
      atomic accumulators, so spans are safe to hit concurrently from
      any number of domains.
    - {b counters} — always-on monotone event counters ({!incr}/{!add}
      only), again plain atomics, cheap enough to leave enabled in
      production paths (the pool increments one per {e batch}, not per
      item).

    Both are registered globally by name; {!span}/{!counter} are
    idempotent, returning the existing instrument when the name is
    already taken.  {!snapshot} captures all accumulators at once and
    {!diff} subtracts two snapshots, which is how the bench harness
    attributes a section's wall time to named spans (schema v4). *)

type span
type counter

val set_enabled : bool -> unit
(** Switch span timing on or off at runtime.  The initial state comes
    from the [RDCA_PROF] environment variable ([1]/[true]/[on]). *)

val enabled : unit -> bool

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); exported so callers that
    need ad-hoc timing agree with the span clock. *)

val span : string -> span
(** Register (or look up) a span by name.  Thread-safe. *)

val time : span -> (unit -> 'a) -> 'a
(** [time s f] runs [f ()], accumulating elapsed wall time and one call
    into [s] when profiling is enabled.  Exceptions are re-raised after
    the span is charged. *)

val add_elapsed : span -> float -> unit
(** Charge an externally measured duration (seconds) to a span, when
    the region cannot be expressed as a closure. *)

val counter : string -> counter
(** Register (or look up) a counter by name.  Thread-safe. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type snapshot = {
  spans : (string * float * int) list;
      (** (name, accumulated seconds, call count), name-sorted. *)
  counters : (string * int) list;  (** (name, value), name-sorted. *)
}

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Pointwise [after - before]; instruments registered after [before]
    was taken appear with their full [after] value.  Entries that are
    zero in the result are dropped. *)

val reset : unit -> unit
(** Zero every registered instrument (the registry itself is kept). *)
