module Spec = Pla.Spec
module Bv = Bitvec.Bv

type backend = Exhaustive | Bdd_exact | Sampled | Auto

let backend_name = function
  | Exhaustive -> "exhaustive"
  | Bdd_exact -> "bdd"
  | Sampled -> "sample"
  | Auto -> "auto"

let backend_of_string s =
  match String.lowercase_ascii s with
  | "exhaustive" | "dense" | "table" -> Ok Exhaustive
  | "bdd" | "symbolic" | "exact" -> Ok Bdd_exact
  | "sample" | "sampled" | "mc" | "montecarlo" -> Ok Sampled
  | "auto" -> Ok Auto
  | _ ->
      Error
        (Printf.sprintf
           "unknown analysis backend %S (expected exhaustive|bdd|sample|auto)"
           s)

type params = {
  samples : int;
  seed : int;
  confidence : float;
  exhaustive_max : int;
  bdd_max : int;
}

let default_params =
  { samples = 100_000; seed = 42; confidence = 0.95; exhaustive_max = 14;
    bdd_max = 40 }

type value = Exact of float | Interval of { est : float; lo : float; hi : float }

let value_est = function Exact x -> x | Interval { est; _ } -> est
let value_lo = function Exact x -> x | Interval { lo; _ } -> lo
let value_hi = function Exact x -> x | Interval { hi; _ } -> hi

let pp_value ppf = function
  | Exact x -> Format.fprintf ppf "%.9g" x
  | Interval { est; lo; hi } ->
      Format.fprintf ppf "%.9g [%.9g, %.9g]" est lo hi

type t = {
  ni : int;
  no : int;
  dense : Spec.t option;
  sym : (Bdd.man * Sym.sets array) Lazy.t;
  (* Per-output symbolic memos; filled from sequential entry points
     only (the parallel regions below never touch them). *)
  stats_memo : Sym.stats option array;
  minmax_memo : (float * float) option array;
}

let ni t = t.ni
let no t = t.no
let dense_spec t = t.dense

let of_spec spec =
  let ni = Spec.ni spec and no = Spec.no spec in
  {
    ni;
    no;
    dense = Some spec;
    sym =
      lazy
        (let man = Bdd.make_man ~nvars:ni in
         (man, Array.init no (fun o -> Sym.of_spec man spec ~o)));
    stats_memo = Array.make no None;
    minmax_memo = Array.make no None;
  }

let of_cover_sets ~ni outputs =
  if outputs = [] then invalid_arg "Analysis.of_cover_sets: no outputs";
  let arity c = Twolevel.Cover.n c in
  List.iteri
    (fun o cs ->
      let ok =
        match cs with
        | Pla.Fd_sets { on; dc } -> arity on = ni && arity dc = ni
        | Pla.Fr_sets { on; off } -> arity on = ni && arity off = ni
      in
      if not ok then
        invalid_arg
          (Printf.sprintf "Analysis.of_cover_sets: output %d arity mismatch" o))
    outputs;
  let arr = Array.of_list outputs in
  {
    ni;
    no = Array.length arr;
    dense = None;
    sym =
      lazy
        (let man = Bdd.make_man ~nvars:ni in
         (man, Array.map (Sym.of_cover_sets man) arr));
    stats_memo = Array.make (Array.length arr) None;
    minmax_memo = Array.make (Array.length arr) None;
  }

let check_output t o =
  if o < 0 || o >= t.no then invalid_arg "Analysis: output out of range"

let resolve ?(params = default_params) t = function
  | Auto ->
      if t.dense <> None && t.ni <= params.exhaustive_max then Exhaustive
      else if t.ni <= params.bdd_max then Bdd_exact
      else Sampled
  | b -> b

let dense_exn t =
  match t.dense with
  | Some s -> s
  | None ->
      invalid_arg
        "Analysis: exhaustive backend needs a dense specification (ni <= 20)"

let events_float ~n = float_of_int n *. (2.0 ** float_of_int n)

(* ------------------------------------------------------------------ *)
(* Symbolic engine: everything comes out of the memoised Sym sweep.  *)

let sym_stats t o =
  match t.stats_memo.(o) with
  | Some st -> st
  | None ->
      let man, sets = Lazy.force t.sym in
      let st = Sym.stats man sets.(o) in
      t.stats_memo.(o) <- Some st;
      st

let sym_minmax t o =
  match t.minmax_memo.(o) with
  | Some mm -> mm
  | None ->
      let man, sets = Lazy.force t.sym in
      let mm = Sym.min_max_dc man sets.(o) in
      t.minmax_memo.(o) <- Some mm;
      mm

(* ------------------------------------------------------------------ *)
(* Sampled engine.

   One event is a uniform (minterm m, input j) draw from the
   n * 2^n space; every quantity of interest is the success
   probability of a Bernoulli indicator of that draw:

   - base error: m and its j-neighbour are opposite care phases;
   - min_dc (resp. max_dc): m is DC and the j-neighbour carries the
     minority (resp. majority) care phase among all n neighbours —
     ties go to on, making the success count exactly min(on, off)
     (resp. max) per DC minterm;
   - borders b0/b1/bdc: m is in the phase set, the j-neighbour is not;
   - complexity factor: the two share a phase;
   - implementation rate: m is a care minterm and the implementation
     differs across the flip.

   Draws are grouped into fixed-size chunks, each with its own RNG
   seeded by (seed, output, chunk index), mapped through the pool and
   folded in chunk order — the trace is a function of the seed alone,
   never of the job count. *)

type tally = {
  mutable t_on : int;
  mutable t_off : int;
  mutable t_dc : int;
  mutable t_base : int;
  mutable t_min : int;
  mutable t_max : int;
  mutable t_b0 : int;
  mutable t_b1 : int;
  mutable t_bdc : int;
  mutable t_same : int;
  mutable t_rate : int;
}

let tally_zero () =
  {
    t_on = 0;
    t_off = 0;
    t_dc = 0;
    t_base = 0;
    t_min = 0;
    t_max = 0;
    t_b0 = 0;
    t_b1 = 0;
    t_bdc = 0;
    t_same = 0;
    t_rate = 0;
  }

let tally_merge a b =
  a.t_on <- a.t_on + b.t_on;
  a.t_off <- a.t_off + b.t_off;
  a.t_dc <- a.t_dc + b.t_dc;
  a.t_base <- a.t_base + b.t_base;
  a.t_min <- a.t_min + b.t_min;
  a.t_max <- a.t_max + b.t_max;
  a.t_b0 <- a.t_b0 + b.t_b0;
  a.t_b1 <- a.t_b1 + b.t_b1;
  a.t_bdc <- a.t_bdc + b.t_bdc;
  a.t_same <- a.t_same + b.t_same;
  a.t_rate <- a.t_rate + b.t_rate

let sample_chunk = 4096

(* Uniform n-bit minterm from 30-bit [Random.State.bits] words. *)
let rand_minterm rng ~n =
  let rec go acc got =
    if got >= n then acc land ((1 lsl n) - 1)
    else go ((acc lsl 30) lor Random.State.bits rng) (got + 30)
  in
  go 0 0

let phase_fn t ~o =
  match t.dense with
  | Some spec -> fun m -> Spec.get spec ~o ~m
  | None ->
      let man, sets = Lazy.force t.sym in
      let s = sets.(o) in
      fun m ->
        if Bdd.eval_minterm man s.Sym.on m then Spec.On
        else if Bdd.eval_minterm man s.Sym.off m then Spec.Off
        else Spec.Dc

let sample ~params ?impl t ~o =
  let n = t.ni in
  if params.samples <= 0 then invalid_arg "Analysis: samples must be positive";
  let phase = phase_fn t ~o (* forces the lazy before the parallel map *) in
  let run_chunk c =
    let rng = Random.State.make [| params.seed; o; c |] in
    let first = c * sample_chunk in
    let todo = min sample_chunk (params.samples - first) in
    let t' = tally_zero () in
    for _ = 1 to todo do
      let m = rand_minterm rng ~n in
      let j = Random.State.int rng n in
      let p = phase m in
      let pj = phase (m lxor (1 lsl j)) in
      (match p with
      | Spec.On -> t'.t_on <- t'.t_on + 1
      | Spec.Off -> t'.t_off <- t'.t_off + 1
      | Spec.Dc -> t'.t_dc <- t'.t_dc + 1);
      if p = pj then t'.t_same <- t'.t_same + 1
      else begin
        match p with
        | Spec.Off -> t'.t_b0 <- t'.t_b0 + 1
        | Spec.On -> t'.t_b1 <- t'.t_b1 + 1
        | Spec.Dc -> t'.t_bdc <- t'.t_bdc + 1
      end;
      (match (p, pj) with
      | Spec.On, Spec.Off | Spec.Off, Spec.On -> t'.t_base <- t'.t_base + 1
      | _ -> ());
      (if p = Spec.Dc && pj <> Spec.Dc then begin
         (* Neighbour phase census decides minority/majority. *)
         let on_c = ref 0 and off_c = ref 0 in
         for k = 0 to n - 1 do
           match phase (m lxor (1 lsl k)) with
           | Spec.On -> incr on_c
           | Spec.Off -> incr off_c
           | Spec.Dc -> ()
         done;
         let minority = if !on_c <= !off_c then Spec.On else Spec.Off in
         let majority = if !on_c >= !off_c then Spec.On else Spec.Off in
         if pj = minority then t'.t_min <- t'.t_min + 1;
         if pj = majority then t'.t_max <- t'.t_max + 1
       end);
      match impl with
      | Some f -> if p <> Spec.Dc && f m <> f (m lxor (1 lsl j)) then
            t'.t_rate <- t'.t_rate + 1
      | None -> ()
    done;
    t'
  in
  let nchunks = (params.samples + sample_chunk - 1) / sample_chunk in
  let tallies = Parallel.Pool.init nchunks run_chunk in
  let acc = tally_zero () in
  Array.iter (tally_merge acc) tallies;
  acc

let wilson_value ~params ~successes =
  let lo, hi =
    Stats.wilson_interval ~confidence:params.confidence ~trials:params.samples
      ~successes
  in
  Interval
    { est = float_of_int successes /. float_of_int params.samples; lo; hi }

let scale_value k = function
  | Exact x -> Exact (x *. k)
  | Interval { est; lo; hi } ->
      Interval { est = est *. k; lo = lo *. k; hi = hi *. k }

(* ------------------------------------------------------------------ *)
(* Dispatch. *)

type bounds = { base : value; min_dc : value; max_dc : value }

let add_values a b =
  match (a, b) with
  | Exact x, Exact y -> Exact (x +. y)
  | _ ->
      Interval
        {
          est = value_est a +. value_est b;
          lo = value_lo a +. value_lo b;
          hi = value_hi a +. value_hi b;
        }

let min_rate b = add_values b.base b.min_dc
let max_rate b = add_values b.base b.max_dc

let zero_bounds = { base = Exact 0.0; min_dc = Exact 0.0; max_dc = Exact 0.0 }

type border_counts = { b0 : value; b1 : value; bdc : value }

let bounds ?(params = default_params) ~backend t ~o =
  check_output t o;
  if t.ni = 0 then zero_bounds
  else
    match resolve ~params t backend with
    | Auto -> assert false
    | Exhaustive ->
        let b = Error_rate.bounds (dense_exn t) ~o in
        {
          base = Exact b.Error_rate.base;
          min_dc = Exact b.Error_rate.min_dc;
          max_dc = Exact b.Error_rate.max_dc;
        }
    | Bdd_exact ->
        let st = sym_stats t o in
        let mn, mx = sym_minmax t o in
        let ev = events_float ~n:t.ni in
        {
          base = Exact st.Sym.base_rate;
          min_dc = Exact (mn /. ev);
          max_dc = Exact (mx /. ev);
        }
    | Sampled ->
        let s = sample ~params t ~o in
        {
          base = wilson_value ~params ~successes:s.t_base;
          min_dc = wilson_value ~params ~successes:s.t_min;
          max_dc = wilson_value ~params ~successes:s.t_max;
        }

let borders ?(params = default_params) ~backend t ~o =
  check_output t o;
  if t.ni = 0 then { b0 = Exact 0.0; b1 = Exact 0.0; bdc = Exact 0.0 }
  else
    match resolve ~params t backend with
    | Auto -> assert false
    | Exhaustive ->
        let c = Borders.border_counts (dense_exn t) ~o in
        {
          b0 = Exact (float_of_int c.Borders.b0);
          b1 = Exact (float_of_int c.Borders.b1);
          bdc = Exact (float_of_int c.Borders.bdc);
        }
    | Bdd_exact ->
        let st = sym_stats t o in
        { b0 = Exact st.Sym.b0; b1 = Exact st.Sym.b1; bdc = Exact st.Sym.bdc }
    | Sampled ->
        let s = sample ~params t ~o in
        let scale = events_float ~n:t.ni in
        {
          b0 = scale_value scale (wilson_value ~params ~successes:s.t_b0);
          b1 = scale_value scale (wilson_value ~params ~successes:s.t_b1);
          bdc = scale_value scale (wilson_value ~params ~successes:s.t_bdc);
        }

let signal_probs ?(params = default_params) ~backend t ~o =
  check_output t o;
  match resolve ~params t backend with
  | Auto -> assert false
  | Exhaustive ->
      let f1, f0, fdc = Spec.signal_probs (dense_exn t) ~o in
      (Exact f1, Exact f0, Exact fdc)
  | Bdd_exact ->
      let st = sym_stats t o in
      (Exact st.Sym.f1, Exact st.Sym.f0, Exact st.Sym.fdc)
  | Sampled ->
      if t.ni = 0 then begin
        (* A single minterm: read its phase directly. *)
        let p = phase_fn t ~o 0 in
        let v ph = Exact (if p = ph then 1.0 else 0.0) in
        (v Spec.On, v Spec.Off, v Spec.Dc)
      end
      else begin
        let s = sample ~params t ~o in
        ( wilson_value ~params ~successes:s.t_on,
          wilson_value ~params ~successes:s.t_off,
          wilson_value ~params ~successes:s.t_dc )
      end

let complexity_factor ?(params = default_params) ~backend t ~o =
  check_output t o;
  if t.ni = 0 then Exact 1.0
  else
    match resolve ~params t backend with
    | Auto -> assert false
    | Exhaustive -> Exact (Borders.complexity_factor (dense_exn t) ~o)
    | Bdd_exact -> Exact (sym_stats t o).Sym.cf
    | Sampled ->
        let s = sample ~params t ~o in
        wilson_value ~params ~successes:s.t_same

(* ------------------------------------------------------------------ *)
(* Implementation error rates. *)

let check_table t impl =
  if t.ni > 20 then
    invalid_arg "Analysis.rate_of_table: ni > 20 has no dense tables";
  if Bv.length impl <> 1 lsl t.ni then
    invalid_arg "Analysis.rate_of_table: length"

(* Flipped-input miter: sum over j of |care /\ (impl xor flip_j impl)|. *)
let symbolic_rate t ~o ~impl_bdd =
  let man, sets = Lazy.force t.sym in
  let s = sets.(o) in
  let care = Bdd.bor man s.Sym.on s.Sym.off in
  let count = ref 0.0 in
  for j = 0 to t.ni - 1 do
    let miter = Bdd.bxor man impl_bdd (Bdd.flip_var man impl_bdd j) in
    count := !count +. Bdd.satcount_float man (Bdd.band man care miter)
  done;
  Exact (!count /. events_float ~n:t.ni)

let rate_of_table ?(params = default_params) ~backend t ~o ~impl =
  check_output t o;
  check_table t impl;
  if t.ni = 0 then Exact 0.0
  else
    match resolve ~params t backend with
    | Auto -> assert false
    | Exhaustive -> Exact (Error_rate.of_table (dense_exn t) ~o ~impl)
    | Bdd_exact ->
        let man, _ = Lazy.force t.sym in
        symbolic_rate t ~o ~impl_bdd:(Bdd.of_bv man impl)
    | Sampled ->
        let s = sample ~params ~impl:(Bv.get impl) t ~o in
        wilson_value ~params ~successes:s.t_rate

let rate_of_cover ?(params = default_params) ~backend t ~o ~impl =
  check_output t o;
  if Twolevel.Cover.n impl <> t.ni then
    invalid_arg "Analysis.rate_of_cover: arity mismatch";
  if t.ni = 0 then Exact 0.0
  else
    match resolve ~params t backend with
    | Auto -> assert false
    | Exhaustive ->
        Exact
          (Error_rate.of_table (dense_exn t) ~o
             ~impl:(Twolevel.Cover.to_bv impl))
    | Bdd_exact ->
        let man, _ = Lazy.force t.sym in
        symbolic_rate t ~o ~impl_bdd:(Bdd.of_cover man impl)
    | Sampled ->
        let s = sample ~params ~impl:(Twolevel.Cover.eval impl) t ~o in
        wilson_value ~params ~successes:s.t_rate

(* ------------------------------------------------------------------ *)
(* Means across outputs.

   Exact values fold in output order, matching the sequential
   summation of [Error_rate.mean_bounds] bit for bit.  Sampled means
   Bonferroni-adjust the per-output confidence to 1 - (1-c)/no, so
   the averaged interval still holds at level c (each of the [no]
   intervals misses with probability at most (1-c)/no). *)

let mean_values vs =
  let k = float_of_int (Array.length vs) in
  let all_exact =
    Array.for_all (function Exact _ -> true | Interval _ -> false) vs
  in
  let sum f = Array.fold_left (fun a v -> a +. f v) 0.0 vs in
  if all_exact then Exact (sum value_est /. k)
  else
    Interval
      {
        est = sum value_est /. k;
        lo = sum value_lo /. k;
        hi = sum value_hi /. k;
      }

let bonferroni ~params t =
  { params with confidence = 1.0 -. ((1.0 -. params.confidence) /. float_of_int t.no) }

let per_output_params ~params ~backend t =
  match resolve ~params t backend with
  | Sampled -> bonferroni ~params t
  | _ -> params

let mean_bounds ?(params = default_params) ~backend t =
  let params' = per_output_params ~params ~backend t in
  let per = Array.init t.no (fun o -> bounds ~params:params' ~backend t ~o) in
  {
    base = mean_values (Array.map (fun b -> b.base) per);
    min_dc = mean_values (Array.map (fun b -> b.min_dc) per);
    max_dc = mean_values (Array.map (fun b -> b.max_dc) per);
  }

let rate_of_tables ?(params = default_params) ~backend t ~impl =
  if Array.length impl <> t.no then
    invalid_arg "Analysis.rate_of_tables: output count";
  let params' = per_output_params ~params ~backend t in
  mean_values
    (Array.init t.no (fun o ->
         rate_of_table ~params:params' ~backend t ~o ~impl:impl.(o)))

(* ------------------------------------------------------------------ *)
(* Analytical estimates fed from a backend. *)

let estimate_inputs ~params ~backend t ~o =
  let f1, f0, fdc = signal_probs ~params ~backend t ~o in
  let { b0; b1; bdc } = borders ~params ~backend t ~o in
  ( value_est f1,
    value_est f0,
    value_est fdc,
    value_est b0,
    value_est b1,
    value_est bdc )

let signal_interval ?(params = default_params) ~backend t ~o =
  let f1, f0, fdc, _, _, _ = estimate_inputs ~params ~backend t ~o in
  Estimate.signal_from ~n:t.ni ~f1 ~f0 ~fdc

let border_interval ?(params = default_params) ~backend t ~o =
  let f1, f0, fdc, b0, b1, bdc = estimate_inputs ~params ~backend t ~o in
  Estimate.border_from ~n:t.ni ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc

let mean_interval per_output t =
  let lo = ref 0.0 and hi = ref 0.0 in
  for o = 0 to t.no - 1 do
    let iv = per_output ~o in
    lo := !lo +. iv.Estimate.lo;
    hi := !hi +. iv.Estimate.hi
  done;
  let k = float_of_int t.no in
  { Estimate.lo = !lo /. k; hi = !hi /. k }

let mean_signal_interval ?(params = default_params) ~backend t =
  mean_interval (fun ~o -> signal_interval ~params ~backend t ~o) t

let mean_border_interval ?(params = default_params) ~backend t =
  mean_interval (fun ~o -> border_interval ~params ~backend t ~o) t
