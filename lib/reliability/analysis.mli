(** Backend dispatch for reliability analysis.

    Every reliability quantity in the pipeline — error rates, min/max
    DC-assignment bounds, border counts, signal probabilities — exists
    in three engines:

    - [Exhaustive]: the dense 2^n sweeps of {!Error_rate} and
      {!Borders} (word-parallel kernel or scalar oracle), available
      while a dense {!Pla.Spec.t} exists (n <= 20);
    - [Bdd_exact]: fully symbolic evaluation over structural BDDs —
      satcounts of flipped-input miters for rates and borders,
      {!Sym.min_max_dc}'s difference-counting network for the exact
      assignment bounds.  Exact (and bit-identical to the dense
      engines where both run) with no 2^n tables, so n of 30 and
      beyond is routine when the covers are structured;
    - [Sampled]: a seeded Monte-Carlo estimator over uniform
      (minterm, flipped input) events.  Every quantity is a Bernoulli
      proportion of the n * 2^n event space, reported as a Wilson
      score interval at the configured confidence.  Sampling is
      chunked deterministically and runs through {!Parallel.Pool}, so
      identical seeds give identical results at any job count.

    [Auto] picks an engine from the input count and the thresholds in
    {!params}.  Results are {!value}s: [Exact] from the first two
    engines, [Interval] from the sampler. *)

type backend = Exhaustive | Bdd_exact | Sampled | Auto

val backend_name : backend -> string

(** [backend_of_string s] accepts [exhaustive], [bdd], [sample] and
    [auto] (plus a few aliases); [Error] names the valid forms. *)
val backend_of_string : string -> (backend, string) result

type params = {
  samples : int;  (** Monte-Carlo draws per analysed output *)
  seed : int;  (** base seed; each (output, chunk) derives its own *)
  confidence : float;  (** Wilson interval confidence, in (0,1) *)
  exhaustive_max : int;  (** [Auto]: dense sweep while [ni] <= this *)
  bdd_max : int;  (** [Auto]: symbolic while [ni] <= this, sampled above *)
}

(** 100_000 samples, seed 42, 95% confidence, exhaustive to n = 14,
    symbolic to n = 40. *)
val default_params : params

(** A computed quantity: exact from the dense or symbolic engines, a
    point estimate with a Wilson confidence interval from the
    sampler. *)
type value = Exact of float | Interval of { est : float; lo : float; hi : float }

val value_est : value -> float

(** Pessimistic ends: [value_lo]/[value_hi] of an [Exact] are the
    value itself. *)
val value_lo : value -> float

val value_hi : value -> float

val pp_value : Format.formatter -> value -> unit

(** A problem instance: an analysable specification.  Dense problems
    carry their table and can use every backend; cover-level problems
    (the n > 20 regime) use the symbolic and sampled engines. *)
type t

val of_spec : Pla.Spec.t -> t

(** [of_cover_sets ~ni outputs] wraps parsed cube-level outputs.
    @raise Invalid_argument on an empty list or arity mismatch. *)
val of_cover_sets : ni:int -> Pla.cover_sets list -> t

val ni : t -> int

val no : t -> int

(** [dense_spec t] is the dense table when the problem has one. *)
val dense_spec : t -> Pla.Spec.t option

(** [resolve ?params t backend] is the engine that will actually run —
    [Auto] resolved against [ni] and the thresholds, everything else
    returned unchanged.  Never [Auto]. *)
val resolve : ?params:params -> t -> backend -> backend

(** {1 Quantities}

    All take the backend to use ([Auto] resolves per {!resolve}) and
    raise [Invalid_argument] when [Exhaustive] is requested without a
    dense table or [o] is out of range. *)

(** The {!Error_rate.bounds} triple as {!value}s (all rates under the
    [n * 2^n] normalisation). *)
type bounds = { base : value; min_dc : value; max_dc : value }

val min_rate : bounds -> value

val max_rate : bounds -> value

val bounds : ?params:params -> backend:backend -> t -> o:int -> bounds

(** [mean_bounds] averages across outputs.  Sampled intervals use a
    Bonferroni-adjusted per-output confidence so the averaged interval
    still holds at the configured level. *)
val mean_bounds : ?params:params -> backend:backend -> t -> bounds

(** Ordered border-pair counts (not rates), mirroring
    {!Borders.counts}. *)
type border_counts = { b0 : value; b1 : value; bdc : value }

val borders : ?params:params -> backend:backend -> t -> o:int -> border_counts

(** [(f1, f0, fdc)] — signal probabilities. *)
val signal_probs :
  ?params:params -> backend:backend -> t -> o:int -> value * value * value

(** The complexity factor C^f (same-phase pair fraction). *)
val complexity_factor :
  ?params:params -> backend:backend -> t -> o:int -> value

(** {1 Implementation error rates}

    The rate of a fully specified implementation against this
    problem's care set — {!Error_rate.of_table} generalised. *)

(** [rate_of_table ~backend t ~o ~impl] takes a dense truth table
    (length [2^ni]; dense problems only for [Exhaustive], any problem
    whose [ni] admits a table otherwise). *)
val rate_of_table :
  ?params:params -> backend:backend -> t -> o:int -> impl:Bitvec.Bv.t -> value

(** [rate_of_tables] averages {!rate_of_table} across outputs
    (Bonferroni-adjusted when sampled). *)
val rate_of_tables :
  ?params:params -> backend:backend -> t -> impl:Bitvec.Bv.t array -> value

(** [rate_of_cover ~backend t ~o ~impl] takes the implementation as
    its on-cover (off = complement) — the n > 20 form. *)
val rate_of_cover :
  ?params:params ->
  backend:backend ->
  t ->
  o:int ->
  impl:Twolevel.Cover.t ->
  value

(** {1 Analytical estimates through a backend}

    The Section 5 estimators fed with backend-computed inputs: exact
    counts from the dense or symbolic engines reproduce
    {!Estimate.signal_based}/{!Estimate.border_based} bit-identically;
    the sampler feeds point estimates. *)

val signal_interval :
  ?params:params -> backend:backend -> t -> o:int -> Estimate.interval

val border_interval :
  ?params:params -> backend:backend -> t -> o:int -> Estimate.interval

val mean_signal_interval :
  ?params:params -> backend:backend -> t -> Estimate.interval

val mean_border_interval :
  ?params:params -> backend:backend -> t -> Estimate.interval
