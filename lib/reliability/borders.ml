module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bv.Kernel

let ordered_pairs spec = Spec.ni spec * Spec.size spec

(* Scalar engine, kept as the reference oracle for the word-parallel
   kernels below. *)
let same_phase_pairs_scalar spec ~o =
  let n = Spec.ni spec in
  let count = ref 0 in
  for m = 0 to Spec.size spec - 1 do
    let p = Spec.get spec ~o ~m in
    for j = 0 to n - 1 do
      if Spec.get spec ~o ~m:(m lxor (1 lsl j)) = p then incr count
    done
  done;
  !count

(* Per-phase same-phase pair counts: for each phase plane P,
   sum over j of |P /\ N_j P| — the quantity shared by
   [same_phase_pairs] and [border_counts]. *)
let same_counts_kernel spec ~o =
  let n = Spec.ni spec in
  let on, off, dc = Spec.phase_planes spec ~o in
  let op p =
    { K.sw_src = p; sw_diff = false; sw_counter = None; sw_cross = Some p }
  in
  let accs = K.neighbour_sweep ~nj:n [| op on; op off; op dc |] in
  (accs.(0), accs.(1), accs.(2))

let same_phase_pairs spec ~o =
  if K.use () then begin
    let s_on, s_off, s_dc = same_counts_kernel spec ~o in
    s_on + s_off + s_dc
  end
  else same_phase_pairs_scalar spec ~o

let complexity_factor spec ~o =
  let same = same_phase_pairs spec ~o in
  (* A 0-input function is constant, hence trivially regular — the
     [local_complexity_factor] convention, not 0/0. *)
  if Spec.ni spec = 0 then 1.0
  else float_of_int same /. float_of_int (ordered_pairs spec)

let mean_over_outputs f spec =
  let no = Spec.no spec in
  let acc = ref 0.0 in
  for o = 0 to no - 1 do
    acc := !acc +. f spec ~o
  done;
  !acc /. float_of_int no

let mean_complexity_factor spec = mean_over_outputs complexity_factor spec

let expected_complexity_factor spec ~o =
  let f1, f0, fdc = Spec.signal_probs spec ~o in
  (f0 *. f0) +. (f1 *. f1) +. (fdc *. fdc)

let mean_expected_complexity_factor spec =
  mean_over_outputs expected_complexity_factor spec

let local_complexity_factor spec ~o ~m =
  let n = Spec.ni spec in
  if n = 0 then begin
    ignore (Spec.get spec ~o ~m : Spec.phase) (* range check only *);
    1.0 (* a 0-input function is constant, hence trivially regular *)
  end
  else begin
    let count = ref 0 in
    for j = 0 to n - 1 do
      let xj = m lxor (1 lsl j) in
      let pj = Spec.get spec ~o ~m:xj in
      (* x_k ranges over all n neighbours of x_j — including m itself
         (flipping bit j again), which the paper's definition admits. *)
      for k = 0 to n - 1 do
        let xk = xj lxor (1 lsl k) in
        if Spec.get spec ~o ~m:xk = pj then incr count
      done
    done;
    float_of_int !count /. float_of_int (n * n)
  end

(* Whole-space LC^f.  Writing S(x) for the number of neighbours of x
   sharing x's phase, the paper's double sum collapses to
     LC^f(m) = (1/n^2) * sum over j of S(m lxor 2^j):
   build S once as a bit-sliced counter (n fused plane operations),
   then accumulate its n neighbour permutations into a wider counter.
   Integer arithmetic throughout, so bit-identical to the scalar
   oracle sweep. *)
let local_complexity_factors_kernel spec ~o =
  let n = Spec.ni spec in
  let len = Spec.size spec in
  let on, off, dc = Spec.phase_planes spec ~o in
  let s = K.counter_create ~len ~bits:5 (* S <= n <= 20 < 32 *) in
  for k = 0 to n - 1 do
    let same = Bv.inter on (K.neighbor ~j:k on) in
    Bv.union_in_place same (Bv.inter off (K.neighbor ~j:k off));
    Bv.union_in_place same (Bv.inter dc (K.neighbor ~j:k dc));
    K.counter_add_bit s same
  done;
  let t = K.counter_create ~len ~bits:9 (* T <= n^2 <= 400 < 512 *) in
  for j = 0 to n - 1 do
    K.counter_add t (K.counter_neighbor ~j s)
  done;
  let sums = K.counter_extract t in
  let nn = float_of_int (n * n) in
  Array.map (fun c -> float_of_int c /. nn) sums

let local_complexity_factors spec ~o =
  let n = Spec.ni spec in
  if n = 0 then begin
    if o < 0 || o >= Spec.no spec then invalid_arg "Spec: output out of range";
    [| 1.0 |]
  end
  else if K.use () then local_complexity_factors_kernel spec ~o
  else
    Array.init (Spec.size spec) (fun m -> local_complexity_factor spec ~o ~m)

type counts = { b0 : int; b1 : int; bdc : int }

let border_counts_scalar spec ~o =
  let n = Spec.ni spec in
  let b0 = ref 0 and b1 = ref 0 and bdc = ref 0 in
  for m = 0 to Spec.size spec - 1 do
    let p = Spec.get spec ~o ~m in
    for j = 0 to n - 1 do
      let p' = Spec.get spec ~o ~m:(m lxor (1 lsl j)) in
      if p' <> p then
        match p with
        | Spec.Off -> incr b0
        | Spec.On -> incr b1
        | Spec.Dc -> incr bdc
    done
  done;
  { b0 = !b0; b1 = !b1; bdc = !bdc }

(* Each minterm of a phase set has n neighbours; those not in the same
   set are exactly the border pairs, so b_P = n*|P| - same_P. *)
let border_counts spec ~o =
  if K.use () then begin
    let n = Spec.ni spec in
    let on, off, dc = Spec.phase_planes spec ~o in
    let s_on, s_off, s_dc = same_counts_kernel spec ~o in
    {
      b0 = (n * Bv.cardinal off) - s_off;
      b1 = (n * Bv.cardinal on) - s_on;
      bdc = (n * Bv.cardinal dc) - s_dc;
    }
  end
  else border_counts_scalar spec ~o
