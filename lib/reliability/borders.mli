(** Complexity factors and border counts (Sections 2.2, 4, 5).

    All quantities are per output; [mean_*] helpers average across the
    outputs of a multi-output specification.  Pair-counting entry
    points dispatch to the word-parallel kernel engine
    ({!Bitvec.Bv.Kernel.enabled}) or the scalar oracle; the two
    engines are bit-identical. *)

(** [complexity_factor spec ~o] is the normalised complexity factor
    C^f: the fraction of ordered 1-Hamming-distance minterm pairs that
    share a phase (on/off/DC). *)
val complexity_factor : Pla.Spec.t -> o:int -> float

val mean_complexity_factor : Pla.Spec.t -> float

(** [expected_complexity_factor spec ~o] is
    E[C^f] = f0^2 + f1^2 + fdc^2. *)
val expected_complexity_factor : Pla.Spec.t -> o:int -> float

val mean_expected_complexity_factor : Pla.Spec.t -> float

(** [local_complexity_factor spec ~o ~m] is LC^f(m): among the n^2
    ordered pairs (x_j, x_k) with x_j a neighbour of [m] and x_k a
    neighbour of x_j, the fraction sharing a phase.  A spec with no
    inputs is constant, hence trivially regular: LC^f = 1. *)
val local_complexity_factor : Pla.Spec.t -> o:int -> m:int -> float

(** [local_complexity_factors spec ~o] is LC^f for the whole [2^ni]
    space at once — bit-sliced word-parallel counting under the kernel
    engine, a {!local_complexity_factor} sweep otherwise (the
    oracle). *)
val local_complexity_factors : Pla.Spec.t -> o:int -> float array

(** Border counts: ordered pairs (x_i, x_j) at Hamming distance 1 with
    [x_i] in the named set and [x_j] outside it. *)
type counts = { b0 : int; b1 : int; bdc : int }

val border_counts : Pla.Spec.t -> o:int -> counts

(** The scalar reference implementation of {!border_counts}, regardless
    of the engine toggle (the oracle). *)
val border_counts_scalar : Pla.Spec.t -> o:int -> counts

(** Invariant used in tests: [1 - C^f] equals
    [(b0 + b1 + bdc) / (n * 2^n)]. *)
val same_phase_pairs : Pla.Spec.t -> o:int -> int

(** The scalar reference implementation of {!same_phase_pairs} (the
    oracle). *)
val same_phase_pairs_scalar : Pla.Spec.t -> o:int -> int
