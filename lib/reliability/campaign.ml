module Spec = Pla.Spec

type config = {
  seed : int;
  trials_per_site : int;
  confidence : float;
  kinds : Inject.kind list;
  max_sites : int option;
  time_budget : float option;
  dead_sites : int list;
}

let default_config =
  {
    seed = 42;
    trials_per_site = 1000;
    confidence = 0.95;
    kinds = Inject.all_kinds;
    max_sites = None;
    time_budget = None;
    dead_sites = [];
  }

type site_result = {
  site : int;
  gate : string;
  kind : Inject.kind;
  trials : int;
  events : int;
  propagated : int;
  rate : float;
  ci : float * float;
}

type report = {
  config : config;
  results : site_result list;
  sites_total : int;
  sites_done : int;
  complete : bool;
  elapsed : float;
}

type pooled = {
  p_kind : Inject.kind;
  p_sites : int;
  p_events : int;
  p_propagated : int;
  p_rate : float;
  p_ci : float * float;
  p_worst : site_result option;
}

let kind_tag = function
  | Inject.Stuck_at_0 -> 0
  | Inject.Stuck_at_1 -> 1
  | Inject.Transient -> 2

(* Deterministic subsample: partial Fisher-Yates driven by the master
   seed, result re-sorted into topological order. *)
let select_sites ~seed ~max_sites sites =
  match max_sites with
  | None -> sites
  | Some k when k >= List.length sites -> sites
  | Some k ->
      if k <= 0 then invalid_arg "Campaign: max_sites must be positive";
      let arr = Array.of_list sites in
      let rng = Random.State.make [| seed; 0x5174 |] in
      let n = Array.length arr in
      for i = 0 to k - 1 do
        let j = i + Random.State.int rng (n - i) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp
      done;
      List.sort compare (Array.to_list (Array.sub arr 0 k))

let validate_config name config spec nl =
  if Netlist.ni nl <> Spec.ni spec then
    invalid_arg (name ^ ": input count mismatch");
  if config.trials_per_site <= 0 then
    invalid_arg (name ^ ": trials_per_site must be positive");
  if config.kinds = [] then invalid_arg (name ^ ": no fault kinds")

(* Statically-dead sites (every configured kind untestable — see
   [Atpg.Engine]) are excluded *before* the subsample, so --max-sites
   budgets are spent on faults that can matter. *)
let selected_sites config nl =
  let sites =
    match config.dead_sites with
    | [] -> Inject.sites nl
    | dead -> List.filter (fun s -> not (List.mem s dead)) (Inject.sites nl)
  in
  select_sites ~seed:config.seed ~max_sites:config.max_sites sites

(* One work item = one site (all its kinds).  Every (site, kind) pair
   draws from an RNG derived from the master seed alone, so evaluating
   sites concurrently — across domains or across worker processes —
   cannot change any rate. *)
let eval_site config spec nl site =
  let gate = Netlist.Gate.name (Netlist.gate nl site) in
  List.map
    (fun kind ->
      let rng = Random.State.make [| config.seed; site; kind_tag kind |] in
      let r =
        Inject.run ~rng ~trials:config.trials_per_site spec nl
          { Inject.node = site; kind }
      in
      let events = r.Inject.trials * Spec.no spec in
      let ci =
        Stats.wilson_interval ~confidence:config.confidence ~trials:events
          ~successes:r.Inject.propagated
      in
      {
        site;
        gate;
        kind;
        trials = r.Inject.trials;
        events;
        propagated = r.Inject.propagated;
        rate = r.Inject.rate;
        ci;
      })
    config.kinds

let run_sites config spec nl sites =
  validate_config "Campaign.run_sites" config spec nl;
  List.concat_map (eval_site config spec nl) sites

let of_results config ~sites_total ~complete ~elapsed results =
  let per_site = max 1 (List.length config.kinds) in
  {
    config;
    results;
    sites_total;
    sites_done = List.length results / per_site;
    complete;
    elapsed;
  }

let run ?(checkpoint = fun _ -> ()) config spec nl =
  validate_config "Campaign.run" config spec nl;
  let sites = Array.of_list (selected_sites config nl) in
  let sites_total = Array.length sites in
  let t0 = Unix.gettimeofday () in
  let results = ref [] in
  let sites_done = ref 0 in
  let complete = ref true in
  let report () =
    {
      config;
      results = List.rev !results;
      sites_total;
      sites_done = !sites_done;
      complete = !complete;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let eval_site = eval_site config spec nl in
  let pool = Parallel.Pool.shared () in
  (* Sites are swept in blocks; the time budget is checked between
     blocks.  The first block is a single site, so an undersized
     budget still yields a valid one-site partial report; with one
     job the block size stays 1 and the sweep degenerates to the
     original per-site loop. *)
  let block_size =
    match Parallel.Pool.jobs pool with 1 -> 1 | j -> 2 * j
  in
  let idx = ref 0 in
  (try
     while !idx < sites_total do
       (match config.time_budget with
       | Some budget
         when !idx > 0 && Unix.gettimeofday () -. t0 > budget ->
           complete := false;
           raise Exit
       | _ -> ());
       let len =
         if !idx = 0 then 1 else min block_size (sites_total - !idx)
       in
       let block =
         Parallel.Pool.map ~pool ~chunk:1 eval_site (Array.sub sites !idx len)
       in
       Array.iter
         (fun site_results ->
           List.iter (fun r -> results := r :: !results) site_results;
           incr sites_done;
           checkpoint (report ()))
         block;
       idx := !idx + len
     done
   with Exit -> ());
  report ()

let pooled report =
  List.map
    (fun kind ->
      let rs = List.filter (fun r -> r.kind = kind) report.results in
      let p_sites = List.length rs in
      let p_events = List.fold_left (fun acc r -> acc + r.events) 0 rs in
      let p_propagated =
        List.fold_left (fun acc r -> acc + r.propagated) 0 rs
      in
      let p_rate =
        if p_events = 0 then 0.0
        else float_of_int p_propagated /. float_of_int p_events
      in
      let p_ci =
        if p_events = 0 then (0.0, 0.0)
        else
          Stats.wilson_interval ~confidence:report.config.confidence
            ~trials:p_events ~successes:p_propagated
      in
      let p_worst =
        List.fold_left
          (fun acc r ->
            match acc with
            | Some w when w.rate >= r.rate -> acc
            | _ -> Some r)
          None rs
      in
      { p_kind = kind; p_sites; p_events; p_propagated; p_rate; p_ci; p_worst })
    report.config.kinds

(* JSON codecs for distributing site work across worker processes.
   Jsonout prints floats with %.17g and Jsonin parses them back with
   [float_of_string], so a decode (encode r) round-trip is
   bit-identical — the property the supervised campaign's
   merge-equals-sequential guarantee rests on. *)

module J = Rdca_json.Jsonout
module Jin = Rdca_json.Jsonin

let config_to_json c =
  J.Obj
    [
      ("seed", J.Int c.seed);
      ("trials_per_site", J.Int c.trials_per_site);
      ("confidence", J.Float c.confidence);
      ("kinds", J.List (List.map (fun k -> J.String (Inject.kind_name k)) c.kinds));
      ( "max_sites",
        match c.max_sites with Some k -> J.Int k | None -> J.Null );
      ("dead_sites", J.List (List.map (fun s -> J.Int s) c.dead_sites));
    ]

let site_result_to_json r =
  let lo, hi = r.ci in
  J.Obj
    [
      ("site", J.Int r.site);
      ("gate", J.String r.gate);
      ("kind", J.String (Inject.kind_name r.kind));
      ("trials", J.Int r.trials);
      ("events", J.Int r.events);
      ("propagated", J.Int r.propagated);
      ("rate", J.Float r.rate);
      ("ci_lo", J.Float lo);
      ("ci_hi", J.Float hi);
    ]

let site_result_of_json v =
  let field name conv =
    match Option.bind (Jin.member name v) conv with
    | Some x -> Ok x
    | None ->
        Error (Printf.sprintf "site result: missing or bad %S field" name)
  in
  let ( let* ) = Result.bind in
  let* site = field "site" Jin.to_int in
  let* gate = field "gate" Jin.to_string in
  let* kind_name = field "kind" Jin.to_string in
  let* kind =
    match Inject.kind_of_name kind_name with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "site result: unknown kind %S" kind_name)
  in
  let* trials = field "trials" Jin.to_int in
  let* events = field "events" Jin.to_int in
  let* propagated = field "propagated" Jin.to_int in
  let* rate = field "rate" Jin.to_float in
  let* lo = field "ci_lo" Jin.to_float in
  let* hi = field "ci_hi" Jin.to_float in
  Ok { site; gate; kind; trials; events; propagated; rate; ci = (lo, hi) }

let pp_report ppf report =
  let status = if report.complete then "complete" else "PARTIAL" in
  Format.fprintf ppf
    "@[<v>fault campaign: %d/%d sites, %d trials/site, seed %d (%s, %.3f s)@,"
    report.sites_done report.sites_total report.config.trials_per_site
    report.config.seed status report.elapsed;
  Format.fprintf ppf "  %-10s %6s  %8s  %-18s %s@," "kind" "sites" "rate"
    "CI" "worst site";
  List.iter
    (fun p ->
      let lo, hi = p.p_ci in
      let worst =
        match p.p_worst with
        | None -> "-"
        | Some w -> Printf.sprintf "n%d %s (%.4f)" w.site w.gate w.rate
      in
      Format.fprintf ppf "  %-10s %6d  %8.4f  [%.4f, %.4f]   %s@,"
        (Inject.kind_name p.p_kind) p.p_sites p.p_rate lo hi worst)
    (pooled report);
  Format.fprintf ppf "@]"
