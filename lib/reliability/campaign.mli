(** Fault-injection campaigns: sweeps of {!Inject} faults over the
    internal nodes of a mapped netlist.

    A campaign visits fault sites in topological order and runs a
    Monte-Carlo trial budget per (site, kind) pair.  Each pair gets
    its own RNG deterministically derived from the campaign seed, so
    results are reproducible and independent of how many sites the
    wall-clock budget allowed: cutting a campaign short changes which
    sites are reported, never their rates.  The same RNG splitting
    makes the sweep safe to parallelise: sites are evaluated in
    blocks on the shared {!Parallel.Pool}, and reports are
    bit-identical at every job count.  Partial results are
    checkpointed through a callback and the final report says whether
    the sweep completed. *)

(** Campaign parameters. *)
type config = {
  seed : int;  (** master seed; per-site RNGs derive from it *)
  trials_per_site : int;  (** Monte-Carlo trials per (site, kind) *)
  confidence : float;  (** Wilson interval confidence, e.g. [0.95] *)
  kinds : Inject.kind list;  (** fault kinds to sweep *)
  max_sites : int option;
      (** evaluate at most this many sites (deterministic seeded
          subsample); [None] sweeps every site *)
  time_budget : float option;
      (** wall-clock seconds; when exceeded the sweep stops after the
          current block of sites (a single site with one job) and the
          report is marked incomplete.  At least one site is always
          evaluated. *)
  dead_sites : int list;
      (** node ids excluded from site selection before any
          subsampling — statically untestable sites found by
          [Atpg.Engine] ([--skip-untestable]), whose faults cannot
          propagate and would only dilute the sweep.  Part of the
          config fingerprint: checkpoints do not resume across a
          different exclusion list. *)
}

(** [default_config] — seed 42, 1000 trials, 95% confidence, all
    kinds, no site cap, no time budget. *)
val default_config : config

(** Result for one (site, kind) pair. *)
type site_result = {
  site : int;  (** netlist node id *)
  gate : string;  (** printable gate name at the site *)
  kind : Inject.kind;
  trials : int;  (** Monte-Carlo trials run *)
  events : int;  (** trials x outputs — the rate denominator *)
  propagated : int;
  rate : float;  (** [propagated / events] *)
  ci : float * float;  (** Wilson interval at [config.confidence] *)
}

(** A (possibly partial) campaign report. *)
type report = {
  config : config;
  results : site_result list;  (** sweep order *)
  sites_total : int;  (** sites selected for the sweep *)
  sites_done : int;
  complete : bool;  (** [false] when the time budget cut the sweep *)
  elapsed : float;  (** wall-clock seconds *)
}

(** Per-kind aggregate over all evaluated sites: trials and
    propagation events pooled, with the Wilson interval of the pooled
    proportion and the worst (highest-rate) site. *)
type pooled = {
  p_kind : Inject.kind;
  p_sites : int;
  p_events : int;
  p_propagated : int;
  p_rate : float;
  p_ci : float * float;
  p_worst : site_result option;
}

(** {1 Sharding primitives}

    A campaign is embarrassingly parallel over sites: these entry
    points let a distribution layer (see [Flow.Distrib]) split the
    site list into shards, evaluate shards in separate worker
    processes, and reassemble a report bit-identical to {!run}. *)

(** [selected_sites config nl] — the exact site list {!run} would
    sweep, in sweep (topological) order. *)
val selected_sites : config -> Netlist.t -> int list

(** [eval_site config spec nl site] — the results for one site, one
    per kind in [config.kinds] order; pure given its arguments. *)
val eval_site : config -> Pla.Spec.t -> Netlist.t -> int -> site_result list

(** [run_sites config spec nl sites] evaluates a shard sequentially.
    Concatenating shard outputs in site order equals the [results]
    field of a full {!run}.
    @raise Invalid_argument as {!run}. *)
val run_sites :
  config -> Pla.Spec.t -> Netlist.t -> int list -> site_result list

(** [of_results config ~sites_total ~complete ~elapsed results]
    rebuilds a report from merged shard results (in sweep order);
    [sites_done] is inferred from the result count. *)
val of_results :
  config ->
  sites_total:int ->
  complete:bool ->
  elapsed:float ->
  site_result list ->
  report

(** {1 JSON codecs}

    [Rdca_json] round-trips floats exactly ([%.17g] out,
    [float_of_string] in), so
    [site_result_of_json (site_result_to_json r) = Ok r] — shard
    results survive the worker pipe bit-identically. *)

val config_to_json : config -> Rdca_json.Jsonout.t
(** Campaign parameters as JSON — the checkpoint fingerprint
    ingredient covering the campaign configuration. *)

val site_result_to_json : site_result -> Rdca_json.Jsonout.t

val site_result_of_json :
  Rdca_json.Jsonout.t -> (site_result, string) result

(** [run ?checkpoint config spec nl] sweeps the campaign.
    [checkpoint] (default ignore) receives the partial report after
    every completed site — the hook for persisting partial results.
    @raise Invalid_argument if netlist and spec input counts differ,
    [trials_per_site <= 0], or [kinds] is empty. *)
val run :
  ?checkpoint:(report -> unit) -> config -> Pla.Spec.t -> Netlist.t -> report

(** [pooled report] aggregates per kind, in [config.kinds] order. *)
val pooled : report -> pooled list

(** [pp_report ppf report] prints the pooled summary table. *)
val pp_report : Format.formatter -> report -> unit
