module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bv.Kernel

let events ~n = float_of_int (n * (1 lsl n))

(* An [ni = 0] spec has no inputs to flip, hence no error events at
   all; the rate of an empty event space is 0, not 0/0. *)
let rate ~n count = if n = 0 then 0.0 else float_of_int count /. events ~n

(* Scalar engine, kept as the reference oracle for the word-parallel
   kernel below.  The single range check at entry licenses the
   unchecked bit reads in the loop. *)
let of_table_scalar spec ~o ~impl =
  let n = Spec.ni spec in
  let size = Spec.size spec in
  if Bv.length impl <> size then invalid_arg "Error_rate.of_table: length";
  let count = ref 0 in
  for m = 0 to size - 1 do
    match Spec.get spec ~o ~m with
    | Spec.Dc -> () (* errors cannot originate in the DC space *)
    | Spec.On | Spec.Off ->
        let v = Bv.unsafe_get impl m in
        for j = 0 to n - 1 do
          if Bv.unsafe_get impl (m lxor (1 lsl j)) <> v then incr count
        done
  done;
  rate ~n !count

(* Word-parallel engine: an event (m, j) propagates iff bit m of
   [neighbor_diff ~j impl] is set, so the per-output count is n fused
   popcounts over the care set — tiled into one cache-blocked sweep. *)
let of_table_kernel spec ~o ~impl =
  let n = Spec.ni spec in
  if Bv.length impl <> Spec.size spec then
    invalid_arg "Error_rate.of_table: length";
  if n = 0 then 0.0
  else begin
    let _, _, dc = Spec.phase_planes spec ~o in
    let care = Bv.complement dc in
    let accs =
      K.neighbour_sweep ~nj:n
        [|
          {
            K.sw_src = impl;
            sw_diff = true;
            sw_counter = None;
            sw_cross = Some care;
          };
        |]
    in
    rate ~n accs.(0)
  end

let of_table spec ~o ~impl =
  if K.use () then of_table_kernel spec ~o ~impl
  else of_table_scalar spec ~o ~impl

(* Per-output rates are independent, so the mean is computed by a
   parallel map over outputs followed by a sequential fold in output
   order — the same summation order as a sequential loop, hence
   bit-identical at every job count. *)
let of_tables spec tables =
  if Array.length tables <> Spec.no spec then
    invalid_arg "Error_rate.of_tables: output count";
  let rates =
    Parallel.Pool.mapi (fun o impl -> of_table spec ~o ~impl) tables
  in
  Array.fold_left ( +. ) 0.0 rates /. float_of_int (Spec.no spec)

let of_netlist spec nl =
  if Netlist.ni nl <> Spec.ni spec then
    invalid_arg "Error_rate.of_netlist: input count";
  of_tables spec (Netlist.output_tables nl)

type bounds = { base : float; min_dc : float; max_dc : float }

let zero_bounds = { base = 0.0; min_dc = 0.0; max_dc = 0.0 }

let bounds_scalar spec ~o =
  let n = Spec.ni spec in
  let size = Spec.size spec in
  if n = 0 then zero_bounds
  else begin
    let base = ref 0 and min_dc = ref 0 and max_dc = ref 0 in
    for m = 0 to size - 1 do
      match Spec.get spec ~o ~m with
      | Spec.On | Spec.Off ->
          (* Count care->care opposite-phase transitions; both directions
             appear because we visit both endpoints. *)
          let my = Spec.get spec ~o ~m in
          for j = 0 to n - 1 do
            let m' = m lxor (1 lsl j) in
            match Spec.get spec ~o ~m:m' with
            | Spec.Dc -> ()
            | p -> if p <> my then incr base
          done
      | Spec.Dc ->
          let on, off, _ = Spec.neighbour_counts spec ~o ~m in
          min_dc := !min_dc + min on off;
          max_dc := !max_dc + max on off
    done;
    let ev = events ~n in
    {
      base = float_of_int !base /. ev;
      min_dc = float_of_int !min_dc /. ev;
      max_dc = float_of_int !max_dc /. ev;
    }
  end

(* Word-parallel bounds.  The base term pairs an on-minterm with an
   off-neighbour (both directions, like the scalar loop).  The DC
   terms need per-minterm neighbour counts: with bit-sliced counters,
     sum over DC of min(on, off) = (S - A) / 2
     sum over DC of max(on, off) = (S + A) / 2
   where S sums on + off and A sums |on - off| over the DC set — all
   exact integer arithmetic, so the result is bit-identical to the
   scalar oracle. *)
let bounds_kernel spec ~o =
  let n = Spec.ni spec in
  if n = 0 then zero_bounds
  else begin
    let on, off, dc = Spec.phase_planes spec ~o in
    let len = Spec.size spec in
    let on_c = K.counter_create ~len ~bits:5
    and off_c = K.counter_create ~len ~bits:5 in
    (* One tiled sweep: each j-neighbour plane feeds its counter and
       the opposite-phase cross popcount while hot in cache. *)
    let accs =
      K.neighbour_sweep ~nj:n
        [|
          {
            K.sw_src = on;
            sw_diff = false;
            sw_counter = Some on_c;
            sw_cross = Some off;
          };
          {
            K.sw_src = off;
            sw_diff = false;
            sw_counter = Some off_c;
            sw_cross = Some on;
          };
        |]
    in
    let base = ref (accs.(0) + accs.(1)) in
    let s =
      K.counter_weighted_sum on_c ~mask:dc
      + K.counter_weighted_sum off_c ~mask:dc
    in
    let abs_c, _sign = K.counter_abs_diff on_c off_c in
    let a = K.counter_weighted_sum abs_c ~mask:dc in
    let ev = events ~n in
    {
      base = float_of_int !base /. ev;
      min_dc = float_of_int ((s - a) / 2) /. ev;
      max_dc = float_of_int ((s + a) / 2) /. ev;
    }
  end

let bounds spec ~o =
  if K.use () then bounds_kernel spec ~o else bounds_scalar spec ~o

let mean_bounds spec =
  let no = Spec.no spec in
  let per_output = Parallel.Pool.init no (fun o -> bounds spec ~o) in
  let acc =
    Array.fold_left
      (fun acc b ->
        {
          base = acc.base +. b.base;
          min_dc = acc.min_dc +. b.min_dc;
          max_dc = acc.max_dc +. b.max_dc;
        })
      zero_bounds per_output
  in
  let k = float_of_int no in
  { base = acc.base /. k; min_dc = acc.min_dc /. k; max_dc = acc.max_dc /. k }

let min_rate b = b.base +. b.min_dc
let max_rate b = b.base +. b.max_dc

let impl_table assigned ~o =
  if K.use () then begin
    let on, _, dc = Spec.phase_planes assigned ~o in
    if not (Bv.is_empty dc) then
      invalid_arg "Spec.output_value: unassigned DC";
    Bv.copy on
  end
  else begin
    let size = Spec.size assigned in
    let impl = Bv.create size in
    for m = 0 to size - 1 do
      if Spec.output_value assigned ~o ~m then Bv.unsafe_set impl m
    done;
    impl
  end

let of_spec_assigned spec ~o = of_table spec ~o ~impl:(impl_table spec ~o)

(* Iterate all k-subsets of inputs as XOR masks. *)
let iter_flip_masks ~n ~k f =
  let rec go start mask chosen =
    if chosen = k then f mask
    else
      for j = start to n - 1 do
        go (j + 1) (mask lor (1 lsl j)) (chosen + 1)
      done
  in
  go 0 0 0

let binomial n k =
  let rec go i acc = if i > k then acc else go (i + 1) (acc * (n - i + 1) / i) in
  go 1 1

let of_table_kbit spec ~o ~impl ~k =
  let n = Spec.ni spec in
  if k < 1 || k > n then invalid_arg "Error_rate.of_table_kbit: bad k";
  let size = Spec.size spec in
  if Bv.length impl <> size then invalid_arg "Error_rate.of_table_kbit";
  let count = ref 0 in
  for m = 0 to size - 1 do
    match Spec.get spec ~o ~m with
    | Spec.Dc -> ()
    | Spec.On | Spec.Off ->
        let v = Bv.unsafe_get impl m in
        iter_flip_masks ~n ~k (fun mask ->
            if Bv.unsafe_get impl (m lxor mask) <> v then incr count)
  done;
  float_of_int !count /. (float_of_int (binomial n k) *. float_of_int size)

let of_tables_kbit spec tables ~k =
  if Array.length tables <> Spec.no spec then
    invalid_arg "Error_rate.of_tables_kbit";
  let rates =
    Parallel.Pool.mapi (fun o impl -> of_table_kbit spec ~o ~impl ~k) tables
  in
  Array.fold_left ( +. ) 0.0 rates /. float_of_int (Spec.no spec)
