(** Input-error rates: the paper's reliability metric.

    An error event is a pair (correct minterm, flipped input).  The
    correct minterm must be a {e care} vector of the specification
    (the motivating example of the paper: errors cannot originate in
    the DC space); the flipped vector may land anywhere.  An event
    propagates to an output when the implementation values differ.
    Rates are normalised by the [n * 2^n] events per output — the
    normalisation under which the paper's analytical formulas
    reproduce its Table 3 numbers. *)

(** Per-output error rate of an implementation table [impl] (the
    dense function actually synthesised) against the care set of
    [spec]'s output [o].  Dispatches to the word-parallel kernel
    engine ({!Bitvec.Bv.Kernel.enabled}) or the scalar oracle; both
    produce bit-identical results, and a spec with no inputs has rate
    0 (no error events), not NaN. *)
val of_table : Pla.Spec.t -> o:int -> impl:Bitvec.Bv.t -> float

(** The scalar reference implementation of {!of_table}, regardless of
    the engine toggle — the oracle the differential tests and the
    bench harness compare the kernel against. *)
val of_table_scalar : Pla.Spec.t -> o:int -> impl:Bitvec.Bv.t -> float

(** [of_tables spec tables] is the mean of {!of_table} over outputs.
    @raise Invalid_argument if the table count differs from
    [Spec.no spec]. *)
val of_tables : Pla.Spec.t -> Bitvec.Bv.t array -> float

(** [of_netlist spec nl] simulates the netlist exhaustively and
    applies {!of_tables}. *)
val of_netlist : Pla.Spec.t -> Netlist.t -> float

(** Exact specification-level bounds (Section 5 of the paper), as
    rates.  [base] is fixed by the care sets; [base + min_dc] and
    [base + max_dc] bound the error rate over all DC assignments. *)
type bounds = { base : float; min_dc : float; max_dc : float }

(** [bounds spec ~o] computes the exact per-output bounds by neighbour
    enumeration — word-parallel (bit-sliced neighbour counters) under
    the kernel engine, scalar otherwise; results are bit-identical. *)
val bounds : Pla.Spec.t -> o:int -> bounds

(** The scalar reference implementation of {!bounds} (the oracle). *)
val bounds_scalar : Pla.Spec.t -> o:int -> bounds

(** [mean_bounds spec] averages bounds over outputs. *)
val mean_bounds : Pla.Spec.t -> bounds

(** [min_rate b] and [max_rate b] are [b.base +. b.min_dc] and
    [b.base +. b.max_dc]. *)
val min_rate : bounds -> float

val max_rate : bounds -> float

(** [of_spec_assigned spec] treats a *fully specified* spec as its own
    implementation: the error rate of the function as assigned.
    @raise Invalid_argument if a DC phase remains. *)
val of_spec_assigned : Pla.Spec.t -> o:int -> float

(** [impl_table assigned ~o] extracts the dense implementation table of
    a fully specified spec's output (for use as [~impl] together with
    the {e original} incompletely specified spec).
    @raise Invalid_argument if a DC phase remains in output [o]. *)
val impl_table : Pla.Spec.t -> o:int -> Bitvec.Bv.t

(** {1 Multi-bit error model}

    The paper argues single-bit errors dominate; these entry points
    quantify how assignments tuned for single-bit masking behave under
    [k]-bit input errors (an ablation beyond the paper). *)

(** [of_table_kbit spec ~o ~impl ~k] is the fraction of (care minterm,
    k-element flip set) events that propagate; normalised by
    [C(n,k) * 2^n].  @raise Invalid_argument unless [1 <= k <= n]. *)
val of_table_kbit : Pla.Spec.t -> o:int -> impl:Bitvec.Bv.t -> k:int -> float

(** [of_tables_kbit spec tables ~k] averages over outputs. *)
val of_tables_kbit : Pla.Spec.t -> Bitvec.Bv.t array -> k:int -> float
