module Spec = Pla.Spec

type interval = { lo : float; hi : float }

(* Estimates are rates, so the model's tails are clamped into [0, 1];
   this also squashes the -0.0 that exact-zero arithmetic produces. *)
let clamp01 iv =
  let c x = Float.max 0.0 (Float.min 1.0 x) in
  { lo = c iv.lo; hi = c iv.hi }

(* An [n = 0] function has no inputs to flip, hence no error events:
   the interval is exactly {0, 0}, never 0/0 (same convention as
   [Error_rate.rate]). *)
let zero_interval = { lo = 0.0; hi = 0.0 }

let signal_from ~n ~f1 ~f0 ~fdc =
  if n = 0 then zero_interval
  else
  let n = float_of_int n in
  let base = 2.0 *. f0 *. f1 in
  if fdc = 0.0 then clamp01 { lo = base; hi = base }
  else begin
    (* Y = sum over n neighbours of (+1 on, -1 off, 0 dc). *)
    let mu = n *. (f1 -. f0) in
    let var = n *. (f1 +. f0 -. ((f1 -. f0) ** 2.0)) in
    let e_abs_y =
      if var <= 0.0 then abs_float mu
      else Stats.folded_normal_mean ~mu ~sigma:(sqrt var)
    in
    (* E[min] = (n - E|Y|)/2 per DC minterm; as a rate: x fdc / n. *)
    let min_dc = fdc *. (n -. e_abs_y) /. (2.0 *. n) in
    let max_dc = fdc *. (n +. e_abs_y) /. (2.0 *. n) in
    clamp01 { lo = base +. min_dc; hi = base +. max_dc }
  end

let signal_based spec ~o =
  let f1, f0, fdc = Spec.signal_probs spec ~o in
  signal_from ~n:(Spec.ni spec) ~f1 ~f0 ~fdc

(* Shared scaffolding for the two border-based neighbour models. *)
let border_scaffold ~n ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc =
  let nf = float_of_int n in
  let size = 2.0 ** float_of_int n in
  let base =
    let t1 = if f0 +. fdc > 0.0 then b1 /. size *. (f0 /. (f0 +. fdc)) else 0.0 in
    let t0 = if f1 +. fdc > 0.0 then b0 /. size *. (f1 /. (f1 +. fdc)) else 0.0 in
    (t1 +. t0) /. nf
  in
  let nb = if fdc > 0.0 then bdc /. (fdc *. size) else 0.0 in
  let p_on = if b0 +. b1 > 0.0 then b1 /. (b0 +. b1) else 0.5 in
  (nf, base, nb, p_on)

(* Expected min/max of (X, Nb - X) for a neighbour-count distribution
   given as a pmf over 0..kmax. *)
let min_max_expectation ~nb ~kmax pmf =
  let half = int_of_float (floor (nb /. 2.0)) in
  let e_min = ref 0.0 and e_max = ref 0.0 in
  for i = 0 to kmax do
    let p = pmf i in
    let fi = float_of_int i in
    let other = nb -. fi in
    if i <= half then begin
      e_min := !e_min +. (fi *. p);
      e_max := !e_max +. (other *. p)
    end
    else begin
      e_min := !e_min +. (other *. p);
      e_max := !e_max +. (fi *. p)
    end
  done;
  (* Clamp: with a truncated/approximate pmf the "other" terms can go
     slightly negative near the tail. *)
  (max 0.0 !e_min, max 0.0 !e_max)

let border_from ~n ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc =
  if n = 0 then zero_interval
  else
  let nf, base, nb, p_on = border_scaffold ~n ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc in
  if fdc = 0.0 || nb = 0.0 then clamp01 { lo = base; hi = base }
  else begin
    let lambda = nb *. p_on in
    let kmax = int_of_float (ceil nb) in
    let e_min, e_max =
      min_max_expectation ~nb ~kmax (fun i -> Stats.poisson_pmf ~lambda i)
    in
    clamp01
      { lo = base +. (fdc *. e_min /. nf); hi = base +. (fdc *. e_max /. nf) }
  end

let spec_counts spec ~o =
  let f1, f0, fdc = Spec.signal_probs spec ~o in
  let { Borders.b0; b1; bdc } = Borders.border_counts spec ~o in
  (f1, f0, fdc, float_of_int b0, float_of_int b1, float_of_int bdc)

let border_based spec ~o =
  let f1, f0, fdc, b0, b1, bdc = spec_counts spec ~o in
  border_from ~n:(Spec.ni spec) ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc

let binomial_pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else begin
    let log_c =
      Stats.log_factorial n -. Stats.log_factorial k
      -. Stats.log_factorial (n - k)
    in
    let log_p =
      (if k = 0 then 0.0 else float_of_int k *. log p)
      +. if n - k = 0 then 0.0 else float_of_int (n - k) *. log (1.0 -. p)
    in
    exp (log_c +. log_p)
  end

let binomial_border_based spec ~o =
  let f1, f0, fdc, b0, b1, bdc = spec_counts spec ~o in
  if Spec.ni spec = 0 then zero_interval
  else
  let nf, base, nb, p_on =
    border_scaffold ~n:(Spec.ni spec) ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc
  in
  if fdc = 0.0 || nb = 0.0 then clamp01 { lo = base; hi = base }
  else begin
    let trials = max 1 (int_of_float (floor (nb +. 0.5))) in
    let p = min 1.0 (max 0.0 p_on) in
    let p = if p = 0.0 then 1e-12 else if p = 1.0 then 1.0 -. 1e-12 else p in
    let e_min, e_max =
      min_max_expectation ~nb ~kmax:trials (fun i ->
          binomial_pmf ~n:trials ~p i)
    in
    clamp01
      { lo = base +. (fdc *. e_min /. nf); hi = base +. (fdc *. e_max /. nf) }
  end

let mean_over spec f =
  let no = Spec.no spec in
  let lo = ref 0.0 and hi = ref 0.0 in
  for o = 0 to no - 1 do
    let iv = f spec ~o in
    lo := !lo +. iv.lo;
    hi := !hi +. iv.hi
  done;
  { lo = !lo /. float_of_int no; hi = !hi /. float_of_int no }

let mean_signal_based spec = mean_over spec signal_based
let mean_border_based spec = mean_over spec border_based
