(** Analytical min–max reliability estimates (Section 5).

    Two estimators of the bounds that {!Error_rate.bounds} computes
    exactly, both avoiding minterm enumeration beyond cheap counts:

    - the {e signal-probability} estimate models the on/off phase of
      each neighbour as i.i.d. draws from the signal probabilities and
      approximates the neighbour-balance variable Y by a Gaussian;
    - the {e border-based} estimate incorporates structure through the
      border counts b0/b1/bDC and models a DC minterm's on-neighbour
      count as a Poisson variable.

    All values are rates under the same [n * 2^n] normalisation as
    {!Error_rate}; every interval is clamped into [0, 1] and the
    degenerate [n = 0] spec (no inputs to flip, hence no error events)
    yields the exact [{0, 0}] rather than 0/0. *)

type interval = { lo : float; hi : float }

(** [signal_based spec ~o] — Gaussian estimate from (f0, f1, fdc). *)
val signal_based : Pla.Spec.t -> o:int -> interval

(** [border_based spec ~o] — Poisson estimate from border counts. *)
val border_based : Pla.Spec.t -> o:int -> interval

(** Means across outputs. *)

val mean_signal_based : Pla.Spec.t -> interval

val mean_border_based : Pla.Spec.t -> interval

(** [binomial_border_based spec ~o] is the variant the paper mentions
    and rejects — modelling the on-neighbour count as Binomial(Nb, p)
    instead of Poisson — kept for the ablation benchmark. *)
val binomial_border_based : Pla.Spec.t -> o:int -> interval

(** Pure-number variants used by the symbolic (BDD) analysis path, so
    estimates can be computed without a dense specification. *)

(** [signal_from ~n ~f1 ~f0 ~fdc] — the Gaussian estimate from signal
    probabilities alone. *)
val signal_from : n:int -> f1:float -> f0:float -> fdc:float -> interval

(** [border_from ~n ~f1 ~f0 ~fdc ~b0 ~b1 ~bdc] — the Poisson estimate
    from signal probabilities and border counts; [b0]/[b1]/[bdc] are
    raw ordered-pair counts, [size = 2^n] is inferred from [n] as a
    float so the function also serves n > 62. *)
val border_from :
  n:int ->
  f1:float ->
  f0:float ->
  fdc:float ->
  b0:float ->
  b1:float ->
  bdc:float ->
  interval
