module Spec = Pla.Spec

type kind = Stuck_at_0 | Stuck_at_1 | Transient
type fault = { node : int; kind : kind }

let kind_name = function
  | Stuck_at_0 -> "sa0"
  | Stuck_at_1 -> "sa1"
  | Transient -> "transient"

let name_of_kind = kind_name

let all_kinds = [ Stuck_at_0; Stuck_at_1; Transient ]

let kind_of_name = function
  | "sa0" -> Some Stuck_at_0
  | "sa1" -> Some Stuck_at_1
  | "transient" -> Some Transient
  | _ -> None

let sites nl =
  let acc = ref [] in
  Netlist.iter_nodes nl (fun id g _ ->
      match g with Netlist.Gate.Const _ -> () | _ -> acc := id :: !acc);
  List.rev !acc

let apply kind v =
  match kind with
  | Stuck_at_0 -> false
  | Stuck_at_1 -> true
  | Transient -> not v

let check_node nl node =
  if node < 0 || node >= Netlist.node_count nl then
    invalid_arg "Inject: node id out of range"

let override_bool fault id v = if id = fault.node then apply fault.kind v else v

let override_word fault id w =
  if id <> fault.node then w
  else
    match fault.kind with
    | Stuck_at_0 -> 0
    | Stuck_at_1 -> -1
    | Transient -> lnot w

let eval_minterm nl fault m =
  check_node nl fault.node;
  Netlist.eval_minterm_with_override nl ~override:(override_bool fault) m

let faulty_tables nl fault =
  check_node nl fault.node;
  Netlist.output_tables_with_override nl ~override:(override_word fault)

let check_spec spec nl =
  if Netlist.ni nl <> Spec.ni spec then
    invalid_arg "Inject: input count mismatch"

let exact_rate spec nl fault =
  check_spec spec nl;
  check_node nl fault.node;
  let size = Spec.size spec in
  let no = Spec.no spec in
  let good = Netlist.output_tables nl in
  let bad = faulty_tables nl fault in
  let total = ref 0.0 in
  for o = 0 to no - 1 do
    let count = ref 0 in
    for m = 0 to size - 1 do
      match Spec.get spec ~o ~m with
      | Spec.Dc -> ()
      | Spec.On | Spec.Off ->
          if Bitvec.Bv.get good.(o) m <> Bitvec.Bv.get bad.(o) m then
            incr count
    done;
    total := !total +. (float_of_int !count /. float_of_int size)
  done;
  !total /. float_of_int no

type result = { trials : int; propagated : int; rate : float }

let run ~rng ~trials spec nl fault =
  check_spec spec nl;
  check_node nl fault.node;
  if trials <= 0 then invalid_arg "Inject.run: trials must be positive";
  let size = Spec.size spec in
  let no = Spec.no spec in
  let propagated = ref 0 in
  for _ = 1 to trials do
    let m = Random.State.int rng size in
    let outs = Netlist.eval_minterm nl m in
    let outs' = eval_minterm nl fault m in
    for o = 0 to no - 1 do
      (* As in Fault_sim: errors only originate at care vectors. *)
      match Spec.get spec ~o ~m with
      | Spec.Dc -> ()
      | Spec.On | Spec.Off -> if outs.(o) <> outs'.(o) then incr propagated
    done
  done;
  {
    trials;
    propagated = !propagated;
    rate = float_of_int !propagated /. float_of_int (trials * no);
  }
