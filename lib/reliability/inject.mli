(** Gate-level fault injection on mapped netlists.

    Where {!Fault_sim} models the paper's reliability metric — a
    single-bit error on a {e primary input} — this module injects
    faults at arbitrary internal nodes of a {!Netlist.t}: permanent
    stuck-at-0/1 defects and transient single-event bit flips.  Event
    counting follows {!Fault_sim}'s conventions: the correct vector
    must be a care vector of the specification's output for the event
    to count, and rates are normalised per (event, output) pair. *)

(** Fault kinds at a node.  [Transient] inverts the node's correct
    value for the duration of one evaluation (a single-event upset);
    the stuck-at kinds force it regardless of the inputs. *)
type kind = Stuck_at_0 | Stuck_at_1 | Transient

(** A fault site: [node] is a netlist node id. *)
type fault = { node : int; kind : kind }

(** [kind_name k] is ["sa0"], ["sa1"] or ["transient"]. *)
val kind_name : kind -> string

(** [name_of_kind] is {!kind_name} under the name {!kind_of_name}
    round-trips with (the canonical serialisation used by campaign
    JSON records and checkpoint frames). *)
val name_of_kind : kind -> string

(** [all_kinds] is [[Stuck_at_0; Stuck_at_1; Transient]]. *)
val all_kinds : kind list

(** [kind_of_name s] inverts {!kind_name}; [None] on unknown names. *)
val kind_of_name : string -> kind option

(** [sites nl] is the list of injectable sites: every non-input,
    non-constant node (the internal gates), in topological order. *)
val sites : Netlist.t -> int list

(** [apply k v] is the faulty value of a node whose correct value is
    [v]. *)
val apply : kind -> bool -> bool

(** [eval_minterm nl fault m] evaluates the netlist on minterm [m]
    with [fault] active.
    @raise Invalid_argument on a bad node id. *)
val eval_minterm : Netlist.t -> fault -> int -> bool array

(** [faulty_tables nl fault] is [Netlist.output_tables] under the
    fault (word-parallel exhaustive simulation).
    @raise Invalid_argument on a bad node id or [ni > 20]. *)
val faulty_tables : Netlist.t -> fault -> Bitvec.Bv.t array

(** [exact_rate spec nl fault] is the exact propagation rate of the
    fault: the fraction of (care minterm, output) pairs whose value
    changes under the fault, normalised by [2^n] events per output and
    averaged over outputs — the gate-fault analogue of
    {!Error_rate.of_netlist}.
    @raise Invalid_argument if netlist and spec input counts differ or
    the node id is bad. *)
val exact_rate : Pla.Spec.t -> Netlist.t -> fault -> float

(** Monte-Carlo result, as in {!Fault_sim}. *)
type result = { trials : int; propagated : int; rate : float }

(** [run ~rng ~trials spec nl fault] samples [trials] uniform random
    minterms; each event counts once per output whose correct vector
    is a care vector and whose value changes under the fault.
    [rate = propagated / (trials * outputs)], converging to
    {!exact_rate}.
    @raise Invalid_argument if netlist and spec input counts differ,
    [trials <= 0], or the node id is bad. *)
val run :
  rng:Random.State.t ->
  trials:int ->
  Pla.Spec.t ->
  Netlist.t ->
  fault ->
  result
