let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = abs_float x in
  let a1 = 0.254829592 and a2 = -0.284496736 and a3 = 1.421413741 in
  let a4 = -1.453152027 and a5 = 1.061405429 and p = 0.3275911 in
  let t = 1.0 /. (1.0 +. (p *. x)) in
  let poly = ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let normal_cdf ~mu ~sigma x =
  if sigma <= 0.0 then invalid_arg "Stats.normal_cdf: sigma must be positive";
  0.5 *. (1.0 +. erf ((x -. mu) /. (sigma *. sqrt 2.0)))

let folded_normal_mean ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Stats.folded_normal_mean: negative sigma";
  if sigma = 0.0 then abs_float mu
  else
    let pi = 4.0 *. atan 1.0 in
    (sigma *. sqrt (2.0 /. pi) *. exp (-.(mu *. mu) /. (2.0 *. sigma *. sigma)))
    +. (mu *. (1.0 -. (2.0 *. normal_cdf ~mu:0.0 ~sigma:1.0 (-.mu /. sigma))))

let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Stats.normal_quantile: p must be in (0,1)";
  (* Bisection on the CDF: monotone, and the erf approximation is
     accurate to ~1.5e-7, far below the tolerance needed here. *)
  let lo = ref (-10.0) and hi = ref 10.0 in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if normal_cdf ~mu:0.0 ~sigma:1.0 mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let wilson_interval ~confidence ~trials ~successes =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes out of range";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Stats.wilson_interval: confidence must be in (0,1)";
  let z = normal_quantile (1.0 -. ((1.0 -. confidence) /. 2.0)) in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = p +. (z2 /. (2.0 *. n)) in
  let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
  let lo = (centre -. half) /. denom and hi = (centre +. half) /. denom in
  (max 0.0 lo, min 1.0 hi)

let log_factorial k =
  if k < 0 then invalid_arg "Stats.log_factorial: negative";
  if k <= 20 then begin
    let acc = ref 0.0 in
    for i = 2 to k do
      acc := !acc +. log (float_of_int i)
    done;
    !acc
  end
  else
    (* Stirling with first correction term. *)
    let kf = float_of_int k in
    (kf *. log kf) -. kf
    +. (0.5 *. log (2.0 *. (4.0 *. atan 1.0) *. kf))
    +. (1.0 /. (12.0 *. kf))

let poisson_pmf ~lambda k =
  if lambda < 0.0 then invalid_arg "Stats.poisson_pmf: negative lambda";
  if k < 0 then invalid_arg "Stats.poisson_pmf: negative k";
  if lambda = 0.0 then if k = 0 then 1.0 else 0.0
  else exp ((float_of_int k *. log lambda) -. lambda -. log_factorial k)
