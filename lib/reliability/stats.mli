(** Numerical helpers for the analytical reliability estimates:
    the Gaussian error function, folded-normal mean, and the Poisson
    probability mass function. *)

(** [erf x] — Abramowitz & Stegun 7.1.26 rational approximation,
    absolute error below 1.5e-7. *)
val erf : float -> float

(** [normal_cdf ~mu ~sigma x] is P(X <= x) for X ~ N(mu, sigma^2).
    [sigma] must be positive. *)
val normal_cdf : mu:float -> sigma:float -> float -> float

(** [folded_normal_mean ~mu ~sigma] is E|X| for X ~ N(mu, sigma^2);
    when [sigma = 0.] it degenerates to [abs_float mu]. *)
val folded_normal_mean : mu:float -> sigma:float -> float

(** [normal_quantile p] is the inverse standard-normal CDF at
    [p ∈ (0,1)], by bisection on {!normal_cdf} (absolute error below
    1e-6 over the erf approximation's range). *)
val normal_quantile : float -> float

(** [wilson_interval ~confidence ~trials ~successes] is the Wilson
    score interval [(lo, hi)] for a binomial proportion — the
    confidence interval on a Monte-Carlo propagation rate.  Unlike
    the normal approximation it behaves sensibly at 0 and [trials]
    successes.  @raise Invalid_argument on [trials <= 0], a success
    count outside [0..trials], or confidence outside (0,1). *)
val wilson_interval :
  confidence:float -> trials:int -> successes:int -> float * float

(** [poisson_pmf ~lambda k] is e^-lambda lambda^k / k!, computed in
    log space for robustness; [lambda >= 0.], [k >= 0]. *)
val poisson_pmf : lambda:float -> int -> float

(** [log_factorial k] — exact up to 20!, Stirling beyond. *)
val log_factorial : int -> float
