type sets = { on : Bdd.t; off : Bdd.t; dc : Bdd.t }

let of_spec man spec ~o =
  if Bdd.nvars man <> Pla.Spec.ni spec then
    invalid_arg "Sym.of_spec: manager variable count mismatch";
  {
    on = Bdd.of_bv man (Pla.Spec.on_bv spec ~o);
    off = Bdd.of_bv man (Pla.Spec.off_bv spec ~o);
    dc = Bdd.of_bv man (Pla.Spec.dc_bv spec ~o);
  }

let of_covers man ~on ~dc =
  let on_b = Bdd.of_cover man on in
  let dc_raw = Bdd.of_cover man dc in
  (* espresso fd semantics: the on-set wins overlaps *)
  let dc_b = Bdd.band man dc_raw (Bdd.bnot man on_b) in
  let off_b = Bdd.bnot man (Bdd.bor man on_b dc_b) in
  { on = on_b; off = off_b; dc = dc_b }

let of_covers_fr man ~on ~off =
  let on_b = Bdd.of_cover man on in
  let off_b = Bdd.band man (Bdd.of_cover man off) (Bdd.bnot man on_b) in
  let dc_b = Bdd.bnot man (Bdd.bor man on_b off_b) in
  { on = on_b; off = off_b; dc = dc_b }

let of_cover_sets man = function
  | Pla.Fd_sets { on; dc } -> of_covers man ~on ~dc
  | Pla.Fr_sets { on; off } -> of_covers_fr man ~on ~off

let validate man s =
  let overlap a b = not (Bdd.is_zero man (Bdd.band man a b)) in
  if overlap s.on s.off then Some "on and off sets overlap"
  else if overlap s.on s.dc then Some "on and dc sets overlap"
  else if overlap s.off s.dc then Some "off and dc sets overlap"
  else if
    not
      (Bdd.is_one man (Bdd.bor man s.on (Bdd.bor man s.off s.dc)))
  then Some "sets do not cover the space"
  else None

type stats = {
  f1 : float;
  f0 : float;
  fdc : float;
  b0 : float;
  b1 : float;
  bdc : float;
  base_rate : float;
  cf : float;
}

let stats man s =
  let n = Bdd.nvars man in
  let size = 2.0 ** float_of_int n in
  let count = Bdd.satcount_float man in
  let f1 = count s.on /. size in
  let f0 = count s.off /. size in
  let fdc = count s.dc /. size in
  if n = 0 then
    (* No inputs to flip: the event space is empty, so the rate is 0
       and the constant function is trivially regular (cf 1, the
       [Borders.local_complexity_factor] convention). *)
    { f1; f0; fdc; b0 = 0.0; b1 = 0.0; bdc = 0.0; base_rate = 0.0; cf = 1.0 }
  else begin
  (* Per input j, neighbour-membership functions via flip_var. *)
  let b0 = ref 0.0 and b1 = ref 0.0 and bdc = ref 0.0 in
  let base = ref 0.0 and same = ref 0.0 in
  for j = 0 to n - 1 do
    let fon = Bdd.flip_var man s.on j in
    let foff = Bdd.flip_var man s.off j in
    let fdc_ = Bdd.flip_var man s.dc j in
    let inter a b = count (Bdd.band man a b) in
    b1 := !b1 +. inter s.on (Bdd.bnot man fon);
    b0 := !b0 +. inter s.off (Bdd.bnot man foff);
    bdc := !bdc +. inter s.dc (Bdd.bnot man fdc_);
    base := !base +. inter s.on foff +. inter s.off fon;
    same := !same +. inter s.on fon +. inter s.off foff +. inter s.dc fdc_
  done;
  let events = float_of_int n *. size in
  {
    f1;
    f0;
    fdc;
    b0 = !b0;
    b1 = !b1;
    bdc = !bdc;
    base_rate = !base /. events;
    cf = !same /. events;
  }
  end

(* Exact DC-assignment bounds, entirely symbolically.  Writing S for
   the total care-neighbour count over the DC set and A for the total
   |on_nbrs - off_nbrs| imbalance,
     sum over DC of min(on, off) = (S - A) / 2
     sum over DC of max(on, off) = (S + A) / 2
   (the kernel engine's identity).  S is n satcounts; A needs the
   per-minterm imbalance, tracked with a symbolic difference-counting
   network: layer.(d + n) holds the set of minterms whose partial
   on-minus-off neighbour difference over inputs 0..j is d, updated
   per input with the disjoint membership functions
     p_j = flip_j(on)   (neighbour j is on:  d + 1)
     q_j = flip_j(off)  (neighbour j is off: d - 1)
     z_j = flip_j(dc)   (neighbour j is dc:  d unchanged).
   O(n^2) BDD products; everything stays a satcount, so the result is
   exact (and bit-identical to the dense engines) while counts fit the
   float mantissa. *)
let min_max_dc man s =
  let n = Bdd.nvars man in
  if n = 0 then (0.0, 0.0)
  else begin
    let p = Array.init n (Bdd.flip_var man s.on) in
    let q = Array.init n (Bdd.flip_var man s.off) in
    let dc_count f = Bdd.satcount_float man (Bdd.band man f s.dc) in
    let total = ref 0.0 in
    for j = 0 to n - 1 do
      total := !total +. dc_count p.(j) +. dc_count q.(j)
    done;
    let width = (2 * n) + 1 in
    let layer = Array.make width (Bdd.zero man) in
    layer.(n) <- Bdd.one man;
    for j = 0 to n - 1 do
      let z = Bdd.bnot man (Bdd.bor man p.(j) q.(j)) in
      let next =
        Array.init width (fun i ->
            let up =
              if i > 0 then Bdd.band man layer.(i - 1) p.(j) else Bdd.zero man
            in
            let down =
              if i < width - 1 then Bdd.band man layer.(i + 1) q.(j)
              else Bdd.zero man
            in
            Bdd.bor man up (Bdd.bor man down (Bdd.band man layer.(i) z)))
      in
      Array.blit next 0 layer 0 width
    done;
    let imbalance = ref 0.0 in
    for i = 0 to width - 1 do
      let d = abs (i - n) in
      if d > 0 then
        imbalance := !imbalance +. (float_of_int d *. dc_count layer.(i))
    done;
    ((!total -. !imbalance) /. 2.0, (!total +. !imbalance) /. 2.0)
  end

let signal_interval man s =
  let st = stats man s in
  Estimate.signal_from ~n:(Bdd.nvars man) ~f1:st.f1 ~f0:st.f0 ~fdc:st.fdc

let border_interval man s =
  let st = stats man s in
  Estimate.border_from ~n:(Bdd.nvars man) ~f1:st.f1 ~f0:st.f0 ~fdc:st.fdc
    ~b0:st.b0 ~b1:st.b1 ~bdc:st.bdc
