(** Symbolic (BDD-based) reliability analysis.

    The paper manipulated on-, off- and DC-sets with CUDD; this module
    plays that role.  Everything Section 5 needs without minterm
    enumeration is computed symbolically — signal probabilities,
    border counts, the complexity factor, the exact base-error — so
    the analytical min–max estimates scale to input counts far beyond
    the dense representation's n <= 20 limit.  The exact min/max
    DC-assignment bounds — which need per-minterm neighbour minima —
    are recovered through {!min_max_dc}'s symbolic difference-counting
    network, so the whole exact analysis is now available without a
    dense table (the [Analysis.Bdd_exact] backend).

    The three set arguments must partition the space:
    [validate] checks this. *)

type sets = { on : Bdd.t; off : Bdd.t; dc : Bdd.t }

(** [of_spec man spec ~o] builds the three set BDDs of one output.
    The manager must have [Spec.ni spec] variables. *)
val of_spec : Bdd.man -> Pla.Spec.t -> o:int -> sets

(** [of_covers man ~on ~dc] builds sets from covers (off = complement
    of their union) — the scalable entry point. *)
val of_covers : Bdd.man -> on:Twolevel.Cover.t -> dc:Twolevel.Cover.t -> sets

(** [of_covers_fr man ~on ~off] — type-[fr] semantics: DC is the
    complement of the union; the on-set wins overlaps. *)
val of_covers_fr :
  Bdd.man -> on:Twolevel.Cover.t -> off:Twolevel.Cover.t -> sets

(** [of_cover_sets man cs] dispatches on a parsed {!Pla.cover_sets}. *)
val of_cover_sets : Bdd.man -> Pla.cover_sets -> sets

(** [validate man sets] is [Some msg] when the sets overlap or leak. *)
val validate : Bdd.man -> sets -> string option

(** Aggregate statistics extracted symbolically. *)
type stats = {
  f1 : float;
  f0 : float;
  fdc : float;
  b0 : float;  (** ordered off->elsewhere borders *)
  b1 : float;
  bdc : float;
  base_rate : float;  (** exact base error rate *)
  cf : float;  (** complexity factor *)
}

(** [stats man sets] extracts every aggregate in one symbolic sweep.
    At [n = 0] the event space is empty: rates are 0 and [cf] is 1
    (the constant function is trivially regular). *)
val stats : Bdd.man -> sets -> stats

(** [min_max_dc man sets] is the pair (sum over DC minterms of
    min(on-neighbours, off-neighbours), same with max) as exact counts
    — the numerators of {!Error_rate.bounds}' [min_dc]/[max_dc].
    Computed with a symbolic difference-counting network over the
    partial on-minus-off neighbour imbalance (O(n^2) BDD products),
    so no 2^n enumeration is involved. *)
val min_max_dc : Bdd.man -> sets -> float * float

(** The Section 5 estimates, computed from {!stats} alone. *)

val signal_interval : Bdd.man -> sets -> Estimate.interval

val border_interval : Bdd.man -> sets -> Estimate.interval
