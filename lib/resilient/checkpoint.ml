module J = Rdca_json.Jsonout
module Jin = Rdca_json.Jsonin

type t = {
  kind : string;
  key : J.t;
  total : int;
  interrupted : bool;
  shards : (int * J.t) list;
}

let to_json t =
  J.Obj
    [
      ("schema", J.Int 1);
      ("kind", J.String t.kind);
      ("key", t.key);
      ("total", J.Int t.total);
      ("interrupted", J.Bool t.interrupted);
      ( "shards",
        J.List
          (List.map
             (fun (id, value) ->
               J.Obj [ ("id", J.Int id); ("value", value) ])
             t.shards) );
    ]

let save path t =
  let tmp = path ^ ".tmp" in
  J.write_file tmp (to_json t);
  Sys.rename tmp path

let field name conv v =
  match Option.bind (Jin.member name v) conv with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "checkpoint: missing or bad %S field" name)

let ( let* ) = Result.bind

let of_json v =
  let* schema = field "schema" Jin.to_int v in
  if schema <> 1 then
    Error (Printf.sprintf "checkpoint: unsupported schema %d" schema)
  else
    let* kind = field "kind" Jin.to_string v in
    let* key =
      match Jin.member "key" v with
      | Some k -> Ok k
      | None -> Error "checkpoint: missing \"key\" field"
    in
    let* total = field "total" Jin.to_int v in
    let* interrupted = field "interrupted" Jin.to_bool v in
    let* shard_list = field "shards" Jin.to_list v in
    let* shards =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* id = field "id" Jin.to_int s in
          let* value =
            match Jin.member "value" s with
            | Some x -> Ok x
            | None -> Error "checkpoint: shard missing \"value\""
          in
          Ok ((id, value) :: acc))
        (Ok []) shard_list
    in
    Ok { kind; key; total; interrupted; shards = List.rev shards }

let load path =
  match Jin.parse_file path with
  | Error e -> Error e
  | Ok v -> of_json v

let resume ~path ~kind ~key ~total =
  if not (Sys.file_exists path) then ([], None)
  else
    match load path with
    | Error e -> ([], Some e)
    | Ok c ->
        if c.kind <> kind then
          ([], Some (Printf.sprintf "checkpoint is for %S, not %S" c.kind kind))
        else if c.total <> total then
          ( [],
            Some
              (Printf.sprintf "checkpoint has %d shards, run has %d" c.total
                 total) )
        else if c.key <> key then
          ([], Some "checkpoint fingerprint does not match this run")
        else
          ( List.sort (fun (a, _) (b, _) -> compare a b) c.shards,
            None )
