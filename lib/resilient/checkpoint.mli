(** Periodic JSON checkpoints for long supervised runs.

    A checkpoint records which shards of a run have completed, keyed by
    a caller-supplied fingerprint of everything that determines the
    shard values (input, configuration, shard size...).  On resume the
    fingerprint is compared: a match lets the run skip completed shards
    and merge bit-identically with a fresh one; a mismatch discards the
    file — stale results are worse than recomputation.

    Writes are atomic (temp file + rename) so an interrupt mid-write
    leaves the previous checkpoint intact. *)

type t = {
  kind : string;  (** what is being sharded, e.g. ["campaign"] *)
  key : Rdca_json.Jsonout.t;  (** run fingerprint; compared structurally *)
  total : int;  (** shard count of the full run *)
  interrupted : bool;
      (** the writer stopped early (signal, [--stop-after]) *)
  shards : (int * Rdca_json.Jsonout.t) list;
      (** completed (shard id, shard value), ascending id *)
}

val save : string -> t -> unit
(** [save path t] writes atomically ([path ^ ".tmp"], then rename). *)

val load : string -> (t, string) result
(** Parse a checkpoint file.  [Error] on IO or schema problems. *)

val resume :
  path:string -> kind:string -> key:Rdca_json.Jsonout.t -> total:int ->
  (int * Rdca_json.Jsonout.t) list * string option
(** [resume ~path ~kind ~key ~total] is [(shards, rejected)]: the
    completed shards of a checkpoint matching all three of [kind],
    [key] and [total], else [[]].  [rejected] carries a reason when a
    checkpoint existed but was unusable (fingerprint mismatch, parse
    error); a missing file is simply [([], None)]. *)
