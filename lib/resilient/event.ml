module Diag = Check.Diag
module J = Rdca_json.Jsonout

type t = {
  severity : Diag.severity;
  code : string;
  time : float;
  message : string;
}

let make ~severity ~code ~time fmt =
  Format.kasprintf (fun message -> { severity; code; time; message }) fmt

let to_diag e =
  match e.severity with
  | Diag.Error -> Diag.error ~code:e.code ~loc:Diag.Global "%s" e.message
  | Diag.Warn -> Diag.warn ~code:e.code ~loc:Diag.Global "%s" e.message
  | Diag.Info -> Diag.info ~code:e.code ~loc:Diag.Global "%s" e.message

let to_json e =
  J.Obj
    [
      ("severity", J.String (Diag.severity_name e.severity));
      ("code", J.String e.code);
      ("time", J.Float e.time);
      ("message", J.String e.message);
    ]

let pp ppf e =
  Format.fprintf ppf "%s[%s] t=%.3f: %s"
    (Diag.severity_name e.severity)
    e.code e.time e.message
