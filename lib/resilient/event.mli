(** Structured supervision events.

    Everything noteworthy the {!Supervisor} does besides computing —
    spawning, killing, retrying, degrading — is recorded as an event in
    the run's outcome, in the style of {!Check.Diag}: a severity, a
    stable machine-readable code, and a human message.  Campaign and
    benchmark reports carry them so a degraded run says so instead of
    silently changing execution mode. *)

type t = {
  severity : Check.Diag.severity;
  code : string;
      (** stable kebab-case identifier, e.g. ["worker-died"],
          ["task-deadline"], ["degraded-to-pool"] *)
  time : float;  (** seconds since the supervisor run started *)
  message : string;
}

val make :
  severity:Check.Diag.severity ->
  code:string ->
  time:float ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val to_diag : t -> Check.Diag.t
(** Same severity/code/message with a [Global] location — for merging
    supervision events into a {!Check.Diag} report. *)

val to_json : t -> Rdca_json.Jsonout.t

val pp : Format.formatter -> t -> unit
(** One line: ["warn[worker-died] t=1.203: ..."]. *)
