module J = Rdca_json.Jsonout

exception Protocol_error of string

(* 8 hex digits bound a frame at 4 GiB; anything over this limit is a
   protocol bug, not a workload. *)
let max_frame = 1 lsl 30

let encode v =
  let payload = J.to_string v in
  let n = String.length payload in
  if n > max_frame then raise (Protocol_error "frame too large");
  Printf.sprintf "%08x\n%s" n payload

let write fd v =
  let s = Bytes.unsafe_of_string (encode v) in
  let len = Bytes.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd s !off (len - !off)
  done

type decoder = {
  buf : Buffer.t;
  mutable ready : J.t list; (* decoded by [read] but not yet returned *)
  tolerant : bool; (* resync over junk until the first valid frame *)
  mutable synced : bool; (* a valid frame has been decoded *)
}

let decoder ?(tolerate_noise = false) () =
  {
    buf = Buffer.create 4096;
    ready = [];
    tolerant = tolerate_noise;
    synced = false;
  }

(* Junk without a newline can't be resynced past; don't buffer it
   forever. *)
let max_noise = 65536

let hex_header s =
  let v = ref 0 in
  (try
     String.iter
       (fun c ->
         let d =
           match c with
           | '0' .. '9' -> Char.code c - Char.code '0'
           | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
           | _ -> raise Exit
         in
         v := (!v * 16) + d)
       s
   with Exit ->
     raise (Protocol_error (Printf.sprintf "bad frame header %S" s)));
  !v

(* Extract every complete frame currently in the buffer; the unparsed
   remainder is retained.  A tolerant decoder that has not yet seen a
   valid frame resyncs past junk at line boundaries instead of raising
   — worker binaries sometimes leak a diagnostic line onto stdout
   before their serve loop takes over the descriptor. *)
let drain d =
  let data = Buffer.contents d.buf in
  let total = String.length data in
  let pos = ref 0 in
  let out = ref [] in
  let continue = ref true in
  let step () =
    if total - !pos < 9 then continue := false
    else begin
      let len = hex_header (String.sub data !pos 8) in
      if len > max_frame then raise (Protocol_error "frame too large");
      if data.[!pos + 8] <> '\n' then
        raise (Protocol_error "missing frame header terminator");
      if total - !pos - 9 < len then continue := false
      else begin
        let payload = String.sub data (!pos + 9) len in
        (match Rdca_json.Jsonin.parse payload with
        | Ok v -> out := v :: !out
        | Error e -> raise (Protocol_error e));
        pos := !pos + 9 + len;
        d.synced <- true
      end
    end
  in
  while !continue do
    if d.tolerant && not d.synced then (
      try step ()
      with Protocol_error _ -> (
        match String.index_from_opt data !pos '\n' with
        | Some nl -> pos := nl + 1
        | None ->
            if total - !pos > max_noise then
              raise (Protocol_error "no frame sync in leading noise");
            continue := false))
    else step ()
  done;
  if !pos > 0 then begin
    Buffer.clear d.buf;
    Buffer.add_substring d.buf data !pos (total - !pos)
  end;
  List.rev !out

let feed d buf len =
  Buffer.add_subbytes d.buf buf 0 len;
  drain d

let read fd d =
  let buf = Bytes.create 65536 in
  let rec go () =
    match d.ready with
    | v :: rest ->
        d.ready <- rest;
        Some v
    | [] -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
            d.ready <- feed d buf n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()
