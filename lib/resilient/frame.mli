(** Length-prefixed JSON frames — the wire format between the
    {!Supervisor} and its worker processes.

    A frame is an 8-digit lowercase-hex payload length, a newline, and
    the payload: the {!Rdca_json.Jsonout} serialisation of one JSON
    value.  The fixed-width header makes framing trivial to decode
    incrementally and easy to eyeball in a pipe dump. *)

exception Protocol_error of string
(** Malformed header, oversized frame, or unparseable payload. *)

val encode : Rdca_json.Jsonout.t -> string
(** [encode v] is the complete frame for [v] (header + payload). *)

val write : Unix.file_descr -> Rdca_json.Jsonout.t -> unit
(** [write fd v] writes the whole frame, retrying short writes.
    Raises [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone. *)

(** {1 Incremental decoding}

    The supervisor multiplexes many worker pipes with [select]; bytes
    arrive in arbitrary pieces.  A [decoder] buffers them and yields
    every complete frame. *)

type decoder

val decoder : ?tolerate_noise:bool -> unit -> decoder
(** With [~tolerate_noise:true] the decoder resyncs past malformed
    input at line boundaries until the first valid frame arrives, then
    turns strict.  Worker binaries occasionally leak a start-up
    diagnostic line onto stdout before {!Worker.serve} takes over the
    descriptor; the supervisor reads with a tolerant decoder so such
    noise doesn't kill the worker.  Unsyncable noise (no newline)
    beyond 64 KiB still raises.  Default [false]: any malformed byte
    raises. *)

val feed : decoder -> bytes -> int -> Rdca_json.Jsonout.t list
(** [feed d buf len] appends [buf.(0..len-1)] and returns the decoded
    values of every frame completed by those bytes, in order.
    @raise Protocol_error on malformed input. *)

val read : Unix.file_descr -> decoder -> Rdca_json.Jsonout.t option
(** [read fd d] blocks until at least one complete frame is available
    (or end of file — [None]) and returns the first one; further
    already-buffered frames are returned by subsequent calls without
    touching [fd].  The worker side's read loop.
    @raise Protocol_error on malformed input. *)
