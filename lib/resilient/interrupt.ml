let hooks : (int * (unit -> unit)) list ref = ref []
let next_id = ref 0
let installed = ref false
let hit = ref false

let run_hooks () =
  hit := true;
  List.iter (fun (_, f) -> try f () with _ -> ()) !hooks

let handler _signum =
  run_hooks ();
  exit 130

let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle handler)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end

let on_interrupt hook =
  incr next_id;
  let id = !next_id in
  hooks := (id, hook) :: !hooks;
  fun () -> hooks := List.filter (fun (i, _) -> i <> id) !hooks

let triggered () = !hit

let simulate () =
  run_hooks ();
  hit := false
