(** Cooperative SIGINT/SIGTERM handling for long-running commands.

    [rdca faultsim], [rdca campaign] and [rdca bench] register hooks
    that flush a final checkpoint and a partial JSON report marked
    ["interrupted": true] before the process exits, so hours of fault
    simulation survive a Ctrl-C or a batch-scheduler kill. *)

val install : unit -> unit
(** Install handlers for SIGINT and SIGTERM (idempotent).  On signal,
    every registered hook runs (most recent first, exceptions ignored)
    and the process exits with status [130].  On platforms without
    these signals this is a no-op. *)

val on_interrupt : (unit -> unit) -> unit -> unit
(** [on_interrupt hook] registers [hook] and returns a thunk that
    deregisters it — call it when the guarded phase completes normally
    so a later signal does not re-flush stale state. *)

val triggered : unit -> bool
(** Whether a signal has been received (observable from hooks). *)

val simulate : unit -> unit
(** Run the hooks as a signal would, but return instead of exiting —
    the test harness's way of exercising interrupt flushing. *)
