module J = Rdca_json.Jsonout
module Jin = Rdca_json.Jsonin
module Diag = Check.Diag
module Pool = Parallel.Pool

type spawn = Fork | Exec of string array

type chaos = {
  kill_fraction : float;
  stall_fraction : float;
  chaos_seed : int;
}

type config = {
  workers : int;
  spawn : spawn;
  deadline : float;
  retries : int;
  backoff : float;
  heartbeat : float;
  stall_timeout : float;
  seed : int;
  chaos : chaos option;
}

let default =
  {
    workers = 2;
    spawn = Fork;
    deadline = 60.0;
    retries = 3;
    backoff = 0.25;
    heartbeat = 0.2;
    stall_timeout = 2.0;
    seed = 0;
    chaos = None;
  }

type mode = Processes of int | Pool of int | Sequential

type outcome = {
  results : (int * J.t) list;
  failures : (int * string) list;
  events : Event.t list;
  dispatches : int;
  mode : mode;
}

(* Small deterministic integer mixer (splitmix-style constants): drives
   chaos assignment and backoff jitter without touching the global RNG
   state, so supervised runs stay reproducible. *)
let mix a b =
  let h = ref (a * 0x9E3779B1 land max_int) in
  h := !h lxor ((b * 0x85EBCA77) land max_int);
  h := !h * 0xC2B2AE35 land max_int;
  h := !h lxor (!h lsr 15);
  !h land 0x3FFFFFFF

let unit_float a b = float_of_int (mix a b) /. float_of_int 0x40000000

(* Chaos is decided by the supervisor, and only for a task's first
   attempt: the injected failure is part of the schedule, and retries
   must be clean so every chaotic run still terminates. *)
let chaos_for cfg ~id ~attempt =
  match cfg.chaos with
  | Some c when attempt = 0 ->
      let u = unit_float c.chaos_seed id in
      if u < c.kill_fraction then Some "kill"
      else if u < c.kill_fraction +. c.stall_fraction then Some "stall"
      else None
  | _ -> None

let backoff_delay cfg ~id ~attempt =
  let jitter = 0.75 +. (0.5 *. unit_float cfg.seed ((id * 31) + attempt)) in
  cfg.backoff *. (2.0 ** float_of_int attempt) *. jitter

type busy = {
  task : int;
  attempt : int;
  since : float;
  mutable last : float; (* last frame of any kind from this worker *)
}

type wstate = Idle | Busy of busy

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  dec : Frame.decoder;
  mutable st : wstate;
  mutable got_frame : bool;
      (* any frame at all proves the worker came up; a silent death is
         counted as a spawn failure for the degradation ladder *)
}

type pending = { id : int; attempt : int; not_before : float }

let ignore_unix f = try f () with Unix.Unix_error _ | Sys_error _ -> ()

let run ?on_result ?(skip = []) cfg ~handler ~tasks =
  let n = Array.length tasks in
  let skip = List.filter (fun i -> i >= 0 && i < n) skip in
  let skipped = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace skipped i ()) skip;
  let todo = ref [] in
  for i = n - 1 downto 0 do
    if not (Hashtbl.mem skipped i) then todo := i :: !todo
  done;
  let total = List.length !todo in
  let t0 = Unix.gettimeofday () in
  let rel t = t -. t0 in
  let events = ref [] in
  let event severity code fmt =
    Format.kasprintf
      (fun message ->
        events :=
          { Event.severity; code; time = rel (Unix.gettimeofday ()); message }
          :: !events)
      fmt
  in
  let results : (int, J.t) Hashtbl.t = Hashtbl.create 64 in
  let failures = ref [] in
  let dispatches = ref 0 in
  let record_result id value =
    if not (Hashtbl.mem results id) then begin
      Hashtbl.replace results id value;
      match on_result with Some f -> f id value | None -> ()
    end
  in
  let record_failure id message =
    if not (Hashtbl.mem results id) && not (List.mem_assoc id !failures) then begin
      failures := (id, message) :: !failures;
      event Diag.Error "task-failed" "task %d failed permanently: %s" id
        message
    end
  in
  let eval_one id =
    match handler tasks.(id) with
    | v -> (id, Ok v)
    | exception e -> (id, Error (Printexc.to_string e))
  in
  (* Bottom rungs of the ladder: run [ids] in this process, on the
     shared pool when it has more than one job, else sequentially. *)
  let in_process ids =
    dispatches := !dispatches + List.length ids;
    let jobs = Pool.default_jobs () in
    let out =
      if jobs > 1 then Pool.map_list ~chunk:1 eval_one ids
      else List.map eval_one ids
    in
    List.iter
      (function
        | id, Ok v -> record_result id v
        | id, Error m -> record_failure id m)
      out;
    if jobs > 1 then Pool jobs else Sequential
  in
  let finish mode =
    {
      results =
        Hashtbl.fold (fun id v acc -> (id, v) :: acc) results []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      failures = List.sort (fun (a, _) (b, _) -> compare a b) !failures;
      events = List.rev !events;
      dispatches = !dispatches;
      mode;
    }
  in
  if total = 0 then finish Sequential
  else if cfg.workers <= 0 then finish (in_process !todo)
  else begin
    (* --- supervised multi-process path --- *)
    let prev_sigpipe =
      (* A worker dying mid-write must surface as EPIPE, not kill us. *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let workers : worker list ref = ref [] in
    let pending = ref [] in
    let push_pending p =
      pending :=
        List.sort (fun a b -> compare (a.id, a.attempt) (b.id, b.attempt))
          (p :: !pending)
    in
    List.iter
      (fun id -> push_pending { id; attempt = 0; not_before = t0 })
      !todo;
    let spawn_failures = ref 0 in
    let give_up_spawning = ref false in
    let max_spawn_failures = max 3 (cfg.workers * 2) in
    (* OCaml 5 forbids Unix.fork once any domain has ever been spawned
       (Pool.fork_safe latches): detect it up front so the run degrades
       with one clear event instead of a burst of failed attempts. *)
    (match cfg.spawn with
    | Fork when not (Pool.fork_safe ()) ->
        give_up_spawning := true;
        event Diag.Warn "fork-unavailable"
          "worker domains were spawned earlier in this process, so \
           Unix.fork is unavailable (OCaml 5); use Exec spawning or \
           run before any parallel region"
    | Fork | Exec _ -> ());
    let close_worker_fds w =
      ignore_unix (fun () -> Unix.close w.to_w);
      ignore_unix (fun () -> Unix.close w.from_w)
    in
    let spawn_worker () =
      (* Fork from a single-domain parent: the shared pool's domains
         would not survive into the child. *)
      Pool.quiesce ();
      try
        let r_in, w_in = Unix.pipe () in
        let r_out, w_out = Unix.pipe () in
        let pid =
          match cfg.spawn with
          | Fork -> (
              match Unix.fork () with
              | 0 ->
                  (* Child: close every supervisor-side fd (ours and the
                     other workers'), reset inherited parallel state,
                     serve, and leave without running at_exit hooks. *)
                  (try
                     Unix.close w_in;
                     Unix.close r_out;
                     List.iter close_worker_fds !workers;
                     Pool.fork_reset ();
                     Worker.serve ~heartbeat:cfg.heartbeat ~handler
                       ~input:r_in ~output:w_out ()
                   with _ -> ());
                  Unix._exit 0
              | pid -> pid)
          | Exec argv ->
              if Array.length argv = 0 then invalid_arg "Supervisor: empty argv";
              Unix.create_process argv.(0) argv r_in w_out Unix.stderr
        in
        Unix.close r_in;
        Unix.close w_out;
        Unix.set_close_on_exec w_in;
        Unix.set_close_on_exec r_out;
        let w =
          {
            pid;
            to_w = w_in;
            from_w = r_out;
            dec = Frame.decoder ~tolerate_noise:true ();
            st = Idle;
            got_frame = false;
          }
        in
        workers := !workers @ [ w ];
        event Diag.Info "worker-spawned" "worker pid %d spawned" pid
      with e ->
        incr spawn_failures;
        if !spawn_failures >= max_spawn_failures then give_up_spawning := true;
        event Diag.Warn "spawn-failed" "could not spawn worker: %s"
          (Printexc.to_string e)
    in
    let requeue ~why id attempt =
      if Hashtbl.mem results id then ()
      else if attempt >= max 0 cfg.retries then record_failure id why
      else begin
        let delay = backoff_delay cfg ~id ~attempt in
        event Diag.Warn "task-retry"
          "task %d attempt %d failed (%s); retrying in %.3fs" id attempt why
          delay;
        push_pending
          {
            id;
            attempt = attempt + 1;
            not_before = Unix.gettimeofday () +. delay;
          }
      end
    in
    let reap_worker w =
      close_worker_fds w;
      ignore_unix (fun () -> ignore (Unix.waitpid [] w.pid))
    in
    let remove_worker w = workers := List.filter (fun x -> x != w) !workers in
    let worker_died w ~why =
      (if not w.got_frame then begin
         incr spawn_failures;
         if !spawn_failures >= max_spawn_failures then give_up_spawning := true
       end);
      event Diag.Warn "worker-died" "worker pid %d died (%s)" w.pid why;
      (match w.st with
      | Busy b -> requeue ~why:(Printf.sprintf "worker died: %s" why) b.task b.attempt
      | Idle -> ());
      remove_worker w;
      reap_worker w
    in
    let kill_worker w ~why ~code =
      event Diag.Warn code "killing worker pid %d (%s)" w.pid why;
      ignore_unix (fun () -> Unix.kill w.pid Sys.sigkill);
      (match w.st with
      | Busy b -> requeue ~why b.task b.attempt
      | Idle -> ());
      remove_worker w;
      reap_worker w
    in
    let drop_pending id =
      pending := List.filter (fun p -> p.id <> id) !pending
    in
    let handle_frame w frame =
      w.got_frame <- true;
      spawn_failures := 0;
      let now = Unix.gettimeofday () in
      (match w.st with Busy b -> b.last <- now | Idle -> ());
      let typ = Option.bind (Jin.member "type" frame) Jin.to_string in
      let fid = Option.bind (Jin.member "id" frame) Jin.to_int in
      match (typ, fid) with
      | Some "hb", _ | Some "ack", _ -> ()
      | Some "result", Some id ->
          let value =
            match Jin.member "value" frame with Some v -> v | None -> J.Null
          in
          (* First result wins; a racing retry's duplicate is dropped
             (deterministic handlers make the copies identical). *)
          record_result id value;
          drop_pending id;
          (match w.st with
          | Busy b when b.task = id -> w.st <- Idle
          | _ -> ())
      | Some "error", Some id ->
          let message =
            match Option.bind (Jin.member "message" frame) Jin.to_string with
            | Some m -> m
            | None -> "unknown worker error"
          in
          (match w.st with
          | Busy b when b.task = id ->
              w.st <- Idle;
              requeue ~why:(Printf.sprintf "handler error: %s" message) id
                b.attempt
          | _ -> requeue ~why:(Printf.sprintf "handler error: %s" message) id 0)
      | _ ->
          event Diag.Warn "protocol" "worker pid %d sent unexpected frame" w.pid
    in
    let dispatch_ready () =
      let now = Unix.gettimeofday () in
      let idle = List.filter (fun w -> w.st = Idle) !workers in
      List.iter
        (fun w ->
          match
            List.find_opt
              (fun p ->
                p.not_before <= now && not (Hashtbl.mem results p.id))
              !pending
          with
          | None -> ()
          | Some p ->
              pending := List.filter (fun q -> q != p) !pending;
              let chaos = chaos_for cfg ~id:p.id ~attempt:p.attempt in
              let fields =
                [
                  ("type", J.String "task");
                  ("id", J.Int p.id);
                  ("attempt", J.Int p.attempt);
                ]
                @ (match chaos with
                  | Some c ->
                      event Diag.Info "chaos" "injecting %s into task %d" c
                        p.id;
                      [ ("chaos", J.String c) ]
                  | None -> [])
                @ [ ("payload", tasks.(p.id)) ]
              in
              let sent =
                try
                  Frame.write w.to_w (J.Obj fields);
                  true
                with Unix.Unix_error _ | Sys_error _ -> false
              in
              if sent then begin
                incr dispatches;
                w.st <-
                  Busy { task = p.id; attempt = p.attempt; since = now; last = now }
              end
              else begin
                push_pending p;
                worker_died w ~why:"write failed"
              end)
        idle
    in
    let check_timeouts () =
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          match w.st with
          | Idle -> ()
          | Busy b ->
              if cfg.deadline > 0.0 && now -. b.since > cfg.deadline then
                kill_worker w
                  ~why:
                    (Printf.sprintf "task %d exceeded %.3fs deadline" b.task
                       cfg.deadline)
                  ~code:"task-deadline"
              else if
                cfg.stall_timeout > 0.0 && now -. b.last > cfg.stall_timeout
              then
                kill_worker w
                  ~why:
                    (Printf.sprintf "no frames for %.3fs on task %d"
                       (now -. b.last) b.task)
                  ~code:"worker-stalled")
        (List.filter (fun w -> match w.st with Busy _ -> true | _ -> false)
           !workers)
    in
    let outstanding () =
      total - Hashtbl.length results - List.length !failures
    in
    let degraded = ref None in
    (* Main supervision loop: spawn, dispatch, select, decode, time out. *)
    (try
       while outstanding () > 0 && !degraded = None do
         (* Keep the fleet at strength while there is queued work. *)
         while
           (not !give_up_spawning)
           && List.length !workers < min cfg.workers (outstanding ())
         do
           spawn_worker ()
         done;
         if !workers = [] then begin
           (* No processes and none forthcoming: degrade in-process. *)
           let remaining =
             List.filter
               (fun id ->
                 (not (Hashtbl.mem results id))
                 && not (List.mem_assoc id !failures))
               !todo
           in
           pending := [];
           event Diag.Warn "degraded"
             "no worker processes available; running %d remaining task(s) \
              in-process"
             (List.length remaining);
           degraded := Some (in_process remaining)
         end
         else begin
           dispatch_ready ();
           let fds = List.map (fun w -> w.from_w) !workers in
           let readable, _, _ =
             try Unix.select fds [] [] 0.05
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
           in
           let buf = Bytes.create 65536 in
           List.iter
             (fun fd ->
               match List.find_opt (fun w -> w.from_w = fd) !workers with
               | None -> ()
               | Some w -> (
                   match Unix.read fd buf 0 (Bytes.length buf) with
                   | 0 -> worker_died w ~why:"pipe closed"
                   | len -> (
                       match Frame.feed w.dec buf len with
                       | frames -> List.iter (handle_frame w) frames
                       | exception Frame.Protocol_error m ->
                           kill_worker w ~why:m ~code:"protocol")
                   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                   | exception Unix.Unix_error _ ->
                       worker_died w ~why:"read failed"))
             readable;
           check_timeouts ()
         end
       done
     with e ->
       (* Tear down the fleet before re-raising: no orphans, no zombies. *)
       List.iter
         (fun w ->
           ignore_unix (fun () -> Unix.kill w.pid Sys.sigkill);
           reap_worker w)
         !workers;
       workers := [];
       Option.iter (fun b -> Sys.set_signal Sys.sigpipe b) prev_sigpipe;
       raise e);
    (* Graceful shutdown: ask nicely, then insist. *)
    List.iter
      (fun w ->
        ignore_unix (fun () ->
            Frame.write w.to_w (J.Obj [ ("type", J.String "exit") ])))
      !workers;
    List.iter
      (fun w ->
        let deadline = Unix.gettimeofday () +. 1.0 in
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] w.pid with
          | 0, _ ->
              if Unix.gettimeofday () < deadline then begin
                ignore (Unix.select [] [] [] 0.02);
                wait ()
              end
              else begin
                ignore_unix (fun () -> Unix.kill w.pid Sys.sigkill);
                ignore_unix (fun () -> ignore (Unix.waitpid [] w.pid))
              end
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        wait ();
        close_worker_fds w)
      !workers;
    workers := [];
    Option.iter (fun b -> Sys.set_signal Sys.sigpipe b) prev_sigpipe;
    let mode =
      match !degraded with Some m -> m | None -> Processes cfg.workers
    in
    finish mode
  end
