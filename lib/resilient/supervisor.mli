(** Supervised multi-process execution of independent tasks.

    The supervisor shards a fixed array of JSON task payloads across
    [workers] child processes speaking length-prefixed JSON frames
    ({!Frame}) over pipes, and babysits them:

    - {b deadlines} — a task running longer than [deadline] seconds
      gets its worker killed and the task requeued;
    - {b heartbeats} — workers beat every [heartbeat] seconds; a busy
      worker silent for [stall_timeout] seconds is presumed wedged and
      killed likewise;
    - {b retry with backoff} — failed or orphaned tasks are requeued
      with exponential backoff plus deterministic jitter, up to
      [retries] extra attempts, after which the task is recorded as a
      permanent failure (the rest of the run continues — partial
      results beat no results);
    - {b degradation ladder} — if worker processes cannot be spawned
      or kept alive, the remaining tasks run in-process on the shared
      {!Parallel.Pool}, which itself degenerates to plain sequential
      execution at one job.  Every rung is recorded as an {!Event}.

    Tasks must be pure functions of their payload: the supervisor may
    run a task more than once (a stalled worker's late result races
    its retry) and keeps whichever result arrives first.  With
    deterministic handlers every schedule yields bit-identical
    results. *)

(** How to start a worker process.

    [Fork] forks the current process; the child runs {!Worker.serve}
    on [handler] directly, inheriting all in-memory context (the
    shared {!Parallel.Pool} is quiesced before the fork and reset in
    the child).  OCaml 5 forbids forking in a process that has ever
    spawned a second domain, so [Fork] only works before any parallel
    region runs ({!Parallel.Pool.fork_safe}); otherwise the run
    degrades in-process with a [fork-unavailable] event.  [Exec argv]
    spawns [argv] — e.g. [rdca worker] — whose serve loop must
    understand the task payloads on its own; immune to the fork
    restriction, and what the CLI uses by default so worker processes
    are fresh images. *)
type spawn = Fork | Exec of string array

(** Supervisor-driven failure injection ([--chaos]): on a task's
    {e first} attempt, a deterministic hash of [chaos_seed] and the
    task id kills the worker mid-task with probability
    [kill_fraction], or stalls it past every deadline with probability
    [stall_fraction].  Retries are never sabotaged, so chaotic runs
    still complete — with identical results, which is the point. *)
type chaos = {
  kill_fraction : float;
  stall_fraction : float;
  chaos_seed : int;
}

type config = {
  workers : int;  (** worker processes; [<= 0] runs in-process *)
  spawn : spawn;
  deadline : float;  (** per-task wall-clock limit; [<= 0] disables *)
  retries : int;  (** extra attempts per task after the first *)
  backoff : float;
      (** base backoff delay; attempt [a]'s requeue waits
          [backoff * 2^a * jitter] with jitter in [0.75, 1.25) *)
  heartbeat : float;  (** worker heartbeat period *)
  stall_timeout : float;
      (** kill a busy worker silent this long; [<= 0] disables *)
  seed : int;  (** jitter derivation *)
  chaos : chaos option;
}

val default : config
(** 2 workers, [Fork], 60 s deadline, 3 retries, 0.25 s backoff,
    0.2 s heartbeat, 2 s stall timeout, no chaos. *)

(** What finally executed the tasks. *)
type mode = Processes of int | Pool of int | Sequential

type outcome = {
  results : (int * Rdca_json.Jsonout.t) list;
      (** completed (task id, result value), ascending id *)
  failures : (int * string) list;
      (** permanently failed tasks, ascending id *)
  events : Event.t list;  (** chronological supervision log *)
  dispatches : int;  (** task sends, including retries *)
  mode : mode;
}

val run :
  ?on_result:(int -> Rdca_json.Jsonout.t -> unit) ->
  ?skip:int list ->
  config ->
  handler:(Rdca_json.Jsonout.t -> Rdca_json.Jsonout.t) ->
  tasks:Rdca_json.Jsonout.t array ->
  outcome
(** [run config ~handler ~tasks] executes [handler tasks.(i)] for
    every [i] and collects the results.  [handler] is what [Fork]
    children and the in-process fallback execute; [Exec] workers run
    their own equivalent.  [on_result] fires once per task as its
    first result is accepted — the checkpointing hook.  [skip] lists
    task ids already completed (resume): they are neither dispatched
    nor reported. *)
