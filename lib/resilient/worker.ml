module J = Rdca_json.Jsonout
module Jin = Rdca_json.Jsonin

let obj_type v = Option.bind (Jin.member "type" v) Jin.to_string

let serve ?(heartbeat = 0.2) ~handler ~input ~output () =
  (* One writer mutex serialises the main loop's acks/results with the
     background heartbeats. *)
  let wlock = Mutex.create () in
  let dead = ref false in
  let send frame =
    Mutex.lock wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wlock)
      (fun () ->
        if not !dead then
          try Frame.write output frame
          with Unix.Unix_error _ | Sys_error _ -> dead := true)
  in
  let stop_hb = Atomic.make false in
  let hb_thread =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_hb) do
          Thread.delay heartbeat;
          if not (Atomic.get stop_hb) then send (J.Obj [ ("type", J.String "hb") ])
        done)
      ()
  in
  let dec = Frame.decoder () in
  let rec loop () =
    match (try Frame.read input dec with Frame.Protocol_error _ -> None) with
    | None -> ()
    | Some frame -> (
        match obj_type frame with
        | Some "exit" -> ()
        | Some "task" ->
            let id =
              match Option.bind (Jin.member "id" frame) Jin.to_int with
              | Some id -> id
              | None -> -1
            in
            send (J.Obj [ ("type", J.String "ack"); ("id", J.Int id) ]);
            (match Option.bind (Jin.member "chaos" frame) Jin.to_string with
            | Some "kill" ->
                (* Abrupt death, as if the process segfaulted or was
                   OOM-killed: no farewell frame, no cleanup. *)
                Unix._exit 137
            | Some "stall" ->
                (* Alive (heartbeats continue) but stuck: the
                   supervisor's per-task deadline must fire. *)
                Thread.delay 3600.0
            | _ -> ());
            let payload =
              match Jin.member "payload" frame with Some p -> p | None -> J.Null
            in
            (match handler payload with
            | value ->
                send
                  (J.Obj
                     [
                       ("type", J.String "result"); ("id", J.Int id);
                       ("value", value);
                     ])
            | exception e ->
                send
                  (J.Obj
                     [
                       ("type", J.String "error"); ("id", J.Int id);
                       ("message", J.String (Printexc.to_string e));
                     ]));
            if not !dead then loop ()
        | _ -> loop ())
  in
  loop ();
  Atomic.set stop_hb true;
  (* The heartbeat thread wakes within one period; joining keeps the
     fork-mode child from racing process exit against a last write. *)
  Thread.join hb_thread
