(** Worker side of the supervision protocol.

    A worker reads task frames from one pipe, runs a handler on each
    payload and writes result frames to another, with a background
    thread emitting heartbeats so the supervisor can tell a stalled
    worker from a slow one.

    Frames understood (all JSON objects with a ["type"] field):
    - [task] — [{type, id, attempt, payload, chaos?}]; the worker
      replies [ack] immediately, then [result] (with [value]) on
      success or [error] (with [message]) if the handler raises.
    - [exit] — finish the serve loop.

    The optional [chaos] field is the supervisor-driven failure
    injection used by the [--chaos] test mode: ["kill"] makes the
    worker die abruptly after the ack (exercising the supervisor's
    death/requeue path), ["stall"] makes it sleep long past any
    deadline while heartbeats continue (exercising the deadline
    kill). *)

val serve :
  ?heartbeat:float ->
  handler:(Rdca_json.Jsonout.t -> Rdca_json.Jsonout.t) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  unit
(** [serve ~handler ~input ~output ()] runs the frame loop until an
    [exit] frame or end of file on [input].  [heartbeat] (default
    [0.2]s) is the background heartbeat period.  Never raises on
    protocol or handler errors; a dead supervisor pipe ends the
    loop. *)
