type t = { s : Solver.t; mutable tru : Solver.lit }

let create s = { s; tru = -1 }
let solver b = b.s
let fresh b = Solver.pos (Solver.new_var b.s)

let const b v =
  if b.tru < 0 then begin
    let l = fresh b in
    Solver.add_clause b.s [ l ];
    b.tru <- l
  end;
  if v then b.tru else Solver.lnot b.tru

let and_ b xs =
  match Array.length xs with
  | 0 -> const b true
  | 1 -> xs.(0)
  | n ->
      let y = fresh b in
      let long = ref [ y ] in
      for k = 0 to n - 1 do
        Solver.add_clause b.s [ Solver.lnot y; xs.(k) ];
        long := Solver.lnot xs.(k) :: !long
      done;
      Solver.add_clause b.s !long;
      y

let or_ b xs =
  match Array.length xs with
  | 0 -> const b false
  | 1 -> xs.(0)
  | n ->
      let y = fresh b in
      let long = ref [ Solver.lnot y ] in
      for k = 0 to n - 1 do
        Solver.add_clause b.s [ y; Solver.lnot xs.(k) ];
        long := xs.(k) :: !long
      done;
      Solver.add_clause b.s !long;
      y

let xor_ b x y =
  let z = fresh b in
  let n = Solver.lnot in
  Solver.add_clause b.s [ n z; x; y ];
  Solver.add_clause b.s [ n z; n x; n y ];
  Solver.add_clause b.s [ z; n x; y ];
  Solver.add_clause b.s [ z; x; n y ];
  z

let equiv b x y = Solver.lnot (xor_ b x y)

let xor_chain b xs =
  let acc = ref xs.(0) in
  for k = 1 to Array.length xs - 1 do
    acc := xor_ b !acc xs.(k)
  done;
  !acc

(* One clause per input combination: the conjunction of fanin values
   matching index [idx] forces the output to the table's bit. *)
let cell b tt arity fanins =
  let y = fresh b in
  for idx = 0 to (1 lsl arity) - 1 do
    let cl = ref [ (if Logic.Truth.eval tt idx then y else Solver.lnot y) ] in
    for k = 0 to arity - 1 do
      let l = fanins.(k) in
      cl := (if idx land (1 lsl k) <> 0 then Solver.lnot l else l) :: !cl
    done;
    Solver.add_clause b.s !cl
  done;
  y

let gate b (g : Netlist.Gate.t) fanins =
  let n = Array.length fanins in
  (match Netlist.Gate.arity g with
  | Some a when a <> n ->
      invalid_arg
        (Printf.sprintf "Cnf.gate: %s expects %d fanins, got %d"
           (Netlist.Gate.name g) a n)
  | Some _ -> ()
  | None ->
      if n < 2 then
        invalid_arg
          (Printf.sprintf "Cnf.gate: variadic %s needs >= 2 fanins"
             (Netlist.Gate.name g)));
  match g with
  | Netlist.Gate.Input _ -> invalid_arg "Cnf.gate: Input has no fanins"
  | Const v -> const b v
  | Buf -> fanins.(0)
  | Not -> Solver.lnot fanins.(0)
  | And -> and_ b fanins
  | Or -> or_ b fanins
  | Nand -> Solver.lnot (and_ b fanins)
  | Nor -> Solver.lnot (or_ b fanins)
  | Xor -> xor_chain b fanins
  | Xnor -> Solver.lnot (xor_chain b fanins)
  | Cell c -> cell b c.tt c.arity fanins
