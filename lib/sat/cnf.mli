(** Tseitin CNF encoding of gate-level logic into a {!Solver}.

    A builder wraps a solver and hands out literals for logic
    functions: each [and_]/[or_]/[xor_] introduces one fresh variable
    plus the standard Tseitin clauses, so the encoding is linear in
    the circuit and equisatisfiable by construction.  {!gate} encodes
    any {!Netlist.Gate.t} — [Cell] instances expand their truth table
    into one clause per input combination (at most [2^5] by the
    {!Logic.Truth} width limit).

    [Buf]/[Not] return the fanin literal (complemented), creating no
    variable: inverters are free, as in the AIG. *)

type t

(** [create solver] is a builder allocating variables in [solver]. *)
val create : Solver.t -> t

val solver : t -> Solver.t

(** [fresh b] is a fresh unconstrained variable, as a positive
    literal. *)
val fresh : t -> Solver.lit

(** [const b v] is a literal constrained to the constant [v] (one
    shared variable per builder). *)
val const : t -> bool -> Solver.lit

(** Derived connectives.  Empty [and_] is constant 1, empty [or_]
    constant 0; singletons return their literal unchanged. *)

val and_ : t -> Solver.lit array -> Solver.lit

val or_ : t -> Solver.lit array -> Solver.lit

val xor_ : t -> Solver.lit -> Solver.lit -> Solver.lit

(** [equiv b x y] is the XNOR literal — 1 iff [x = y]. *)
val equiv : t -> Solver.lit -> Solver.lit -> Solver.lit

(** [gate b g fanins] encodes one netlist gate over fanin literals and
    returns its output literal.
    @raise Invalid_argument on [Input] gates or arity mismatch. *)
val gate : t -> Netlist.Gate.t -> Solver.lit array -> Solver.lit
