(** A small CDCL SAT solver with Tseitin circuit encoding.

    {!Solver} is the CDCL core (watched literals, first-UIP learning,
    VSIDS-lite, phase saving, Luby restarts, incremental assumptions);
    {!Cnf} encodes {!Netlist.Gate} logic on top of it.  The network
    don't-care analysis ({!Rdca_dc.Dc}) is the client. *)

module Solver = Solver
module Cnf = Cnf
