(* CDCL in the MiniSat style, sized for window miters: two watched
   literals per clause, first-UIP learning with backjumping, VSIDS
   activities with a linear-scan pick (instances are hundreds of
   variables, not millions — a heap would be noise), phase saving and
   Luby restarts.  Clauses live in int arrays; watch lists are
   compacted in place during propagation. *)

type lit = int

let pos v = 2 * v

let neg v = (2 * v) + 1

let lnot l = l lxor 1

let var_of l = l lsr 1

let is_neg l = l land 1 = 1

type clause = int array

type t = {
  mutable nvars : int;
  mutable clauses : clause array;  (* growable arena, [nclauses] live *)
  mutable nclauses : int;
  mutable watches : int array array;  (* per literal: clause indices *)
  mutable watch_len : int array;
  mutable assigns : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* clause index, -1 for decisions *)
  mutable activity : float array;
  mutable phase : bool array;  (* saved polarity *)
  mutable trail : int array;  (* assigned literals in order *)
  mutable trail_len : int;
  mutable trail_lim : int array;  (* decision-level boundaries *)
  mutable trail_lim_len : int;
  mutable qhead : int;
  mutable units : int list;  (* unit clauses pending level-0 enqueue *)
  mutable empty_clause : bool;
  mutable var_inc : float;
  mutable model : bool array;  (* snapshot of the last Sat answer *)
  mutable have_model : bool;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make 16 [||];
    watch_len = Array.make 16 0;
    assigns = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    trail = Array.make 16 0;
    trail_len = 0;
    trail_lim = Array.make 16 0;
    trail_lim_len = 0;
    qhead = 0;
    units = [];
    empty_clause = false;
    var_inc = 1.0;
    model = [||];
    have_model = false;
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
  }

let nvars t = t.nvars

let conflicts t = t.n_conflicts

let decisions t = t.n_decisions

let propagations t = t.n_propagations

let restarts t = t.n_restarts

let grow_int a n default =
  if n <= Array.length a then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  let n = t.nvars in
  t.assigns <- grow_int t.assigns n (-1);
  t.assigns.(v) <- -1;
  t.level <- grow_int t.level n 0;
  t.reason <- grow_int t.reason n (-1);
  t.reason.(v) <- -1;
  (if 2 * n > Array.length t.watches then begin
     let w = Array.make (max (2 * n) (2 * Array.length t.watches)) [||] in
     Array.blit t.watches 0 w 0 (Array.length t.watches);
     t.watches <- w;
     let wl = Array.make (Array.length w) 0 in
     Array.blit t.watch_len 0 wl 0 (Array.length t.watch_len);
     t.watch_len <- wl
   end);
  (if n > Array.length t.activity then begin
     let a = Array.make (max n (2 * Array.length t.activity)) 0.0 in
     Array.blit t.activity 0 a 0 (Array.length t.activity);
     t.activity <- a;
     let p = Array.make (Array.length a) false in
     Array.blit t.phase 0 p 0 (Array.length t.phase);
     t.phase <- p
   end);
  t.activity.(v) <- 0.0;
  t.phase.(v) <- false;
  t.trail <- grow_int t.trail n 0;
  v

let lit_value t l =
  let a = t.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let watch t l ci =
  let len = t.watch_len.(l) in
  let arr = t.watches.(l) in
  let arr =
    if len >= Array.length arr then begin
      let b = Array.make (max 4 (2 * Array.length arr)) 0 in
      Array.blit arr 0 b 0 len;
      t.watches.(l) <- b;
      b
    end
    else arr
  in
  arr.(len) <- ci;
  t.watch_len.(l) <- len + 1

let push_clause t c =
  if t.nclauses >= Array.length t.clauses then begin
    let b = Array.make (2 * Array.length t.clauses) [||] in
    Array.blit t.clauses 0 b 0 t.nclauses;
    t.clauses <- b
  end;
  let ci = t.nclauses in
  t.clauses.(ci) <- c;
  t.nclauses <- ci + 1;
  watch t c.(0) ci;
  watch t c.(1) ci;
  ci

let add_clause t lits =
  List.iter
    (fun l ->
      if l < 0 || var_of l >= t.nvars then
        invalid_arg "Solver.add_clause: literal out of range")
    lits;
  (* Sort, merge duplicates, drop tautologies. *)
  let lits = List.sort_uniq compare lits in
  let taut =
    let rec chk = function
      | a :: (b :: _ as rest) -> (a lxor b = 1 && var_of a = var_of b) || chk rest
      | _ -> false
    in
    chk lits
  in
  if not taut then
    match lits with
    | [] -> t.empty_clause <- true
    | [ l ] -> t.units <- l :: t.units
    | _ -> ignore (push_clause t (Array.of_list lits))

let decision_level t = t.trail_lim_len

let enqueue t l reason =
  (* Precondition: l is unassigned. *)
  let v = var_of l in
  t.assigns.(v) <- (if is_neg l then 0 else 1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- not (is_neg l);
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

(* Backtrack to decision level [lvl], undoing assignments. *)
let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_len - 1 downto bound do
      let v = var_of t.trail.(i) in
      t.assigns.(v) <- -1;
      t.reason.(v) <- -1
    done;
    t.trail_len <- bound;
    t.qhead <- min t.qhead bound;
    t.trail_lim_len <- lvl
  end

let new_decision_level t =
  if t.trail_lim_len >= Array.length t.trail_lim then begin
    let b = Array.make (2 * Array.length t.trail_lim) 0 in
    Array.blit t.trail_lim 0 b 0 t.trail_lim_len;
    t.trail_lim <- b
  end;
  t.trail_lim.(t.trail_lim_len) <- t.trail_len;
  t.trail_lim_len <- t.trail_lim_len + 1

(* Propagate until fixpoint; return the index of a conflicting clause,
   or -1. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < t.trail_len do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    (* Clauses watching (lnot p) just lost that literal. *)
    let fl = lnot p in
    let ws = t.watches.(fl) in
    let len = t.watch_len.(fl) in
    let kept = ref 0 in
    let i = ref 0 in
    while !i < len do
      let ci = ws.(!i) in
      incr i;
      let c = t.clauses.(ci) in
      (* Normalise: the false literal sits at c.(1). *)
      if c.(0) = fl then begin
        c.(0) <- c.(1);
        c.(1) <- fl
      end;
      if lit_value t c.(0) = 1 then begin
        (* Satisfied: keep the watch. *)
        ws.(!kept) <- ci;
        incr kept
      end
      else begin
        (* Look for a replacement watch. *)
        let n = Array.length c in
        let found = ref false in
        let k = ref 2 in
        while (not !found) && !k < n do
          if lit_value t c.(!k) <> 0 then begin
            c.(1) <- c.(!k);
            c.(!k) <- fl;
            watch t c.(1) ci;
            found := true
          end
          else incr k
        done;
        if not !found then begin
          (* Unit or conflicting: the watch stays. *)
          ws.(!kept) <- ci;
          incr kept;
          if lit_value t c.(0) = 0 then begin
            (* Conflict: keep remaining watches, stop. *)
            confl := ci;
            while !i < len do
              ws.(!kept) <- ws.(!i);
              incr kept;
              incr i
            done
          end
          else enqueue t c.(0) ci
        end
      end
    done;
    t.watch_len.(fl) <- !kept
  done;
  !confl

let var_decay = 0.95

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

(* First-UIP conflict analysis.  Returns the learnt clause (asserting
   literal first) and the backjump level. *)
let analyze t confl =
  let seen = Array.make t.nvars false in
  let learnt = ref [] in
  let btlevel = ref 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (t.trail_len - 1) in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not seen.(v)) && t.level.(v) > 0 then begin
            seen.(v) <- true;
            bump t v;
            if t.level.(v) >= decision_level t then incr counter
            else begin
              learnt := q :: !learnt;
              if t.level.(v) > !btlevel then btlevel := t.level.(v)
            end
          end
        end)
      c;
    (* Next literal to resolve on: walk the trail backwards. *)
    while not seen.(var_of t.trail.(!index)) do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    let v = var_of !p in
    seen.(v) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else confl := t.reason.(v)
  done;
  (lnot !p :: !learnt, !btlevel)

(* Install a learnt clause and enqueue its asserting literal. *)
let record_learnt t learnt =
  match learnt with
  | [ l ] ->
      cancel_until t 0;
      t.units <- l :: t.units;
      if t.assigns.(var_of l) < 0 then enqueue t l (-1);
      lit_value t l <> 0
  | l :: _ ->
      let ci = push_clause t (Array.of_list learnt) in
      enqueue t l ci;
      true
  | [] -> false

(* The Luby restart sequence, 1-based: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - ((1 lsl (!k - 1)) - 1))

type result = Sat | Unsat

let save_model t =
  if Array.length t.model < t.nvars then t.model <- Array.make t.nvars false;
  for v = 0 to t.nvars - 1 do
    t.model.(v) <- (if t.assigns.(v) >= 0 then t.assigns.(v) = 1 else t.phase.(v))
  done;
  t.have_model <- true

let value t v =
  if not t.have_model then invalid_arg "Solver.value: last solve was not Sat";
  if v < 0 || v >= t.nvars then invalid_arg "Solver.value: variable out of range";
  t.model.(v)

(* Pick the unassigned variable with the highest activity (linear
   scan: instances are small by construction). *)
let pick_branch t =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to t.nvars - 1 do
    if t.assigns.(v) < 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

let solve_body ?(assumptions = []) t =
  t.have_model <- false;
  if t.empty_clause then Unsat
  else begin
    List.iter
      (fun l ->
        if l < 0 || var_of l >= t.nvars then
          invalid_arg "Solver.solve: assumption out of range")
      assumptions;
    let assumps = Array.of_list assumptions in
    cancel_until t 0;
    (* Level-0 units (original and learnt). *)
    let ok = ref true in
    List.iter
      (fun l ->
        if !ok then
          match lit_value t l with
          | 0 -> ok := false
          | 1 -> ()
          | _ -> enqueue t l (-1))
      t.units;
    if (not !ok) || propagate t >= 0 then Unsat
    else begin
      let result = ref None in
      let restart_no = ref 0 in
      while !result = None do
        incr restart_no;
        let budget = 64 * luby !restart_no in
        cancel_until t 0;
        let local_conflicts = ref 0 in
        let restart = ref false in
        while !result = None && not !restart do
          let confl = propagate t in
          if confl >= 0 then begin
            t.n_conflicts <- t.n_conflicts + 1;
            incr local_conflicts;
            if decision_level t = 0 then result := Some Unsat
            else begin
              let learnt, btlevel = analyze t confl in
              cancel_until t btlevel;
              if not (record_learnt t learnt) then result := Some Unsat
              else begin
                t.var_inc <- t.var_inc /. var_decay;
                if !local_conflicts >= budget then begin
                  restart := true;
                  t.n_restarts <- t.n_restarts + 1
                end
              end
            end
          end
          else begin
            (* Push pending assumptions first, in order. *)
            let dl = decision_level t in
            if dl < Array.length assumps then begin
              let a = assumps.(dl) in
              match lit_value t a with
              | 0 -> result := Some Unsat
              | 1 ->
                  (* Already implied: still open a level so the
                     prefix-of-assumptions invariant holds. *)
                  new_decision_level t;
                  (* Re-assert as a (redundant) decision marker by
                     pushing nothing; the level boundary is enough. *)
                  ()
              | _ ->
                  new_decision_level t;
                  t.n_decisions <- t.n_decisions + 1;
                  enqueue t a (-1)
            end
            else begin
              match pick_branch t with
              | -1 ->
                  save_model t;
                  result := Some Sat
              | v ->
                  new_decision_level t;
                  t.n_decisions <- t.n_decisions + 1;
                  enqueue t (if t.phase.(v) then pos v else neg v) (-1)
            end
          end
        done
      done;
      cancel_until t 0;
      match !result with Some r -> r | None -> assert false
    end
  end

(* Always-on profiling counters: per-call deltas of the solver's own
   statistics, so --profile runs attribute SAT search effort no
   matter which subsystem (dc windows, atpg miters) owns the
   solver. *)
let prof_conflicts = Prof.counter "sat.conflicts"
let prof_decisions = Prof.counter "sat.decisions"
let prof_propagations = Prof.counter "sat.propagations"
let prof_restarts = Prof.counter "sat.restarts"

let solve ?assumptions t =
  let c0 = t.n_conflicts
  and d0 = t.n_decisions
  and p0 = t.n_propagations
  and r0 = t.n_restarts in
  let r = solve_body ?assumptions t in
  Prof.add prof_conflicts (t.n_conflicts - c0);
  Prof.add prof_decisions (t.n_decisions - d0);
  Prof.add prof_propagations (t.n_propagations - p0);
  Prof.add prof_restarts (t.n_restarts - r0);
  r
