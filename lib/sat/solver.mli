(** A small CDCL SAT solver.

    The engine behind the network don't-care computation
    ({!Rdca_dc.Dc}): conflict-driven clause learning with two watched
    literals per clause, first-UIP conflict analysis with backjumping,
    VSIDS-style variable activities (bump on analysis, exponential
    decay), phase saving and Luby restarts — the standard MiniSat
    recipe at demonstration scale.

    Literals are packed integers [2*var + sign] ([sign = 1] for the
    negated form), the encoding the AIG already uses for its edges.
    Solving is incremental over {e assumptions}: the clause database
    persists across {!solve} calls, so one window miter serves the
    whole sweep of fanin-pattern queries. *)

type t

(** [create ()] is an empty solver (no variables, no clauses). *)
val create : unit -> t

(** [new_var t] allocates a fresh variable and returns its index. *)
val new_var : t -> int

val nvars : t -> int

(** Literal packing. *)

type lit = int

(** [pos v] / [neg v] are the positive / negated literals of [v]. *)
val pos : int -> lit

val neg : int -> lit

(** [lnot l] complements a literal. *)
val lnot : lit -> lit

val var_of : lit -> int

val is_neg : lit -> bool

(** [add_clause t lits] adds a clause.  Tautologies are dropped and
    duplicate literals merged; the empty clause makes the instance
    trivially unsatisfiable.
    @raise Invalid_argument on an out-of-range literal. *)
val add_clause : t -> lit list -> unit

type result = Sat | Unsat

(** [solve ?assumptions t] decides satisfiability of the clause
    database under the given assumption literals.  The solver state
    (learnt clauses, activities, saved phases) persists, so repeated
    calls with different assumptions are cheap. *)
val solve : ?assumptions:lit list -> t -> result

(** [value t v] is the value of variable [v] in the model found by the
    last [Sat] answer.  Unconstrained variables report their saved
    phase (a valid completion).
    @raise Invalid_argument if the last call did not return [Sat]. *)
val value : t -> int -> bool

(** Cumulative statistics over the solver's lifetime.  Per-solve
    deltas of all four are also published through [Prof] as the
    always-on counters [sat.conflicts] / [sat.decisions] /
    [sat.propagations] / [sat.restarts], so profiled runs attribute
    SAT search effort regardless of which subsystem owns the
    solver. *)

val conflicts : t -> int

val decisions : t -> int

val propagations : t -> int

val restarts : t -> int
