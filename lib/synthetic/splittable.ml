type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* The SplitMix64 finaliser: xor-shift / multiply avalanche rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let stream ~seed ~index =
  (* Spread the key over the state space, then finalise twice so that
     nearby (seed, index) pairs land in unrelated stream positions. *)
  let key =
    Int64.add (Int64.of_int seed) (Int64.mul golden (Int64.of_int index))
  in
  { state = mix64 (mix64 key) }

let split t = { state = mix64 (next_int64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Splittable.int: bound must be > 0";
  (* Rejection sampling on the top 62 bits keeps the draw unbiased. *)
  let mask = max_int in
  let rec go () =
    let v = Int64.to_int (next_int64 t) land mask in
    let r = v mod bound in
    if v - r > mask - bound + 1 then go () else r
  in
  go ()

let float t bound =
  let v = Int64.to_int (next_int64 t) land max_int in
  bound *. (float_of_int v /. (float_of_int max_int +. 1.))

let to_random_state t =
  Random.State.make
    (Array.init 4 (fun _ -> Int64.to_int (next_int64 t) land max_int))
