(** Splittable pseudo-random streams for deterministic parallel
    generation.

    A SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014): the
    state advances by the 64-bit golden-gamma constant and each output
    is a strong avalanche mix of the state.  The point here is not
    statistical novelty but {e keying}: {!stream} derives an
    independent-looking stream from a [(seed, index)] pair, so a
    parallel grid can generate its per-task random inputs {e inside}
    the task — task [i] draws from [stream ~seed ~index:i] — and the
    result is identical at every job count and independent of
    scheduling order, with no sequential pre-generation pass.

    {!to_random_state} bridges to [Random.State.t] so existing
    generators ({!Synth_gen}) are reused unchanged. *)

type t

val stream : seed:int -> index:int -> t
(** The stream keyed by [(seed, index)].  Equal keys give equal
    streams; distinct keys give streams with no detectable relation
    (two finaliser rounds separate them). *)

val split : t -> t
(** A new stream forked off [t]; [t] itself advances by one draw. *)

val next_int64 : t -> int64
(** The next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val to_random_state : t -> Random.State.t
(** A [Random.State.t] seeded from four draws of [t] (which advances),
    for feeding stdlib-based generators from a keyed stream. *)
