type entry = {
  name : string;
  ni : int;
  no : int;
  dc_percent : float;
  ecf : float;
  cf : float;
}

let e name ni no dc_percent ecf cf = { name; ni; no; dc_percent; ecf; cf }

let entries =
  [
    e "bench" 6 8 68.9 0.533 0.540;
    e "fout" 6 10 41.4 0.351 0.338;
    e "p3" 8 14 79.6 0.671 0.805;
    e "p1" 8 18 77.7 0.641 0.788;
    e "exp" 8 18 77.2 0.644 0.788;
    e "test4" 8 30 71.5 0.560 0.557;
    e "ex1010" 10 10 70.3 0.540 0.539;
    e "exam" 10 10 86.8 0.768 0.802;
    e "t4" 12 8 43.9 0.477 0.867;
    e "random1" 12 12 68.6 0.52 0.49;
    e "random2" 12 12 68.6 0.52 0.667;
    e "random3" 12 12 68.6 0.52 0.826;
  ]

let find name = List.find (fun en -> en.name = name) entries
let find_opt name = List.find_opt (fun en -> en.name = name) entries

(* Standard dynamic-programming edit distance; the suite has twelve
   short names, so no cleverness needed. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

let suggestions name =
  let lname = String.lowercase_ascii name in
  let scored =
    List.filter_map
      (fun en ->
        let d = edit_distance lname en.name in
        let substring =
          String.length lname >= 2
          && String.length en.name >= String.length lname
          && List.exists
               (fun i ->
                 String.sub en.name i (String.length lname) = lname)
               (List.init
                  (String.length en.name - String.length lname + 1)
                  Fun.id)
        in
        if d <= 2 || substring then Some (d, en.name) else None)
      entries
  in
  List.map snd (List.sort compare scored)

(* Invert E[C^f] = f0^2 + f1^2 + fdc^2 for the care-phase split:
   given fdc and E, f0 and f1 are the roots of
   x^2 - (1 - fdc) x + ((1-fdc)^2 - (E - fdc^2))/2.
   Falls back to a balanced split when the quadratic has no real
   solution (E below the balanced minimum). *)
let care_split ~fdc ~ecf =
  let s = 1.0 -. fdc in
  let p = ((s *. s) -. (ecf -. (fdc *. fdc))) /. 2.0 in
  let disc = (s *. s) -. (4.0 *. p) in
  if disc < 0.0 then (s /. 2.0, s /. 2.0)
  else
    let r = sqrt disc in
    (((s +. r) /. 2.0), ((s -. r) /. 2.0))

let seed_of_name name =
  let h = Hashtbl.hash name in
  [| h; h lxor 0x9e3779b9; String.length name |]

let load entry =
  let rng = Random.State.make (seed_of_name entry.name) in
  let size = 1 lsl entry.ni in
  let fdc = entry.dc_percent /. 100.0 in
  let f_major, f_minor = care_split ~fdc ~ecf:entry.ecf in
  (* The published benchmarks are mostly off-heavy; put the major
     fraction on the off-set. *)
  let on_count = int_of_float (Float.round (f_minor *. float_of_int size)) in
  let off_count = int_of_float (Float.round (f_major *. float_of_int size)) in
  let params =
    {
      (Synth_gen.default_params ~ni:entry.ni ~dc_frac:fdc
         ~target_cf:(Some entry.cf))
      with
      Synth_gen.on_count;
      off_count;
    }
  in
  Synth_gen.spec ~rng ~no:entry.no params

let load_by_name name = load (find name)

let load_all () = List.map (fun en -> (en, load en)) entries
