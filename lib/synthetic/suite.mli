(** The benchmark suite of the paper's Table 1.

    The nine MCNC benchmarks with explicit DC sets are not
    redistributable here, so each is replaced by a seeded synthetic
    stand-in matching the published (inputs, outputs, %DC, C^f) row —
    the statistics the paper's algorithms actually depend on (see
    DESIGN.md).  [random1]..[random3] were synthetic in the paper too
    and are generated exactly as described there.  Generation is
    deterministic per name. *)

type entry = {
  name : string;
  ni : int;
  no : int;
  dc_percent : float;  (** Table 1 "%DC" *)
  ecf : float;  (** Table 1 "E[C^f]" — fixes the on/off skew *)
  cf : float;  (** Table 1 "C^f" *)
}

(** [entries] — the twelve Table 1 rows. *)
val entries : entry list

(** [find name] looks an entry up. @raise Not_found. *)
val find : string -> entry

(** [find_opt name] is the exception-free {!find}. *)
val find_opt : string -> entry option

(** [suggestions name] is the benchmark names close to [name] (edit
    distance <= 2, or containing it as a substring), best first — for
    "did you mean" diagnostics on a failed lookup. *)
val suggestions : string -> string list

(** [load entry] generates the deterministic stand-in spec. *)
val load : entry -> Pla.Spec.t

(** [load_by_name name] is [load (find name)]. *)
val load_by_name : string -> Pla.Spec.t

(** [load_all ()] is [(entry, spec)] for the whole suite, in Table 1
    order.  Generation cost is a few seconds for the 12-input rows. *)
val load_all : unit -> (entry * Pla.Spec.t) list
