module Spec = Pla.Spec

type params = {
  ni : int;
  on_count : int;
  off_count : int;
  target_cf : float option;
  tolerance : float;
  max_steps : int;
}

let default_params ~ni ~dc_frac ~target_cf =
  let size = 1 lsl ni in
  let dc = int_of_float (Float.round (dc_frac *. float_of_int size)) in
  let care = size - dc in
  let on = care / 2 in
  {
    ni;
    on_count = on;
    off_count = care - on;
    target_cf;
    tolerance = 0.01;
    max_steps = 60 * size;
  }

(* Phase encoding in the working table: 0 = off, 1 = on, 2 = dc. *)
let phase_of_code = function
  | 0 -> Spec.Off
  | 1 -> Spec.On
  | _ -> Spec.Dc

(* Same-phase ordered-pair count of a code table. *)
let same_pairs ~ni table =
  let size = 1 lsl ni in
  let count = ref 0 in
  for m = 0 to size - 1 do
    let p = Bytes.get table m in
    for j = 0 to ni - 1 do
      if Bytes.get table (m lxor (1 lsl j)) = p then incr count
    done
  done;
  !count

(* Change in same-pair count if minterm [m]'s code becomes [q]. *)
let delta_for ~ni table m q =
  let p = Bytes.get table m in
  if p = q then 0
  else begin
    let d = ref 0 in
    for j = 0 to ni - 1 do
      let pn = Bytes.get table (m lxor (1 lsl j)) in
      if pn = p then decr d;
      if pn = q then incr d
    done;
    2 * !d (* ordered pairs: both directions *)
  end

(* Random shuffled code assignment with exact counts. *)
let random_codes ~rng ~size ~on ~off =
  let codes = Bytes.make size '\002' in
  let order = Array.init size (fun i -> i) in
  for i = size - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  for i = 0 to on - 1 do
    Bytes.set codes order.(i) '\001'
  done;
  for i = on to on + off - 1 do
    Bytes.set codes order.(i) '\000'
  done;
  codes

(* Clustered seed: recursively split the space on random variables and
   hand whole sub-cubes to the phase with the largest remaining quota.
   Produces cube-aligned structure (high complexity factor). *)
(* Maximally clustered seed.  By the edge-isoperimetric inequality on
   the hypercube (Harper/Lindsey/Bernstein/Hart), initial segments of
   the lexicographic (integer) order minimise the edge boundary, i.e.
   maximise same-phase adjacency.  We lay the three phases out as
   nested initial segments of a randomly bit-permuted integer order,
   largest phase first. *)
let clustered_codes ~rng ~ni ~on ~off =
  let size = 1 lsl ni in
  let codes = Bytes.make size '\000' in
  let order = Array.init ni (fun i -> i) in
  for i = ni - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let rank m =
    let r = ref 0 in
    for j = 0 to ni - 1 do
      if m land (1 lsl order.(j)) <> 0 then r := !r lor (1 lsl j)
    done;
    !r
  in
  (* slots: (code, count), largest first *)
  let slots =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      [ ('\002', size - on - off); ('\001', on); ('\000', off) ]
  in
  let bounds =
    let acc = ref 0 in
    List.map
      (fun (code, count) ->
        acc := !acc + count;
        (code, !acc))
      slots
  in
  for m = 0 to size - 1 do
    let r = rank m in
    let code =
      let rec pick = function
        | [] -> '\000'
        | (code, upper) :: rest -> if r < upper then code else pick rest
      in
      pick bounds
    in
    Bytes.set codes m code
  done;
  codes

(* Anti-clustered seed: minterms ordered checkerboard-first (even
   parity before odd, random tie order), then handed to the phases as
   nested segments.  A balanced two-phase split along this order is
   exactly the parity function (complexity factor 0), so seeds land at
   the bottom of the reachable range. *)
let checkerboard_codes ~rng ~ni ~on ~off =
  let size = 1 lsl ni in
  let codes = Bytes.make size '\000' in
  let order = Array.init size (fun i -> i) in
  for i = size - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let rank = Array.make size 0 in
  let next = ref 0 in
  let assign_parity p =
    Array.iter
      (fun m ->
        if Bitvec.Minterm.popcount m land 1 = p then begin
          rank.(m) <- !next;
          incr next
        end)
      order
  in
  assign_parity 0;
  assign_parity 1;
  let slots =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      [ ('\002', size - on - off); ('\001', on); ('\000', off) ]
  in
  let bounds =
    let acc = ref 0 in
    List.map
      (fun (code, count) ->
        acc := !acc + count;
        (code, !acc))
      slots
  in
  for m = 0 to size - 1 do
    let r = rank.(m) in
    let code =
      let rec pick = function
        | [] -> '\000'
        | (code, upper) :: rest -> if r < upper then code else pick rest
      in
      pick bounds
    in
    Bytes.set codes m code
  done;
  codes

let anneal ~rng ~ni ~target ~tolerance ~max_steps codes =
  let size = 1 lsl ni in
  let total = float_of_int (ni * size) in
  let pairs = ref (same_pairs ~ni codes) in
  let cf () = float_of_int !pairs /. total in
  let cost () = abs_float (cf () -. target) in
  (* One swap moves cf by O(1/2^ni); the temperature must sit well
     below that scale or annealing degenerates into a random walk that
     drifts toward the entropy-favoured (random) configuration. *)
  let temp0 = 0.2 /. float_of_int size in
  let step = ref 0 in
  while cost () > tolerance && !step < max_steps do
    incr step;
    let a = Random.State.int rng size in
    let b = Random.State.int rng size in
    let pa = Bytes.get codes a and pb = Bytes.get codes b in
    if pa <> pb then begin
      let before = cost () in
      (* apply swap with incremental pair updates *)
      let d1 = delta_for ~ni codes a pb in
      Bytes.set codes a pb;
      pairs := !pairs + d1;
      let d2 = delta_for ~ni codes b pa in
      Bytes.set codes b pa;
      pairs := !pairs + d2;
      let after = cost () in
      let temp =
        temp0 *. (1.0 -. (float_of_int !step /. float_of_int max_steps))
      in
      let accept =
        after <= before
        || Random.State.float rng 1.0 < exp ((before -. after) /. max temp 1e-6)
      in
      if not accept then begin
        (* revert *)
        let d3 = delta_for ~ni codes b pb in
        Bytes.set codes b pb;
        pairs := !pairs + d3;
        let d4 = delta_for ~ni codes a pa in
        Bytes.set codes a pa;
        pairs := !pairs + d4
      end
    end
  done

let codes_to_spec ~ni codes =
  let spec = Spec.create ~ni ~no:1 ~default:Spec.Off in
  Bytes.iteri
    (fun m c -> Spec.set spec ~o:0 ~m (phase_of_code (Char.code c)))
    codes;
  spec

let output ~rng p =
  let size = 1 lsl p.ni in
  if p.on_count + p.off_count > size then invalid_arg "Synth_gen: counts";
  let codes =
    match p.target_cf with
    | None -> random_codes ~rng ~size ~on:p.on_count ~off:p.off_count
    | Some target ->
        (* Three seeds spanning the reachable range — random (at
           E[C^f]), maximally clustered (high), checkerboard (low) —
           start annealing from the nearest. *)
        let seeds =
          [
            random_codes ~rng ~size ~on:p.on_count ~off:p.off_count;
            clustered_codes ~rng ~ni:p.ni ~on:p.on_count ~off:p.off_count;
            checkerboard_codes ~rng ~ni:p.ni ~on:p.on_count ~off:p.off_count;
          ]
        in
        let total = float_of_int (p.ni * size) in
        let cf_of c = float_of_int (same_pairs ~ni:p.ni c) /. total in
        let seed =
          List.fold_left
            (fun best cand ->
              if abs_float (cf_of cand -. target) < abs_float (cf_of best -. target)
              then cand
              else best)
            (List.hd seeds) (List.tl seeds)
        in
        anneal ~rng ~ni:p.ni ~target ~tolerance:p.tolerance
          ~max_steps:p.max_steps seed;
        seed
  in
  codes_to_spec ~ni:p.ni codes

let spec ~rng ~no p =
  if no <= 0 then invalid_arg "Synth_gen.spec: no outputs";
  let s = Spec.create ~ni:p.ni ~no ~default:Spec.Off in
  for o = 0 to no - 1 do
    let one = output ~rng p in
    for m = 0 to Spec.size s - 1 do
      Spec.set s ~o ~m (Spec.get one ~o:0 ~m)
    done
  done;
  s

let random_spec ~rng ~ni ~no ~f1 ~f0 =
  let s = Spec.create ~ni ~no ~default:Spec.Dc in
  for o = 0 to no - 1 do
    for m = 0 to (1 lsl ni) - 1 do
      let x = Random.State.float rng 1.0 in
      if x < f1 then Spec.set s ~o ~m Spec.On
      else if x < f1 +. f0 then Spec.set s ~o ~m Spec.Off
    done
  done;
  s

let measured_cf spec = Reliability.Borders.mean_complexity_factor spec

(* ------------------------------------------------------------------ *)
(* Cover-level generation: the n > 20 regime, where specs are cube
   lists rather than tables.  Each cube fixes every variable with
   probability [lit_prob] (split evenly between the polarities), so a
   cube covers 2^(n * (1 - lit_prob)) minterms in expectation and the
   resulting BDDs stay small while the function is far from trivial. *)

let random_cube ~rng ~ni ~lit_prob =
  Twolevel.Cube.make ~n:ni
    (List.init ni (fun _ ->
         if Random.State.float rng 1.0 >= lit_prob then Twolevel.Cube.Free
         else if Random.State.bool rng then Twolevel.Cube.One
         else Twolevel.Cube.Zero))

let random_cover ~rng ~ni ~cubes ~lit_prob =
  if cubes < 0 then invalid_arg "Synth_gen.random_cover: negative count";
  Twolevel.Cover.make ~n:ni
    (List.init cubes (fun _ -> random_cube ~rng ~ni ~lit_prob))

let random_cover_sets ~rng ~ni ~no ~on_cubes ~dc_cubes ~lit_prob =
  if no <= 0 then invalid_arg "Synth_gen.random_cover_sets: no outputs";
  if ni < 1 || ni > 61 then invalid_arg "Synth_gen.random_cover_sets: ni";
  List.init no (fun _ ->
      let on = random_cover ~rng ~ni ~cubes:on_cubes ~lit_prob in
      let dc = random_cover ~rng ~ni ~cubes:dc_cubes ~lit_prob in
      Pla.Fd_sets { on; dc })
