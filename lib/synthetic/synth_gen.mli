(** Synthetic benchmark generation (Section 2.2 of the paper).

    Completely random functions ("flipping a three-sided coin for each
    minterm") land at the expected complexity factor
    [E[C^f] = f0^2 + f1^2 + fdc^2]; published benchmarks are more
    structured.  This generator reproduces the paper's "designated
    complexity factor" method observably: phase counts are fixed by the
    requested signal probabilities, a clustered (cube-aligned) or
    random seed is chosen depending on the target, and a
    simulated-annealing swap search drives the measured [C^f] to the
    target while preserving the phase counts exactly. *)

(** Generation parameters for one output. *)
type params = {
  ni : int;
  on_count : int;
  off_count : int;  (** [dc = 2^ni - on - off] *)
  target_cf : float option;  (** [None]: plain three-sided coin *)
  tolerance : float;  (** acceptable |measured - target| (e.g. 0.01) *)
  max_steps : int;  (** annealing budget (e.g. 200_000) *)
}

(** [default_params ~ni ~dc_frac ~target_cf] splits the care space
    evenly between on and off and uses tolerance 0.01 with a budget
    scaled to the space size. *)
val default_params : ni:int -> dc_frac:float -> target_cf:float option -> params

(** [output ~rng p] generates one output table as a spec with one
    output. *)
val output : rng:Random.State.t -> params -> Pla.Spec.t

(** [spec ~rng ~no p] stacks [no] independently generated outputs. *)
val spec : rng:Random.State.t -> no:int -> params -> Pla.Spec.t

(** [random_spec ~rng ~ni ~no ~f1 ~f0] is the plain three-sided coin
    (per-minterm independent draws; counts are not exact). *)
val random_spec :
  rng:Random.State.t -> ni:int -> no:int -> f1:float -> f0:float -> Pla.Spec.t

(** [measured_cf spec] is the mean complexity factor, re-exported for
    convenience. *)
val measured_cf : Pla.Spec.t -> float

(** {1 Cover-level generation — the n > 20 regime}

    Cube-list specifications for sizes the dense table cannot hold,
    feeding the symbolic and sampled analysis backends. *)

(** [random_cover ~rng ~ni ~cubes ~lit_prob] is [cubes] random cubes,
    each variable fixed (to a uniform polarity) with probability
    [lit_prob] and free otherwise. *)
val random_cover :
  rng:Random.State.t ->
  ni:int ->
  cubes:int ->
  lit_prob:float ->
  Twolevel.Cover.t

(** [random_cover_sets ~rng ~ni ~no ~on_cubes ~dc_cubes ~lit_prob] is
    [no] independent fd-style outputs (on wins overlaps, off is the
    rest), ready for [Analysis.of_cover_sets].
    @raise Invalid_argument unless [1 <= ni <= 61] and [no > 0]. *)
val random_cover_sets :
  rng:Random.State.t ->
  ni:int ->
  no:int ->
  on_cubes:int ->
  dc_cubes:int ->
  lit_prob:float ->
  Pla.cover_sets list
