module Truth = Logic.Truth
module Npn = Logic.Npn

type mode = Delay | Area | Power

let mode_name = function Delay -> "delay" | Area -> "area" | Power -> "power"

type cell_match = {
  cut : Aig.Cut.cut;
  cell : Stdcell.t;
  perm : int array;  (** cut leaf [j] drives cell pin [perm.(j)] *)
  out_inv : bool;  (** cell computes the complement of the cut function *)
}

type choice = Cell_match of cell_match | And2_fallback

(* Permutation-variant match index: (arity, tt) -> matches. *)
let build_index lib =
  let index = Hashtbl.create 512 in
  List.iter
    (fun (c : Stdcell.t) ->
      if c.arity >= 2 then
        List.iter
          (fun (vtt, perm) ->
            Hashtbl.add index (c.arity, vtt) (c, perm, false);
            Hashtbl.add index (c.arity, Truth.tnot c.arity vtt) (c, perm, true))
          (Npn.p_variants c.arity c.tt))
    lib;
  index

(* The index only depends on the library, and [Stdcell.default_library]
   allocates a fresh (but equal) list per call — memoise on the library
   value itself.  [Stdcell.t] is all scalar data, so structural
   hashing is exact.  The cached index is read-only after build
   ([Hashtbl.find_all] only), hence safe to share across domains. *)
let c_index_hits = Prof.counter "map.index_hits"
let c_index_misses = Prof.counter "map.index_misses"
let sp_map = Prof.span "techmap.map"

let index_memo :
    (Stdcell.t list, (int * Truth.t, Stdcell.t * int array * bool) Hashtbl.t)
    Hashtbl.t =
  Hashtbl.create 4

let index_lock = Mutex.create ()
let index_cap = 8

let index_for lib =
  Mutex.lock index_lock;
  let cached = Hashtbl.find_opt index_memo lib in
  Mutex.unlock index_lock;
  match cached with
  | Some index ->
      Prof.incr c_index_hits;
      index
  | None ->
      Prof.incr c_index_misses;
      let index = build_index lib in
      Mutex.lock index_lock;
      if Hashtbl.length index_memo >= index_cap then Hashtbl.reset index_memo;
      if not (Hashtbl.mem index_memo lib) then Hashtbl.add index_memo lib index;
      Mutex.unlock index_lock;
      index

(* Estimated fanout of each AIG node (for area-flow sharing). *)
let fanout_counts aig =
  let counts = Array.make (Aig.num_nodes aig) 0 in
  Aig.iter_ands aig (fun _ a b ->
      counts.(Aig.node_of a) <- counts.(Aig.node_of a) + 1;
      counts.(Aig.node_of b) <- counts.(Aig.node_of b) + 1);
  Array.iter
    (fun l -> counts.(Aig.node_of l) <- counts.(Aig.node_of l) + 1)
    (Aig.outputs aig);
  Array.map (fun c -> float_of_int (max 1 c)) counts

let activity p = 2.0 *. p *. (1.0 -. p)

let map ~mode ~lib aig =
  Prof.time sp_map @@ fun () ->
  (match Stdcell.validate lib with
  | Some msg -> invalid_arg ("Mapper.map: bad library: " ^ msg)
  | None -> ());
  let inv_cell = Stdcell.inv lib in
  let and2_cell =
    match List.find_opt (fun (c : Stdcell.t) -> c.Stdcell.name = "AND2") lib with
    | Some c -> Some c
    | None -> None
  in
  let nand2_cell =
    List.find_opt (fun (c : Stdcell.t) -> c.Stdcell.name = "NAND2") lib
  in
  let index = index_for lib in
  let cuts = Aig.Cut.enumerate_memo aig ~k:4 ~max_cuts:8 in
  let n = Aig.num_nodes aig in
  let fanout = fanout_counts aig in
  let probs = if mode = Power then Aig.node_probs aig else [||] in
  let arrival = Array.make n 0.0 in
  let flow = Array.make n 0.0 in
  let choice = Array.make n And2_fallback in
  (* Cost of realising the positive polarity of a fanin literal in the
     AND2 fallback: complemented edges pay an inverter. *)
  let lit_arrival l =
    let base = arrival.(Aig.node_of l) in
    if Aig.is_complemented l then base +. inv_cell.Stdcell.delay else base
  in
  let lit_flow l =
    let base = flow.(Aig.node_of l) /. fanout.(Aig.node_of l) in
    if Aig.is_complemented l then base +. inv_cell.Stdcell.area else base
  in
  let leaf_power_term leaf cap =
    if mode = Power then activity probs.(leaf) *. cap else 0.0
  in
  (* Evaluate one candidate: returns (arrival, cost_flow). *)
  let eval_match id m =
    ignore id;
    let cell = m.cell in
    let arr =
      Array.fold_left
        (fun acc leaf -> max acc arrival.(leaf))
        0.0 m.cut.Aig.Cut.leaves
      +. cell.Stdcell.delay
      +. (if m.out_inv then inv_cell.Stdcell.delay else 0.0)
    in
    let fl =
      Array.fold_left
        (fun acc leaf ->
          acc
          +. (flow.(leaf) /. fanout.(leaf))
          +. leaf_power_term leaf cell.Stdcell.input_cap)
        (cell.Stdcell.area +. if m.out_inv then inv_cell.Stdcell.area else 0.0)
        m.cut.Aig.Cut.leaves
    in
    (arr, fl)
  in
  let eval_fallback a b =
    match (and2_cell, nand2_cell) with
    | Some c, _ ->
        let arr = max (lit_arrival a) (lit_arrival b) +. c.Stdcell.delay in
        let fl =
          c.Stdcell.area +. lit_flow a +. lit_flow b
          +. leaf_power_term (Aig.node_of a) c.Stdcell.input_cap
          +. leaf_power_term (Aig.node_of b) c.Stdcell.input_cap
        in
        (arr, fl)
    | None, Some c ->
        let arr =
          max (lit_arrival a) (lit_arrival b)
          +. c.Stdcell.delay +. inv_cell.Stdcell.delay
        in
        let fl =
          c.Stdcell.area +. inv_cell.Stdcell.area +. lit_flow a +. lit_flow b
        in
        (arr, fl)
    | None, None -> assert false (* validate guarantees the AND2 class *)
  in
  let better (a1, f1) (a2, f2) =
    match mode with
    | Delay -> a1 < a2 -. 1e-12 || (abs_float (a1 -. a2) <= 1e-12 && f1 < f2)
    | Area | Power ->
        f1 < f2 -. 1e-12 || (abs_float (f1 -. f2) <= 1e-12 && a1 < a2)
  in
  Aig.iter_ands aig (fun id a b ->
      let best_cost = ref (eval_fallback a b) in
      let best_choice = ref And2_fallback in
      List.iter
        (fun cut ->
          let k = Array.length cut.Aig.Cut.leaves in
          if k >= 2 && k <= 4 then
            List.iter
              (fun (cell, perm, out_inv) ->
                let m = { cut; cell; perm; out_inv } in
                let cost = eval_match id m in
                if better cost !best_cost then begin
                  best_cost := cost;
                  best_choice := Cell_match m
                end)
              (Hashtbl.find_all index (k, cut.Aig.Cut.tt)))
        cuts.(id);
      let arr, fl = !best_cost in
      arrival.(id) <- arr;
      flow.(id) <- fl;
      choice.(id) <- !best_choice);
  (* Emission: cover from the outputs down. *)
  let nl = Netlist.create ~ni:(Aig.ni aig) in
  let pos_net = Array.make n (-1) in
  let inv_net = Array.make n (-1) in
  let inv_gate = Stdcell.to_gate inv_cell in
  for i = 0 to Aig.ni aig - 1 do
    pos_net.(i + 1) <- i
  done;
  let rec emit id =
    if pos_net.(id) >= 0 then pos_net.(id)
    else begin
      let net =
        match choice.(id) with
        | Cell_match m ->
            let leaf_nets = Array.map emit m.cut.Aig.Cut.leaves in
            let pins = Array.make m.cell.Stdcell.arity (-1) in
            Array.iteri (fun j net -> pins.(m.perm.(j)) <- net) leaf_nets;
            let inst = Netlist.add nl (Stdcell.to_gate m.cell) pins in
            if m.out_inv then Netlist.add nl inv_gate [| inst |] else inst
        | And2_fallback ->
            let a, b = Aig.fanins aig id in
            let na = emit_lit a and nb = emit_lit b in
            (match (and2_cell, nand2_cell) with
            | Some c, _ -> Netlist.add nl (Stdcell.to_gate c) [| na; nb |]
            | None, Some c ->
                let nand = Netlist.add nl (Stdcell.to_gate c) [| na; nb |] in
                Netlist.add nl inv_gate [| nand |]
            | None, None -> assert false)
      in
      pos_net.(id) <- net;
      net
    end
  and emit_lit l =
    let id = Aig.node_of l in
    let p = emit id in
    if Aig.is_complemented l then begin
      if inv_net.(id) < 0 then
        inv_net.(id) <- Netlist.add nl inv_gate [| p |];
      inv_net.(id)
    end
    else p
  in
  let const_net = Hashtbl.create 2 in
  let out_net l =
    let id = Aig.node_of l in
    if id = 0 then begin
      let b = Aig.is_complemented l in
      match Hashtbl.find_opt const_net b with
      | Some net -> net
      | None ->
          let net = Netlist.add nl (Netlist.Gate.Const b) [||] in
          Hashtbl.add const_net b net;
          net
    end
    else emit_lit l
  in
  Netlist.set_outputs nl (Array.map out_net (Aig.outputs aig));
  nl
