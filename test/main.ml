(* Hidden worker mode: the resilient suite Exec-spawns this very
   binary as its worker processes (see Test_resilient.exec_spawn), so
   process-mode supervision is exercised even when Unix.fork is
   unavailable (OCaml 5 forbids it once any domain has been spawned). *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--resilient-worker" then begin
    Parallel.Pool.set_default_jobs 1;
    Resilient.Worker.serve ~handler:Test_resilient.worker_handler
      ~input:Unix.stdin ~output:Unix.stdout ();
    exit 0
  end

let () =
  Alcotest.run "rdca"
    [
      Test_bv.suite;
      Test_minterm.suite;
      Test_cube.suite;
      Test_cover.suite;
      Test_factor.suite;
      Test_espresso.suite;
      Test_spec.suite;
      Test_pla.suite;
      Test_bdd.suite;
      Test_logic.suite;
      Test_netlist.suite;
      Test_aig.suite;
      Test_techmap.suite;
      Test_reliability.suite;
      Test_analysis.suite;
      Test_kernel_diff.suite;
      Test_inject.suite;
      Test_campaign.suite;
      Test_parallel.suite;
      Test_splittable.suite;
      Test_synthetic.suite;
      Test_circuits.suite;
      Test_core.suite;
      Test_flow.suite;
      Test_io.suite;
      Test_check.suite;
      Test_resilient.suite;
      Test_sat.suite;
      Test_dc.suite;
      Test_atpg.suite;
    ]
