let () =
  Alcotest.run "rdca"
    [
      Test_bv.suite;
      Test_minterm.suite;
      Test_cube.suite;
      Test_cover.suite;
      Test_factor.suite;
      Test_espresso.suite;
      Test_spec.suite;
      Test_pla.suite;
      Test_bdd.suite;
      Test_logic.suite;
      Test_netlist.suite;
      Test_aig.suite;
      Test_techmap.suite;
      Test_reliability.suite;
      Test_kernel_diff.suite;
      Test_inject.suite;
      Test_campaign.suite;
      Test_parallel.suite;
      Test_synthetic.suite;
      Test_circuits.suite;
      Test_core.suite;
      Test_flow.suite;
      Test_io.suite;
      Test_check.suite;
    ]
