(* Tests for the AIG: strashing, semantics, lowering, balance, cuts. *)

module Cover = Twolevel.Cover
module Cube = Twolevel.Cube
module Truth = Logic.Truth

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_constants () =
  let t = Aig.create ~ni:2 in
  check_int "not const0" Aig.const1 (Aig.lnot Aig.const0);
  let a = Aig.input t 0 in
  check_int "a & 0" Aig.const0 (Aig.land_ t a Aig.const0);
  check_int "a & 1" a (Aig.land_ t a Aig.const1);
  check_int "a & a" a (Aig.land_ t a a);
  check_int "a & !a" Aig.const0 (Aig.land_ t a (Aig.lnot a));
  check_int "no nodes created" 0 (Aig.num_ands t)

let test_strash () =
  let t = Aig.create ~ni:2 in
  let a = Aig.input t 0 and b = Aig.input t 1 in
  let x = Aig.land_ t a b in
  let y = Aig.land_ t b a in
  check_int "commutative strash" x y;
  check_int "one node" 1 (Aig.num_ands t)

let test_semantics () =
  let t = Aig.create ~ni:3 in
  let a = Aig.input t 0 and b = Aig.input t 1 and c = Aig.input t 2 in
  let f = Aig.lor_ t (Aig.land_ t a b) (Aig.lxor_ t b c) in
  Aig.set_outputs t [| f |];
  for m = 0 to 7 do
    let av = m land 1 <> 0 and bv = m land 2 <> 0 and cv = m land 4 <> 0 in
    let expected = (av && bv) || bv <> cv in
    check (Printf.sprintf "m=%d" m) expected (Aig.eval_minterm t m).(0)
  done

let test_mux () =
  let t = Aig.create ~ni:3 in
  let s = Aig.input t 0 and a = Aig.input t 1 and b = Aig.input t 2 in
  let f = Aig.lmux t ~sel:s ~th:a ~el:b in
  Aig.set_outputs t [| f |];
  for m = 0 to 7 do
    let sv = m land 1 <> 0 and av = m land 2 <> 0 and bv = m land 4 <> 0 in
    check (Printf.sprintf "mux m=%d" m) (if sv then av else bv)
      (Aig.eval_minterm t m).(0)
  done

let cov n strs = Cover.make ~n (List.map Cube.of_string strs)

let test_of_covers () =
  let c0 = cov 3 [ "1-0"; "-11" ] in
  let c1 = cov 3 [ "111" ] in
  let t = Aig.of_covers ~ni:3 [ c0; c1 ] in
  check_int "two outputs" 2 (Aig.no t);
  for m = 0 to 7 do
    let outs = Aig.eval_minterm t m in
    check (Printf.sprintf "o0 m=%d" m) (Cover.eval c0 m) outs.(0);
    check (Printf.sprintf "o1 m=%d" m) (Cover.eval c1 m) outs.(1)
  done

let test_to_netlist_equiv () =
  let c0 = cov 4 [ "1--0"; "-11-"; "0-01" ] in
  let t = Aig.of_covers ~ni:4 [ c0 ] in
  let nl = Aig.to_netlist t in
  for m = 0 to 15 do
    check
      (Printf.sprintf "netlist m=%d" m)
      (Aig.eval_minterm t m).(0)
      (Netlist.eval_minterm nl m).(0)
  done

let test_to_netlist_complemented_output () =
  (* Output is a complemented edge: NOT must be materialised. *)
  let t = Aig.create ~ni:2 in
  let f = Aig.lnot (Aig.land_ t (Aig.input t 0) (Aig.input t 1)) in
  Aig.set_outputs t [| f |];
  let nl = Aig.to_netlist t in
  for m = 0 to 3 do
    check (Printf.sprintf "nand m=%d" m) (m <> 3) (Netlist.eval_minterm nl m).(0)
  done

let test_balance_preserves () =
  (* A long chain a & (b & (c & d)) must balance to depth 2. *)
  let t = Aig.create ~ni:4 in
  let a = Aig.input t 0 and b = Aig.input t 1 in
  let c = Aig.input t 2 and d = Aig.input t 3 in
  let f = Aig.land_ t a (Aig.land_ t b (Aig.land_ t c d)) in
  Aig.set_outputs t [| f |];
  check_int "chain depth" 3 (Aig.depth t);
  let t' = Aig.Opt.balance t in
  check_int "balanced depth" 2 (Aig.depth t');
  for m = 0 to 15 do
    check (Printf.sprintf "balance m=%d" m)
      (Aig.eval_minterm t m).(0)
      (Aig.eval_minterm t' m).(0)
  done

let test_cleanup () =
  let t = Aig.create ~ni:2 in
  let a = Aig.input t 0 and b = Aig.input t 1 in
  let f = Aig.land_ t a b in
  let _dead = Aig.land_ t a (Aig.lnot b) in
  Aig.set_outputs t [| f |];
  check_int "two nodes before" 2 (Aig.num_ands t);
  let t' = Aig.Opt.cleanup t in
  check_int "one node after" 1 (Aig.num_ands t');
  for m = 0 to 3 do
    check (Printf.sprintf "cleanup m=%d" m)
      (Aig.eval_minterm t m).(0)
      (Aig.eval_minterm t' m).(0)
  done

let test_node_probs () =
  let t = Aig.create ~ni:2 in
  let f = Aig.land_ t (Aig.input t 0) (Aig.input t 1) in
  Aig.set_outputs t [| f |];
  let probs = Aig.node_probs t in
  Alcotest.(check (float 1e-9)) "and prob" 0.25 probs.(Aig.node_of f)

let test_cut_enumeration () =
  let t = Aig.create ~ni:4 in
  let a = Aig.input t 0 and b = Aig.input t 1 in
  let c = Aig.input t 2 and d = Aig.input t 3 in
  let ab = Aig.land_ t a b in
  let cd = Aig.land_ t c d in
  let f = Aig.land_ t ab cd in
  Aig.set_outputs t [| f |];
  let cuts = Aig.Cut.enumerate t ~k:4 ~max_cuts:8 in
  let fcuts = cuts.(Aig.node_of f) in
  check "has a 4-cut over the inputs" true
    (List.exists
       (fun cut ->
         cut.Aig.Cut.leaves
         = [| Aig.node_of a; Aig.node_of b; Aig.node_of c; Aig.node_of d |])
       fcuts);
  (* The 4-input cut function must be the AND of all four leaves. *)
  List.iter
    (fun cut ->
      if Array.length cut.Aig.Cut.leaves = 4 then
        check_int "and4 tt" (Truth.of_fun 4 (fun idx -> idx = 15)) cut.Aig.Cut.tt)
    fcuts

let test_cut_enumerate_memo () =
  let build () =
    let t = Aig.create ~ni:4 in
    let a = Aig.input t 0 and b = Aig.input t 1 in
    let c = Aig.input t 2 and d = Aig.input t 3 in
    let f = Aig.lor_ t (Aig.land_ t a b) (Aig.land_ t c d) in
    Aig.set_outputs t [| f |];
    t
  in
  let t = build () in
  Aig.Cut.clear_memo ();
  let plain = Aig.Cut.enumerate t ~k:4 ~max_cuts:8 in
  let miss = Aig.Cut.enumerate_memo t ~k:4 ~max_cuts:8 in
  check "memo miss equals plain enumeration" true (miss = plain);
  (* A second call — even on a freshly rebuilt but structurally
     identical AIG — returns the shared cached array. *)
  check "memo hit shares the cached result" true
    (Aig.Cut.enumerate_memo (build ()) ~k:4 ~max_cuts:8 == miss);
  (* Different parameters are different keys. *)
  let k2 = Aig.Cut.enumerate_memo t ~k:2 ~max_cuts:4 in
  check "distinct (k, max_cuts) key" true
    (k2 = Aig.Cut.enumerate t ~k:2 ~max_cuts:4);
  Aig.Cut.clear_memo ();
  check "identical again after clear_memo" true
    (Aig.Cut.enumerate_memo t ~k:4 ~max_cuts:8 = plain)

let test_cut_function_matches () =
  let t = Aig.create ~ni:3 in
  let a = Aig.input t 0 and b = Aig.input t 1 and c = Aig.input t 2 in
  let f = Aig.lor_ t (Aig.land_ t a b) c in
  Aig.set_outputs t [| f |];
  let cuts = Aig.Cut.enumerate t ~k:4 ~max_cuts:8 in
  List.iter
    (fun cut ->
      for m = 0 to 7 do
        check "cut consistent" true
          (Aig.Cut.consistent_on t ~node:(Aig.node_of f) cut ~minterm:m)
      done)
    cuts.(Aig.node_of f)

(* Properties over random covers. *)

let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (frequencyl [ (2, Cube.Zero); (2, Cube.One); (3, Cube.Free) ])
      |> map (Cube.make ~n)
    in
    list_size (int_range 0 6) gen_cube |> map (fun cs -> Cover.make ~n cs))

let arb_cover n =
  QCheck.make ~print:(fun cv -> Format.asprintf "%a" Cover.pp cv) (gen_cover n)

let prop_of_covers_semantics =
  QCheck.Test.make ~name:"of_covers agrees with Cover.eval" ~count:150
    (arb_cover 5) (fun cover ->
      let t = Aig.of_covers ~ni:5 [ cover ] in
      let ok = ref true in
      for m = 0 to 31 do
        if (Aig.eval_minterm t m).(0) <> Cover.eval cover m then ok := false
      done;
      !ok)

let prop_balance_equiv =
  QCheck.Test.make ~name:"balance preserves all outputs" ~count:100
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (c0, c1) ->
      let t = Aig.of_covers ~ni:5 [ c0; c1 ] in
      let t' = Aig.Opt.balance t in
      let ok = ref true in
      for m = 0 to 31 do
        if Aig.eval_minterm t m <> Aig.eval_minterm t' m then ok := false
      done;
      !ok)

let prop_balance_depth =
  QCheck.Test.make ~name:"balance never increases depth" ~count:100
    (arb_cover 5) (fun cover ->
      let t = Aig.of_covers ~ni:5 [ cover ] in
      Aig.depth (Aig.Opt.balance t) <= Aig.depth t)

let prop_netlist_equiv =
  QCheck.Test.make ~name:"to_netlist preserves outputs" ~count:100
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (c0, c1) ->
      let t = Aig.of_covers ~ni:5 [ c0; c1 ] in
      let nl = Aig.to_netlist t in
      let ok = ref true in
      for m = 0 to 31 do
        if Aig.eval_minterm t m <> Netlist.eval_minterm nl m then ok := false
      done;
      !ok)

let prop_cut_functions =
  QCheck.Test.make ~name:"cut functions consistent on every reachable input"
    ~count:60 (arb_cover 4) (fun cover ->
      let t = Aig.of_covers ~ni:4 [ cover ] in
      let cuts = Aig.Cut.enumerate t ~k:4 ~max_cuts:6 in
      let ok = ref true in
      Aig.iter_ands t (fun id _ _ ->
          List.iter
            (fun cut ->
              for m = 0 to 15 do
                if not (Aig.Cut.consistent_on t ~node:id cut ~minterm:m) then
                  ok := false
              done)
            cuts.(id));
      !ok)

let suite =
  ( "aig",
    [
      Alcotest.test_case "constant folding" `Quick test_constants;
      Alcotest.test_case "structural hashing" `Quick test_strash;
      Alcotest.test_case "semantics" `Quick test_semantics;
      Alcotest.test_case "mux" `Quick test_mux;
      Alcotest.test_case "of_covers" `Quick test_of_covers;
      Alcotest.test_case "to_netlist equivalence" `Quick test_to_netlist_equiv;
      Alcotest.test_case "complemented output" `Quick
        test_to_netlist_complemented_output;
      Alcotest.test_case "balance chain" `Quick test_balance_preserves;
      Alcotest.test_case "cleanup" `Quick test_cleanup;
      Alcotest.test_case "node probabilities" `Quick test_node_probs;
      Alcotest.test_case "cut enumeration" `Quick test_cut_enumeration;
      Alcotest.test_case "cut enumeration memo" `Quick test_cut_enumerate_memo;
      Alcotest.test_case "cut function recomputation" `Quick
        test_cut_function_matches;
      QCheck_alcotest.to_alcotest prop_of_covers_semantics;
      QCheck_alcotest.to_alcotest prop_balance_equiv;
      QCheck_alcotest.to_alcotest prop_balance_depth;
      QCheck_alcotest.to_alcotest prop_netlist_equiv;
      QCheck_alcotest.to_alcotest prop_cut_functions;
    ] )

(* Global refactor through BDD/ISOP. *)

let test_refactor_redundant_logic () =
  (* Build a deliberately redundant AIG: f = (a&b) | (a&b&c) | (a&b&!c)
     collapses to a&b. *)
  let t = Aig.create ~ni:3 in
  let a = Aig.input t 0 and b = Aig.input t 1 and c = Aig.input t 2 in
  let ab = Aig.land_ t a b in
  let abc = Aig.land_ t ab c in
  let abnc = Aig.land_ t ab (Aig.lnot c) in
  let f = Aig.lor_ t ab (Aig.lor_ t abc abnc) in
  Aig.set_outputs t [| f |];
  let t' = Aig.Opt.refactor_global t in
  check "fewer nodes" true (Aig.num_ands t' < Aig.num_ands t);
  for m = 0 to 7 do
    check
      (Printf.sprintf "refactor m=%d" m)
      true
      (Aig.eval_minterm t m = Aig.eval_minterm t' m)
  done

let prop_refactor_equiv =
  QCheck.Test.make ~name:"refactor_global preserves all outputs" ~count:60
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (c0, c1) ->
      let t = Aig.of_covers ~ni:5 [ c0; c1 ] in
      let t' = Aig.Opt.refactor_global t in
      let ok = ref true in
      for m = 0 to 31 do
        if Aig.eval_minterm t m <> Aig.eval_minterm t' m then ok := false
      done;
      !ok)

let prop_refactor_never_grows =
  QCheck.Test.make ~name:"refactor_global never grows the live AIG" ~count:60
    (arb_cover 5) (fun c0 ->
      let t = Aig.of_covers ~ni:5 [ c0 ] in
      let t' = Aig.Opt.refactor_global t in
      Aig.num_ands (Aig.Opt.cleanup t') <= Aig.num_ands (Aig.Opt.cleanup t))

let refactor_cases =
  [
    Alcotest.test_case "refactor collapses redundancy" `Quick
      test_refactor_redundant_logic;
    QCheck_alcotest.to_alcotest prop_refactor_equiv;
    QCheck_alcotest.to_alcotest prop_refactor_never_grows;
  ]

let suite = (fst suite, snd suite @ refactor_cases)
