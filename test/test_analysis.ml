(* Cross-backend differential tests for the reliability analysis
   dispatch layer: the symbolic (BDD) engine must be bit-identical to
   the exhaustive engines, the sampled engine must be deterministic
   under the seed and honest about its confidence intervals, and the
   estimate plumbing must reproduce the dense estimators from
   BDD-derived counts. *)

module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bv.Kernel
module ER = Reliability.Error_rate
module Borders = Reliability.Borders
module Estimate = Reliability.Estimate
module Analysis = Reliability.Analysis
module Sym = Reliability.Sym

let check = Alcotest.(check bool)
let check_f tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

let exact = function
  | Analysis.Exact x -> x
  | Analysis.Interval _ -> Alcotest.fail "expected an exact value"

(* ------------------------------------------------------------------ *)
(* Generators *)

let spec_of_phases ~ni ~no phases =
  let s = Spec.create ~ni ~no ~default:Spec.Off in
  List.iteri
    (fun i p ->
      let o = i / (1 lsl ni) and m = i mod (1 lsl ni) in
      Spec.set s ~o ~m
        (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
    phases;
  s

let gen_sized_spec =
  QCheck.Gen.(
    2 -- 8 >>= fun ni ->
    1 -- 2 >>= fun no ->
    list_size (return (no * (1 lsl ni))) (int_bound 2) >>= fun phases ->
    return (ni, no, phases))

let arb_spec =
  QCheck.make
    ~print:(fun (ni, no, _) -> Printf.sprintf "spec ni=%d no=%d" ni no)
    gen_sized_spec

(* A random full assignment consistent with the care set: DC minterms
   follow the mask bits. *)
let impl_of_mask s ~o mask =
  let size = Spec.size s in
  let impl = Bv.create size in
  for m = 0 to size - 1 do
    match Spec.get s ~o ~m with
    | Spec.On -> Bv.set impl m
    | Spec.Off -> ()
    | Spec.Dc -> if (mask lsr (m land 60)) land 1 = 1 then Bv.set impl m
  done;
  impl

(* ------------------------------------------------------------------ *)
(* (a) Bdd_exact is bit-identical to the exhaustive kernel and its
   scalar oracle. *)

let ident_against name spec =
  let t = Analysis.of_spec spec in
  for o = 0 to Spec.no spec - 1 do
    let be = Analysis.bounds ~backend:Analysis.Exhaustive t ~o in
    let bb = Analysis.bounds ~backend:Analysis.Bdd_exact t ~o in
    let tag f = Printf.sprintf "%s o=%d %s" name o f in
    check_f 0.0 (tag "base") (exact be.Analysis.base) (exact bb.Analysis.base);
    check_f 0.0 (tag "min_dc") (exact be.Analysis.min_dc)
      (exact bb.Analysis.min_dc);
    check_f 0.0 (tag "max_dc") (exact be.Analysis.max_dc)
      (exact bb.Analysis.max_dc);
    let ce = Analysis.borders ~backend:Analysis.Exhaustive t ~o in
    let cb = Analysis.borders ~backend:Analysis.Bdd_exact t ~o in
    check_f 0.0 (tag "b0") (exact ce.Analysis.b0) (exact cb.Analysis.b0);
    check_f 0.0 (tag "b1") (exact ce.Analysis.b1) (exact cb.Analysis.b1);
    check_f 0.0 (tag "bdc") (exact ce.Analysis.bdc) (exact cb.Analysis.bdc);
    let f1e, f0e, fdce = Analysis.signal_probs ~backend:Analysis.Exhaustive t ~o
    and f1b, f0b, fdcb = Analysis.signal_probs ~backend:Analysis.Bdd_exact t ~o in
    check_f 0.0 (tag "f1") (exact f1e) (exact f1b);
    check_f 0.0 (tag "f0") (exact f0e) (exact f0b);
    check_f 0.0 (tag "fdc") (exact fdce) (exact fdcb);
    check_f 0.0 (tag "cf")
      (exact (Analysis.complexity_factor ~backend:Analysis.Exhaustive t ~o))
      (exact (Analysis.complexity_factor ~backend:Analysis.Bdd_exact t ~o))
  done

let prop_bdd_bit_identical_kernel =
  QCheck.Test.make ~name:"bdd backend bit-identical to exhaustive kernel"
    ~count:60 arb_spec (fun (ni, no, phases) ->
      ident_against "kernel" (spec_of_phases ~ni ~no phases);
      true)

let prop_bdd_bit_identical_scalar =
  QCheck.Test.make ~name:"bdd backend bit-identical to scalar oracle"
    ~count:30 arb_spec (fun (ni, no, phases) ->
      K.with_mode false (fun () ->
          ident_against "scalar" (spec_of_phases ~ni ~no phases));
      true)

let prop_bdd_rate_bit_identical =
  QCheck.Test.make
    ~name:"bdd implementation rate bit-identical to exhaustive" ~count:60
    QCheck.(pair arb_spec (int_bound max_int))
    (fun ((ni, no, phases), mask) ->
      let s = spec_of_phases ~ni ~no phases in
      let t = Analysis.of_spec s in
      let ok = ref true in
      for o = 0 to no - 1 do
        let impl = impl_of_mask s ~o mask in
        let re = Analysis.rate_of_table ~backend:Analysis.Exhaustive t ~o ~impl
        and rb = Analysis.rate_of_table ~backend:Analysis.Bdd_exact t ~o ~impl in
        if not (Float.equal (exact re) (exact rb)) then ok := false
      done;
      !ok)

(* (d) the Section 5 estimators are reproduced bit-identically through
   BDD-derived counts. *)
let prop_estimates_from_bdd_counts =
  QCheck.Test.make
    ~name:"signal/border estimates reproduced from bdd counts" ~count:60
    arb_spec (fun (ni, no, phases) ->
      let s = spec_of_phases ~ni ~no phases in
      let t = Analysis.of_spec s in
      let ok = ref true in
      for o = 0 to no - 1 do
        let se = Estimate.signal_based s ~o
        and sb = Analysis.signal_interval ~backend:Analysis.Bdd_exact t ~o in
        let be = Estimate.border_based s ~o
        and bb = Analysis.border_interval ~backend:Analysis.Bdd_exact t ~o in
        if
          not
            (Float.equal se.Estimate.lo sb.Estimate.lo
            && Float.equal se.Estimate.hi sb.Estimate.hi
            && Float.equal be.Estimate.lo bb.Estimate.lo
            && Float.equal be.Estimate.hi bb.Estimate.hi)
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* (b) empirical Wilson coverage: across fixed seeds, the sampled CI
   contains the exact value at least about the configured confidence.
   Fully deterministic — the seeds are pinned. *)

let coverage_spec () =
  let rng = Random.State.make [| 7 |] in
  Synthetic.Synth_gen.random_spec ~rng ~ni:6 ~no:1 ~f1:0.35 ~f0:0.4

let test_sampled_coverage () =
  let s = coverage_spec () in
  let t = Analysis.of_spec s in
  let exact_b = ER.bounds s ~o:0 in
  let impl = impl_of_mask s ~o:0 0b1010110 in
  let exact_rate = ER.of_table s ~o:0 ~impl in
  let seeds = 40 in
  let hit_base = ref 0 and hit_min = ref 0 and hit_max = ref 0 in
  let hit_rate = ref 0 in
  for seed = 0 to seeds - 1 do
    let params =
      { Analysis.default_params with samples = 1_500; seed; confidence = 0.9 }
    in
    let b = Analysis.bounds ~params ~backend:Analysis.Sampled t ~o:0 in
    let contains v x =
      Analysis.value_lo v <= x && x <= Analysis.value_hi v
    in
    if contains b.Analysis.base exact_b.ER.base then incr hit_base;
    if contains b.Analysis.min_dc exact_b.ER.min_dc then incr hit_min;
    if contains b.Analysis.max_dc exact_b.ER.max_dc then incr hit_max;
    let r = Analysis.rate_of_table ~params ~backend:Analysis.Sampled t ~o:0 ~impl in
    if contains r exact_rate then incr hit_rate
  done;
  (* Binomial(40, 0.9) puts ~99% of its mass at or above 32; Wilson
     over-covers on top of that, and the seeds are pinned, so this is
     a deterministic regression check, not a flaky one. *)
  check "base coverage" true (!hit_base >= 32);
  check "min coverage" true (!hit_min >= 32);
  check "max coverage" true (!hit_max >= 32);
  check "rate coverage" true (!hit_rate >= 32)

(* ------------------------------------------------------------------ *)
(* (c) seed determinism across job counts. *)

let test_sampled_jobs_deterministic () =
  let s = coverage_spec () in
  let t = Analysis.of_spec s in
  let params = { Analysis.default_params with samples = 10_000; seed = 11 } in
  let run jobs =
    Parallel.Pool.with_jobs jobs (fun () ->
        ( Analysis.bounds ~params ~backend:Analysis.Sampled t ~o:0,
          Analysis.borders ~params ~backend:Analysis.Sampled t ~o:0 ))
  in
  let b1, c1 = run 1 and b4, c4 = run 4 in
  let same a b =
    Float.equal (Analysis.value_est a) (Analysis.value_est b)
    && Float.equal (Analysis.value_lo a) (Analysis.value_lo b)
    && Float.equal (Analysis.value_hi a) (Analysis.value_hi b)
  in
  check "base" true (same b1.Analysis.base b4.Analysis.base);
  check "min_dc" true (same b1.Analysis.min_dc b4.Analysis.min_dc);
  check "max_dc" true (same b1.Analysis.max_dc b4.Analysis.max_dc);
  check "b0" true (same c1.Analysis.b0 c4.Analysis.b0);
  check "b1" true (same c1.Analysis.b1 c4.Analysis.b1);
  check "bdc" true (same c1.Analysis.bdc c4.Analysis.bdc);
  (* A different seed must actually change the draw. *)
  let params' = { params with seed = 12 } in
  let b' = Analysis.bounds ~params:params' ~backend:Analysis.Sampled t ~o:0 in
  check "seed matters" false (same b1.Analysis.base b'.Analysis.base)

(* ------------------------------------------------------------------ *)
(* Auto policy, degenerate specs, parsing, large n. *)

let test_auto_policy () =
  let dense = Analysis.of_spec (coverage_spec ()) in
  check "small dense -> exhaustive" true
    (Analysis.resolve dense Analysis.Auto = Analysis.Exhaustive);
  let dense16 =
    Analysis.of_spec (Spec.create ~ni:16 ~no:1 ~default:Spec.Off)
  in
  check "dense above threshold -> bdd" true
    (Analysis.resolve dense16 Analysis.Auto = Analysis.Bdd_exact);
  let rng = Random.State.make [| 3 |] in
  let covers ni =
    Analysis.of_cover_sets ~ni
      (Synthetic.Synth_gen.random_cover_sets ~rng ~ni ~no:1 ~on_cubes:4
         ~dc_cubes:2 ~lit_prob:0.5)
  in
  check "cover n=30 -> bdd" true
    (Analysis.resolve (covers 30) Analysis.Auto = Analysis.Bdd_exact);
  check "cover n=55 -> sampled" true
    (Analysis.resolve (covers 55) Analysis.Auto = Analysis.Sampled);
  check "explicit backend unchanged" true
    (Analysis.resolve dense Analysis.Sampled = Analysis.Sampled)

let test_backend_names () =
  let round b =
    match Analysis.backend_of_string (Analysis.backend_name b) with
    | Ok b' -> b' = b
    | Error _ -> false
  in
  check "exhaustive" true (round Analysis.Exhaustive);
  check "bdd" true (round Analysis.Bdd_exact);
  check "sample" true (round Analysis.Sampled);
  check "auto" true (round Analysis.Auto);
  check "unknown rejected" true
    (match Analysis.backend_of_string "quantum" with
    | Error _ -> true
    | Ok _ -> false)

let test_estimate_degenerate_n0 () =
  let z = Estimate.signal_from ~n:0 ~f1:0.0 ~f0:0.0 ~fdc:1.0 in
  check_f 0.0 "signal n=0 lo" 0.0 z.Estimate.lo;
  check_f 0.0 "signal n=0 hi" 0.0 z.Estimate.hi;
  let z =
    Estimate.border_from ~n:0 ~f1:0.0 ~f0:0.0 ~fdc:1.0 ~b0:0.0 ~b1:0.0
      ~bdc:0.0
  in
  check_f 0.0 "border n=0 lo" 0.0 z.Estimate.lo;
  check_f 0.0 "border n=0 hi" 0.0 z.Estimate.hi;
  (* Through the spec-level API and the binomial ablation variant. *)
  let s0 = Spec.create ~ni:0 ~no:1 ~default:Spec.Dc in
  List.iter
    (fun (name, iv) ->
      check (name ^ " finite") true
        Float.(is_finite iv.Estimate.lo && is_finite iv.Estimate.hi);
      check_f 0.0 (name ^ " lo") 0.0 iv.Estimate.lo;
      check_f 0.0 (name ^ " hi") 0.0 iv.Estimate.hi)
    [
      ("signal_based", Estimate.signal_based s0 ~o:0);
      ("border_based", Estimate.border_based s0 ~o:0);
      ("binomial", Estimate.binomial_border_based s0 ~o:0);
    ]

let test_estimate_all_dc_clamped () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Dc in
  List.iter
    (fun (name, iv) ->
      check (name ^ " finite") true
        Float.(is_finite iv.Estimate.lo && is_finite iv.Estimate.hi);
      check (name ^ " in range") true
        (0.0 <= iv.Estimate.lo
        && iv.Estimate.lo <= iv.Estimate.hi
        && iv.Estimate.hi <= 1.0))
    [
      ("signal_based", Estimate.signal_based s ~o:0);
      ("border_based", Estimate.border_based s ~o:0);
      ("binomial", Estimate.binomial_border_based s ~o:0);
    ];
  (* The exact bounds of the all-DC spec are attained at the constant
     assignments: zero errors. *)
  let t = Analysis.of_spec s in
  let b = Analysis.bounds ~backend:Analysis.Bdd_exact t ~o:0 in
  check_f 0.0 "all-dc exact min" 0.0 (exact b.Analysis.min_dc);
  check_f 0.0 "all-dc exact base" 0.0 (exact b.Analysis.base)

let test_n0_analysis () =
  let s0 = Spec.create ~ni:0 ~no:1 ~default:Spec.On in
  let t = Analysis.of_spec s0 in
  List.iter
    (fun backend ->
      let b = Analysis.bounds ~backend t ~o:0 in
      check_f 0.0 "n0 base" 0.0 (exact b.Analysis.base);
      check_f 0.0 "n0 max" 0.0 (exact b.Analysis.max_dc);
      let f1, f0, fdc = Analysis.signal_probs ~backend t ~o:0 in
      check_f 0.0 "n0 f1" 1.0 (Analysis.value_est f1);
      check_f 0.0 "n0 f0" 0.0 (Analysis.value_est f0);
      check_f 0.0 "n0 fdc" 0.0 (Analysis.value_est fdc);
      check_f 0.0 "n0 cf" 1.0
        (Analysis.value_est (Analysis.complexity_factor ~backend t ~o:0)))
    [ Analysis.Exhaustive; Analysis.Bdd_exact; Analysis.Sampled ]

let fd_text =
  ".i 3\n.o 2\n.type fd\n010 1-\n1-- 01\n-11 -0\n.e\n"

let test_cover_parse_matches_dense () =
  let dense = (Pla.parse_string fd_text).Pla.spec in
  let cf = Pla.parse_string_covers fd_text in
  check_int "ni" 3 cf.Pla.cf_ni;
  check_int "no" 2 (List.length cf.Pla.cf_outputs);
  let man = Bdd.make_man ~nvars:3 in
  List.iteri
    (fun o cs ->
      let sets = Sym.of_cover_sets man cs in
      check "sets partition" true (Sym.validate man sets = None);
      for m = 0 to 7 do
        let sym_phase =
          if Bdd.eval_minterm man sets.Sym.on m then Spec.On
          else if Bdd.eval_minterm man sets.Sym.off m then Spec.Off
          else Spec.Dc
        in
        check
          (Printf.sprintf "o=%d m=%d" o m)
          true
          (sym_phase = Spec.get dense ~o ~m)
      done)
    cf.Pla.cf_outputs

let fr_text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n"

let test_cover_parse_fr () =
  let dense = (Pla.parse_string fr_text).Pla.spec in
  let cf = Pla.parse_string_covers fr_text in
  let man = Bdd.make_man ~nvars:2 in
  let sets = Sym.of_cover_sets man (List.hd cf.Pla.cf_outputs) in
  for m = 0 to 3 do
    let sym_phase =
      if Bdd.eval_minterm man sets.Sym.on m then Spec.On
      else if Bdd.eval_minterm man sets.Sym.off m then Spec.Off
      else Spec.Dc
    in
    check (Printf.sprintf "fr m=%d" m) true (sym_phase = Spec.get dense ~o:0 ~m)
  done

let test_cover_parse_wide_and_limits () =
  (* A 24-input file is beyond the dense parser but fine here. *)
  let rng = Random.State.make [| 5 |] in
  let sets =
    Synthetic.Synth_gen.random_cover_sets ~rng ~ni:24 ~no:2 ~on_cubes:5
      ~dc_cubes:3 ~lit_prob:0.5
  in
  let pairs =
    List.map
      (function
        | Pla.Fd_sets { on; dc } -> (on, dc)
        | Pla.Fr_sets _ -> Alcotest.fail "generator emits fd sets")
      sets
  in
  let text = Pla.to_string_covers ~ni:24 pairs in
  (match Pla.parse_string_res text with
  | Ok _ -> Alcotest.fail "dense parser must reject .i 24"
  | Error msg -> check "dense refuses" true (msg <> ""));
  let cf = Pla.parse_string_covers text in
  check_int "wide ni" 24 cf.Pla.cf_ni;
  (* And beyond the cube limit both refuse. *)
  (match Pla.parse_string_covers_res ".i 62\n.o 1\n.e\n" with
  | Ok _ -> Alcotest.fail "cover parser must reject .i 62"
  | Error msg -> check "cube limit" true (msg <> ""))

let test_large_n_symbolic () =
  let rng = Random.State.make [| 9 |] in
  let ni = 26 in
  let sets =
    Synthetic.Synth_gen.random_cover_sets ~rng ~ni ~no:1 ~on_cubes:6
      ~dc_cubes:4 ~lit_prob:0.55
  in
  let t = Analysis.of_cover_sets ~ni sets in
  check "no dense table" true (Analysis.dense_spec t = None);
  let b = Analysis.bounds ~backend:Analysis.Bdd_exact t ~o:0 in
  let base = exact b.Analysis.base
  and mn = exact b.Analysis.min_dc
  and mx = exact b.Analysis.max_dc in
  check "finite" true Float.(is_finite base && is_finite mn && is_finite mx);
  check "ordered" true (0.0 <= mn && mn <= mx && mx <= 1.0);
  (* An implementation consistent with the care set lands inside the
     exact assignment bounds. *)
  let on_cover =
    match List.hd sets with
    | Pla.Fd_sets { on; _ } -> on
    | Pla.Fr_sets _ -> assert false
  in
  let r =
    exact (Analysis.rate_of_cover ~backend:Analysis.Bdd_exact t ~o:0 ~impl:on_cover)
  in
  check "impl rate within bounds" true
    (base +. mn -. 1e-12 <= r && r <= base +. mx +. 1e-12);
  (* The sampled backend agrees within its interval. *)
  let params = { Analysis.default_params with samples = 20_000; seed = 4 } in
  let sb = Analysis.bounds ~params ~backend:Analysis.Sampled t ~o:0 in
  check "sampled base CI brackets exact" true
    (Analysis.value_lo sb.Analysis.base <= base
    && base <= Analysis.value_hi sb.Analysis.base)

let test_load_problem () =
  let rng = Random.State.make [| 13 |] in
  let sets =
    Synthetic.Synth_gen.random_cover_sets ~rng ~ni:24 ~no:1 ~on_cubes:4
      ~dc_cubes:2 ~lit_prob:0.5
  in
  let pairs =
    List.map
      (function Pla.Fd_sets { on; dc } -> (on, dc) | _ -> assert false)
      sets
  in
  let path = Filename.temp_file "rdca_wide" ".pla" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Pla.to_string_covers ~ni:24 pairs);
      close_out oc;
      match Rdca_flow.Flow.load_problem path with
      | Error e -> Alcotest.fail (Rdca_flow.Flow.error_to_string e)
      | Ok t ->
          check_int "ni" 24 (Analysis.ni t);
          check "cover level" true (Analysis.dense_spec t = None));
  (* Suite benchmarks still load densely. *)
  match Rdca_flow.Flow.load_problem "bench" with
  | Error e -> Alcotest.fail (Rdca_flow.Flow.error_to_string e)
  | Ok t -> check "dense" true (Analysis.dense_spec t <> None)

let test_flow_measured_error_backends () =
  let s = coverage_spec () in
  let full, _ = Rdca_flow.Flow.implement s in
  let e = Rdca_flow.Flow.measured_error ~original:s full in
  let b =
    Rdca_flow.Flow.measured_error ~analysis:Analysis.Bdd_exact ~original:s full
  in
  check_f 0.0 "flow bdd == exhaustive" e b

let test_mean_bounds_across_backends () =
  let rng = Random.State.make [| 21 |] in
  let s = Synthetic.Synth_gen.random_spec ~rng ~ni:5 ~no:3 ~f1:0.3 ~f0:0.4 in
  let t = Analysis.of_spec s in
  let me = Analysis.mean_bounds ~backend:Analysis.Exhaustive t in
  let mb = Analysis.mean_bounds ~backend:Analysis.Bdd_exact t in
  check_f 0.0 "mean base" (exact me.Analysis.base) (exact mb.Analysis.base);
  check_f 0.0 "mean min" (exact me.Analysis.min_dc) (exact mb.Analysis.min_dc);
  check_f 0.0 "mean max" (exact me.Analysis.max_dc) (exact mb.Analysis.max_dc);
  let eb = ER.mean_bounds s in
  check_f 0.0 "matches Error_rate.mean_bounds" eb.ER.base
    (exact mb.Analysis.base);
  (* Sampled mean: Bonferroni-adjusted interval still brackets. *)
  let params = { Analysis.default_params with samples = 8_000; seed = 2 } in
  let ms = Analysis.mean_bounds ~params ~backend:Analysis.Sampled t in
  check "sampled mean brackets exact" true
    (Analysis.value_lo ms.Analysis.base <= eb.ER.base
    && eb.ER.base <= Analysis.value_hi ms.Analysis.base)

let test_satcount_boundary () =
  (* Constant one over w variables has 2^w satisfying assignments:
     2^61 still fits an int, 2^62 must refuse and point at the float
     variant. *)
  let man61 = Bdd.make_man ~nvars:61 in
  check "2^61 exact" true (Bdd.satcount man61 (Bdd.one man61) = 1 lsl 61);
  check_f 0.0 "2^61 float" (2.0 ** 61.0)
    (Bdd.satcount_float man61 (Bdd.one man61));
  let man62 = Bdd.make_man ~nvars:62 in
  (match Bdd.satcount man62 (Bdd.one man62) with
  | _ -> Alcotest.fail "2^62 must raise"
  | exception Invalid_argument msg ->
      let contains_sub hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      check "message mentions satcount_float" true
        (contains_sub msg "satcount_float"));
  check_f 0.0 "2^62 float still exact" (2.0 ** 62.0)
    (Bdd.satcount_float man62 (Bdd.one man62));
  (* Zero stays zero at any width. *)
  check_int "zero" 0 (Bdd.satcount man62 (Bdd.zero man62))

let test_value_accessors () =
  let e = Analysis.Exact 0.25 in
  check_f 0.0 "exact est" 0.25 (Analysis.value_est e);
  check_f 0.0 "exact lo" 0.25 (Analysis.value_lo e);
  check_f 0.0 "exact hi" 0.25 (Analysis.value_hi e);
  let i = Analysis.Interval { est = 0.5; lo = 0.4; hi = 0.6 } in
  check_f 0.0 "interval est" 0.5 (Analysis.value_est i);
  check_f 0.0 "interval lo" 0.4 (Analysis.value_lo i);
  check_f 0.0 "interval hi" 0.6 (Analysis.value_hi i);
  let b =
    { Analysis.base = Analysis.Exact 0.5; min_dc = e; max_dc = i }
  in
  check_f 1e-12 "min_rate" 0.75 (Analysis.value_est (Analysis.min_rate b));
  check_f 1e-12 "max_rate" 1.0 (Analysis.value_est (Analysis.max_rate b));
  check "pp exact" true
    (String.length (Format.asprintf "%a" Analysis.pp_value e) > 0);
  check "pp interval" true
    (String.length (Format.asprintf "%a" Analysis.pp_value i) > 0)

let test_auto_custom_params () =
  let t = Analysis.of_spec (coverage_spec ()) in
  (* ni = 6: squeezing the thresholds pushes the same problem down
     the ladder. *)
  let p ~ex ~bdd =
    { Analysis.default_params with exhaustive_max = ex; bdd_max = bdd }
  in
  check "below exhaustive_max" true
    (Analysis.resolve ~params:(p ~ex:6 ~bdd:40) t Analysis.Auto
    = Analysis.Exhaustive);
  check "between -> bdd" true
    (Analysis.resolve ~params:(p ~ex:5 ~bdd:40) t Analysis.Auto
    = Analysis.Bdd_exact);
  check "above bdd_max -> sampled" true
    (Analysis.resolve ~params:(p ~ex:2 ~bdd:5) t Analysis.Auto
    = Analysis.Sampled)

let test_mean_intervals_across_backends () =
  let rng = Random.State.make [| 31 |] in
  let s = Synthetic.Synth_gen.random_spec ~rng ~ni:5 ~no:3 ~f1:0.3 ~f0:0.4 in
  let t = Analysis.of_spec s in
  let pairs name a b =
    check_f 0.0 (name ^ " lo") a.Estimate.lo b.Estimate.lo;
    check_f 0.0 (name ^ " hi") a.Estimate.hi b.Estimate.hi
  in
  pairs "mean signal exh==bdd"
    (Analysis.mean_signal_interval ~backend:Analysis.Exhaustive t)
    (Analysis.mean_signal_interval ~backend:Analysis.Bdd_exact t);
  pairs "mean border exh==bdd"
    (Analysis.mean_border_interval ~backend:Analysis.Exhaustive t)
    (Analysis.mean_border_interval ~backend:Analysis.Bdd_exact t);
  pairs "mean signal == Estimate"
    (Estimate.mean_signal_based s)
    (Analysis.mean_signal_interval ~backend:Analysis.Bdd_exact t);
  pairs "mean border == Estimate"
    (Estimate.mean_border_based s)
    (Analysis.mean_border_interval ~backend:Analysis.Bdd_exact t)

let test_sampled_cf_and_signals () =
  let s = coverage_spec () in
  let t = Analysis.of_spec s in
  let params = { Analysis.default_params with samples = 20_000; seed = 17 } in
  let cf_exact =
    Analysis.value_est
      (Analysis.complexity_factor ~backend:Analysis.Exhaustive t ~o:0)
  in
  let cf_s = Analysis.complexity_factor ~params ~backend:Analysis.Sampled t ~o:0 in
  check "sampled cf CI brackets exact" true
    (Analysis.value_lo cf_s <= cf_exact && cf_exact <= Analysis.value_hi cf_s);
  let f1e, f0e, fdce = Analysis.signal_probs ~backend:Analysis.Exhaustive t ~o:0 in
  let f1s, f0s, fdcs = Analysis.signal_probs ~params ~backend:Analysis.Sampled t ~o:0 in
  List.iter2
    (fun (name, ex) sv ->
      check (name ^ " CI brackets exact") true
        (Analysis.value_lo sv <= exact ex && exact ex <= Analysis.value_hi sv))
    [ ("f1", f1e); ("f0", f0e); ("fdc", fdce) ]
    [ f1s; f0s; fdcs ]

let test_rate_of_cover_matches_table () =
  let s = coverage_spec () in
  let t = Analysis.of_spec s in
  let impl = impl_of_mask s ~o:0 0b110101 in
  (* The same implementation given as a minterm cover. *)
  let cubes = ref [] in
  for m = Spec.size s - 1 downto 0 do
    if Bv.get impl m then
      cubes :=
        Twolevel.Cube.make ~n:(Spec.ni s)
          (List.init (Spec.ni s) (fun j ->
               if (m lsr j) land 1 = 1 then Twolevel.Cube.One
               else Twolevel.Cube.Zero))
        :: !cubes
  done;
  let cover = Twolevel.Cover.make ~n:(Spec.ni s) !cubes in
  let rt = Analysis.rate_of_table ~backend:Analysis.Bdd_exact t ~o:0 ~impl in
  let rc = Analysis.rate_of_cover ~backend:Analysis.Bdd_exact t ~o:0 ~impl:cover in
  check_f 0.0 "cover == table rate" (exact rt) (exact rc);
  check_f 0.0 "== exhaustive" (ER.of_table s ~o:0 ~impl) (exact rc)

let test_cover_parse_names () =
  let text =
    ".i 2\n.o 1\n.ilb alpha beta\n.ob out\n.type fd\n11 1\n0- -\n.e\n"
  in
  let cf = Pla.parse_string_covers text in
  check "input names" true (cf.Pla.cf_input_names = [| "alpha"; "beta" |]);
  check "output names" true (cf.Pla.cf_output_names = [| "out" |]);
  check "type" true (cf.Pla.cf_ty = Pla.Fd)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "sampled Wilson coverage (pinned seeds)" `Quick
        test_sampled_coverage;
      Alcotest.test_case "sampled deterministic across job counts" `Quick
        test_sampled_jobs_deterministic;
      Alcotest.test_case "auto backend policy" `Quick test_auto_policy;
      Alcotest.test_case "backend names round-trip" `Quick test_backend_names;
      Alcotest.test_case "estimate degenerate n=0" `Quick
        test_estimate_degenerate_n0;
      Alcotest.test_case "estimate all-DC clamped" `Quick
        test_estimate_all_dc_clamped;
      Alcotest.test_case "n=0 analysis across backends" `Quick test_n0_analysis;
      Alcotest.test_case "cover parse matches dense (fd)" `Quick
        test_cover_parse_matches_dense;
      Alcotest.test_case "cover parse matches dense (fr)" `Quick
        test_cover_parse_fr;
      Alcotest.test_case "cover parse wide files and limits" `Quick
        test_cover_parse_wide_and_limits;
      Alcotest.test_case "symbolic analysis at n=26" `Quick
        test_large_n_symbolic;
      Alcotest.test_case "load_problem picks representation" `Quick
        test_load_problem;
      Alcotest.test_case "flow measured_error backends agree" `Quick
        test_flow_measured_error_backends;
      Alcotest.test_case "mean bounds across backends" `Quick
        test_mean_bounds_across_backends;
      Alcotest.test_case "satcount integer-overflow boundary" `Quick
        test_satcount_boundary;
      Alcotest.test_case "value accessors and rate composition" `Quick
        test_value_accessors;
      Alcotest.test_case "auto policy honours custom thresholds" `Quick
        test_auto_custom_params;
      Alcotest.test_case "mean estimate intervals across backends" `Quick
        test_mean_intervals_across_backends;
      Alcotest.test_case "sampled cf and signal CIs bracket exact" `Quick
        test_sampled_cf_and_signals;
      Alcotest.test_case "rate_of_cover matches rate_of_table" `Quick
        test_rate_of_cover_matches_table;
      Alcotest.test_case "cover parser keeps names and type" `Quick
        test_cover_parse_names;
      QCheck_alcotest.to_alcotest prop_bdd_bit_identical_kernel;
      QCheck_alcotest.to_alcotest prop_bdd_bit_identical_scalar;
      QCheck_alcotest.to_alcotest prop_bdd_rate_bit_identical;
      QCheck_alcotest.to_alcotest prop_estimates_from_bdd_counts;
    ] )
