(* SAT-based stuck-at testability (lib/atpg): collapsing counts on
   hand-built gates, untestable-fault detection across every backend,
   checked redundancy removal, admissibility diagnostics, and
   SAT-vs-exhaustive verdict agreement on random mapped netlists. *)

module Fault = Atpg.Fault
module Engine = Atpg.Engine
module Redundancy = Atpg.Redundancy
module Diag = Check.Diag
module Spec = Pla.Spec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config backend = { Engine.default_config with Engine.backend }

let all_backends =
  [
    Engine.Sat_engine;
    Engine.Exhaustive;
    Engine.Bdd_engine;
    Engine.Differential;
  ]

(* Single 2-input AND driving the output: six faults (stem and two
   branches, both polarities); equivalence merges the three s-a-0s;
   dominance tags the stem s-a-1 as implied by a branch s-a-1. *)
let test_collapse_and () =
  let nl = Netlist.create ~ni:2 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  Netlist.set_outputs nl [| a |];
  check_int "universe" 6 (Array.length (Fault.universe nl));
  let none = Fault.collapse ~mode:Fault.No_collapse nl in
  check_int "no-collapse classes" 6 (Array.length none.Fault.classes);
  check_int "total" 6 none.Fault.total;
  let eq = Fault.collapse ~mode:Fault.Equivalence nl in
  check_int "equivalence classes" 4 (Array.length eq.Fault.classes);
  let sa0 =
    Array.to_list eq.Fault.classes
    |> List.find (fun c -> List.length c.Fault.members = 3)
  in
  check "s-a-0 class rep is the stem" true
    (sa0.Fault.rep = { Fault.node = a; pin = Fault.Stem; stuck = false });
  let dom = Fault.collapse ~mode:Fault.Dominance nl in
  check_int "same partition under dominance" 4 (Array.length dom.Fault.classes);
  let implied =
    Array.to_list dom.Fault.classes
    |> List.filter (fun c -> c.Fault.implied_by <> None)
  in
  check_int "one dominated class (stem s-a-1)" 1 (List.length implied)

(* z = x OR (x AND y): absorption makes the AND redundant, so its
   stem s-a-0 (and the whole collapsed class around it) is untestable;
   every other fault has a test. *)
let absorption () =
  let nl = Netlist.create ~ni:2 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  let o = Netlist.add nl Netlist.Gate.Or [| 0; a |] in
  Netlist.set_outputs nl [| o |];
  (nl, a, o)

let test_untestable_absorption () =
  let nl, a, _ = absorption () in
  List.iter
    (fun backend ->
      let name s = Engine.backend_name backend ^ " " ^ s in
      let r = Engine.analyze ~config:(config backend) nl in
      check_int (name "total faults") 12 r.Engine.total_faults;
      (* two redundancies: the whole AND s-a-0 class (z = x OR 0 = x)
         and the AND's y-pin s-a-1 (AND computes x, z = x OR x = x) *)
      let u = Engine.untestable_classes r in
      check_int (name "untestable classes") 2 (List.length u);
      let c =
        List.find
          (fun c ->
            c.Engine.rep
            = { Fault.node = a; pin = Fault.Stem; stuck = false })
          u
      in
      (* stem s-a-0 = both AND branches s-a-0 = the OR's absorbed
         branch s-a-0 (fanout-free stem/branch merge) *)
      check_int (name "class size") 4 c.Engine.class_size;
      check (name "no witness") true (c.Engine.witness = None);
      check (name "y-pin s-a-1 untestable") true
        (List.exists
           (fun c ->
             c.Engine.rep
             = { Fault.node = a; pin = Fault.Branch 1; stuck = true })
           u);
      check (name "coverage") true
        (abs_float (r.Engine.coverage -. (7.0 /. 12.0)) < 1e-12);
      check_int (name "no disagreements") 0 r.Engine.disagreements;
      List.iter
        (fun fr ->
          check (name "testable classes carry witnesses") true
            (fr.Engine.verdict = Engine.Untestable || fr.Engine.witness <> None))
        r.Engine.results)
    all_backends

(* Witnesses actually distinguish good from faulty: check via the
   engine's own differential mode plus a direct re-simulation of the
   stem faults it reports testable. *)
let test_witness_detects () =
  let nl, _, _ = absorption () in
  let r = Engine.analyze ~config:(config Engine.Exhaustive) nl in
  List.iter
    (fun fr ->
      match (fr.Engine.rep.Fault.pin, fr.Engine.witness) with
      | Fault.Stem, Some m ->
          let f = fr.Engine.rep in
          let good = Netlist.eval_minterm nl m in
          let bad =
            Netlist.eval_minterm_with_override nl
              ~override:(fun n v ->
                if n = f.Fault.node then f.Fault.stuck else v)
              m
          in
          check "witness separates good from faulty" true (good <> bad)
      | _ -> ())
    r.Engine.results

let test_remove_absorption () =
  let nl, _, _ = absorption () in
  let r = Redundancy.remove nl in
  check "removed a redundancy" true (r.Redundancy.removed <> []);
  check_int "fixpoint is fully testable" 0
    r.Redundancy.final_report.Engine.untestable;
  check "netlist shrank" true
    (r.Redundancy.gates_after < r.Redundancy.gates_before);
  for m = 0 to 3 do
    check "function preserved" true
      (Netlist.eval_minterm nl m = Netlist.eval_minterm r.Redundancy.netlist m)
  done

(* A constant-driven output is inadmissible: no stuck-at defect on it
   can ever be observed, which the Diag layer must flag as an error. *)
let test_inadmissible_const_output () =
  let nl = Netlist.create ~ni:1 in
  let c = Netlist.add nl (Netlist.Gate.Const true) [||] in
  let b = Netlist.add nl Netlist.Gate.Buf [| c |] in
  Netlist.set_outputs nl [| b |];
  let r = Engine.analyze nl in
  let diags = Atpg.Testability_check.diagnostics nl r in
  check "report has errors" true (Diag.has_errors diags);
  check "inadmissible-output error" true
    (List.exists
       (fun d ->
         d.Diag.code = "inadmissible-output" && d.Diag.severity = Diag.Error)
       diags);
  check "untestable warnings present" true
    (List.exists (fun d -> d.Diag.code = "untestable-fault") diags)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_shape () =
  let nl, _, _ = absorption () in
  let r = Engine.analyze ~config:(config Engine.Differential) nl in
  let s = Rdca_json.Jsonout.to_string (Engine.report_to_json r) in
  List.iter
    (fun key -> check ("json has " ^ key) true (contains s ("\"" ^ key ^ "\"")))
    [ "backend"; "collapse"; "coverage"; "collapse_ratio"; "faults" ];
  let sc = Atpg.Scoap.compute nl in
  let sj = Rdca_json.Jsonout.to_string (Atpg.Scoap.summary_to_json sc) in
  check "scoap json has mean_co" true (contains sj "mean_co")

(* The acceptance scenario: synthesize examples/pla/parity_dc.pla
   (embedded verbatim), graft an absorbed AND onto an output, and let
   the checked removal find it, strip it, and prove care-set
   equivalence against the original spec. *)
let parity_dc_pla =
  ".i 3\n.o 2\n.type fd\n000 00\n001 10\n010 10\n011 00\n100 10\n101 00\n\
   110 -1\n111 -1\n.e\n"

let test_remove_injected_redundancy () =
  let spec = (Pla.parse_string parity_dc_pla).Pla.spec in
  let res =
    Rdca_flow.Flow.synthesize ~mode:Techmap.Mapper.Area
      ~strategy:Rdca_flow.Flow.Conventional spec
  in
  let nl = res.Rdca_flow.Flow.netlist in
  let clean = Engine.analyze nl in
  check_int "mapped netlist starts irredundant" 0 clean.Engine.untestable;
  let outs = Array.copy (Netlist.outputs nl) in
  let o = outs.(0) in
  let a = Netlist.add nl Netlist.Gate.And [| o; 0 |] in
  let o' = Netlist.add nl Netlist.Gate.Or [| o; a |] in
  outs.(0) <- o';
  Netlist.set_outputs nl outs;
  let faulty = Engine.analyze nl in
  check "graft detected as untestable" true (faulty.Engine.untestable > 0);
  match Rdca_flow.Flow.remove_redundant_checked ~spec nl with
  | Error e -> Alcotest.fail (Rdca_flow.Flow.error_to_string e)
  | Ok (r, diags) ->
      check "graft removed" true (r.Redundancy.removed <> []);
      check "netlist shrank" true
        (r.Redundancy.gates_after < r.Redundancy.gates_before);
      check_int "fixpoint fully testable" 0
        r.Redundancy.final_report.Engine.untestable;
      check "care-set equivalence confirmed" true (not (Diag.has_errors diags))

(* Random mapped netlists, the same generator the dc suite uses. *)
let random_netlist phases =
  let s = Spec.create ~ni:5 ~no:1 ~default:Spec.Off in
  List.iteri
    (fun m p ->
      Spec.set s ~o:0 ~m
        (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
    phases;
  let _, covers = Rdca_core.Assign.conventional s in
  let aig = Aig.of_covers ~ni:5 covers in
  let lib = Techmap.Stdcell.default_library () in
  (s, Techmap.Mapper.map ~mode:Techmap.Mapper.Area ~lib aig)

let phases_arb = QCheck.(list_of_size (QCheck.Gen.return 32) (int_bound 2))

let prop_sat_matches_exhaustive =
  QCheck.Test.make
    ~name:"sat and exhaustive untestability verdicts bit-identical" ~count:40
    QCheck.(pair phases_arb (QCheck.oneofl Fault.[ Equivalence; Dominance ]))
    (fun (phases, mode) ->
      let _, nl = random_netlist phases in
      let run backend =
        Engine.analyze
          ~config:{ (config backend) with Engine.collapse = mode }
          nl
      in
      let sat = run Engine.Sat_engine and exh = run Engine.Exhaustive in
      List.length sat.Engine.results = List.length exh.Engine.results
      && List.for_all2
           (fun (a : Engine.fault_result) (b : Engine.fault_result) ->
             Fault.compare a.Engine.rep b.Engine.rep = 0
             && a.Engine.verdict = b.Engine.verdict)
           sat.Engine.results exh.Engine.results)

let prop_removal_preserves_care_set =
  QCheck.Test.make
    ~name:"redundancy removal preserves the care set at any job count"
    ~count:20 phases_arb
    (fun phases ->
      let s, nl = random_netlist phases in
      let run jobs =
        Parallel.Pool.with_jobs jobs (fun () -> Redundancy.remove nl)
      in
      let r1 = run 1 and r4 = run 4 in
      r1.Redundancy.removed = r4.Redundancy.removed
      && r1.Redundancy.final_report.Engine.results
         = r4.Redundancy.final_report.Engine.results
      && not
           (Diag.has_errors
              (Check.Netlist_check.equiv_spec ~spec:s r1.Redundancy.netlist)))

let suite =
  ( "atpg",
    [
      Alcotest.test_case "collapse counts on AND" `Quick test_collapse_and;
      Alcotest.test_case "untestable absorption" `Quick
        test_untestable_absorption;
      Alcotest.test_case "witness detects" `Quick test_witness_detects;
      Alcotest.test_case "remove absorption" `Quick test_remove_absorption;
      Alcotest.test_case "inadmissible const output" `Quick
        test_inadmissible_const_output;
      Alcotest.test_case "json shape" `Quick test_json_shape;
      Alcotest.test_case "remove injected redundancy" `Quick
        test_remove_injected_redundancy;
      QCheck_alcotest.to_alcotest prop_sat_matches_exhaustive;
      QCheck_alcotest.to_alcotest prop_removal_preserves_care_set;
    ] )
